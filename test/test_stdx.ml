(* Unit and property tests for the stdx substrate. *)

let check_float = Alcotest.(check (float 1e-9))

(* -- Prng ---------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Stdx.Prng.create ~seed:42 and b = Stdx.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stdx.Prng.bits64 a) (Stdx.Prng.bits64 b)
  done

let test_prng_seed_matters () =
  let a = Stdx.Prng.create ~seed:1 and b = Stdx.Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false
    (Stdx.Prng.bits64 a = Stdx.Prng.bits64 b)

let test_prng_copy_independent () =
  let a = Stdx.Prng.create ~seed:7 in
  let b = Stdx.Prng.copy a in
  let xa = Stdx.Prng.bits64 a in
  let xb = Stdx.Prng.bits64 b in
  Alcotest.(check int64) "copy replays" xa xb

let test_prng_split_independent () =
  let a = Stdx.Prng.create ~seed:7 in
  let b = Stdx.Prng.split a in
  Alcotest.(check bool) "split diverges" false
    (Stdx.Prng.bits64 a = Stdx.Prng.bits64 b)

let test_prng_int_bounds () =
  let rng = Stdx.Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Stdx.Prng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_prng_int_in () =
  let rng = Stdx.Prng.create ~seed:4 in
  for _ = 1 to 1000 do
    let v = Stdx.Prng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_prng_float_bounds () =
  let rng = Stdx.Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Stdx.Prng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_prng_shuffle_permutation () =
  let rng = Stdx.Prng.create ~seed:6 in
  let a = Array.init 50 (fun i -> i) in
  Stdx.Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_poisson_mean () =
  let rng = Stdx.Prng.create ~seed:8 in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Stdx.Prng.poisson rng ~mean:2.0
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean close to 2" true (mean > 1.9 && mean < 2.1)

let test_prng_exponential_mean () =
  let rng = Stdx.Prng.create ~seed:9 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Stdx.Prng.exponential rng ~mean:3.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean close to 3" true (mean > 2.8 && mean < 3.2)

(* -- Heap ---------------------------------------------------------------- *)

let test_heap_basic () =
  let h = Stdx.Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Stdx.Heap.is_empty h);
  List.iter (Stdx.Heap.push h) [ 5; 1; 4; 2; 3 ];
  Alcotest.(check int) "length" 5 (Stdx.Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Stdx.Heap.peek h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 4; 5 ]
    (List.init 5 (fun _ -> Stdx.Heap.pop_exn h))

let test_heap_pop_empty () =
  let h = Stdx.Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "pop empty" None (Stdx.Heap.pop h);
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Stdx.Heap.pop_exn h))

let test_heap_to_sorted_nondestructive () =
  let h = Stdx.Heap.create ~cmp:compare in
  List.iter (Stdx.Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted view" [ 1; 2; 3 ] (Stdx.Heap.to_sorted_list h);
  Alcotest.(check int) "unchanged" 3 (Stdx.Heap.length h)

let test_heap_clear () =
  let h = Stdx.Heap.create ~cmp:compare in
  List.iter (Stdx.Heap.push h) [ 1; 2 ];
  Stdx.Heap.clear h;
  Alcotest.(check bool) "cleared" true (Stdx.Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Stdx.Heap.create ~cmp:compare in
      List.iter (Stdx.Heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Stdx.Heap.pop_exn h) in
      drained = List.sort compare xs)

(* -- Ewma ---------------------------------------------------------------- *)

let test_ewma_first_sample () =
  let e = Stdx.Ewma.create ~alpha:0.3 in
  Alcotest.(check (option (float 0.0))) "empty" None (Stdx.Ewma.value e);
  check_float "first sample passes through" 5.0 (Stdx.Ewma.update e 5.0)

let test_ewma_alpha_one () =
  let e = Stdx.Ewma.create ~alpha:1.0 in
  ignore (Stdx.Ewma.update e 1.0);
  check_float "alpha=1 tracks input" 9.0 (Stdx.Ewma.update e 9.0)

let test_ewma_constant_series () =
  let e = Stdx.Ewma.create ~alpha:0.2 in
  for _ = 1 to 10 do
    ignore (Stdx.Ewma.update e 4.0)
  done;
  check_float "constant stays" 4.0 (Stdx.Ewma.value_or e ~default:nan)

let test_ewma_formula () =
  let e = Stdx.Ewma.create ~alpha:0.5 in
  ignore (Stdx.Ewma.update e 0.0);
  check_float "0.5 blend" 5.0 (Stdx.Ewma.update e 10.0)

let test_ewma_invalid_alpha () =
  Alcotest.check_raises "alpha 0"
    (Invalid_argument "Ewma.create: alpha must be in (0, 1]") (fun () ->
      ignore (Stdx.Ewma.create ~alpha:0.0))

let test_ewma_smooth_length () =
  Alcotest.(check int) "same length" 5
    (List.length (Stdx.Ewma.smooth ~alpha:0.4 [ 1.; 2.; 3.; 4.; 5. ]))

(* -- Stats --------------------------------------------------------------- *)

let test_stats_mean () =
  check_float "mean" 2.0 (Stdx.Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty mean" 0.0 (Stdx.Stats.mean [])

let test_stats_summarize () =
  let s = Stdx.Stats.summarize [ 1.0; 3.0 ] in
  Alcotest.(check int) "n" 2 s.Stdx.Stats.n;
  check_float "mean" 2.0 s.Stdx.Stats.mean;
  check_float "min" 1.0 s.Stdx.Stats.min;
  check_float "max" 3.0 s.Stdx.Stats.max;
  check_float "stddev" 1.0 s.Stdx.Stats.stddev

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (Stdx.Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stdx.Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stdx.Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stdx.Stats.percentile xs 25.0)

let test_stats_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty sample")
    (fun () -> ignore (Stdx.Stats.percentile [] 50.0));
  Alcotest.check_raises "range" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Stdx.Stats.percentile [ 1.0 ] 101.0))

let test_jain_equal_shares () =
  check_float "equal shares" 1.0 (Stdx.Stats.jain_fairness [ 5.0; 5.0; 5.0 ])

let test_jain_single_winner () =
  check_float "single winner of 4" 0.25
    (Stdx.Stats.jain_fairness [ 8.0; 0.0; 0.0; 0.0 ])

let test_jain_edge_cases () =
  check_float "empty" 1.0 (Stdx.Stats.jain_fairness []);
  check_float "all zero" 1.0 (Stdx.Stats.jain_fairness [ 0.0; 0.0 ])

let prop_jain_bounds =
  QCheck.Test.make ~name:"jain in [1/n, 1]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.0 100.0))
    (fun xs ->
      let j = Stdx.Stats.jain_fairness xs in
      let n = float_of_int (List.length xs) in
      j >= (1.0 /. n) -. 1e-9 && j <= 1.0 +. 1e-9)

let test_histogram () =
  let h = Stdx.Stats.histogram ~bins:4 ~lo:0.0 ~hi:4.0 [ 0.5; 1.5; 2.5; 3.5; 9.0; -1.0 ] in
  Alcotest.(check (array int)) "bins with clamping" [| 2; 1; 1; 2 |] h

let test_percentile_interpolation () =
  Alcotest.(check (float 1e-9)) "p50 of pair" 1.5 (Stdx.Stats.percentile [ 1.0; 2.0 ] 50.0);
  Alcotest.(check (float 1e-9)) "p10 interpolates" 1.1
    (Stdx.Stats.percentile [ 1.0; 2.0 ] 10.0);
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (Stdx.Stats.percentile [ 7.0 ] 99.0)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 30) (float_range 0.0 100.0))
              (pair (int_range 0 100) (int_range 0 100)))
    (fun (xs, (a, b)) ->
      let lo = min a b and hi = max a b in
      Stdx.Stats.percentile xs (float_of_int lo)
      <= Stdx.Stats.percentile xs (float_of_int hi) +. 1e-9)

let test_boxplot () =
  let b = Stdx.Stats.boxplot [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. ] in
  Alcotest.(check bool) "ordered" true
    (b.Stdx.Stats.whisker_lo <= b.Stdx.Stats.q1
    && b.Stdx.Stats.q1 <= b.Stdx.Stats.q2
    && b.Stdx.Stats.q2 <= b.Stdx.Stats.q3
    && b.Stdx.Stats.q3 <= b.Stdx.Stats.whisker_hi)

(* -- Domain_pool --------------------------------------------------------- *)

let test_dpool_sequential () =
  let p = Stdx.Domain_pool.create ~size:1 () in
  let arr = Array.init 100 Fun.id in
  Alcotest.(check (array int)) "map doubles" (Array.map (fun x -> 2 * x) arr)
    (Stdx.Domain_pool.map p ~f:(fun x -> 2 * x) arr)

let test_dpool_map_large () =
  (* Big enough to clear the spawn threshold, so domains really fan out. *)
  let p = Stdx.Domain_pool.create ~size:2 () in
  let arr = Array.init 3000 Fun.id in
  Alcotest.(check (array int)) "map squares" (Array.map (fun x -> x * x) arr)
    (Stdx.Domain_pool.map p ~f:(fun x -> x * x) arr)

let test_dpool_coverage () =
  let p = Stdx.Domain_pool.create ~size:3 () in
  let n = 2000 in
  let hits = Array.make n 0 in
  (* Each index is written by exactly one domain, so no synchronization
     is needed for the increments. *)
  Stdx.Domain_pool.parallel_for p ~n ~f:(fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "every index exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_dpool_size_clamp () =
  Alcotest.(check int) "clamped to 1" 1
    (Stdx.Domain_pool.size (Stdx.Domain_pool.create ~size:0 ()));
  Alcotest.(check bool) "default >= 1" true
    (Stdx.Domain_pool.size (Stdx.Domain_pool.create ()) >= 1)

let test_dpool_empty () =
  let p = Stdx.Domain_pool.create ~size:4 () in
  Alcotest.(check (array int)) "empty map" [||]
    (Stdx.Domain_pool.map p ~f:(fun x -> x) [||]);
  Stdx.Domain_pool.parallel_for p ~n:0 ~f:(fun _ -> Alcotest.fail "no indices")

let prop_dpool_map_any_size =
  QCheck.Test.make ~name:"map = Array.map at any pool size and length" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 0 700))
    (fun (size, n) ->
      let p = Stdx.Domain_pool.create ~size () in
      let arr = Array.init n (fun i -> i * 3) in
      let ok =
        Stdx.Domain_pool.map p ~f:(fun x -> x + 1) arr = Array.map (fun x -> x + 1) arr
      in
      (* Workers are persistent; reap them so 50 trials do not pile up
         parked domains against the runtime limit. *)
      Stdx.Domain_pool.shutdown p;
      ok)

let test_dpool_shutdown () =
  let p = Stdx.Domain_pool.create ~size:3 () in
  let arr = Array.init 2000 Fun.id in
  Alcotest.(check (array int)) "fan-out works" (Array.map succ arr)
    (Stdx.Domain_pool.map p ~f:succ arr);
  Stdx.Domain_pool.shutdown p;
  Stdx.Domain_pool.shutdown p;
  (* After shutdown the pool degrades to the sequential path. *)
  Alcotest.(check (array int)) "sequential after shutdown" (Array.map succ arr)
    (Stdx.Domain_pool.map p ~f:succ arr)

let test_dpool_reuse_across_calls () =
  (* The same parked workers serve many generations. *)
  let p = Stdx.Domain_pool.create ~size:3 () in
  let n = 1500 in
  let acc = Array.make n 0 in
  for _ = 1 to 5 do
    Stdx.Domain_pool.parallel_for p ~n ~f:(fun i -> acc.(i) <- acc.(i) + 1)
  done;
  Stdx.Domain_pool.shutdown p;
  Alcotest.(check bool) "every index five times" true
    (Array.for_all (fun h -> h = 5) acc)

(* -- Sharded ------------------------------------------------------------- *)

let test_sharded_same_shard_within_domain () =
  let s = Stdx.Sharded.create ~init:(fun () -> ref 0) () in
  let a = Stdx.Sharded.get s in
  incr a;
  let b = Stdx.Sharded.get s in
  Alcotest.(check bool) "same shard" true (a == b);
  Alcotest.(check int) "one shard registered" 1 (Stdx.Sharded.n_shards s)

let test_sharded_fold_after_join () =
  let s = Stdx.Sharded.create ~init:(fun () -> ref 0) () in
  let pool = Stdx.Domain_pool.create ~size:3 () in
  let n = 3000 in
  (* Each worker bumps its own shard; the pool joins its domains before
     returning, so the fold below sees every increment. *)
  Stdx.Domain_pool.parallel_for pool ~n ~f:(fun _ ->
      let r = Stdx.Sharded.get s in
      incr r);
  Alcotest.(check int) "all increments merged" n
    (Stdx.Sharded.fold s ~init:0 ~f:(fun acc r -> acc + !r))

let () =
  Alcotest.run "stdx"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed matters" `Quick test_prng_seed_matters;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_prng_int_in;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "poisson mean" `Quick test_prng_poisson_mean;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
          Alcotest.test_case "sorted view" `Quick test_heap_to_sorted_nondestructive;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "ewma",
        [
          Alcotest.test_case "first sample" `Quick test_ewma_first_sample;
          Alcotest.test_case "alpha one" `Quick test_ewma_alpha_one;
          Alcotest.test_case "constant" `Quick test_ewma_constant_series;
          Alcotest.test_case "formula" `Quick test_ewma_formula;
          Alcotest.test_case "invalid alpha" `Quick test_ewma_invalid_alpha;
          Alcotest.test_case "smooth length" `Quick test_ewma_smooth_length;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "sequential fallback" `Quick test_dpool_sequential;
          Alcotest.test_case "map = Array.map (spawning)" `Quick test_dpool_map_large;
          Alcotest.test_case "covers every index once" `Quick test_dpool_coverage;
          Alcotest.test_case "size clamped" `Quick test_dpool_size_clamp;
          Alcotest.test_case "empty input" `Quick test_dpool_empty;
          Alcotest.test_case "shutdown" `Quick test_dpool_shutdown;
          Alcotest.test_case "reuse across calls" `Quick test_dpool_reuse_across_calls;
          QCheck_alcotest.to_alcotest prop_dpool_map_any_size;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "stable shard per domain" `Quick
            test_sharded_same_shard_within_domain;
          Alcotest.test_case "fold after join" `Quick test_sharded_fold_after_join;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "summarize" `Quick test_stats_summarize;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile errors" `Quick test_stats_percentile_errors;
          Alcotest.test_case "jain equal" `Quick test_jain_equal_shares;
          Alcotest.test_case "jain winner" `Quick test_jain_single_winner;
          Alcotest.test_case "jain edges" `Quick test_jain_edge_cases;
          QCheck_alcotest.to_alcotest prop_jain_bounds;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "percentile interpolation" `Quick
            test_percentile_interpolation;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
          Alcotest.test_case "boxplot" `Quick test_boxplot;
        ] );
    ]
