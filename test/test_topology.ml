(* Incremental ECMP router and the datacenter topology constructors:
   fat-tree / leaf-spine shape (node/link counts, pod membership, ECMP
   multiplicity, capacity metadata), and a qcheck property that random
   link-flap sequences leave the incrementally repaired route tables
   equal to a from-scratch recompute (the Floyd-Warshall oracle). *)

module Topology = Activermt_fleet.Topology

let approx a b =
  a = b
  || Float.is_finite a && Float.is_finite b
     && Float.abs (a -. b)
        <= 1e-12 +. (1e-9 *. Float.max (Float.abs a) (Float.abs b))

(* ---------- constructor shape ---------- *)

let test_fat_tree_shape () =
  let t = Topology.fat_tree ~k:4 () in
  Alcotest.(check int) "k=4: 20 switches" 20 (Topology.switches t);
  (* 4 pods x (4 edge-agg + 4 agg-core) links. *)
  Alcotest.(check int) "k=4: 32 links" 32 (Topology.n_links t);
  Alcotest.(check int) "4 server pods + core pod" 5 (Topology.n_pods t);
  Alcotest.(check (list int)) "pod 0 members" [ 0; 1; 2; 3 ]
    (Topology.pod_members t ~pod:0);
  Alcotest.(check (list int)) "core pod members" [ 16; 17; 18; 19 ]
    (Topology.pod_members t ~pod:4);
  Alcotest.(check int) "edge 7 sits in pod 1" 1 (Topology.pod_of t ~sw:7);
  (* Intra-pod: edge -> edge through either aggregation switch. *)
  Alcotest.(check (list int)) "intra-pod ECMP set is the k/2 aggs" [ 2; 3 ]
    (Topology.next_hops t ~src:0 ~dst:1);
  Alcotest.(check (float 1e-12)) "intra-pod latency is 2 hops" 1e-5
    (Topology.latency t ~src:0 ~dst:1);
  (* Inter-pod: edge -> edge of another pod is 4 hops, first-hop fanout
     k/2 (the (k/2)^2 path multiplicity shows up one tier later). *)
  Alcotest.(check (list int)) "inter-pod ECMP set" [ 2; 3 ]
    (Topology.next_hops t ~src:0 ~dst:4);
  Alcotest.(check (float 1e-12)) "inter-pod latency is 4 hops" 2e-5
    (Topology.latency t ~src:0 ~dst:4);
  (* Aggregation m uplinks to cores m*(k/2) .. — distinct core groups. *)
  Alcotest.(check (option (float 0.0))) "edge-agg capacity" (Some 10e9)
    (Topology.link_capacity t ~a:0 ~b:2);
  Alcotest.(check (option (float 0.0))) "agg-core capacity" (Some 40e9)
    (Topology.link_capacity t ~a:2 ~b:16);
  Alcotest.(check (option (float 0.0))) "no edge-edge link" None
    (Topology.link_capacity t ~a:0 ~b:1)

let test_fat_tree_partial_pods () =
  (* pods*k + (k/2)^2: the partial fabrics used by the scale scenario
     close on exact switch counts. *)
  let t = Topology.fat_tree ~pods:6 ~k:8 () in
  Alcotest.(check int) "k=8 x 6 pods = 64 switches" 64 (Topology.switches t);
  Alcotest.(check int) "6 server pods + core" 7 (Topology.n_pods t);
  Alcotest.(check int) "cores in the final pod" 6
    (Topology.pod_of t ~sw:(Topology.switches t - 1));
  Alcotest.check_raises "odd k rejected"
    (Invalid_argument "Topology.fat_tree: k must be even and >= 2") (fun () ->
      ignore (Topology.fat_tree ~k:3 ()));
  Alcotest.check_raises "pods > k rejected"
    (Invalid_argument "Topology.fat_tree: pods must be in [1, k]") (fun () ->
      ignore (Topology.fat_tree ~pods:5 ~k:4 ()))

let test_leaf_spine_shape () =
  let t = Topology.leaf_spine ~pod_size:2 ~leaves:4 ~spines:3 () in
  Alcotest.(check int) "4 + 3 switches" 7 (Topology.switches t);
  Alcotest.(check int) "full bipartite links" 12 (Topology.n_links t);
  Alcotest.(check int) "2 leaf pods + spine pod" 3 (Topology.n_pods t);
  Alcotest.(check (list int)) "leaf pod 1" [ 2; 3 ] (Topology.pod_members t ~pod:1);
  Alcotest.(check (list int)) "spine pod" [ 4; 5; 6 ] (Topology.pod_members t ~pod:2);
  (* Leaf-to-leaf fans out across every spine. *)
  Alcotest.(check (list int)) "leaf-leaf ECMP set is all spines" [ 4; 5; 6 ]
    (Topology.next_hops t ~src:0 ~dst:3);
  Alcotest.(check (float 1e-12)) "leaf-leaf is 2 hops" 1e-5
    (Topology.latency t ~src:0 ~dst:3);
  Alcotest.(check (option (float 0.0))) "uniform capacity" (Some 40e9)
    (Topology.link_capacity t ~a:0 ~b:4)

(* ---------- incremental repair vs the Floyd-Warshall oracle ----------

   The test mirrors each constructor's link list so it can compute the
   expected equal-cost first-hop sets straight from the oracle's
   distance matrix: h is a hop of (s, d) iff the s-h link is up and
   fw(s,d) = lat + fw(h,d). *)

let fat_tree_links ~k ~pods =
  let half = k / 2 in
  let edge i j = (i * k) + j
  and agg i m = (i * k) + half + m
  and core m c = (pods * k) + (m * half) + c in
  let links = ref [] in
  for i = 0 to pods - 1 do
    for j = 0 to half - 1 do
      for m = 0 to half - 1 do
        links := (edge i j, agg i m, 5e-6) :: !links
      done
    done;
    for m = 0 to half - 1 do
      for c = 0 to half - 1 do
        links := (agg i m, core m c, 5e-6) :: !links
      done
    done
  done;
  Array.of_list !links

let topo_cases =
  [|
    (fun () ->
      let n = 5 in
      ( Topology.full_mesh ~switches:n ~latency_s:1e-5,
        Array.of_list
          (List.concat
             (List.init n (fun i ->
                  List.init (n - i - 1) (fun j -> (i, i + j + 1, 1e-5))))) ));
    (fun () ->
      ( Topology.line ~switches:6 ~latency_s:2e-5,
        Array.init 5 (fun i -> (i, i + 1, 2e-5)) ));
    (fun () -> (Topology.fat_tree ~pods:3 ~k:4 (), fat_tree_links ~k:4 ~pods:3));
    (fun () ->
      ( Topology.leaf_spine ~leaves:3 ~spines:2 (),
        Array.of_list
          (List.concat
             (List.init 3 (fun l -> List.init 2 (fun s -> (l, 3 + s, 5e-6))))) ));
  |]

(* [links] carries ((a, b, latency), live) for every physical link. *)
let check_equiv topo links =
  let n = Topology.switches topo in
  let fw = Topology.all_pairs_reference topo in
  let expected_hops s d =
    Array.to_list links
    |> List.filter_map (fun ((a, b, lat), live) ->
           if not live then None
           else if a = s && approx fw.(s).(d) (lat +. fw.(b).(d)) then Some b
           else if b = s && approx fw.(s).(d) (lat +. fw.(a).(d)) then Some a
           else None)
    |> List.sort_uniq compare
  in
  let ok = ref true in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then begin
        let reach = Topology.connected topo ~src:s ~dst:d in
        if reach <> Float.is_finite fw.(s).(d) then ok := false;
        let hops = Topology.next_hops topo ~src:s ~dst:d in
        if reach then begin
          if not (approx (Topology.latency topo ~src:s ~dst:d) fw.(s).(d)) then
            ok := false;
          if hops <> expected_hops s d then ok := false
        end
        else if hops <> [] then ok := false
      end
    done
  done;
  !ok

let prop_flap_equiv =
  QCheck.Test.make ~count:60
    ~name:"random link-flap sequences match a from-scratch recompute"
    QCheck.(
      pair (int_range 0 (Array.length topo_cases - 1))
        (small_list (pair small_nat small_nat)))
    (fun (tsel, script) ->
      let topo, link_ends = topo_cases.(tsel) () in
      let links = Array.map (fun l -> (l, ref true)) link_ends in
      Topology.build_all_routes topo;
      let nl = Array.length links in
      List.for_all
        (fun (i, j) ->
          let (a, b, _), live = links.(i mod nl) in
          let target = j mod 2 = 1 in
          let changed = Topology.set_link topo ~a ~b ~up:target in
          let expect_change = !live <> target in
          live := target;
          (* set_link reports false exactly on no-ops, and after every
             transition the repaired tables must equal the oracle's. *)
          changed = expect_change
          && check_equiv topo (Array.map (fun (l, r) -> (l, !r)) links))
        script)

let prop_isolate_restore_equiv =
  QCheck.Test.make ~count:40
    ~name:"isolate/restore sequences match a from-scratch recompute"
    QCheck.(
      pair (int_range 0 (Array.length topo_cases - 1)) (small_list small_nat))
    (fun (tsel, script) ->
      let topo, link_ends = topo_cases.(tsel) () in
      let n = Topology.switches topo in
      let down = Array.make n false in
      let live = Array.map (fun l -> (l, ref true)) link_ends in
      Topology.build_all_routes topo;
      List.for_all
        (fun i ->
          let sw = i mod n in
          (* restore revives EVERY incident link, even toward a switch
             that was isolated later — mirror the documented semantics,
             not a per-switch liveness model. *)
          let up = down.(sw) in
          (if up then ignore (Topology.restore topo ~sw)
           else ignore (Topology.isolate topo ~sw));
          down.(sw) <- not down.(sw);
          Array.iter
            (fun ((a, b, _), r) -> if a = sw || b = sw then r := up)
            live;
          check_equiv topo (Array.map (fun (l, r) -> (l, !r)) live))
        script)

let () =
  Alcotest.run "topology"
    [
      ( "constructors",
        [
          Alcotest.test_case "fat-tree shape" `Quick test_fat_tree_shape;
          Alcotest.test_case "fat-tree partial pods" `Quick
            test_fat_tree_partial_pods;
          Alcotest.test_case "leaf-spine shape" `Quick test_leaf_spine_shape;
        ] );
      ( "incremental routing",
        [
          QCheck_alcotest.to_alcotest prop_flap_equiv;
          QCheck_alcotest.to_alcotest prop_isolate_restore_equiv;
        ] );
    ]
