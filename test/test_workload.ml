(* Tests for workload generation: Zipf sampling, KV objects and the
   arrival/departure (churn) traces. *)

module Zipf = Workload.Zipf
module Kv = Workload.Kv
module Churn = Workload.Churn
module Prng = Stdx.Prng

(* -- Zipf ---------------------------------------------------------------- *)

let test_zipf_range () =
  let z = Zipf.create ~n:100 (Prng.create ~seed:1) in
  for _ = 1 to 1000 do
    let r = Zipf.sample z in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 100)
  done

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:500 (Prng.create ~seed:1) in
  let total = ref 0.0 in
  for i = 0 to 499 do
    total := !total +. Zipf.pmf z i
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total

let test_zipf_pmf_monotone () =
  let z = Zipf.create ~n:100 (Prng.create ~seed:1) in
  for i = 1 to 99 do
    Alcotest.(check bool) "non-increasing" true (Zipf.pmf z i <= Zipf.pmf z (i - 1) +. 1e-12)
  done

let test_zipf_head_mass () =
  let z = Zipf.create ~exponent:1.0 ~n:1000 (Prng.create ~seed:1) in
  Alcotest.(check (float 1e-9)) "zero head" 0.0 (Zipf.head_mass z 0);
  Alcotest.(check (float 1e-9)) "full head" 1.0 (Zipf.head_mass z 1000);
  Alcotest.(check bool) "monotone" true (Zipf.head_mass z 10 < Zipf.head_mass z 100);
  Alcotest.(check bool) "skewed" true (Zipf.head_mass z 100 > 0.5)

let test_zipf_empirical_skew () =
  let z = Zipf.create ~exponent:1.0 ~n:1000 (Prng.create ~seed:7) in
  let n = 50_000 in
  let top10 = ref 0 in
  for _ = 1 to n do
    if Zipf.sample z < 10 then incr top10
  done;
  let frac = float_of_int !top10 /. float_of_int n in
  let expect = Zipf.head_mass z 10 in
  Alcotest.(check bool) "empirical matches head mass" true
    (abs_float (frac -. expect) < 0.02)

let test_zipf_deterministic () =
  let mk () = Zipf.create ~n:50 (Prng.create ~seed:3) in
  let a = mk () and b = mk () in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Zipf.sample a) (Zipf.sample b)
  done

let test_zipf_invalid () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Zipf.create ~n:0 (Prng.create ~seed:1));
       false
     with Invalid_argument _ -> true)

(* -- Kv ------------------------------------------------------------------ *)

let test_kv_key_roundtrip () =
  for rank = 0 to 1000 do
    match Kv.rank_of_key (Kv.key_of_rank rank) with
    | Some r -> Alcotest.(check int) "roundtrip" rank r
    | None -> Alcotest.fail "lost rank"
  done

let test_kv_garbage_key () =
  Alcotest.(check bool) "garbage rejected" true
    (Kv.rank_of_key { Kv.k0 = 123; k1 = 456 } = None)

let test_kv_values_nonzero () =
  for rank = 0 to 1000 do
    Alcotest.(check bool) "non-zero value" true (Kv.value_of_rank rank <> 0)
  done

let test_kv_keys_distinct () =
  let keys = List.init 1000 Kv.key_of_rank in
  Alcotest.(check int) "distinct" 1000 (List.length (List.sort_uniq compare keys))

let test_kv_request_stream () =
  let z = Zipf.create ~n:100 (Prng.create ~seed:2) in
  let reqs = Kv.request_stream z ~n:50 in
  Alcotest.(check int) "length" 50 (List.length reqs);
  List.iter
    (fun r ->
      Alcotest.(check bool) "key matches rank" true
        (Kv.rank_of_key r.Kv.key = Some r.Kv.rank))
    reqs

(* -- Churn --------------------------------------------------------------- *)

let test_churn_pure () =
  let trace = Churn.arrivals_sequence Churn.Cache ~n:10 in
  Alcotest.(check int) "10 epochs" 10 (List.length trace);
  List.iteri
    (fun i e ->
      Alcotest.(check int) "indexed" i e.Churn.index;
      match e.Churn.events with
      | [ Churn.Arrive { kind = Churn.Cache; _ } ] -> ()
      | _ -> Alcotest.fail "one cache arrival per epoch")
    trace

let test_churn_fids_unique () =
  let rng = Prng.create ~seed:5 in
  let trace = Churn.generate Churn.default_config ~epochs:200 rng in
  let fids =
    List.concat_map
      (fun e ->
        List.filter_map
          (function Churn.Arrive { fid; _ } -> Some fid | Churn.Depart _ -> None)
          e.Churn.events)
      trace
  in
  Alcotest.(check int) "unique fids" (List.length fids)
    (List.length (List.sort_uniq compare fids))

let test_churn_departures_only_alive () =
  let rng = Prng.create ~seed:6 in
  let trace = Churn.generate Churn.default_config ~epochs:300 rng in
  let alive = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter
        (function
          | Churn.Arrive { fid; _ } -> Hashtbl.replace alive fid ()
          | Churn.Depart { fid } ->
            Alcotest.(check bool) "departing fid is alive" true (Hashtbl.mem alive fid);
            Hashtbl.remove alive fid)
        e.Churn.events)
    trace

let test_churn_rates () =
  let rng = Prng.create ~seed:7 in
  let epochs = 2000 in
  let trace = Churn.generate Churn.default_config ~epochs rng in
  let arr = ref 0 and dep = ref 0 in
  List.iter
    (fun e ->
      List.iter
        (function Churn.Arrive _ -> incr arr | Churn.Depart _ -> incr dep)
        e.Churn.events)
    trace;
  let arr_rate = float_of_int !arr /. float_of_int epochs in
  let dep_rate = float_of_int !dep /. float_of_int epochs in
  Alcotest.(check bool) "arrival mean ~2" true (arr_rate > 1.85 && arr_rate < 2.15);
  Alcotest.(check bool) "departure mean ~1" true (dep_rate > 0.85 && dep_rate < 1.15)

let test_churn_mixed_kinds () =
  let rng = Prng.create ~seed:8 in
  let trace = Churn.mixed_arrivals ~n:300 rng in
  let kinds =
    List.filter_map
      (fun e ->
        match e.Churn.events with
        | [ Churn.Arrive { kind; _ } ] -> Some kind
        | _ -> None)
      trace
  in
  Alcotest.(check int) "all three kinds appear" 3
    (List.length (List.sort_uniq compare kinds))

let test_churn_extended_kinds () =
  Alcotest.(check int) "five extended kinds" 5 (Array.length Churn.extended_kinds);
  Alcotest.(check int) "three paper kinds" 3 (Array.length Churn.all_kinds);
  let rng = Prng.create ~seed:12 in
  let trace = Churn.generate Churn.extended_config ~epochs:400 rng in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun e ->
      List.iter
        (function
          | Churn.Arrive { kind; _ } -> Hashtbl.replace seen kind ()
          | Churn.Depart _ -> ())
        e.Churn.events)
    trace;
  Alcotest.(check int) "all five kinds arrive" 5 (Hashtbl.length seen)

let test_churn_deterministic () =
  let t1 = Churn.generate Churn.default_config ~epochs:50 (Prng.create ~seed:9) in
  let t2 = Churn.generate Churn.default_config ~epochs:50 (Prng.create ~seed:9) in
  Alcotest.(check bool) "same trace" true (t1 = t2)

(* -- Zipf churn (batched epoch admission workload) ----------------------- *)

let zcfg = { Churn.default_zipf_config with Churn.clients = 2000; batch = 32; resident_target = 48 }

let force cfg seed = List.of_seq (Churn.zipf_churn cfg (Prng.create ~seed))

let zipf_arrivals epochs =
  List.concat_map
    (fun e ->
      List.filter_map
        (function
          | Churn.Arrive { fid; kind; _ } -> Some (fid, kind)
          | Churn.Depart _ -> None)
        e.Churn.events)
    epochs

let test_zipf_churn_deterministic () =
  (* Equal-seed generators replay identically — the property the CI churn
     determinism job leans on end to end. *)
  Alcotest.(check bool) "same sequence" true (force zcfg 11 = force zcfg 11)

let test_zipf_churn_every_client_arrives_once () =
  let epochs = force zcfg 13 in
  let fids = List.map fst (zipf_arrivals epochs) in
  Alcotest.(check int) "every client arrives" zcfg.Churn.clients (List.length fids);
  Alcotest.(check int) "fids unique" (List.length fids)
    (List.length (List.sort_uniq compare fids));
  Alcotest.(check (list int)) "fids increasing" (List.sort compare fids) fids;
  List.iteri
    (fun i e ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d carries at most batch arrivals" i)
        true
        (List.length
           (List.filter (function Churn.Arrive _ -> true | _ -> false) e.Churn.events)
        <= zcfg.Churn.batch))
    epochs

let test_zipf_churn_resident_bound () =
  (* Departures trim the alive set back to resident_target after each
     epoch's arrivals, and only ever remove alive instances. *)
  let epochs = force zcfg 17 in
  let alive = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter
        (function
          | Churn.Arrive { fid; _ } -> Hashtbl.replace alive fid ()
          | Churn.Depart { fid } ->
            Alcotest.(check bool) "departing fid is alive" true (Hashtbl.mem alive fid);
            Hashtbl.remove alive fid)
        e.Churn.events;
      Alcotest.(check bool) "alive trimmed to resident target" true
        (Hashtbl.length alive <= zcfg.Churn.resident_target))
    epochs

let test_zipf_churn_popularity_skew () =
  (* The head of the popularity order must dominate the arrival mix. *)
  let kinds = List.map snd (zipf_arrivals (force zcfg 19)) in
  let count k = List.length (List.filter (( = ) k) kinds) in
  let head = count zcfg.Churn.zipf_kinds.(0) in
  let tail = count zcfg.Churn.zipf_kinds.(Array.length zcfg.Churn.zipf_kinds - 1) in
  Alcotest.(check bool) "head kind dominates tail kind" true (head > 2 * tail);
  Alcotest.(check bool) "head takes a plurality" true
    (Array.for_all (fun k -> count k <= head) zcfg.Churn.zipf_kinds)

let test_zipf_churn_invalid_configs () =
  let raises cfg =
    try
      let (_ : Churn.epoch Seq.t) = Churn.zipf_churn cfg (Prng.create ~seed:1) in
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero batch" true
    (raises { zcfg with Churn.batch = 0 });
  Alcotest.(check bool) "negative clients" true
    (raises { zcfg with Churn.clients = -1 });
  Alcotest.(check bool) "empty kinds" true
    (raises { zcfg with Churn.zipf_kinds = [||] });
  Alcotest.(check bool) "non-positive tenant weight" true
    (raises { zcfg with Churn.tenant_weights = [| 2; 0 |] })

let wzcfg = { zcfg with Churn.tenant_weights = [| 1; 3 |] }

let test_zipf_churn_tenant_labels () =
  let epochs = force wzcfg 11 in
  let tenants =
    List.concat_map
      (fun e ->
        List.filter_map
          (function
            | Churn.Arrive { tenant; _ } -> Some tenant
            | Churn.Depart _ -> None)
          e.Churn.events)
      epochs
  in
  Alcotest.(check bool) "every arrival labelled in range" true
    (List.for_all (function Some (0 | 1) -> true | _ -> false) tenants);
  let count t = List.length (List.filter (( = ) (Some t)) tenants) in
  (* Weight 3 vs 1: the heavy tenant should dominate well beyond noise
     over 2000 arrivals. *)
  Alcotest.(check bool) "weights skew the draw" true (count 1 > 2 * count 0);
  Alcotest.(check bool) "deterministic" true (force wzcfg 11 = force wzcfg 11)

let test_zipf_churn_tenants_perturb_nothing () =
  (* Tenant labels come from their own split stream seeded at setup, so
     enabling weights changes neither the arrival (fid, kind) sequence
     (kinds draw from the zipf stream, split off first) nor the event
     shape: epoch count and per-epoch arrival/departure counts are
     alive-set arithmetic, independent of which fids the labels ride on.
     With weights empty no extra draw happens at all — the no-tenant
     sequence is byte-identical to the pre-tenant generator's. *)
  let plain = force zcfg 13 and weighted = force wzcfg 13 in
  Alcotest.(check bool) "same (fid, kind) arrivals" true
    (zipf_arrivals plain = zipf_arrivals weighted);
  let shape epochs =
    List.map
      (fun e ->
        let arr, dep =
          List.partition
            (function Churn.Arrive _ -> true | Churn.Depart _ -> false)
            e.Churn.events
        in
        (e.Churn.index, List.length arr, List.length dep))
      epochs
  in
  Alcotest.(check bool) "same epoch shape" true (shape plain = shape weighted)

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "range" `Quick test_zipf_range;
          Alcotest.test_case "pmf sums" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "pmf monotone" `Quick test_zipf_pmf_monotone;
          Alcotest.test_case "head mass" `Quick test_zipf_head_mass;
          Alcotest.test_case "empirical skew" `Quick test_zipf_empirical_skew;
          Alcotest.test_case "deterministic" `Quick test_zipf_deterministic;
          Alcotest.test_case "invalid" `Quick test_zipf_invalid;
        ] );
      ( "kv",
        [
          Alcotest.test_case "key roundtrip" `Quick test_kv_key_roundtrip;
          Alcotest.test_case "garbage key" `Quick test_kv_garbage_key;
          Alcotest.test_case "values non-zero" `Quick test_kv_values_nonzero;
          Alcotest.test_case "keys distinct" `Quick test_kv_keys_distinct;
          Alcotest.test_case "request stream" `Quick test_kv_request_stream;
        ] );
      ( "churn",
        [
          Alcotest.test_case "pure sequence" `Quick test_churn_pure;
          Alcotest.test_case "unique fids" `Quick test_churn_fids_unique;
          Alcotest.test_case "departures alive" `Quick test_churn_departures_only_alive;
          Alcotest.test_case "rates" `Quick test_churn_rates;
          Alcotest.test_case "mixed kinds" `Quick test_churn_mixed_kinds;
          Alcotest.test_case "extended kinds" `Quick test_churn_extended_kinds;
          Alcotest.test_case "deterministic" `Quick test_churn_deterministic;
        ] );
      ( "zipf churn",
        [
          Alcotest.test_case "deterministic" `Quick test_zipf_churn_deterministic;
          Alcotest.test_case "every client arrives once" `Quick
            test_zipf_churn_every_client_arrives_once;
          Alcotest.test_case "resident bound" `Quick test_zipf_churn_resident_bound;
          Alcotest.test_case "popularity skew" `Quick test_zipf_churn_popularity_skew;
          Alcotest.test_case "invalid configs" `Quick test_zipf_churn_invalid_configs;
          Alcotest.test_case "tenant labels" `Quick test_zipf_churn_tenant_labels;
          Alcotest.test_case "tenants perturb nothing" `Quick
            test_zipf_churn_tenants_perturb_nothing;
        ] );
    ]
