(* Health-plane tests: Timeseries windowing, ring eviction and dump
   round-trips; Slo multi-window burn-rate evaluation; Monitor watchdog
   transitions, trace-id linking and deterministic reports.

   Everything here drives an explicit virtual clock — no wall time — so
   every assertion is exact, including the byte-identity checks that back
   the CI determinism replay. *)

module Timeseries = Activermt_telemetry.Timeseries
module Json = Activermt_telemetry.Json
module Slo = Activermt_health.Slo
module Monitor = Activermt_health.Monitor

let check_float = Alcotest.(check (float 1e-9))

(* -- Timeseries ------------------------------------------------------------ *)

let test_ts_bucketing () =
  let ts = Timeseries.create ~bucket_s:1.0 ~capacity:8 () in
  Timeseries.add ts ~t:0.25 "c";
  Timeseries.add ts ~t:0.75 ~by:2.0 "c";
  Timeseries.add ts ~t:1.5 ~by:5.0 "c";
  let ws = Timeseries.windows ts "c" in
  Alcotest.(check (list int)) "bucket indices" [ 0; 1 ]
    (List.map (fun w -> w.Timeseries.w_index) ws);
  Alcotest.(check (list int)) "bucket counts" [ 2; 1 ]
    (List.map (fun w -> w.Timeseries.w_count) ws);
  Alcotest.(check (list (float 1e-9))) "bucket sums" [ 3.0; 5.0 ]
    (List.map (fun w -> w.Timeseries.w_sum) ws);
  Alcotest.(check (option string)) "counter kind" (Some "counter")
    (Option.map
       (function `Counter -> "counter" | `Dist -> "dist")
       (Timeseries.kind_of ts "c"))

let test_ts_ring_eviction () =
  let ts = Timeseries.create ~bucket_s:1.0 ~capacity:4 () in
  for i = 0 to 9 do
    Timeseries.add ts ~t:(float_of_int i +. 0.5) ~by:(float_of_int i) "c"
  done;
  let ws = Timeseries.windows ts "c" in
  Alcotest.(check (list int)) "only the newest capacity windows survive"
    [ 6; 7; 8; 9 ]
    (List.map (fun w -> w.Timeseries.w_index) ws);
  let agg = Timeseries.aggregate ts "c" in
  check_float "aggregate over retained windows" (6.0 +. 7.0 +. 8.0 +. 9.0)
    agg.Timeseries.a_sum;
  Alcotest.(check int) "windows covered" 4 agg.Timeseries.a_windows;
  (* [~last] narrows further than retention. *)
  let agg2 = Timeseries.aggregate ~last:2 ts "c" in
  check_float "last-2 sum" 17.0 agg2.Timeseries.a_sum

let test_ts_dist_stats () =
  let ts = Timeseries.create ~bucket_s:1.0 ~capacity:8 () in
  List.iteri
    (fun i v -> Timeseries.observe ts ~t:(0.1 *. float_of_int i) "d" v)
    [ 0.5; 1.0; 2.0; 4.0 ];
  let agg = Timeseries.aggregate ts "d" in
  Alcotest.(check int) "count" 4 agg.Timeseries.a_count;
  check_float "min" 0.5 agg.Timeseries.a_min;
  check_float "max" 4.0 agg.Timeseries.a_max;
  (* Quantile endpoints clamp to the exact observed min/max. *)
  check_float "q0" 0.5 (Timeseries.quantile ts "d" 0.0);
  check_float "q1" 4.0 (Timeseries.quantile ts "d" 1.0);
  Alcotest.check_raises "q outside [0,1]"
    (Invalid_argument "Timeseries.quantile: q outside [0, 1]") (fun () ->
      ignore (Timeseries.quantile ts "d" 1.5))

let test_ts_kind_mismatch () =
  let ts = Timeseries.create () in
  Timeseries.add ts "c";
  Alcotest.check_raises "counter observed as dist"
    (Invalid_argument "Timeseries: c is a counter series, not a dist")
    (fun () -> Timeseries.observe ts "c" 1.0)

let test_ts_noop () =
  let ts = Timeseries.noop in
  Alcotest.(check bool) "disabled" false (Timeseries.enabled ts);
  Timeseries.add ts "c";
  Timeseries.observe ts "d" 1.0;
  Alcotest.(check (list string)) "records nothing" [] (Timeseries.names ts);
  check_float "clock pinned" 0.0 (Timeseries.now ts)

(* Feed one registry through the script, twice; the dumps must agree to
   the byte and survive a print/parse round-trip. *)
let feed_script ts =
  for i = 0 to 19 do
    let t = 0.5 *. float_of_int i in
    Timeseries.add ts ~t ~by:(float_of_int (i mod 3)) "a.count";
    Timeseries.observe ts ~t "a.lat" (0.001 *. float_of_int ((i * 7) mod 13))
  done

let test_ts_json_roundtrip_and_determinism () =
  let mk () =
    let ts = Timeseries.create ~bucket_s:1.0 ~capacity:16 () in
    feed_script ts;
    ts
  in
  let ts = mk () in
  let s1 = Json.to_string (Timeseries.json_of ts) in
  let s2 = Json.to_string (Timeseries.json_of (mk ())) in
  Alcotest.(check string) "same feed, byte-identical dump" s1 s2;
  match Timeseries.dump_of_string s1 with
  | Error e -> Alcotest.failf "dump_of_string: %s" e
  | Ok d ->
    check_float "bucket_s survives" 1.0 d.Timeseries.d_bucket_s;
    Alcotest.(check int) "capacity survives" 16 d.Timeseries.d_capacity;
    Alcotest.(check (list string)) "series names survive"
      [ "a.count"; "a.lat" ]
      (List.map (fun (n, _, _) -> n) d.Timeseries.d_series);
    let _, _, ws =
      List.find (fun (n, _, _) -> n = "a.count") d.Timeseries.d_series
    in
    Alcotest.(check (list int)) "windows survive"
      (List.map (fun w -> w.Timeseries.w_index) (Timeseries.windows ts "a.count"))
      (List.map (fun w -> w.Timeseries.w_index) ws)

let test_ts_dump_rejects_garbage () =
  Alcotest.(check bool) "not an object" true
    (Result.is_error (Timeseries.dump_of_string "[1,2]"));
  Alcotest.(check bool) "unparsable" true
    (Result.is_error (Timeseries.dump_of_string "{"));
  Alcotest.(check bool) "series entry not an object" true
    (Result.is_error (Timeseries.dump_of_string "{\"series\": {\"x\": 3}}"));
  Alcotest.(check bool) "series without windows" true
    (Result.is_error (Timeseries.dump_of_string "{\"series\": {\"x\": {}}}"));
  (* Missing top-level fields default (bucket_s 1.0, capacity 128, no
     series) so fleettop accepts dumps from older writers. *)
  match Timeseries.dump_of_string "{\"bucket_s\": 2.0}" with
  | Error e -> Alcotest.failf "lenient parse failed: %s" e
  | Ok d ->
    check_float "explicit bucket_s" 2.0 d.Timeseries.d_bucket_s;
    Alcotest.(check int) "defaulted capacity" 128 d.Timeseries.d_capacity;
    Alcotest.(check int) "no series" 0 (List.length d.Timeseries.d_series)

(* -- SLO burn rates -------------------------------------------------------- *)

(* A ratio SLO over 10 one-second buckets with a single-bucket fast
   window: pages only when both windows burn, warns when only the slow
   window does. *)
let burn_slo =
  Slo.ratio ~name:"adm" ~window:10 ~fast_fraction:0.1 ~page_burn:5.0
    ~warn_burn:2.0 ~good:"good" ~total:"total" ~target:0.9 ()

let fill_ratio ts ~bucket ~good ~total =
  let t = float_of_int bucket +. 0.5 in
  if good > 0.0 then Timeseries.add ts ~t ~by:good "good";
  Timeseries.add ts ~t ~by:total "total"

let test_slo_ratio_empty_is_healthy () =
  let ts = Timeseries.create ~capacity:16 () in
  let ev = Slo.evaluate ts burn_slo in
  Alcotest.(check string) "no traffic burns no budget" "ok"
    (Slo.status_name ev.Slo.ev_status)

let test_slo_ratio_warn_when_fast_window_clean () =
  let ts = Timeseries.create ~capacity:16 () in
  (* Nine bad buckets, then a clean newest bucket: slow burn 9, fast
     burn 0 — warn (slow >= 2) but no page (fast < 5). *)
  for b = 0 to 8 do
    fill_ratio ts ~bucket:b ~good:0.0 ~total:10.0
  done;
  fill_ratio ts ~bucket:9 ~good:10.0 ~total:10.0;
  let ev = Slo.evaluate ts burn_slo in
  Alcotest.(check string) "warn only" "warn" (Slo.status_name ev.Slo.ev_status);
  check_float "slow burn" 9.0 ev.Slo.ev_burn_slow;
  check_float "fast burn" 0.0 ev.Slo.ev_burn_fast

let test_slo_ratio_page_when_both_burn () =
  let ts = Timeseries.create ~capacity:16 () in
  for b = 0 to 9 do
    fill_ratio ts ~bucket:b ~good:1.0 ~total:10.0
  done;
  let ev = Slo.evaluate ts burn_slo in
  Alcotest.(check string) "page" "page" (Slo.status_name ev.Slo.ev_status);
  check_float "both windows burn 9x budget" 9.0 ev.Slo.ev_burn_slow;
  check_float "fast matches" 9.0 ev.Slo.ev_burn_fast

let test_slo_quantile_bound () =
  let ts = Timeseries.create ~capacity:16 () in
  for i = 0 to 99 do
    Timeseries.observe ts ~t:(0.1 *. float_of_int i) "lat"
      (if i mod 10 = 0 then 2.0 else 0.01)
  done;
  let ok_slo =
    Slo.quantile ~name:"lat" ~window:16 ~series:"lat" ~q:0.5 ~bound:1.0 ()
  in
  let bad_slo =
    Slo.quantile ~name:"lat" ~window:16 ~series:"lat" ~q:0.99 ~bound:1.0 ()
  in
  Alcotest.(check string) "median under bound" "ok"
    (Slo.status_name (Slo.evaluate ts ok_slo).Slo.ev_status);
  Alcotest.(check string) "tail over bound pages" "page"
    (Slo.status_name (Slo.evaluate ts bad_slo).Slo.ev_status)

let test_slo_stat_min_ge () =
  let ts = Timeseries.create ~capacity:16 () in
  let slo =
    Slo.stat ~name:"jain" ~window:16 ~series:"jain" ~stat:Slo.Min ~cmp:`Ge
      ~bound:0.9 ()
  in
  List.iteri
    (fun i v -> Timeseries.observe ts ~t:(float_of_int i) "jain" v)
    [ 0.99; 0.97; 0.95 ];
  Alcotest.(check string) "all above the floor" "ok"
    (Slo.status_name (Slo.evaluate ts slo).Slo.ev_status);
  Timeseries.observe ts ~t:3.0 "jain" 0.5;
  Alcotest.(check string) "one dip below the floor pages" "page"
    (Slo.status_name (Slo.evaluate ts slo).Slo.ev_status)

(* -- Monitor --------------------------------------------------------------- *)

let flap_watchdog =
  {
    Monitor.wd_name = "flap_storm";
    wd_description = "too many link flaps in the window";
    wd_window = 4;
    wd_trigger = Monitor.Event_count { event = "flap"; max = 3 };
    wd_severity = Slo.Page;
  }

let test_monitor_watchdog_transitions () =
  let clock = ref 0.0 in
  let ts = Timeseries.create ~bucket_s:1.0 ~capacity:32 ~now:(fun () -> !clock) () in
  let mon = Monitor.create ~series:ts () in
  Monitor.add_watchdog mon flap_watchdog;
  (* Below threshold: no incident. *)
  for i = 1 to 3 do
    Monitor.event mon ~trace_id:(100 + i) "flap"
  done;
  Monitor.check mon;
  Alcotest.(check int) "under max stays quiet" 0
    (List.length (Monitor.incidents mon));
  (* A fourth flap trips it; the incident carries every contributing
     trace id in event order. *)
  Monitor.event mon ~trace_id:104 "flap";
  Monitor.check mon;
  Monitor.check mon;
  (* still tripped: no duplicate *)
  (match Monitor.incidents mon with
  | [ i ] ->
    Alcotest.(check string) "source" "flap_storm" i.Monitor.i_source;
    Alcotest.(check string) "severity" "page"
      (Slo.status_name i.Monitor.i_severity);
    Alcotest.(check (list int)) "linked traces" [ 101; 102; 103; 104 ]
      i.Monitor.i_trace_ids
  | l -> Alcotest.failf "expected exactly one incident, got %d" (List.length l));
  Alcotest.(check bool) "page recorded" false (Monitor.healthy mon);
  Alcotest.(check int) "page count" 1 (Monitor.page_count mon);
  (* Advance past the window so the rule clears, then trip again: a new
     incident is appended (transitions only, not level-triggered spam). *)
  clock := 10.0;
  Monitor.check mon;
  for i = 1 to 4 do
    Monitor.event mon ~trace_id:(200 + i) "flap"
  done;
  Monitor.check mon;
  Alcotest.(check int) "re-trip appends a second incident" 2
    (List.length (Monitor.incidents mon))

let test_monitor_series_sum_watchdog () =
  let ts = Timeseries.create ~bucket_s:1.0 ~capacity:32 () in
  let mon = Monitor.create ~series:ts () in
  Monitor.add_watchdog mon
    {
      Monitor.wd_name = "rejection_spike";
      wd_description = "rejections over budget";
      wd_window = 8;
      wd_trigger = Monitor.Series_sum { series = "rejected"; max = 10.0 };
      wd_severity = Slo.Warn;
    };
  Timeseries.add ts ~t:0.5 ~by:10.0 "rejected";
  Monitor.check ~at:1.0 mon;
  Alcotest.(check int) "at max stays quiet" 0 (List.length (Monitor.incidents mon));
  Timeseries.add ts ~t:1.5 ~by:1.0 "rejected";
  Monitor.check ~at:2.0 mon;
  Alcotest.(check int) "over max warns" 1 (Monitor.warn_count mon);
  Alcotest.(check bool) "warns keep the monitor healthy" true
    (Monitor.healthy mon)

let test_monitor_report_determinism () =
  let build () =
    let ts = Timeseries.create ~bucket_s:1.0 ~capacity:16 () in
    let mon = Monitor.create ~series:ts () in
    Monitor.add_watchdog mon flap_watchdog;
    feed_script ts;
    for i = 1 to 5 do
      Monitor.event mon ~t:2.0 ~trace_id:i "flap"
    done;
    Monitor.check ~at:2.0 mon;
    let evs = Monitor.evaluate ~at:2.0 mon [ burn_slo ] in
    Json.to_string ~pretty:true (Monitor.json_report ~slos:evs mon)
  in
  let r1 = build () in
  let r2 = build () in
  Alcotest.(check string) "same script, byte-identical report" r1 r2;
  (match Json.of_string r1 with
  | Error e -> Alcotest.failf "report not valid json: %s" e
  | Ok j ->
    Alcotest.(check (option bool)) "paged report is unhealthy" (Some false)
      (Option.bind (Json.member "healthy" j) Json.to_bool))

let () =
  Alcotest.run "health"
    [
      ( "timeseries",
        [
          Alcotest.test_case "bucketing" `Quick test_ts_bucketing;
          Alcotest.test_case "ring eviction" `Quick test_ts_ring_eviction;
          Alcotest.test_case "dist stats" `Quick test_ts_dist_stats;
          Alcotest.test_case "kind mismatch" `Quick test_ts_kind_mismatch;
          Alcotest.test_case "noop registry" `Quick test_ts_noop;
          Alcotest.test_case "json roundtrip + determinism" `Quick
            test_ts_json_roundtrip_and_determinism;
          Alcotest.test_case "dump rejects garbage" `Quick
            test_ts_dump_rejects_garbage;
        ] );
      ( "slo",
        [
          Alcotest.test_case "empty ratio healthy" `Quick
            test_slo_ratio_empty_is_healthy;
          Alcotest.test_case "warn when fast window clean" `Quick
            test_slo_ratio_warn_when_fast_window_clean;
          Alcotest.test_case "page when both windows burn" `Quick
            test_slo_ratio_page_when_both_burn;
          Alcotest.test_case "quantile bound" `Quick test_slo_quantile_bound;
          Alcotest.test_case "stat min floor" `Quick test_slo_stat_min_ge;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "watchdog transitions" `Quick
            test_monitor_watchdog_transitions;
          Alcotest.test_case "series-sum watchdog" `Quick
            test_monitor_series_sum_watchdog;
          Alcotest.test_case "report determinism" `Quick
            test_monitor_report_determinism;
        ] );
    ]
