(* Tests for the switch controller: admission, table installation,
   consistent snapshots, auto/interactive reallocation protocols, the
   timeout path and the cost model. *)

module Controller = Activermt_control.Controller
module Cost_model = Activermt_control.Cost_model
module Negotiate = Activermt_client.Negotiate
module Pkt = Activermt.Packet

let params = Rmt.Params.default

let fresh ?mode ?extraction_timeout_s () =
  let device = Rmt.Device.create params in
  (device, Controller.create ?mode ?extraction_timeout_s device)

let request fid app = Negotiate.request_packet ~fid ~seq:0 app

let admit_exn ctl fid app =
  match Controller.handle_request ctl (request fid app) with
  | Ok p -> p
  | Error (`Rejected _) -> Alcotest.fail "rejected"
  | Error (`Bad_packet e) -> Alcotest.fail e

let cache = Activermt_apps.Cache.service
let hh = Activermt_apps.Heavy_hitter.service

let test_admission_installs_tables () =
  let _, ctl = fresh () in
  let p = admit_exn ctl 1 cache in
  Alcotest.(check bool) "committed" true (p.Controller.phase = Controller.Committed);
  Alcotest.(check bool) "tables installed" true
    (Activermt.Table.installed (Controller.tables ctl) ~fid:1);
  match Negotiate.granted_regions p.Controller.response with
  | Some regions ->
    Alcotest.(check int) "three allocated stages" 3
      (Array.fold_left (fun n r -> if r <> None then n + 1 else n) 0 regions)
  | None -> Alcotest.fail "granted response"

let test_bad_packet () =
  let _, ctl = fresh () in
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args:[||] Activermt_apps.Cache.query_program in
  match Controller.handle_request ctl pkt with
  | Error (`Bad_packet _) -> ()
  | _ -> Alcotest.fail "expected bad-packet error"

let test_rejection () =
  let _, ctl = fresh () in
  for fid = 1 to 16 do
    ignore (admit_exn ctl fid hh)
  done;
  match Controller.handle_request ctl (request 17 hh) with
  | Error (`Rejected _) -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_new_region_zeroed () =
  let device, ctl = fresh () in
  (* Dirty the device memory, then admit: the new app's region must read
     as zero. *)
  let st = Rmt.Device.stage device 1 in
  Rmt.Register_array.set st.Rmt.Device.regs 0 12345;
  ignore (admit_exn ctl 1 cache);
  match Controller.read_region ctl ~fid:1 ~stage:1 with
  | Some data -> Alcotest.(check int) "zeroed" 0 data.(0)
  | None -> Alcotest.fail "region readable"

let test_control_plane_write_read () =
  let _, ctl = fresh () in
  ignore (admit_exn ctl 1 cache);
  Alcotest.(check bool) "write ok" true
    (Controller.write_region_word ctl ~fid:1 ~stage:1 ~index:5 ~value:777);
  (match Controller.read_region ctl ~fid:1 ~stage:1 with
  | Some data -> Alcotest.(check int) "read back" 777 data.(5)
  | None -> Alcotest.fail "region");
  Alcotest.(check bool) "oob write rejected" false
    (Controller.write_region_word ctl ~fid:1 ~stage:1 ~index:70000 ~value:1);
  Alcotest.(check bool) "wrong stage rejected" false
    (Controller.write_region_word ctl ~fid:1 ~stage:0 ~index:0 ~value:1)

let test_auto_migration_copies_data () =
  (* A second cache arrives on the same stages under best-fit; app 1
     shrinks and relocates, and the controller copies its old contents
     into the new region. *)
  let ctlb =
    Controller.create ~scheme:Activermt_alloc.Allocator.Best_fit
      (Rmt.Device.create params)
  in
  ignore (admit_exn ctlb 1 cache);
  for i = 0 to 9 do
    ignore (Controller.write_region_word ctlb ~fid:1 ~stage:1 ~index:i ~value:(100 + i))
  done;
  let p = admit_exn ctlb 2 cache in
  Alcotest.(check (list int)) "app 1 reallocated" [ 1 ] p.Controller.reallocated;
  match Controller.read_region ctlb ~fid:1 ~stage:1 with
  | Some data ->
    Alcotest.(check int) "data migrated" 105 data.(5)
  | None -> Alcotest.fail "region"

let test_snapshot_contents () =
  let ctl =
    Controller.create ~scheme:Activermt_alloc.Allocator.Best_fit
      (Rmt.Device.create params)
  in
  ignore (admit_exn ctl 1 cache);
  ignore (Controller.write_region_word ctl ~fid:1 ~stage:1 ~index:3 ~value:42);
  ignore (admit_exn ctl 2 cache);
  match Controller.snapshot_of ctl ~fid:1 with
  | [] -> Alcotest.fail "snapshot taken"
  | snaps ->
    let stage1 = List.find (fun (s, _, _) -> s = 1) snaps in
    let _, _, data = stage1 in
    Alcotest.(check int) "snapshot has pre-move data" 42 data.(3)

let test_departure_expands () =
  let ctl =
    Controller.create ~scheme:Activermt_alloc.Allocator.Best_fit
      (Rmt.Device.create params)
  in
  ignore (admit_exn ctl 1 cache);
  ignore (admit_exn ctl 2 cache);
  let _timing, expanded = Controller.handle_departure ctl ~fid:1 in
  Alcotest.(check (list int)) "app 2 expanded" [ 2 ] expanded;
  Alcotest.(check bool) "tables removed" false
    (Activermt.Table.installed (Controller.tables ctl) ~fid:1)

let test_interactive_protocol () =
  let ctl =
    Controller.create ~mode:`Interactive
      ~scheme:Activermt_alloc.Allocator.Best_fit (Rmt.Device.create params)
  in
  ignore (admit_exn ctl 1 cache);
  let p = admit_exn ctl 2 cache in
  (match p.Controller.phase with
  | Controller.Awaiting_extraction { impacted } ->
    Alcotest.(check (list int)) "app 1 impacted" [ 1 ] impacted
  | Controller.Committed -> Alcotest.fail "should await extraction");
  let tables = Controller.tables ctl in
  Alcotest.(check bool) "app 1 quiesced" true (Activermt.Table.is_quiesced tables ~fid:1);
  Alcotest.(check bool) "app 2 not installed yet" false
    (Activermt.Table.installed tables ~fid:2);
  Alcotest.(check (list int)) "pending" [ 1 ] (Controller.pending_extraction ctl);
  Controller.complete_extraction ctl ~fid:1;
  Alcotest.(check (list int)) "none pending" [] (Controller.pending_extraction ctl);
  Alcotest.(check bool) "app 1 reactivated" false
    (Activermt.Table.is_quiesced tables ~fid:1);
  Alcotest.(check bool) "app 2 committed" true (Activermt.Table.installed tables ~fid:2);
  Alcotest.(check bool) "app 2 reactivated" false
    (Activermt.Table.is_quiesced tables ~fid:2)

let test_interactive_no_realloc_commits_directly () =
  let ctl = Controller.create ~mode:`Interactive (Rmt.Device.create params) in
  let p = admit_exn ctl 1 cache in
  Alcotest.(check bool) "committed immediately" true
    (p.Controller.phase = Controller.Committed)

let test_interactive_timeout () =
  let ctl =
    Controller.create ~mode:`Interactive ~extraction_timeout_s:0.5
      ~scheme:Activermt_alloc.Allocator.Best_fit (Rmt.Device.create params)
  in
  ignore (admit_exn ctl 1 cache);
  ignore (admit_exn ctl 2 cache);
  Controller.expire ctl ~elapsed_s:0.4;
  Alcotest.(check (list int)) "still pending" [ 1 ] (Controller.pending_extraction ctl);
  Controller.expire ctl ~elapsed_s:0.2;
  Alcotest.(check (list int)) "timed out" [] (Controller.pending_extraction ctl);
  Alcotest.(check bool) "app 2 force-committed" true
    (Activermt.Table.installed (Controller.tables ctl) ~fid:2)

let test_departure_unblocks_pending () =
  (* The impacted app departs instead of acking: the pending admission
     must commit without waiting for the timeout. *)
  let ctl =
    Controller.create ~mode:`Interactive
      ~scheme:Activermt_alloc.Allocator.Best_fit (Rmt.Device.create params)
  in
  ignore (admit_exn ctl 1 cache);
  ignore (admit_exn ctl 2 cache);
  Alcotest.(check (list int)) "waiting on app 1" [ 1 ] (Controller.pending_extraction ctl);
  ignore (Controller.handle_departure ctl ~fid:1);
  Alcotest.(check (list int)) "no longer pending" [] (Controller.pending_extraction ctl);
  Alcotest.(check bool) "app 2 committed" true
    (Activermt.Table.installed (Controller.tables ctl) ~fid:2)

let test_regions_packet () =
  let _, ctl = fresh () in
  ignore (admit_exn ctl 1 cache);
  (match Controller.regions_packet ctl ~fid:1 with
  | Some pkt -> (
    match Negotiate.granted_regions pkt with
    | Some _ -> ()
    | None -> Alcotest.fail "granted")
  | None -> Alcotest.fail "resident");
  Alcotest.(check bool) "absent fid" true (Controller.regions_packet ctl ~fid:9 = None)

let test_provision_log_and_costs () =
  let _, ctl = fresh () in
  ignore (admit_exn ctl 1 cache);
  ignore (admit_exn ctl 2 cache);
  let log = Controller.provision_log ctl in
  Alcotest.(check int) "two events" 2 (List.length log);
  List.iter
    (fun b ->
      Alcotest.(check bool) "positive table time" true (b.Cost_model.table_update_s > 0.0);
      Alcotest.(check bool) "total bounded" true (Cost_model.total b < 29.0))
    log

let test_privilege_lifecycle () =
  let _, ctl = fresh () in
  ignore (admit_exn ctl 1 cache);
  let tables = Controller.tables ctl in
  Alcotest.(check bool) "default unprivileged" false
    (Activermt.Table.is_privileged tables ~fid:1);
  Controller.grant_privilege ctl ~fid:1;
  Alcotest.(check bool) "granted (live reinstall)" true
    (Activermt.Table.is_privileged tables ~fid:1);
  Controller.revoke_privilege ctl ~fid:1;
  Alcotest.(check bool) "revoked" false
    (Activermt.Table.is_privileged tables ~fid:1);
  (* Privilege configured before admission sticks at install time. *)
  Controller.grant_privilege ctl ~fid:2;
  ignore (admit_exn ctl 2 cache);
  Alcotest.(check bool) "pre-configured" true
    (Activermt.Table.is_privileged tables ~fid:2)

let test_recirculation_limit_lifecycle () =
  let _, ctl = fresh () in
  ignore (admit_exn ctl 1 cache);
  let tables = Controller.tables ctl in
  Alcotest.(check (option int)) "unlimited by default" None
    (Activermt.Table.max_passes_of tables ~fid:1);
  Controller.limit_recirculation ctl ~fid:1 ~max_passes:2;
  Alcotest.(check (option int)) "capped" (Some 2)
    (Activermt.Table.max_passes_of tables ~fid:1);
  Alcotest.(check bool) "invalid cap raises" true
    (try
       Controller.limit_recirculation ctl ~fid:1 ~max_passes:0;
       false
     with Invalid_argument _ -> true)

(* -- Async provision queue (batched epoch admission) --------------------- *)

let test_drain_matches_sequential_decisions () =
  (* An over-capacity stream of pinned heavy hitters interleaved with
     elastic caches, replayed through handle_request on one controller
     and through enqueue/drain with single-request epochs on a twin: the
     admit/reject pattern must match exactly. *)
  let _, ctl_seq = fresh () in
  let _, ctl_bat = fresh () in
  let reqs =
    List.init 40 (fun i ->
        let fid = i + 1 in
        if i mod 2 = 0 then request fid hh else request fid cache)
  in
  let seq_decisions =
    List.map (fun p -> Result.is_ok (Controller.handle_request ctl_seq p)) reqs
  in
  Alcotest.(check bool) "stream over-subscribes the switch" true
    (List.exists not seq_decisions);
  List.iter (Controller.enqueue_request ctl_bat) reqs;
  Alcotest.(check int) "queue holds the backlog" 40 (Controller.queue_depth ctl_bat);
  let epochs = Controller.drain ~max_batch:1 ctl_bat in
  Alcotest.(check int) "one epoch per request" 40 (List.length epochs);
  let bat_decisions =
    List.concat_map
      (fun e -> List.map Result.is_ok e.Controller.results)
      epochs
  in
  Alcotest.(check (list bool)) "identical admit/reject pattern" seq_decisions
    bat_decisions;
  Alcotest.(check int) "queue drained" 0 (Controller.queue_depth ctl_bat);
  Alcotest.(check (list int)) "identical resident sets"
    (List.sort compare (Activermt_alloc.Allocator.resident (Controller.allocator ctl_seq)))
    (List.sort compare (Activermt_alloc.Allocator.resident (Controller.allocator ctl_bat)))

let test_drain_duplicate_fids_idempotent () =
  let tel = Activermt_telemetry.Telemetry.create () in
  let ctl = Controller.create ~telemetry:tel (Rmt.Device.create params) in
  (* Intra-epoch echo: the same FID enqueued twice before a drain. *)
  Controller.enqueue_request ctl (request 1 cache);
  Controller.enqueue_request ctl (request 1 cache);
  (match Controller.drain ctl with
  | [ e ] ->
    Alcotest.(check int) "both requests answered" 2 (List.length e.Controller.results);
    List.iter
      (fun r ->
        match r with
        | Ok p -> Alcotest.(check int) "answered for fid 1" 1 p.Controller.fid
        | Error _ -> Alcotest.fail "duplicate must be answered, not rejected")
      e.Controller.results
  | _ -> Alcotest.fail "one epoch");
  Alcotest.(check (list int)) "allocated exactly once" [ 1 ]
    (Activermt_alloc.Allocator.resident (Controller.allocator ctl));
  (* Cross-drain retry: the FID is already resident. *)
  Controller.enqueue_request ctl (request 1 cache);
  (match Controller.drain ctl with
  | [ e ] -> (
    match e.Controller.results with
    | [ Ok p ] ->
      Alcotest.(check (list int)) "no reallocation for a retry" []
        p.Controller.reallocated
    | _ -> Alcotest.fail "answered from the existing allocation")
  | _ -> Alcotest.fail "one epoch");
  Alcotest.(check int) "both duplicates counted" 2
    (Activermt_telemetry.Telemetry.counter_value tel "control.dup_requests")

let test_drain_epoch_bumps_table_epoch_once () =
  (* Two caches joining a best-fit switch in one epoch both land on the
     resident cache's stages, reallocating it — but its tables (and
     Table.epoch, which keys JIT invalidation) must move exactly once for
     the whole epoch, not once per admission.  The expected advance is
     measured from a sequential twin, where each of the two admissions
     reinstalls the resident cache separately. *)
  let mk () =
    Controller.create ~scheme:Activermt_alloc.Allocator.Best_fit
      (Rmt.Device.create params)
  in
  let seq = mk () in
  ignore (admit_exn seq 1 cache);
  let e0 = Activermt.Table.epoch (Controller.tables seq) ~fid:1 in
  ignore (admit_exn seq 2 cache);
  let per_reinstall = Activermt.Table.epoch (Controller.tables seq) ~fid:1 - e0 in
  Alcotest.(check bool) "a reallocation moves the epoch" true (per_reinstall > 0);
  ignore (admit_exn seq 3 cache);
  Alcotest.(check int) "sequential: one reinstall per admission"
    (e0 + (2 * per_reinstall))
    (Activermt.Table.epoch (Controller.tables seq) ~fid:1);
  let bat = mk () in
  ignore (admit_exn bat 1 cache);
  let before = Activermt.Table.epoch (Controller.tables bat) ~fid:1 in
  Controller.enqueue_request bat (request 2 cache);
  Controller.enqueue_request bat (request 3 cache);
  (match Controller.drain bat with
  | [ e ] ->
    let realloc_fids =
      List.concat_map
        (function Ok p -> p.Controller.reallocated | Error _ -> [])
        e.Controller.results
      |> List.sort_uniq compare
    in
    Alcotest.(check bool) "resident cache reallocated by the epoch" true
      (List.mem 1 realloc_fids);
    Alcotest.(check int) "installs: each touched app exactly once"
      (2 + List.length (List.filter (fun f -> f = 1) realloc_fids))
      e.Controller.installs
  | _ -> Alcotest.fail "one epoch");
  Alcotest.(check int) "batched: one reinstall for the whole epoch"
    (before + per_reinstall)
    (Activermt.Table.epoch (Controller.tables bat) ~fid:1)

let test_drain_epoch_indices_monotonic () =
  let _, ctl = fresh () in
  Controller.enqueue_request ctl (request 1 cache);
  Controller.enqueue_request ctl (request 2 cache);
  Controller.enqueue_request ctl (request 3 cache);
  let first = Controller.drain ~max_batch:2 ctl in
  Alcotest.(check (list int)) "backlog split into epochs" [ 0; 1 ]
    (List.map (fun e -> e.Controller.epoch_index) first);
  Controller.enqueue_request ctl (request 4 cache);
  (match Controller.drain ctl with
  | [ e ] ->
    Alcotest.(check int) "index continues across drains" 2 e.Controller.epoch_index
  | _ -> Alcotest.fail "one epoch");
  Alcotest.(check (list unit)) "empty queue drains to nothing" []
    (List.map ignore (Controller.drain ctl))

let test_cost_model_breakdown () =
  let b =
    Cost_model.breakdown Cost_model.default ~allocation_s:0.01 ~entries_updated:100
      ~apps_touched:2 ~words_snapshotted:1000 ~notifications:3
  in
  Alcotest.(check (float 1e-9)) "allocation passthrough" 0.01 b.Cost_model.allocation_s;
  Alcotest.(check (float 1e-9)) "table = entries + installs"
    ((100.0 *. 2.5e-4) +. (2.0 *. 2.0e-2))
    b.Cost_model.table_update_s;
  Alcotest.(check (float 1e-12)) "snapshot" 1.0e-4 b.Cost_model.snapshot_s;
  Alcotest.(check bool) "p4 compile dwarfs provisioning" true
    (Cost_model.p4_compile_s > 20.0 *. Cost_model.total b)

let () =
  Alcotest.run "control"
    [
      ( "admission",
        [
          Alcotest.test_case "installs tables" `Quick test_admission_installs_tables;
          Alcotest.test_case "bad packet" `Quick test_bad_packet;
          Alcotest.test_case "rejection" `Quick test_rejection;
          Alcotest.test_case "new region zeroed" `Quick test_new_region_zeroed;
          Alcotest.test_case "control-plane rw" `Quick test_control_plane_write_read;
        ] );
      ( "reallocation",
        [
          Alcotest.test_case "auto migration" `Quick test_auto_migration_copies_data;
          Alcotest.test_case "snapshot contents" `Quick test_snapshot_contents;
          Alcotest.test_case "departure expands" `Quick test_departure_expands;
          Alcotest.test_case "interactive protocol" `Quick test_interactive_protocol;
          Alcotest.test_case "interactive no-realloc" `Quick
            test_interactive_no_realloc_commits_directly;
          Alcotest.test_case "interactive timeout" `Quick test_interactive_timeout;
          Alcotest.test_case "departure unblocks pending" `Quick
            test_departure_unblocks_pending;
          Alcotest.test_case "regions packet" `Quick test_regions_packet;
        ] );
      ( "provision queue",
        [
          Alcotest.test_case "drain matches sequential decisions" `Quick
            test_drain_matches_sequential_decisions;
          Alcotest.test_case "duplicate fids idempotent" `Quick
            test_drain_duplicate_fids_idempotent;
          Alcotest.test_case "table epoch bumps once per epoch" `Quick
            test_drain_epoch_bumps_table_epoch_once;
          Alcotest.test_case "epoch indices monotonic" `Quick
            test_drain_epoch_indices_monotonic;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "provision log" `Quick test_provision_log_and_costs;
          Alcotest.test_case "privilege lifecycle" `Quick test_privilege_lifecycle;
          Alcotest.test_case "recirculation limit" `Quick test_recirculation_limit_lifecycle;
          Alcotest.test_case "breakdown" `Quick test_cost_model_breakdown;
        ] );
    ]
