(* Tests for the dynamic memory allocator: per-stage pools with pinned
   inelastic regions and progressively-filled elastic shares, and the
   mutant-searching online allocator with its four schemes. *)

module Pool = Activermt_alloc.Pool
module Allocator = Activermt_alloc.Allocator
module Spec = Activermt_compiler.Spec
module Mutant = Activermt_compiler.Mutant
module App = Activermt_apps.App
module Trace = Activermt_telemetry.Trace

let params = Rmt.Params.default

let cache_arrival fid =
  {
    Allocator.fid;
    spec = App.spec Activermt_apps.Cache.service;
    elastic = true;
    demand_blocks = [| 1; 1; 1 |];
  }

let hh_arrival fid =
  {
    Allocator.fid;
    spec = App.spec Activermt_apps.Heavy_hitter.service;
    elastic = false;
    demand_blocks = Activermt_apps.Heavy_hitter.service.App.demand_blocks;
  }

let lb_arrival fid =
  {
    Allocator.fid;
    spec = App.spec Activermt_apps.Cheetah_lb.service;
    elastic = false;
    demand_blocks = [| 1; 1; 1; 1 |];
  }

let admit_exn alloc arrival =
  match Allocator.admit alloc arrival with
  | Allocator.Admitted a -> a
  | Allocator.Rejected _ -> Alcotest.fail "unexpected rejection"

(* -- Pool ---------------------------------------------------------------- *)

let test_pool_inelastic_pinned_at_bottom () =
  let p = Pool.create ~total_blocks:16 in
  (match Pool.add_inelastic p ~fid:1 ~blocks:4 with
  | Ok r -> Alcotest.(check int) "starts at 0" 0 r.Pool.first_block
  | Error `No_space -> Alcotest.fail "fits");
  match Pool.add_inelastic p ~fid:2 ~blocks:4 with
  | Ok r -> Alcotest.(check int) "stacked above" 4 r.Pool.first_block
  | Error `No_space -> Alcotest.fail "fits"

let test_pool_hole_reuse () =
  let p = Pool.create ~total_blocks:16 in
  ignore (Pool.add_inelastic p ~fid:1 ~blocks:4);
  ignore (Pool.add_inelastic p ~fid:2 ~blocks:4);
  ignore (Pool.add_inelastic p ~fid:3 ~blocks:4);
  Alcotest.(check bool) "remove middle" true (Pool.remove p ~fid:2);
  Alcotest.(check int) "high water unchanged" 12 (Pool.high_water p);
  (* A smaller app reuses the hole (first fit). *)
  match Pool.add_inelastic p ~fid:4 ~blocks:3 with
  | Ok r -> Alcotest.(check int) "hole reused" 4 r.Pool.first_block
  | Error `No_space -> Alcotest.fail "fits"

let test_pool_fragmentation_blocks_big () =
  let p = Pool.create ~total_blocks:12 in
  ignore (Pool.add_inelastic p ~fid:1 ~blocks:4);
  ignore (Pool.add_inelastic p ~fid:2 ~blocks:4);
  ignore (Pool.add_inelastic p ~fid:3 ~blocks:4);
  ignore (Pool.remove p ~fid:2);
  (* 4 free in the hole, 0 above: a 5-block app cannot fit (the paper
     accepts this fragmentation for pinned apps). *)
  Alcotest.(check bool) "5 blocks do not fit" false (Pool.can_fit_inelastic p ~blocks:5);
  Alcotest.(check bool) "4 blocks fit" true (Pool.can_fit_inelastic p ~blocks:4)

let test_pool_elastic_fills_everything () =
  let p = Pool.create ~total_blocks:64 in
  ignore (Pool.add_inelastic p ~fid:1 ~blocks:14);
  (match Pool.add_elastic p ~fid:2 ~min_blocks:1 with
  | Ok () -> ()
  | Error `No_space -> Alcotest.fail "fits");
  (match Pool.refill_elastic p with
  | [ (2, r) ] ->
    Alcotest.(check int) "starts above pinned zone" 14 r.Pool.first_block;
    Alcotest.(check int) "consumes all free blocks" 50 r.Pool.n_blocks
  | _ -> Alcotest.fail "one elastic resident");
  Alcotest.(check int) "pool full" 64 (Pool.used_blocks p)

let test_pool_elastic_equal_split () =
  let p = Pool.create ~total_blocks:30 in
  ignore (Pool.add_elastic p ~fid:1 ~min_blocks:1);
  ignore (Pool.add_elastic p ~fid:2 ~min_blocks:1);
  ignore (Pool.add_elastic p ~fid:3 ~min_blocks:1);
  let layout = Pool.refill_elastic p in
  List.iter
    (fun (_, r) -> Alcotest.(check int) "equal share" 10 r.Pool.n_blocks)
    layout

let test_pool_elastic_remainder () =
  let p = Pool.create ~total_blocks:32 in
  ignore (Pool.add_elastic p ~fid:1 ~min_blocks:1);
  ignore (Pool.add_elastic p ~fid:2 ~min_blocks:1);
  ignore (Pool.add_elastic p ~fid:3 ~min_blocks:1);
  let layout = Pool.refill_elastic p in
  let sizes = List.map (fun (_, r) -> r.Pool.n_blocks) layout in
  Alcotest.(check int) "all blocks used" 32 (List.fold_left ( + ) 0 sizes);
  Alcotest.(check bool) "max-min spread <= 1" true
    (List.fold_left max 0 sizes - List.fold_left min 32 sizes <= 1)

let test_pool_progressive_fill_respects_minimums () =
  (* One app insists on 20 blocks; the rest split what remains. *)
  let p = Pool.create ~total_blocks:32 in
  ignore (Pool.add_elastic p ~fid:1 ~min_blocks:20);
  ignore (Pool.add_elastic p ~fid:2 ~min_blocks:1);
  ignore (Pool.add_elastic p ~fid:3 ~min_blocks:1);
  let layout = Pool.refill_elastic p in
  let size fid = (List.assoc fid layout).Pool.n_blocks in
  Alcotest.(check int) "minimum honoured" 20 (size 1);
  Alcotest.(check int) "fair remainder" 6 (size 2);
  Alcotest.(check int) "fair remainder" 6 (size 3)

let test_pool_fungible () =
  let p = Pool.create ~total_blocks:32 in
  ignore (Pool.add_inelastic p ~fid:1 ~blocks:10);
  ignore (Pool.add_elastic p ~fid:2 ~min_blocks:2);
  Alcotest.(check int) "total - pinned - mins" 20 (Pool.fungible_blocks p)

let test_pool_map_no_overlap () =
  let p = Pool.create ~total_blocks:32 in
  ignore (Pool.add_inelastic p ~fid:1 ~blocks:5);
  ignore (Pool.add_elastic p ~fid:2 ~min_blocks:1);
  ignore (Pool.add_elastic p ~fid:3 ~min_blocks:1);
  ignore (Pool.refill_elastic p);
  let m = Pool.map p in
  let owned = Array.to_list m |> List.filter (fun f -> f >= 0) in
  Alcotest.(check int) "used = owned blocks" (Pool.used_blocks p) (List.length owned)

let test_pool_unfill_roundtrip () =
  let p = Pool.create ~total_blocks:32 in
  ignore (Pool.add_inelastic p ~fid:1 ~blocks:8);
  ignore (Pool.add_elastic p ~fid:2 ~min_blocks:2);
  ignore (Pool.add_elastic p ~fid:3 ~min_blocks:2);
  let layout1 = Pool.refill_elastic p in
  Alcotest.(check int) "filled" 32 (Pool.used_blocks p);
  Pool.unfill_elastic p;
  (* Shares are withdrawn, but no decision input changes: residency,
     minimums and feasibility all read counters, not ranges. *)
  Alcotest.(check int) "only pinned blocks held" 8 (Pool.used_blocks p);
  Alcotest.(check int) "mins still reserved" 20 (Pool.fungible_blocks p);
  Alcotest.(check int) "residents unchanged" 2 (Pool.n_elastic p);
  Alcotest.(check bool) "elastic feasibility unchanged" true
    (Pool.can_fit_elastic p ~min_blocks:20);
  Array.iter
    (fun f -> Alcotest.(check bool) "no elastic blocks mapped" true (f <> 2 && f <> 3))
    (Pool.map p);
  let layout2 = Pool.refill_elastic p in
  Alcotest.(check int) "refilled" 32 (Pool.used_blocks p);
  List.iter2
    (fun (f1, r1) (f2, r2) ->
      Alcotest.(check int) "same fid order" f1 f2;
      Alcotest.(check int) "same share" r1.Pool.n_blocks r2.Pool.n_blocks)
    layout1 layout2

let test_pool_unfill_idempotent () =
  let p = Pool.create ~total_blocks:16 in
  ignore (Pool.add_elastic p ~fid:1 ~min_blocks:1);
  ignore (Pool.refill_elastic p);
  Pool.unfill_elastic p;
  Pool.unfill_elastic p;
  (* Double withdrawal must not go negative or double-subtract. *)
  Alcotest.(check int) "used stays zero" 0 (Pool.used_blocks p);
  (match Pool.refill_elastic p with
  | [ (1, r) ] -> Alcotest.(check int) "full share back" 16 r.Pool.n_blocks
  | _ -> Alcotest.fail "one elastic resident");
  (* Unfill on a pool with no elastic residents is a no-op. *)
  let q = Pool.create ~total_blocks:8 in
  ignore (Pool.add_inelastic q ~fid:1 ~blocks:3);
  Pool.unfill_elastic q;
  Alcotest.(check int) "pinned untouched" 3 (Pool.used_blocks q);
  Alcotest.(check (list (pair int (of_pp (fun _ _ -> ()))))) "empty refill" []
    (Pool.refill_elastic q)

let test_pool_unfill_then_pin_into_zone () =
  (* The batched-admission sequence unfill_elastic exists for: a pin that
     raises the high-water mark into blocks a stale elastic range covers
     must not read as an overlap. *)
  let p = Pool.create ~total_blocks:32 in
  ignore (Pool.add_elastic p ~fid:1 ~min_blocks:1);
  ignore (Pool.refill_elastic p);
  Pool.unfill_elastic p;
  (match Pool.add_inelastic p ~fid:2 ~blocks:10 with
  | Ok r -> Alcotest.(check int) "pins at bottom" 0 r.Pool.first_block
  | Error `No_space -> Alcotest.fail "fits");
  (match Pool.refill_elastic p with
  | [ (1, r) ] ->
    Alcotest.(check int) "repacked above new mark" 10 r.Pool.first_block;
    Alcotest.(check int) "rest of the pool" 22 r.Pool.n_blocks
  | _ -> Alcotest.fail "one elastic resident");
  (* map raises if any two residents overlap — the invariant at stake. *)
  let owned = Array.to_list (Pool.map p) |> List.filter (fun f -> f >= 0) in
  Alcotest.(check int) "fully mapped" 32 (List.length owned)

let prop_pool_progressive_fill =
  QCheck.Test.make ~name:"progressive filling: budget exhausted, mins kept"
    ~count:200
    QCheck.(pair (int_range 10 200) (list_of_size Gen.(int_range 1 8) (int_range 1 10)))
    (fun (total, mins) ->
      QCheck.assume (total > 0 && List.for_all (fun m -> m > 0) mins);
      QCheck.assume (List.fold_left ( + ) 0 mins <= total);
      let p = Pool.create ~total_blocks:total in
      List.iteri
        (fun i m ->
          match Pool.add_elastic p ~fid:i ~min_blocks:m with
          | Ok () -> ()
          | Error `No_space -> QCheck.assume_fail ())
        mins;
      let layout = Pool.refill_elastic p in
      let sizes = List.map (fun (_, r) -> r.Pool.n_blocks) layout in
      List.fold_left ( + ) 0 sizes = total
      && List.for_all2 (fun s m -> s >= m) sizes mins)

let prop_pool_max_min_characterization =
  (* Max-min with minimums: every share equals max(min_i, water) for a
     single water level, up to the one-block integer remainder. *)
  QCheck.Test.make ~name:"progressive filling is max-min fair" ~count:200
    QCheck.(pair (int_range 20 300) (list_of_size Gen.(int_range 2 8) (int_range 1 12)))
    (fun (total, mins) ->
      QCheck.assume (total > 0 && List.for_all (fun m -> m > 0) mins);
      QCheck.assume (List.fold_left ( + ) 0 mins <= total);
      let p = Pool.create ~total_blocks:total in
      List.iteri
        (fun i m ->
          match Pool.add_elastic p ~fid:i ~min_blocks:m with
          | Ok () -> ()
          | Error `No_space -> QCheck.assume_fail ())
        mins;
      let layout = Pool.refill_elastic p in
      let shares = List.map (fun (_, r) -> r.Pool.n_blocks) layout in
      (* Water level = the largest share among apps not pinned at their
         minimum; all flexible apps sit within one block of it. *)
      let flexible =
        List.filter (fun (s, m) -> s > m) (List.combine shares mins)
      in
      match flexible with
      | [] -> true
      | (s0, _) :: _ ->
        List.for_all (fun (s, _) -> abs (s - s0) <= 1) flexible)

(* The pool's O(1) occupancy counters must always agree with folds over
   the slot lists (the seed's implementation), under any interleaving of
   adds, removes and refills. *)
let counters_match_slot_folds p =
  let slots = Pool.slots p in
  let inelastic = List.filter (fun s -> not s.Pool.elastic) slots in
  let elastic = List.filter (fun s -> s.Pool.elastic) slots in
  let used = List.fold_left (fun acc s -> acc + s.Pool.range.Pool.n_blocks) 0 slots in
  let hw =
    List.fold_left (fun acc s -> max acc (Pool.range_end s.Pool.range)) 0 inelastic
  in
  let emin = List.fold_left (fun acc s -> acc + s.Pool.min_blocks) 0 elastic in
  Pool.used_blocks p = used
  && Pool.high_water p = hw
  && Pool.n_slots p = List.length slots
  && Pool.n_elastic p = List.length elastic
  && Pool.elastic_min_total p = emin
  && Pool.fungible_blocks p = Pool.total_blocks p - hw - emin

let prop_pool_counters =
  QCheck.Test.make ~name:"O(1) counters = list folds under random ops" ~count:200
    QCheck.(make Gen.(list_size (int_range 1 40) (pair (int_range 0 3) (int_range 1 8))))
    (fun ops ->
      let p = Pool.create ~total_blocks:64 in
      let next = ref 0 in
      let live = ref [] in
      List.for_all
        (fun (op, blocks) ->
          (* Mutations that move the high-water mark are followed by a
             refill, as the allocator always does: elastic ranges are
             only meaningful after [refill_elastic] re-packs them. *)
          (match op with
          | 0 ->
            incr next;
            (match Pool.add_inelastic p ~fid:!next ~blocks with
            | Ok _ ->
              live := !next :: !live;
              ignore (Pool.refill_elastic p)
            | Error `No_space -> ())
          | 1 ->
            incr next;
            (match Pool.add_elastic p ~fid:!next ~min_blocks:blocks with
            | Ok () ->
              live := !next :: !live;
              ignore (Pool.refill_elastic p)
            | Error `No_space -> ())
          | 2 -> (
            match !live with
            | [] -> ()
            | fid :: rest ->
              live := rest;
              ignore (Pool.remove p ~fid);
              ignore (Pool.refill_elastic p))
          | _ -> ignore (Pool.refill_elastic p));
          counters_match_slot_folds p)
        ops)

let test_pool_max_hole () =
  let p = Pool.create ~total_blocks:16 in
  Alcotest.(check int) "empty pool: no pinned zone, no hole" 0 (Pool.max_hole p);
  ignore (Pool.add_inelastic p ~fid:1 ~blocks:4);
  ignore (Pool.add_inelastic p ~fid:2 ~blocks:3);
  ignore (Pool.add_inelastic p ~fid:3 ~blocks:4);
  Alcotest.(check int) "packed pinned zone" 0 (Pool.max_hole p);
  ignore (Pool.remove p ~fid:2);
  Alcotest.(check int) "middle departure leaves a 3-hole" 3 (Pool.max_hole p)

(* -- Allocator: admission ------------------------------------------------ *)

let test_admit_cache_regions () =
  let alloc = Allocator.create params in
  let adm = admit_exn alloc (cache_arrival 1) in
  Alcotest.(check int) "three regions" 3 (List.length adm.Allocator.regions);
  Alcotest.(check (list int)) "compact stages" [ 1; 4; 8 ]
    (List.map (fun r -> r.Allocator.stage) adm.Allocator.regions);
  List.iter
    (fun r ->
      Alcotest.(check int) "whole stage (elastic, alone)" 256 r.Allocator.range.Pool.n_blocks)
    adm.Allocator.regions

let test_admit_duplicate_fid () =
  let alloc = Allocator.create params in
  ignore (admit_exn alloc (cache_arrival 1));
  Alcotest.(check bool) "raises" true
    (try
       ignore (Allocator.admit alloc (cache_arrival 1));
       false
     with Invalid_argument _ -> true)

let test_worst_fit_spreads () =
  let alloc = Allocator.create ~scheme:Allocator.Worst_fit params in
  let a1 = admit_exn alloc (cache_arrival 1) in
  let a2 = admit_exn alloc (cache_arrival 2) in
  let stages a = List.map (fun r -> r.Allocator.stage) a.Allocator.regions in
  let inter = List.filter (fun s -> List.mem s (stages a1)) (stages a2) in
  Alcotest.(check (list int)) "disjoint stages" [] inter;
  Alcotest.(check int) "no reallocation needed" 0 (List.length a2.Allocator.reallocated)

let test_best_fit_packs () =
  let alloc = Allocator.create ~scheme:Allocator.Best_fit params in
  let a1 = admit_exn alloc (cache_arrival 1) in
  let a2 = admit_exn alloc (cache_arrival 2) in
  let stages a = List.map (fun r -> r.Allocator.stage) a.Allocator.regions in
  Alcotest.(check (list int)) "same stages (packs occupied)" (stages a1) (stages a2)

let test_first_fit_takes_identity () =
  let alloc = Allocator.create ~scheme:Allocator.First_fit params in
  let a1 = admit_exn alloc (cache_arrival 1) in
  Alcotest.(check (list int)) "identity placement" [ 1; 4; 8 ]
    (List.map (fun r -> r.Allocator.stage) a1.Allocator.regions);
  let a2 = admit_exn alloc (cache_arrival 2) in
  Alcotest.(check (list int)) "identity again (shared)" [ 1; 4; 8 ]
    (List.map (fun r -> r.Allocator.stage) a2.Allocator.regions)

let test_min_realloc_avoids_elastic () =
  let alloc = Allocator.create ~scheme:Allocator.Min_realloc params in
  ignore (admit_exn alloc (cache_arrival 1));
  let a2 = admit_exn alloc (cache_arrival 2) in
  Alcotest.(check int) "no reallocations" 0 (List.length a2.Allocator.reallocated)

let test_elastic_sharing_splits_equally () =
  let alloc = Allocator.create ~scheme:Allocator.Best_fit params in
  ignore (admit_exn alloc (cache_arrival 1));
  let a2 = admit_exn alloc (cache_arrival 2) in
  Alcotest.(check int) "first app reallocated" 1 (List.length a2.Allocator.reallocated);
  Alcotest.(check int) "equal blocks" (Allocator.app_blocks alloc ~fid:1)
    (Allocator.app_blocks alloc ~fid:2);
  Alcotest.(check int) "split of 3 stages" 384 (Allocator.app_blocks alloc ~fid:1)

let test_inelastic_unperturbed () =
  (* Arriving caches never move pinned apps. *)
  let alloc = Allocator.create params in
  ignore (admit_exn alloc (lb_arrival 1));
  let before = Option.get (Allocator.regions_of alloc ~fid:1) in
  for fid = 2 to 10 do
    ignore (admit_exn alloc (cache_arrival fid))
  done;
  let after = Option.get (Allocator.regions_of alloc ~fid:1) in
  Alcotest.(check bool) "pinned placement unchanged" true (before = after)

let test_rejection_when_full () =
  let alloc = Allocator.create params in
  let admitted = ref 0 in
  (try
     for fid = 1 to 64 do
       match Allocator.admit alloc (hh_arrival fid) with
       | Allocator.Admitted _ -> incr admitted
       | Allocator.Rejected _ -> raise Exit
     done
   with Exit -> ());
  Alcotest.(check int) "16 heavy hitters fit (256/16 per stage)" 16 !admitted

let test_departure_expands_elastic () =
  let alloc = Allocator.create ~scheme:Allocator.Best_fit params in
  ignore (admit_exn alloc (cache_arrival 1));
  ignore (admit_exn alloc (cache_arrival 2));
  let before = Allocator.app_blocks alloc ~fid:2 in
  let expanded = Allocator.depart alloc ~fid:1 in
  Alcotest.(check (list int)) "app 2 expanded" [ 2 ] (List.map fst expanded);
  Alcotest.(check bool) "strictly larger" true
    (Allocator.app_blocks alloc ~fid:2 > before);
  Alcotest.(check int) "full stages again" 768 (Allocator.app_blocks alloc ~fid:2)

let test_depart_unknown_fid () =
  let alloc = Allocator.create params in
  Alcotest.(check (list int)) "no-op" []
    (List.map fst (Allocator.depart alloc ~fid:99))

let test_utilization_monotone_pure_cache () =
  let alloc = Allocator.create params in
  let last = ref 0.0 in
  for fid = 1 to 20 do
    ignore (admit_exn alloc (cache_arrival fid));
    let u = Allocator.utilization alloc in
    Alcotest.(check bool) "non-decreasing" true (u >= !last -. 1e-9);
    last := u
  done;
  Alcotest.(check bool) "bounded" true (!last <= 1.0)

let test_regions_response_words () =
  let alloc = Allocator.create params in
  ignore (admit_exn alloc (cache_arrival 1));
  match Allocator.regions_response alloc ~fid:1 with
  | None -> Alcotest.fail "resident"
  | Some regions ->
    (match regions.(1) with
    | Some { Activermt.Packet.start_word; n_words } ->
      Alcotest.(check int) "word offset" 0 start_word;
      Alcotest.(check int) "whole stage in words" 65536 n_words
    | None -> Alcotest.fail "stage 1 allocated");
    Alcotest.(check bool) "unallocated stage empty" true (regions.(0) = None)

let test_rejected_considered_mutants () =
  let alloc = Allocator.create params in
  for fid = 1 to 16 do
    ignore (admit_exn alloc (hh_arrival fid))
  done;
  match Allocator.admit alloc (hh_arrival 17) with
  | Allocator.Rejected r ->
    Alcotest.(check int) "considered the single mc mutant" 1
      r.Allocator.considered_mutants
  | Allocator.Admitted _ -> Alcotest.fail "should be full"

(* The multicore scoring fan-out must not change a single decision:
   replay random arrival/departure sequences against a sequential and a
   3-domain allocator and require bit-identical outcomes (mutant, regions,
   reallocations, counts) — compute_time_s excepted.  LB arrivals carry
   1800+ mutants, enough to cross the pool's spawn threshold. *)
let same_outcome o1 o2 =
  match (o1, o2) with
  | Allocator.Admitted a, Allocator.Admitted b ->
    a.Allocator.fid = b.Allocator.fid
    && a.Allocator.mutant.Mutant.shifts = b.Allocator.mutant.Mutant.shifts
    && a.Allocator.mutant.Mutant.stages = b.Allocator.mutant.Mutant.stages
    && a.Allocator.regions = b.Allocator.regions
    && a.Allocator.reallocated = b.Allocator.reallocated
    && a.Allocator.considered_mutants = b.Allocator.considered_mutants
    && a.Allocator.feasible_mutants = b.Allocator.feasible_mutants
  | Allocator.Rejected r1, Allocator.Rejected r2 ->
    r1.Allocator.considered_mutants = r2.Allocator.considered_mutants
  | Allocator.Admitted _, Allocator.Rejected _
  | Allocator.Rejected _, Allocator.Admitted _ ->
    false

let schemes =
  [ Allocator.Worst_fit; Allocator.Best_fit; Allocator.First_fit; Allocator.Min_realloc ]

let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"parallel admit = sequential admit, all schemes" ~count:12
    QCheck.(
      pair (int_range 0 3) (make Gen.(list_size (int_range 5 40) (int_range 0 3))))
    (fun (scheme_i, ops) ->
      let scheme = List.nth schemes scheme_i in
      let seq = Allocator.create ~scheme ~domains:1 params in
      let par = Allocator.create ~scheme ~domains:3 params in
      let next = ref 0 in
      let live = ref [] in
      List.for_all
        (fun op ->
          if op = 3 && !live <> [] then begin
            let fid = List.hd !live in
            live := List.tl !live;
            Allocator.depart seq ~fid = Allocator.depart par ~fid
          end
          else begin
            incr next;
            let arrival =
              match op with
              | 0 -> cache_arrival !next
              | 1 -> lb_arrival !next
              | _ -> hh_arrival !next
            in
            let o_seq = Allocator.admit seq arrival in
            let o_par = Allocator.admit par arrival in
            (match o_seq with
            | Allocator.Admitted _ -> live := !live @ [ !next ]
            | Allocator.Rejected _ -> ());
            same_outcome o_seq o_par
          end)
        ops
      |> fun ok ->
      (* Workers are persistent now; reap them so repeated trials do not
         accumulate parked domains against the runtime limit. *)
      Allocator.shutdown par;
      Allocator.shutdown seq;
      ok)

let test_depart_only_touches_demand_stages () =
  (* A pinned app's departure must leave other stages' pools untouched
     and free exactly its own blocks. *)
  let alloc = Allocator.create params in
  ignore (admit_exn alloc (lb_arrival 1));
  ignore (admit_exn alloc (hh_arrival 2));
  let used_before = Allocator.stage_used_blocks alloc in
  let lb_regions = Option.get (Allocator.regions_of alloc ~fid:1) in
  ignore (Allocator.depart alloc ~fid:1);
  let used_after = Allocator.stage_used_blocks alloc in
  Array.iteri
    (fun s after ->
      let freed =
        List.fold_left
          (fun acc r ->
            if r.Allocator.stage = s then acc + r.Allocator.range.Pool.n_blocks
            else acc)
          0 lb_regions
      in
      Alcotest.(check int)
        (Printf.sprintf "stage %d frees exactly the departing app's blocks" s)
        (used_before.(s) - freed)
        after)
    used_after;
  Alcotest.(check bool) "hh still resident" true (Allocator.is_resident alloc ~fid:2)

(* -- Allocator: batched epoch admission ---------------------------------- *)

(* The contract admit_batch promises in its mli: a singleton batch makes
   bit-identical decisions, placements and reallocation reports to the
   sequential path (compute_time_s excepted).  Replayed over random
   arrival/departure interleavings and all four schemes, against a twin
   allocator driven through [admit]. *)
let prop_batch_singleton_matches_admit =
  QCheck.Test.make ~name:"admit_batch [a] = admit a, all schemes" ~count:12
    QCheck.(
      pair (int_range 0 3) (make Gen.(list_size (int_range 5 40) (int_range 0 3))))
    (fun (scheme_i, ops) ->
      let scheme = List.nth schemes scheme_i in
      let seq = Allocator.create ~scheme params in
      let bat = Allocator.create ~scheme params in
      let next = ref 0 in
      let live = ref [] in
      List.for_all
        (fun op ->
          if op = 3 && !live <> [] then begin
            let fid = List.hd !live in
            live := List.tl !live;
            Allocator.depart seq ~fid = Allocator.depart bat ~fid
          end
          else begin
            incr next;
            let arrival =
              match op with
              | 0 -> cache_arrival !next
              | 1 -> lb_arrival !next
              | _ -> hh_arrival !next
            in
            let o_seq = Allocator.admit seq arrival in
            let b = Allocator.admit_batch bat [ arrival ] in
            (match o_seq with
            | Allocator.Admitted _ -> live := !live @ [ !next ]
            | Allocator.Rejected _ -> ());
            match b.Allocator.outcomes with
            | [ o_bat ] ->
              same_outcome o_seq o_bat
              && (match o_seq with
                 | Allocator.Admitted a ->
                   List.sort compare b.Allocator.batch_reallocated
                   = List.sort compare a.Allocator.reallocated
                 | Allocator.Rejected _ -> b.Allocator.batch_reallocated = [])
            | _ -> false
          end)
        ops)

(* Soundness of an epoch's committed subset: whatever admit_batch admits
   must coexist without overlap — every resident's per-stage ranges are
   pairwise disjoint after the commit, outcomes stay 1:1 with arrivals,
   and every admitted FID is actually resident. *)
let test_batch_commits_conflict_free () =
  let alloc = Allocator.create params in
  let arrivals =
    List.init 48 (fun i ->
        let fid = i + 1 in
        match i mod 3 with
        | 0 -> hh_arrival fid
        | 1 -> lb_arrival fid
        | _ -> cache_arrival fid)
  in
  let b = Allocator.admit_batch alloc arrivals in
  Alcotest.(check int) "outcomes 1:1 with arrivals" 48
    (List.length b.Allocator.outcomes);
  let stats = b.Allocator.stats in
  Alcotest.(check int) "admitted + rejected = batch" 48
    (stats.Allocator.batch_admitted + stats.Allocator.batch_rejected);
  Alcotest.(check bool) "contention forces rejections" true
    (stats.Allocator.batch_rejected > 0);
  List.iteri
    (fun i o ->
      match o with
      | Allocator.Admitted a ->
        Alcotest.(check int) "outcome order preserved" (i + 1) a.Allocator.fid;
        Alcotest.(check bool) "admitted fid resident" true
          (Allocator.is_resident alloc ~fid:a.Allocator.fid)
      | Allocator.Rejected _ -> ())
    b.Allocator.outcomes;
  (* Pairwise disjointness, stage by stage, over every resident. *)
  let n_stages = Array.length (Allocator.stage_used_blocks alloc) in
  let by_stage = Array.make n_stages [] in
  List.iter
    (fun fid ->
      let regions = Option.get (Allocator.regions_of alloc ~fid) in
      List.iter
        (fun r -> by_stage.(r.Allocator.stage) <- r.Allocator.range :: by_stage.(r.Allocator.stage))
        regions)
    (Allocator.resident alloc);
  Array.iteri
    (fun s ranges ->
      let sorted =
        List.sort (fun a b -> compare a.Pool.first_block b.Pool.first_block) ranges
      in
      let rec disjoint = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool)
            (Printf.sprintf "stage %d ranges disjoint" s)
            true
            (a.Pool.first_block + a.Pool.n_blocks <= b.Pool.first_block);
          disjoint rest
        | _ -> ()
      in
      disjoint sorted)
    by_stage

let test_batch_memoizes_repeated_shapes () =
  (* Eight arrivals of the same program shape/elasticity/demand share one
     epoch: the memo must answer most of them without re-scoring. *)
  let alloc = Allocator.create params in
  let b = Allocator.admit_batch alloc (List.init 8 (fun i -> cache_arrival (i + 1))) in
  Alcotest.(check int) "all admitted" 8 b.Allocator.stats.Allocator.batch_admitted;
  Alcotest.(check bool) "memo answered repeats" true
    (b.Allocator.stats.Allocator.memo_hits > 0)

let test_batch_duplicate_fid_raises () =
  let alloc = Allocator.create params in
  Alcotest.(check bool) "raises before any commit" true
    (try
       ignore (Allocator.admit_batch alloc [ cache_arrival 1; cache_arrival 1 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check (list int)) "nothing committed" [] (Allocator.resident alloc)

let test_batch_fill_coalescing_trace_attrs () =
  (* The epoch's alloc.fill instant carries the coalescing attributes;
     they must agree with the returned batch_stats, and stacking six
     three-stage elastic apps in one epoch must actually save refills
     versus the per-(arrival, stage) sequential count. *)
  let tracer = Trace.create () in
  let alloc = Allocator.create ~tracer params in
  let trace = Option.get (Trace.start_trace tracer "test.batch") in
  let b = Allocator.admit_batch ~trace alloc (List.init 6 (fun i -> cache_arrival (i + 1))) in
  let stats = b.Allocator.stats in
  Alcotest.(check bool) "coalescing saved refills" true
    (stats.Allocator.refills_saved > 0);
  let fill =
    List.find
      (fun e -> e.Trace.name = "alloc.fill" && List.mem_assoc "batch" e.Trace.attrs)
      (Trace.events tracer)
  in
  let attr k = List.assoc k fill.Trace.attrs in
  Alcotest.(check string) "batch attr" "6" (attr "batch");
  Alcotest.(check string) "admitted attr"
    (string_of_int stats.Allocator.batch_admitted)
    (attr "admitted");
  Alcotest.(check string) "stage_refills attr"
    (string_of_int stats.Allocator.stage_refills)
    (attr "stage_refills");
  Alcotest.(check string) "refills_saved attr"
    (string_of_int stats.Allocator.refills_saved)
    (attr "refills_saved");
  Alcotest.(check string) "rescored attr"
    (string_of_int stats.Allocator.rescored)
    (attr "rescored");
  Alcotest.(check string) "reallocated attr"
    (string_of_int (List.length b.Allocator.batch_reallocated))
    (attr "reallocated")

(* Random churn keeps the allocator's central invariants. *)
let prop_churn_invariants =
  QCheck.Test.make ~name:"random churn: no overlap, utilization bounded"
    ~count:30
    QCheck.(make Gen.(list_size (int_range 5 60) (int_range 0 2)))
    (fun ops ->
      let alloc = Allocator.create params in
      let next = ref 0 in
      let live = ref [] in
      List.iter
        (fun op ->
          if op = 2 && !live <> [] then begin
            let fid = List.hd !live in
            live := List.tl !live;
            ignore (Allocator.depart alloc ~fid)
          end
          else begin
            incr next;
            let arrival =
              if op = 0 then cache_arrival !next else lb_arrival !next
            in
            match Allocator.admit alloc arrival with
            | Allocator.Admitted _ -> live := !live @ [ !next ]
            | Allocator.Rejected _ -> ()
          end)
        ops;
      (* stage_used_blocks recomputes from pools; Pool.map raises on
         overlap, so merely forcing it checks the invariant. *)
      let used = Allocator.stage_used_blocks alloc in
      Allocator.utilization alloc <= 1.0
      && Array.for_all (fun u -> u >= 0 && u <= 256) used)

let () =
  Alcotest.run "alloc"
    [
      ( "pool",
        [
          Alcotest.test_case "inelastic pinned" `Quick test_pool_inelastic_pinned_at_bottom;
          Alcotest.test_case "hole reuse" `Quick test_pool_hole_reuse;
          Alcotest.test_case "fragmentation" `Quick test_pool_fragmentation_blocks_big;
          Alcotest.test_case "elastic fills pool" `Quick test_pool_elastic_fills_everything;
          Alcotest.test_case "equal split" `Quick test_pool_elastic_equal_split;
          Alcotest.test_case "remainder split" `Quick test_pool_elastic_remainder;
          Alcotest.test_case "minimums honoured" `Quick
            test_pool_progressive_fill_respects_minimums;
          Alcotest.test_case "fungible blocks" `Quick test_pool_fungible;
          Alcotest.test_case "map consistency" `Quick test_pool_map_no_overlap;
          Alcotest.test_case "unfill roundtrip" `Quick test_pool_unfill_roundtrip;
          Alcotest.test_case "unfill idempotent" `Quick test_pool_unfill_idempotent;
          Alcotest.test_case "unfill then pin" `Quick test_pool_unfill_then_pin_into_zone;
          Alcotest.test_case "max hole" `Quick test_pool_max_hole;
          QCheck_alcotest.to_alcotest prop_pool_progressive_fill;
          QCheck_alcotest.to_alcotest prop_pool_max_min_characterization;
          QCheck_alcotest.to_alcotest prop_pool_counters;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "cache admission" `Quick test_admit_cache_regions;
          Alcotest.test_case "duplicate fid" `Quick test_admit_duplicate_fid;
          Alcotest.test_case "worst-fit spreads" `Quick test_worst_fit_spreads;
          Alcotest.test_case "best-fit packs" `Quick test_best_fit_packs;
          Alcotest.test_case "first-fit identity" `Quick test_first_fit_takes_identity;
          Alcotest.test_case "min-realloc avoids elastic" `Quick
            test_min_realloc_avoids_elastic;
          Alcotest.test_case "elastic sharing" `Quick test_elastic_sharing_splits_equally;
          Alcotest.test_case "inelastic unperturbed" `Quick test_inelastic_unperturbed;
          Alcotest.test_case "rejection when full" `Quick test_rejection_when_full;
          Alcotest.test_case "departure expands" `Quick test_departure_expands_elastic;
          Alcotest.test_case "depart unknown" `Quick test_depart_unknown_fid;
          Alcotest.test_case "utilization monotone" `Quick
            test_utilization_monotone_pure_cache;
          Alcotest.test_case "regions response" `Quick test_regions_response_words;
          Alcotest.test_case "rejected stats" `Quick test_rejected_considered_mutants;
          Alcotest.test_case "depart touches only demand stages" `Quick
            test_depart_only_touches_demand_stages;
          QCheck_alcotest.to_alcotest prop_churn_invariants;
          QCheck_alcotest.to_alcotest prop_parallel_matches_sequential;
        ] );
      ( "batch",
        [
          Alcotest.test_case "commits conflict-free" `Quick
            test_batch_commits_conflict_free;
          Alcotest.test_case "memoizes repeated shapes" `Quick
            test_batch_memoizes_repeated_shapes;
          Alcotest.test_case "duplicate fid raises" `Quick
            test_batch_duplicate_fid_raises;
          Alcotest.test_case "fill coalescing trace attrs" `Quick
            test_batch_fill_coalescing_trace_attrs;
          QCheck_alcotest.to_alcotest prop_batch_singleton_matches_admit;
        ] );
    ]
