(* Unit and property tests for the telemetry subsystem: counters, gauges,
   log-bucketed histograms (accuracy vs a sorted-sample oracle), span
   timers, JSON round-trips, and the qcheck property that sharded
   recording under N domains merges to the same totals as sequential
   recording. *)

module Telemetry = Activermt_telemetry.Telemetry
module Json = Activermt_telemetry.Json

let check_float = Alcotest.(check (float 1e-9))

(* -- Counters and gauges -------------------------------------------------- *)

let test_counter_basic () =
  let t = Telemetry.create () in
  Alcotest.(check int) "absent" 0 (Telemetry.counter_value t "c");
  Telemetry.incr t "c";
  Telemetry.incr t "c" ~by:4;
  Alcotest.(check int) "accumulates" 5 (Telemetry.counter_value t "c");
  Telemetry.incr t "other";
  Alcotest.(check (list (pair string int)))
    "sorted listing"
    [ ("c", 5); ("other", 1) ]
    (Telemetry.counters t)

let test_gauge_last_write_wins () =
  let t = Telemetry.create () in
  Alcotest.(check (option (float 0.0))) "absent" None (Telemetry.gauge_value t "g");
  Telemetry.set_gauge t "g" 1.5;
  Telemetry.set_gauge t "g" 7.25;
  Alcotest.(check (option (float 1e-9))) "last value" (Some 7.25)
    (Telemetry.gauge_value t "g")

let test_kind_mismatch () =
  let t = Telemetry.create () in
  Telemetry.incr t "m";
  Alcotest.check_raises "counter as histogram"
    (Invalid_argument "Telemetry: metric \"m\" already registered as a counter")
    (fun () -> Telemetry.observe t "m" 1.0)

let test_reset () =
  let t = Telemetry.create () in
  Telemetry.incr t "c" ~by:3;
  Telemetry.observe t "h" 0.5;
  Telemetry.reset t;
  Alcotest.(check int) "counter cleared" 0 (Telemetry.counter_value t "c");
  Alcotest.(check bool) "histogram cleared" true
    (Telemetry.hist_summary t "h" = None)

(* -- Histogram accuracy vs a sorted-sample oracle ------------------------- *)

(* Log buckets at 8 per octave give a worst-case relative error of
   2^(1/8) - 1 ~= 9.05% when the true quantile sits at a bucket edge; the
   geometric midpoint halves that in expectation.  10% absorbs both the
   bucket width and the oracle's rank interpolation. *)
let tolerance = 0.10

let hist_accuracy_check ~name samples =
  let t = Telemetry.create () in
  List.iter (Telemetry.observe t "h") samples;
  let s = Option.get (Telemetry.hist_summary t "h") in
  Alcotest.(check int) (name ^ " count") (List.length samples) s.Telemetry.count;
  check_float (name ^ " sum")
    (List.fold_left ( +. ) 0.0 samples)
    s.Telemetry.sum;
  check_float (name ^ " min") (List.fold_left min (List.hd samples) samples)
    s.Telemetry.min;
  check_float (name ^ " max") (List.fold_left max (List.hd samples) samples)
    s.Telemetry.max;
  List.iter
    (fun (p, got) ->
      let oracle = Stdx.Stats.percentile samples p in
      let rel = Float.abs (got -. oracle) /. oracle in
      if rel > tolerance then
        Alcotest.failf "%s p%.0f: histogram %.6g vs oracle %.6g (%.1f%% off)"
          name p got oracle (100.0 *. rel))
    [ (50.0, s.Telemetry.p50); (90.0, s.Telemetry.p90); (99.0, s.Telemetry.p99) ]

let test_hist_exponential () =
  let rng = Stdx.Prng.create ~seed:42 in
  let samples =
    List.init 5000 (fun _ -> Stdx.Prng.exponential rng ~mean:0.001)
  in
  hist_accuracy_check ~name:"exponential latencies" samples

let test_hist_uniform () =
  let rng = Stdx.Prng.create ~seed:7 in
  let samples = List.init 5000 (fun _ -> 1e-5 +. Stdx.Prng.float rng 0.01) in
  hist_accuracy_check ~name:"uniform latencies" samples

let test_hist_extremes () =
  let t = Telemetry.create () in
  List.iter (Telemetry.observe t "h") [ 0.25; 0.5; 1.0; 2.0 ];
  check_float "p0 is exact min" 0.25 (Telemetry.hist_percentile t "h" 0.0);
  check_float "p100 is exact max" 2.0 (Telemetry.hist_percentile t "h" 100.0);
  check_float "absent histogram" 0.0 (Telemetry.hist_percentile t "nope" 50.0)

let test_hist_out_of_range () =
  (* Values outside the bucketed range still clamp to the exact min/max. *)
  let t = Telemetry.create () in
  Telemetry.observe t "h" 0.0;
  Telemetry.observe t "h" 1e12;
  let s = Option.get (Telemetry.hist_summary t "h") in
  check_float "min" 0.0 s.Telemetry.min;
  check_float "max" 1e12 s.Telemetry.max;
  Alcotest.(check int) "count" 2 s.Telemetry.count

let test_hist_empty_and_unknown () =
  let t = Telemetry.create () in
  Alcotest.(check bool) "unknown name" true (Telemetry.hist_summary t "h" = None);
  check_float "unknown percentile" 0.0 (Telemetry.hist_percentile t "h" 50.0);
  (* Empty-after-reset histograms report zeros throughout, not NaN/inf
     left over from the infinity-seeded min/max cells. *)
  Telemetry.observe t "h" 1.0;
  Telemetry.reset t;
  Alcotest.(check bool) "cleared name" true (Telemetry.hist_summary t "h" = None)

let test_hist_single_observation () =
  (* One observation pins every statistic to that value: the sketch
     midpoint clamps to the exact observed [min, max] = [v, v]. *)
  let t = Telemetry.create () in
  let v = 0.00731 in
  Telemetry.observe t "h" v;
  let s = Option.get (Telemetry.hist_summary t "h") in
  Alcotest.(check int) "count" 1 s.Telemetry.count;
  check_float "sum" v s.Telemetry.sum;
  check_float "mean" v s.Telemetry.mean;
  check_float "min" v s.Telemetry.min;
  check_float "max" v s.Telemetry.max;
  check_float "p50" v s.Telemetry.p50;
  check_float "p90" v s.Telemetry.p90;
  check_float "p99" v s.Telemetry.p99;
  check_float "p0" v (Telemetry.hist_percentile t "h" 0.0);
  check_float "p100" v (Telemetry.hist_percentile t "h" 100.0)

let test_hist_quantile_boundaries () =
  let t = Telemetry.create () in
  List.iter (Telemetry.observe t "h") [ 0.125; 0.25; 0.5; 1.0 ];
  (* p <= 0 and p >= 100 are exact, including values outside [0, 100]. *)
  check_float "p=-5 is exact min" 0.125 (Telemetry.hist_percentile t "h" (-5.0));
  check_float "p=0 is exact min" 0.125 (Telemetry.hist_percentile t "h" 0.0);
  check_float "p=100 is exact max" 1.0 (Telemetry.hist_percentile t "h" 100.0);
  check_float "p=250 is exact max" 1.0 (Telemetry.hist_percentile t "h" 250.0);
  Alcotest.check_raises "NaN percentile rejected"
    (Invalid_argument "Telemetry.hist_percentile: NaN percentile") (fun () ->
      ignore (Telemetry.hist_percentile t "h" Float.nan))

(* -- Spans ---------------------------------------------------------------- *)

let test_span_nesting () =
  let clock = ref 0.0 in
  let t = Telemetry.create ~now:(fun () -> !clock) () in
  Telemetry.span_begin t "outer";
  clock := 1.0;
  Telemetry.span_begin t "inner";
  clock := 3.0;
  Telemetry.span_end t;
  clock := 6.0;
  Telemetry.span_end t;
  let inner = Option.get (Telemetry.hist_summary t "inner") in
  let outer = Option.get (Telemetry.hist_summary t "outer") in
  check_float "inner elapsed" 2.0 inner.Telemetry.sum;
  check_float "outer elapsed" 6.0 outer.Telemetry.sum;
  Alcotest.(check int) "one inner" 1 inner.Telemetry.count

let test_span_unbalanced () =
  let t = Telemetry.create () in
  Alcotest.check_raises "no open span"
    (Invalid_argument "Telemetry.span_end: no open span") (fun () ->
      Telemetry.span_end t)

let test_with_span_exception () =
  let clock = ref 0.0 in
  let t = Telemetry.create ~now:(fun () -> !clock) () in
  (try
     Telemetry.with_span t "failing" (fun () ->
         clock := 0.5;
         raise Exit)
   with Exit -> ());
  let s = Option.get (Telemetry.hist_summary t "failing") in
  Alcotest.(check int) "recorded despite raise" 1 s.Telemetry.count;
  check_float "elapsed" 0.5 s.Telemetry.sum

(* -- Dumps ---------------------------------------------------------------- *)

let test_dump_json_roundtrip () =
  let t = Telemetry.create () in
  Telemetry.incr t "alloc.admitted" ~by:12;
  Telemetry.set_gauge t "sim.queue_depth" 3.0;
  Telemetry.observe t "alloc.score" 0.002;
  match Json.of_string (Telemetry.dump_json t) with
  | Error e -> Alcotest.failf "dump does not parse: %s" e
  | Ok json ->
    let counter =
      Json.(member "counters" json |> Option.get |> member "alloc.admitted")
    in
    Alcotest.(check (option (float 1e-9))) "counter survives" (Some 12.0)
      (Option.bind counter Json.to_num);
    let hist =
      Json.(member "histograms" json |> Option.get |> member "alloc.score")
    in
    Alcotest.(check bool) "histogram present" true (hist <> None)

let test_dump_prometheus () =
  let t = Telemetry.create () in
  Telemetry.incr t "alloc.admitted" ~by:2;
  Telemetry.observe t "alloc.score" 0.001;
  let out = Telemetry.dump_prometheus t in
  let contains needle =
    let nl = String.length needle and l = String.length out in
    let rec go i = i + nl <= l && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true (contains "alloc_admitted 2");
  Alcotest.(check bool) "quantile line" true
    (contains "alloc_score{quantile=\"0.5\"}");
  Alcotest.(check bool) "count line" true (contains "alloc_score_count 1")

(* Well-formedness per the promtext exposition format: a non-comment line
   is NAME{labels}? VALUE, where NAME matches [a-zA-Z_:][a-zA-Z0-9_:]*,
   every label value is quoted with '\\', '"' and newline escaped, and
   VALUE parses as a float.  Free-form registry keys must never leak
   through unsanitized. *)
let prom_line_ok line =
  let n = String.length line in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  if n = 0 || line.[0] = '#' then true
  else begin
    let ok = ref (is_name_char line.[0] && not (line.[0] >= '0' && line.[0] <= '9')) in
    let i = ref 0 in
    while !i < n && is_name_char line.[!i] do
      incr i
    done;
    if !ok && !i < n && line.[!i] = '{' then begin
      incr i;
      let in_value = ref false and closed = ref false in
      while !i < n && not !closed do
        let c = line.[!i] in
        if !in_value then
          if c = '\\' then begin
            (if !i + 1 >= n then ok := false
             else
               match line.[!i + 1] with
               | '\\' | '"' | 'n' -> ()
               | _ -> ok := false);
            i := !i + 2
          end
          else begin
            if c = '"' then in_value := false;
            incr i
          end
        else begin
          (match c with
          | '"' -> in_value := true
          | '}' -> closed := true
          | _ -> ());
          incr i
        end
      done;
      if not !closed then ok := false
    end;
    (if !ok then
       if !i >= n || line.[!i] <> ' ' then ok := false
       else
         ok :=
           float_of_string_opt (String.sub line (!i + 1) (n - !i - 1)) <> None);
    !ok
  end

let test_prometheus_wellformed () =
  (* Exercise sanitization through the shared default registry — and
     [Telemetry.reset] to leave it clean for whoever runs next. *)
  Telemetry.reset Telemetry.default;
  Telemetry.incr Telemetry.default {|weird "metric"\name|} ~by:3;
  Telemetry.incr Telemetry.default "0starts.with.digit";
  Telemetry.set_gauge Telemetry.default "spaced gauge name" 2.5;
  Telemetry.observe Telemetry.default {|hist"quoted\|} 0.25;
  let out = Telemetry.dump_prometheus Telemetry.default in
  Telemetry.reset Telemetry.default;
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "well-formed: %S" line)
        true (prom_line_ok line))
    (String.split_on_char '\n' out);
  let contains needle =
    let nl = String.length needle and l = String.length out in
    let rec go i = i + nl <= l && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "punctuation collapses to _" true
    (contains "weird__metric__name 3");
  Alcotest.(check bool) "leading digit prefixed" true
    (contains "_0starts_with_digit 1");
  Alcotest.(check bool) "raw name never leaks" false (contains {|"metric"|})

let test_prometheus_label_escaping () =
  Alcotest.(check string) "backslash, quote, newline" {|a\\b\"c\nd|}
    (Telemetry.prom_escape_label "a\\b\"c\nd");
  Alcotest.(check string) "clean value untouched" "0.99"
    (Telemetry.prom_escape_label "0.99")

(* -- Json ----------------------------------------------------------------- *)

let test_json_parse () =
  let text = {| {"a": [1, 2.5, -3e2], "b": {"s": "x\ny"}, "t": true, "n": null} |} in
  match Json.of_string text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v ->
    let a = Json.(member "a" v |> Option.get |> to_arr |> Option.get) in
    Alcotest.(check (list (float 1e-9))) "numbers" [ 1.0; 2.5; -300.0 ]
      (List.filter_map Json.to_num a);
    Alcotest.(check (option string)) "nested string" (Some "x\ny")
      Json.(member "b" v |> Option.get |> member "s" |> Fun.flip Option.bind to_str);
    Alcotest.(check (option bool)) "bool" (Some true)
      (Option.bind (Json.member "t" v) Json.to_bool)

let test_json_errors () =
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Json.of_string "{"));
  Alcotest.(check bool) "trailing rejected" true
    (Result.is_error (Json.of_string "1 2"))

let prop_json_roundtrip =
  let gen_json =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let scalar =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun v -> Json.Num (float_of_int v)) (int_range (-1000) 1000);
                map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 8));
              ]
          in
          if n <= 0 then scalar
          else
            oneof
              [
                scalar;
                map (fun l -> Json.Arr l) (list_size (int_range 0 4) (self (n / 2)));
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (int_range 0 4)
                     (pair (string_size ~gen:printable (int_range 1 6)) (self (n / 2))));
              ]))
  in
  QCheck.Test.make ~name:"json print/parse roundtrip" ~count:200
    (QCheck.make gen_json)
    (fun v -> Json.of_string (Json.to_string v) = Ok v)

(* The parser must classify arbitrary input as Ok or Error without ever
   raising — series dumps cross process boundaries (healthcheck reports,
   fleettop input files), so a truncated or corrupt file is an expected
   input, not an exception path.  Half the cases are raw bytes; the other
   half mutate a valid print so the fuzz also reaches deep parser states
   (inside strings, numbers, nesting) instead of failing on byte one. *)
let prop_json_fuzz_no_crash =
  let gen =
    QCheck.Gen.(
      oneof
        [
          string_size ~gen:(char_range '\000' '\255') (int_range 0 64);
          ( int_range 0 1000 >|= fun salt ->
            let valid =
              Json.to_string
                (Json.Obj
                   [
                     ("k", Json.Arr [ Json.Num 1.5; Json.Str "x\"y"; Json.Null ]);
                     ("b", Json.Bool (salt mod 2 = 0));
                   ])
            in
            let b = Bytes.of_string valid in
            let pos = salt mod Bytes.length b in
            Bytes.set b pos (Char.chr (salt * 7 mod 256));
            Bytes.to_string b );
        ])
  in
  QCheck.Test.make ~name:"json parser never raises" ~count:500 (QCheck.make gen)
    (fun s ->
      match Json.of_string s with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "of_string %S raised %s" s
          (Printexc.to_string e))

(* -- Sharded recording under domains -------------------------------------- *)

(* Integer-valued floats keep every partial sum exact, so the merged
   totals must equal the sequential ones bit-for-bit no matter how the
   work was split across shards. *)
let record reg i =
  Telemetry.incr reg "c" ~by:(1 + (i mod 5));
  Telemetry.observe reg "h" (float_of_int ((i * 7919 mod 997) + 1))

let prop_sharded_merge =
  QCheck.Test.make ~name:"sharded recording merges to sequential totals"
    ~count:20
    QCheck.(pair (int_range 1 6) (int_range 0 3000))
    (fun (size, n) ->
      let seq = Telemetry.create () in
      for i = 0 to n - 1 do
        record seq i
      done;
      let par = Telemetry.create () in
      let pool = Stdx.Domain_pool.create ~size () in
      Stdx.Domain_pool.parallel_for pool ~n ~f:(record par);
      Telemetry.counter_value par "c" = Telemetry.counter_value seq "c"
      && Telemetry.hist_summary par "h" = Telemetry.hist_summary seq "h")

let test_sharded_fanout_exact () =
  let n = 4096 in
  let par = Telemetry.create () in
  let pool = Stdx.Domain_pool.create ~size:4 () in
  Stdx.Domain_pool.parallel_for pool ~n ~f:(record par);
  Alcotest.(check int) "counter total"
    (List.init n Fun.id |> List.fold_left (fun acc i -> acc + 1 + (i mod 5)) 0)
    (Telemetry.counter_value par "c");
  Alcotest.(check int) "histogram count" n
    (Option.get (Telemetry.hist_summary par "h")).Telemetry.count

let () =
  Alcotest.run "telemetry"
    [
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "gauge last write" `Quick test_gauge_last_write_wins;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "exponential vs oracle" `Quick test_hist_exponential;
          Alcotest.test_case "uniform vs oracle" `Quick test_hist_uniform;
          Alcotest.test_case "extreme percentiles" `Quick test_hist_extremes;
          Alcotest.test_case "out-of-range values" `Quick test_hist_out_of_range;
          Alcotest.test_case "empty and unknown" `Quick
            test_hist_empty_and_unknown;
          Alcotest.test_case "single observation" `Quick
            test_hist_single_observation;
          Alcotest.test_case "quantile boundaries" `Quick
            test_hist_quantile_boundaries;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "unbalanced end" `Quick test_span_unbalanced;
          Alcotest.test_case "records on exception" `Quick test_with_span_exception;
        ] );
      ( "dumps",
        [
          Alcotest.test_case "json roundtrip" `Quick test_dump_json_roundtrip;
          Alcotest.test_case "prometheus" `Quick test_dump_prometheus;
          Alcotest.test_case "prometheus well-formed" `Quick
            test_prometheus_wellformed;
          Alcotest.test_case "label escaping" `Quick
            test_prometheus_label_escaping;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "errors" `Quick test_json_errors;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_fuzz_no_crash;
        ] );
      ( "sharding",
        [
          QCheck_alcotest.to_alcotest prop_sharded_merge;
          Alcotest.test_case "fan-out totals exact" `Quick test_sharded_fanout_exact;
        ] );
    ]
