(* Differential tests for the JIT specialization tier (Activermt.Jit).

   The contract under test (jit.mli): execution through compiled closures
   is *bit-identical* to the interpreter — the same result record, the
   same trace_event stream, the same register-array contents and access
   counts, the same device drop/recirculation counters — across faults
   (protection, privilege, recirculation limits, explicit drops),
   quiescence, and invalidation (reinstall, migration, departure).

   Every check runs a "twin world": two identical device+table pairs, one
   driven by Runtime.run, the other by Jit.run, fed the same packet
   sequence.  Comparing full post-run device state (not just results)
   catches a specialized closure that computes the right answer with the
   wrong side effects. *)

module I = Activermt.Instr
module P = Activermt.Program
module Pkt = Activermt.Packet
module Tbl = Activermt.Table
module RT = Activermt.Runtime
module Jit = Activermt.Jit
module Controller = Activermt_control.Controller
module Negotiate = Activermt_client.Negotiate
module Cache_client = Activermt_client.Cache_client
module Hh_client = Activermt_client.Hh_client
module Lb_client = Activermt_client.Lb_client
module Mutant = Activermt_compiler.Mutant
module Kv = Workload.Kv

let params = Rmt.Params.default

let regions_with assoc =
  let r = Array.make 20 None in
  List.iter
    (fun (s, start_word, n_words) -> r.(s) <- Some { Pkt.start_word; n_words })
    assoc;
  r

(* -- Twin worlds ---------------------------------------------------------- *)

type twin = { it : Tbl.t; jt : Tbl.t; jit : Jit.t }

let twin ?(params = params) ?privileged ?max_passes ?(virtual_addressing = true)
    ?(stages = [ (0, 0, 256); (5, 256, 256); (13, 0, 512) ]) () =
  let mk () =
    let t = Tbl.create (Rmt.Device.create params) in
    (match
       Tbl.install ?privileged ?max_passes t ~fid:1 ~virtual_addressing
         ~regions:(regions_with stages)
     with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "twin install");
    t
  in
  let it = mk () in
  let jt = mk () in
  { it; jt; jit = Jit.create jt }

let meta = RT.meta ~flow_key:[| 0xBEEF; 0xCAFE |] ~src:100 ~dst:200 ()

(* Full observable device state: register contents and access counts for
   every stage, plus the drop/recirculation counters. *)
let device_state tbl =
  let d = Tbl.device tbl in
  let per_stage =
    Array.map
      (fun s ->
        let regs = s.Rmt.Device.regs in
        let words = Rmt.Register_array.words regs in
        ( Rmt.Register_array.snapshot_range regs ~lo:0 ~hi:(words - 1),
          Rmt.Register_array.access_count regs ))
      (Rmt.Device.stages d)
  in
  (per_stage, Rmt.Device.drops d, Rmt.Device.recirculations d)

let exec_both w pkt =
  let iev = ref [] in
  let jev = ref [] in
  let ri = RT.run ~on_event:(fun e -> iev := e :: !iev) w.it ~meta pkt in
  let rj, mode =
    Jit.run_info ~on_event:(fun e -> jev := e :: !jev) w.jit ~meta pkt
  in
  (ri, List.rev !iev, rj, List.rev !jev, mode)

(* Structural comparison covers the whole result record (args_out arrays,
   drop reasons) and the whole trace-event stream. *)
let identical w pkt =
  let ri, iev, rj, jev, _ = exec_both w pkt in
  ri = rj && iev = jev && device_state w.it = device_state w.jt

let check_identical msg w pkt =
  let ri, iev, rj, jev, _ = exec_both w pkt in
  Alcotest.(check bool) (msg ^ ": result") true (ri = rj);
  Alcotest.(check bool) (msg ^ ": trace stream") true (iev = jev);
  Alcotest.(check bool)
    (msg ^ ": device state")
    true
    (device_state w.it = device_state w.jt);
  ri

let exec_pkt ?(seq = 0) ?(args = [| 0; 0; 0; 0 |]) instrs =
  Pkt.exec ~fid:1 ~seq ~args (P.v (P.plain instrs))

(* -- Directed: real applications ------------------------------------------ *)

(* The synthesized cache / heavy-hitter / Cheetah-LB programs are what the
   JIT's fused superinstructions actually target, so running the bench's
   packet mix through both engines exercises every peephole pattern
   against its real producer.  Admission goes through the controller so
   the JIT specializes against a real granted allocation. *)
type tenants = {
  tables : Tbl.t;
  cache : Cache_client.t;
  hh : Hh_client.t;
  lb : Lb_client.t;
}

let setup_tenants () =
  let device = Rmt.Device.create params in
  let controller = Controller.create device in
  let admit ~fid service =
    let request = Negotiate.request_packet ~fid ~seq:0 service in
    match Controller.handle_request controller request with
    | Ok provision ->
      Option.get (Negotiate.granted_regions provision.Controller.response)
    | Error _ -> Alcotest.fail "tenant admission failed on an empty switch"
  in
  let client = function Ok c -> c | Error e -> Alcotest.fail e in
  let policy = Mutant.Most_constrained in
  let cache_regions = admit ~fid:1 Activermt_apps.Cache.service in
  let hh_regions = admit ~fid:2 Activermt_apps.Heavy_hitter.service in
  let lb_regions = admit ~fid:3 Activermt_apps.Cheetah_lb.service in
  {
    tables = Controller.tables controller;
    cache =
      client (Cache_client.create params ~policy ~fid:1 ~regions:cache_regions);
    hh = client (Hh_client.create params ~policy ~fid:2 ~regions:hh_regions);
    lb = client (Lb_client.create params ~policy ~fid:3 ~regions:lb_regions);
  }

let app_pool t =
  Array.init 64 (fun i ->
      match i mod 4 with
      | 0 ->
        let key = Kv.key_of_rank (32 * ((i lsr 3) land 1)) in
        if i mod 40 = 0 then
          Cache_client.populate_packet t.cache ~seq:i key ~value:(i * 7)
        else Cache_client.query_packet t.cache ~seq:i key
      | 1 | 2 -> Hh_client.monitor_packet t.hh ~seq:i (Kv.key_of_rank (i mod 64))
      | _ -> Lb_client.syn_packet t.lb ~seq:i ~salt:i)

let test_real_apps_identical () =
  let ti = setup_tenants () in
  let tj = setup_tenants () in
  let jit = Jit.create tj.tables in
  let ipool = app_pool ti in
  let jpool = app_pool tj in
  (* Three rounds: round 1 compiles (cache misses, cold sketches), later
     rounds serve from the closure cache with warm register state. *)
  for round = 1 to 3 do
    Array.iteri
      (fun k ipkt ->
        let iev = ref [] in
        let jev = ref [] in
        let ri = RT.run ~on_event:(fun e -> iev := e :: !iev) ti.tables ~meta ipkt in
        let rj =
          Jit.run ~on_event:(fun e -> jev := e :: !jev) jit ~meta jpool.(k)
        in
        if not (ri = rj && !iev = !jev) then
          Alcotest.failf "round %d packet %d diverged" round k)
      ipool;
    Alcotest.(check bool)
      (Printf.sprintf "round %d device state" round)
      true
      (device_state ti.tables = device_state tj.tables)
  done;
  let hits, misses, compiles, _ = Jit.stats jit in
  Alcotest.(check bool) "specialized at least once" true (compiles > 0);
  Alcotest.(check bool) "misses only on first sight" true (misses = compiles);
  Alcotest.(check bool) "later rounds hit the cache" true (hits >= 2 * 64)

(* -- Directed: control flow, recirculation, faults ------------------------ *)

let test_branches_identical () =
  let w = twin () in
  let program =
    match P.parse "MBR_LOAD 1\nCJUMP L1\nMBR_LOAD 3\nL1: RETURN\n" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let run args seq =
    ignore
      (check_identical "branchy program" w (Pkt.exec ~fid:1 ~seq ~args program))
  in
  (* Taken and not-taken, through both the fresh-compile and cached path. *)
  run [| 0; 1; 0; 0 |] 0;
  run [| 0; 0; 0; 0 |] 1;
  run [| 0; 1; 0; 0 |] 2

let test_recirculation_identical () =
  let w = twin () in
  let two_pass = List.init 24 (fun _ -> I.Nop) @ [ I.Return ] in
  let r = check_identical "two passes" w (exec_pkt two_pass) in
  Alcotest.(check int) "recirculated" 2 r.RT.passes

let test_pass_allowance_identical () =
  let w = twin ~max_passes:2 () in
  let three_pass = List.init 45 (fun _ -> I.Nop) @ [ I.Return ] in
  let r = check_identical "pass allowance" w (exec_pkt three_pass) in
  match r.RT.decision with
  | RT.Dropped RT.Recirculation_limit -> ()
  | _ -> Alcotest.fail "expected recirculation-limit drop in both engines"

let test_device_recirc_limit_identical () =
  let small = { params with Rmt.Params.recirc_limit = 1 } in
  let w = twin ~params:small () in
  let long = List.init 70 (fun _ -> I.Nop) @ [ I.Return ] in
  let r = check_identical "device recirc limit" w (exec_pkt long) in
  match r.RT.decision with
  | RT.Dropped RT.Recirculation_limit -> ()
  | _ -> Alcotest.fail "expected device-limit drop in both engines"

let test_fault_drops_identical () =
  (* Protection violation: physical addressing outside the granted range. *)
  let w = twin ~virtual_addressing:false ~stages:[ (0, 512, 256) ] () in
  let r =
    check_identical "protection" w
      (exec_pkt ~args:[| 100; 0; 0; 0 |] [ I.Mem_read; I.Return ])
  in
  (match r.RT.decision with
  | RT.Dropped (RT.Protection_violation _) -> ()
  | _ -> Alcotest.fail "expected protection drop");
  (* No allocation at the accessed stage. *)
  let w = twin ~stages:[ (13, 0, 256) ] () in
  let r = check_identical "no allocation" w (exec_pkt [ I.Mem_read; I.Return ]) in
  (match r.RT.decision with
  | RT.Dropped (RT.No_allocation _) -> ()
  | _ -> Alcotest.fail "expected no-allocation drop");
  (* Privilege: FORK without the privilege bit, then with it. *)
  let w = twin () in
  let r = check_identical "privilege" w (exec_pkt [ I.Fork; I.Return ]) in
  (match r.RT.decision with
  | RT.Dropped (RT.Privilege_violation _) -> ()
  | _ -> Alcotest.fail "expected privilege drop");
  let w = twin ~privileged:true () in
  let r = check_identical "privileged fork" w (exec_pkt [ I.Fork; I.Return ]) in
  Alcotest.(check int) "fork executed in both" 1 r.RT.forks;
  (* Explicit drop. *)
  let w = twin () in
  let r = check_identical "explicit drop" w (exec_pkt [ I.Drop ]) in
  match r.RT.decision with
  | RT.Dropped RT.Explicit_drop -> ()
  | _ -> Alcotest.fail "expected explicit drop"

(* -- Directed: quiescence and invalidation -------------------------------- *)

let test_quiescence_identical () =
  let w = twin () in
  let incr = exec_pkt ~args:[| 9; 0; 0; 0 |] [ I.Mem_increment; I.Return ] in
  ignore (check_identical "before quiesce" w incr);
  let _, _, compiles0, _ = Jit.stats w.jit in
  Tbl.quiesce w.it ~fid:1;
  Tbl.quiesce w.jt ~fid:1;
  Alcotest.(check bool) "quiesced FID not specialized" false
    (Jit.would_specialize w.jit incr);
  let _, _, rj, _, mode = exec_both w incr in
  Alcotest.(check bool) "passes through unprocessed" true rj.RT.quiesced;
  Alcotest.(check bool) "interpreter fallback while quiesced" true
    (mode = Jit.Interpreted);
  Tbl.unquiesce w.it ~fid:1;
  Tbl.unquiesce w.jt ~fid:1;
  (* Quiescence transitions bump the allocation epoch, so the cached
     closure from before the quiesce window is stale: the next packet
     recompiles rather than reusing it. *)
  let r = check_identical "after unquiesce" w incr in
  Alcotest.(check int) "register survived the window" 2 r.RT.final_mbr;
  let _, _, compiles1, _ = Jit.stats w.jit in
  Alcotest.(check bool) "recompiled after epoch bump" true (compiles1 > compiles0)

let test_reinstall_invalidates () =
  let w = twin ~stages:[ (0, 0, 256) ] () in
  let incr = exec_pkt ~args:[| 5; 0; 0; 0 |] [ I.Mem_increment; I.Return ] in
  ignore (check_identical "initial allocation" w incr);
  (* Reallocation: remove + reinstall with a different region, as the
     controller does for elastic reallocation or migration repopulate.
     The stale closure bakes the old bounds; the epoch key must prevent
     its reuse. *)
  let reinstall t =
    Tbl.remove t ~fid:1;
    match
      Tbl.install t ~fid:1 ~virtual_addressing:true
        ~regions:(regions_with [ (0, 512, 128); (5, 0, 64) ])
    with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "reinstall"
  in
  reinstall w.it;
  reinstall w.jt;
  let _, _, compiles0, _ = Jit.stats w.jit in
  ignore (check_identical "after reallocation" w incr);
  let _, _, compiles1, _ = Jit.stats w.jit in
  Alcotest.(check bool) "recompiled against the new allocation" true
    (compiles1 > compiles0)

let test_departure_invalidation () =
  let w = twin () in
  ignore (check_identical "resident" w (exec_pkt [ I.Return ]));
  Alcotest.(check bool) "closure cached" true (Jit.cache_size w.jit > 0);
  (* Departure / migration source path (what Fabric and Fleet.migrate do):
     remove the tables, then evict the dead closures. *)
  Tbl.remove w.it ~fid:1;
  Tbl.remove w.jt ~fid:1;
  Jit.invalidate w.jit ~fid:1;
  Alcotest.(check int) "cache emptied" 0 (Jit.cache_size w.jit);
  Alcotest.(check bool) "departed FID not specialized" false
    (Jit.would_specialize w.jit (exec_pkt [ I.Return ]));
  (* Uninstalled on both sides: still identical (interpreter fallback). *)
  ignore (check_identical "after departure" w (exec_pkt [ I.Return ]))

let test_disabled_jit () =
  let w = twin () in
  let jit = Jit.create ~enabled:false w.jt in
  let pkt = exec_pkt ~args:[| 3; 0; 0; 0 |] [ I.Mem_increment; I.Return ] in
  Alcotest.(check bool) "disabled jit never specializes" false
    (Jit.would_specialize jit pkt);
  let ri = RT.run w.it ~meta pkt in
  let rj, mode = Jit.run_info jit ~meta pkt in
  Alcotest.(check bool) "interpreted" true (mode = Jit.Interpreted);
  Alcotest.(check bool) "same result" true (ri = rj);
  let hits, misses, compiles, _ = Jit.stats jit in
  Alcotest.(check (list int)) "no cache activity" [ 0; 0; 0 ]
    [ hits; misses; compiles ]

let test_non_exec_passthrough () =
  let w = twin () in
  let pkt = { Pkt.fid = 1; seq = 0; flags = Pkt.no_flags; payload = Pkt.Bare } in
  let ri = RT.run w.it ~meta pkt in
  let rj, mode = Jit.run_info w.jit ~meta pkt in
  Alcotest.(check bool) "bare packets interpreted" true (mode = Jit.Interpreted);
  Alcotest.(check bool) "same result" true (ri = rj)

(* -- Properties ----------------------------------------------------------- *)

let instr_gen =
  (* Label-free pool, as in test_core: random label placement rarely
     validates; branch handling is covered by the directed test. *)
  let pool =
    List.filter (fun i -> I.branch_target i = None && i <> I.Eof) I.all_opcodes
  in
  QCheck.Gen.oneofl pool

(* The core property: on arbitrary label-free programs — which freely hit
   protection faults, privilege drops, recirculation and hash/memory ops —
   the JIT's result, trace stream and device side effects equal the
   interpreter's, on both the fresh-compile and the cached path. *)
let prop_jit_matches_interpreter =
  QCheck.Test.make ~name:"jit = interpreter on random programs" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair
           (pair
              (list_size (int_range 1 50) instr_gen)
              bool)
           (pair
              (array_size (return 4) (int_range 0 0xFFFF))
              (array_size (return 4) (int_range 0 0xFFFF)))))
    (fun ((instrs, privileged), (args1, args2)) ->
      let w = twin ~privileged () in
      let p = P.v (P.plain instrs) in
      identical w (Pkt.exec ~fid:1 ~seq:0 ~args:args1 p)
      && identical w (Pkt.exec ~fid:1 ~seq:1 ~args:args2 p))

(* Invalidation safety: after a random reallocation the JIT may never
   serve the closure specialized against the old bounds. *)
let prop_reinstall_safe =
  QCheck.Test.make ~name:"jit matches interpreter across reallocation" ~count:100
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 30) instr_gen)
           (pair (int_range 0 19) (int_range 0 3))))
    (fun (instrs, (stage, size_sel)) ->
      let w = twin () in
      let p = P.v (P.plain instrs) in
      let ok1 = identical w (Pkt.exec ~fid:1 ~seq:0 ~args:[| 7; 1; 2; 3 |] p) in
      let n_words = 32 lsl size_sel in
      let reinstall t =
        Tbl.remove t ~fid:1;
        Result.is_ok
          (Tbl.install t ~fid:1 ~virtual_addressing:true
             ~regions:(regions_with [ (stage, 0, n_words) ]))
      in
      let a = reinstall w.it in
      let b = reinstall w.jt in
      a = b
      && ok1
      && identical w (Pkt.exec ~fid:1 ~seq:1 ~args:[| 7; 1; 2; 3 |] p))

(* The slicing-by-8 fast hash must agree with the byte-at-a-time CRC
   family everywhere — the JIT's hash superinstructions rely on it. *)
let prop_hash_words2 =
  QCheck.Test.make ~name:"hash_words2 = hash_words" ~count:2000
    (QCheck.make
       QCheck.Gen.(
         triple (int_range 0 63)
           (int_range 0 0xFFFFFFFF)
           (int_range 0 0xFFFFFFFF)))
    (fun (row, w0, w1) ->
      Rmt.Crc.hash_words2 ~row w0 w1 = Rmt.Crc.hash_words ~row [ w0; w1 ])

let () =
  Alcotest.run "jit"
    [
      ( "apps",
        [
          Alcotest.test_case "real app mix is bit-identical" `Quick
            test_real_apps_identical;
        ] );
      ( "execution",
        [
          Alcotest.test_case "branches" `Quick test_branches_identical;
          Alcotest.test_case "recirculation" `Quick test_recirculation_identical;
          Alcotest.test_case "per-FID pass allowance" `Quick
            test_pass_allowance_identical;
          Alcotest.test_case "device recirc limit" `Quick
            test_device_recirc_limit_identical;
          Alcotest.test_case "fault drops" `Quick test_fault_drops_identical;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "quiescence" `Quick test_quiescence_identical;
          Alcotest.test_case "reallocation invalidates" `Quick
            test_reinstall_invalidates;
          Alcotest.test_case "departure invalidation" `Quick
            test_departure_invalidation;
          Alcotest.test_case "disabled jit (--no-jit)" `Quick test_disabled_jit;
          Alcotest.test_case "non-exec passthrough" `Quick
            test_non_exec_passthrough;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_jit_matches_interpreter;
          QCheck_alcotest.to_alcotest prop_reinstall_safe;
          QCheck_alcotest.to_alcotest prop_hash_words2;
        ] );
    ]
