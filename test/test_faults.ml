(* Fault-injection layer and the protocol stack's recovery machinery:
   wire checksum rejection, duplicate idempotence (controller and
   memsync), negotiation backoff, fleet migration under loss, and the
   qcheck property that a retrying negotiation under any survivable
   fault profile either succeeds or times out cleanly — never hangs,
   never double-allocates. *)

module Wire = Activermt.Wire
module Pkt = Activermt.Packet
module Faults = Netsim.Faults
module Engine = Netsim.Engine
module Fabric = Netsim.Fabric
module Controller = Activermt_control.Controller
module Cost_model = Activermt_control.Cost_model
module Allocator = Activermt_alloc.Allocator
module Negotiate = Activermt_client.Negotiate
module Memsync_driver = Activermt_client.Memsync_driver
module Fleet = Activermt_fleet.Fleet
module Topology = Activermt_fleet.Topology
module Telemetry = Activermt_telemetry.Telemetry
module Trace = Activermt_telemetry.Trace
module Chaos = Experiments.Chaos

let params = Rmt.Params.default

(* -- Wire checksum ------------------------------------------------------- *)

let test_frame_roundtrip () =
  let payload = Bytes.of_string "activermt capsule payload \x00\x01\xfe\xff" in
  let framed = Wire.frame payload in
  Alcotest.(check int) "trailer adds 3 bytes (checksum + flags)"
    (Bytes.length payload + 3)
    (Bytes.length framed);
  (match Wire.unframe framed with
  | Ok back ->
    Alcotest.(check string) "payload intact" (Bytes.to_string payload)
      (Bytes.to_string back)
  | Error e -> Alcotest.failf "unframe: %s" e);
  let ctx = { Wire.trace_id = 0xDEAD; span_id = 0xBEEF } in
  let traced = Wire.frame ~trace:ctx payload in
  Alcotest.(check int) "trace extension adds 8 more bytes"
    (Bytes.length payload + 11)
    (Bytes.length traced);
  match Wire.unframe_traced traced with
  | Ok (back, Some c) ->
    Alcotest.(check string) "payload intact under trace ext"
      (Bytes.to_string payload) (Bytes.to_string back);
    Alcotest.(check bool) "trace context survives" true (c = ctx)
  | Ok (_, None) -> Alcotest.fail "trace context lost"
  | Error e -> Alcotest.failf "unframe_traced: %s" e

let test_checksum_rejects_any_single_byte_flip () =
  let payload =
    Pkt.encode (Negotiate.request_packet ~fid:3 ~seq:0 Activermt_apps.Cache.service)
  in
  let framed = Wire.frame payload in
  List.iter
    (fun mask ->
      for i = 0 to Bytes.length framed - 1 do
        let damaged = Bytes.copy framed in
        Bytes.set_uint8 damaged i (Bytes.get_uint8 framed i lxor mask);
        match Wire.unframe damaged with
        | Ok _ ->
          Alcotest.failf "flip of byte %d (mask %#x) went undetected" i mask
        | Error _ -> ()
      done)
    [ 0x01; 0x10; 0x80; 0xff ]

let test_unframe_short () =
  match Wire.unframe (Bytes.make 1 'x') with
  | Ok _ -> Alcotest.fail "1-byte frame accepted"
  | Error _ -> ()

(* Any payload with any trace context round-trips through the frame
   trailer exactly, and any single-byte flip of the framed bytes is
   rejected outright — so a damaged frame can never surface a bogus
   trace context. *)
let prop_wire_trace_roundtrip =
  QCheck.Test.make
    ~name:"trace ctx roundtrips; corrupt frames never yield one" ~count:500
    (QCheck.make
       QCheck.Gen.(
         triple
           (map Bytes.of_string
              (string_size
                 ~gen:(map Char.chr (int_range 0 255))
                 (int_range 0 64)))
           (opt (pair (int_range 0 0xFFFFFFFF) (int_range 0 0xFFFFFFFF)))
           (pair (int_range 0 1000) (int_range 1 255))))
    (fun (payload, ctx, (pos, mask)) ->
      let trace =
        Option.map (fun (t, s) -> { Wire.trace_id = t; span_id = s }) ctx
      in
      let framed = Wire.frame ?trace payload in
      let roundtrips =
        match Wire.unframe_traced framed with
        | Ok (back, got) -> Bytes.equal back payload && got = trace
        | Error _ -> false
      in
      let damaged = Bytes.copy framed in
      let i = pos mod Bytes.length framed in
      Bytes.set_uint8 damaged i (Bytes.get_uint8 damaged i lxor mask);
      let corruption_caught =
        match Wire.unframe_traced damaged with Ok _ -> false | Error _ -> true
      in
      roundtrips && corruption_caught)

(* -- Faults model -------------------------------------------------------- *)

let test_faults_deterministic () =
  let profile =
    Faults.lossy ~drop:0.3 ~duplicate:0.2 ~corrupt:0.1 ~jitter_s:1e-4 ()
  in
  let a = Faults.create ~seed:99 profile in
  let b = Faults.create ~seed:99 profile in
  for i = 0 to 199 do
    let now = 0.01 *. float_of_int i in
    let va = Faults.plan a ~now and vb = Faults.plan b ~now in
    Alcotest.(check bool) "same lose" va.Faults.lose vb.Faults.lose;
    Alcotest.(check bool) "same corrupt" va.Faults.corrupt vb.Faults.corrupt;
    Alcotest.(check int) "same copies" va.Faults.copies vb.Faults.copies;
    Alcotest.(check (float 0.0)) "same jitter" (Faults.jitter a) (Faults.jitter b)
  done;
  Alcotest.(check int) "same injected count" (Faults.injected a)
    (Faults.injected b)

let test_faults_flap_square_wave () =
  let f =
    Faults.create
      {
        Faults.none with
        Faults.flap_period_s = 10.0;
        flap_down_s = 2.0;
      }
  in
  Alcotest.(check bool) "down at 1s" true (Faults.link_down f ~now:1.0);
  Alcotest.(check bool) "up at 5s" false (Faults.link_down f ~now:5.0);
  Alcotest.(check bool) "down again at 11s" true (Faults.link_down f ~now:11.0)

let test_faults_none_is_free () =
  let engine = Engine.create () in
  let controller = Controller.create (Rmt.Device.create params) in
  let handle = Faults.create Faults.none in
  let fabric = Fabric.create ~faults:handle ~engine ~controller () in
  Alcotest.(check bool) "all-off profile is discarded" true
    (Fabric.faults fabric = None)

let test_faults_validation () =
  Alcotest.check_raises "drop > 1"
    (Invalid_argument "Faults: drop must be in [0, 1], got 1.5")
    (fun () -> ignore (Faults.create (Faults.lossy ~drop:1.5 ())))

(* -- Cost-model degradation ---------------------------------------------- *)

let test_cost_model_degrade () =
  let c = Cost_model.default in
  let d = Cost_model.degrade c ~slowdown:10.0 in
  Alcotest.(check (float 1e-12)) "table entry x10"
    (10.0 *. c.Cost_model.table_entry_update_s)
    d.Cost_model.table_entry_update_s;
  Alcotest.(check (float 1e-12)) "app install x10"
    (10.0 *. c.Cost_model.app_install_s)
    d.Cost_model.app_install_s;
  Alcotest.(check (float 0.0)) "snapshot untouched" c.Cost_model.snapshot_word_s
    d.Cost_model.snapshot_word_s;
  Alcotest.(check (float 0.0)) "notify untouched" c.Cost_model.notify_rtt_s
    d.Cost_model.notify_rtt_s;
  Alcotest.check_raises "slowdown < 1"
    (Invalid_argument "Cost_model.degrade: slowdown must be >= 1") (fun () ->
      ignore (Cost_model.degrade c ~slowdown:0.5))

(* -- Controller idempotence ---------------------------------------------- *)

let test_duplicate_request_idempotent () =
  let tel = Telemetry.create () in
  let controller = Controller.create ~telemetry:tel (Rmt.Device.create params) in
  let request = Negotiate.request_packet ~fid:7 ~seq:0 Activermt_apps.Cache.service in
  let first =
    match Controller.handle_request controller request with
    | Ok p -> p
    | Error _ -> Alcotest.fail "first request rejected"
  in
  let resident_once () =
    List.length
      (List.filter (( = ) 7) (Allocator.resident (Controller.allocator controller)))
  in
  Alcotest.(check int) "resident once" 1 (resident_once ());
  (* A network duplicate (same packet) and a client retry (higher seq)
     must both be answered from the existing allocation. *)
  List.iter
    (fun retry ->
      match Controller.handle_request controller retry with
      | Error _ -> Alcotest.fail "duplicate request rejected"
      | Ok dup ->
        Alcotest.(check int) "no reallocation work" 0
          (List.length dup.Controller.reallocated);
        Alcotest.(check bool) "still resident exactly once" true
          (resident_once () = 1);
        Alcotest.(check bool) "same regions as the original grant" true
          (Negotiate.granted_regions dup.Controller.response
          = Negotiate.granted_regions first.Controller.response))
    [ request; Negotiate.request_packet ~fid:7 ~seq:3 Activermt_apps.Cache.service ];
  Alcotest.(check int) "dup counter" 2 (Telemetry.counter_value tel "control.dup_requests")

(* -- Memsync driver retries ---------------------------------------------- *)

let test_memsync_duplicate_reply_idempotent () =
  let driver =
    Memsync_driver.create ~fid:1 ~stages:[ 0 ] ~count:2 ~timeout_s:1.0
      Memsync_driver.Read
  in
  let sent = ref [] in
  Memsync_driver.start driver ~now:0.0 ~send:(fun ~seq _ -> sent := seq :: !sent);
  let seq = List.hd !sent in
  Alcotest.(check bool) "first reply consumed" true
    (Memsync_driver.on_reply driver ~seq ~args:[| 0; 42 |]);
  Alcotest.(check bool) "duplicate reply ignored" false
    (Memsync_driver.on_reply driver ~seq ~args:[| 0; 42 |]);
  Alcotest.(check int) "one slot still outstanding" 1
    (Memsync_driver.outstanding driver)

let test_memsync_attempt_budget () =
  let driver =
    Memsync_driver.create ~max_attempts:3 ~fid:1 ~stages:[ 0 ] ~count:1
      ~timeout_s:1.0 Memsync_driver.Read
  in
  let void ~seq:_ _ = () in
  Memsync_driver.start driver ~now:0.0 ~send:void;
  Alcotest.(check int) "retry 1" 1 (Memsync_driver.tick driver ~now:2.0 ~send:void);
  Alcotest.(check int) "retry 2" 1 (Memsync_driver.tick driver ~now:4.0 ~send:void);
  Alcotest.(check int) "budget spent" 0 (Memsync_driver.tick driver ~now:8.0 ~send:void);
  Alcotest.(check int) "exhausted" 1 (Memsync_driver.exhausted driver);
  Alcotest.(check (list int)) "unacked index" [ 0 ] (Memsync_driver.unacked driver);
  Alcotest.(check int) "three packets total" 3 (Memsync_driver.attempts driver)

(* -- Negotiation backoff ------------------------------------------------- *)

let test_negotiate_backoff_growth () =
  let backoff =
    {
      Negotiate.base_timeout_s = 0.1;
      multiplier = 2.0;
      max_timeout_s = 0.4;
      jitter = 0.0;
      max_attempts = 4;
    }
  in
  let session =
    Negotiate.session ~backoff ~fid:9 Activermt_apps.Counter.service
  in
  let seqs = ref [] in
  let send (pkt : Pkt.t) = seqs := pkt.Pkt.seq :: !seqs in
  Negotiate.start session ~now:0.0 ~send;
  let wait = function
    | `Wait dt -> dt
    | `Done _ -> Alcotest.fail "settled prematurely"
  in
  (* Tick strictly past each deadline (0.1, then +0.2, +0.4, +0.4): the
     armed timeout doubles and then pins at the cap. *)
  Alcotest.(check (float 1e-6)) "first timeout" 0.05
    (wait (Negotiate.tick session ~now:0.05 ~send));
  Alcotest.(check (float 1e-6)) "retry doubles" 0.2
    (wait (Negotiate.tick session ~now:0.11 ~send));
  Alcotest.(check (float 1e-6)) "doubles again" 0.4
    (wait (Negotiate.tick session ~now:0.32 ~send));
  Alcotest.(check (float 1e-6)) "capped at max" 0.4
    (wait (Negotiate.tick session ~now:0.73 ~send));
  (match Negotiate.tick session ~now:1.2 ~send with
  | `Done Negotiate.Timeout -> ()
  | `Done _ | `Wait _ -> Alcotest.fail "expected Timeout after the budget");
  Alcotest.(check int) "all four attempts sent" 4 (Negotiate.attempts session);
  Alcotest.(check (list int)) "seq = attempt number" [ 0; 1; 2; 3 ]
    (List.rev !seqs);
  (* Settled sessions ignore stragglers. *)
  match
    Negotiate.on_packet session
      (Negotiate.request_packet ~fid:9 ~seq:0 Activermt_apps.Counter.service)
  with
  | `Stale -> ()
  | _ -> Alcotest.fail "expected `Stale after settlement"

(* -- The qcheck property -------------------------------------------------

   For any seeded fault profile that loses less than every packet, a
   retrying negotiation against a real controller through the faulty
   fabric terminates with Granted / Rejected / Timeout (the simulation
   drains — it cannot hang), and the switch never holds more than one
   allocation for the FID no matter how many retries were absorbed. *)

let negotiate_under_faults ~drop ~duplicate ~corrupt ~ctl_fail ~seed =
  let profile =
    {
      Faults.drop;
      duplicate;
      corrupt;
      jitter_s = 1e-4;
      flap_period_s = 0.0;
      flap_down_s = 0.0;
      table_update_slowdown = 1.0;
      table_update_fail = ctl_fail;
    }
  in
  let engine = Engine.create () in
  let controller = Controller.create (Rmt.Device.create params) in
  let faults = Faults.create ~seed profile in
  let fabric = Fabric.create ~faults ~engine ~controller () in
  let session =
    Negotiate.session ~seed ~fid:1 Activermt_apps.Counter.service
  in
  let send pkt =
    Fabric.send fabric
      { Fabric.src = 10; dst = Fabric.switch_address; payload = Fabric.Active pkt; trace = None }
  in
  Fabric.attach fabric 10 (fun msg ->
      match msg.Fabric.payload with
      | Fabric.Active pkt -> ignore (Negotiate.on_packet session pkt)
      | Fabric.Alloc_failed -> Negotiate.on_alloc_failed session
      | _ -> ());
  let rec pump () =
    match Negotiate.tick session ~now:(Engine.now engine) ~send with
    | `Wait dt -> Engine.schedule engine ~delay:dt pump
    | `Done _ -> ()
  in
  Negotiate.start session ~now:0.0 ~send;
  pump ();
  Engine.run ~until:300.0 engine;
  (session, controller)

let prop_negotiation_terminates_cleanly =
  QCheck.Test.make ~name:"negotiation under faults: clean outcome, one allocation"
    ~count:40
    (QCheck.make
       QCheck.Gen.(
         map
           (fun (((d, u), (c, f)), seed) ->
             ( float_of_int d /. 1000.0,
               float_of_int u /. 1000.0,
               float_of_int c /. 1000.0,
               float_of_int f /. 1000.0,
               seed ))
           (pair
              (pair
                 (pair (int_range 0 900) (int_range 0 300))
                 (pair (int_range 0 300) (int_range 0 500)))
              (int_range 0 1_000_000))))
    (fun (drop, duplicate, corrupt, ctl_fail, seed) ->
      let session, controller =
        negotiate_under_faults ~drop ~duplicate ~corrupt ~ctl_fail ~seed
      in
      let settled = Negotiate.outcome session <> None in
      let budget_respected =
        Negotiate.attempts session <= Negotiate.default_backoff.Negotiate.max_attempts
      in
      let allocations =
        List.length
          (List.filter (( = ) 1) (Allocator.resident (Controller.allocator controller)))
      in
      settled && budget_respected && allocations <= 1)

(* -- End-to-end chaos scenario ------------------------------------------- *)

let test_chaos_recovers_at_5pct_loss () =
  let r =
    Chaos.run
      {
        Chaos.default_config with
        Chaos.services = 6;
        words = 16;
        seed = 1234;
        profile = Faults.lossy ~drop:0.05 ();
      }
  in
  Alcotest.(check int) "every service completes" 6 r.Chaos.completed;
  Alcotest.(check bool) "loss actually happened" true (r.Chaos.fault_events > 0)

let test_chaos_baseline_documents_failure () =
  let cfg =
    {
      Chaos.default_config with
      Chaos.services = 6;
      words = 16;
      seed = 1234;
      retries = false;
      profile = Faults.lossy ~drop:0.2 ();
    }
  in
  let r = Chaos.run cfg in
  Alcotest.(check bool) "fire-once loses services under 20% loss" true
    (r.Chaos.completion < 1.0)

(* A dropped capsule's trace must end in a [fault.drop] event whose
   attributes name the faulty link — the whole point of the flight
   recorder is that loss is attributable, not silent.  Duplicates stay
   off so every drop is genuinely the end of its causal branch. *)
let test_chaos_traces_attribute_drops () =
  let tracer = Trace.create () in
  let r =
    Chaos.run ~tracer
      {
        Chaos.default_config with
        Chaos.services = 6;
        words = 16;
        seed = 1234;
        profile = Faults.lossy ~drop:0.05 ~corrupt:0.02 ();
      }
  in
  Alcotest.(check bool) "faults actually fired" true (r.Chaos.fault_events > 0);
  let evs = Trace.events tracer in
  let drops = List.filter (fun e -> e.Trace.name = "fault.drop") evs in
  Alcotest.(check bool) "some dropped capsule was traced" true (drops <> []);
  List.iter
    (fun d ->
      Alcotest.(check bool) "drop names its link" true
        (List.mem_assoc "link" d.Trace.attrs);
      Alcotest.(check bool) "drop names its cause" true
        (List.mem_assoc "cause" d.Trace.attrs);
      Alcotest.(check bool) "drop is trace-terminal" true
        (not
           (List.exists
              (fun e ->
                e.Trace.trace_id = d.Trace.trace_id
                && e.Trace.parent_span_id = d.Trace.span_id)
              evs)))
    drops

(* -- Fleet migration under faults ---------------------------------------- *)

let fill_pattern state =
  List.mapi
    (fun k (stage, words) ->
      (stage, Array.mapi (fun i _ -> (1000 * (k + 1)) + i) words))
    state

let test_fleet_migration_under_faults () =
  let tel = Telemetry.create () in
  let fleet =
    Fleet.create
      ~faults:(Faults.lossy ~drop:0.3 ~duplicate:0.1 ())
      ~faults_seed:4242 ~telemetry:tel
      (Topology.full_mesh ~switches:2 ~latency_s:1e-5)
  in
  let src =
    match Fleet.admit fleet ~fid:1 Activermt_apps.Counter.service with
    | Ok sw -> sw
    | Error `No_capacity -> Alcotest.fail "admission failed"
  in
  let state = fill_pattern (Fleet.read_state fleet ~fid:1) in
  Fleet.write_state fleet ~fid:1 state;
  let dst = 1 - src in
  (match Fleet.migrate fleet ~fid:1 ~dst with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "migration failed under loss");
  Alcotest.(check (option int)) "placed at dst, once" (Some dst)
    (Fleet.switch_of fleet ~fid:1);
  Alcotest.(check (list (pair int int))) "exactly one residency" [ (1, dst) ]
    (Fleet.residents fleet);
  let recovered = Fleet.read_state fleet ~fid:1 in
  List.iteri
    (fun k (_, words) ->
      let _, expect = List.nth state k in
      Alcotest.(check (array int))
        (Printf.sprintf "region %d state survived the lossy drain" k)
        expect words)
    recovered;
  (* And a failure drill on top: the dead switch's resident re-places
     on the survivor without losing the FID. *)
  let { Fleet.relocated; lost } = Fleet.fail_switch fleet ~sw:dst in
  Alcotest.(check (list (pair int int))) "relocated to survivor" [ (1, src) ]
    relocated;
  Alcotest.(check (list int)) "nothing lost" [] lost

let () =
  Alcotest.run "faults"
    [
      ( "wire",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "single-byte flips rejected" `Quick
            test_checksum_rejects_any_single_byte_flip;
          Alcotest.test_case "short frame" `Quick test_unframe_short;
          QCheck_alcotest.to_alcotest prop_wire_trace_roundtrip;
        ] );
      ( "model",
        [
          Alcotest.test_case "deterministic" `Quick test_faults_deterministic;
          Alcotest.test_case "flap square wave" `Quick test_faults_flap_square_wave;
          Alcotest.test_case "none profile is free" `Quick test_faults_none_is_free;
          Alcotest.test_case "validation" `Quick test_faults_validation;
          Alcotest.test_case "cost-model degrade" `Quick test_cost_model_degrade;
        ] );
      ( "idempotence",
        [
          Alcotest.test_case "duplicate request" `Quick
            test_duplicate_request_idempotent;
          Alcotest.test_case "duplicate memsync reply" `Quick
            test_memsync_duplicate_reply_idempotent;
          Alcotest.test_case "memsync attempt budget" `Quick
            test_memsync_attempt_budget;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff growth" `Quick test_negotiate_backoff_growth;
          QCheck_alcotest.to_alcotest prop_negotiation_terminates_cleanly;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "chaos recovers at 5% loss" `Quick
            test_chaos_recovers_at_5pct_loss;
          Alcotest.test_case "fire-once baseline fails" `Quick
            test_chaos_baseline_documents_failure;
          Alcotest.test_case "dropped capsules attributed in traces" `Quick
            test_chaos_traces_attribute_drops;
          Alcotest.test_case "fleet migration under faults" `Quick
            test_fleet_migration_under_faults;
        ] );
    ]
