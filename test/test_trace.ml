(* The capsule flight recorder: context chaining, bounding/eviction,
   seeded sampling, deterministic Chrome export, tree rendering. *)

module Trace = Activermt_telemetry.Trace
module Json = Activermt_telemetry.Json

(* -- causal chaining ------------------------------------------------------ *)

let test_chaining () =
  let t = Trace.create () in
  let root =
    match Trace.start_trace t ~attrs:[ ("fid", "7") ] "capsule.inject" with
    | Some c -> c
    | None -> Alcotest.fail "sample=1 must keep every trace"
  in
  let hop = Trace.instant t root "sim.hop" in
  let exec = Trace.instant t hop ~attrs:[ ("switch", "2") ] "device.exec" in
  Alcotest.(check bool) "same trace" true
    (root.Trace.trace_id = hop.Trace.trace_id
    && hop.Trace.trace_id = exec.Trace.trace_id);
  let evs = Trace.events t in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let by_name name = List.find (fun e -> e.Trace.name = name) evs in
  Alcotest.(check int) "root has no parent" 0
    (by_name "capsule.inject").Trace.parent_span_id;
  Alcotest.(check int) "hop hangs off root" root.Trace.span_id
    (by_name "sim.hop").Trace.parent_span_id;
  Alcotest.(check int) "exec hangs off hop" hop.Trace.span_id
    (by_name "device.exec").Trace.parent_span_id;
  Alcotest.(check (list (pair string string))) "attrs preserved"
    [ ("fid", "7") ]
    (by_name "capsule.inject").Trace.attrs

let test_with_span_records_on_exception () =
  let t = Trace.create () in
  let root = Trace.start_trace t "root" in
  (try
     Trace.with_span t root "boom" (fun _ -> failwith "kaput")
   with Failure _ -> ());
  Alcotest.(check bool) "span recorded despite exception" true
    (List.exists (fun e -> e.Trace.name = "boom") (Trace.events t))

(* -- bounding ------------------------------------------------------------- *)

let test_bounded_evicts_oldest_traces () =
  let t = Trace.create ~capacity:64 () in
  let roots =
    List.init 100 (fun i ->
        match Trace.start_trace t (Printf.sprintf "t%d" i) with
        | Some c -> c.Trace.trace_id
        | None -> Alcotest.fail "unsampled")
  in
  Alcotest.(check bool) "length bounded" true (Trace.length t <= 64);
  Alcotest.(check bool) "something evicted" true (Trace.evicted t > 0);
  let surviving =
    List.sort_uniq compare
      (List.map (fun e -> e.Trace.trace_id) (Trace.events t))
  in
  let first = List.hd roots and last = List.nth roots 99 in
  Alcotest.(check bool) "oldest trace gone" false (List.mem first surviving);
  Alcotest.(check bool) "newest trace survives" true (List.mem last surviving);
  (* Eviction is whole-trace: survivors form a suffix of the id sequence. *)
  let min_surviving = List.hd surviving in
  Alcotest.(check bool) "survivors are a contiguous suffix" true
    (List.for_all (fun id -> id >= min_surviving) surviving
    && List.length surviving = last - min_surviving + 1)

let test_reset () =
  let t = Trace.create () in
  let a =
    match Trace.start_trace t "a" with Some c -> c | None -> assert false
  in
  Trace.reset t;
  Alcotest.(check int) "empty after reset" 0 (List.length (Trace.events t));
  Alcotest.(check int) "evicted zeroed" 0 (Trace.evicted t);
  let b =
    match Trace.start_trace t "b" with Some c -> c | None -> assert false
  in
  Alcotest.(check bool) "ids keep advancing across reset" true
    (b.Trace.trace_id > a.Trace.trace_id)

(* -- sampling ------------------------------------------------------------- *)

let keep_pattern ~sample ~seed n =
  let t = Trace.create ~sample ~seed () in
  List.init n (fun _ -> Trace.start_trace t "x" <> None)

let test_sampling_deterministic () =
  let a = keep_pattern ~sample:0.5 ~seed:42 200 in
  let b = keep_pattern ~sample:0.5 ~seed:42 200 in
  Alcotest.(check (list bool)) "same seed, same decisions" a b;
  let kept = List.length (List.filter Fun.id a) in
  Alcotest.(check bool) "roughly half kept" true (kept > 50 && kept < 150);
  Alcotest.(check bool) "different seed differs" true
    (keep_pattern ~sample:0.5 ~seed:43 200 <> a)

let test_sampling_extremes () =
  Alcotest.(check bool) "sample=0 keeps nothing" true
    (List.for_all not (keep_pattern ~sample:0.0 ~seed:1 50));
  Alcotest.(check bool) "sample=1 keeps everything" true
    (List.for_all Fun.id (keep_pattern ~sample:1.0 ~seed:1 50))

let test_noop () =
  Alcotest.(check bool) "noop disabled" false (Trace.enabled Trace.noop);
  Alcotest.(check bool) "noop never samples" true
    (Trace.start_trace Trace.noop "x" = None);
  Alcotest.(check int) "noop stores nothing" 0
    (List.length (Trace.events Trace.noop))

(* -- Chrome export -------------------------------------------------------- *)

let test_chrome_export () =
  let t = Trace.create () in
  let now = ref 1.0 in
  Trace.set_clock t (fun () -> !now);
  let root =
    match Trace.start_trace t ~attrs:[ ("switch", "3") ] "capsule.inject" with
    | Some c -> c
    | None -> assert false
  in
  now := 2.0;
  ignore (Trace.instant t root ~attrs:[ ("switch", "1") ] "sim.hop");
  let json =
    match Json.of_string (Trace.dump_chrome t) with
    | Ok j -> j
    | Error e -> Alcotest.failf "dump does not parse: %s" e
  in
  let evs =
    match Option.bind (Json.member "traceEvents" json) Json.to_arr with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  let ph e = Option.bind (Json.member "ph" e) Json.to_str in
  let xs = List.filter (fun e -> ph e = Some "X") evs in
  let ms = List.filter (fun e -> ph e = Some "M") evs in
  Alcotest.(check int) "two slices" 2 (List.length xs);
  (* One process_name metadata record per distinct pid (switches 3, 1). *)
  Alcotest.(check int) "process metadata per switch" 2 (List.length ms);
  let inject =
    List.find
      (fun e -> Json.member "name" e = Some (Json.Str "capsule.inject"))
      xs
  in
  Alcotest.(check (option (float 1e-6))) "ts is clock in microseconds"
    (Some 1e6)
    (Option.bind (Json.member "ts" inject) Json.to_num);
  Alcotest.(check (option (float 1e-6))) "pid is the switch attr" (Some 3.0)
    (Option.bind (Json.member "pid" inject) Json.to_num);
  let args = Option.get (Json.member "args" inject) in
  Alcotest.(check (option string)) "attr in args" (Some "3")
    (Option.bind (Json.member "switch" args) Json.to_str);
  Alcotest.(check bool) "span triple in args" true
    (Json.member "trace_id" args <> None
    && Json.member "span_id" args <> None
    && Json.member "parent_span_id" args <> None)

let test_chrome_deterministic () =
  let dump () =
    let t = Trace.create ~sample:0.5 ~seed:99 () in
    for i = 0 to 20 do
      match Trace.start_trace t ~attrs:[ ("i", string_of_int i) ] "root" with
      | Some c -> ignore (Trace.instant t c "child")
      | None -> ()
    done;
    Trace.dump_chrome t
  in
  Alcotest.(check string) "same run, same bytes" (dump ()) (dump ())

(* -- tree rendering ------------------------------------------------------- *)

let test_render_tree () =
  let t = Trace.create () in
  let root =
    match Trace.start_trace t "capsule.inject" with
    | Some c -> c
    | None -> assert false
  in
  let hop = Trace.instant t root "sim.hop" in
  ignore (Trace.instant t hop ~attrs:[ ("cause", "loss_rate") ] "fault.drop");
  let out = Trace.dump_text t in
  let contains needle =
    let nl = String.length needle and l = String.length out in
    let rec go i = i + nl <= l && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "root at depth 1" true (contains "\n  capsule.inject");
  Alcotest.(check bool) "hop nested under root" true (contains "\n    sim.hop");
  Alcotest.(check bool) "drop nested under hop" true
    (contains "\n      fault.drop");
  Alcotest.(check bool) "attrs rendered" true (contains "cause=loss_rate")

let () =
  Alcotest.run "trace"
    [
      ( "causality",
        [
          Alcotest.test_case "context chaining" `Quick test_chaining;
          Alcotest.test_case "with_span on exception" `Quick
            test_with_span_records_on_exception;
        ] );
      ( "bounding",
        [
          Alcotest.test_case "oldest-trace eviction" `Quick
            test_bounded_evicts_oldest_traces;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "deterministic" `Quick test_sampling_deterministic;
          Alcotest.test_case "extremes" `Quick test_sampling_extremes;
          Alcotest.test_case "noop" `Quick test_noop;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json shape" `Quick test_chrome_export;
          Alcotest.test_case "byte-identical dumps" `Quick
            test_chrome_deterministic;
          Alcotest.test_case "render tree" `Quick test_render_tree;
        ] );
    ]
