(* Fleet layer: topology routing, placement-policy determinism,
   spill-over admission, cross-switch migration (state equality through
   the memsync drain/repopulate path) and switch-failure re-placement
   (no FID lost or double-placed). *)

module Topology = Activermt_fleet.Topology
module Placement = Activermt_fleet.Placement
module Fleet = Activermt_fleet.Fleet
module Telemetry = Activermt_telemetry.Telemetry
module Harness = Experiments.Harness
module Churn = Workload.Churn

let hh = Harness.app_of_kind Churn.Heavy_hitter
let counter = Harness.app_of_kind Churn.Flow_counter

(* Small stages so a handful of heavy-hitter services fills a switch. *)
let small_params = Rmt.Params.with_blocks_per_stage Rmt.Params.default 32

(* ---------- topology ---------- *)

let test_topology_routes () =
  let line = Topology.line ~switches:3 ~latency_s:1.0 in
  Alcotest.(check (option int)) "line 0->2 via 1" (Some 1)
    (Topology.next_hop line ~src:0 ~dst:2);
  Alcotest.(check (float 1e-9)) "line 0->2 latency" 2.0
    (Topology.latency line ~src:0 ~dst:2);
  let star = Topology.star ~switches:4 ~latency_s:0.5 in
  Alcotest.(check (option int)) "star spoke->spoke via hub" (Some 0)
    (Topology.next_hop star ~src:1 ~dst:3);
  let mesh = Topology.full_mesh ~switches:4 ~latency_s:2.0 in
  Alcotest.(check (option int)) "mesh direct" (Some 3)
    (Topology.next_hop mesh ~src:1 ~dst:3);
  Alcotest.(check (float 1e-9)) "mesh latency is one hop" 2.0
    (Topology.latency mesh ~src:1 ~dst:3);
  Alcotest.(check (option int)) "no hop to self" None
    (Topology.next_hop mesh ~src:2 ~dst:2)

let test_topology_validation () =
  Alcotest.check_raises "zero switches" (Invalid_argument
    "Topology.create: need at least one switch") (fun () ->
      ignore (Topology.create ~switches:0 ~links:[]));
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.create: self-loop")
    (fun () -> ignore (Topology.create ~switches:2 ~links:[ (1, 1, 1.0) ]));
  let disconnected = Topology.create ~switches:2 ~links:[] in
  Alcotest.(check bool) "disconnected pair" false
    (Topology.connected disconnected ~src:0 ~dst:1)

(* ---------- placement ---------- *)

let prop_order_permutation_invariant =
  QCheck.Test.make ~count:100
    ~name:"placement order depends on loads, not their ordering"
    QCheck.(triple (int_range 2 8) small_int small_int)
    (fun (n, seed, shuffle_seed) ->
      let prng = Stdx.Prng.create ~seed in
      let loads =
        List.init n (fun i ->
            {
              Placement.switch = i;
              utilization = Stdx.Prng.float prng 1.0;
              residents = Stdx.Prng.int prng 20;
              up = Stdx.Prng.int prng 4 > 0;
            })
      in
      let shuffled =
        let a = Array.of_list loads in
        Stdx.Prng.shuffle (Stdx.Prng.create ~seed:shuffle_seed) a;
        Array.to_list a
      in
      List.for_all
        (fun policy ->
          List.for_all
            (fun home ->
              Placement.order policy ~home loads
              = Placement.order policy ~home shuffled)
            [ None; Some 0; Some (n - 1) ])
        Placement.all_policies)

let test_order_policies () =
  let load switch utilization residents up =
    { Placement.switch; utilization; residents; up }
  in
  let loads = [ load 0 0.5 3 true; load 1 0.1 1 true; load 2 0.3 2 false ] in
  Alcotest.(check (list int)) "first-fit skips down switches" [ 0; 1 ]
    (Placement.order Placement.First_fit_switch ~home:None loads);
  Alcotest.(check (list int)) "least-loaded ascends utilization" [ 1; 0 ]
    (Placement.order Placement.Least_loaded ~home:None loads);
  Alcotest.(check (list int)) "locality puts home first" [ 0; 1 ]
    (Placement.order Placement.Locality ~home:(Some 0) loads);
  Alcotest.(check (list int)) "locality with down home degrades" [ 1; 0 ]
    (Placement.order Placement.Locality ~home:(Some 2) loads)

let test_hierarchical_policy () =
  (match Placement.policy_of_string "hierarchical" with
  | Ok Placement.Hierarchical -> ()
  | _ -> Alcotest.fail "policy_of_string does not accept \"hierarchical\"");
  Alcotest.(check string) "string round-trip" "hierarchical"
    (Placement.policy_to_string Placement.Hierarchical);
  Alcotest.(check bool) "listed in all_policies" true
    (List.mem Placement.Hierarchical Placement.all_policies);
  (* Pod-aware ordering: home pod's switches lead, then other pods by
     mean utilization; first-fit (ascending id) within each pod. *)
  let load switch utilization residents up =
    { Placement.switch; utilization; residents; up }
  in
  let loads =
    [
      load 0 0.9 9 true; load 1 0.8 8 true;  (* pod 0: busy *)
      load 2 0.1 1 true; load 3 0.2 2 true;  (* pod 1: idle *)
    ]
  in
  let pods = ((fun sw -> sw / 2), 2) in
  Alcotest.(check (list int)) "home pod first, then idler pod" [ 0; 1; 2; 3 ]
    (Placement.order ~pods Placement.Hierarchical ~home:(Some 1) loads);
  Alcotest.(check (list int)) "no home: pods ranked by mean load" [ 2; 3; 0; 1 ]
    (Placement.order ~pods Placement.Hierarchical ~home:None loads);
  Alcotest.(check (list int)) "flat fleet degrades to first-fit" [ 0; 1; 2; 3 ]
    (Placement.order Placement.Hierarchical ~home:None loads)

let prop_hierarchical_skips_down =
  QCheck.Test.make ~count:200
    ~name:"hierarchical never ranks a down switch, never drops an up one"
    QCheck.(triple (int_range 2 16) (int_range 2 5) small_int)
    (fun (n, pod_size, seed) ->
      let prng = Stdx.Prng.create ~seed in
      let loads =
        List.init n (fun i ->
            {
              Placement.switch = i;
              utilization = Stdx.Prng.float prng 1.0;
              residents = Stdx.Prng.int prng 20;
              up = Stdx.Prng.int prng 3 > 0;
            })
      in
      let n_pods = ((n - 1) / pod_size) + 1 in
      let pods = ((fun sw -> sw / pod_size), n_pods) in
      let home = if Stdx.Prng.int prng 2 = 0 then None else Some (Stdx.Prng.int prng n) in
      let ranked = Placement.order ~pods Placement.Hierarchical ~home loads in
      let up_ids =
        List.filter_map (fun l -> if l.Placement.up then Some l.Placement.switch else None) loads
      in
      (* The ranking is exactly a permutation of the up switches: no down
         switch placed on, no live switch silently dropped. *)
      List.sort_uniq compare ranked = List.sort compare up_ids
      && List.length ranked = List.length up_ids)

(* ---------- fleet admission ---------- *)

let mixed_kinds ~n ~seed =
  List.concat_map
    (fun (e : Churn.epoch) ->
      List.filter_map
        (function
          | Churn.Arrive { fid; kind; _ } -> Some (fid, kind)
          | Churn.Depart _ -> None)
        e.Churn.events)
    (Churn.mixed_arrivals ~n (Stdx.Prng.create ~seed))

let test_placement_deterministic () =
  let run () =
    let tel = Telemetry.create () in
    let topo = Topology.full_mesh ~switches:4 ~latency_s:1e-5 in
    let fleet =
      Fleet.create ~policy:Placement.Least_loaded ~params:small_params
        ~telemetry:tel topo
    in
    List.iter
      (fun (fid, kind) ->
        ignore (Fleet.admit fleet ~fid (Harness.app_of_kind kind)))
      (mixed_kinds ~n:30 ~seed:42);
    Fleet.residents fleet
  in
  Alcotest.(check (list (pair int int)))
    "same seed, same residency" (run ()) (run ())

let test_spillover () =
  let tel = Telemetry.create () in
  let topo = Topology.full_mesh ~switches:2 ~latency_s:1e-5 in
  let fleet =
    Fleet.create ~policy:Placement.First_fit_switch ~params:small_params
      ~telemetry:tel topo
  in
  (* First-fit packs switch 0 until its allocator refuses, then the
     fleet must spill the next arrivals onto switch 1. *)
  let rec fill fid =
    if fid > 40 then Alcotest.fail "fleet never filled"
    else
      match Fleet.admit fleet ~fid hh with
      | Ok _ -> fill (fid + 1)
      | Error `No_capacity -> ()
  in
  fill 1;
  Alcotest.(check bool) "switch 1 hosts spill-over" true
    (Fleet.residents_of fleet ~sw:1 <> []);
  Alcotest.(check bool) "spillover counted" true
    (Telemetry.counter_value tel "fleet.spillover" > 0);
  Alcotest.(check bool) "fleet-wide rejection counted" true
    (Telemetry.counter_value tel "fleet.rejected" > 0)

let test_global_admission_queue () =
  let module Tenant = Activermt_tenant.Tenant in
  let tel = Telemetry.create () in
  let topo = Topology.full_mesh ~switches:2 ~latency_s:1e-5 in
  let registry = Tenant.create () in
  (* One heavy-hitter (96 blocks) fits tenant 1's 100-block global
     ration; a second can never. *)
  ignore (Tenant.register registry ~quota:(Tenant.quota_blocks 100) 1);
  ignore (Tenant.register registry 2);
  let fleet =
    Fleet.create ~policy:Placement.First_fit_switch ~params:small_params
      ~tenants:registry ~telemetry:tel topo
  in
  Fleet.enqueue_admission fleet ~tenant:1 ~fid:1 hh;
  Fleet.enqueue_admission fleet ~tenant:1 ~fid:2 hh;
  for fid = 3 to 14 do
    Fleet.enqueue_admission fleet ~tenant:2 ~fid hh
  done;
  (* The registry-less path still works alongside tenant submissions. *)
  Fleet.enqueue_admission fleet ~fid:15 counter;
  Alcotest.(check int) "queued" 15 (Fleet.admission_queue_depth fleet);
  let results = Fleet.drain_admissions fleet in
  Alcotest.(check int) "queue drained" 0 (Fleet.admission_queue_depth fleet);
  Alcotest.(check (list int)) "one outcome per fid, ascending"
    (List.init 15 (fun i -> i + 1))
    (List.map fst results);
  (match List.assoc 1 results with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "tenant 1's first service fits its quota");
  (match List.assoc 2 results with
  | Error `Over_quota -> ()
  | _ -> Alcotest.fail "tenant 1's second service is over quota");
  (match List.assoc 15 results with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "untenanted counter fits");
  (* 12 heavy hitters overflow one switch: placement must spill across
     both, and the registry's fleet-global charge tracks what landed. *)
  Alcotest.(check bool) "both switches host residents" true
    (Fleet.residents_of fleet ~sw:0 <> [] && Fleet.residents_of fleet ~sw:1 <> []);
  let ok_t2 =
    List.length
      (List.filter
         (fun (fid, r) -> fid >= 3 && fid <= 14 && Result.is_ok r)
         results)
  in
  Alcotest.(check bool) "tenant 2 placed services" true (ok_t2 > 0);
  Alcotest.(check int) "tenant 2 charged per placement" (96 * ok_t2)
    (Tenant.usage registry 2).Tenant.blocks;
  Alcotest.(check int) "tenant 1 charged once" 96
    (Tenant.usage registry 1).Tenant.blocks;
  Alcotest.(check int) "enqueues counted" 15
    (Telemetry.counter_value tel "fleet.adm.enqueued")

let test_fleet_beats_single_switch () =
  let admitted ~switches =
    let tel = Telemetry.create () in
    let topo = Topology.full_mesh ~switches ~latency_s:1e-5 in
    let fleet =
      Fleet.create ~policy:Placement.Least_loaded ~params:small_params
        ~telemetry:tel topo
    in
    List.fold_left
      (fun n (fid, kind) ->
        match Fleet.admit fleet ~fid (Harness.app_of_kind kind) with
        | Ok _ -> n + 1
        | Error `No_capacity -> n)
      0
      (mixed_kinds ~n:60 ~seed:7)
  in
  let one = admitted ~switches:1 and four = admitted ~switches:4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 switches (%d) admit more than 1 (%d)" four one)
    true (four > one)

(* Hierarchical placement on a fat-tree: services land in the client's
   home pod while it has room, and never on a failed switch — even when
   the stream is pushed through the batched admission queue. *)
let test_hierarchical_fleet_placement () =
  let tel = Telemetry.create () in
  let topo = Topology.fat_tree ~pods:3 ~k:4 () in
  let fleet =
    Fleet.create ~policy:Placement.Hierarchical ~params:small_params
      ~telemetry:tel topo
  in
  (* A client homed on switch 5 (pod 1) pulls its service into pod 1.
     fid 8's no-home fallback pod would be 8 mod 4 = 0, so a pod-1
     placement can only come from the client's home. *)
  Fleet.attach_client fleet ~client:900 ~home:5 (fun _ -> ());
  (match Fleet.admit fleet ~client:900 ~fid:8 counter with
  | Ok sw ->
    Alcotest.(check int) "home-pod placement" 1 (Topology.pod_of topo ~sw)
  | Error `No_capacity -> Alcotest.fail "first admission refused");
  ignore (Fleet.fail_switch fleet ~sw:0);
  for fid = 10 to 48 do
    Fleet.enqueue_admission fleet ~fid (if fid mod 3 = 0 then hh else counter)
  done;
  ignore (Fleet.drain_admissions fleet);
  List.iter
    (fun (fid, sw) ->
      Alcotest.(check bool)
        (Printf.sprintf "fid %d avoids the failed switch" fid)
        true (sw <> 0);
      Alcotest.(check bool)
        (Printf.sprintf "fid %d sits on a live switch" fid)
        true
        (Fleet.is_up fleet ~sw))
    (Fleet.residents fleet)

let test_hierarchical_spills_across_pods () =
  let tel = Telemetry.create () in
  let topo = Topology.fat_tree ~pods:2 ~k:4 () in
  let fleet =
    Fleet.create ~policy:Placement.Hierarchical ~params:small_params
      ~telemetry:tel topo
  in
  (* Heavy hitters overflow pod 0's four switches; the spill must reach
     pod 1 rather than reject, and nothing may double-place. *)
  let admitted = ref [] in
  for fid = 1 to 24 do
    match Fleet.admit fleet ~fid hh with
    | Ok sw -> admitted := (fid, sw) :: !admitted
    | Error `No_capacity -> ()
  done;
  let pods_used =
    List.sort_uniq compare
      (List.map (fun (_, sw) -> Topology.pod_of topo ~sw) !admitted)
  in
  Alcotest.(check bool) "spill crossed into a second pod" true
    (List.length pods_used > 1);
  Alcotest.(check int) "every admitted fid resident exactly once"
    (List.length !admitted)
    (List.length (Fleet.residents fleet))

(* ---------- migration ---------- *)

let patterned state =
  List.mapi
    (fun k (stage, words) ->
      (stage, Array.mapi (fun i _ -> 10_000 + (1000 * k) + i) words))
    state

let words_of state = List.map snd state

let test_migration_preserves_state () =
  let tel = Telemetry.create () in
  let topo = Topology.full_mesh ~switches:2 ~latency_s:1e-5 in
  let fleet =
    Fleet.create ~policy:Placement.First_fit_switch ~telemetry:tel topo
  in
  let fid = 7 in
  (match Fleet.admit fleet ~fid counter with
  | Ok 0 -> ()
  | Ok sw -> Alcotest.failf "expected switch 0, got %d" sw
  | Error `No_capacity -> Alcotest.fail "admission refused");
  let pattern = patterned (Fleet.read_state fleet ~fid) in
  Fleet.write_state fleet ~fid pattern;
  Alcotest.(check (list (array int))) "write then read round-trips"
    (words_of pattern)
    (words_of (Fleet.read_state fleet ~fid));
  (match Fleet.migrate fleet ~fid ~dst:1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "migration failed");
  Alcotest.(check (option int)) "resident on destination" (Some 1)
    (Fleet.switch_of fleet ~fid);
  Alcotest.(check (list (array int))) "state equal across switches"
    (words_of pattern)
    (words_of (Fleet.read_state fleet ~fid));
  Alcotest.(check bool) "drain used data-plane memsync" true
    (Telemetry.counter_value tel "fleet.memsync.words_read" > 0);
  Alcotest.(check bool) "repopulate used data-plane memsync" true
    (Telemetry.counter_value tel "fleet.memsync.words_written" > 0)

let test_migrate_unknown_and_down () =
  let tel = Telemetry.create () in
  let topo = Topology.full_mesh ~switches:2 ~latency_s:1e-5 in
  let fleet = Fleet.create ~telemetry:tel topo in
  (match Fleet.migrate fleet ~fid:99 ~dst:1 with
  | Error `Unknown_fid -> ()
  | _ -> Alcotest.fail "expected Unknown_fid");
  (match Fleet.admit fleet ~fid:1 counter with
  | Ok _ -> ()
  | Error `No_capacity -> Alcotest.fail "admission refused");
  ignore (Fleet.fail_switch fleet ~sw:1);
  match Fleet.migrate fleet ~fid:1 ~dst:1 with
  | Error `Switch_down -> ()
  | _ -> Alcotest.fail "expected Switch_down"

(* A client homed on switch 1 reads a service resident on switch 0
   through the data plane: the request bridges 1 -> 0, executes where
   the FID's tables live, and the RTS reply bridges back. *)
let test_cross_switch_data_plane () =
  let module Packet = Activermt.Packet in
  let module Driver = Activermt_client.Memsync_driver in
  let tel = Telemetry.create () in
  let topo = Topology.line ~switches:2 ~latency_s:1e-5 in
  let fleet =
    Fleet.create ~policy:Placement.First_fit_switch ~telemetry:tel topo
  in
  let fid = 5 and client = 10 in
  (match Fleet.admit fleet ~client ~fid counter with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "expected admission on switch 0");
  let pattern = patterned (Fleet.read_state fleet ~fid) in
  Fleet.write_state fleet ~fid pattern;
  let stage, words =
    match pattern with s :: _ -> s | [] -> Alcotest.fail "no regions"
  in
  let count = 4 in
  let driver =
    Driver.create ~fid ~stages:[ stage ] ~count ~timeout_s:1.0 Driver.Read
  in
  Fleet.attach_client fleet ~client ~home:1 (fun msg ->
      match msg.Netsim.Fabric.payload with
      | Netsim.Fabric.Active
          { Packet.seq; payload = Packet.Exec { args; _ }; _ } ->
        ignore (Driver.on_reply driver ~seq ~args)
      | _ -> ());
  let send ~seq:_ pkt =
    Fleet.inject fleet ~client
      { Netsim.Fabric.src = client; dst = 0; payload = Netsim.Fabric.Active pkt; trace = None }
  in
  Driver.start driver ~now:0.0 ~send;
  Netsim.Engine.run (Fleet.engine fleet);
  Alcotest.(check bool) "every read answered" true (Driver.is_done driver);
  Alcotest.(check (array int)) "remote reads see the written state"
    (Array.sub words 0 count)
    (Array.sub (Driver.values driver).(0) 0 count);
  Alcotest.(check bool) "traffic crossed the inter-switch link" true
    (Telemetry.counter_value tel "fleet.bridged" > 0)

(* ---------- switch failure ---------- *)

let test_failure_replaces_all () =
  let tel = Telemetry.create () in
  let topo = Topology.full_mesh ~switches:3 ~latency_s:1e-5 in
  let fleet =
    Fleet.create ~policy:Placement.Least_loaded ~params:small_params
      ~telemetry:tel topo
  in
  let fids = [ 1; 2; 3; 4 ] in
  List.iter
    (fun fid ->
      match Fleet.admit fleet ~fid hh with
      | Ok _ -> ()
      | Error `No_capacity -> Alcotest.failf "fid %d refused" fid)
    fids;
  let before = Fleet.residents fleet in
  let victim =
    match Fleet.residents fleet with
    | (_, sw) :: _ -> sw
    | [] -> Alcotest.fail "nothing resident"
  in
  let evacuees = Fleet.residents_of fleet ~sw:victim in
  let marked = List.hd evacuees in
  let pattern = patterned (Fleet.read_state fleet ~fid:marked) in
  Fleet.write_state fleet ~fid:marked pattern;
  let { Fleet.relocated; lost } = Fleet.fail_switch fleet ~sw:victim in
  Alcotest.(check (list int)) "zero lost FIDs" [] lost;
  Alcotest.(check (list int)) "every evacuee relocated" evacuees
    (List.sort compare (List.map fst relocated));
  Alcotest.(check (list int)) "no FID lost or double-placed fleet-wide"
    (List.map fst before)
    (List.map fst (Fleet.residents fleet));
  List.iter
    (fun (fid, dst) ->
      Alcotest.(check bool)
        (Printf.sprintf "fid %d left the failed switch" fid)
        true (dst <> victim);
      Alcotest.(check (option int))
        (Printf.sprintf "fid %d residency updated" fid)
        (Some dst) (Fleet.switch_of fleet ~fid))
    relocated;
  Alcotest.(check (list (array int))) "state survived the failure"
    (words_of pattern)
    (words_of (Fleet.read_state fleet ~fid:marked));
  Alcotest.(check bool) "failed switch reports down" false
    (Fleet.is_up fleet ~sw:victim);
  let again = Fleet.fail_switch fleet ~sw:victim in
  Alcotest.(check (list int)) "re-failing relocates nothing" []
    (List.map fst again.Fleet.relocated)

let test_scheduled_failure_fires () =
  let tel = Telemetry.create () in
  let topo = Topology.full_mesh ~switches:2 ~latency_s:1e-5 in
  let fleet =
    Fleet.create ~policy:Placement.First_fit_switch ~params:small_params
      ~telemetry:tel topo
  in
  (match Fleet.admit fleet ~fid:1 hh with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "expected admission on switch 0");
  Fleet.schedule_failure fleet ~at:0.5 ~sw:0;
  Netsim.Engine.run (Fleet.engine fleet);
  Alcotest.(check bool) "failure event fired" false (Fleet.is_up fleet ~sw:0);
  Alcotest.(check (option int)) "service re-placed by the event" (Some 1)
    (Fleet.switch_of fleet ~fid:1)

let () =
  Alcotest.run "fleet"
    [
      ( "topology",
        [
          Alcotest.test_case "routes" `Quick test_topology_routes;
          Alcotest.test_case "validation" `Quick test_topology_validation;
        ] );
      ( "placement",
        [
          QCheck_alcotest.to_alcotest prop_order_permutation_invariant;
          QCheck_alcotest.to_alcotest prop_hierarchical_skips_down;
          Alcotest.test_case "policy orderings" `Quick test_order_policies;
          Alcotest.test_case "hierarchical policy" `Quick
            test_hierarchical_policy;
        ] );
      ( "admission",
        [
          Alcotest.test_case "deterministic given seed" `Quick
            test_placement_deterministic;
          Alcotest.test_case "spill-over" `Quick test_spillover;
          Alcotest.test_case "global admission queue" `Quick
            test_global_admission_queue;
          Alcotest.test_case "4 switches beat 1" `Quick
            test_fleet_beats_single_switch;
          Alcotest.test_case "hierarchical fat-tree placement" `Quick
            test_hierarchical_fleet_placement;
          Alcotest.test_case "hierarchical pod spill" `Quick
            test_hierarchical_spills_across_pods;
        ] );
      ( "migration",
        [
          Alcotest.test_case "state equality" `Quick
            test_migration_preserves_state;
          Alcotest.test_case "unknown fid / down switch" `Quick
            test_migrate_unknown_and_down;
        ] );
      ( "data plane",
        [
          Alcotest.test_case "cross-switch read" `Quick
            test_cross_switch_data_plane;
        ] );
      ( "failure",
        [
          Alcotest.test_case "re-places all residents" `Quick
            test_failure_replaces_all;
          Alcotest.test_case "scheduled event" `Quick
            test_scheduled_failure_fires;
        ] );
    ]
