(* Tests for the tenant layer: registry accounting, DRR scheduling, the
   virtual switch's quota/entitlement/preemption mechanics, and the
   noisy-neighbor scenario's fairness gates. *)

module Tenant = Activermt_tenant.Tenant
module Wrr = Activermt_tenant.Wrr
module Vswitch = Activermt_tenant.Vswitch
module Controller = Activermt_control.Controller
module Allocator = Activermt_alloc.Allocator
module Pool = Activermt_alloc.Pool
module App = Activermt_apps.App
module Telemetry = Activermt_telemetry.Telemetry
module Negotiate = Activermt_client.Negotiate
module Tenants = Experiments.Tenants

(* 16-word blocks: evictions drain a few dozen memsync words. *)
let params = Tenants.scenario_params
let counter = Activermt_apps.Counter.service (* inelastic, 4 blocks *)
let hh = Activermt_apps.Heavy_hitter.service (* inelastic, 16x6 blocks *)
let lb = Activermt_apps.Cheetah_lb.service (* inelastic, 1x4 blocks *)

let mk_controller () =
  Controller.create ~telemetry:(Telemetry.create ()) (Rmt.Device.create params)

let mk_vswitch ?config ?telemetry tenants =
  let telemetry =
    match telemetry with Some t -> t | None -> Telemetry.create ()
  in
  let ctrl = mk_controller () in
  let registry = Tenant.create ~telemetry () in
  List.iter
    (fun (id, weight, quota) ->
      ignore (Tenant.register registry ~weight ~quota id))
    tenants;
  (Vswitch.create ?config ~telemetry ~registry ctrl, registry, ctrl)

(* ---------- registry ---------- *)

let test_registry_register () =
  let r = Tenant.create () in
  let i = Tenant.register r ~name:"alpha" ~weight:3 1 in
  Alcotest.(check string) "name" "alpha" i.Tenant.name;
  Alcotest.(check int) "weight" 3 i.Tenant.weight;
  Alcotest.(check bool) "registered" true (Tenant.is_registered r 1);
  Alcotest.(check int) "total weight" 3 (Tenant.total_weight r);
  Alcotest.(check bool) "duplicate id raises" true
    (try
       ignore (Tenant.register r 1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad weight raises" true
    (try
       ignore (Tenant.register r ~weight:0 2);
       false
     with Invalid_argument _ -> true)

let test_registry_bind_charge () =
  let r = Tenant.create () in
  ignore (Tenant.register r 1);
  ignore (Tenant.register r 2);
  Tenant.bind r ~fid:10 ~tenant:1;
  Tenant.bind r ~fid:10 ~tenant:1;
  (* same-tenant rebind is a no-op *)
  Alcotest.(check bool) "cross rebind raises" true
    (try
       Tenant.bind r ~fid:10 ~tenant:2;
       false
     with Invalid_argument _ -> true);
  Tenant.charge r ~fid:10 ~blocks:6 ~stages:[ 0; 3 ];
  Tenant.bind r ~fid:11 ~tenant:1;
  Tenant.charge r ~fid:11 ~blocks:4 ~stages:[ 3 ];
  let u = Tenant.usage r 1 in
  Alcotest.(check int) "blocks" 10 u.Tenant.blocks;
  Alcotest.(check int) "fids" 2 u.Tenant.fids;
  Alcotest.(check int) "stages distinct" 2 u.Tenant.stages;
  Alcotest.(check (list int)) "charged oldest first" [ 10; 11 ]
    (Tenant.charged_fids r ~tenant:1);
  (* Re-charging (elastic resize, re-admission) keeps the original
     admission stamp, so recency-based victim scans stay stable. *)
  Tenant.charge r ~fid:10 ~blocks:8 ~stages:[ 0; 3 ];
  Alcotest.(check (list int)) "recharge keeps order" [ 10; 11 ]
    (Tenant.charged_fids r ~tenant:1);
  Alcotest.(check int) "recharge replaces" 12 (Tenant.usage r 1).Tenant.blocks;
  Tenant.discharge r ~fid:10;
  Alcotest.(check int) "discharge" 4 (Tenant.usage r 1).Tenant.blocks;
  Alcotest.(check (option int)) "binding survives discharge" (Some 1)
    (Tenant.tenant_of r ~fid:10);
  Tenant.unbind r ~fid:11;
  Alcotest.(check int) "unbind discharges" 0 (Tenant.usage r 1).Tenant.blocks

let test_registry_quota_math () =
  let r = Tenant.create () in
  ignore (Tenant.register r ~weight:1 ~quota:(Tenant.quota_blocks 10) 1);
  ignore (Tenant.register r ~weight:3 2);
  Tenant.bind r ~fid:1 ~tenant:1;
  Tenant.charge r ~fid:1 ~blocks:8 ~stages:[ 0 ];
  Alcotest.(check bool) "within quota" false
    (Tenant.would_exceed r ~tenant:1 ~blocks:2 ~stages:1);
  Alcotest.(check bool) "over quota" true
    (Tenant.would_exceed r ~tenant:1 ~blocks:3 ~stages:1);
  Alcotest.(check int) "no surplus" 0 (Tenant.over_quota_blocks r ~tenant:1);
  Tenant.set_quota r ~tenant:1 (Tenant.quota_blocks 5);
  Alcotest.(check int) "shrink surplus" 3 (Tenant.over_quota_blocks r ~tenant:1);
  Alcotest.(check (float 1e-9)) "fair weight 1/4" 25.0
    (Tenant.fair_blocks r ~tenant:1 ~capacity:100);
  Alcotest.(check (float 1e-9)) "fair weight 3/4" 75.0
    (Tenant.fair_blocks r ~tenant:2 ~capacity:100)

(* ---------- WRR scheduler ---------- *)

let take_all q ~weight ~max =
  Wrr.take q ~weight ~classify:(fun ~tenant:_ _ -> `Take) ~max

let test_wrr_weighted_ratio () =
  let q = Wrr.create () in
  for i = 1 to 10 do
    Wrr.push q ~tenant:1 (100 + i);
    Wrr.push q ~tenant:2 (200 + i)
  done;
  let b = take_all q ~weight:(fun id -> if id = 2 then 3 else 1) ~max:8 in
  let count t = List.length (List.filter (fun (id, _) -> id = t) b.Wrr.taken) in
  Alcotest.(check int) "light tenant" 2 (count 1);
  Alcotest.(check int) "heavy tenant" 6 (count 2);
  Alcotest.(check int) "queue keeps rest" 12 (Wrr.depth q)

let test_wrr_defer_blocks_tenant () =
  let q = Wrr.create () in
  Wrr.push q ~tenant:1 1;
  Wrr.push q ~tenant:1 2;
  Wrr.push q ~tenant:2 3;
  let b =
    Wrr.take q
      ~weight:(fun _ -> 4)
      ~classify:(fun ~tenant _ -> if tenant = 1 then `Defer else `Take)
      ~max:4
  in
  Alcotest.(check (list (pair int int))) "only tenant 2" [ (2, 3) ] b.Wrr.taken;
  Alcotest.(check int) "deferred stay queued" 2 (Wrr.tenant_depth q ~tenant:1);
  (* The deferred item kept its head position. *)
  let b2 = take_all q ~weight:(fun _ -> 4) ~max:4 in
  Alcotest.(check (list (pair int int))) "head order kept" [ (1, 1); (1, 2) ]
    b2.Wrr.taken

let test_wrr_drop_and_rotation () =
  let q = Wrr.create () in
  Wrr.push q ~tenant:1 1;
  Wrr.push q ~tenant:2 2;
  Wrr.push q ~tenant:3 3;
  (* Drops consume no credit and are reported. *)
  let b =
    Wrr.take q
      ~weight:(fun _ -> 1)
      ~classify:(fun ~tenant:_ x -> if x = 2 then `Drop else `Take)
      ~max:10
  in
  Alcotest.(check (list (pair int int))) "dropped" [ (2, 2) ] b.Wrr.dropped;
  Alcotest.(check (list (pair int int))) "taken" [ (1, 1); (3, 3) ] b.Wrr.taken;
  (* Rotation: with max=1 per call, successive calls serve successive
     tenants instead of pinning the smallest id first every time. *)
  let q = Wrr.create () in
  for i = 1 to 3 do
    Wrr.push q ~tenant:1 (10 + i);
    Wrr.push q ~tenant:2 (20 + i)
  done;
  let first_of b = List.map fst b.Wrr.taken in
  let l1 = first_of (take_all q ~weight:(fun _ -> 1) ~max:1) in
  let l2 = first_of (take_all q ~weight:(fun _ -> 1) ~max:1) in
  Alcotest.(check (list int)) "call 1 serves tenant 1" [ 1 ] l1;
  Alcotest.(check (list int)) "call 2 serves tenant 2" [ 2 ] l2

(* ---------- vswitch quota enforcement ---------- *)

let test_vswitch_quota_never_fits () =
  (* Demand 4 against a 3-block ceiling can never fit: denied on the
     first epoch, not deferred forever. *)
  let vs, _, _ = mk_vswitch [ (1, 1, Tenant.quota_blocks 3) ] in
  Vswitch.submit vs ~tenant:1 ~fid:1 counter;
  let epochs = Vswitch.drain vs in
  Alcotest.(check int) "one epoch" 1 (List.length epochs);
  Alcotest.(check bool) "denied quota" true
    (Vswitch.decision_of vs ~fid:1 = Some (Vswitch.Denied `Quota))

let test_vswitch_quota_defer_then_grant () =
  let vs, _, _ = mk_vswitch [ (1, 1, Tenant.quota_blocks 4) ] in
  Vswitch.submit vs ~tenant:1 ~fid:1 counter;
  Vswitch.submit vs ~tenant:1 ~fid:2 counter;
  ignore (Vswitch.drain vs);
  Alcotest.(check bool) "first granted" true
    (Vswitch.decision_of vs ~fid:1 = Some Vswitch.Granted);
  Alcotest.(check bool) "second deferred, still queued" true
    (Vswitch.decision_of vs ~fid:2 = Some Vswitch.Queued);
  Alcotest.(check int) "pending" 1 (Vswitch.pending vs);
  (* Departure makes room; the deferred request lands on the next
     drain. *)
  Alcotest.(check bool) "depart" true (Vswitch.depart vs ~fid:1);
  ignore (Vswitch.drain vs);
  Alcotest.(check bool) "second granted after departure" true
    (Vswitch.decision_of vs ~fid:2 = Some Vswitch.Granted)

let test_vswitch_quota_defer_limit_denies () =
  let config =
    { Vswitch.default_config with Vswitch.defer_limit = 2; max_batch = 4 }
  in
  let vs, _, _ = mk_vswitch ~config [ (1, 1, Tenant.quota_blocks 4) ] in
  Vswitch.submit vs ~tenant:1 ~fid:1 counter;
  Vswitch.submit vs ~tenant:1 ~fid:2 counter;
  ignore (Vswitch.drain vs);
  Alcotest.(check bool) "still queued after first drain" true
    (Vswitch.decision_of vs ~fid:2 = Some Vswitch.Queued);
  ignore (Vswitch.drain vs);
  ignore (Vswitch.drain vs);
  Alcotest.(check bool) "denied once defers run out" true
    (Vswitch.decision_of vs ~fid:2 = Some (Vswitch.Denied `Quota))

(* ---------- preemption, relocation and state ---------- *)

let write_pattern ctrl ~fid =
  let regions =
    match Allocator.regions_of (Controller.allocator ctrl) ~fid with
    | Some r -> r
    | None -> Alcotest.fail "no regions"
  in
  let wpb = Rmt.Params.words_per_block params in
  List.iter
    (fun { Allocator.stage; range } ->
      for i = 0 to (range.Pool.n_blocks * wpb) - 1 do
        ignore
          (Controller.write_region_word ctrl ~fid ~stage ~index:i
             ~value:(1000 + i))
      done)
    regions

let read_back ctrl ~fid =
  match Allocator.regions_of (Controller.allocator ctrl) ~fid with
  | Some ({ Allocator.stage; _ } :: _) -> Controller.read_region ctrl ~fid ~stage
  | _ -> None

let test_reclaim_preserves_state () =
  let telemetry = Telemetry.create () in
  let vs, registry, ctrl =
    mk_vswitch ~telemetry [ (1, 1, Tenant.unlimited) ]
  in
  Vswitch.submit vs ~tenant:1 ~fid:7 counter;
  ignore (Vswitch.drain vs);
  Alcotest.(check bool) "granted" true
    (Vswitch.decision_of vs ~fid:7 = Some Vswitch.Granted);
  write_pattern ctrl ~fid:7;
  (* Quota shrink: reclaim must evict, drain the registers through
     memsync, and park the service. *)
  Tenant.set_quota registry ~tenant:1 (Tenant.quota_blocks 0);
  let evicted = Vswitch.reclaim vs in
  Alcotest.(check (list (pair int int))) "evicted" [ (1, 7) ] evicted;
  Alcotest.(check (list int)) "parked" [ 7 ] (Vswitch.parked vs);
  Alcotest.(check bool) "decision evicted" true
    (Vswitch.decision_of vs ~fid:7 = Some Vswitch.Evicted);
  Alcotest.(check int) "not resident" 0
    (List.length (Allocator.resident_blocks (Controller.allocator ctrl)));
  Alcotest.(check int) "charge released" 0
    (Tenant.usage registry 1).Tenant.blocks;
  Alcotest.(check bool) "memsync moved words" true
    (Telemetry.counter_value telemetry "tenant.memsync.words_moved" > 0);
  (* Quota restored: the parked victim re-admits with its state
     repopulated (a relocation). *)
  Tenant.set_quota registry ~tenant:1 Tenant.unlimited;
  ignore (Vswitch.drain vs);
  Alcotest.(check bool) "re-granted" true
    (Vswitch.decision_of vs ~fid:7 = Some Vswitch.Granted);
  Alcotest.(check (list int)) "unparked" [] (Vswitch.parked vs);
  Alcotest.(check int) "relocation counted" 1
    (Telemetry.counter_value telemetry "tenant.relocations");
  match read_back ctrl ~fid:7 with
  | None -> Alcotest.fail "no region after relocation"
  | Some words ->
    Array.iteri
      (fun i v ->
        Alcotest.(check int) (Printf.sprintf "word %d preserved" i) (1000 + i) v)
      words

let test_noisy_neighbor_scenario () =
  (* The ISSUE acceptance gate at a test-sized scale: one hostile tenant
     flooding at several times its fair share cannot hold well-behaved
     tenants below 90% of their weighted entitlement. *)
  let r = Tenants.run { (Tenants.preset ~tenants:4 ()) with Tenants.seed = 3 } in
  Alcotest.(check bool) "preemption fired" true (r.Tenants.evictions > 0);
  Alcotest.(check bool) "jain >= 0.9" true (r.Tenants.jain_wb >= 0.9);
  Alcotest.(check bool) "min retained >= 0.9" true
    (r.Tenants.min_retained_wb >= 0.9);
  Alcotest.(check bool) "fid audit" true r.Tenants.consistent

(* ---------- single-tenant differential smoke ---------- *)

let test_single_tenant_matches_plain_drain () =
  (* With one unlimited tenant every vswitch mechanism must degenerate
     to the identity: final decisions and the resulting allocator layout
     equal the controller's plain batched drain over the same FIFO.
     Inelastic-only mix, so capacity rejections are stable under the
     vswitch's retries. *)
  let arrivals =
    List.init 80 (fun i ->
        (i + 1, match i mod 3 with 0 -> hh | 1 -> counter | _ -> lb))
  in
  (* Reference: plain controller drain. *)
  let ref_ctrl = mk_controller () in
  List.iter
    (fun (fid, app) ->
      Controller.enqueue_request ref_ctrl (Negotiate.request_packet ~fid ~seq:0 app))
    arrivals;
  let ref_results =
    List.concat_map
      (fun (e : Controller.epoch_result) -> e.Controller.results)
      (Controller.drain ~max_batch:64 ref_ctrl)
  in
  let ref_decisions =
    List.map2
      (fun (fid, _) r -> (fid, match r with Ok _ -> true | Error _ -> false))
      arrivals ref_results
  in
  (* Vswitch over one unlimited tenant. *)
  let vs, _, ctrl = mk_vswitch [ (1, 1, Tenant.unlimited) ] in
  List.iter (fun (fid, app) -> Vswitch.submit vs ~tenant:1 ~fid app) arrivals;
  ignore (Vswitch.drain vs);
  List.iter
    (fun (fid, admitted) ->
      let got =
        match Vswitch.decision_of vs ~fid with
        | Some Vswitch.Granted -> true
        | Some (Vswitch.Denied `Capacity) -> false
        | d ->
          Alcotest.failf "fid %d: unexpected decision %s" fid
            (match d with
            | Some Vswitch.Queued -> "queued"
            | Some Vswitch.Evicted -> "evicted"
            | Some (Vswitch.Denied _) -> "denied-other"
            | Some Vswitch.Departed -> "departed"
            | Some Vswitch.Granted -> "granted"
            | None -> "none")
      in
      Alcotest.(check bool) (Printf.sprintf "fid %d decision" fid) admitted got)
    ref_decisions;
  Alcotest.(check (list (pair int int))) "identical layouts"
    (Allocator.resident_blocks (Controller.allocator ref_ctrl))
    (Allocator.resident_blocks (Controller.allocator ctrl))

(* ---------- qcheck: accounting and FID conservation ---------- *)

(* Random interleavings of submit/drain/depart/quota-shrink/reclaim over
   three tenants: charges never go negative, and the allocator's
   residents, the Granted decisions and the parked set always tile the
   submitted FIDs (no FID lost, none double-allocated). *)
let audit_conservation vs registry ctrl ~submitted =
  let resident = Hashtbl.create 64 in
  List.iter
    (fun (fid, _) -> Hashtbl.replace resident fid ())
    (Allocator.resident_blocks (Controller.allocator ctrl));
  let ok = ref true in
  let granted = ref 0 in
  List.iter
    (fun fid ->
      match Vswitch.decision_of vs ~fid with
      | None -> ok := false
      | Some Vswitch.Granted ->
        incr granted;
        if not (Hashtbl.mem resident fid) then ok := false
      | Some _ -> if Hashtbl.mem resident fid then ok := false)
    submitted;
  if !granted <> Hashtbl.length resident then ok := false;
  List.iter
    (fun fid -> if Hashtbl.mem resident fid then ok := false)
    (Vswitch.parked vs);
  List.iter
    (fun (info : Tenant.info) ->
      let u = Tenant.usage registry info.Tenant.id in
      if u.Tenant.blocks < 0 || u.Tenant.fids < 0 || u.Tenant.stages < 0 then
        ok := false)
    (Tenant.tenants registry);
  !ok

let prop_random_interleavings_conserve_fids =
  QCheck.Test.make ~name:"tenant accounting under random admit/evict/depart"
    ~count:60
    QCheck.(list_of_size Gen.(int_range 5 40) (pair (int_range 0 4) (int_range 0 1000)))
    (fun ops ->
      let config =
        { Vswitch.default_config with Vswitch.max_batch = 8; defer_limit = 4 }
      in
      let vs, registry, ctrl =
        mk_vswitch ~config
          [
            (1, 1, Tenant.quota_blocks 24);
            (2, 2, Tenant.quota_blocks 40);
            (3, 1, Tenant.unlimited);
          ]
      in
      let submitted = ref [] in
      let next_fid = ref 0 in
      List.iter
        (fun (tag, k) ->
          (match tag with
          | 0 | 1 ->
            incr next_fid;
            let tenant = (k mod 3) + 1 in
            Vswitch.submit vs ~tenant ~fid:!next_fid counter;
            submitted := !next_fid :: !submitted
          | 2 -> ignore (Vswitch.drain vs)
          | 3 ->
            (match !submitted with
            | [] -> ()
            | fids -> ignore (Vswitch.depart vs ~fid:(List.nth fids (k mod List.length fids))))
          | _ ->
            let tenant = (k mod 3) + 1 in
            Tenant.set_quota registry ~tenant (Tenant.quota_blocks (4 * (k mod 8)));
            ignore (Vswitch.reclaim vs));
          if not (audit_conservation vs registry ctrl ~submitted:!submitted) then
            QCheck.Test.fail_report "conservation audit failed mid-sequence")
        ops;
      ignore (Vswitch.drain vs);
      audit_conservation vs registry ctrl ~submitted:!submitted)

let () =
  Alcotest.run "tenant"
    [
      ( "registry",
        [
          Alcotest.test_case "register" `Quick test_registry_register;
          Alcotest.test_case "bind and charge" `Quick test_registry_bind_charge;
          Alcotest.test_case "quota math" `Quick test_registry_quota_math;
        ] );
      ( "wrr",
        [
          Alcotest.test_case "weighted ratio" `Quick test_wrr_weighted_ratio;
          Alcotest.test_case "defer blocks tenant" `Quick test_wrr_defer_blocks_tenant;
          Alcotest.test_case "drop and rotation" `Quick test_wrr_drop_and_rotation;
        ] );
      ( "vswitch",
        [
          Alcotest.test_case "quota never fits" `Quick test_vswitch_quota_never_fits;
          Alcotest.test_case "quota defer then grant" `Quick
            test_vswitch_quota_defer_then_grant;
          Alcotest.test_case "defer limit denies" `Quick
            test_vswitch_quota_defer_limit_denies;
          Alcotest.test_case "reclaim preserves state" `Quick
            test_reclaim_preserves_state;
          Alcotest.test_case "noisy neighbor scenario" `Quick
            test_noisy_neighbor_scenario;
          Alcotest.test_case "single tenant differential" `Quick
            test_single_tenant_matches_plain_drain;
        ] );
      ("qcheck", [ QCheck_alcotest.to_alcotest prop_random_interleavings_conserve_fids ]);
    ]
