(* Tests for the discrete-event engine and the switch fabric. *)

module Engine = Netsim.Engine
module Fabric = Netsim.Fabric
module Controller = Activermt_control.Controller
module Negotiate = Activermt_client.Negotiate
module Pkt = Activermt.Packet

let params = Rmt.Params.default

(* -- Engine -------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:0.3 (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:0.1 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:0.2 (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let seen = ref 0.0 in
  Engine.schedule e ~delay:2.5 (fun () -> seen := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "clock at event" 2.5 !seen

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:5.0 (fun () -> fired := true);
  Engine.run ~until:1.0 e;
  Alcotest.(check bool) "future event pending" false !fired;
  Alcotest.(check (float 1e-9)) "clock clamped" 1.0 (Engine.now e);
  Alcotest.(check int) "still queued" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check bool) "fires later" true !fired

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "outer" :: !log;
      Engine.schedule e ~delay:1.0 (fun () -> log := "inner" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 2.0 (Engine.now e)

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1.0 (fun () ->
      Engine.schedule e ~delay:(-5.0) (fun () ->
          Alcotest.(check bool) "not in the past" true (Engine.now e >= 1.0)));
  Engine.run e

(* -- Fabric -------------------------------------------------------------- *)

let make_world () =
  let engine = Engine.create () in
  let controller = Controller.create ~mode:`Interactive (Rmt.Device.create params) in
  let fabric = Fabric.create ~engine ~controller () in
  (engine, controller, fabric)

let test_fabric_request_response () =
  let engine, _controller, fabric = make_world () in
  let got = ref None in
  Fabric.attach fabric 10 (fun msg ->
      match msg.Fabric.payload with
      | Fabric.Active pkt -> got := Negotiate.granted_regions pkt
      | _ -> ());
  Fabric.send fabric
    { Fabric.src = 10;
      dst = Fabric.switch_address;
      payload =
        Fabric.Active (Negotiate.request_packet ~fid:1 ~seq:0 Activermt_apps.Cache.service); trace = None };
  Engine.run engine;
  (match !got with
  | Some regions ->
    Alcotest.(check int) "three stages granted" 3
      (Array.fold_left (fun n r -> if r <> None then n + 1 else n) 0 regions)
  | None -> Alcotest.fail "no response delivered");
  Alcotest.(check bool) "provisioning takes time" true (Engine.now engine > 0.02)

let test_fabric_exec_and_rts () =
  let engine, _controller, fabric = make_world () in
  let regions = ref None in
  Fabric.attach fabric 10 (fun msg ->
      match msg.Fabric.payload with
      | Fabric.Active pkt -> (
        match Negotiate.granted_regions pkt with
        | Some r -> regions := Some r
        | None -> ())
      | _ -> ());
  Fabric.attach fabric 20 (fun _ -> ());
  Fabric.send fabric
    { Fabric.src = 10;
      dst = Fabric.switch_address;
      payload =
        Fabric.Active (Negotiate.request_packet ~fid:1 ~seq:0 Activermt_apps.Cache.service); trace = None };
  Engine.run engine;
  let cc =
    match
      Activermt_client.Cache_client.create params
        ~policy:Activermt_compiler.Mutant.Most_constrained ~fid:1
        ~regions:(Option.get !regions)
    with
    | Ok cc -> cc
    | Error e -> Alcotest.fail e
  in
  let key = Workload.Kv.key_of_rank 3 in
  (* Populate through the fabric: RTS ack comes back to the client. *)
  let acked = ref false in
  Fabric.attach fabric 10 (fun msg ->
      match msg.Fabric.payload with
      | Fabric.Active { Pkt.payload = Pkt.Exec _; _ } -> acked := true
      | _ -> ());
  Fabric.send fabric
    { Fabric.src = 10;
      dst = 20;
      payload = Fabric.Active (Activermt_client.Cache_client.populate_packet cc ~seq:1 key ~value:5); trace = None };
  Engine.run engine;
  Alcotest.(check bool) "populate acked via RTS" true !acked;
  (* Query through the fabric: hit returns to client, not the server. *)
  let hit = ref false and at_server = ref false in
  Fabric.attach fabric 10 (fun msg ->
      match msg.Fabric.payload with
      | Fabric.Active { Pkt.payload = Pkt.Exec _; _ } -> hit := true
      | _ -> ());
  Fabric.attach fabric 20 (fun _ -> at_server := true);
  Fabric.send fabric
    { Fabric.src = 10;
      dst = 20;
      payload = Fabric.Active (Activermt_client.Cache_client.query_packet cc ~seq:2 key); trace = None };
  Engine.run engine;
  Alcotest.(check bool) "hit returned" true !hit;
  Alcotest.(check bool) "server bypassed" false !at_server

let test_fabric_uninstalled_fid_forwards () =
  let engine, _controller, fabric = make_world () in
  let at_server = ref false in
  Fabric.attach fabric 20 (fun _ -> at_server := true);
  let pkt =
    Pkt.exec ~fid:77 ~seq:0 ~args:[||] Activermt_apps.Cache.query_program
  in
  Fabric.send fabric { Fabric.src = 10; dst = 20; payload = Fabric.Active pkt; trace = None };
  Engine.run engine;
  Alcotest.(check bool) "plain forwarding" true !at_server

let test_fabric_transit_payloads () =
  let engine, _controller, fabric = make_world () in
  let got = ref 0 in
  Fabric.attach fabric 30 (fun _ -> incr got);
  Fabric.send fabric
    { Fabric.src = 10;
      dst = 30;
      payload = Fabric.Kv_request { key = Workload.Kv.key_of_rank 1 }; trace = None };
  Fabric.send fabric
    { Fabric.src = 10;
      dst = 30;
      payload = Fabric.Kv_reply { key = Workload.Kv.key_of_rank 1; value = 2 }; trace = None };
  Engine.run engine;
  Alcotest.(check int) "both delivered" 2 !got

let test_fabric_drop_accounting () =
  let engine, _controller, fabric = make_world () in
  Fabric.attach fabric 10 (fun _ -> ());
  Fabric.attach fabric 20 (fun _ -> Alcotest.fail "dropped packet delivered");
  (* Admit a cache, then send it a program that DROPs. *)
  Fabric.send fabric
    { Fabric.src = 10;
      dst = Fabric.switch_address;
      payload =
        Fabric.Active (Negotiate.request_packet ~fid:1 ~seq:0 Activermt_apps.Cache.service); trace = None };
  Engine.run engine;
  let dropper =
    Activermt.Program.v
      (Activermt.Program.plain [ Activermt.Instr.Drop; Activermt.Instr.Return ])
  in
  Fabric.send fabric
    { Fabric.src = 10;
      dst = 20;
      payload = Fabric.Active (Pkt.exec ~fid:1 ~seq:0 ~args:[||] dropper); trace = None };
  Engine.run engine;
  Alcotest.(check int) "one drop counted" 1 (Fabric.stats_drops fabric)

let test_fabric_release () =
  let engine, controller, fabric = make_world () in
  Fabric.attach fabric 10 (fun _ -> ());
  Fabric.send fabric
    { Fabric.src = 10;
      dst = Fabric.switch_address;
      payload =
        Fabric.Active (Negotiate.request_packet ~fid:1 ~seq:0 Activermt_apps.Cache.service); trace = None };
  Engine.run engine;
  Alcotest.(check bool) "installed" true
    (Activermt.Table.installed (Controller.tables controller) ~fid:1);
  Fabric.send fabric
    { Fabric.src = 10;
      dst = Fabric.switch_address;
      payload = Fabric.Active (Negotiate.release_packet ~fid:1); trace = None };
  Engine.run engine;
  Alcotest.(check bool) "released" false
    (Activermt.Table.installed (Controller.tables controller) ~fid:1)

module Memsync_driver = Activermt_client.Memsync_driver

let test_memsync_driver_over_lossy_fabric () =
  (* 30% data-plane loss: the retransmission loop still completes a
     200-index write and a subsequent read returns every value. *)
  let engine = Engine.create () in
  let controller = Controller.create (Rmt.Device.create params) in
  let fabric =
    Fabric.create ~loss_rate:0.3 ~loss_seed:77 ~engine ~controller ()
  in
  Fabric.attach fabric 10 (fun _ -> ());
  Fabric.send fabric
    { Fabric.src = 10;
      dst = Fabric.switch_address;
      payload =
        Fabric.Active (Negotiate.request_packet ~fid:1 ~seq:0 Activermt_apps.Cache.service); trace = None };
  Engine.run engine;
  let stages =
    Option.get (Activermt_control.Controller.regions_packet controller ~fid:1)
    |> Negotiate.granted_regions |> Option.get
    |> fun regions ->
    Array.to_list
      (Array.of_list
         (List.filteri (fun _ _ -> true)
            (List.concat
               (List.mapi
                  (fun s r -> match r with Some _ -> [ s ] | None -> [])
                  (Array.to_list regions)))))
  in
  let count = 200 in
  let run_driver driver =
    let send ~seq:_ pkt =
      Fabric.send fabric { Fabric.src = 10; dst = 20; payload = Fabric.Active pkt; trace = None }
    in
    Fabric.attach fabric 10 (fun msg ->
        match msg.Fabric.payload with
        | Fabric.Active { Pkt.payload = Pkt.Exec { args; _ }; seq; _ } ->
          ignore (Memsync_driver.on_reply driver ~seq ~args)
        | _ -> ());
    Memsync_driver.start driver ~now:(Engine.now engine) ~send;
    Engine.run engine;
    let rounds = ref 0 in
    while (not (Memsync_driver.is_done driver)) && !rounds < 50 do
      incr rounds;
      (* advance past the timeout, then retransmit *)
      Engine.schedule engine ~delay:0.01 (fun () -> ());
      Engine.run engine;
      ignore (Memsync_driver.tick driver ~now:(Engine.now engine) ~send);
      Engine.run engine
    done;
    Alcotest.(check bool) "completed under loss" true (Memsync_driver.is_done driver)
  in
  let writer =
    Memsync_driver.create ~fid:1 ~stages ~count ~timeout_s:0.005
      (Memsync_driver.Write (fun index -> List.map (fun s -> (100 * s) + index) stages))
  in
  run_driver writer;
  Alcotest.(check bool) "writes were retransmitted" true
    (Memsync_driver.attempts writer > count);
  let reader =
    Memsync_driver.create ~fid:1 ~stages ~count ~timeout_s:0.005 Memsync_driver.Read
  in
  run_driver reader;
  let values = Memsync_driver.values reader in
  List.iteri
    (fun k s ->
      for index = 0 to count - 1 do
        Alcotest.(check int)
          (Printf.sprintf "stage %d index %d" s index)
          ((100 * s) + index)
          values.(k).(index)
      done)
    stages;
  Alcotest.(check bool) "loss actually occurred" true (Fabric.stats_lost fabric > 0)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "same-time FIFO" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "clock" `Quick test_engine_clock_advances;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_clamped;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "request/response" `Quick test_fabric_request_response;
          Alcotest.test_case "exec + RTS" `Quick test_fabric_exec_and_rts;
          Alcotest.test_case "uninstalled fid" `Quick test_fabric_uninstalled_fid_forwards;
          Alcotest.test_case "transit payloads" `Quick test_fabric_transit_payloads;
          Alcotest.test_case "drop accounting" `Quick test_fabric_drop_accounting;
          Alcotest.test_case "memsync over loss" `Quick test_memsync_driver_over_lossy_fabric;
          Alcotest.test_case "release" `Quick test_fabric_release;
        ] );
    ]
