#!/usr/bin/env python3
"""Batch-decision-identity check for the churn CI step.

Compares two allocsim runs of the same seeded workload — one replayed
sequentially (--batch 1), one through the batched epoch admission
pipeline (--batch 64) — and fails unless they admit exactly the same
clients:

  * the set of admitted FIDs must be identical;
  * the set of rejected FIDs (and hence the rejection count) must be
    identical;
  * every FID must appear exactly once per run.

Placements (stage lists), reallocation counts and compute times are
allowed to differ: the batched pipeline scores against an epoch-shared
snapshot and coalesces elastic refills, so it may pick a different
mutant for the same admitted program.  Who gets in is the contract;
where they land is the allocator's business.

Vacuity guards, in the spirit of jit_smoke_compare.py:

  * both runs must admit at least one arrival AND reject at least one —
    a workload that never fills the switch (or never fits) can't
    distinguish the two paths;
  * the batched run must actually have batched: its "batch stats" footer
    must report at least one epoch and a batch width > 1;
  * the sequential run must NOT have a batch footer.

Usage: batch_smoke_compare.py SEQUENTIAL_OUT BATCHED_OUT
"""

import re
import sys

ARRIVAL = re.compile(r"^fid (\d+) \(([\w-]+)\): (admitted|REJECTED)")
BATCH_FOOTER = re.compile(r"^batch stats: (\d+) epochs of <= (\d+),")


def parse(path):
    admitted, rejected = set(), set()
    batch_footer = None
    with open(path) as f:
        for line in f:
            m = ARRIVAL.match(line)
            if m:
                fid, verdict = int(m.group(1)), m.group(3)
                if fid in admitted or fid in rejected:
                    raise SystemExit(f"{path}: fid {fid} reported twice")
                (admitted if verdict == "admitted" else rejected).add(fid)
            m = BATCH_FOOTER.match(line)
            if m:
                batch_footer = (int(m.group(1)), int(m.group(2)))
    return admitted, rejected, batch_footer


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    seq_path, batch_path = sys.argv[1:]
    seq_adm, seq_rej, seq_footer = parse(seq_path)
    bat_adm, bat_rej, bat_footer = parse(batch_path)

    failures = []

    # Vacuity guards.
    if not seq_adm or not seq_rej:
        failures.append(
            f"sequential run is vacuous: {len(seq_adm)} admitted, "
            f"{len(seq_rej)} rejected (need both > 0)"
        )
    if seq_footer is not None:
        failures.append(
            f"sequential run has a batch footer {seq_footer} — was it run with --batch?"
        )
    if bat_footer is None:
        failures.append("batched run has no 'batch stats' footer — did it batch at all?")
    else:
        epochs, width = bat_footer
        if epochs < 1 or width <= 1:
            failures.append(
                f"batched run is vacuous: {epochs} epochs of width {width}"
            )

    # Decision identity.
    if seq_adm != bat_adm:
        only_seq = sorted(seq_adm - bat_adm)
        only_bat = sorted(bat_adm - seq_adm)
        failures.append(
            f"admitted-FID sets differ: sequential-only {only_seq[:10]}, "
            f"batched-only {only_bat[:10]}"
        )
    if seq_rej != bat_rej:
        failures.append(
            f"rejected-FID sets differ: {len(seq_rej)} sequential vs {len(bat_rej)} batched"
        )
    if (seq_adm | seq_rej) != (bat_adm | bat_rej):
        failures.append("runs saw different arrival populations")

    if failures:
        print("batch smoke: decision-identity FAILED")
        for f in failures:
            print("  " + f)
        return 1
    print(
        f"batch smoke: {len(seq_adm)} admitted + {len(seq_rej)} rejected FIDs "
        f"identical between --batch 1 and the batched pipeline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
