#!/usr/bin/env python3
"""Decision-identity check for the JIT smoke CI step.

Compares two faultsim runs of the same seed — one through the JIT tier,
one with --no-jit — and fails unless they are behaviourally identical:

  * metrics: counters and gauges must match exactly once jit.*-prefixed
    keys are dropped (those are the only keys allowed to differ, since
    they report the engine split itself);
  * traces: the event streams must match after normalization.

Trace normalization drops exactly the fields the engine split is allowed
to touch, nothing else:

  * timestamps — faultsim provisioning delays embed *measured*
    allocator compute time (Cost_model.total over a wall-clock timing),
    so ts is not reproducible even between identical runs;
  * span ids — the jit run emits extra jit.compile instants, which
    consume ids and shift every later span_id/parent_span_id (including
    nested keys like admit.span_id) by a constant offset;
  * the per-exec "jit" attribute and the jit.compile instants
    themselves.

Everything else — event names, phases, decisions, fids, switch ids,
pass/pipeline counts, fault verdicts — must be byte-equal, in order.

Histograms are wall-clock latency distributions and are skipped for the
same reason as ts.

Usage: jit_smoke_compare.py METRICS_JIT METRICS_NOJIT TRACE_JIT TRACE_NOJIT
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def strip_jit(d):
    return {k: v for k, v in d.items() if not k.startswith("jit.")}


def compare_metrics(path_a, path_b):
    a, b = load(path_a), load(path_b)
    failures = []
    # Guard against a vacuous pass: the jit run must actually have
    # specialized and executed something, and the --no-jit run nothing.
    jc = a.get("counters", {}).get("jit.compile", 0)
    jh = a.get("counters", {}).get("jit.hit", 0)
    if jc <= 0 or jh <= 0:
        failures.append(
            f"jit run never specialized (jit.compile={jc}, jit.hit={jh}) — smoke is vacuous"
        )
    nc = b.get("counters", {}).get("jit.compile", 0)
    if nc != 0:
        failures.append(f"--no-jit run compiled anyway (jit.compile={nc})")
    for section in ("counters", "gauges"):
        sa = strip_jit(a.get(section, {}))
        sb = strip_jit(b.get(section, {}))
        if sa != sb:
            keys = sorted(set(sa) | set(sb))
            for k in keys:
                if sa.get(k) != sb.get(k):
                    failures.append(
                        f"{section}[{k}]: {sa.get(k)!r} != {sb.get(k)!r}"
                    )
    return failures


def normalize_trace(path):
    events = load(path)["traceEvents"]
    out = []
    for e in events:
        if e.get("name") == "jit.compile":
            continue
        args = {
            k: v
            for k, v in (e.get("args") or {}).items()
            if k != "jit" and not k.endswith("span_id")
        }
        out.append(
            (
                e.get("name"),
                e.get("ph"),
                tuple(sorted((k, str(v)) for k, v in args.items())),
            )
        )
    return out


def compare_traces(path_a, path_b):
    na, nb = normalize_trace(path_a), normalize_trace(path_b)
    failures = []
    if len(na) != len(nb):
        failures.append(f"trace event counts differ: {len(na)} != {len(nb)}")
    for i, (x, y) in enumerate(zip(na, nb)):
        if x != y:
            failures.append(f"trace event {i} differs:\n  jit:    {x}\n  no-jit: {y}")
            if len(failures) >= 5:
                failures.append("... (further trace diffs suppressed)")
                break
    return failures


def main():
    if len(sys.argv) != 5:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    m_jit, m_nojit, t_jit, t_nojit = sys.argv[1:]
    failures = compare_metrics(m_jit, m_nojit) + compare_traces(t_jit, t_nojit)
    if failures:
        print("jit smoke: decision-identity FAILED")
        for f in failures:
            print("  " + f)
        return 1
    print("jit smoke: metrics and traces identical modulo jit.* (decision-identity holds)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
