(* Tests for the exemplar active services: structural checks against the
   paper's listings and functional checks of the memsync generators. *)

module App = Activermt_apps.App
module Cache = Activermt_apps.Cache
module Hh = Activermt_apps.Heavy_hitter
module Lb = Activermt_apps.Cheetah_lb
module Memsync = Activermt_apps.Memsync
module P = Activermt.Program
module I = Activermt.Instr
module Spec = Activermt_compiler.Spec

(* -- Descriptors --------------------------------------------------------- *)

let test_services_validate () =
  List.iter
    (fun app ->
      match App.validate app with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (app.App.name ^ ": " ^ e))
    [ Cache.service; Hh.service; Lb.service ]

let test_validate_rejects_mismatched_programs () =
  let bad =
    {
      App.name = "bad";
      programs = [ Spec.analyze Cache.query_program; Spec.analyze Hh.program ];
      elastic = true;
      demand_blocks = [| 1; 1; 1 |];
    }
  in
  match App.validate bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted mismatched co-scheduled programs"

let test_validate_rejects_bad_demands () =
  let bad = { Cache.service with App.demand_blocks = [| 1; 1 |] } in
  (match App.validate bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted wrong demand arity");
  let bad = { Cache.service with App.demand_blocks = [| 1; 0; 1 |] } in
  match App.validate bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted zero demand"

let test_program_of_assembly_raises () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (App.program_of_assembly ~name:"x" "BOGUS");
       false
     with Invalid_argument _ -> true)

(* -- Cache --------------------------------------------------------------- *)

let test_cache_query_is_listing1 () =
  Alcotest.(check int) "11 instructions" 11 (P.length Cache.query_program);
  Alcotest.(check (list int)) "accesses" [ 1; 4; 8 ]
    (P.memory_access_positions Cache.query_program);
  Alcotest.(check (option int)) "RTS" (Some 7) (P.rts_position Cache.query_program)

let test_cache_populate_same_skeleton () =
  Alcotest.(check (list int)) "same access positions"
    (P.memory_access_positions Cache.query_program)
    (P.memory_access_positions Cache.populate_program);
  Alcotest.(check (option int)) "same RTS position"
    (P.rts_position Cache.query_program)
    (P.rts_position Cache.populate_program)

let test_cache_elastic () =
  Alcotest.(check bool) "elastic" true Cache.service.App.elastic

let test_cache_bucket_stable () =
  let b1 = Cache.bucket_of_key ~capacity:1000 ~key0:1 ~key1:2 in
  let b2 = Cache.bucket_of_key ~capacity:1000 ~key0:1 ~key1:2 in
  Alcotest.(check int) "deterministic" b1 b2;
  Alcotest.(check bool) "in range" true (b1 >= 0 && b1 < 1000);
  Alcotest.(check int) "zero capacity safe" 0
    (Cache.bucket_of_key ~capacity:0 ~key0:1 ~key1:2)

let test_cache_args () =
  Alcotest.(check (array int)) "query args" [| 9; 1; 2; 0 |]
    (Cache.query_args ~bucket:9 ~key0:1 ~key1:2);
  Alcotest.(check (array int)) "populate args" [| 9; 1; 2; 7 |]
    (Cache.populate_args ~bucket:9 ~key0:1 ~key1:2 ~value:7)

(* -- Heavy hitter -------------------------------------------------------- *)

let test_listing2_verbatim_shape () =
  Alcotest.(check int) "29 instructions" 29 (P.length Hh.listing2_program);
  Alcotest.(check (list int)) "accesses at paper lines 8,13,16,21,26,28"
    [ 7; 12; 15; 20; 25; 27 ]
    (P.memory_access_positions Hh.listing2_program)

let test_hh_aligned_program () =
  let spec = App.spec Hh.service in
  Alcotest.(check int) "40 instructions (two exact passes)" 40 spec.Spec.length;
  let stages = Array.map (fun p -> p mod 20) (Array.map (fun a -> a) spec.Spec.accesses) in
  Alcotest.(check int) "threshold write re-accesses the read's stage"
    stages.(Hh.threshold_access) stages.(3);
  Alcotest.(check bool) "six accesses" true (Array.length spec.Spec.accesses = 6)

let test_hh_inelastic_demand () =
  Alcotest.(check bool) "inelastic" false Hh.service.App.elastic;
  Alcotest.(check (array int)) "16 blocks per access" [| 16; 16; 16; 16; 16; 16 |]
    Hh.service.App.demand_blocks

let test_hh_args () =
  Alcotest.(check (array int)) "args" [| 1; 2; 3; 0 |] (Hh.args ~key0:1 ~key1:2 ~slot:3)

let test_hh_sketch_matches_reference () =
  (* Stream 3000 Zipf keys through the monitor and compare both sketch
     rows, word for word, against a reference count-min built on the same
     per-stage hash family — end-to-end validation of HASH, ADDR_MASK and
     MEM_MINREADINC. *)
  let params = Rmt.Params.default in
  let ctl = Activermt_control.Controller.create (Rmt.Device.create params) in
  let req = Activermt_client.Negotiate.request_packet ~fid:8 ~seq:0 Hh.service in
  (match Activermt_control.Controller.handle_request ctl req with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "admission");
  let regions =
    Option.get
      (Activermt_client.Negotiate.granted_regions
         (Option.get (Activermt_control.Controller.regions_packet ctl ~fid:8)))
  in
  let hh =
    match
      Activermt_client.Hh_client.create params
        ~policy:Activermt_compiler.Mutant.Most_constrained ~fid:8 ~regions
    with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  (* HASH executes at stages 4 and 9 (selecting those stages' hash
     engines); the counters live at stages 7 and 12. *)
  let rows = [ (7, 4); (12, 9) ] in
  let row_words = 4096 (* 16 blocks *) in
  let mask = row_words - 1 in
  let reference =
    List.map (fun (mem_stage, hash_stage) -> (mem_stage, hash_stage, Array.make row_words 0)) rows
  in
  let tables = Activermt_control.Controller.tables ctl in
  let meta = Activermt.Runtime.meta ~src:1 ~dst:2 () in
  let rng = Stdx.Prng.create ~seed:31 in
  let zipf = Workload.Zipf.create ~exponent:1.0 ~n:5000 rng in
  for seq = 1 to 3000 do
    let key = Workload.Kv.key_of_rank (Workload.Zipf.sample zipf) in
    ignore
      (Activermt.Runtime.run tables ~meta
         (Activermt_client.Hh_client.monitor_packet hh ~seq key));
    List.iter
      (fun (_, hash_stage, row) ->
        let h = Rmt.Crc.hash_words ~row:hash_stage [ key.Workload.Kv.k0; key.Workload.Kv.k1 ] in
        let slot = h land mask in
        row.(slot) <- row.(slot) + 1)
      reference
  done;
  List.iter
    (fun (stage, _, row) ->
      let device_row =
        Option.get (Activermt_control.Controller.read_region ctl ~fid:8 ~stage)
      in
      Alcotest.(check int)
        (Printf.sprintf "stage %d row length" stage)
        row_words (Array.length device_row);
      Alcotest.(check (array int))
        (Printf.sprintf "stage %d counts" stage)
        row device_row)
    reference

(* -- Cheetah LB ---------------------------------------------------------- *)

let test_lb_syn_shape () =
  Alcotest.(check int) "28 instructions" 28 (P.length Lb.syn_program);
  Alcotest.(check (list int)) "accesses at paper lines 5,7,16,18" [ 4; 6; 15; 17 ]
    (P.memory_access_positions Lb.syn_program);
  (* HASH sits at the published position (cookie alignment contract). *)
  (match Lb.syn_program.P.lines.(Lb.syn_hash_position) with
  | { P.instr = I.Hash; _ } -> ()
  | _ -> Alcotest.fail "syn_hash_position must point at HASH")

let test_lb_flow_shape () =
  Alcotest.(check int) "10 instructions" 10 (P.length Lb.flow_program);
  Alcotest.(check (list int)) "stateless" [] (P.memory_access_positions Lb.flow_program)

let test_lb_flow_alignment () =
  List.iter
    (fun stage ->
      let p = Lb.flow_program_for ~hash_stage:stage in
      let hash_pos =
        Option.get (P.position_of_first p ~f:(fun i -> i = I.Hash))
      in
      Alcotest.(check int)
        (Printf.sprintf "hash lands on stage %d" stage)
        stage (hash_pos mod 20))
    [ 0; 2; 3; 7; 19 ]

let test_lb_install_pool_validation () =
  let write ~stage:_ ~index:_ ~value:_ = true in
  Alcotest.(check bool) "non-power-of-two rejected" true
    (try
       Lb.install_pool ~write ~accesses_stages:[| 1; 2; 3; 4 |] ~ports:[| 1; 2; 3 |];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong stage arity rejected" true
    (try
       Lb.install_pool ~write ~accesses_stages:[| 1; 2 |] ~ports:[| 1; 2 |];
       false
     with Invalid_argument _ -> true)

(* -- Counter ------------------------------------------------------------- *)

module Counter = Activermt_apps.Counter

let test_counter_shape () =
  Alcotest.(check int) "4 instructions" 4 (P.length Counter.program);
  Alcotest.(check (list int)) "one access" [ 1 ]
    (P.memory_access_positions Counter.program);
  match App.validate Counter.service with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_counter_end_to_end () =
  let ctl = Activermt_control.Controller.create (Rmt.Device.create Rmt.Params.default) in
  let req = Activermt_client.Negotiate.request_packet ~fid:4 ~seq:0 Counter.service in
  (match Activermt_control.Controller.handle_request ctl req with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "admission");
  let tables = Activermt_control.Controller.tables ctl in
  let meta = Activermt.Runtime.meta ~src:1 ~dst:2 () in
  let send slot =
    let pkt =
      Activermt.Packet.exec
        ~flags:{ Activermt.Packet.no_flags with virtual_addressing = true }
        ~fid:4 ~seq:0 ~args:(Counter.args ~slot) Counter.program
    in
    let r = Activermt.Runtime.run tables ~meta pkt in
    r.Activermt.Runtime.args_out.(Counter.arg_count)
  in
  Alcotest.(check int) "first packet" 1 (send 7);
  Alcotest.(check int) "second packet" 2 (send 7);
  Alcotest.(check int) "independent slot" 1 (send 8)

let test_counter_slot_hash () =
  let s = Counter.slot_of_flow ~slots:1024 [| 1; 2 |] in
  Alcotest.(check bool) "in range" true (s >= 0 && s < 1024);
  Alcotest.(check int) "deterministic" s (Counter.slot_of_flow ~slots:1024 [| 1; 2 |])

(* -- Bloom filter ---------------------------------------------------------- *)

module Bloom = Activermt_apps.Bloom

let test_bloom_shape () =
  Alcotest.(check (list int)) "insert accesses" [ 7; 11; 15 ]
    (P.memory_access_positions Bloom.insert_program);
  Alcotest.(check (list int)) "query accesses" [ 7; 11; 15 ]
    (P.memory_access_positions Bloom.query_program);
  (* Hash engines line up probe for probe. *)
  let hashes p =
    Array.to_list
      (Array.mapi (fun i l -> (i, l.P.instr)) p.P.lines)
    |> List.filter_map (fun (i, instr) -> if instr = I.Hash then Some i else None)
  in
  Alcotest.(check (list int)) "same hash stages" (hashes Bloom.insert_program)
    (hashes Bloom.query_program);
  match App.validate Bloom.service with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let bloom_world () =
  let ctl = Activermt_control.Controller.create (Rmt.Device.create Rmt.Params.default) in
  let req = Activermt_client.Negotiate.request_packet ~fid:5 ~seq:0 Bloom.service in
  (match Activermt_control.Controller.handle_request ctl req with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "admission");
  let tables = Activermt_control.Controller.tables ctl in
  let meta = Activermt.Runtime.meta ~src:1 ~dst:2 () in
  let exec args program =
    Activermt.Runtime.run tables ~meta
      (Activermt.Packet.exec
         ~flags:{ Activermt.Packet.no_flags with virtual_addressing = true }
         ~fid:5 ~seq:0 ~args program)
  in
  let insert k0 k1 = ignore (exec (Bloom.insert_args ~key0:k0 ~key1:k1) Bloom.insert_program) in
  let member k0 k1 =
    match (exec (Bloom.query_args ~key0:k0 ~key1:k1) Bloom.query_program).Activermt.Runtime.decision with
    | Activermt.Runtime.Return_to_sender -> true
    | Activermt.Runtime.Forward _ -> false
    | Activermt.Runtime.Dropped _ -> Alcotest.fail "query dropped"
  in
  (insert, member)

let test_bloom_membership () =
  let insert, member = bloom_world () in
  Alcotest.(check bool) "empty filter" false (member 1 2);
  insert 1 2;
  Alcotest.(check bool) "member after insert" true (member 1 2);
  Alcotest.(check bool) "no false negative ever" true
    (List.for_all
       (fun i ->
         insert i (i * 3);
         member i (i * 3))
       (List.init 50 (fun i -> i + 10)))

let test_bloom_false_positive_rate () =
  let insert, member = bloom_world () in
  let n = 2000 in
  for i = 0 to n - 1 do
    insert i (i + 1_000_000)
  done;
  let fps = ref 0 in
  let probes = 2000 in
  for i = 0 to probes - 1 do
    if member (5_000_000 + i) (9_000_000 + i) then incr fps
  done;
  let measured = float_of_int !fps /. float_of_int probes in
  (* Each probe array is a full 64K-word stage region. *)
  let expected = Bloom.false_positive_rate ~bits_per_stage:65536 ~inserted:n in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.5f ~ expected %.5f" measured expected)
    true
    (measured < (10.0 *. expected) +. 0.01)

(* -- Memsync ------------------------------------------------------------- *)

let test_memsync_listings_shape () =
  Alcotest.(check int) "listing 5" 5 (P.length Memsync.listing5);
  Alcotest.(check int) "listing 6" 5 (P.length Memsync.listing6);
  Alcotest.(check (list int)) "read access" [ 1 ]
    (P.memory_access_positions Memsync.listing5);
  Alcotest.(check (list int)) "write access" [ 2 ]
    (P.memory_access_positions Memsync.listing6)

let test_memsync_read_program_stages () =
  let p = Memsync.read_program ~stages:[ 2; 5; 9 ] in
  Alcotest.(check (list int)) "reads at requested stages" [ 2; 5; 9 ]
    (P.memory_access_positions p);
  (match P.validate p with Ok _ -> () | Error e -> Alcotest.fail (P.error_to_string e));
  match P.rts_position p with
  | Some r -> Alcotest.(check bool) "RTS in ingress" true (r < 10)
  | None -> Alcotest.fail "needs an RTS reply"

let test_memsync_read_stage_zero () =
  (* Preloading lets index 0 of stage 0 be read (Appendix C's point). *)
  let p = Memsync.read_program ~stages:[ 0 ] in
  Alcotest.(check (list int)) "access at position 0" [ 0 ]
    (P.memory_access_positions p)

let test_memsync_write_program_stages () =
  let p = Memsync.write_program ~stages:[ 3; 7 ] in
  Alcotest.(check (list int)) "writes at stages" [ 3; 7 ]
    (P.memory_access_positions p)

let test_memsync_invalid_stages () =
  let expect_raises f =
    Alcotest.(check bool) "raises" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_raises (fun () -> Memsync.read_program ~stages:[]);
  expect_raises (fun () -> Memsync.read_program ~stages:[ 1; 2 ]);
  expect_raises (fun () -> Memsync.read_program ~stages:[ 1; 3; 5; 7 ]);
  expect_raises (fun () -> Memsync.read_program ~stages:[ 25 ])

let test_memsync_args () =
  Alcotest.(check (array int)) "read args" [| 7; 0; 0; 0 |] (Memsync.read_args ~index:7);
  Alcotest.(check (array int)) "write args" [| 7; 1; 2; 0 |]
    (Memsync.write_args ~index:7 ~values:[ 1; 2 ])

let () =
  Alcotest.run "apps"
    [
      ( "descriptors",
        [
          Alcotest.test_case "services validate" `Quick test_services_validate;
          Alcotest.test_case "mismatched programs" `Quick
            test_validate_rejects_mismatched_programs;
          Alcotest.test_case "bad demands" `Quick test_validate_rejects_bad_demands;
          Alcotest.test_case "assembly errors raise" `Quick test_program_of_assembly_raises;
        ] );
      ( "cache",
        [
          Alcotest.test_case "query = listing 1" `Quick test_cache_query_is_listing1;
          Alcotest.test_case "populate skeleton" `Quick test_cache_populate_same_skeleton;
          Alcotest.test_case "elastic" `Quick test_cache_elastic;
          Alcotest.test_case "bucket hashing" `Quick test_cache_bucket_stable;
          Alcotest.test_case "args" `Quick test_cache_args;
        ] );
      ( "heavy-hitter",
        [
          Alcotest.test_case "listing 2 verbatim" `Quick test_listing2_verbatim_shape;
          Alcotest.test_case "aligned program" `Quick test_hh_aligned_program;
          Alcotest.test_case "inelastic demand" `Quick test_hh_inelastic_demand;
          Alcotest.test_case "args" `Quick test_hh_args;
          Alcotest.test_case "sketch matches reference" `Quick
            test_hh_sketch_matches_reference;
        ] );
      ( "cheetah-lb",
        [
          Alcotest.test_case "syn shape" `Quick test_lb_syn_shape;
          Alcotest.test_case "flow shape" `Quick test_lb_flow_shape;
          Alcotest.test_case "flow hash alignment" `Quick test_lb_flow_alignment;
          Alcotest.test_case "pool validation" `Quick test_lb_install_pool_validation;
        ] );
      ( "counter",
        [
          Alcotest.test_case "shape" `Quick test_counter_shape;
          Alcotest.test_case "end to end" `Quick test_counter_end_to_end;
          Alcotest.test_case "slot hash" `Quick test_counter_slot_hash;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "shape" `Quick test_bloom_shape;
          Alcotest.test_case "membership" `Quick test_bloom_membership;
          Alcotest.test_case "false positives" `Slow test_bloom_false_positive_rate;
        ] );
      ( "memsync",
        [
          Alcotest.test_case "listings" `Quick test_memsync_listings_shape;
          Alcotest.test_case "read program" `Quick test_memsync_read_program_stages;
          Alcotest.test_case "stage zero" `Quick test_memsync_read_stage_zero;
          Alcotest.test_case "write program" `Quick test_memsync_write_program_stages;
          Alcotest.test_case "invalid stages" `Quick test_memsync_invalid_stages;
          Alcotest.test_case "args" `Quick test_memsync_args;
        ] );
    ]
