(* Structural tests of the generated P4 runtime: every stage gets its
   register pool, stateful actions and decode table; every opcode gets an
   action; the parser unrolls to the configured depth; output is
   deterministic and scales with the device parameters. *)

module Emit = Activermt_p4gen.Emit
module I = Activermt.Instr

let cfg = Emit.default_config
let program = Emit.emit cfg

let count_occurrences hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let contains hay needle = count_occurrences hay needle > 0

let test_deterministic () =
  Alcotest.(check string) "same output twice" program (Emit.emit cfg)

let test_register_per_stage () =
  Alcotest.(check int) "20 register pools" 20
    (count_occurrences program "Register<bit<32>, bit<32>>(65536)");
  for s = 0 to 19 do
    Alcotest.(check bool)
      (Printf.sprintf "heap_%d present" s)
      true
      (contains program (Printf.sprintf "heap_%d_minreadinc" s))
  done

let test_table_per_stage () =
  for s = 0 to 19 do
    Alcotest.(check bool)
      (Printf.sprintf "table instruction_%d" s)
      true
      (contains program (Printf.sprintf "table instruction_%d {" s))
  done;
  Alcotest.(check int) "exactly 20 tables" 20
    (count_occurrences program "table instruction_")

let test_action_per_opcode () =
  List.iter
    (fun i ->
      let name = Emit.opcode_action_name i in
      Alcotest.(check bool) name true (contains program ("action " ^ name)))
    I.all_opcodes

let test_branch_actions_parameterized () =
  Alcotest.(check bool) "cjump takes target" true
    (contains program "action act_cjump(bit<3> target)");
  Alcotest.(check bool) "addr_mask takes mask" true
    (contains program "action act_addr_mask_s0(bit<32> xmask)")

let test_parser_depth () =
  Alcotest.(check bool) "deepest state present" true
    (contains program (Printf.sprintf "state parse_instr_%d" (cfg.Emit.max_program_length - 1)));
  Alcotest.(check bool) "no state beyond depth" false
    (contains program (Printf.sprintf "state parse_instr_%d" cfg.Emit.max_program_length))

let test_protection_key () =
  Alcotest.(check int) "range match on MAR in every table" 20
    (count_occurrences program "meta.mar               : range")

let test_scales_with_params () =
  let small =
    {
      cfg with
      Emit.params = { cfg.Emit.params with Rmt.Params.logical_stages = 4;
                      Rmt.Params.ingress_stages = 2 };
      max_program_length = 8;
    }
  in
  let p = Emit.emit small in
  Alcotest.(check int) "4 tables" 4 (count_occurrences p "table instruction_");
  Alcotest.(check bool) "shorter parser" false (contains p "state parse_instr_8");
  Alcotest.(check bool) "smaller than default" true
    (String.length p < String.length program)

let test_pipeline_split () =
  Alcotest.(check bool) "ingress applies stage 0" true
    (contains program "instruction_0.apply()");
  Alcotest.(check bool) "egress applies stage 19" true
    (contains program "instruction_19.apply()");
  Alcotest.(check bool) "TNA scaffolding" true
    (contains program "Pipeline(ActiveParser(), ActiveIngress(), ActiveEgress())")

let test_balanced_braces () =
  let opens = count_occurrences program "{" and closes = count_occurrences program "}" in
  Alcotest.(check int) "balanced braces" opens closes

(* -- control-plane entries -------------------------------------------------- *)

module Entries = Activermt_p4gen.Entries

let regions_with assoc =
  let r = Array.make 20 None in
  List.iter
    (fun (s, start_word, n_words) ->
      r.(s) <- Some { Activermt.Packet.start_word; n_words })
    assoc;
  r

let test_entries_script () =
  let regions = regions_with [ (1, 0, 65536); (4, 1024, 256) ] in
  let script = Entries.entries_for_app cfg ~fid:7 ~regions in
  Alcotest.(check bool) "bounds entry for stage 1" true
    (count_occurrences script
       "instruction_1.add_with_memory_bounds(fid=7, mar_start=0, mar_end=65535)"
    = 1);
  Alcotest.(check bool) "bounds entry for stage 4" true
    (count_occurrences script
       "instruction_4.add_with_memory_bounds(fid=7, mar_start=1024, mar_end=1279)"
    = 1);
  (* Stage 2 sits between the accesses: pass-through plus translation
     pointing at stage 4's region. *)
  Alcotest.(check bool) "passthrough for stage 2" true
    (contains script "instruction_2.add_with_passthrough(fid=7)");
  Alcotest.(check bool) "translation mask for stage 2" true
    (contains script "instruction_2.add_with_translation(fid=7, xmask=0xff, xoffset=1024)");
  (* 20 gating entries + translation entries up to the last access. *)
  Alcotest.(check int) "entry count" (20 + 5) (Entries.entry_count cfg ~regions)

let test_entries_removal () =
  let script = Entries.removal_for_app cfg ~fid:9 in
  Alcotest.(check int) "one delete per stage" 20
    (count_occurrences script ".delete(fid=9)")

let test_entries_deterministic () =
  let regions = regions_with [ (0, 0, 256) ] in
  Alcotest.(check string) "stable output"
    (Entries.entries_for_app cfg ~fid:1 ~regions)
    (Entries.entries_for_app cfg ~fid:1 ~regions)

let () =
  Alcotest.run "p4gen"
    [
      ( "emit",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "register per stage" `Quick test_register_per_stage;
          Alcotest.test_case "table per stage" `Quick test_table_per_stage;
          Alcotest.test_case "action per opcode" `Quick test_action_per_opcode;
          Alcotest.test_case "parameterized actions" `Quick
            test_branch_actions_parameterized;
          Alcotest.test_case "parser depth" `Quick test_parser_depth;
          Alcotest.test_case "protection key" `Quick test_protection_key;
          Alcotest.test_case "scales with params" `Quick test_scales_with_params;
          Alcotest.test_case "pipeline split" `Quick test_pipeline_split;
          Alcotest.test_case "balanced braces" `Quick test_balanced_braces;
        ] );
      ( "entries",
        [
          Alcotest.test_case "install script" `Quick test_entries_script;
          Alcotest.test_case "removal script" `Quick test_entries_removal;
          Alcotest.test_case "deterministic" `Quick test_entries_deterministic;
        ] );
    ]
