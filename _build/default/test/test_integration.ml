(* End-to-end integration tests: full service lifecycles across the
   allocator, controller, runtime, clients and the simulated testbed,
   plus sanity checks of the experiment harness itself. *)

module Controller = Activermt_control.Controller
module Negotiate = Activermt_client.Negotiate
module Cache_client = Activermt_client.Cache_client
module Mutant = Activermt_compiler.Mutant
module Kv = Workload.Kv
module Churn = Workload.Churn
module RT = Activermt.Runtime
module CS = Experiments.Case_study

let params = Rmt.Params.default

(* -- Full cache lifecycle against one switch ------------------------------ *)

let test_many_tenants_coexist () =
  (* Nine caches fill all nine mc-reachable stages three deep; every
     tenant can store and retrieve its own objects without interference. *)
  let ctl =
    Controller.create ~scheme:Activermt_alloc.Allocator.Worst_fit
      (Rmt.Device.create params)
  in
  let tables = Controller.tables ctl in
  let meta = RT.meta ~src:1 ~dst:2 () in
  let clients =
    List.init 9 (fun i ->
        let fid = i + 1 in
        match
          Controller.handle_request ctl (Negotiate.request_packet ~fid ~seq:0 Activermt_apps.Cache.service)
        with
        | Error _ -> Alcotest.fail "admission failed"
        | Ok p -> (
          let regions = Option.get (Negotiate.granted_regions p.Controller.response) in
          match
            Cache_client.create params ~policy:Mutant.Most_constrained ~fid ~regions
          with
          | Ok cc -> cc
          | Error e -> Alcotest.fail e))
  in
  (* Each tenant stores a distinct value under the same application key. *)
  let key = Kv.key_of_rank 42 in
  List.iteri
    (fun i cc ->
      let r = RT.run tables ~meta (Cache_client.populate_packet cc ~seq:i key ~value:(1000 + i)) in
      Alcotest.(check bool) "populate acked" true (r.RT.decision = RT.Return_to_sender))
    clients;
  List.iteri
    (fun i cc ->
      let r = RT.run tables ~meta (Cache_client.query_packet cc ~seq:(100 + i) key) in
      Alcotest.(check bool) "hit" true (r.RT.decision = RT.Return_to_sender);
      Alcotest.(check int) "isolated value" (1000 + i) r.RT.args_out.(3))
    clients

let test_protection_isolates_tenants () =
  (* Tenant 2's region never aliases tenant 1's: writing through tenant 2
     cannot change what tenant 1 reads, even co-located on the same
     stages. *)
  let ctl =
    Controller.create ~scheme:Activermt_alloc.Allocator.Best_fit
      (Rmt.Device.create params)
  in
  let tables = Controller.tables ctl in
  let meta = RT.meta ~src:1 ~dst:2 () in
  let mk fid =
    match
      Controller.handle_request ctl
        (Negotiate.request_packet ~fid ~seq:0 Activermt_apps.Cache.service)
    with
    | Error _ -> Alcotest.fail "admission"
    | Ok p -> (
      let regions = Option.get (Negotiate.granted_regions p.Controller.response) in
      match Cache_client.create params ~policy:Mutant.Most_constrained ~fid ~regions with
      | Ok cc -> cc
      | Error e -> Alcotest.fail e)
  in
  let cc1 = mk 1 in
  (* tenant 1 stores before tenant 2 arrives; arrival reallocates tenant 1
     (auto mode migrates its data). *)
  let key = Kv.key_of_rank 7 in
  ignore (RT.run tables ~meta (Cache_client.populate_packet cc1 ~seq:0 key ~value:111));
  let cc2 = mk 2 in
  (* tenant 1 must re-synthesize against its shrunken region. *)
  let regions1 = Option.get (Negotiate.granted_regions (Option.get (Controller.regions_packet ctl ~fid:1))) in
  let cc1 =
    match Cache_client.create params ~policy:Mutant.Most_constrained ~fid:1 ~regions:regions1 with
    | Ok cc -> cc
    | Error e -> Alcotest.fail e
  in
  ignore (RT.run tables ~meta (Cache_client.populate_packet cc1 ~seq:1 key ~value:111));
  ignore (RT.run tables ~meta (Cache_client.populate_packet cc2 ~seq:2 key ~value:222));
  let r1 = RT.run tables ~meta (Cache_client.query_packet cc1 ~seq:3 key) in
  Alcotest.(check bool) "tenant 1 still hits" true (r1.RT.decision = RT.Return_to_sender);
  Alcotest.(check int) "tenant 1 unclobbered" 111 r1.RT.args_out.(3)

(* -- Harness sanity ------------------------------------------------------- *)

let test_harness_accounting () =
  let rng = Stdx.Prng.create ~seed:101 in
  let trace = Churn.generate Churn.default_config ~epochs:50 rng in
  let result = Experiments.Harness.run ~params trace in
  Alcotest.(check int) "one stat per epoch" 50 (List.length result.Experiments.Harness.epochs);
  List.iter
    (fun e ->
      Alcotest.(check int) "arrivals = admitted + failed" e.Experiments.Harness.arrivals
        (e.Experiments.Harness.admitted + e.Experiments.Harness.failed);
      Alcotest.(check bool) "utilization bounded" true
        (e.Experiments.Harness.utilization >= 0.0 && e.Experiments.Harness.utilization <= 1.0);
      Alcotest.(check bool) "fairness bounded" true
        (e.Experiments.Harness.fairness >= 0.0 && e.Experiments.Harness.fairness <= 1.0 +. 1e-9);
      (* A reallocated cache may depart later in the same epoch, so the
         count is bounded by residents plus that epoch's churn. *)
      Alcotest.(check bool) "cache realloc non-negative" true
        (e.Experiments.Harness.cache_reallocated >= 0))
    result.Experiments.Harness.epochs

let test_harness_policies_differ () =
  (* lc admits at least as many heavy hitters as mc (Fig 5a's shape). *)
  let run policy =
    let trace = Churn.arrivals_sequence Churn.Heavy_hitter ~n:80 in
    let r = Experiments.Harness.run ~policy ~params trace in
    List.fold_left (fun acc e -> acc + e.Experiments.Harness.admitted) 0 r.Experiments.Harness.epochs
  in
  let mc = run Mutant.Most_constrained in
  let lc = run Mutant.Least_constrained in
  Alcotest.(check int) "mc admits 16" 16 mc;
  Alcotest.(check bool) "lc admits more" true (lc > mc)

(* -- Case study (short) --------------------------------------------------- *)

let test_case_study_single () =
  let config =
    { CS.default_config with CS.request_rate_pps = 4000.0; hh_window_s = 1.0 }
  in
  let r = CS.run_single ~config params in
  let t = List.hd r.CS.tenants in
  (* Monitoring phase: no hits in the first second. *)
  Alcotest.(check (float 0.0)) "no hits while monitoring" 0.0
    (CS.hit_rate_window t ~lo_ms:0 ~hi_ms:900);
  (* Cache phase: healthy hit rate at the end. *)
  let final =
    CS.hit_rate_window t
      ~lo_ms:(int_of_float ((r.CS.duration_s -. 2.0) *. 1000.0))
      ~hi_ms:(int_of_float (r.CS.duration_s *. 1000.0))
  in
  Alcotest.(check bool) "stable hit rate > 0.3" true (final > 0.3);
  Alcotest.(check bool) "first hit after context switch" true
    (match t.CS.first_hit_s with Some s -> s > 1.0 | None -> false)

let test_case_study_multi () =
  let config = { CS.default_config with CS.request_rate_pps = 4000.0 } in
  let r = CS.run_multi ~config ~n_tenants:4 ~stagger_s:3.0 params in
  Alcotest.(check int) "four tenants" 4 (List.length r.CS.tenants);
  let buckets = List.map (fun t -> t.CS.n_buckets) r.CS.tenants in
  (match buckets with
  | [ b1; b2; b3; b4 ] ->
    (* First three exclusive, fourth shares with the first. *)
    Alcotest.(check int) "tenant 2 exclusive" 65536 b2;
    Alcotest.(check int) "tenant 3 exclusive" 65536 b3;
    Alcotest.(check int) "tenant 1 halved" 32768 b1;
    Alcotest.(check int) "tenant 4 halved" 32768 b4
  | _ -> Alcotest.fail "bucket list");
  (* Only the first tenant is disrupted, around the fourth arrival. *)
  let t1 = List.nth r.CS.tenants 0 in
  (match t1.CS.disruptions with
  | [ (a, b) ] ->
    Alcotest.(check bool) "disruption at 4th arrival" true (a >= 9.0 && a <= 9.5);
    Alcotest.(check bool) "lasts 50-500 ms" true (b -. a > 0.05 && b -. a < 0.5)
  | _ -> Alcotest.fail "expected exactly one disruption");
  List.iteri
    (fun i t ->
      if i > 0 && i < 3 then
        Alcotest.(check (list (pair (float 0.0) (float 0.0)))) "undisrupted" []
          t.CS.disruptions)
    r.CS.tenants

let test_case_study_under_loss () =
  (* 5% data-plane loss: lost queries simply never reply, but extraction
     retransmits and the cache still converges. *)
  let config =
    {
      CS.default_config with
      CS.request_rate_pps = 4000.0;
      hh_window_s = 1.0;
      loss_rate = 0.05;
    }
  in
  let r = CS.run_single ~config params in
  let t = List.hd r.CS.tenants in
  let final =
    CS.hit_rate_window t
      ~lo_ms:(int_of_float ((r.CS.duration_s -. 2.0) *. 1000.0))
      ~hi_ms:(int_of_float (r.CS.duration_s *. 1000.0))
  in
  Alcotest.(check bool) "still serves hits under loss" true (final > 0.3)

let test_case_study_deterministic () =
  let config = { CS.default_config with CS.request_rate_pps = 2000.0 } in
  let r1 = CS.run_single ~config params in
  let r2 = CS.run_single ~config params in
  let t1 = List.hd r1.CS.tenants and t2 = List.hd r2.CS.tenants in
  Alcotest.(check bool) "identical hit series" true (t1.CS.bins_hits = t2.CS.bins_hits)

let () =
  Alcotest.run "integration"
    [
      ( "multi-tenant switch",
        [
          Alcotest.test_case "nine tenants coexist" `Quick test_many_tenants_coexist;
          Alcotest.test_case "protection isolates" `Quick test_protection_isolates_tenants;
        ] );
      ( "harness",
        [
          Alcotest.test_case "accounting" `Quick test_harness_accounting;
          Alcotest.test_case "policies differ" `Quick test_harness_policies_differ;
        ] );
      ( "case study",
        [
          Alcotest.test_case "single tenant" `Slow test_case_study_single;
          Alcotest.test_case "multi tenant" `Slow test_case_study_multi;
          Alcotest.test_case "under loss" `Slow test_case_study_under_loss;
          Alcotest.test_case "deterministic" `Slow test_case_study_deterministic;
        ] );
    ]
