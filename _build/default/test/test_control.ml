(* Tests for the switch controller: admission, table installation,
   consistent snapshots, auto/interactive reallocation protocols, the
   timeout path and the cost model. *)

module Controller = Activermt_control.Controller
module Cost_model = Activermt_control.Cost_model
module Negotiate = Activermt_client.Negotiate
module Pkt = Activermt.Packet

let params = Rmt.Params.default

let fresh ?mode ?extraction_timeout_s () =
  let device = Rmt.Device.create params in
  (device, Controller.create ?mode ?extraction_timeout_s device)

let request fid app = Negotiate.request_packet ~fid ~seq:0 app

let admit_exn ctl fid app =
  match Controller.handle_request ctl (request fid app) with
  | Ok p -> p
  | Error (`Rejected _) -> Alcotest.fail "rejected"
  | Error (`Bad_packet e) -> Alcotest.fail e

let cache = Activermt_apps.Cache.service
let hh = Activermt_apps.Heavy_hitter.service

let test_admission_installs_tables () =
  let _, ctl = fresh () in
  let p = admit_exn ctl 1 cache in
  Alcotest.(check bool) "committed" true (p.Controller.phase = Controller.Committed);
  Alcotest.(check bool) "tables installed" true
    (Activermt.Table.installed (Controller.tables ctl) ~fid:1);
  match Negotiate.granted_regions p.Controller.response with
  | Some regions ->
    Alcotest.(check int) "three allocated stages" 3
      (Array.fold_left (fun n r -> if r <> None then n + 1 else n) 0 regions)
  | None -> Alcotest.fail "granted response"

let test_bad_packet () =
  let _, ctl = fresh () in
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args:[||] Activermt_apps.Cache.query_program in
  match Controller.handle_request ctl pkt with
  | Error (`Bad_packet _) -> ()
  | _ -> Alcotest.fail "expected bad-packet error"

let test_rejection () =
  let _, ctl = fresh () in
  for fid = 1 to 16 do
    ignore (admit_exn ctl fid hh)
  done;
  match Controller.handle_request ctl (request 17 hh) with
  | Error (`Rejected _) -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_new_region_zeroed () =
  let device, ctl = fresh () in
  (* Dirty the device memory, then admit: the new app's region must read
     as zero. *)
  let st = Rmt.Device.stage device 1 in
  Rmt.Register_array.set st.Rmt.Device.regs 0 12345;
  ignore (admit_exn ctl 1 cache);
  match Controller.read_region ctl ~fid:1 ~stage:1 with
  | Some data -> Alcotest.(check int) "zeroed" 0 data.(0)
  | None -> Alcotest.fail "region readable"

let test_control_plane_write_read () =
  let _, ctl = fresh () in
  ignore (admit_exn ctl 1 cache);
  Alcotest.(check bool) "write ok" true
    (Controller.write_region_word ctl ~fid:1 ~stage:1 ~index:5 ~value:777);
  (match Controller.read_region ctl ~fid:1 ~stage:1 with
  | Some data -> Alcotest.(check int) "read back" 777 data.(5)
  | None -> Alcotest.fail "region");
  Alcotest.(check bool) "oob write rejected" false
    (Controller.write_region_word ctl ~fid:1 ~stage:1 ~index:70000 ~value:1);
  Alcotest.(check bool) "wrong stage rejected" false
    (Controller.write_region_word ctl ~fid:1 ~stage:0 ~index:0 ~value:1)

let test_auto_migration_copies_data () =
  (* A second cache arrives on the same stages under best-fit; app 1
     shrinks and relocates, and the controller copies its old contents
     into the new region. *)
  let ctlb =
    Controller.create ~scheme:Activermt_alloc.Allocator.Best_fit
      (Rmt.Device.create params)
  in
  ignore (admit_exn ctlb 1 cache);
  for i = 0 to 9 do
    ignore (Controller.write_region_word ctlb ~fid:1 ~stage:1 ~index:i ~value:(100 + i))
  done;
  let p = admit_exn ctlb 2 cache in
  Alcotest.(check (list int)) "app 1 reallocated" [ 1 ] p.Controller.reallocated;
  match Controller.read_region ctlb ~fid:1 ~stage:1 with
  | Some data ->
    Alcotest.(check int) "data migrated" 105 data.(5)
  | None -> Alcotest.fail "region"

let test_snapshot_contents () =
  let ctl =
    Controller.create ~scheme:Activermt_alloc.Allocator.Best_fit
      (Rmt.Device.create params)
  in
  ignore (admit_exn ctl 1 cache);
  ignore (Controller.write_region_word ctl ~fid:1 ~stage:1 ~index:3 ~value:42);
  ignore (admit_exn ctl 2 cache);
  match Controller.snapshot_of ctl ~fid:1 with
  | [] -> Alcotest.fail "snapshot taken"
  | snaps ->
    let stage1 = List.find (fun (s, _, _) -> s = 1) snaps in
    let _, _, data = stage1 in
    Alcotest.(check int) "snapshot has pre-move data" 42 data.(3)

let test_departure_expands () =
  let ctl =
    Controller.create ~scheme:Activermt_alloc.Allocator.Best_fit
      (Rmt.Device.create params)
  in
  ignore (admit_exn ctl 1 cache);
  ignore (admit_exn ctl 2 cache);
  let _timing, expanded = Controller.handle_departure ctl ~fid:1 in
  Alcotest.(check (list int)) "app 2 expanded" [ 2 ] expanded;
  Alcotest.(check bool) "tables removed" false
    (Activermt.Table.installed (Controller.tables ctl) ~fid:1)

let test_interactive_protocol () =
  let ctl =
    Controller.create ~mode:`Interactive
      ~scheme:Activermt_alloc.Allocator.Best_fit (Rmt.Device.create params)
  in
  ignore (admit_exn ctl 1 cache);
  let p = admit_exn ctl 2 cache in
  (match p.Controller.phase with
  | Controller.Awaiting_extraction { impacted } ->
    Alcotest.(check (list int)) "app 1 impacted" [ 1 ] impacted
  | Controller.Committed -> Alcotest.fail "should await extraction");
  let tables = Controller.tables ctl in
  Alcotest.(check bool) "app 1 quiesced" true (Activermt.Table.is_quiesced tables ~fid:1);
  Alcotest.(check bool) "app 2 not installed yet" false
    (Activermt.Table.installed tables ~fid:2);
  Alcotest.(check (list int)) "pending" [ 1 ] (Controller.pending_extraction ctl);
  Controller.complete_extraction ctl ~fid:1;
  Alcotest.(check (list int)) "none pending" [] (Controller.pending_extraction ctl);
  Alcotest.(check bool) "app 1 reactivated" false
    (Activermt.Table.is_quiesced tables ~fid:1);
  Alcotest.(check bool) "app 2 committed" true (Activermt.Table.installed tables ~fid:2);
  Alcotest.(check bool) "app 2 reactivated" false
    (Activermt.Table.is_quiesced tables ~fid:2)

let test_interactive_no_realloc_commits_directly () =
  let ctl = Controller.create ~mode:`Interactive (Rmt.Device.create params) in
  let p = admit_exn ctl 1 cache in
  Alcotest.(check bool) "committed immediately" true
    (p.Controller.phase = Controller.Committed)

let test_interactive_timeout () =
  let ctl =
    Controller.create ~mode:`Interactive ~extraction_timeout_s:0.5
      ~scheme:Activermt_alloc.Allocator.Best_fit (Rmt.Device.create params)
  in
  ignore (admit_exn ctl 1 cache);
  ignore (admit_exn ctl 2 cache);
  Controller.expire ctl ~elapsed_s:0.4;
  Alcotest.(check (list int)) "still pending" [ 1 ] (Controller.pending_extraction ctl);
  Controller.expire ctl ~elapsed_s:0.2;
  Alcotest.(check (list int)) "timed out" [] (Controller.pending_extraction ctl);
  Alcotest.(check bool) "app 2 force-committed" true
    (Activermt.Table.installed (Controller.tables ctl) ~fid:2)

let test_departure_unblocks_pending () =
  (* The impacted app departs instead of acking: the pending admission
     must commit without waiting for the timeout. *)
  let ctl =
    Controller.create ~mode:`Interactive
      ~scheme:Activermt_alloc.Allocator.Best_fit (Rmt.Device.create params)
  in
  ignore (admit_exn ctl 1 cache);
  ignore (admit_exn ctl 2 cache);
  Alcotest.(check (list int)) "waiting on app 1" [ 1 ] (Controller.pending_extraction ctl);
  ignore (Controller.handle_departure ctl ~fid:1);
  Alcotest.(check (list int)) "no longer pending" [] (Controller.pending_extraction ctl);
  Alcotest.(check bool) "app 2 committed" true
    (Activermt.Table.installed (Controller.tables ctl) ~fid:2)

let test_regions_packet () =
  let _, ctl = fresh () in
  ignore (admit_exn ctl 1 cache);
  (match Controller.regions_packet ctl ~fid:1 with
  | Some pkt -> (
    match Negotiate.granted_regions pkt with
    | Some _ -> ()
    | None -> Alcotest.fail "granted")
  | None -> Alcotest.fail "resident");
  Alcotest.(check bool) "absent fid" true (Controller.regions_packet ctl ~fid:9 = None)

let test_provision_log_and_costs () =
  let _, ctl = fresh () in
  ignore (admit_exn ctl 1 cache);
  ignore (admit_exn ctl 2 cache);
  let log = Controller.provision_log ctl in
  Alcotest.(check int) "two events" 2 (List.length log);
  List.iter
    (fun b ->
      Alcotest.(check bool) "positive table time" true (b.Cost_model.table_update_s > 0.0);
      Alcotest.(check bool) "total bounded" true (Cost_model.total b < 29.0))
    log

let test_privilege_lifecycle () =
  let _, ctl = fresh () in
  ignore (admit_exn ctl 1 cache);
  let tables = Controller.tables ctl in
  Alcotest.(check bool) "default unprivileged" false
    (Activermt.Table.is_privileged tables ~fid:1);
  Controller.grant_privilege ctl ~fid:1;
  Alcotest.(check bool) "granted (live reinstall)" true
    (Activermt.Table.is_privileged tables ~fid:1);
  Controller.revoke_privilege ctl ~fid:1;
  Alcotest.(check bool) "revoked" false
    (Activermt.Table.is_privileged tables ~fid:1);
  (* Privilege configured before admission sticks at install time. *)
  Controller.grant_privilege ctl ~fid:2;
  ignore (admit_exn ctl 2 cache);
  Alcotest.(check bool) "pre-configured" true
    (Activermt.Table.is_privileged tables ~fid:2)

let test_recirculation_limit_lifecycle () =
  let _, ctl = fresh () in
  ignore (admit_exn ctl 1 cache);
  let tables = Controller.tables ctl in
  Alcotest.(check (option int)) "unlimited by default" None
    (Activermt.Table.max_passes_of tables ~fid:1);
  Controller.limit_recirculation ctl ~fid:1 ~max_passes:2;
  Alcotest.(check (option int)) "capped" (Some 2)
    (Activermt.Table.max_passes_of tables ~fid:1);
  Alcotest.(check bool) "invalid cap raises" true
    (try
       Controller.limit_recirculation ctl ~fid:1 ~max_passes:0;
       false
     with Invalid_argument _ -> true)

let test_cost_model_breakdown () =
  let b =
    Cost_model.breakdown Cost_model.default ~allocation_s:0.01 ~entries_updated:100
      ~apps_touched:2 ~words_snapshotted:1000 ~notifications:3
  in
  Alcotest.(check (float 1e-9)) "allocation passthrough" 0.01 b.Cost_model.allocation_s;
  Alcotest.(check (float 1e-9)) "table = entries + installs"
    ((100.0 *. 2.5e-4) +. (2.0 *. 2.0e-2))
    b.Cost_model.table_update_s;
  Alcotest.(check (float 1e-12)) "snapshot" 1.0e-4 b.Cost_model.snapshot_s;
  Alcotest.(check bool) "p4 compile dwarfs provisioning" true
    (Cost_model.p4_compile_s > 20.0 *. Cost_model.total b)

let () =
  Alcotest.run "control"
    [
      ( "admission",
        [
          Alcotest.test_case "installs tables" `Quick test_admission_installs_tables;
          Alcotest.test_case "bad packet" `Quick test_bad_packet;
          Alcotest.test_case "rejection" `Quick test_rejection;
          Alcotest.test_case "new region zeroed" `Quick test_new_region_zeroed;
          Alcotest.test_case "control-plane rw" `Quick test_control_plane_write_read;
        ] );
      ( "reallocation",
        [
          Alcotest.test_case "auto migration" `Quick test_auto_migration_copies_data;
          Alcotest.test_case "snapshot contents" `Quick test_snapshot_contents;
          Alcotest.test_case "departure expands" `Quick test_departure_expands;
          Alcotest.test_case "interactive protocol" `Quick test_interactive_protocol;
          Alcotest.test_case "interactive no-realloc" `Quick
            test_interactive_no_realloc_commits_directly;
          Alcotest.test_case "interactive timeout" `Quick test_interactive_timeout;
          Alcotest.test_case "departure unblocks pending" `Quick
            test_departure_unblocks_pending;
          Alcotest.test_case "regions packet" `Quick test_regions_packet;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "provision log" `Quick test_provision_log_and_costs;
          Alcotest.test_case "privilege lifecycle" `Quick test_privilege_lifecycle;
          Alcotest.test_case "recirculation limit" `Quick test_recirculation_limit_lifecycle;
          Alcotest.test_case "breakdown" `Quick test_cost_model_breakdown;
        ] );
    ]
