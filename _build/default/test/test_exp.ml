(* Tests for the experiment machinery itself: the report formatter, the
   NetVRM-style baseline, and smoke runs of the figure drivers at tiny
   sizes (they must run, stay deterministic and uphold their own
   invariants — full-size outputs are the bench harness's job). *)

module Netvrm = Activermt_alloc.Netvrm
module Harness = Experiments.Harness
module Churn = Workload.Churn

let params = Rmt.Params.default

(* -- NetVRM-style baseline ------------------------------------------------ *)

let test_netvrm_page_rounding () =
  let t = Netvrm.create params in
  (match Netvrm.admit t ~fid:1 ~app_type:"cache" ~demand_blocks:3 with
  | Netvrm.Granted { pages; page_blocks; waste_blocks } ->
    Alcotest.(check int) "one page" 1 pages;
    Alcotest.(check int) "rounded to 4" 4 page_blocks;
    Alcotest.(check int) "one block wasted" 1 waste_blocks
  | _ -> Alcotest.fail "grant");
  match Netvrm.admit t ~fid:2 ~app_type:"cache" ~demand_blocks:16 with
  | Netvrm.Granted { page_blocks = 16; waste_blocks = 0; _ } -> ()
  | _ -> Alcotest.fail "power-of-two demand wastes nothing"

let test_netvrm_unregistered () =
  let t = Netvrm.create params in
  match Netvrm.admit t ~fid:1 ~app_type:"firewall" ~demand_blocks:1 with
  | Netvrm.Rejected_unregistered -> ()
  | _ -> Alcotest.fail "unregistered app type needs a recompile"

let test_netvrm_capacity () =
  (* Usable pool is 45% of 256 = 115 blocks per stage. *)
  let t = Netvrm.create params in
  let admitted = ref 0 in
  (try
     for fid = 1 to 100 do
       match Netvrm.admit t ~fid ~app_type:"cache" ~demand_blocks:8 with
       | Netvrm.Granted _ -> incr admitted
       | Netvrm.Rejected_capacity -> raise Exit
       | Netvrm.Rejected_unregistered -> Alcotest.fail "registered"
     done
   with Exit -> ());
  Alcotest.(check int) "14 x 8 = 112 <= 115" 14 !admitted;
  Alcotest.(check bool) "gross below availability" true
    (Netvrm.gross_utilization t <= 0.451)

let test_netvrm_depart () =
  let t = Netvrm.create params in
  ignore (Netvrm.admit t ~fid:1 ~app_type:"cache" ~demand_blocks:8);
  Alcotest.(check int) "resident" 1 (Netvrm.residents t);
  Alcotest.(check bool) "freed" true (Netvrm.depart t ~fid:1);
  Alcotest.(check bool) "idempotent" false (Netvrm.depart t ~fid:1);
  Alcotest.(check int) "empty" 0 (Netvrm.residents t)

let test_netvrm_vs_activermt_concurrency () =
  (* The headline comparison: same cache arrivals, ActiveRMT fits many
     more instances. *)
  let netvrm = Netvrm.create params in
  let alloc = Activermt_alloc.Allocator.create params in
  let n_net = ref 0 and n_armt = ref 0 in
  for fid = 1 to 500 do
    (match Netvrm.admit netvrm ~fid ~app_type:"cache" ~demand_blocks:1 with
    | Netvrm.Granted _ -> incr n_net
    | _ -> ());
    match
      Activermt_alloc.Allocator.admit alloc
        (Harness.arrival_of ~fid Churn.Cache ~block_bytes:1024)
    with
    | Activermt_alloc.Allocator.Admitted _ -> incr n_armt
    | Activermt_alloc.Allocator.Rejected _ -> ()
  done;
  Alcotest.(check bool) "order-of-magnitude advantage" true
    (!n_armt >= 2 * !n_net)

(* -- Report formatting ---------------------------------------------------- *)

let capture f =
  let buf = Buffer.create 256 in
  let old = Unix.dup Unix.stdout in
  let r, w = Unix.pipe () in
  Unix.dup2 w Unix.stdout;
  f ();
  flush stdout;
  Unix.dup2 old Unix.stdout;
  Unix.close w;
  Unix.close old;
  let bytes = Bytes.create 65536 in
  let n = Unix.read r bytes 0 65536 in
  Unix.close r;
  Buffer.add_subbytes buf bytes 0 n;
  Buffer.contents buf

let test_report_series_decimation () =
  let out =
    capture (fun () ->
        Experiments.Report.series ~every:3 ~columns:[ "i"; "v" ]
          (List.init 10 (fun i -> (i, [ string_of_int (i * i) ]))))
  in
  let lines = String.split_on_char '\n' (String.trim out) in
  (* header + rows 0,3,6,9 (9 is also the last). *)
  Alcotest.(check int) "header + 4 rows" 5 (List.length lines);
  Alcotest.(check bool) "last row kept" true (List.mem "9\t81" lines)

let test_report_cells () =
  Alcotest.(check string) "float" "0.5" (Experiments.Report.float_cell 0.5);
  Alcotest.(check string) "int" "42" (Experiments.Report.int_cell 42)

(* -- Harness drivers smoke ------------------------------------------------ *)

let test_harness_deterministic () =
  let mk () =
    let rng = Stdx.Prng.create ~seed:77 in
    let trace = Churn.generate Churn.default_config ~epochs:30 rng in
    (Harness.run ~params trace).Harness.epochs
    |> List.map (fun e -> (e.Harness.utilization, e.Harness.residents))
  in
  Alcotest.(check bool) "same run twice" true (mk () = mk ())

let test_case_study_zipf_controls_hit_rate () =
  (* A heavier-tailed workload must lower the stable hit rate. *)
  let run exponent =
    let config =
      {
        Experiments.Case_study.default_config with
        Experiments.Case_study.request_rate_pps = 2000.0;
        zipf_exponent = exponent;
        hh_window_s = 0.5;
      }
    in
    let r = Experiments.Case_study.run_single ~config params in
    let t = List.hd r.Experiments.Case_study.tenants in
    Experiments.Case_study.hit_rate_window t ~lo_ms:6000 ~hi_ms:8000
  in
  let skewed = run 1.2 and flat = run 0.8 in
  Alcotest.(check bool) "skew helps the cache" true (skewed > flat)

let () =
  Alcotest.run "exp"
    [
      ( "netvrm baseline",
        [
          Alcotest.test_case "page rounding" `Quick test_netvrm_page_rounding;
          Alcotest.test_case "unregistered" `Quick test_netvrm_unregistered;
          Alcotest.test_case "capacity" `Quick test_netvrm_capacity;
          Alcotest.test_case "depart" `Quick test_netvrm_depart;
          Alcotest.test_case "concurrency gap" `Quick test_netvrm_vs_activermt_concurrency;
        ] );
      ( "report",
        [
          Alcotest.test_case "series decimation" `Quick test_report_series_decimation;
          Alcotest.test_case "cells" `Quick test_report_cells;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "harness deterministic" `Quick test_harness_deterministic;
          Alcotest.test_case "zipf controls hit rate" `Slow
            test_case_study_zipf_controls_hit_rate;
        ] );
    ]
