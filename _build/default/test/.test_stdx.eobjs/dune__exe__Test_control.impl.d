test/test_control.ml: Activermt Activermt_alloc Activermt_apps Activermt_client Activermt_control Alcotest Array List Rmt
