test/test_exp.ml: Activermt_alloc Alcotest Buffer Bytes Experiments List Rmt Stdx String Unix Workload
