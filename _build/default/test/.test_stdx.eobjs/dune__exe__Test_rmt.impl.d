test/test_rmt.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Rmt
