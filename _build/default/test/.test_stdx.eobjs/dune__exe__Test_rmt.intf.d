test/test_rmt.mli:
