test/test_p4gen.mli:
