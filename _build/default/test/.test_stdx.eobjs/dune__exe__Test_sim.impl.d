test/test_sim.ml: Activermt Activermt_apps Activermt_client Activermt_compiler Activermt_control Alcotest Array List Netsim Option Printf Rmt Workload
