test/test_client.ml: Activermt Activermt_apps Activermt_client Activermt_compiler Activermt_control Alcotest Array List Option Rmt Workload
