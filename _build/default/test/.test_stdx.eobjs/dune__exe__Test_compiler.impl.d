test/test_compiler.ml: Activermt Activermt_apps Activermt_compiler Alcotest Array List QCheck QCheck_alcotest Rmt
