test/test_compiler.ml: Activermt Activermt_apps Activermt_compiler Alcotest Array Hashtbl List Option QCheck QCheck_alcotest Rmt
