test/test_integration.ml: Activermt Activermt_alloc Activermt_apps Activermt_client Activermt_compiler Activermt_control Alcotest Array Experiments List Option Rmt Stdx Workload
