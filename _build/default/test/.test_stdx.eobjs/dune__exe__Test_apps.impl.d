test/test_apps.ml: Activermt Activermt_apps Activermt_client Activermt_compiler Activermt_control Alcotest Array List Option Printf Rmt Stdx Workload
