test/test_alloc.ml: Activermt Activermt_alloc Activermt_apps Activermt_compiler Alcotest Array Gen List Option Printf QCheck QCheck_alcotest Rmt
