test/test_alloc.ml: Activermt Activermt_alloc Activermt_apps Activermt_compiler Alcotest Array Gen List Option QCheck QCheck_alcotest Rmt
