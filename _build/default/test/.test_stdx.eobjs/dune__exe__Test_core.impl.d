test/test_core.ml: Activermt Activermt_apps Alcotest Array Bytes Gen List Option Printf QCheck QCheck_alcotest Rmt Workload
