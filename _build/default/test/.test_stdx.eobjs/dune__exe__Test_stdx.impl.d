test/test_stdx.ml: Alcotest Array Fun Gen List QCheck QCheck_alcotest Stdx
