test/test_workload.ml: Alcotest Array Hashtbl List Stdx Workload
