test/test_p4gen.ml: Activermt Activermt_p4gen Alcotest Array List Printf Rmt String
