(* Tests for the client compiler: constraint extraction (the paper's
   LB/UB/B example for Listing 1), mutant enumeration and synthesis. *)

module Spec = Activermt_compiler.Spec
module Mutant = Activermt_compiler.Mutant
module P = Activermt.Program
module I = Activermt.Instr

let params = Rmt.Params.default
let cache_spec = Spec.analyze Activermt_apps.Cache.query_program
let hh_spec = Spec.analyze Activermt_apps.Heavy_hitter.program
let lb_spec = Spec.analyze Activermt_apps.Cheetah_lb.syn_program

(* -- Spec ---------------------------------------------------------------- *)

let test_cache_constraints_match_paper () =
  (* Section 4.2: accesses at (1-based) 2, 5, 9; minimum distances
     B = [1 3 4] expressed here as gaps [2;3;4] (our gaps.(0) is the
     1-based position of the first access). *)
  Alcotest.(check (array int)) "accesses" [| 1; 4; 8 |] cache_spec.Spec.accesses;
  Alcotest.(check (array int)) "gaps" [| 2; 3; 4 |] cache_spec.Spec.gaps;
  Alcotest.(check int) "length" 11 cache_spec.Spec.length;
  Alcotest.(check (array int)) "LB = [2 5 9]" [| 2; 5; 9 |]
    (Spec.lower_bounds cache_spec)

let test_cache_upper_bounds_with_rts () =
  (* Paper: with RTS restricted to the ingress pipeline the upper bound
     becomes [4 7 11]. *)
  Alcotest.(check (array int)) "UB with RTS" [| 4; 7; 11 |]
    (Spec.upper_bounds cache_spec ~n_stages:20 ~ingress:10 ~max_passes:1)

let test_cache_upper_bounds_without_rts () =
  (* Paper: without the RTS constraint, UB = [11 14 18]. *)
  let no_rts = { cache_spec with Spec.rts = None } in
  Alcotest.(check (array int)) "UB without RTS" [| 11; 14; 18 |]
    (Spec.upper_bounds no_rts ~n_stages:20 ~ingress:10 ~max_passes:1)

let test_no_access_spec () =
  let p = P.v (P.plain [ I.Nop; I.Return ]) in
  let s = Spec.analyze p in
  Alcotest.(check (array int)) "no accesses" [||] s.Spec.accesses;
  Alcotest.(check (array int)) "no UBs" [||]
    (Spec.upper_bounds s ~n_stages:20 ~ingress:10 ~max_passes:1)

let test_request_roundtrip () =
  let req =
    Spec.to_request ~elastic:true ~demand_blocks:[| 1; 1; 1 |] cache_spec
  in
  Alcotest.(check int) "length" 11 req.Activermt.Packet.prog_length;
  Alcotest.(check (option int)) "rts" (Some 7) req.Activermt.Packet.rts_position;
  let back = Spec.of_request req in
  Alcotest.(check (array int)) "accesses survive" cache_spec.Spec.accesses
    back.Spec.accesses;
  Alcotest.(check (array int)) "gaps survive" cache_spec.Spec.gaps back.Spec.gaps;
  Alcotest.(check int) "length survives" cache_spec.Spec.length back.Spec.length;
  Alcotest.(check (option int)) "rts survives" cache_spec.Spec.rts back.Spec.rts

let test_request_demand_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Spec.to_request ~elastic:true ~demand_blocks:[| 1 |] cache_spec);
       false
     with Invalid_argument _ -> true)

(* -- Mutant enumeration -------------------------------------------------- *)

let test_base_passes () =
  Alcotest.(check int) "cache 1 pass" 1 (Mutant.base_passes params cache_spec);
  Alcotest.(check int) "hh 2 passes" 2 (Mutant.base_passes params hh_spec);
  Alcotest.(check int) "lb 2 passes" 2 (Mutant.base_passes params lb_spec)

let test_identity_mutant () =
  let m = Mutant.identity cache_spec in
  Alcotest.(check (array int)) "no shift" [| 0; 0; 0 |] m.Mutant.shifts;
  Alcotest.(check (array int)) "compact stages" [| 1; 4; 8 |] m.Mutant.stages;
  Alcotest.(check int) "one pass" 1 m.Mutant.passes;
  Alcotest.(check bool) "no port recirc" false m.Mutant.port_recirc

let test_cache_mc_count () =
  (* With the total-shift RTS bound, shifts are non-decreasing triples
     bounded by 2: C(5,3) = 10 placements. *)
  Alcotest.(check int) "10 mc mutants" 10
    (Mutant.count params Mutant.Most_constrained cache_spec)

let test_hh_mc_single_mutant () =
  (* The paper's most-constrained heavy hitter also has exactly one
     placement. *)
  Alcotest.(check int) "1 mc mutant" 1
    (Mutant.count params Mutant.Most_constrained hh_spec)

let test_lc_exceeds_mc () =
  List.iter
    (fun spec ->
      let mc = Mutant.count params Mutant.Most_constrained spec in
      let lc = Mutant.count params Mutant.Least_constrained spec in
      Alcotest.(check bool) "lc >= mc" true (lc >= mc))
    [ cache_spec; hh_spec; lb_spec ]

let test_enumerate_deterministic () =
  let a = Mutant.enumerate ~limit:100 params Mutant.Least_constrained lb_spec in
  let b = Mutant.enumerate ~limit:100 params Mutant.Least_constrained lb_spec in
  Alcotest.(check bool) "same list" true
    (List.for_all2 (fun x y -> x.Mutant.shifts = y.Mutant.shifts) a b)

let test_enumerate_limit_and_identity () =
  let ms = Mutant.enumerate ~limit:10 params Mutant.Least_constrained lb_spec in
  Alcotest.(check bool) "capped" true (List.length ms <= 10);
  match ms with
  | first :: _ ->
    Alcotest.(check (array int)) "identity first" [| 0; 0; 0; 0 |] first.Mutant.shifts
  | [] -> Alcotest.fail "empty"

let test_subsample_is_diverse () =
  (* The stride sample must include mutants that shift the *first*
     access, not only a lexicographic prefix. *)
  let ms = Mutant.enumerate ~limit:64 params Mutant.Least_constrained lb_spec in
  Alcotest.(check bool) "first access shifted somewhere" true
    (List.exists (fun m -> m.Mutant.shifts.(0) > 0) ms)

let mutant_respects_constraints spec m =
  let lb = Spec.lower_bounds spec in
  let shifts = m.Mutant.shifts in
  let positions = m.Mutant.positions in
  let m_count = Array.length positions in
  let nondecreasing = ref true in
  for i = 1 to m_count - 1 do
    if shifts.(i) < shifts.(i - 1) then nondecreasing := false
  done;
  let gaps_ok = ref true in
  for i = 1 to m_count - 1 do
    if positions.(i) - positions.(i - 1) < spec.Spec.gaps.(i) then gaps_ok := false
  done;
  let lb_ok = ref true in
  Array.iteri (fun i p -> if p + 1 < lb.(i) then lb_ok := false) positions;
  !nondecreasing && !gaps_ok && !lb_ok

let test_all_mutants_valid () =
  List.iter
    (fun (spec, policy) ->
      let ms = Mutant.enumerate ~limit:2000 params policy spec in
      Alcotest.(check bool) "all satisfy constraints" true
        (List.for_all (mutant_respects_constraints spec) ms))
    [
      (cache_spec, Mutant.Most_constrained);
      (cache_spec, Mutant.Least_constrained);
      (hh_spec, Mutant.Least_constrained);
      (lb_spec, Mutant.Most_constrained);
    ]

let test_no_access_single_mutant () =
  let p = P.v (P.plain [ I.Nop; I.Return ]) in
  let s = Spec.analyze p in
  Alcotest.(check int) "identity only" 1
    (Mutant.count params Mutant.Most_constrained s)

(* Random program specs: strictly increasing access positions with a small
   tail; every enumerated mutant must satisfy the constraint system. *)
let spec_gen =
  QCheck.Gen.(
    let* m = int_range 1 5 in
    let* gaps = list_repeat m (int_range 1 3) in
    let positions =
      List.fold_left
        (fun acc g -> (List.hd acc + g) :: acc)
        [ 0 ]
        (match gaps with [] -> [] | _ :: t -> t)
      |> List.rev
    in
    let* lead = int_range 0 2 in
    let positions = List.map (fun p -> p + lead) positions in
    let last = List.fold_left max 0 positions in
    let* tail = int_range 1 3 in
    let len = last + tail in
    let lines =
      List.init len (fun i -> if List.mem i positions then I.Mem_read else I.Nop)
    in
    return (Spec.analyze (P.v (P.plain lines))))

let prop_mutants_valid =
  QCheck.Test.make ~name:"random specs: every mutant satisfies constraints"
    ~count:100 (QCheck.make spec_gen) (fun spec ->
      let ms = Mutant.enumerate ~limit:500 params Mutant.Least_constrained spec in
      ms <> [] && List.for_all (mutant_respects_constraints spec) ms)

let same_mutant_list a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         x.Mutant.shifts = y.Mutant.shifts
         && x.Mutant.positions = y.Mutant.positions
         && x.Mutant.stages = y.Mutant.stages
         && x.Mutant.passes = y.Mutant.passes
         && x.Mutant.port_recirc = y.Mutant.port_recirc)
       a b

(* The single-pass enumeration (count-while-buffering plus the memoized
   count) must reproduce the seed's two-pass candidate list exactly; the
   second call exercises the warm (memoized-count) code path. *)
let prop_enumerate_matches_reference =
  QCheck.Test.make ~name:"single-pass enumerate = two-pass reference (cold+warm)"
    ~count:100
    QCheck.(pair (make spec_gen) (int_range 1 200))
    (fun (spec, limit) ->
      List.for_all
        (fun policy ->
          let reference = Mutant.enumerate_reference ~limit params policy spec in
          let cold = Mutant.enumerate ~limit params policy spec in
          let warm = Mutant.enumerate ~limit params policy spec in
          same_mutant_list reference cold && same_mutant_list reference warm)
        [ Mutant.Most_constrained; Mutant.Least_constrained ])

let test_enumerate_matches_reference_large_space () =
  (* hh/lc's feasibility region (~231k placements) overflows the
     single-pass keep buffer, forcing the fallback materialize walk; lb/lc
     exercises the strided subsample within the buffer. *)
  List.iter
    (fun (spec, limit) ->
      let reference = Mutant.enumerate_reference ~limit params Mutant.Least_constrained spec in
      let fast = Mutant.enumerate ~limit params Mutant.Least_constrained spec in
      let warm = Mutant.enumerate ~limit params Mutant.Least_constrained spec in
      Alcotest.(check bool) "cold matches reference" true (same_mutant_list reference fast);
      Alcotest.(check bool) "warm matches reference" true (same_mutant_list reference warm))
    [ (hh_spec, 128); (lb_spec, 64) ]

(* The seed's hashtable merge, as the oracle for the flat-array version. *)
let demand_by_stage_oracle (m : Mutant.t) ~demand_blocks =
  let tbl = Hashtbl.create 8 in
  Array.iteri
    (fun i s ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl s) in
      Hashtbl.replace tbl s (max cur demand_blocks.(i)))
    m.Mutant.stages;
  Hashtbl.fold (fun s d acc -> (s, d) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let test_demand_arrays_match_oracle () =
  List.iter
    (fun spec ->
      (* Unequal per-access demands so same-stage merging by [max] is
         actually exercised (hh revisits stages across passes). *)
      let demand_blocks = Array.mapi (fun i _ -> (i mod 3) + 1) spec.Spec.accesses in
      List.iter
        (fun m ->
          let stages, demands = Mutant.demand_by_stage_arrays m ~demand_blocks in
          let got = Array.to_list (Array.mapi (fun i s -> (s, demands.(i))) stages) in
          Alcotest.(check (list (pair int int)))
            "flat arrays match the hashtable oracle"
            (demand_by_stage_oracle m ~demand_blocks)
            got;
          Alcotest.(check (list (pair int int)))
            "assoc-list view matches too"
            (Mutant.demand_by_stage m ~demand_blocks)
            got)
        (Mutant.enumerate ~limit:50 params Mutant.Least_constrained spec))
    [ cache_spec; hh_spec; lb_spec ]

let test_upper_bounds_monotone_in_passes () =
  List.iter
    (fun spec ->
      let ub1 = Spec.upper_bounds spec ~n_stages:20 ~ingress:10 ~max_passes:2 in
      let ub2 = Spec.upper_bounds spec ~n_stages:20 ~ingress:10 ~max_passes:3 in
      Array.iteri
        (fun i u -> Alcotest.(check bool) "more passes, looser bounds" true (ub2.(i) >= u))
        ub1)
    [ cache_spec; hh_spec; lb_spec ]

(* -- Synthesis ----------------------------------------------------------- *)

let test_synthesize_identity () =
  let m = Mutant.identity cache_spec in
  let p = Mutant.synthesize cache_spec m in
  Alcotest.(check bool) "identity synthesis is the original" true
    (P.equal p cache_spec.Spec.program)

let test_synthesize_moves_accesses () =
  let ms = Mutant.enumerate params Mutant.Most_constrained cache_spec in
  List.iter
    (fun m ->
      let p = Mutant.synthesize cache_spec m in
      Alcotest.(check (list int)) "accesses land on mutant positions"
        (Array.to_list m.Mutant.positions)
        (P.memory_access_positions p);
      match P.validate p with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (P.error_to_string e))
    ms

let test_synthesize_preserves_instruction_sequence () =
  (* NOP insertion only: the non-NOP instruction sequence is unchanged. *)
  let ms = Mutant.enumerate ~limit:50 params Mutant.Least_constrained cache_spec in
  let strip (p : P.t) =
    Array.to_list p.P.lines
    |> List.filter (fun l -> l.P.instr <> I.Nop)
    |> List.map (fun l -> l.P.instr)
  in
  let original = strip cache_spec.Spec.program in
  List.iter
    (fun m ->
      let p = Mutant.synthesize cache_spec m in
      Alcotest.(check bool) "same non-NOP sequence" true (strip p = original))
    ms

let test_demand_by_stage_max_merge () =
  let m = Mutant.identity hh_spec in
  let demand = Mutant.demand_by_stage m ~demand_blocks:[| 16; 16; 16; 16; 16; 16 |] in
  (* The threshold read (stage 15, pass 1) and write (stage 15, pass 2)
     merge by max, leaving 5 distinct stages. *)
  Alcotest.(check int) "five stages" 5 (List.length demand);
  Alcotest.(check bool) "each 16 blocks" true
    (List.for_all (fun (_, d) -> d = 16) demand)

let test_hh_threshold_stage_aligned () =
  let m = Mutant.identity hh_spec in
  let s = m.Mutant.stages in
  Alcotest.(check int) "read and write share a stage"
    s.(Activermt_apps.Heavy_hitter.threshold_access)
    s.(3)

let () =
  Alcotest.run "compiler"
    [
      ( "spec",
        [
          Alcotest.test_case "cache constraints (paper)" `Quick
            test_cache_constraints_match_paper;
          Alcotest.test_case "UB with RTS = [4 7 11]" `Quick
            test_cache_upper_bounds_with_rts;
          Alcotest.test_case "UB without RTS = [11 14 18]" `Quick
            test_cache_upper_bounds_without_rts;
          Alcotest.test_case "no-access spec" `Quick test_no_access_spec;
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "demand mismatch" `Quick test_request_demand_mismatch;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "base passes" `Quick test_base_passes;
          Alcotest.test_case "identity" `Quick test_identity_mutant;
          Alcotest.test_case "cache mc count" `Quick test_cache_mc_count;
          Alcotest.test_case "hh single mc mutant" `Quick test_hh_mc_single_mutant;
          Alcotest.test_case "lc >= mc" `Quick test_lc_exceeds_mc;
          Alcotest.test_case "deterministic" `Quick test_enumerate_deterministic;
          Alcotest.test_case "limit + identity first" `Quick
            test_enumerate_limit_and_identity;
          Alcotest.test_case "subsample diverse" `Quick test_subsample_is_diverse;
          Alcotest.test_case "all mutants valid" `Quick test_all_mutants_valid;
          Alcotest.test_case "no-access single mutant" `Quick
            test_no_access_single_mutant;
          QCheck_alcotest.to_alcotest prop_mutants_valid;
          QCheck_alcotest.to_alcotest prop_enumerate_matches_reference;
          Alcotest.test_case "single-pass oracle, large spaces" `Quick
            test_enumerate_matches_reference_large_space;
          Alcotest.test_case "demand arrays oracle" `Quick
            test_demand_arrays_match_oracle;
          Alcotest.test_case "UB monotone in passes" `Quick
            test_upper_bounds_monotone_in_passes;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "identity" `Quick test_synthesize_identity;
          Alcotest.test_case "moves accesses" `Quick test_synthesize_moves_accesses;
          Alcotest.test_case "preserves instruction sequence" `Quick
            test_synthesize_preserves_instruction_sequence;
          Alcotest.test_case "demand max merge" `Quick test_demand_by_stage_max_merge;
          Alcotest.test_case "hh threshold alignment" `Quick
            test_hh_threshold_stage_aligned;
        ] );
    ]
