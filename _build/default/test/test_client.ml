(* Tests for the client shim: the protocol state machine, negotiation
   packets, mutant-recovering synthesis, and the cache / heavy-hitter
   service clients running against a real controller+runtime. *)

module Shim = Activermt_client.Shim
module Negotiate = Activermt_client.Negotiate
module Synthesis = Activermt_client.Synthesis
module Cache_client = Activermt_client.Cache_client
module Hh_client = Activermt_client.Hh_client
module Controller = Activermt_control.Controller
module Mutant = Activermt_compiler.Mutant
module Kv = Workload.Kv
module Pkt = Activermt.Packet
module RT = Activermt.Runtime

let params = Rmt.Params.default
let policy = Mutant.Most_constrained

(* -- Shim state machine -------------------------------------------------- *)

let test_shim_happy_path () =
  let s = Shim.create ~fid:1 in
  Alcotest.(check bool) "starts idle" true (Shim.state s = Shim.Idle);
  Alcotest.(check bool) "cannot transmit" false (Shim.can_transmit s);
  let step e expected =
    match Shim.transition s e with
    | Ok st -> Alcotest.(check bool) "state" true (st = expected)
    | Error m -> Alcotest.fail m
  in
  step Shim.Request_sent Shim.Negotiating;
  step Shim.Response_granted Shim.Operational;
  Alcotest.(check bool) "can transmit" true (Shim.can_transmit s);
  step Shim.Realloc_notified Shim.Memory_management;
  Alcotest.(check bool) "paused" false (Shim.can_transmit s);
  step Shim.Extraction_done Shim.Operational;
  step Shim.Released Shim.Idle

let test_shim_rejection_path () =
  let s = Shim.create ~fid:1 in
  ignore (Shim.transition s Shim.Request_sent);
  (match Shim.transition s Shim.Response_rejected with
  | Ok Shim.Idle -> ()
  | _ -> Alcotest.fail "rejected -> idle");
  ()

let test_shim_illegal_transitions () =
  let s = Shim.create ~fid:1 in
  (match Shim.transition s Shim.Response_granted with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "grant without request");
  Alcotest.(check bool) "state unchanged" true (Shim.state s = Shim.Idle);
  ignore (Shim.transition s Shim.Request_sent);
  match Shim.transition s Shim.Realloc_notified with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "realloc while negotiating"

let test_shim_seq_monotonic () =
  let s = Shim.create ~fid:1 in
  Alcotest.(check int) "0" 0 (Shim.next_seq s);
  Alcotest.(check int) "1" 1 (Shim.next_seq s);
  Alcotest.(check int) "current" 2 (Shim.seq s)

(* -- Negotiate ----------------------------------------------------------- *)

let test_request_packet_flags () =
  let pkt = Negotiate.request_packet ~fid:5 ~seq:3 Activermt_apps.Cache.service in
  Alcotest.(check bool) "elastic" true pkt.Pkt.flags.Pkt.elastic;
  Alcotest.(check bool) "virtual" true pkt.Pkt.flags.Pkt.virtual_addressing;
  let pkt = Negotiate.request_packet ~fid:5 ~seq:3 Activermt_apps.Cheetah_lb.service in
  Alcotest.(check bool) "lb inelastic" false pkt.Pkt.flags.Pkt.elastic

let test_ack_and_release_packets () =
  let ack = Negotiate.extraction_done_packet ~fid:5 in
  Alcotest.(check bool) "ack set" true ack.Pkt.flags.Pkt.ack;
  let rel = Negotiate.release_packet ~fid:5 in
  Alcotest.(check bool) "ack clear" false rel.Pkt.flags.Pkt.ack;
  Alcotest.(check bool) "both bare" true
    (ack.Pkt.payload = Pkt.Bare && rel.Pkt.payload = Pkt.Bare)

let test_granted_regions_filters () =
  let granted =
    {
      Pkt.fid = 1;
      seq = 0;
      flags = Pkt.no_flags;
      payload = Pkt.Response { status = Pkt.Granted; regions = Array.make 20 None };
    }
  in
  Alcotest.(check bool) "granted -> Some" true
    (Negotiate.granted_regions granted <> None);
  let rejected =
    {
      granted with
      Pkt.payload = Pkt.Response { status = Pkt.Rejected; regions = Array.make 20 None };
    }
  in
  Alcotest.(check bool) "rejected -> None" true
    (Negotiate.granted_regions rejected = None)

(* -- Synthesis against a live controller --------------------------------- *)

let admit ctl fid app =
  match Controller.handle_request ctl (Negotiate.request_packet ~fid ~seq:0 app) with
  | Ok p -> Option.get (Negotiate.granted_regions p.Controller.response)
  | Error _ -> Alcotest.fail "admission failed"

let test_synthesis_identity_grant () =
  let ctl = Controller.create (Rmt.Device.create params) in
  let regions = admit ctl 1 Activermt_apps.Cache.service in
  match Synthesis.match_response params ~policy Activermt_apps.Cache.service regions with
  | Error e -> Alcotest.fail e
  | Ok g ->
    Alcotest.(check (array int)) "identity mutant" [| 0; 0; 0 |]
      g.Synthesis.mutant.Mutant.shifts;
    Alcotest.(check int) "min words = full stage" 65536 (Synthesis.min_access_words g)

let test_synthesis_shifted_grant () =
  (* Worst-fit places later caches on shifted stages; the client must
     recover the exact mutant from the granted stage set. *)
  let ctl = Controller.create (Rmt.Device.create params) in
  for fid = 1 to 3 do
    ignore (admit ctl fid Activermt_apps.Cache.service)
  done;
  let regions = admit ctl 4 Activermt_apps.Cache.service in
  match Synthesis.match_response params ~policy Activermt_apps.Cache.service regions with
  | Error e -> Alcotest.fail e
  | Ok g ->
    let stages = Array.to_list g.Synthesis.mutant.Mutant.stages in
    let granted =
      List.filteri (fun _ r -> r <> None) (Array.to_list regions) |> List.length
    in
    Alcotest.(check int) "three access stages" 3 granted;
    List.iter
      (fun s ->
        Alcotest.(check bool) "stage has a region" true (regions.(s) <> None))
      stages

let test_synthesis_wrong_regions () =
  let regions = Array.make 20 None in
  regions.(0) <- Some { Pkt.start_word = 0; n_words = 256 };
  match Synthesis.match_response params ~policy Activermt_apps.Cache.service regions with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "matched impossible stage set"

(* -- Cache client end to end --------------------------------------------- *)

let make_cache_client ctl fid =
  let regions = admit ctl fid Activermt_apps.Cache.service in
  match Cache_client.create params ~policy ~fid ~regions with
  | Ok cc -> cc
  | Error e -> Alcotest.fail e

let test_cache_client_roundtrip () =
  let ctl = Controller.create (Rmt.Device.create params) in
  let cc = make_cache_client ctl 1 in
  let tables = Controller.tables ctl in
  let meta = RT.meta ~src:1 ~dst:2 () in
  let key = Kv.key_of_rank 123 in
  let miss = RT.run tables ~meta (Cache_client.query_packet cc ~seq:0 key) in
  Alcotest.(check bool) "miss forwards" true
    (match miss.RT.decision with RT.Forward _ -> true | _ -> false);
  let st = RT.run tables ~meta (Cache_client.populate_packet cc ~seq:1 key ~value:777) in
  Alcotest.(check bool) "populate acks" true
    (st.RT.decision = RT.Return_to_sender);
  let hit = RT.run tables ~meta (Cache_client.query_packet cc ~seq:2 key) in
  Alcotest.(check bool) "hit returns" true (hit.RT.decision = RT.Return_to_sender);
  Alcotest.(check int) "value" 777 hit.RT.args_out.(3)

let test_cache_client_shifted_mutant_roundtrip () =
  (* The fourth cache lands on shifted stages; its synthesized programs
     must still produce hits. *)
  let ctl = Controller.create (Rmt.Device.create params) in
  let _cc1 = make_cache_client ctl 1 in
  let _cc2 = make_cache_client ctl 2 in
  let _cc3 = make_cache_client ctl 3 in
  let cc4 = make_cache_client ctl 4 in
  Alcotest.(check bool) "shifted placement" true
    (Array.exists (fun s -> s > 0) (Cache_client.granted cc4).Synthesis.mutant.Mutant.shifts
    || (Cache_client.granted cc4).Synthesis.mutant.Mutant.shifts = [| 0; 0; 0 |]);
  let tables = Controller.tables ctl in
  let meta = RT.meta ~src:1 ~dst:2 () in
  let key = Kv.key_of_rank 5 in
  ignore (RT.run tables ~meta (Cache_client.populate_packet cc4 ~seq:0 key ~value:31337));
  let hit = RT.run tables ~meta (Cache_client.query_packet cc4 ~seq:1 key) in
  Alcotest.(check bool) "hit on shifted mutant" true
    (hit.RT.decision = RT.Return_to_sender);
  Alcotest.(check int) "value" 31337 hit.RT.args_out.(3)

let test_cache_client_wrong_key_misses () =
  let ctl = Controller.create (Rmt.Device.create params) in
  let cc = make_cache_client ctl 1 in
  let tables = Controller.tables ctl in
  let meta = RT.meta ~src:1 ~dst:2 () in
  ignore
    (RT.run tables ~meta
       (Cache_client.populate_packet cc ~seq:0 (Kv.key_of_rank 1) ~value:1));
  (* A different key hashing to a different bucket (or same bucket with a
     different stored key) must miss. *)
  let other = Kv.key_of_rank 999 in
  let r = RT.run tables ~meta (Cache_client.query_packet cc ~seq:1 other) in
  Alcotest.(check bool) "miss" true
    (match r.RT.decision with RT.Forward _ -> true | _ -> false)

let test_plan_population_dedups_buckets () =
  let ctl = Controller.create (Rmt.Device.create params) in
  let cc = make_cache_client ctl 1 in
  let objects = List.init 200 (fun r -> (Kv.key_of_rank r, r)) in
  let planned = Cache_client.plan_population cc ~objects in
  let buckets = List.map (fun (k, _) -> Cache_client.bucket_of_key cc k) planned in
  Alcotest.(check int) "unique buckets" (List.length buckets)
    (List.length (List.sort_uniq compare buckets));
  Alcotest.(check bool) "keeps most-popular first" true
    (List.mem_assoc (Kv.key_of_rank 0) planned)

let test_reply_value () =
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args:[| 0; 0; 0; 42 |] Activermt_apps.Cache.query_program in
  Alcotest.(check (option int)) "value slot" (Some 42) (Cache_client.reply_value pkt);
  let bare = { Pkt.fid = 1; seq = 0; flags = Pkt.no_flags; payload = Pkt.Bare } in
  Alcotest.(check (option int)) "bare has none" None (Cache_client.reply_value bare)

(* -- Load-balancer client ------------------------------------------------- *)

module Lb_client = Activermt_client.Lb_client

let make_lb_client ctl fid =
  Controller.grant_privilege ctl ~fid;
  let regions = admit ctl fid Activermt_apps.Cheetah_lb.service in
  match Lb_client.create params ~policy ~fid ~regions with
  | Ok lb -> lb
  | Error e -> Alcotest.fail e

let run_lb_flows ctl lb =
  let tables = Controller.tables ctl in
  let ports = Array.init 8 (fun i -> 700 + i) in
  List.iter
    (fun (_seq, pkt) ->
      let r = RT.run tables ~meta:(RT.meta ~src:1 ~dst:0 ()) pkt in
      Alcotest.(check bool) "pool write acked" true
        (r.RT.decision = RT.Return_to_sender))
    (Lb_client.pool_write_packets lb ~ports);
  let salt = 0xBEEF in
  let consistent = ref 0 in
  for flow = 1 to 12 do
    let flow_key = [| 0x0A000000 + flow; flow * 131 |] in
    let meta = { RT.src = 1; dst = 999; flow_key } in
    let syn = RT.run tables ~meta (Lb_client.syn_packet lb ~seq:flow ~salt) in
    let chosen =
      match syn.RT.decision with
      | RT.Forward d -> d
      | _ -> Alcotest.fail "SYN must forward to a backend"
    in
    Alcotest.(check bool) "backend from the pool" true (chosen >= 700 && chosen < 708);
    let cookie = syn.RT.args_out.(Activermt_apps.Cheetah_lb.arg_cookie) in
    let flow_r =
      RT.run tables ~meta (Lb_client.flow_packet lb ~seq:0 ~salt ~cookie)
    in
    match flow_r.RT.decision with
    | RT.Forward d when d = chosen -> incr consistent
    | _ -> ()
  done;
  Alcotest.(check int) "all flows follow their SYN's backend" 12 !consistent

let test_lb_client_end_to_end () =
  let ctl = Controller.create (Rmt.Device.create params) in
  run_lb_flows ctl (make_lb_client ctl 21)

let test_lb_client_shifted_mutant () =
  (* Crowd the switch so a later LB lands on a shifted mutant; its flow
     program must still hash on the SYN's stage. *)
  let ctl = Controller.create (Rmt.Device.create params) in
  let _first = make_lb_client ctl 21 in
  let second = make_lb_client ctl 22 in
  Alcotest.(check bool) "placement differs from compact" true
    (Array.exists
       (fun s -> s > 0)
       (Lb_client.granted second).Synthesis.mutant.Mutant.shifts);
  run_lb_flows ctl second

(* -- Memsync driver (pure state machine) ----------------------------------- *)

module Memsync_driver = Activermt_client.Memsync_driver

let test_driver_lifecycle () =
  let d =
    Memsync_driver.create ~fid:1 ~stages:[ 2; 5 ] ~count:3 ~timeout_s:1.0
      Memsync_driver.Read
  in
  Alcotest.(check int) "all outstanding" 3 (Memsync_driver.outstanding d);
  let sent = ref [] in
  Memsync_driver.start d ~now:0.0 ~send:(fun ~seq pkt -> sent := (seq, pkt) :: !sent);
  Alcotest.(check int) "three packets" 3 (List.length !sent);
  Alcotest.(check int) "attempts counted" 3 (Memsync_driver.attempts d);
  (* Before the timeout nothing retransmits. *)
  Alcotest.(check int) "no early retransmit" 0
    (Memsync_driver.tick d ~now:0.5 ~send:(fun ~seq:_ _ -> Alcotest.fail "sent"));
  (* Ack one; the other two retransmit after the timeout. *)
  let seq0, _ = List.nth (List.rev !sent) 0 in
  Alcotest.(check bool) "reply accepted" true
    (Memsync_driver.on_reply d ~seq:seq0 ~args:[| 0; 11; 22; 0 |]);
  Alcotest.(check bool) "duplicate rejected" false
    (Memsync_driver.on_reply d ~seq:seq0 ~args:[| 0; 11; 22; 0 |]);
  Alcotest.(check bool) "unknown rejected" false
    (Memsync_driver.on_reply d ~seq:999 ~args:[| 0; 0; 0; 0 |]);
  let resent = ref 0 in
  Alcotest.(check int) "two retransmissions" 2
    (Memsync_driver.tick d ~now:1.5 ~send:(fun ~seq:_ _ -> incr resent));
  Alcotest.(check int) "send called twice" 2 !resent;
  Alcotest.(check int) "still two outstanding" 2 (Memsync_driver.outstanding d);
  (* Read values land per stage at the right index. *)
  let v = Memsync_driver.values d in
  Alcotest.(check int) "stage 2 value at index 0" 11 v.(0).(0);
  Alcotest.(check int) "stage 5 value at index 0" 22 v.(1).(0)

let test_driver_write_values () =
  let d =
    Memsync_driver.create ~fid:1 ~stages:[ 0; 3 ] ~count:2 ~timeout_s:1.0
      (Memsync_driver.Write (fun i -> [ 10 + i; 20 + i ]))
  in
  let pkts = ref [] in
  Memsync_driver.start d ~now:0.0 ~send:(fun ~seq:_ pkt -> pkts := pkt :: !pkts);
  List.iter
    (fun pkt ->
      match pkt.Pkt.payload with
      | Pkt.Exec { args; _ } ->
        let i = args.(0) in
        Alcotest.(check int) "stage-0 value" (10 + i) args.(1);
        Alcotest.(check int) "stage-3 value" (20 + i) args.(2)
      | _ -> Alcotest.fail "exec packet")
    !pkts

(* -- Heavy-hitter client ------------------------------------------------- *)

let test_hh_client_monitor_and_extract () =
  let ctl = Controller.create (Rmt.Device.create params) in
  let regions = admit ctl 9 Activermt_apps.Heavy_hitter.service in
  let hh =
    match Hh_client.create params ~policy ~fid:9 ~regions with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "4096 slots (16 blocks)" 4096 (Hh_client.n_slots hh);
  let tables = Controller.tables ctl in
  let meta = RT.meta ~src:1 ~dst:2 () in
  (* One hot key sent many times, a few cold ones once. *)
  let hot = Kv.key_of_rank 0 in
  for seq = 1 to 50 do
    ignore (RT.run tables ~meta (Hh_client.monitor_packet hh ~seq hot))
  done;
  for r = 1 to 5 do
    ignore (RT.run tables ~meta (Hh_client.monitor_packet hh ~seq:(100 + r) (Kv.key_of_rank r)))
  done;
  (* Extract via the control plane. *)
  let read stage =
    Option.get (Controller.read_region ctl ~fid:9 ~stage)
  in
  let items =
    Hh_client.frequent_items
      ~thresholds:(read (Hh_client.threshold_stage hh))
      ~key0s:(read (Hh_client.key0_stage hh))
      ~key1s:(read (Hh_client.key1_stage hh))
  in
  match items with
  | (top_key, top_count) :: _ ->
    Alcotest.(check int) "hot key first" hot.Kv.k1 top_key.Kv.k1;
    Alcotest.(check bool) "counted high" true (top_count > 10)
  | [] -> Alcotest.fail "no frequent items recovered"

let test_hh_frequent_items_sorting () =
  let items =
    Hh_client.frequent_items ~thresholds:[| 0; 5; 9; 2 |] ~key0s:[| 0; 10; 20; 30 |]
      ~key1s:[| 0; 11; 21; 31 |]
  in
  Alcotest.(check int) "zero-threshold slots skipped" 3 (List.length items);
  Alcotest.(check (list int)) "descending counts" [ 9; 5; 2 ]
    (List.map snd items)

let () =
  Alcotest.run "client"
    [
      ( "shim",
        [
          Alcotest.test_case "happy path" `Quick test_shim_happy_path;
          Alcotest.test_case "rejection" `Quick test_shim_rejection_path;
          Alcotest.test_case "illegal transitions" `Quick test_shim_illegal_transitions;
          Alcotest.test_case "seq monotonic" `Quick test_shim_seq_monotonic;
        ] );
      ( "negotiate",
        [
          Alcotest.test_case "request flags" `Quick test_request_packet_flags;
          Alcotest.test_case "ack/release" `Quick test_ack_and_release_packets;
          Alcotest.test_case "granted filter" `Quick test_granted_regions_filters;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "identity grant" `Quick test_synthesis_identity_grant;
          Alcotest.test_case "shifted grant" `Quick test_synthesis_shifted_grant;
          Alcotest.test_case "wrong regions" `Quick test_synthesis_wrong_regions;
        ] );
      ( "cache client",
        [
          Alcotest.test_case "miss/populate/hit" `Quick test_cache_client_roundtrip;
          Alcotest.test_case "shifted mutant" `Quick
            test_cache_client_shifted_mutant_roundtrip;
          Alcotest.test_case "wrong key misses" `Quick test_cache_client_wrong_key_misses;
          Alcotest.test_case "population plan" `Quick test_plan_population_dedups_buckets;
          Alcotest.test_case "reply value" `Quick test_reply_value;
        ] );
      ( "lb client",
        [
          Alcotest.test_case "end to end" `Quick test_lb_client_end_to_end;
          Alcotest.test_case "shifted mutant" `Quick test_lb_client_shifted_mutant;
        ] );
      ( "memsync driver",
        [
          Alcotest.test_case "lifecycle" `Quick test_driver_lifecycle;
          Alcotest.test_case "write values" `Quick test_driver_write_values;
        ] );
      ( "hh client",
        [
          Alcotest.test_case "monitor + extract" `Quick test_hh_client_monitor_and_extract;
          Alcotest.test_case "sorting" `Quick test_hh_frequent_items_sorting;
        ] );
    ]
