(* Tests for the RMT device substrate: parameters, CRC units, register
   arrays with stateful-ALU semantics, the TCAM range model and the
   device/resource accounting. *)

module P = Rmt.Params
module R = Rmt.Register_array
module T = Rmt.Tcam

(* -- Params -------------------------------------------------------------- *)

let test_params_default_valid () =
  match P.validate P.default with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_params_block_geometry () =
  Alcotest.(check int) "words per block" 256 (P.words_per_block P.default);
  Alcotest.(check int) "1 KB blocks" 1024 (P.bytes_per_block P.default)

let test_params_with_blocks () =
  let p = P.with_blocks_per_stage P.default 512 in
  Alcotest.(check int) "512 B blocks" 512 (P.bytes_per_block p);
  match P.validate p with Ok _ -> () | Error e -> Alcotest.fail e

let expect_invalid p msg =
  match P.validate p with
  | Ok _ -> Alcotest.fail ("expected invalid: " ^ msg)
  | Error _ -> ()

let test_params_invalid () =
  expect_invalid { P.default with P.logical_stages = 0 } "no stages";
  expect_invalid { P.default with P.ingress_stages = 0 } "no ingress";
  expect_invalid { P.default with P.ingress_stages = 21 } "ingress > total";
  expect_invalid { P.default with P.blocks_per_stage = 7 } "non-dividing blocks";
  expect_invalid { P.default with P.mar_bits = 8 } "mar too narrow";
  expect_invalid { P.default with P.recirc_limit = -1 } "negative recirc"

(* -- Crc ----------------------------------------------------------------- *)

let test_crc_deterministic () =
  Alcotest.(check int) "same input same hash" (Rmt.Crc.crc32 [ 1; 2; 3 ])
    (Rmt.Crc.crc32 [ 1; 2; 3 ])

let test_crc_input_sensitive () =
  Alcotest.(check bool) "different input" false
    (Rmt.Crc.crc32 [ 1; 2; 3 ] = Rmt.Crc.crc32 [ 1; 2; 4 ])

let test_crc_seed_sensitive () =
  Alcotest.(check bool) "seed changes hash" false
    (Rmt.Crc.crc32 ~seed:0 [ 5 ] = Rmt.Crc.crc32 ~seed:1 [ 5 ])

let test_crc_variants_differ () =
  Alcotest.(check bool) "crc32 vs crc32c" false
    (Rmt.Crc.crc32 [ 77 ] = Rmt.Crc.crc32c [ 77 ])

let test_crc_rows_differ () =
  let rows = List.init 6 (fun r -> Rmt.Crc.hash_words ~row:r [ 42; 43 ]) in
  Alcotest.(check int) "six distinct rows" 6
    (List.length (List.sort_uniq compare rows))

let test_crc_nonnegative () =
  for i = 0 to 100 do
    Alcotest.(check bool) "non-negative" true (Rmt.Crc.crc32 [ i; i * 7 ] >= 0)
  done

(* -- Register_array ------------------------------------------------------ *)

let test_regs_read_write () =
  let r = R.create ~words:16 in
  Alcotest.(check int) "initially zero" 0 (R.access r ~index:3 R.Read).R.value;
  ignore (R.access r ~index:3 (R.Write 99));
  Alcotest.(check int) "written" 99 (R.access r ~index:3 R.Read).R.value

let test_regs_add_read () =
  let r = R.create ~words:4 in
  Alcotest.(check int) "inc to 1" 1 (R.access r ~index:0 (R.Add_read 1)).R.value;
  Alcotest.(check int) "inc by 5" 6 (R.access r ~index:0 (R.Add_read 5)).R.value

let test_regs_min_read () =
  let r = R.create ~words:4 in
  ignore (R.access r ~index:1 (R.Write 10));
  Alcotest.(check int) "min(10,3)" 3 (R.access r ~index:1 (R.Min_read 3)).R.value;
  Alcotest.(check int) "memory unchanged" 10 (R.get r 1)

let test_regs_max_write () =
  let r = R.create ~words:4 in
  ignore (R.access r ~index:2 (R.Write 10));
  Alcotest.(check int) "returns old" 10 (R.access r ~index:2 (R.Max_write 20)).R.value;
  Alcotest.(check int) "keeps max" 20 (R.get r 2);
  ignore (R.access r ~index:2 (R.Max_write 5));
  Alcotest.(check int) "smaller ignored" 20 (R.get r 2)

let test_regs_mask32 () =
  let r = R.create ~words:2 in
  ignore (R.access r ~index:0 (R.Write 0x1FFFFFFFF));
  Alcotest.(check int) "32-bit wrap" 0xFFFFFFFF (R.get r 0);
  ignore (R.access r ~index:0 (R.Add_read 1));
  Alcotest.(check int) "add wraps" 0 (R.get r 0)

let test_regs_bounds () =
  let r = R.create ~words:4 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (R.access r ~index:4 R.Read);
       false
     with Invalid_argument _ -> true)

let test_regs_access_count () =
  let r = R.create ~words:4 in
  ignore (R.access r ~index:0 R.Read);
  ignore (R.access r ~index:1 (R.Write 5));
  R.set r 2 7;
  ignore (R.get r 2);
  Alcotest.(check int) "control ops not counted" 2 (R.access_count r)

let test_regs_zero_range () =
  let r = R.create ~words:8 in
  for i = 0 to 7 do
    R.set r i (i + 1)
  done;
  R.zero_range r ~lo:2 ~hi:5;
  Alcotest.(check (list int)) "zeroed middle" [ 1; 2; 0; 0; 0; 0; 7; 8 ]
    (List.init 8 (R.get r))

let test_regs_snapshot_restore () =
  let r = R.create ~words:8 in
  for i = 0 to 7 do
    R.set r i (10 * i)
  done;
  let snap = R.snapshot_range r ~lo:2 ~hi:4 in
  Alcotest.(check (array int)) "snapshot" [| 20; 30; 40 |] snap;
  R.zero_range r ~lo:0 ~hi:7;
  R.restore_range r ~lo:5 snap;
  Alcotest.(check int) "restored elsewhere" 30 (R.get r 6)

(* -- Tcam ---------------------------------------------------------------- *)

let cover_matches ~width ~lo ~hi v =
  let ps = T.prefixes_of_range ~width ~lo ~hi in
  List.exists
    (fun p ->
      let shift = width - p.T.prefix_len in
      v lsr shift = p.T.value lsr shift)
    ps

let test_tcam_cover_exact () =
  let width = 8 in
  List.iter
    (fun (lo, hi) ->
      for v = 0 to 255 do
        Alcotest.(check bool)
          (Printf.sprintf "range [%d,%d] v=%d" lo hi v)
          (v >= lo && v <= hi)
          (cover_matches ~width ~lo ~hi v)
      done)
    [ (0, 255); (1, 1); (3, 17); (0, 127); (128, 255); (100, 101); (5, 250) ]

let test_tcam_cover_bound () =
  let width = 16 in
  List.iter
    (fun (lo, hi) ->
      let n = T.entries_for_range ~width ~lo ~hi in
      Alcotest.(check bool) "<= 2w-2" true (n <= (2 * width) - 2))
    [ (1, 65534); (1, 2); (12345, 54321); (0, 65535) ]

let test_tcam_full_range_one_entry () =
  Alcotest.(check int) "full range is one prefix" 1
    (T.entries_for_range ~width:8 ~lo:0 ~hi:255)

let prop_tcam_cover =
  QCheck.Test.make ~name:"prefix cover is exact" ~count:200
    QCheck.(pair (int_range 0 255) (int_range 0 255))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let ok = ref true in
      for v = 0 to 255 do
        if cover_matches ~width:8 ~lo ~hi v <> (v >= lo && v <= hi) then ok := false
      done;
      !ok)

let test_tcam_capacity () =
  let t = T.create ~width:8 ~capacity:3 in
  (match T.install_range t ~lo:0 ~hi:255 with
  | Ok _ -> ()
  | Error `Capacity -> Alcotest.fail "should fit");
  Alcotest.(check int) "used 1" 1 (T.used t);
  (* [1,2] costs 2 entries; only 2 left. *)
  (match T.install_range t ~lo:1 ~hi:2 with
  | Ok _ -> ()
  | Error `Capacity -> Alcotest.fail "should fit exactly");
  Alcotest.(check int) "full" 0 (T.free t);
  match T.install_range t ~lo:0 ~hi:0 with
  | Ok _ -> Alcotest.fail "expected capacity failure"
  | Error `Capacity -> ()

let test_tcam_remove_idempotent () =
  let t = T.create ~width:8 ~capacity:10 in
  match T.install_range t ~lo:4 ~hi:7 with
  | Error `Capacity -> Alcotest.fail "fit"
  | Ok h ->
    Alcotest.(check bool) "matches inside" true (T.matches t 5);
    T.remove t h;
    T.remove t h;
    Alcotest.(check int) "freed once" 0 (T.used t);
    Alcotest.(check bool) "no match" false (T.matches t 5)

let prop_tcam_install_remove_balance =
  QCheck.Test.make ~name:"tcam install/remove leaves no residue" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (int_range 0 255) (int_range 0 255)))
    (fun ranges ->
      let t = T.create ~width:8 ~capacity:10_000 in
      let handles =
        List.filter_map
          (fun (a, b) ->
            let lo = min a b and hi = max a b in
            match T.install_range t ~lo ~hi with
            | Ok h -> Some h
            | Error `Capacity -> None)
          ranges
      in
      List.iter (T.remove t) handles;
      T.used t = 0)

(* -- Device & Resource --------------------------------------------------- *)

let test_device_geometry () =
  let d = Rmt.Device.create P.default in
  Alcotest.(check int) "stages" 20 (Rmt.Device.n_stages d);
  Alcotest.(check bool) "stage 0 ingress" true (Rmt.Device.is_ingress d 0);
  Alcotest.(check bool) "stage 9 ingress" true (Rmt.Device.is_ingress d 9);
  Alcotest.(check bool) "stage 10 egress" false (Rmt.Device.is_ingress d 10);
  Alcotest.(check int) "total words" (20 * 65536) (Rmt.Device.total_register_words d)

let test_device_stage_bounds () =
  let d = Rmt.Device.create P.default in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Rmt.Device.stage d 20);
       false
     with Invalid_argument _ -> true)

let test_device_counters () =
  let d = Rmt.Device.create P.default in
  Rmt.Device.count_recirculation d;
  Rmt.Device.count_recirculation d;
  Rmt.Device.count_drop d;
  Alcotest.(check int) "recircs" 2 (Rmt.Device.recirculations d);
  Alcotest.(check int) "drops" 1 (Rmt.Device.drops d)

let test_resource_numbers () =
  let b = Rmt.Resource.default_budget in
  Alcotest.(check bool) "availability ~83%" true
    (abs_float (Rmt.Resource.activermt_stage_availability b -. 0.83) < 0.02);
  Alcotest.(check bool) "native cache ~92%" true
    (abs_float (Rmt.Resource.native_cache_availability b ~n_stages:20 -. 0.92) < 0.02);
  Alcotest.(check int) "22 monolithic instances" 22
    (Rmt.Resource.monolithic_p4_capacity b ~stages_per_app:2);
  Alcotest.(check int) "theoretical instances = words/stage" 65536
    (Rmt.Resource.activermt_theoretical_instances P.default);
  (* Section 7.1 trade-off: wider words, fewer shared state variables. *)
  Alcotest.(check int) "32-bit words: 23 variables" 23
    (Rmt.Resource.phv_state_variables 32);
  Alcotest.(check bool) "wider words fewer variables" true
    (Rmt.Resource.phv_state_variables 64 < Rmt.Resource.phv_state_variables 16);
  Alcotest.(check bool) "enough for the runtime's 9 words" true
    (Rmt.Resource.phv_state_variables 32 >= 9)

let () =
  Alcotest.run "rmt"
    [
      ( "params",
        [
          Alcotest.test_case "default valid" `Quick test_params_default_valid;
          Alcotest.test_case "block geometry" `Quick test_params_block_geometry;
          Alcotest.test_case "with_blocks" `Quick test_params_with_blocks;
          Alcotest.test_case "invalid configs" `Quick test_params_invalid;
        ] );
      ( "crc",
        [
          Alcotest.test_case "deterministic" `Quick test_crc_deterministic;
          Alcotest.test_case "input sensitive" `Quick test_crc_input_sensitive;
          Alcotest.test_case "seed sensitive" `Quick test_crc_seed_sensitive;
          Alcotest.test_case "variants differ" `Quick test_crc_variants_differ;
          Alcotest.test_case "rows differ" `Quick test_crc_rows_differ;
          Alcotest.test_case "non-negative" `Quick test_crc_nonnegative;
        ] );
      ( "registers",
        [
          Alcotest.test_case "read/write" `Quick test_regs_read_write;
          Alcotest.test_case "add_read" `Quick test_regs_add_read;
          Alcotest.test_case "min_read" `Quick test_regs_min_read;
          Alcotest.test_case "max_write" `Quick test_regs_max_write;
          Alcotest.test_case "32-bit masking" `Quick test_regs_mask32;
          Alcotest.test_case "bounds" `Quick test_regs_bounds;
          Alcotest.test_case "access count" `Quick test_regs_access_count;
          Alcotest.test_case "zero range" `Quick test_regs_zero_range;
          Alcotest.test_case "snapshot/restore" `Quick test_regs_snapshot_restore;
        ] );
      ( "tcam",
        [
          Alcotest.test_case "cover exact" `Quick test_tcam_cover_exact;
          Alcotest.test_case "cover bound" `Quick test_tcam_cover_bound;
          Alcotest.test_case "full range" `Quick test_tcam_full_range_one_entry;
          QCheck_alcotest.to_alcotest prop_tcam_cover;
          Alcotest.test_case "capacity" `Quick test_tcam_capacity;
          Alcotest.test_case "remove idempotent" `Quick test_tcam_remove_idempotent;
          QCheck_alcotest.to_alcotest prop_tcam_install_remove_balance;
        ] );
      ( "device",
        [
          Alcotest.test_case "geometry" `Quick test_device_geometry;
          Alcotest.test_case "stage bounds" `Quick test_device_stage_bounds;
          Alcotest.test_case "counters" `Quick test_device_counters;
          Alcotest.test_case "resource numbers" `Quick test_resource_numbers;
        ] );
    ]
