(* Tests for the ActiveRMT core library: instruction set, wire codec,
   program validation, active-packet formats, match tables and the
   data-plane interpreter. *)

module I = Activermt.Instr
module P = Activermt.Program
module W = Activermt.Wire
module Pkt = Activermt.Packet
module Tbl = Activermt.Table
module RT = Activermt.Runtime

let params = Rmt.Params.default

(* -- Instr --------------------------------------------------------------- *)

let test_mnemonic_roundtrip () =
  List.iter
    (fun instr ->
      match I.of_mnemonic (I.mnemonic instr) with
      | Ok back -> Alcotest.(check bool) (I.mnemonic instr) true (I.equal instr back)
      | Error e -> Alcotest.fail (I.mnemonic instr ^ ": " ^ e))
    I.all_opcodes

let test_mnemonic_case_insensitive () =
  match I.of_mnemonic "mem_read" with
  | Ok I.Mem_read -> ()
  | _ -> Alcotest.fail "lowercase mnemonic"

let test_mnemonic_errors () =
  let expect_error s =
    match I.of_mnemonic s with
    | Ok _ -> Alcotest.fail ("parsed bogus " ^ s)
    | Error _ -> ()
  in
  List.iter expect_error
    [ "FROBNICATE"; "MBR_LOAD"; "MBR_LOAD 4"; "CJUMP"; "CJUMP L9"; "NOP 3"; "" ]

let test_cret1_alias () =
  match I.of_mnemonic "CRET1" with
  | Ok I.Creti -> ()
  | _ -> Alcotest.fail "CRET1 (paper spelling) should parse as CRETI"

let test_memory_access_classification () =
  let memory = List.filter I.is_memory_access I.all_opcodes in
  Alcotest.(check int) "exactly five memory opcodes" 5 (List.length memory)

let test_needs_ingress () =
  Alcotest.(check bool) "rts" true (I.needs_ingress I.Rts);
  Alcotest.(check bool) "crts" true (I.needs_ingress I.Crts);
  Alcotest.(check bool) "mem_read" false (I.needs_ingress I.Mem_read)

let test_branch_target () =
  Alcotest.(check (option int)) "cjump" (Some 3) (I.branch_target (I.Cjump 3));
  Alcotest.(check (option int)) "ujump" (Some 0) (I.branch_target (I.Ujump 0));
  Alcotest.(check (option int)) "nop" None (I.branch_target I.Nop)

let test_arg_index () =
  Alcotest.(check (option int)) "oob" None (Option.map I.arg_index (I.arg_of_index 4));
  List.iter
    (fun i ->
      match I.arg_of_index i with
      | Some a -> Alcotest.(check int) "roundtrip" i (I.arg_index a)
      | None -> Alcotest.fail "in range")
    [ 0; 1; 2; 3 ]

(* -- Wire ---------------------------------------------------------------- *)

let test_wire_roundtrip_all () =
  List.iter
    (fun instr ->
      List.iter
        (fun (label, executed) ->
          let line = { P.instr; label } in
          let opcode, flag = W.encode ~executed line in
          match W.decode ~opcode ~flag with
          | Ok d ->
            Alcotest.(check bool) "instr" true (I.equal d.W.line.P.instr instr);
            Alcotest.(check (option int)) "label" label d.W.line.P.label;
            Alcotest.(check bool) "executed" executed d.W.executed
          | Error e -> Alcotest.fail e)
        [ (None, false); (Some 0, true); (Some 6, false) ])
    I.all_opcodes

let test_wire_unknown_opcode () =
  match W.decode ~opcode:0xFE ~flag:0 with
  | Ok _ -> Alcotest.fail "decoded garbage"
  | Error _ -> ()

let test_wire_program_roundtrip () =
  let prog =
    P.v
      [
        P.line (I.Mar_load I.A0);
        P.line I.Mem_read;
        P.line ~label:2 I.Nop;
        P.line (I.Cjump 2);
        P.line I.Return;
      ]
  in
  (* Structurally invalid (backward jump) but the codec does not care;
     validation is a separate concern. *)
  let b = W.encode_program prog in
  Alcotest.(check int) "2 bytes per instr + EOF" 12 (Bytes.length b);
  match W.decode_program b ~off:0 with
  | Ok (back, marks, fin) ->
    Alcotest.(check bool) "programs equal" true (P.equal prog back);
    Alcotest.(check int) "consumed all" (Bytes.length b) fin;
    Alcotest.(check int) "marks per line" 5 (Array.length marks)
  | Error e -> Alcotest.fail e

let test_wire_truncated () =
  let b = Bytes.make 3 '\001' in
  match W.decode_program b ~off:0 with
  | Ok _ -> Alcotest.fail "decoded truncated program"
  | Error _ -> ()

(* -- Program ------------------------------------------------------------- *)

let listing1 = Activermt_apps.Cache.query_program

let test_listing1_structure () =
  Alcotest.(check int) "11 instructions" 11 (P.length listing1);
  Alcotest.(check (list int)) "accesses at paper's lines 2,5,9 (0-based)"
    [ 1; 4; 8 ]
    (P.memory_access_positions listing1);
  Alcotest.(check (option int)) "RTS at line 8 (0-based 7)" (Some 7)
    (P.rts_position listing1)

let test_parse_backward_jump () =
  match
    P.parse "  MBR_LOAD 0 // load\n; full-line comment\nL1: NOP\nCJUMPI L1\n"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "backward jump should not validate"

let test_parse_forward_label () =
  match P.parse "MBR_LOAD 0\nCJUMP L1\nNOP\nL1: RETURN\n" with
  | Ok p -> Alcotest.(check int) "4 instructions" 4 (P.length p)
  | Error e -> Alcotest.fail e

let test_validate_duplicate_label () =
  let p = P.v [ P.line ~label:1 I.Nop; P.line ~label:1 I.Return ] in
  match P.validate p with
  | Error (P.Duplicate_label 1) -> ()
  | Error e -> Alcotest.fail (P.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted duplicate label"

let test_validate_embedded_eof () =
  let p = P.v [ P.line I.Eof; P.line I.Return ] in
  match P.validate p with
  | Error (P.Embedded_eof 0) -> ()
  | _ -> Alcotest.fail "accepted embedded EOF"

let test_validate_unreachable () =
  let p = P.v [ P.line I.Return; P.line I.Mem_read ] in
  match P.validate p with
  | Error (P.Unreachable_after_return 0) -> ()
  | _ -> Alcotest.fail "accepted dead code"

let test_validate_trailing_padding_ok () =
  let p = P.v [ P.line I.Return; P.line I.Nop; P.line I.Nop ] in
  match P.validate p with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (P.error_to_string e)

let test_assembly_roundtrip () =
  let text = P.to_assembly listing1 in
  match P.parse text with
  | Ok p -> Alcotest.(check bool) "equal" true (P.equal p listing1)
  | Error e -> Alcotest.fail e

let instr_gen =
  (* No branches: random label placement rarely validates; branch handling
     is covered by directed tests. *)
  let pool =
    List.filter (fun i -> I.branch_target i = None && i <> I.Eof) I.all_opcodes
  in
  QCheck.Gen.oneofl pool

let prop_program_wire_roundtrip =
  QCheck.Test.make ~name:"program -> wire -> program" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) instr_gen))
    (fun instrs ->
      let p = P.v (P.plain instrs) in
      match W.decode_program (W.encode_program p) ~off:0 with
      | Ok (back, _, _) -> P.equal p back
      | Error _ -> false)

let prop_assembly_roundtrip =
  QCheck.Test.make ~name:"program -> assembly -> program" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) instr_gen))
    (fun instrs ->
      let p = P.v (P.plain instrs) in
      match P.parse (P.to_assembly p) with
      | Ok back -> P.equal p back
      | Error _ ->
        (* Dead code after RETURN is a legitimate validation failure for
           random programs. *)
        List.exists (fun i -> i = I.Return) instrs)

(* -- Packet -------------------------------------------------------------- *)

let roundtrip pkt =
  match Pkt.decode (Pkt.encode pkt) with
  | Ok p -> p
  | Error e -> Alcotest.failf "decode: %s" e

let test_packet_bare () =
  let pkt = { Pkt.fid = 300; seq = 12; flags = Pkt.no_flags; payload = Pkt.Bare } in
  let b = Pkt.encode pkt in
  Alcotest.(check int) "10-byte initial header" 10 (Bytes.length b);
  let back = roundtrip pkt in
  Alcotest.(check int) "fid" 300 back.Pkt.fid;
  Alcotest.(check int) "seq" 12 back.Pkt.seq

let test_packet_flags () =
  let flags = { Pkt.elastic = true; virtual_addressing = true; ack = true } in
  let pkt = { Pkt.fid = 1; seq = 0; flags; payload = Pkt.Bare } in
  let back = roundtrip pkt in
  Alcotest.(check bool) "elastic" true back.Pkt.flags.Pkt.elastic;
  Alcotest.(check bool) "virtual" true back.Pkt.flags.Pkt.virtual_addressing;
  Alcotest.(check bool) "ack" true back.Pkt.flags.Pkt.ack

let test_packet_request_roundtrip () =
  let request =
    {
      Pkt.prog_length = 11;
      rts_position = Some 7;
      accesses =
        [
          { Pkt.position = 1; min_gap = 2; demand_blocks = 1 };
          { Pkt.position = 4; min_gap = 3; demand_blocks = 2 };
          { Pkt.position = 8; min_gap = 4; demand_blocks = 16 };
        ];
    }
  in
  let pkt =
    { Pkt.fid = 7; seq = 1; flags = Pkt.no_flags; payload = Pkt.Request request }
  in
  let b = Pkt.encode pkt in
  Alcotest.(check int) "10 + 24 bytes" 34 (Bytes.length b);
  match (roundtrip pkt).Pkt.payload with
  | Pkt.Request r ->
    Alcotest.(check int) "length" 11 r.Pkt.prog_length;
    Alcotest.(check (option int)) "rts" (Some 7) r.Pkt.rts_position;
    Alcotest.(check int) "accesses" 3 (List.length r.Pkt.accesses);
    Alcotest.(check int) "demand" 16 (List.nth r.Pkt.accesses 2).Pkt.demand_blocks
  | _ -> Alcotest.fail "wrong payload"

let test_packet_response_roundtrip () =
  let regions = Array.make 20 None in
  regions.(3) <- Some { Pkt.start_word = 1024; n_words = 4096 };
  regions.(19) <- Some { Pkt.start_word = 0; n_words = 65536 };
  let pkt =
    {
      Pkt.fid = 9;
      seq = 2;
      flags = Pkt.no_flags;
      payload = Pkt.Response { status = Pkt.Granted; regions };
    }
  in
  let b = Pkt.encode pkt in
  Alcotest.(check int) "10 + 161 bytes" 171 (Bytes.length b);
  match (roundtrip pkt).Pkt.payload with
  | Pkt.Response r ->
    Alcotest.(check bool) "granted" true (r.Pkt.status = Pkt.Granted);
    (match r.Pkt.regions.(3) with
    | Some { Pkt.start_word; n_words } ->
      Alcotest.(check int) "start" 1024 start_word;
      Alcotest.(check int) "len" 4096 n_words
    | None -> Alcotest.fail "lost region");
    Alcotest.(check bool) "empty stage stays empty" true (r.Pkt.regions.(0) = None)
  | _ -> Alcotest.fail "wrong payload"

let test_packet_exec_roundtrip () =
  let pkt = Pkt.exec ~fid:5 ~seq:3 ~args:[| 10; 20 |] listing1 in
  (match pkt.Pkt.payload with
  | Pkt.Exec { args; _ } ->
    Alcotest.(check (array int)) "padded args" [| 10; 20; 0; 0 |] args
  | _ -> Alcotest.fail "constructor");
  match (roundtrip pkt).Pkt.payload with
  | Pkt.Exec { args; program } ->
    Alcotest.(check (array int)) "args" [| 10; 20; 0; 0 |] args;
    Alcotest.(check bool) "program" true (P.equal program listing1)
  | _ -> Alcotest.fail "wrong payload"

let test_packet_wire_size () =
  let pkt = Pkt.exec ~fid:5 ~seq:3 ~args:[||] listing1 in
  Alcotest.(check int) "wire_size = encode length"
    (Bytes.length (Pkt.encode pkt))
    (Pkt.wire_size ~stages:20 pkt)

let test_packet_short () =
  match Pkt.decode (Bytes.make 4 '\000') with
  | Ok _ -> Alcotest.fail "decoded short packet"
  | Error _ -> ()

let test_packet_too_many_args () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pkt.exec ~fid:1 ~seq:0 ~args:(Array.make 5 0) listing1);
       false
     with Invalid_argument _ -> true)

let prop_packet_decode_never_raises =
  QCheck.Test.make ~name:"decode on arbitrary bytes never raises" ~count:500
    QCheck.(string_of_size Gen.(int_range 0 120))
    (fun s ->
      match Pkt.decode (Bytes.of_string s) with Ok _ | Error _ -> true)

let prop_packet_roundtrip_requests =
  QCheck.Test.make ~name:"random requests roundtrip" ~count:300
    QCheck.(
      triple (int_range 0 0xFFFF)
        (list_of_size Gen.(int_range 0 8) (triple (int_range 0 60) (int_range 0 20) (int_range 1 255)))
        (option (int_range 0 59)))
    (fun (fid, accesses, rts) ->
      let request =
        {
          Pkt.prog_length = 60;
          rts_position = rts;
          accesses =
            List.map
              (fun (position, min_gap, demand_blocks) ->
                { Pkt.position; min_gap; demand_blocks })
              accesses;
        }
      in
      let pkt = { Pkt.fid; seq = 0; flags = Pkt.no_flags; payload = Pkt.Request request } in
      match Pkt.decode (Pkt.encode pkt) with
      | Ok { Pkt.payload = Pkt.Request r; fid = fid'; _ } ->
        fid' = fid && r = request
      | Ok _ | Error _ -> false)

let prop_packet_roundtrip_responses =
  QCheck.Test.make ~name:"random responses roundtrip" ~count:300
    QCheck.(
      list_of_size
        Gen.(int_range 0 20)
        (triple (int_range 0 19) (int_range 0 65535) (int_range 1 65536)))
    (fun regions_spec ->
      let regions = Array.make 20 None in
      List.iter
        (fun (s, start_word, n_words) ->
          regions.(s) <- Some { Pkt.start_word; n_words })
        regions_spec;
      let pkt =
        {
          Pkt.fid = 3;
          seq = 9;
          flags = Pkt.no_flags;
          payload = Pkt.Response { status = Pkt.Granted; regions };
        }
      in
      match Pkt.decode (Pkt.encode pkt) with
      | Ok { Pkt.payload = Pkt.Response r; _ } ->
        r.Pkt.status = Pkt.Granted && r.Pkt.regions = regions
      | Ok _ | Error _ -> false)

(* -- Table --------------------------------------------------------------- *)

let fresh_table () = Tbl.create (Rmt.Device.create params)

let regions_with assoc =
  let r = Array.make 20 None in
  List.iter
    (fun (s, start_word, n_words) -> r.(s) <- Some { Pkt.start_word; n_words })
    assoc;
  r

let test_table_install_lookup () =
  let t = fresh_table () in
  (match
     Tbl.install t ~fid:1 ~virtual_addressing:true
       ~regions:(regions_with [ (2, 0, 1024); (5, 512, 256) ])
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install");
  Alcotest.(check bool) "installed" true (Tbl.installed t ~fid:1);
  (match Tbl.lookup t ~fid:1 ~stage:2 with
  | Some { Tbl.region = Some r; _ } -> Alcotest.(check int) "region" 1024 r.Pkt.n_words
  | _ -> Alcotest.fail "missing entry");
  match Tbl.lookup t ~fid:1 ~stage:3 with
  | Some { Tbl.region = None; xmask; xoffset; _ } ->
    (* next access stage after 3 is 5: 256 words -> pow2 mask 255; virtual
       addressing keeps the offset at 0 *)
    Alcotest.(check int) "xmask of next access" 255 xmask;
    Alcotest.(check int) "offset 0 (virtual)" 0 xoffset
  | _ -> Alcotest.fail "no pass-through entry"

let test_table_physical_offsets () =
  let t = fresh_table () in
  (match
     Tbl.install t ~fid:2 ~virtual_addressing:false
       ~regions:(regions_with [ (4, 768, 512) ])
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install");
  match Tbl.lookup t ~fid:2 ~stage:0 with
  | Some e ->
    Alcotest.(check int) "mask" 511 e.Tbl.xmask;
    Alcotest.(check int) "offset = region start" 768 e.Tbl.xoffset
  | None -> Alcotest.fail "entry"

let test_table_remove () =
  let t = fresh_table () in
  ignore
    (Tbl.install t ~fid:1 ~virtual_addressing:true
       ~regions:(regions_with [ (0, 0, 256) ]));
  Tbl.remove t ~fid:1;
  Tbl.remove t ~fid:1;
  Alcotest.(check bool) "gone" false (Tbl.installed t ~fid:1);
  Alcotest.(check bool) "no lookup" true (Tbl.lookup t ~fid:1 ~stage:0 = None)

let test_table_double_install () =
  let t = fresh_table () in
  ignore (Tbl.install t ~fid:1 ~virtual_addressing:true ~regions:(regions_with []));
  match Tbl.install t ~fid:1 ~virtual_addressing:true ~regions:(regions_with []) with
  | Error `Already_installed -> ()
  | _ -> Alcotest.fail "double install accepted"

let test_table_quiesce () =
  let t = fresh_table () in
  Tbl.quiesce t ~fid:5;
  Alcotest.(check bool) "quiesced" true (Tbl.is_quiesced t ~fid:5);
  Tbl.unquiesce t ~fid:5;
  Alcotest.(check bool) "released" false (Tbl.is_quiesced t ~fid:5)

let test_table_update_stats () =
  let t = fresh_table () in
  ignore
    (Tbl.install t ~fid:1 ~virtual_addressing:true
       ~regions:(regions_with [ (0, 0, 256) ]));
  let s = Tbl.update_stats t in
  Alcotest.(check bool) "counts adds" true (s.Tbl.entries_added > 20);
  Tbl.reset_update_stats t;
  Tbl.remove t ~fid:1;
  let s = Tbl.update_stats t in
  Alcotest.(check int) "no adds after reset" 0 s.Tbl.entries_added;
  Alcotest.(check bool) "counts removes" true (s.Tbl.entries_removed > 20)

let test_table_tcam_rollback () =
  (* A tiny TCAM: the second region cannot fit and the whole install rolls
     back, leaving no leaked entries. *)
  let small = { params with Rmt.Params.tcam_entries_per_stage = 2 } in
  let device = Rmt.Device.create small in
  let t = Tbl.create device in
  match
    Tbl.install t ~fid:1 ~virtual_addressing:true
      ~regions:(regions_with [ (0, 0, 65536); (1, 1, 30000) ])
  with
  | Error (`Tcam_capacity 1) ->
    Alcotest.(check int) "stage 0 rolled back" 0
      (Rmt.Tcam.used (Rmt.Device.stage device 0).Rmt.Device.protection)
  | Ok () -> Alcotest.fail "should exceed capacity"
  | Error _ -> Alcotest.fail "wrong error"

(* -- Runtime ------------------------------------------------------------- *)

let setup ?(privileged = false) ?max_passes ?(virtual_addressing = true)
    ?(stages = [ (0, 0, 256) ]) () =
  let t = fresh_table () in
  (match
     Tbl.install ~privileged ?max_passes t ~fid:1 ~virtual_addressing
       ~regions:(regions_with stages)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "setup install");
  t

let run ?tables ?(args = [||]) ?(src = 100) ?(dst = 200) ?(flow_key = [||]) instrs =
  let tables = match tables with Some t -> t | None -> setup () in
  let meta = RT.meta ~flow_key ~src ~dst () in
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args (P.v (P.plain instrs)) in
  RT.run tables ~meta pkt

let test_rt_preloading () =
  let r = run ~args:[| 11; 22; 33; 44 |] [ I.Return ] in
  Alcotest.(check int) "MAR preloaded" 11 r.RT.final_mar;
  Alcotest.(check int) "MBR preloaded" 22 r.RT.final_mbr;
  Alcotest.(check int) "MBR2 preloaded" 33 r.RT.final_mbr2

let test_rt_loads_and_copies () =
  let r =
    run ~args:[| 1; 2; 3; 4 |]
      [ I.Mbr_load I.A3; I.Copy_mbr2_mbr; I.Mar_load I.A2; I.Copy_mbr_mar; I.Return ]
  in
  Alcotest.(check int) "MBR2 <- MBR = arg3" 4 r.RT.final_mbr2;
  Alcotest.(check int) "MBR <- MAR = arg2" 3 r.RT.final_mbr;
  Alcotest.(check int) "MAR = arg2" 3 r.RT.final_mar

let test_rt_arithmetic () =
  let r =
    run ~args:[| 0; 10; 3; 0 |] [ I.Mbr_subtract_mbr2; I.Mar_mbr_add_mbr2; I.Return ]
  in
  Alcotest.(check int) "MBR = 10-3" 7 r.RT.final_mbr;
  Alcotest.(check int) "MAR = 7+3" 10 r.RT.final_mar

let test_rt_mar_adds () =
  let r = run ~args:[| 100; 10; 3; 0 |] [ I.Mar_add_mbr; I.Mar_add_mbr2; I.Return ] in
  Alcotest.(check int) "MAR = 100+10+3" 113 r.RT.final_mar;
  let r = run ~args:[| 0; 6; 7; 0 |] [ I.Mbr_add_mbr2; I.Return ] in
  Alcotest.(check int) "MBR = 6+7" 13 r.RT.final_mbr

let test_rt_bitops () =
  let r =
    run ~args:[| 0b1100; 0b1010; 0b0110; 0 |]
      [ I.Bit_and_mar_mbr; I.Bit_or_mbr_mbr2; I.Return ]
  in
  Alcotest.(check int) "MAR = 1100 & 1010" 0b1000 r.RT.final_mar;
  Alcotest.(check int) "MBR = 1010 | 0110" 0b1110 r.RT.final_mbr

let test_rt_minmax () =
  let r = run ~args:[| 0; 9; 4; 0 |] [ I.Min; I.Return ] in
  Alcotest.(check int) "min" 4 r.RT.final_mbr;
  let r = run ~args:[| 0; 9; 4; 0 |] [ I.Max; I.Return ] in
  Alcotest.(check int) "max" 9 r.RT.final_mbr

let test_rt_swap () =
  let r = run ~args:[| 0; 1; 2; 0 |] [ I.Swap_mbr_mbr2; I.Return ] in
  Alcotest.(check int) "mbr" 2 r.RT.final_mbr;
  Alcotest.(check int) "mbr2" 1 r.RT.final_mbr2

let test_rt_revmin () =
  let r = run ~args:[| 0; 3; 8; 0 |] [ I.Revmin; I.Return ] in
  Alcotest.(check int) "MBR2 = min(3,8)" 3 r.RT.final_mbr2;
  Alcotest.(check int) "MBR untouched" 3 r.RT.final_mbr

let test_rt_equals_and_not () =
  let r = run ~args:[| 0; 5; 5; 0 |] [ I.Mbr_equals_mbr2; I.Return ] in
  Alcotest.(check int) "xor equal = 0" 0 r.RT.final_mbr;
  let r = run ~args:[| 0; 0; 0; 7 |] [ I.Mbr_equals_data I.A3; I.Mbr_not; I.Return ] in
  Alcotest.(check int) "not (0 xor 7)" (lnot 7 land 0xFFFFFFFF) r.RT.final_mbr

let test_rt_mbr_store () =
  let r = run ~args:[| 0; 42; 0; 0 |] [ I.Mbr_store I.A3; I.Return ] in
  Alcotest.(check int) "stored into arg 3" 42 r.RT.args_out.(3)

let test_rt_return_forwards () =
  let r = run [ I.Return ] in
  (match r.RT.decision with
  | RT.Forward 200 -> ()
  | _ -> Alcotest.fail "expected forward to dst");
  Alcotest.(check int) "one instruction" 1 r.RT.executed

let test_rt_cret () =
  let r = run ~args:[| 0; 1; 0; 0 |] [ I.Cret; I.Mbr_load I.A0; I.Return ] in
  Alcotest.(check int) "returned early" 1 r.RT.executed;
  let r = run ~args:[| 0; 0; 0; 0 |] [ I.Cret; I.Return ] in
  Alcotest.(check int) "fell through" 2 r.RT.executed

let test_rt_creti () =
  let r = run ~args:[| 0; 0; 0; 0 |] [ I.Creti; I.Return ] in
  Alcotest.(check int) "returned on zero" 1 r.RT.executed

let test_rt_cjump_taken () =
  (* MBR2 is preloaded with args[2] = 9; the skipped load would have
     replaced it with args[3] = 4. *)
  let prog =
    [
      P.line (I.Mbr_load I.A1);
      P.line (I.Cjump 1);
      P.line (I.Mbr2_load I.A3);
      P.line ~label:1 I.Return;
    ]
  in
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args:[| 0; 5; 9; 4 |] (P.v prog) in
  let r = RT.run (setup ()) ~meta:(RT.meta ~src:1 ~dst:2 ()) pkt in
  Alcotest.(check int) "skipped load" 9 r.RT.final_mbr2;
  Alcotest.(check int) "3 executed (skipped one)" 3 r.RT.executed

let test_rt_cjumpi_not_taken () =
  let prog =
    [
      P.line (I.Mbr_load I.A1);
      P.line (I.Cjumpi 1);
      P.line (I.Mbr2_load I.A3);
      P.line ~label:1 I.Return;
    ]
  in
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args:[| 0; 5; 9; 4 |] (P.v prog) in
  let r = RT.run (setup ()) ~meta:(RT.meta ~src:1 ~dst:2 ()) pkt in
  Alcotest.(check int) "executed load" 4 r.RT.final_mbr2

let test_rt_ujump () =
  (* MBR preloaded with args[1] = 2; the skipped load would set 5. *)
  let prog =
    [ P.line (I.Ujump 2); P.line (I.Mbr_load I.A2); P.line ~label:2 I.Return ]
  in
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args:[| 0; 2; 5; 0 |] (P.v prog) in
  let r = RT.run (setup ()) ~meta:(RT.meta ~src:1 ~dst:2 ()) pkt in
  Alcotest.(check int) "skipped" 2 r.RT.final_mbr

let test_rt_skipped_consume_stages () =
  let prog =
    (P.line (I.Ujump 1) :: List.init 18 (fun _ -> P.line I.Nop))
    @ [ P.line ~label:1 I.Return ]
  in
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args:[||] (P.v prog) in
  let r = RT.run (setup ()) ~meta:(RT.meta ~src:1 ~dst:2 ()) pkt in
  Alcotest.(check int) "single pass" 1 r.RT.passes;
  Alcotest.(check int) "2 executed" 2 r.RT.executed

let test_rt_mem_read_write () =
  let tables = setup () in
  let r = run ~tables ~args:[| 5; 77; 0; 0 |] [ I.Mem_write; I.Return ] in
  (match r.RT.decision with RT.Forward _ -> () | _ -> Alcotest.fail "write ok");
  let r = run ~tables ~args:[| 5; 0; 0; 0 |] [ I.Mem_read; I.Return ] in
  Alcotest.(check int) "read back" 77 r.RT.final_mbr

let test_rt_mem_increment () =
  let tables = setup () in
  let r = run ~tables ~args:[| 9; 0; 0; 0 |] [ I.Mem_increment; I.Return ] in
  Alcotest.(check int) "first" 1 r.RT.final_mbr;
  let r = run ~tables ~args:[| 9; 0; 0; 0 |] [ I.Mem_increment; I.Return ] in
  Alcotest.(check int) "second" 2 r.RT.final_mbr

let test_rt_mem_minread () =
  let tables = setup () in
  ignore (run ~tables ~args:[| 0; 50; 0; 0 |] [ I.Mem_write; I.Return ]);
  let r = run ~tables ~args:[| 0; 30; 0; 0 |] [ I.Mem_minread; I.Return ] in
  Alcotest.(check int) "min(50,30)" 30 r.RT.final_mbr

let test_rt_mem_minreadinc () =
  let tables = setup () in
  let r = run ~tables ~args:[| 0; 0; 100; 0 |] [ I.Mem_minreadinc; I.Return ] in
  Alcotest.(check int) "MBR = new count" 1 r.RT.final_mbr;
  Alcotest.(check int) "MBR2 = min(count, MBR2)" 1 r.RT.final_mbr2

let test_rt_virtual_confinement () =
  let tables = setup ~stages:[ (0, 512, 256) ] () in
  ignore (run ~tables ~args:[| 300; 7; 0; 0 |] [ I.Mem_write; I.Return ]);
  let r = run ~tables ~args:[| 44; 0; 0; 0 |] [ I.Mem_read; I.Return ] in
  Alcotest.(check int) "wrapped" 7 r.RT.final_mbr

let test_rt_protection_physical () =
  let tables = setup ~virtual_addressing:false ~stages:[ (0, 512, 256) ] () in
  let r = run ~tables ~args:[| 100; 0; 0; 0 |] [ I.Mem_read; I.Return ] in
  (match r.RT.decision with
  | RT.Dropped (RT.Protection_violation { stage = 0; mar = 100 }) -> ()
  | _ -> Alcotest.fail "expected protection drop");
  let r = run ~tables ~args:[| 600; 0; 0; 0 |] [ I.Mem_read; I.Return ] in
  match r.RT.decision with
  | RT.Forward _ -> ()
  | _ -> Alcotest.fail "in-range physical access works"

let test_rt_no_allocation_drop () =
  let tables = setup ~stages:[ (3, 0, 256) ] () in
  let r = run ~tables [ I.Mem_read; I.Return ] in
  match r.RT.decision with
  | RT.Dropped (RT.No_allocation { stage = 0 }) -> ()
  | _ -> Alcotest.fail "expected no-allocation drop"

let test_rt_quiesced_passthrough () =
  let tables = setup () in
  Tbl.quiesce tables ~fid:1;
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args:[| 1; 2; 3; 4 |] (P.v (P.plain [ I.Drop ])) in
  let r = RT.run tables ~meta:(RT.meta ~src:1 ~dst:2 ()) pkt in
  Alcotest.(check bool) "marked quiesced" true r.RT.quiesced;
  (match r.RT.decision with
  | RT.Forward 2 -> ()
  | _ -> Alcotest.fail "quiesced packets pass through");
  Alcotest.(check (array int)) "args preserved" [| 1; 2; 3; 4 |] r.RT.args_out

let test_rt_hash_uses_hashdata () =
  let tables = setup () in
  let r1 =
    run ~tables ~args:[| 0; 5; 9; 0 |]
      [ I.Copy_hashdata_mbr; I.Copy_hashdata_mbr2; I.Hash; I.Return ]
  in
  let r2 =
    run ~tables ~args:[| 0; 5; 10; 0 |]
      [ I.Copy_hashdata_mbr; I.Copy_hashdata_mbr2; I.Hash; I.Return ]
  in
  Alcotest.(check bool) "different data different hash" false
    (r1.RT.final_mar = r2.RT.final_mar)

let test_rt_hash_stage_dependent () =
  let tables = setup () in
  let r1 = run ~tables ~args:[| 0; 5; 9; 0 |] [ I.Hash; I.Return ] in
  let r2 = run ~tables ~args:[| 0; 5; 9; 0 |] [ I.Nop; I.Hash; I.Return ] in
  Alcotest.(check bool) "stage seeds hash rows" false (r1.RT.final_mar = r2.RT.final_mar)

let test_rt_hashdata_5tuple () =
  let tables = setup () in
  let r =
    run ~tables ~flow_key:[| 111; 222 |] [ I.Hashdata_load_5tuple; I.Hash; I.Return ]
  in
  let r' =
    run ~tables ~flow_key:[| 111; 223 |] [ I.Hashdata_load_5tuple; I.Hash; I.Return ]
  in
  Alcotest.(check bool) "flow key feeds hash" false (r.RT.final_mar = r'.RT.final_mar)

let test_rt_addr_mask_offset () =
  let tables = setup ~stages:[ (2, 512, 256) ] () in
  let r =
    run ~tables ~args:[| 0xFFFF; 0; 0; 0 |]
      [ I.Addr_mask; I.Addr_offset; I.Mem_read; I.Return ]
  in
  (match r.RT.decision with RT.Forward _ -> () | _ -> Alcotest.fail "masked access ok");
  Alcotest.(check int) "mask applied" 255 r.RT.final_mar

let test_rt_set_dst () =
  let tables = setup ~privileged:true () in
  let r = run ~tables ~args:[| 0; 555; 0; 0 |] [ I.Set_dst; I.Return ] in
  match r.RT.decision with
  | RT.Forward 555 -> ()
  | _ -> Alcotest.fail "SET_DST did not change destination"

let test_rt_set_dst_unprivileged () =
  let r = run ~args:[| 0; 555; 0; 0 |] [ I.Set_dst; I.Return ] in
  match r.RT.decision with
  | RT.Dropped (RT.Privilege_violation { stage = 0 }) -> ()
  | _ -> Alcotest.fail "unprivileged SET_DST must drop"

let test_rt_drop_instruction () =
  let r = run [ I.Drop; I.Return ] in
  match r.RT.decision with
  | RT.Dropped RT.Explicit_drop -> ()
  | _ -> Alcotest.fail "expected explicit drop"

let test_rt_rts_ingress () =
  let r = run [ I.Rts; I.Return ] in
  (match r.RT.decision with
  | RT.Return_to_sender -> ()
  | _ -> Alcotest.fail "expected RTS");
  Alcotest.(check int) "no port recirculation" 0 r.RT.port_recirculations

let test_rt_rts_egress_costs_recirc () =
  let instrs = List.init 15 (fun _ -> I.Nop) @ [ I.Rts; I.Return ] in
  let r = run instrs in
  Alcotest.(check int) "port recirculation" 1 r.RT.port_recirculations

let test_rt_crts () =
  let r = run ~args:[| 0; 1; 0; 0 |] [ I.Crts; I.Return ] in
  (match r.RT.decision with RT.Return_to_sender -> () | _ -> Alcotest.fail "taken");
  let r = run ~args:[| 0; 0; 0; 0 |] [ I.Crts; I.Return ] in
  match r.RT.decision with
  | RT.Forward _ -> ()
  | _ -> Alcotest.fail "not taken"

let test_rt_fork () =
  let tables = setup ~privileged:true () in
  let r = run ~tables [ I.Fork; I.Return ] in
  Alcotest.(check int) "one clone" 1 r.RT.forks

let test_rt_fork_unprivileged () =
  let r = run [ I.Fork; I.Return ] in
  match r.RT.decision with
  | RT.Dropped (RT.Privilege_violation _) -> ()
  | _ -> Alcotest.fail "unprivileged FORK must drop"

let test_rt_per_fid_pass_allowance () =
  (* The device would allow many recirculations, but this FID is limited
     to two passes: a 3-pass program drops. *)
  let tables = setup ~max_passes:2 () in
  let three_pass = List.init 45 (fun _ -> I.Nop) @ [ I.Return ] in
  let r = run ~tables three_pass in
  (match r.RT.decision with
  | RT.Dropped RT.Recirculation_limit -> ()
  | _ -> Alcotest.fail "pass allowance not enforced");
  let two_pass = List.init 24 (fun _ -> I.Nop) @ [ I.Return ] in
  let r = run ~tables two_pass in
  match r.RT.decision with
  | RT.Forward _ -> ()
  | _ -> Alcotest.fail "allowed passes still run"

let test_rt_recirculation () =
  let instrs = List.init 24 (fun _ -> I.Nop) @ [ I.Return ] in
  let r = run instrs in
  Alcotest.(check int) "two passes" 2 r.RT.passes;
  Alcotest.(check int) "25 executed" 25 r.RT.executed

let test_rt_recirc_limit () =
  let small = { params with Rmt.Params.recirc_limit = 1 } in
  let device = Rmt.Device.create small in
  let t = Tbl.create device in
  ignore (Tbl.install t ~fid:1 ~virtual_addressing:true ~regions:(Array.make 20 None));
  let instrs = List.init 70 (fun _ -> I.Nop) @ [ I.Return ] in
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args:[||] (P.v (P.plain instrs)) in
  let r = RT.run t ~meta:(RT.meta ~src:1 ~dst:2 ()) pkt in
  match r.RT.decision with
  | RT.Dropped RT.Recirculation_limit -> ()
  | _ -> Alcotest.fail "expected recirculation-limit drop"

let test_rt_pipelines_and_latency () =
  let check_pipelines n expect =
    let instrs = (I.Rts :: List.init (n - 2) (fun _ -> I.Nop)) @ [ I.Return ] in
    let r = run instrs in
    Alcotest.(check int) (Printf.sprintf "%d instrs" n) expect r.RT.pipelines
  in
  check_pipelines 10 1;
  check_pipelines 20 2;
  check_pipelines 30 3;
  let r = run ((I.Rts :: List.init 8 (fun _ -> I.Nop)) @ [ I.Return ]) in
  Alcotest.(check (float 1e-9)) "latency model" 10.5 (RT.latency_us params r)

let test_packet_strip_executed () =
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args:[||] listing1 in
  let full = Pkt.wire_size ~stages:20 pkt in
  let stripped = Pkt.strip_executed pkt ~upto:4 in
  Alcotest.(check int) "4 headers = 8 bytes saved" (full - 8)
    (Pkt.wire_size ~stages:20 stripped);
  (match stripped.Pkt.payload with
  | Pkt.Exec { program; _ } ->
    Alcotest.(check int) "7 instructions left" 7 (P.length program)
  | _ -> Alcotest.fail "payload");
  let all = Pkt.strip_executed pkt ~upto:99 in
  (match all.Pkt.payload with
  | Pkt.Exec { program; _ } -> Alcotest.(check int) "empty" 0 (P.length program)
  | _ -> Alcotest.fail "payload");
  Alcotest.(check bool) "non-exec unchanged" true
    (Pkt.strip_executed { pkt with Pkt.payload = Pkt.Bare } ~upto:3
     = { pkt with Pkt.payload = Pkt.Bare })

let test_rt_consumed_prefix () =
  (* A cache miss completes at the first CRET: the parser can discard the
     four leading instruction headers. *)
  let tables = setup ~stages:[ (1, 0, 256); (4, 0, 256); (8, 0, 256) ] () in
  let key = Workload.Kv.key_of_rank 3 in
  let pkt =
    Pkt.exec
      ~flags:{ Pkt.no_flags with Pkt.virtual_addressing = true }
      ~fid:1 ~seq:0
      ~args:[| 9; key.Workload.Kv.k0; key.Workload.Kv.k1; 0 |]
      listing1
  in
  let r = RT.run tables ~meta:(RT.meta ~src:1 ~dst:2 ()) pkt in
  Alcotest.(check int) "miss consumes 4 headers" 4 r.RT.consumed_prefix;
  let shrunk = Pkt.strip_executed pkt ~upto:r.RT.consumed_prefix in
  Alcotest.(check bool) "packet shrank" true
    (Pkt.wire_size ~stages:20 shrunk < Pkt.wire_size ~stages:20 pkt)

(* Random label-free programs execute without raising under any of the
   addressing modes; decisions are always one of the three outcomes. *)
let prop_runtime_total =
  QCheck.Test.make ~name:"interpreter is total on label-free programs" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 50) instr_gen)
           (array_size (return 4) (int_range 0 0xFFFF))))
    (fun (instrs, args) ->
      let tables = setup ~stages:[ (0, 0, 256); (5, 256, 256); (13, 0, 512) ] () in
      let pkt = Pkt.exec ~fid:1 ~seq:0 ~args (P.v (P.plain instrs)) in
      let r = RT.run tables ~meta:(RT.meta ~src:1 ~dst:2 ()) pkt in
      (match r.RT.decision with
      | RT.Forward _ | RT.Return_to_sender | RT.Dropped _ -> true)
      && r.RT.passes >= 1
      && r.RT.executed <= List.length instrs * (Rmt.Params.default.Rmt.Params.recirc_limit + 1))

(* Differential: a program must behave identically after a trip through
   the assembler or the wire codec (fresh, identical switches). *)
let same_result r1 r2 =
  r1.RT.decision = r2.RT.decision
  && r1.RT.args_out = r2.RT.args_out
  && r1.RT.executed = r2.RT.executed
  && r1.RT.passes = r2.RT.passes
  && r1.RT.final_mbr = r2.RT.final_mbr
  && r1.RT.final_mbr2 = r2.RT.final_mbr2
  && r1.RT.final_mar = r2.RT.final_mar

let run_fresh instrs_program args =
  let tables = setup ~stages:[ (0, 0, 256); (5, 256, 256); (13, 0, 512) ] () in
  let pkt = Pkt.exec ~fid:1 ~seq:0 ~args instrs_program in
  RT.run tables ~meta:(RT.meta ~src:1 ~dst:2 ()) pkt

let prop_assembler_preserves_semantics =
  QCheck.Test.make ~name:"assembler round trip preserves execution" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 30) instr_gen)
           (array_size (return 4) (int_range 0 1000))))
    (fun (instrs, args) ->
      let p = P.v (P.plain instrs) in
      match P.parse (P.to_assembly p) with
      | Error _ -> List.exists (fun i -> i = I.Return) instrs
      | Ok p' -> same_result (run_fresh p args) (run_fresh p' args))

let prop_wire_preserves_semantics =
  QCheck.Test.make ~name:"wire round trip preserves execution" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 30) instr_gen)
           (array_size (return 4) (int_range 0 1000))))
    (fun (instrs, args) ->
      let p = P.v (P.plain instrs) in
      match W.decode_program (W.encode_program p) ~off:0 with
      | Error _ -> false
      | Ok (p', _, _) -> same_result (run_fresh p args) (run_fresh p' args))

let () =
  Alcotest.run "core"
    [
      ( "instr",
        [
          Alcotest.test_case "mnemonic roundtrip" `Quick test_mnemonic_roundtrip;
          Alcotest.test_case "case insensitive" `Quick test_mnemonic_case_insensitive;
          Alcotest.test_case "parse errors" `Quick test_mnemonic_errors;
          Alcotest.test_case "CRET1 alias" `Quick test_cret1_alias;
          Alcotest.test_case "memory classification" `Quick
            test_memory_access_classification;
          Alcotest.test_case "needs ingress" `Quick test_needs_ingress;
          Alcotest.test_case "branch target" `Quick test_branch_target;
          Alcotest.test_case "arg index" `Quick test_arg_index;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip all opcodes" `Quick test_wire_roundtrip_all;
          Alcotest.test_case "unknown opcode" `Quick test_wire_unknown_opcode;
          Alcotest.test_case "program roundtrip" `Quick test_wire_program_roundtrip;
          Alcotest.test_case "truncated" `Quick test_wire_truncated;
          QCheck_alcotest.to_alcotest prop_program_wire_roundtrip;
        ] );
      ( "program",
        [
          Alcotest.test_case "listing 1 structure" `Quick test_listing1_structure;
          Alcotest.test_case "backward jump rejected" `Quick test_parse_backward_jump;
          Alcotest.test_case "forward label ok" `Quick test_parse_forward_label;
          Alcotest.test_case "duplicate label" `Quick test_validate_duplicate_label;
          Alcotest.test_case "embedded EOF" `Quick test_validate_embedded_eof;
          Alcotest.test_case "unreachable code" `Quick test_validate_unreachable;
          Alcotest.test_case "trailing padding" `Quick test_validate_trailing_padding_ok;
          Alcotest.test_case "assembly roundtrip" `Quick test_assembly_roundtrip;
          QCheck_alcotest.to_alcotest prop_assembly_roundtrip;
        ] );
      ( "packet",
        [
          Alcotest.test_case "bare" `Quick test_packet_bare;
          Alcotest.test_case "flags" `Quick test_packet_flags;
          Alcotest.test_case "request" `Quick test_packet_request_roundtrip;
          Alcotest.test_case "response" `Quick test_packet_response_roundtrip;
          Alcotest.test_case "exec" `Quick test_packet_exec_roundtrip;
          Alcotest.test_case "wire size" `Quick test_packet_wire_size;
          Alcotest.test_case "short packet" `Quick test_packet_short;
          Alcotest.test_case "too many args" `Quick test_packet_too_many_args;
          Alcotest.test_case "strip executed" `Quick test_packet_strip_executed;
          QCheck_alcotest.to_alcotest prop_packet_decode_never_raises;
          QCheck_alcotest.to_alcotest prop_packet_roundtrip_requests;
          QCheck_alcotest.to_alcotest prop_packet_roundtrip_responses;
        ] );
      ( "table",
        [
          Alcotest.test_case "install/lookup" `Quick test_table_install_lookup;
          Alcotest.test_case "physical offsets" `Quick test_table_physical_offsets;
          Alcotest.test_case "remove" `Quick test_table_remove;
          Alcotest.test_case "double install" `Quick test_table_double_install;
          Alcotest.test_case "quiesce" `Quick test_table_quiesce;
          Alcotest.test_case "update stats" `Quick test_table_update_stats;
          Alcotest.test_case "tcam rollback" `Quick test_table_tcam_rollback;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "preloading" `Quick test_rt_preloading;
          Alcotest.test_case "loads and copies" `Quick test_rt_loads_and_copies;
          Alcotest.test_case "arithmetic" `Quick test_rt_arithmetic;
          Alcotest.test_case "mar adds" `Quick test_rt_mar_adds;
          Alcotest.test_case "bit ops" `Quick test_rt_bitops;
          Alcotest.test_case "min/max" `Quick test_rt_minmax;
          Alcotest.test_case "swap" `Quick test_rt_swap;
          Alcotest.test_case "revmin" `Quick test_rt_revmin;
          Alcotest.test_case "equals/not" `Quick test_rt_equals_and_not;
          Alcotest.test_case "mbr_store" `Quick test_rt_mbr_store;
          Alcotest.test_case "return" `Quick test_rt_return_forwards;
          Alcotest.test_case "cret" `Quick test_rt_cret;
          Alcotest.test_case "creti" `Quick test_rt_creti;
          Alcotest.test_case "cjump taken" `Quick test_rt_cjump_taken;
          Alcotest.test_case "cjumpi not taken" `Quick test_rt_cjumpi_not_taken;
          Alcotest.test_case "ujump" `Quick test_rt_ujump;
          Alcotest.test_case "skips consume stages" `Quick test_rt_skipped_consume_stages;
          Alcotest.test_case "mem read/write" `Quick test_rt_mem_read_write;
          Alcotest.test_case "mem increment" `Quick test_rt_mem_increment;
          Alcotest.test_case "mem minread" `Quick test_rt_mem_minread;
          Alcotest.test_case "mem minreadinc" `Quick test_rt_mem_minreadinc;
          Alcotest.test_case "virtual confinement" `Quick test_rt_virtual_confinement;
          Alcotest.test_case "physical protection" `Quick test_rt_protection_physical;
          Alcotest.test_case "no allocation" `Quick test_rt_no_allocation_drop;
          Alcotest.test_case "quiesced passthrough" `Quick test_rt_quiesced_passthrough;
          Alcotest.test_case "hash data" `Quick test_rt_hash_uses_hashdata;
          Alcotest.test_case "hash per stage" `Quick test_rt_hash_stage_dependent;
          Alcotest.test_case "5-tuple hashdata" `Quick test_rt_hashdata_5tuple;
          Alcotest.test_case "addr mask/offset" `Quick test_rt_addr_mask_offset;
          Alcotest.test_case "set_dst" `Quick test_rt_set_dst;
          Alcotest.test_case "set_dst unprivileged" `Quick test_rt_set_dst_unprivileged;
          Alcotest.test_case "drop" `Quick test_rt_drop_instruction;
          Alcotest.test_case "rts ingress" `Quick test_rt_rts_ingress;
          Alcotest.test_case "rts egress recirc" `Quick test_rt_rts_egress_costs_recirc;
          Alcotest.test_case "crts" `Quick test_rt_crts;
          Alcotest.test_case "fork" `Quick test_rt_fork;
          Alcotest.test_case "fork unprivileged" `Quick test_rt_fork_unprivileged;
          Alcotest.test_case "per-fid pass allowance" `Quick test_rt_per_fid_pass_allowance;
          Alcotest.test_case "recirculation" `Quick test_rt_recirculation;
          Alcotest.test_case "recirc limit" `Quick test_rt_recirc_limit;
          Alcotest.test_case "pipelines/latency" `Quick test_rt_pipelines_and_latency;
          Alcotest.test_case "consumed prefix" `Quick test_rt_consumed_prefix;
          QCheck_alcotest.to_alcotest prop_runtime_total;
          QCheck_alcotest.to_alcotest prop_assembler_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_wire_preserves_semantics;
        ] );
    ]
