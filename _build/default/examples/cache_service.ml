(* The full cache service lifecycle on the simulated testbed — a compact
   version of the Section 6.3 case study (Figure 9a).

     dune exec examples/cache_service.exe

   A client deploys the frequent-item monitor on its object requests,
   extracts the hot set after two seconds, context-switches to the cache
   service and populates it; the printed timeline shows the hit rate
   going from zero (monitoring, all requests served by the KV server)
   to its stable cache-served level. *)

let () =
  let config =
    { Experiments.Case_study.default_config with request_rate_pps = 10_000.0 }
  in
  let result = Experiments.Case_study.run_single ~config Rmt.Params.default in
  let tenant = List.hd result.Experiments.Case_study.tenants in
  print_endline "time(s)  hit-rate  phase";
  let phase_of t =
    if t < 0.1 then "provisioning (monitor)"
    else if t < 2.0 then "monitoring"
    else if t < 2.5 then "extract + context switch"
    else "cache operational"
  in
  let step = 250 in
  let duration_ms = int_of_float (result.Experiments.Case_study.duration_s *. 1000.0) in
  let t = ref 0 in
  while !t < duration_ms do
    Printf.printf "%6.2f   %6.3f    %s\n"
      (float_of_int !t /. 1000.0)
      (Experiments.Case_study.hit_rate_window tenant ~lo_ms:!t ~hi_ms:(!t + step - 1))
      (phase_of (float_of_int !t /. 1000.0));
    t := !t + step
  done;
  (match tenant.Experiments.Case_study.first_hit_s with
  | Some s -> Printf.printf "\nfirst cache hit %.3f s after the context switch began\n" (s -. 2.0)
  | None -> print_endline "\nno cache hits?!");
  Printf.printf "final cache capacity: %d buckets\n"
    tenant.Experiments.Case_study.n_buckets
