examples/multi_tenant.ml: Experiments List Printf Rmt
