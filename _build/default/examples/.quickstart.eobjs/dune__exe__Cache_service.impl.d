examples/cache_service.ml: Experiments List Printf Rmt
