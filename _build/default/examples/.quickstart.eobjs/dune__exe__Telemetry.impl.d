examples/telemetry.ml: Activermt Activermt_apps Activermt_client Activermt_compiler Activermt_control Array List Option Printf Rmt Stdx Workload
