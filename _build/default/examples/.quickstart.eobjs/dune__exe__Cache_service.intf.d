examples/cache_service.mli:
