examples/quickstart.mli:
