examples/telemetry.mli:
