examples/membership.mli:
