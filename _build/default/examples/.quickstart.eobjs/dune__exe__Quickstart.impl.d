examples/quickstart.ml: Activermt Activermt_apps Activermt_client Activermt_compiler Activermt_control Array Option Printf Rmt Workload
