examples/membership.ml: Activermt Activermt_apps Activermt_client Activermt_control Printf Rmt
