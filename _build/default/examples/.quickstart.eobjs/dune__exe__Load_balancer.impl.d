examples/load_balancer.ml: Activermt Activermt_apps Activermt_client Activermt_compiler Activermt_control Array Hashtbl List Option Printf Rmt String
