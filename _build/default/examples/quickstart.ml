(* Quickstart: deploy one in-network cache service on a simulated switch,
   store an object from the data plane and read it back.

     dune exec examples/quickstart.exe

   This walks the whole public API surface: device creation, admission
   through the controller, client-side synthesis against the granted
   allocation, and packet execution by the shared runtime. *)

module Controller = Activermt_control.Controller
module Cache_client = Activermt_client.Cache_client
module Negotiate = Activermt_client.Negotiate
module Mutant = Activermt_compiler.Mutant
module Kv = Workload.Kv

let () =
  (* 1. A switch: 20 logical stages, 256 blocks of register memory each,
     running the shared ActiveRMT runtime. *)
  let params = Rmt.Params.default in
  let device = Rmt.Device.create params in
  let controller = Controller.create device in

  (* 2. The client asks for memory.  The allocation request describes the
     cache program's access pattern (three accesses, Listing 1); the
     controller picks a mutant and returns per-stage regions. *)
  let fid = 1 in
  let request = Negotiate.request_packet ~fid ~seq:0 Activermt_apps.Cache.service in
  let response =
    match Controller.handle_request controller request with
    | Ok provision -> provision.Controller.response
    | Error _ -> failwith "admission failed on an empty switch?"
  in
  let regions = Option.get (Negotiate.granted_regions response) in
  Printf.printf "granted stages:";
  Array.iteri
    (fun s r -> match r with Some _ -> Printf.printf " %d" s | None -> ())
    regions;
  print_newline ();

  (* 3. Client-side synthesis: recover the chosen mutant and materialize
     the query/populate programs against it. *)
  let cache =
    match
      Cache_client.create params ~policy:Mutant.Most_constrained ~fid ~regions
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  Printf.printf "cache capacity: %d buckets\n" (Cache_client.n_buckets cache);

  (* 4. Run packets through the data plane. *)
  let tables = Controller.tables controller in
  let meta = Activermt.Runtime.meta ~src:100 ~dst:200 () in
  let key = Kv.key_of_rank 7 in

  let miss = Activermt.Runtime.run tables ~meta (Cache_client.query_packet cache ~seq:1 key) in
  (match miss.Activermt.Runtime.decision with
  | Activermt.Runtime.Forward dst ->
    Printf.printf "query before insert: MISS, forwarded to %d\n" dst
  | Activermt.Runtime.Return_to_sender | Activermt.Runtime.Dropped _ ->
    failwith "expected a miss");

  let store =
    Activermt.Runtime.run tables ~meta
      (Cache_client.populate_packet cache ~seq:2 key ~value:424242)
  in
  (match store.Activermt.Runtime.decision with
  | Activermt.Runtime.Return_to_sender -> print_endline "populate: acknowledged via RTS"
  | Activermt.Runtime.Forward _ | Activermt.Runtime.Dropped _ ->
    failwith "populate failed");

  let hit = Activermt.Runtime.run tables ~meta (Cache_client.query_packet cache ~seq:3 key) in
  (match hit.Activermt.Runtime.decision with
  | Activermt.Runtime.Return_to_sender ->
    Printf.printf "query after insert: HIT, value = %d (RTT %.2f us)\n"
      hit.Activermt.Runtime.args_out.(3)
      (Activermt.Runtime.latency_us params hit)
  | Activermt.Runtime.Forward _ | Activermt.Runtime.Dropped _ ->
    failwith "expected a hit")
