(* In-network set membership with a Bloom filter — a service the paper
   does not ship, built from the published instruction set to probe its
   generality (Section 7.1).

     dune exec examples/membership.exe

   Inserts 5,000 flows, then queries members (never false-negative) and
   strangers (false-positive rate compared against the analytic value).
   Three probes use three different per-stage hash engines; insert and
   query share the access skeleton so one mutant schedules both. *)

module Controller = Activermt_control.Controller
module Negotiate = Activermt_client.Negotiate
module Bloom = Activermt_apps.Bloom

let () =
  let params = Rmt.Params.default in
  let device = Rmt.Device.create params in
  let controller = Controller.create device in
  let fid = 6 in
  (match
     Controller.handle_request controller (Negotiate.request_packet ~fid ~seq:0 Bloom.service)
   with
  | Ok _ -> print_endline "bloom filter admitted (elastic, three stages)"
  | Error _ -> failwith "admission failed");
  let tables = Controller.tables controller in
  let meta = Activermt.Runtime.meta ~src:1 ~dst:2 () in
  let exec args program =
    Activermt.Runtime.run tables ~meta
      (Activermt.Packet.exec
         ~flags:{ Activermt.Packet.no_flags with virtual_addressing = true }
         ~fid ~seq:0 ~args program)
  in
  let insert k0 k1 =
    ignore (exec (Bloom.insert_args ~key0:k0 ~key1:k1) Bloom.insert_program)
  in
  let member k0 k1 =
    match
      (exec (Bloom.query_args ~key0:k0 ~key1:k1) Bloom.query_program)
        .Activermt.Runtime.decision
    with
    | Activermt.Runtime.Return_to_sender -> true
    | Activermt.Runtime.Forward _ | Activermt.Runtime.Dropped _ -> false
  in
  let n = 5_000 in
  for i = 0 to n - 1 do
    insert i (i + 77_000_000)
  done;
  Printf.printf "inserted %d flows\n" n;

  let false_negatives = ref 0 in
  for i = 0 to n - 1 do
    if not (member i (i + 77_000_000)) then incr false_negatives
  done;
  Printf.printf "false negatives: %d (must be 0)\n" !false_negatives;

  let probes = 20_000 in
  let fps = ref 0 in
  for i = 0 to probes - 1 do
    if member (1_000_000 + i) (2_000_000 + i) then incr fps
  done;
  let measured = float_of_int !fps /. float_of_int probes in
  Printf.printf "false-positive rate: measured %.5f, analytic %.5f\n" measured
    (Bloom.false_positive_rate ~bits_per_stage:65536 ~inserted:n)
