(* Cheetah load balancer end to end (Appendix B.2).

     dune exec examples/load_balancer.exe

   Deploys the stateless load balancer as a curated (privileged) active
   service, installs the VIP pool through data-plane memsync writes, then
   opens flows: each SYN runs the server-selection program (round-robin
   over the pool, cookie written back into the packet) and subsequent
   packets run the flow-routing program, which recovers the chosen server
   from the cookie with no switch state at all. *)

module Controller = Activermt_control.Controller
module Negotiate = Activermt_client.Negotiate
module Lb_client = Activermt_client.Lb_client
module Mutant = Activermt_compiler.Mutant

let () =
  let params = Rmt.Params.default in
  let device = Rmt.Device.create params in
  let controller = Controller.create device in
  let fid = 2 in
  (* The LB changes packet destinations (SET_DST), so the operator marks
     it as a curated, privileged service (Section 7.2). *)
  Controller.grant_privilege controller ~fid;
  (match
     Controller.handle_request controller
       (Negotiate.request_packet ~fid ~seq:0 Activermt_apps.Cheetah_lb.service)
   with
  | Ok _ -> ()
  | Error _ -> failwith "LB admission failed");
  let regions =
    Option.get
      (Negotiate.granted_regions
         (Option.get (Controller.regions_packet controller ~fid)))
  in
  let lb =
    match
      Lb_client.create params ~policy:Mutant.Most_constrained ~fid ~regions
    with
    | Ok lb -> lb
    | Error e -> failwith e
  in
  Printf.printf "LB admitted; access stages: %s\n"
    (String.concat ","
       (List.map string_of_int (Array.to_list (Lb_client.access_stages lb))));

  (* Install the VIP pool (8 backend servers on ports 501..508) with
     data-plane memsync writes. *)
  let tables = Controller.tables controller in
  let ports = Array.init 8 (fun i -> 501 + i) in
  List.iter
    (fun (_seq, pkt) ->
      let meta = Activermt.Runtime.meta ~src:1 ~dst:0 () in
      match (Activermt.Runtime.run tables ~meta pkt).Activermt.Runtime.decision with
      | Activermt.Runtime.Return_to_sender -> ()
      | _ -> failwith "pool write lost")
    (Lb_client.pool_write_packets lb ~ports);
  print_endline "VIP pool installed via data-plane writes";

  (* Open 16 flows: SYN -> cookie; then route 3 packets per flow and check
     they all reach the backend the SYN selected. *)
  let salt = 0x5A17 in
  let counts = Hashtbl.create 8 in
  let ok = ref 0 in
  for flow = 1 to 16 do
    let flow_key = [| 0xC0A80000 + flow; (flow * 7919) land 0xFFFFFFFF |] in
    let meta = { Activermt.Runtime.src = 1; dst = 999; flow_key } in
    let r = Activermt.Runtime.run tables ~meta (Lb_client.syn_packet lb ~seq:flow ~salt) in
    let chosen =
      match r.Activermt.Runtime.decision with
      | Activermt.Runtime.Forward dst -> dst
      | Activermt.Runtime.Return_to_sender | Activermt.Runtime.Dropped _ ->
        failwith "SYN was not forwarded"
    in
    let cookie = r.Activermt.Runtime.args_out.(Activermt_apps.Cheetah_lb.arg_cookie) in
    Hashtbl.replace counts chosen
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts chosen));
    for _pkt = 1 to 3 do
      let p = Lb_client.flow_packet lb ~seq:0 ~salt ~cookie in
      match (Activermt.Runtime.run tables ~meta p).Activermt.Runtime.decision with
      | Activermt.Runtime.Forward dst when dst = chosen -> incr ok
      | Activermt.Runtime.Forward dst ->
        Printf.printf "flow %d: MISROUTED to %d (wanted %d)\n" flow dst chosen
      | Activermt.Runtime.Return_to_sender | Activermt.Runtime.Dropped _ ->
        print_endline "flow packet lost"
    done
  done;
  Printf.printf "%d/48 flow packets routed to their SYN-selected backend\n" !ok;
  print_endline "round-robin balance across backends:";
  Hashtbl.iter (fun port n -> Printf.printf "  port %d: %d flows\n" port n) counts
