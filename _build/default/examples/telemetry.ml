(* Network telemetry: the frequent-item monitor (Appendix B.1).

     dune exec examples/telemetry.exe

   Streams 200k Zipf-popular object keys through the heavy-hitter active
   program, then extracts the per-slot thresholds and stored keys through
   data-plane memsync reads and compares the recovered frequent-item set
   against the true most-popular keys. *)

module Controller = Activermt_control.Controller
module Hh_client = Activermt_client.Hh_client
module Negotiate = Activermt_client.Negotiate
module Mutant = Activermt_compiler.Mutant
module Memsync = Activermt_apps.Memsync
module Kv = Workload.Kv
module Zipf = Workload.Zipf

let () =
  let params = Rmt.Params.default in
  let device = Rmt.Device.create params in
  let controller = Controller.create device in
  let fid = 3 in
  let request = Negotiate.request_packet ~fid ~seq:0 Activermt_apps.Heavy_hitter.service in
  (match Controller.handle_request controller request with
  | Ok _ -> ()
  | Error _ -> failwith "HH admission failed");
  let regions =
    Option.get
      (Negotiate.granted_regions (Option.get (Controller.regions_packet controller ~fid)))
  in
  let hh =
    match Hh_client.create params ~policy:Mutant.Most_constrained ~fid ~regions with
    | Ok h -> h
    | Error e -> failwith e
  in
  Printf.printf "monitor deployed: %d threshold slots, sketch stages %d/%d\n"
    (Hh_client.n_slots hh)
    (Hh_client.granted hh).Activermt_client.Synthesis.mutant.Mutant.stages.(0)
    (Hh_client.granted hh).Activermt_client.Synthesis.mutant.Mutant.stages.(1);

  (* Stream the workload through the data plane. *)
  let tables = Controller.tables controller in
  let meta = Activermt.Runtime.meta ~src:1 ~dst:2 () in
  let rng = Stdx.Prng.create ~seed:2024 in
  let zipf = Zipf.create ~exponent:1.1 ~n:100_000 rng in
  let n_requests = 200_000 in
  for seq = 1 to n_requests do
    let key = Kv.key_of_rank (Zipf.sample zipf) in
    ignore (Activermt.Runtime.run tables ~meta (Hh_client.monitor_packet hh ~seq key))
  done;
  Printf.printf "streamed %d requests\n" n_requests;

  (* Extract the monitor state with memsync reads (one packet reads the
     threshold and both key words of a slot). *)
  let stages =
    [ Hh_client.threshold_stage hh; Hh_client.key0_stage hh; Hh_client.key1_stage hh ]
  in
  let read = Memsync.read_program ~stages in
  let n = Hh_client.n_slots hh in
  let thresholds = Array.make n 0 in
  let key0s = Array.make n 0 in
  let key1s = Array.make n 0 in
  for i = 0 to n - 1 do
    let pkt =
      Activermt.Packet.exec
        ~flags:{ Activermt.Packet.no_flags with virtual_addressing = true }
        ~fid ~seq:i ~args:(Memsync.read_args ~index:i) read
    in
    let r = Activermt.Runtime.run tables ~meta pkt in
    thresholds.(i) <- r.Activermt.Runtime.args_out.(1);
    key0s.(i) <- r.Activermt.Runtime.args_out.(2);
    key1s.(i) <- r.Activermt.Runtime.args_out.(3)
  done;

  let items = Hh_client.frequent_items ~thresholds ~key0s ~key1s in
  Printf.printf "recovered %d frequent items; top 10 by sketched count:\n"
    (List.length items);
  List.iteri
    (fun i ((key : Kv.key), count) ->
      if i < 10 then
        match Kv.rank_of_key key with
        | Some rank -> Printf.printf "  true rank %5d  sketched count %d\n" rank count
        | None -> Printf.printf "  (collided key)  sketched count %d\n" count)
    items;
  let top_ranks =
    List.filter_map (fun (k, _) -> Kv.rank_of_key k) items
    |> List.filter (fun r -> r < 100)
  in
  Printf.printf "coverage of the true top-100: %d/100\n" (List.length top_ranks)
