(* Multi-tenancy and non-disruptive reallocation — the Figure 9b/10
   scenario in miniature.

     dune exec examples/multi_tenant.exe

   Four clients deploy private cache instances on the same switch,
   staggered five seconds apart.  The first three receive disjoint stage
   sets; the fourth must share memory with the first, which triggers the
   reallocation protocol: the first tenant is quiesced, extracts its
   state, acks, and resumes on a smaller region — everyone else keeps
   serving hits throughout. *)

let () =
  let config =
    { Experiments.Case_study.default_config with request_rate_pps = 10_000.0 }
  in
  let result = Experiments.Case_study.run_multi ~config Rmt.Params.default in
  List.iter
    (fun t ->
      Printf.printf "tenant fid %d (arrived %4.1fs): %d buckets, stable hit rate %.3f\n"
        t.Experiments.Case_study.fid t.Experiments.Case_study.arrival_s
        t.Experiments.Case_study.n_buckets
        (Experiments.Case_study.hit_rate_window t
           ~lo_ms:
             (int_of_float ((result.Experiments.Case_study.duration_s -. 2.0) *. 1000.0))
           ~hi_ms:(int_of_float (result.Experiments.Case_study.duration_s *. 1000.0)));
      (match t.Experiments.Case_study.first_hit_s with
      | Some s ->
        Printf.printf "  provisioned and serving hits %.0f ms after arrival\n"
          ((s -. t.Experiments.Case_study.arrival_s) *. 1000.0)
      | None -> print_endline "  never served a hit");
      List.iter
        (fun (a, b) ->
          Printf.printf "  disrupted %.3f-%.3f s (%.0f ms) by a reallocation\n" a b
            ((b -. a) *. 1000.0))
        t.Experiments.Case_study.disruptions)
    result.Experiments.Case_study.tenants;
  print_endline
    "\nThe fourth arrival shares stages with the first tenant: both end with\n\
     half the buckets and equal, lower hit rates, while tenants 2 and 3 are\n\
     untouched (compare the paper's Figures 9b and 10)."
