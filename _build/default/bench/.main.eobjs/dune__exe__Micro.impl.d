bench/micro.ml: Activermt Activermt_alloc Activermt_apps Activermt_client Activermt_compiler Activermt_control Bechamel Hashtbl Option Printf Rmt Workload
