bench/alloc_bench.ml: Activermt_alloc Activermt_apps Array Experiments List Printf Rmt Stdx String Unix Workload
