bench/main.mli:
