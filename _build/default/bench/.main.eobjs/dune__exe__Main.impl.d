bench/main.ml: Alloc_bench Array Experiments List Micro Printf Rmt Sys
