bench/main.ml: Array Experiments List Micro Printf Rmt Sys
