(* Admit-throughput benchmark behind the allocation fast path
   (BENCH_alloc.json): replay pure and mixed arrival workloads against a
   fresh allocator at 1 and N scoring domains and report arrivals/sec plus
   p50/p99 per-admit compute time.  The [baseline] block holds the numbers
   measured on the pre-fast-path sequential implementation (same machine,
   same seeded workloads, commit 2da735c) so the JSON always carries the
   before/after comparison the trajectory is judged on. *)

module Allocator = Activermt_alloc.Allocator
module App = Activermt_apps.App
module Stats = Stdx.Stats

let params = Rmt.Params.default

let arrival_of ~fid kind =
  let app = Experiments.Harness.app_of_kind kind in
  {
    Allocator.fid;
    spec = App.spec app;
    elastic = app.App.elastic;
    demand_blocks = Array.copy app.App.demand_blocks;
  }

let arrivals_of_trace trace =
  List.concat_map
    (fun (e : Workload.Churn.epoch) ->
      List.filter_map
        (function
          | Workload.Churn.Arrive { fid; kind } -> Some (arrival_of ~fid kind)
          | Workload.Churn.Depart _ -> None)
        e.Workload.Churn.events)
    trace

type run_stats = {
  label : string;
  workload : string;
  domains : int;
  arrivals : int;
  admitted : int;
  wall_s : float;
  p50_ms : float;
  p99_ms : float;
}

let throughput s = float_of_int s.arrivals /. s.wall_s

let measure ~label ~workload ~domains arrivals =
  let alloc = Allocator.create ~domains params in
  let times = ref [] in
  let admitted = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun a ->
      match Allocator.admit alloc a with
      | Allocator.Admitted adm ->
        incr admitted;
        times := adm.Allocator.compute_time_s :: !times
      | Allocator.Rejected r -> times := r.Allocator.compute_time_s :: !times)
    arrivals;
  let wall_s = Unix.gettimeofday () -. t0 in
  let ms p = 1000.0 *. Stats.percentile !times p in
  {
    label;
    workload;
    domains;
    arrivals = List.length arrivals;
    admitted = !admitted;
    wall_s;
    p50_ms = ms 50.0;
    p99_ms = ms 99.0;
  }

let pure_trace ~n = Workload.Churn.arrivals_sequence Workload.Churn.Cache ~n

let mixed_trace ~n =
  Workload.Churn.mixed_arrivals ~n (Stdx.Prng.create ~seed:3001)

(* Measured on the seed implementation (two-pass enumeration, per-mutant
   Pool.slots/hashtable scoring, single core) with this same benchmark at
   n = 500 before the fast path landed. *)
let baseline =
  [
    ("pure", 7383.1, 0.104, 0.366);
    ("mixed", 414.0, 0.068, 12.299);
  ]

let json_of_stats s =
  Printf.sprintf
    {|    {"workload": "%s", "domains": %d, "arrivals": %d, "admitted": %d, "arrivals_per_sec": %.1f, "p50_ms": %.4f, "p99_ms": %.4f}|}
    s.workload s.domains s.arrivals s.admitted (throughput s) s.p50_ms s.p99_ms

let write_json ~path stats =
  let oc = open_out path in
  output_string oc "{\n  \"baseline_seq\": [\n";
  output_string oc
    (String.concat ",\n"
       (List.map
          (fun (w, tput, p50, p99) ->
            Printf.sprintf
              {|    {"workload": "%s", "domains": 1, "arrivals_per_sec": %.1f, "p50_ms": %.4f, "p99_ms": %.4f}|}
              w tput p50 p99)
          baseline));
  output_string oc "\n  ],\n  \"fastpath\": [\n";
  output_string oc (String.concat ",\n" (List.map json_of_stats stats));
  output_string oc "\n  ]\n}\n";
  close_out oc

let print_stats s =
  Printf.printf
    "%-24s %5d arrivals (%d admitted)  %9.1f arrivals/s  p50 %.3f ms  p99 %.3f ms\n"
    s.label s.arrivals s.admitted (throughput s) s.p50_ms s.p99_ms

let run ~quick =
  let n = if quick then 150 else 500 in
  let n_domains = Stdx.Domain_pool.default_size () in
  Printf.printf "== Allocation fast path: admit throughput (n=%d, N=%d domains) ==\n"
    n n_domains;
  let pure = arrivals_of_trace (pure_trace ~n) in
  let mixed = arrivals_of_trace (mixed_trace ~n) in
  (* On a single-core box the recommended width is 1; still exercise the
     fan-out path at width 2 so the JSON records its overhead honestly. *)
  let fanout = if n_domains > 1 then n_domains else 2 in
  let configs = [ (1, "d1"); (fanout, Printf.sprintf "d%d" fanout) ] in
  let stats =
    List.concat_map
      (fun (domains, tag) ->
        [
          measure ~label:("pure/" ^ tag) ~workload:"pure" ~domains pure;
          measure ~label:("mixed/" ^ tag) ~workload:"mixed" ~domains mixed;
        ])
      configs
  in
  List.iter print_stats stats;
  List.iter
    (fun (w, tput, p50, p99) ->
      Printf.printf "%-24s (seed implementation)  %9.1f arrivals/s  p50 %.3f ms  p99 %.3f ms\n"
        (w ^ "/baseline") tput p50 p99)
    baseline;
  (match
     List.find_opt (fun s -> s.workload = "mixed" && s.domains = 1) stats
   with
  | Some s ->
    let base = List.assoc "mixed" (List.map (fun (w, t, _, _) -> (w, t)) baseline) in
    Printf.printf "mixed speedup vs seed baseline (1 domain): %.1fx\n"
      (throughput s /. base)
  | None -> ());
  write_json ~path:"BENCH_alloc.json" stats;
  print_endline "wrote BENCH_alloc.json"
