(* Bechamel micro-benchmarks for the hot paths behind the paper's
   evaluation: mutant enumeration, admission, the data-plane interpreter,
   the packet codec and the hash unit. *)

module Mutant = Activermt_compiler.Mutant
module Spec = Activermt_compiler.Spec
module Allocator = Activermt_alloc.Allocator
module App = Activermt_apps.App
module Cache = Activermt_apps.Cache

let params = Rmt.Params.default

let cache_spec = App.spec Cache.service

let enumerate_test policy name =
  Bechamel.Test.make ~name
    (Bechamel.Staged.stage (fun () ->
         ignore (Mutant.enumerate params policy cache_spec)))

let admission_test =
  (* Admit-and-depart against a warm allocator holding 60 caches. *)
  let alloc = Allocator.create params in
  for fid = 1 to 60 do
    ignore
      (Allocator.admit alloc
         {
           Allocator.fid;
           spec = cache_spec;
           elastic = true;
           demand_blocks = Cache.service.App.demand_blocks;
         })
  done;
  let next = ref 1000 in
  Bechamel.Test.make ~name:"allocator.admit+depart (60 caches resident)"
    (Bechamel.Staged.stage (fun () ->
         let fid = !next in
         incr next;
         (match
            Allocator.admit alloc
              {
                Allocator.fid;
                spec = cache_spec;
                elastic = true;
                demand_blocks = Cache.service.App.demand_blocks;
              }
          with
         | Allocator.Admitted _ -> ignore (Allocator.depart alloc ~fid)
         | Allocator.Rejected _ -> ())))

let interpreter_test =
  let device = Rmt.Device.create params in
  let controller = Activermt_control.Controller.create device in
  let req = Activermt_client.Negotiate.request_packet ~fid:7 ~seq:0 Cache.service in
  (match Activermt_control.Controller.handle_request controller req with
  | Ok _ -> ()
  | Error _ -> failwith "micro: cache admission failed");
  let tables = Activermt_control.Controller.tables controller in
  let key = Workload.Kv.key_of_rank 1 in
  let regions =
    Option.get (Activermt_control.Controller.regions_packet controller ~fid:7)
  in
  let cc =
    match
      ( Activermt_client.Negotiate.granted_regions regions |> fun r ->
        Activermt_client.Cache_client.create params
          ~policy:Mutant.Most_constrained ~fid:7 ~regions:(Option.get r) )
    with
    | Ok cc -> cc
    | Error e -> failwith e
  in
  let meta = Activermt.Runtime.meta ~src:1 ~dst:2 () in
  let pkt = Activermt_client.Cache_client.query_packet cc ~seq:0 key in
  Bechamel.Test.make ~name:"runtime.run (cache query, 11 instructions)"
    (Bechamel.Staged.stage (fun () -> ignore (Activermt.Runtime.run tables ~meta pkt)))

let codec_test =
  let pkt =
    Activermt.Packet.exec ~fid:9 ~seq:77 ~args:[| 1; 2; 3; 4 |] Cache.query_program
  in
  Bechamel.Test.make ~name:"packet encode+decode (cache query)"
    (Bechamel.Staged.stage (fun () ->
         match Activermt.Packet.decode (Activermt.Packet.encode pkt) with
         | Ok _ -> ()
         | Error e -> failwith e))

let crc_test =
  Bechamel.Test.make ~name:"crc32 (2 words)"
    (Bechamel.Staged.stage (fun () -> ignore (Rmt.Crc.crc32 [ 0xdeadbeef; 42 ])))

let tests () =
  Bechamel.Test.make_grouped ~name:"activermt"
    [
      enumerate_test Mutant.Most_constrained "mutants.enumerate cache/mc";
      enumerate_test Mutant.Least_constrained "mutants.enumerate cache/lc";
      admission_test;
      interpreter_test;
      codec_test;
      crc_test;
    ]

let run () =
  print_endline "\n== Microbenchmarks (Bechamel, ns/run) ==";
  let instance = Bechamel.Toolkit.Instance.monotonic_clock in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:2000
      ~quota:(Bechamel.Time.second 0.5)
      ~kde:(Some 1000) ()
  in
  let raw = Bechamel.Benchmark.all cfg [ instance ] (tests ()) in
  let ols =
    Bechamel.Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results = Bechamel.Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-48s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-48s (no estimate)\n" name)
    results
