let table poly =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := poly lxor (!c lsr 1) else c := !c lsr 1
      done;
      !c)

let crc32_table = table 0xEDB88320
let crc32c_table = table 0x82F63B78

let update tbl crc byte = tbl.((crc lxor byte) land 0xff) lxor (crc lsr 8)

let bytes_of_word w =
  [ w land 0xff; (w lsr 8) land 0xff; (w lsr 16) land 0xff; (w lsr 24) land 0xff ]

let run tbl ~seed words =
  let crc = ref (0xFFFFFFFF lxor (seed land 0xFFFFFFFF)) in
  let feed byte = crc := update tbl !crc byte in
  List.iter (fun w -> List.iter feed (bytes_of_word w)) words;
  !crc lxor 0xFFFFFFFF

let crc32 ?(seed = 0) words = run crc32_table ~seed words
let crc32c ?(seed = 0) words = run crc32c_table ~seed words

(* CRC is linear over GF(2), so varying only the seed (or prepending a
   row constant) produces *affine translations* of one function — probes
   would be fully correlated and sketch/Bloom rows would lose their
   independence.  Real Tofino stages configure genuinely different
   polynomials; we emulate a polynomial family by mixing the row into the
   CRC output with a non-linear (murmur3) finalizer. *)
let hash_words ~row words =
  let base = if row land 1 = 0 then crc32 words else crc32c words in
  let x = (base lxor (row * 0x9E3779B1)) land 0xFFFFFFFF in
  let x = (x lxor (x lsr 16)) * 0x85EBCA6B land 0xFFFFFFFF in
  let x = (x lxor (x lsr 13)) * 0xC2B2AE35 land 0xFFFFFFFF in
  x lxor (x lsr 16)
