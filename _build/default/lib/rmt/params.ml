type t = {
  logical_stages : int;
  ingress_stages : int;
  words_per_stage : int;
  blocks_per_stage : int;
  tcam_entries_per_stage : int;
  mar_bits : int;
  recirc_limit : int;
  pass_latency_us : float;
  wire_rtt_us : float;
}

let default =
  {
    logical_stages = 20;
    ingress_stages = 10;
    words_per_stage = 65536;
    blocks_per_stage = 256;
    tcam_entries_per_stage = 6144;
    mar_bits = 16;
    recirc_limit = 8;
    pass_latency_us = 0.5;
    wire_rtt_us = 10.0;
  }

let words_per_block t = t.words_per_stage / t.blocks_per_stage
let bytes_per_block t = 4 * words_per_block t
let with_blocks_per_stage t blocks = { t with blocks_per_stage = blocks }

let validate t =
  if t.logical_stages <= 0 then Error "logical_stages must be positive"
  else if t.ingress_stages <= 0 || t.ingress_stages > t.logical_stages then
    Error "ingress_stages must be in (0, logical_stages]"
  else if t.blocks_per_stage <= 0 then Error "blocks_per_stage must be positive"
  else if t.words_per_stage mod t.blocks_per_stage <> 0 then
    Error "words_per_stage must be a multiple of blocks_per_stage"
  else if t.words_per_stage > 1 lsl t.mar_bits then
    Error "mar_bits too small to address words_per_stage"
  else if t.recirc_limit < 0 then Error "recirc_limit must be non-negative"
  else Ok t
