(** TCAM model for memory protection.

    ActiveRMT enforces per-program memory bounds with range matches on MAR
    in TCAM (Section 3.1), and TCAM capacity "ends up being the resource
    bottleneck for the number of distinct address ranges" the switch can
    support.  Hardware TCAMs match ternary prefixes, so an arbitrary
    inclusive range [lo, hi] must be expanded into O(2w) prefixes; we
    implement the standard minimal prefix cover and account entries against
    a per-stage capacity, making admission fail realistically when many
    small allocations fragment a stage. *)

type prefix = { value : int; prefix_len : int }
(** Matches MAR values whose top [prefix_len] bits (of the configured
    width) equal those of [value]. *)

val prefixes_of_range : width:int -> lo:int -> hi:int -> prefix list
(** Minimal prefix cover of the inclusive range; [] if [lo > hi].
    @raise Invalid_argument if the bounds exceed [width] bits. *)

val entries_for_range : width:int -> lo:int -> hi:int -> int
(** Number of TCAM entries the range costs. *)

type t
(** A per-stage TCAM with bounded capacity tracking installed ranges. *)

type handle

val create : width:int -> capacity:int -> t
val capacity : t -> int
val used : t -> int
val free : t -> int

val install_range : t -> lo:int -> hi:int -> (handle, [ `Capacity ]) result
(** Install the prefix cover of a range; fails without side effects if it
    does not fit. *)

val remove : t -> handle -> unit
(** Remove a previously installed range.  Idempotent. *)

val matches : t -> int -> bool
(** Would any installed entry match this MAR value?  (Diagnostic.) *)
