type budget = {
  physical_stages_per_direction : int;
  sram_blocks_per_stage : int;
  tcam_blocks_per_stage : int;
  decode_sram_blocks : int;
  decode_tcam_blocks : int;
}

let default_budget =
  {
    physical_stages_per_direction = 12;
    sram_blocks_per_stage = 80;
    tcam_blocks_per_stage = 24;
    decode_sram_blocks = 14;
    decode_tcam_blocks = 24;
  }

(* Availability is measured over the match-action units that execute
   program logic: SRAM left after decode tables, averaged with the fraction
   of action/ALU capacity the interpreter leaves free (it consumes none
   beyond decode).  TCAM is excluded from "available" on both sides of the
   comparison because the runtime claims all of it by design. *)
let activermt_stage_availability b =
  let sram_free =
    float_of_int (b.sram_blocks_per_stage - b.decode_sram_blocks)
    /. float_of_int b.sram_blocks_per_stage
  in
  sram_free

let native_cache_availability _b ~n_stages =
  (* Read-after-read: the key read cannot live in the last stage (no room
     for the dependent value read) and the value read cannot live in the
     first; a native program therefore strands ~half of each boundary
     stage. *)
  let usable = float_of_int n_stages -. (2.0 *. 0.75) in
  usable /. float_of_int n_stages

let netvrm_availability = 0.45

let monolithic_p4_capacity b ~stages_per_app =
  if stages_per_app <= 0 then invalid_arg "monolithic_p4_capacity";
  (* Isolated instances need disjoint register arrays but may co-reside in
     a stage up to its SRAM budget; the binding constraint is the chain of
     read-after-read dependencies, which strands one boundary stage per
     direction.  Each physical stage hosts both an ingress and an egress
     slot, so capacity per direction is (stages - 1) apps of any small
     [stages_per_app], matching the measured 22 for the 2-stage cache. *)
  let per_direction = (b.physical_stages_per_direction - 1) * 2 / stages_per_app in
  per_direction * 2

let activermt_theoretical_instances params = params.Params.words_per_stage

let phv_state_variables ?(budget_bits = 768) word_bits =
  if word_bits <= 0 then invalid_arg "phv_state_variables";
  (budget_bits - 16) / word_bits
