type stage = {
  index : int;
  regs : Register_array.t;
  protection : Tcam.t;
  hash_row : int;
}

type t = {
  params : Params.t;
  stages : stage array;
  mutable recirculations : int;
  mutable drops : int;
}

let create params =
  match Params.validate params with
  | Error msg -> invalid_arg ("Device.create: " ^ msg)
  | Ok params ->
    let make_stage index =
      {
        index;
        regs = Register_array.create ~words:params.Params.words_per_stage;
        protection =
          Tcam.create ~width:params.Params.mar_bits
            ~capacity:params.Params.tcam_entries_per_stage;
        hash_row = index;
      }
    in
    {
      params;
      stages = Array.init params.Params.logical_stages make_stage;
      recirculations = 0;
      drops = 0;
    }

let params t = t.params

let stage t i =
  if i < 0 || i >= Array.length t.stages then
    invalid_arg (Printf.sprintf "Device.stage: index %d out of range" i);
  t.stages.(i)

let stages t = t.stages
let n_stages t = Array.length t.stages
let is_ingress t i = i >= 0 && i < t.params.Params.ingress_stages
let count_recirculation t = t.recirculations <- t.recirculations + 1
let recirculations t = t.recirculations
let count_drop t = t.drops <- t.drops + 1
let drops t = t.drops

let total_register_words t =
  Array.fold_left (fun acc s -> acc + Register_array.words s.regs) 0 t.stages
