(** Static resource-overhead model backing the Section 5 comparisons.

    These are architectural accounting computations (how many apps fit, how
    much of a stage's match-action resources remain usable), not dynamic
    simulation.  The Tofino-specific unit budgets are inputs documented in
    DESIGN.md; everything derived is computed here so the comparisons can
    be regenerated and varied. *)

type budget = {
  physical_stages_per_direction : int;
      (** physical match-action stages per traversal direction (12) *)
  sram_blocks_per_stage : int;  (** unit SRAM blocks per stage (80) *)
  tcam_blocks_per_stage : int;  (** unit TCAM blocks per stage (24) *)
  decode_sram_blocks : int;  (** SRAM the ActiveRMT decode tables occupy *)
  decode_tcam_blocks : int;  (** TCAM the decode + protection tables occupy *)
}

val default_budget : budget

val activermt_stage_availability : budget -> float
(** Fraction of a stage's match-action resources left for active-program
    execution after the shared runtime's decode/protection overhead; the
    paper reports 83%. *)

val native_cache_availability : budget -> n_stages:int -> float
(** Even a native P4 cache cannot use the first and last stage fully due
    to read-after-read dependencies (~92% with 20 usable stages). *)

val netvrm_availability : float
(** NetVRM's published virtualization overhead leaves <50% of stage
    resources usable; constant from [47] as cited in Section 5. *)

val monolithic_p4_capacity : budget -> stages_per_app:int -> int
(** Maximum isolated instances of a [stages_per_app]-stage app a single
    monolithic P4 image fits across both traversal directions; the paper
    measures 22 for the 2-stage minimal cache. *)

val activermt_theoretical_instances : Params.t -> int
(** Upper bound on co-resident instances of one mutant when regions shrink
    to a single word: the per-stage word count (94K on the paper's
    hardware; 64K with our default parameters). *)

val phv_state_variables : ?budget_bits:int -> int -> int
(** [phv_state_variables word_bits] — Section 7.1's trade-off: the shared
    internal state (MAR, MBR, MBR2, hash data, program arguments, control
    flags) lives in PHV containers of limited total size, so wider memory
    words mean fewer state variables.  [budget_bits] defaults to 768 (the
    share of a Tofino PHV the runtime can bridge through the pipeline);
    16 bits are reserved for control flags. *)
