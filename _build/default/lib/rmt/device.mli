(** The simulated switch device: parameters plus per-logical-stage hardware
    (register array, protection TCAM, hash unit row).

    The device knows nothing about the ActiveRMT instruction set; the
    interpreter in [Activermt.Runtime] drives it.  This mirrors the real
    split: the ASIC provides stages, register externs, TCAMs and hash
    engines, and the P4 runtime program wires them into an interpreter. *)

type stage = {
  index : int;  (** logical stage index, 0-based *)
  regs : Register_array.t;
  protection : Tcam.t;
  hash_row : int;  (** selects the CRC polynomial/seed for this stage *)
}

type t

val create : Params.t -> t
(** @raise Invalid_argument if the parameters fail [Params.validate]. *)

val params : t -> Params.t
val stage : t -> int -> stage
(** @raise Invalid_argument on an out-of-range stage index. *)

val stages : t -> stage array
val n_stages : t -> int

val is_ingress : t -> int -> bool
(** Does this logical stage index sit in the ingress pipeline? *)

val count_recirculation : t -> unit
val recirculations : t -> int
(** Cumulative recirculation count (bandwidth-inflation accounting). *)

val count_drop : t -> unit
val drops : t -> int

val total_register_words : t -> int
(** Sum across stages: the total memory available to active programs. *)
