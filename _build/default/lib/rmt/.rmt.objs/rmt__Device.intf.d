lib/rmt/device.mli: Params Register_array Tcam
