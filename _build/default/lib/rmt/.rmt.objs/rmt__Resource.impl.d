lib/rmt/resource.ml: Params
