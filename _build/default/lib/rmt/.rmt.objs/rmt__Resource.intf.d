lib/rmt/resource.mli: Params
