lib/rmt/register_array.mli:
