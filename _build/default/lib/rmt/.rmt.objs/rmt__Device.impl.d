lib/rmt/device.ml: Array Params Printf Register_array Tcam
