lib/rmt/tcam.mli:
