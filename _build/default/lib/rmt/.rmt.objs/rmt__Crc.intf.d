lib/rmt/crc.mli:
