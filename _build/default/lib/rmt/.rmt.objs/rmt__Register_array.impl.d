lib/rmt/register_array.ml: Array Printf
