lib/rmt/crc.ml: Array List
