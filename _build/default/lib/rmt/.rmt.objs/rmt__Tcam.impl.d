lib/rmt/tcam.ml: List
