lib/rmt/params.ml:
