lib/rmt/params.mli:
