type prefix = { value : int; prefix_len : int }

let prefixes_of_range ~width ~lo ~hi =
  if width <= 0 || width > 30 then invalid_arg "Tcam: unsupported width";
  let limit = 1 lsl width in
  if lo < 0 || hi >= limit then invalid_arg "Tcam: bounds exceed width";
  (* Greedy minimal cover: repeatedly take the largest aligned power-of-two
     block starting at [lo] that stays within [hi]. *)
  let trailing_zeros n =
    let rec go n c = if n land 1 = 1 then c else go (n lsr 1) (c + 1) in
    if n = 0 then width else go n 0
  in
  let rec cover lo hi acc =
    if lo > hi then List.rev acc
    else begin
      let max_align = min width (trailing_zeros lo) in
      let rec fit k =
        if k <= 0 then 0
        else if k <= max_align && lo + (1 lsl k) - 1 <= hi then k
        else fit (k - 1)
      in
      let k = fit width in
      let size = 1 lsl k in
      cover (lo + size) hi ({ value = lo; prefix_len = width - k } :: acc)
    end
  in
  cover lo hi []

let entries_for_range ~width ~lo ~hi = List.length (prefixes_of_range ~width ~lo ~hi)

type entry = { prefixes : prefix list; mutable live : bool }
type handle = entry

type t = {
  width : int;
  capacity : int;
  mutable used : int;
  mutable entries : entry list;
}

let create ~width ~capacity =
  if capacity < 0 then invalid_arg "Tcam.create: negative capacity";
  { width; capacity; used = 0; entries = [] }

let capacity t = t.capacity
let used t = t.used
let free t = t.capacity - t.used

let install_range t ~lo ~hi =
  let prefixes = prefixes_of_range ~width:t.width ~lo ~hi in
  let cost = List.length prefixes in
  if t.used + cost > t.capacity then Error `Capacity
  else begin
    let e = { prefixes; live = true } in
    t.used <- t.used + cost;
    t.entries <- e :: t.entries;
    Ok e
  end

let remove t handle =
  if handle.live then begin
    handle.live <- false;
    t.used <- t.used - List.length handle.prefixes;
    t.entries <- List.filter (fun e -> e != handle) t.entries
  end

let prefix_matches width p v =
  let shift = width - p.prefix_len in
  v lsr shift = p.value lsr shift

let matches t v =
  List.exists
    (fun e -> e.live && List.exists (fun p -> prefix_matches t.width p v) e.prefixes)
    t.entries
