(** Hardware parameters of the simulated RMT device.

    Defaults model the paper's testbed: a Tofino-based Wedge100BF-65X
    exposing 20 logical match-action stages to active programs (10 ingress
    + 10 egress), one large register array per stage carved into 256
    blocks, and per-stage TCAM used for instruction decode and memory
    protection. *)

type t = {
  logical_stages : int;  (** total logical stages visible to programs (20) *)
  ingress_stages : int;  (** stages in the ingress pipeline (10) *)
  words_per_stage : int;  (** 32-bit register words per stage pool *)
  blocks_per_stage : int;  (** allocation blocks per stage (256) *)
  tcam_entries_per_stage : int;
      (** TCAM capacity left for memory-protection ranges after the fixed
          instruction-decode entries are installed *)
  mar_bits : int;  (** address width used for range->prefix expansion *)
  recirc_limit : int;  (** maximum recirculations before a packet is dropped *)
  pass_latency_us : float;  (** added RTT per pipeline traversed (Fig 8b) *)
  wire_rtt_us : float;  (** baseline client->switch->client echo RTT *)
}

val default : t

val words_per_block : t -> int
(** Register words in one allocation block. *)

val bytes_per_block : t -> int
(** Block size in bytes (4-byte words); 1 KB with the defaults. *)

val with_blocks_per_stage : t -> int -> t
(** Vary allocation granularity (Figure 12) keeping pool size fixed. *)

val validate : t -> (t, string) result
(** Check internal consistency (ingress <= total, divisibility, ...). *)
