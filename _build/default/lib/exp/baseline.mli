(** Baseline comparisons the paper argues against.

    B1 — allocator vs. a NetVRM-style baseline (Sections 2.3/5): same
    arrival mix, comparing admitted instances, useful utilization and
    internal fragmentation.  ActiveRMT wins through per-stage placement,
    arbitrary region sizes and the absence of virtualization overhead.

    B2 — deployment model vs. monolithic P4 (Sections 1/6.2): cumulative
    time to deploy a sequence of service changes, and the traffic
    blackout each model inflicts.  ActiveRMT provisions in roughly a
    second per service without disturbing others; P4 recompiles the
    composite image (28.79 s measured by the paper) and re-provisions
    with an O(50 ms) blackout for *all* traffic on every change. *)

val run_netvrm : ?n:int -> Rmt.Params.t -> unit
val run_deployment : ?changes:int -> Rmt.Params.t -> unit
