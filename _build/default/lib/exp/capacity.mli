(** Section 5's resource-overhead comparison, regenerated from the static
    model: per-stage resource availability for ActiveRMT vs. a native P4
    cache vs. NetVRM, and the concurrency comparison of a monolithic P4
    image (22 isolated 2-stage cache instances) against ActiveRMT's
    virtualized instances. *)

val run : Rmt.Params.t -> unit
