(** Beyond-paper experiment E1: the online churn workload widened to five
    service types — the paper's three plus this repo's flow counter and
    Bloom filter — exercising the allocator against a more diverse demand
    mix (two elastic families sharing pools with three inelastic
    footprints) than the evaluation's fixed trio. *)

val run : ?epochs:int -> ?trials:int -> Rmt.Params.t -> unit
