(** Uniform printing of regenerated figures: a header naming the paper
    figure, tab-separated data rows (decimated for long series), and a
    summary block EXPERIMENTS.md quotes. *)

val figure : id:string -> title:string -> unit
(** Print the figure header. *)

val columns : string list -> unit

val row : string list -> unit

val float_cell : float -> string
val int_cell : int -> string

val series :
  ?every:int -> columns:string list -> (int * string list) list -> unit
(** Print (index, cells) rows, keeping one in [every] (default 1) plus the
    last row. *)

val summary : (string * string) list -> unit
(** Key/value block of headline numbers. *)

val blank : unit -> unit
