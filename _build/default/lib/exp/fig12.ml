open Import

type mix = Pure of Churn.kind | Mixed

let mixes =
  [
    (Pure Churn.Cache, "cache");
    (Pure Churn.Heavy_hitter, "hh");
    (Pure Churn.Load_balancer, "lb");
    (Mixed, "mixed");
  ]

let run ?(n = 100) ?(block_counts = [ 128; 256; 512; 1024 ]) params =
  Report.figure ~id:"Figure 12"
    ~title:"total allocation time (ms) for 100 arrivals vs. block granularity (mc)";
  Report.columns
    ("workload"
    :: List.map
         (fun blocks ->
           Printf.sprintf "%dB_blocks" (Rmt.Params.bytes_per_block
              (Rmt.Params.with_blocks_per_stage params blocks)))
         block_counts);
  List.iter
    (fun (mix, mname) ->
      let cells =
        List.map
          (fun blocks ->
            let p = Rmt.Params.with_blocks_per_stage params blocks in
            let trace =
              match mix with
              | Pure kind -> Churn.arrivals_sequence kind ~n
              | Mixed -> Churn.mixed_arrivals ~n (Prng.create ~seed:1212)
            in
            let result =
              Harness.run ~policy:Mutant.Most_constrained ~params:p trace
            in
            let total =
              List.fold_left (fun acc e -> acc +. e.Harness.alloc_time_s) 0.0
                result.Harness.epochs
            in
            Printf.sprintf "%.2f(f%d)" (1000.0 *. total) result.Harness.total_failures)
          block_counts
      in
      Report.row (mname :: cells))
    mixes;
  Report.summary
    [ ("cell format", "total-ms(f<placement failures out of 100>)") ]
