lib/exp/baseline.ml: Activermt_alloc Activermt_client Allocator App Array Churn Controller Cost_model Float Harness Import List Printf Prng Report Rmt
