lib/exp/fig11.ml: Allocator Churn Harness Import List Printf Prng Report Stats
