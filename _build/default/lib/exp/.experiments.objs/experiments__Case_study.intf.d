lib/exp/case_study.mli: Rmt
