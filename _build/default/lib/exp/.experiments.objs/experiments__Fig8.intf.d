lib/exp/fig8.mli: Rmt
