lib/exp/baseline.mli: Rmt
