lib/exp/fig5.ml: Array Churn Ewma Harness Import List Mutant Printf Prng Report Stats
