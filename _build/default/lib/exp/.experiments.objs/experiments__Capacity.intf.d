lib/exp/capacity.mli: Rmt
