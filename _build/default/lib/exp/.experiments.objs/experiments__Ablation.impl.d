lib/exp/ablation.ml: Activermt Activermt_client Allocator Churn Controller Harness Heavy_hitter Import Kv List Mutant Option Report Rmt Stats
