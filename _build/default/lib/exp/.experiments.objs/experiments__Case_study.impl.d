lib/exp/case_study.ml: Activermt Activermt_client Allocator Array Cache Controller Hashtbl Heavy_hitter Import Kv List Mutant Netsim Printf Prng Report Rmt String Zipf
