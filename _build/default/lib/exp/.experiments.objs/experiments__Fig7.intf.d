lib/exp/fig7.mli: Rmt
