lib/exp/fig7.ml: Array Churn Ewma Fig5 Harness Import List Printf Prng Report Stats
