lib/exp/extended.mli: Rmt
