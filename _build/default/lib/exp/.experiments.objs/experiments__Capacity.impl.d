lib/exp/capacity.ml: List Report Rmt
