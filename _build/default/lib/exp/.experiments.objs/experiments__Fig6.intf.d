lib/exp/fig6.mli: Rmt
