lib/exp/harness.ml: Activermt_apps Allocator App Array Cache Cheetah_lb Churn Hashtbl Heavy_hitter Import List Rmt Stats
