lib/exp/ablation.mli: Rmt
