lib/exp/harness.mli: Allocator App Churn Import Mutant Rmt
