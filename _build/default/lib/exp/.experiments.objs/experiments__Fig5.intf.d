lib/exp/fig5.mli: Activermt_compiler Rmt Workload
