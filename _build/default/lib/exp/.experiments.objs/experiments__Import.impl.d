lib/exp/import.ml: Activermt_alloc Activermt_apps Activermt_compiler Activermt_control Stdx Workload
