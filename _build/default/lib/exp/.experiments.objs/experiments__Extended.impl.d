lib/exp/extended.ml: Allocator Array Churn Harness Hashtbl Import List Option Printf Prng Report Rmt Stats
