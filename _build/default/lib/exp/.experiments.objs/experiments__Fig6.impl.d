lib/exp/fig6.ml: Churn Fig5 Harness Import List Printf Report
