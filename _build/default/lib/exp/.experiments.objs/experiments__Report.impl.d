lib/exp/report.ml: List Printf String
