lib/exp/report.mli:
