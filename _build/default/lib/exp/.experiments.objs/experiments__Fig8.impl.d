lib/exp/fig8.ml: Activermt Activermt_client App Churn Controller Cost_model Float Harness Import List Printf Prng Report Rmt Spec Stats
