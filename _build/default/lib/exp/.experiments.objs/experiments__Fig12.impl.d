lib/exp/fig12.ml: Churn Harness Import List Mutant Printf Prng Report Rmt
