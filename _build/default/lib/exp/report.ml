let figure ~id ~title =
  Printf.printf "\n== %s: %s ==\n" id title

let columns cols = print_endline ("# " ^ String.concat "\t" cols)
let row cells = print_endline (String.concat "\t" cells)
let float_cell v = Printf.sprintf "%.6g" v
let int_cell = string_of_int

let series ?(every = 1) ~columns:cols rows =
  columns cols;
  let n = List.length rows in
  List.iteri
    (fun i (idx, cells) ->
      if i mod every = 0 || i = n - 1 then
        row (string_of_int idx :: cells))
    rows

let summary kvs =
  List.iter (fun (k, v) -> Printf.printf "-- %s: %s\n" k v) kvs

let blank () = print_newline ()
