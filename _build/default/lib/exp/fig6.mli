(** Figure 6: memory utilization versus arrivals for the pure workloads
    under both allocation policies.  The cache saturates its reachable
    stages within a handful of instances (elasticity); the load balancer
    needs hundreds of instances and then stops admitting. *)

val run : ?n:int -> ?every:int -> Rmt.Params.t -> unit
