open Import

let run ?(n = 500) ?(every = 10) params =
  Report.figure ~id:"Figure 6"
    ~title:"memory utilization vs. arrivals, pure workloads";
  List.iter
    (fun (kind, kname) ->
      List.iter
        (fun (policy, pname) ->
          let trace = Churn.arrivals_sequence kind ~n in
          let result = Harness.run ~policy ~params trace in
          let saturation =
            (* First epoch within 1% of the final utilization. *)
            List.find_opt
              (fun e ->
                e.Harness.utilization >= result.Harness.final_utilization -. 0.01)
              result.Harness.epochs
          in
          Printf.printf "\n- series %s/%s\n" kname pname;
          Report.series ~every
            ~columns:[ "epoch"; "utilization" ]
            (List.map
               (fun e ->
                 (e.Harness.epoch, [ Report.float_cell e.Harness.utilization ]))
               result.Harness.epochs);
          Report.summary
            [
              ("final utilization", Report.float_cell result.Harness.final_utilization);
              ( "utilization saturates at epoch",
                match saturation with
                | Some e -> Report.int_cell e.Harness.epoch
                | None -> "n/a" );
              ("placement failures", Report.int_cell result.Harness.total_failures);
            ])
        Fig5.policies)
    Fig5.kinds
