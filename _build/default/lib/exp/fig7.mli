(** Figure 7: the online experiment — 1000 epochs of Poisson(2) arrivals /
    Poisson(1) departures with a uniform service mix, 10 trials, both
    policies.  (a) utilization converges to a common plateau, (b) resident
    population grows until about half the arrivals fail, (c) the fraction
    of resident cache instances reallocated per epoch stabilizes (EWMA
    alpha = 0.6), (d) Jain fairness among cache instances dips then
    recovers above 0.99. *)

type outputs = {
  utilization : bool;
  residents : bool;
  reallocation : bool;
  fairness : bool;
}

val all : outputs
val only_utilization : outputs

val run :
  ?epochs:int -> ?trials:int -> ?every:int -> outputs -> Rmt.Params.t -> unit
