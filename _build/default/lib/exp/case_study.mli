(** The Section 6.3 case study: full in-network cache services running
    end-to-end on the simulated testbed (client shims, switch runtime +
    controller, KV server), reproducing Figures 9a, 9b and 10.

    A tenant's lifecycle follows the paper: (optionally) deploy the
    frequent-item monitor on its object requests, extract the computed
    statistics through data-plane memsync reads, context-switch to the
    cache service, populate it (at multiplicative refresh intervals), and
    serve queries.  Reallocations arrive as controller notifications; the
    tenant pauses, extracts, acks, re-synthesizes against its new regions
    and repopulates. *)

type config = {
  n_keys : int;  (** object key space *)
  zipf_exponent : float;
  request_rate_pps : float;  (** per-tenant object-request rate *)
  populate_rate_pps : float;
  extract_compute_s : float;
      (** client-side recompute time during a reallocation *)
  hh_window_s : float;  (** monitoring window before the context switch *)
  refresh_base_s : float;  (** first multiplicative populate interval *)
  loss_rate : float;
      (** data-plane loss probability; the memsync driver's retransmission
          keeps extraction exact regardless *)
  seed : int;
}

val default_config : config

type tenant_stats = {
  addr : int;
  fid : int;
  arrival_s : float;
  first_hit_s : float option;
  bins_hits : int array;  (** per-1ms hits *)
  bins_total : int array;  (** per-1ms replies to object requests *)
  n_buckets : int;  (** final cache capacity *)
  disruptions : (float * float) list;
      (** (start, end) of post-operational windows at zero hit rate *)
}

val hit_rate_window : tenant_stats -> lo_ms:int -> hi_ms:int -> float
(** Aggregate hit rate over a bin window (0 when no traffic). *)

type result = { tenants : tenant_stats list; duration_s : float }

val run_single : ?config:config -> Rmt.Params.t -> result
(** Figure 9a: one tenant, HH monitor phase then cache. *)

val run_multi :
  ?config:config -> ?n_tenants:int -> ?stagger_s:float -> Rmt.Params.t -> result
(** Figures 9b/10: [n_tenants] (default 4) cache tenants staggered by
    [stagger_s] (default 5 s), populating from known request patterns. *)

val print_9a : ?config:config -> Rmt.Params.t -> unit
val print_9b : ?config:config -> Rmt.Params.t -> unit
val print_10 : ?config:config -> Rmt.Params.t -> unit
