open Import

let run_mutant_limit ?(n = 150) ?(limits = [ 64; 256; 1024; 4096 ]) params =
  Report.figure ~id:"Ablation A1"
    ~title:"mutant-enumeration budget: time vs. placement quality (lb + hh, lc)";
  Report.columns
    [ "limit"; "lb_admitted"; "lb_total_ms"; "hh_admitted"; "hh_total_ms" ];
  List.iter
    (fun limit ->
      let run kind =
        let alloc =
          Allocator.create ~policy:Mutant.Least_constrained ~mutant_limit:limit
            params
        in
        let admitted = ref 0 in
        let time = ref 0.0 in
        for fid = 1 to n do
          match
            Allocator.admit alloc
              (Harness.arrival_of ~fid kind ~block_bytes:(Rmt.Params.bytes_per_block params))
          with
          | Allocator.Admitted a ->
            incr admitted;
            time := !time +. a.Allocator.compute_time_s
          | Allocator.Rejected r -> time := !time +. r.Allocator.compute_time_s
        done;
        (!admitted, 1000.0 *. !time)
      in
      let lb_adm, lb_ms = run Churn.Load_balancer in
      let hh_adm, hh_ms = run Churn.Heavy_hitter in
      Report.row
        [
          Report.int_cell limit;
          Report.int_cell lb_adm;
          Report.float_cell lb_ms;
          Report.int_cell hh_adm;
          Report.float_cell hh_ms;
        ])
    limits;
  Report.summary
    [
      ( "takeaway",
        "larger budgets buy more feasible placements at roughly linear \
         allocation-time cost; the default (4096) sits past the knee" );
    ]

let run_tcam ?(n = 600) ?(capacities = [ 1536; 3072; 6144; 12288 ]) params =
  Report.figure ~id:"Ablation A2"
    ~title:"per-stage TCAM capacity vs. concurrent cache instances (mc)";
  Report.columns [ "tcam_entries"; "caches_admitted"; "utilization" ];
  List.iter
    (fun cap ->
      let p = { params with Rmt.Params.tcam_entries_per_stage = cap } in
      let alloc = Allocator.create p in
      let admitted = ref 0 in
      (try
         for fid = 1 to n do
           match
             Allocator.admit alloc
               (Harness.arrival_of ~fid Churn.Cache
                  ~block_bytes:(Rmt.Params.bytes_per_block p))
           with
           | Allocator.Admitted _ -> incr admitted
           | Allocator.Rejected _ -> raise Exit
         done
       with Exit -> ());
      Report.row
        [
          Report.int_cell cap;
          Report.int_cell !admitted;
          Report.float_cell (Allocator.utilization alloc);
        ])
    capacities;
  Report.summary
    [
      ( "takeaway",
        "range-match capacity bounds co-residency linearly (Section 3.1's \
         'TCAMs end up being the resource bottleneck')" );
    ]

let run_bandwidth ?(n = 60) params =
  Report.figure ~id:"Ablation A3"
    ~title:"bandwidth inflation: pipeline passes per heavy-hitter update, mc vs lc";
  (* The monitor is the paper's recirculating program (2 passes compact).
     Most-constrained admits only its single compact placement; once those
     slots are gone, least-constrained keeps admitting by spilling onto a
     third pass — paying bandwidth for memory reach. *)
  Report.columns
    [ "policy"; "admitted"; "mean_passes"; "max_passes"; "3pass_frac" ];
  List.iter
    (fun (policy, pname) ->
      let device = Rmt.Device.create params in
      let controller = Controller.create ~policy device in
      let tables = Controller.tables controller in
      let meta = Activermt.Runtime.meta ~src:1 ~dst:2 () in
      let passes = ref [] in
      let admitted = ref 0 in
      for fid = 1 to n do
        match
          Controller.handle_request controller
            (Activermt_client.Negotiate.request_packet ~fid ~seq:0
               Heavy_hitter.service)
        with
        | Error _ -> ()
        | Ok prov -> (
          incr admitted;
          let regions =
            Option.get
              (Activermt_client.Negotiate.granted_regions prov.Controller.response)
          in
          match
            Activermt_client.Hh_client.create params ~policy ~fid ~regions
          with
          | Error e -> failwith e
          | Ok hh ->
            let key = Kv.key_of_rank fid in
            let r =
              Activermt.Runtime.run tables ~meta
                (Activermt_client.Hh_client.monitor_packet hh ~seq:0 key)
            in
            passes := float_of_int r.Activermt.Runtime.passes :: !passes)
      done;
      let s = Stats.summarize !passes in
      let three =
        List.length (List.filter (fun p -> p >= 3.0) !passes)
      in
      Report.row
        [
          pname;
          Report.int_cell !admitted;
          Report.float_cell s.Stats.mean;
          Report.float_cell s.Stats.max;
          Report.float_cell (float_of_int three /. float_of_int (max 1 !admitted));
        ])
    [ (Mutant.Most_constrained, "mc"); (Mutant.Least_constrained, "lc") ];
  Report.summary
    [
      ( "takeaway",
        "least-constrained placements buy memory reach with extra passes \
         through the pipeline, inflating bandwidth (Sections 6.1/7.2)" );
    ]
