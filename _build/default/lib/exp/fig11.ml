open Import

let schemes =
  [
    (Allocator.Worst_fit, "wf");
    (Allocator.First_fit, "ff");
    (Allocator.Best_fit, "bf");
    (Allocator.Min_realloc, "realloc");
  ]

let run ?(epochs = 100) ?(trials = 10) params =
  Report.figure ~id:"Figure 11"
    ~title:"allocation schemes: utilization / reallocated% / fairness / failure% (boxplots)";
  let box label xs =
    if xs = [] then Report.row [ label; "n/a" ]
    else begin
      let b = Stats.boxplot xs in
      Report.row
        [
          label;
          Report.float_cell b.Stats.whisker_lo;
          Report.float_cell b.Stats.q1;
          Report.float_cell b.Stats.q2;
          Report.float_cell b.Stats.q3;
          Report.float_cell b.Stats.whisker_hi;
        ]
    end
  in
  List.iter
    (fun (scheme, sname) ->
      let util = ref [] and refrac = ref [] and fair = ref [] and failr = ref [] in
      for trial = 1 to trials do
        let rng = Prng.create ~seed:(11000 + trial) in
        let trace = Churn.generate Churn.default_config ~epochs rng in
        let result = Harness.run ~scheme ~params trace in
        List.iter
          (fun e ->
            util := e.Harness.utilization :: !util;
            if e.Harness.cache_residents > 0 then
              refrac :=
                (100.0
                *. float_of_int e.Harness.cache_reallocated
                /. float_of_int e.Harness.cache_residents)
                :: !refrac;
            fair := e.Harness.fairness :: !fair;
            if e.Harness.arrivals > 0 then
              failr :=
                (100.0 *. float_of_int e.Harness.failed
                /. float_of_int e.Harness.arrivals)
                :: !failr)
          result.Harness.epochs
      done;
      Printf.printf "\n- scheme %s\n" sname;
      Report.columns [ "metric"; "lo"; "q1"; "median"; "q3"; "hi" ];
      box "utilization" !util;
      box "reallocated_pct" !refrac;
      box "fairness" !fair;
      box "failure_pct" !failr)
    schemes
