open Import

let policies = [ (Mutant.Most_constrained, "mc"); (Mutant.Least_constrained, "lc") ]

let kinds =
  [ (Churn.Cache, "cache"); (Churn.Heavy_hitter, "hh"); (Churn.Load_balancer, "lb") ]

let run_5a ?(n = 500) ?(every = 10) params =
  Report.figure ~id:"Figure 5a"
    ~title:"allocation time, pure workloads (ms per arrival; adm=1 if admitted)";
  List.iter
    (fun (kind, kname) ->
      List.iter
        (fun (policy, pname) ->
          let trace = Churn.arrivals_sequence kind ~n in
          let result = Harness.run ~policy ~params trace in
          let first_failure =
            List.find_opt (fun e -> e.Harness.failed > 0) result.Harness.epochs
          in
          Printf.printf "\n- series %s/%s\n" kname pname;
          Report.series ~every
            ~columns:[ "epoch"; "alloc_ms"; "admitted" ]
            (List.map
               (fun e ->
                 ( e.Harness.epoch,
                   [
                     Report.float_cell (1000.0 *. e.Harness.alloc_time_s);
                     Report.int_cell e.Harness.admitted;
                   ] ))
               result.Harness.epochs);
          Report.summary
            [
              ( "first placement failure",
                match first_failure with
                | Some e -> Printf.sprintf "epoch %d" e.Harness.epoch
                | None -> "none within trace" );
              ( "total admitted",
                Report.int_cell
                  (List.fold_left
                     (fun acc e -> acc + e.Harness.admitted)
                     0 result.Harness.epochs) );
              ( "mean alloc time (ms, successful epochs)",
                Report.float_cell
                  (1000.0
                  *. Stats.mean
                       (List.filter_map
                          (fun e ->
                            if e.Harness.admitted > 0 then Some e.Harness.alloc_time_s
                            else None)
                          result.Harness.epochs)) );
              ( "mean alloc time (ms, failed epochs)",
                Report.float_cell
                  (1000.0
                  *. Stats.mean
                       (List.filter_map
                          (fun e ->
                            if e.Harness.failed > 0 then Some e.Harness.alloc_time_s
                            else None)
                          result.Harness.epochs)) );
            ])
        policies)
    kinds

let run_5b ?(n = 500) ?(trials = 10) ?(every = 10) params =
  Report.figure ~id:"Figure 5b"
    ~title:"allocation time, mixed workload (10 trials; EWMA alpha=0.1)";
  List.iter
    (fun (policy, pname) ->
      let per_epoch = Array.make n [] in
      for trial = 1 to trials do
        let rng = Prng.create ~seed:(3000 + trial) in
        let trace = Churn.mixed_arrivals ~n rng in
        let result = Harness.run ~policy ~params trace in
        List.iter
          (fun e ->
            per_epoch.(e.Harness.epoch) <-
              e.Harness.alloc_time_s :: per_epoch.(e.Harness.epoch))
          result.Harness.epochs
      done;
      let ewma = Ewma.create ~alpha:0.1 in
      Printf.printf "\n- series mixed/%s\n" pname;
      Report.series ~every
        ~columns:[ "epoch"; "mean_ms"; "min_ms"; "max_ms"; "ewma_ms" ]
        (List.init n (fun i ->
             let xs = per_epoch.(i) in
             let mean = Stats.mean xs in
             let s = Stats.summarize xs in
             let e = Ewma.update ewma mean in
             ( i,
               [
                 Report.float_cell (1000.0 *. mean);
                 Report.float_cell (1000.0 *. s.Stats.min);
                 Report.float_cell (1000.0 *. s.Stats.max);
                 Report.float_cell (1000.0 *. e);
               ] ))))
    policies
