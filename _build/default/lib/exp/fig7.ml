open Import

type outputs = {
  utilization : bool;
  residents : bool;
  reallocation : bool;
  fairness : bool;
}

let all = { utilization = true; residents = true; reallocation = true; fairness = true }

let only_utilization =
  { utilization = true; residents = false; reallocation = false; fairness = false }

type epoch_agg = {
  mutable util : float list;
  mutable res : float list;
  mutable refrac : float list;
  mutable fair : float list;
}

let run ?(epochs = 1000) ?(trials = 10) ?(every = 25) outputs params =
  let agg =
    Array.init epochs (fun _ -> { util = []; res = []; refrac = []; fair = [] })
  in
  let run_one policy =
    Array.iter
      (fun a ->
        a.util <- [];
        a.res <- [];
        a.refrac <- [];
        a.fair <- [])
      agg;
    for trial = 1 to trials do
      let rng = Prng.create ~seed:(7000 + trial) in
      let trace = Churn.generate Churn.default_config ~epochs rng in
      let result = Harness.run ~policy ~params trace in
      List.iter
        (fun e ->
          let a = agg.(e.Harness.epoch) in
          a.util <- e.Harness.utilization :: a.util;
          a.res <- float_of_int e.Harness.residents :: a.res;
          (if e.Harness.cache_residents > 0 then
             a.refrac <-
               (float_of_int e.Harness.cache_reallocated
               /. float_of_int e.Harness.cache_residents)
               :: a.refrac);
          a.fair <- e.Harness.fairness :: a.fair)
        result.Harness.epochs
    done
  in
  let stats_rows field =
    List.init epochs (fun i ->
        let xs = field agg.(i) in
        let s = Stats.summarize xs in
        ( i,
          [
            Report.float_cell s.Stats.mean;
            Report.float_cell s.Stats.min;
            Report.float_cell s.Stats.max;
          ] ))
  in
  let emit policy pname =
    run_one policy;
    if outputs.utilization then begin
      Printf.printf "\n- Figure 7a series %s (utilization)\n" pname;
      Report.series ~every ~columns:[ "epoch"; "mean"; "min"; "max" ]
        (stats_rows (fun a -> a.util));
      let tail =
        List.concat (List.init 100 (fun i -> agg.(epochs - 1 - i).util))
      in
      Report.summary
        [ ("plateau utilization (last 100 epochs)", Report.float_cell (Stats.mean tail)) ]
    end;
    if outputs.residents then begin
      Printf.printf "\n- Figure 7b series %s (resident applications)\n" pname;
      Report.series ~every ~columns:[ "epoch"; "mean"; "min"; "max" ]
        (stats_rows (fun a -> a.res))
    end;
    if outputs.reallocation then begin
      Printf.printf "\n- Figure 7c series %s (cache reallocation fraction, EWMA 0.6)\n"
        pname;
      let ewma = Ewma.create ~alpha:0.6 in
      Report.series ~every ~columns:[ "epoch"; "mean"; "ewma" ]
        (List.init epochs (fun i ->
             let m = Stats.mean agg.(i).refrac in
             (i, [ Report.float_cell m; Report.float_cell (Ewma.update ewma m) ])))
    end;
    if outputs.fairness then begin
      Printf.printf "\n- Figure 7d series %s (Jain fairness among caches)\n" pname;
      Report.series ~every ~columns:[ "epoch"; "mean"; "min"; "max" ]
        (stats_rows (fun a -> a.fair));
      let tail =
        List.concat (List.init 100 (fun i -> agg.(epochs - 1 - i).fair))
      in
      Report.summary
        [ ("plateau fairness (last 100 epochs)", Report.float_cell (Stats.mean tail)) ]
    end
  in
  Report.figure ~id:"Figure 7"
    ~title:"online arrivals/departures: utilization, concurrency, reallocation, fairness";
  List.iter (fun (policy, pname) -> emit policy pname) Fig5.policies
