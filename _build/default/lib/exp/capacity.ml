let run params =
  Report.figure ~id:"Section 5"
    ~title:"resource overheads and concurrency (static model)";
  let b = Rmt.Resource.default_budget in
  Report.columns [ "system"; "stage resources available" ];
  Report.row
    [ "ActiveRMT runtime"; Report.float_cell (Rmt.Resource.activermt_stage_availability b) ];
  Report.row
    [
      "native P4 cache";
      Report.float_cell
        (Rmt.Resource.native_cache_availability b
           ~n_stages:params.Rmt.Params.logical_stages);
    ];
  Report.row [ "NetVRM"; Report.float_cell Rmt.Resource.netvrm_availability ];
  Report.blank ();
  Report.columns [ "deployment"; "concurrent 2-stage cache instances" ];
  Report.row
    [
      "monolithic P4 image";
      Report.int_cell (Rmt.Resource.monolithic_p4_capacity b ~stages_per_app:2);
    ];
  Report.row
    [
      "ActiveRMT (theoretical, 1-word regions)";
      Report.int_cell (Rmt.Resource.activermt_theoretical_instances params);
    ];
  Report.blank ();
  Report.columns [ "memory word width (bits)"; "max shared state variables (Section 7.1)" ];
  List.iter
    (fun w ->
      Report.row
        [ Report.int_cell w; Report.int_cell (Rmt.Resource.phv_state_variables w) ])
    [ 16; 32; 64 ];
  Report.summary
    [
      ( "TCAM per stage (entries)",
        Report.int_cell params.Rmt.Params.tcam_entries_per_stage );
      ( "paper reference points",
        "83% availability; 92% native cache; <50% NetVRM; 22 monolithic instances; 94K theoretical" );
    ]
