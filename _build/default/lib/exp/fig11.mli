(** Figure 11: allocation-scheme comparison (worst-fit, first-fit,
    best-fit, min-realloc) over 100 epochs of online churn, 10 trials:
    boxplot statistics of per-epoch utilization, percentage of elastic
    (cache) instances reallocated, Jain fairness, and allocation failure
    rate.  The paper's conclusion: worst-fit and min-realloc are
    competitive on utilization/reallocations, but worst-fit has a
    dramatically lower failure rate. *)

val run : ?epochs:int -> ?trials:int -> Rmt.Params.t -> unit
