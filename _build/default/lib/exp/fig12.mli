(** Figure 12: allocation granularity.  Total control-plane allocation
    time for a sequence of 100 arrivals, for four application workloads,
    as the per-stage block count varies (block size 2 KB down to 256 B;
    the paper's default is 1 KB / 256 blocks).  Finer granularity means
    more blocks to track and a more complex allocation problem; inelastic
    byte demands are held constant by rescaling block demands. *)

val run : ?n:int -> ?block_counts:int list -> Rmt.Params.t -> unit
