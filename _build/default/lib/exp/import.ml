(* Short aliases shared by the experiment drivers. *)
module Spec = Activermt_compiler.Spec
module Mutant = Activermt_compiler.Mutant
module Allocator = Activermt_alloc.Allocator
module Pool = Activermt_alloc.Pool
module Controller = Activermt_control.Controller
module Cost_model = Activermt_control.Cost_model
module App = Activermt_apps.App
module Cache = Activermt_apps.Cache
module Heavy_hitter = Activermt_apps.Heavy_hitter
module Cheetah_lb = Activermt_apps.Cheetah_lb
module Memsync = Activermt_apps.Memsync
module Churn = Workload.Churn
module Zipf = Workload.Zipf
module Kv = Workload.Kv
module Prng = Stdx.Prng
module Ewma = Stdx.Ewma
module Stats = Stdx.Stats
