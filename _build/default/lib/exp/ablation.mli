(** Ablations of the reproduction's own design knobs (DESIGN.md):

    - the mutant-enumeration cap: the systematic search is subsampled to a
      fixed candidate budget; this sweep shows how the budget trades
      allocation time against placement quality (admitted instances);
    - per-stage TCAM capacity: protection ranges are the admission
      bottleneck the paper calls out; this sweep shows concurrent cache
      capacity scaling with TCAM size;
    - allocation-granularity interaction with the heavy hitter's fixed
      byte demand (complements Figure 12). *)

val run_mutant_limit : ?n:int -> ?limits:int list -> Rmt.Params.t -> unit
val run_tcam : ?n:int -> ?capacities:int list -> Rmt.Params.t -> unit

val run_bandwidth : ?n:int -> Rmt.Params.t -> unit
(** A3: the bandwidth price of least-constrained placement — mean pipeline
    passes (and port recirculations) per cache query across co-resident
    instances under each policy. *)
