(** Figure 5: control-plane allocation time.

    (a) 500 sequential arrivals of each pure workload (cache,
    heavy-hitter, load-balancer) under the most- and least-constrained
    policies; allocation time collapses once placements start failing.
    (b) mixed workload (kind uniform at random), 10 trials, per-arrival
    times with an EWMA (alpha = 0.1). *)

val policies : (Activermt_compiler.Mutant.policy * string) list
(** (mc, lc) with their short labels, shared by the other figures. *)

val kinds : (Workload.Churn.kind * string) list

val run_5a : ?n:int -> ?every:int -> Rmt.Params.t -> unit
val run_5b : ?n:int -> ?trials:int -> ?every:int -> Rmt.Params.t -> unit
