(** Figure 8: latency overheads.

    (a) Provisioning time per arrival under online churn: measured
    allocation compute time plus the modeled table-update and snapshot
    costs; table updates dominate and the total levels off at slightly
    over one second — an order of magnitude below the measured 28.79 s
    P4 compile of an equivalent monolithic program.

    (b) Client-observed RTT for all-NOP active programs of 10/20/30
    instructions (plus an echo baseline): each pipeline traversed adds
    pass_latency_us (0.5 us). *)

val run_8a : ?epochs:int -> ?every:int -> Rmt.Params.t -> unit
val run_8b : ?packets:int -> Rmt.Params.t -> unit
