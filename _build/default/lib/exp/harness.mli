open Import

(** Shared allocator-evaluation harness: replay an arrival/departure trace
    against the online allocator and record the paper's per-epoch metrics
    (Section 6.1). *)

val app_of_kind : Churn.kind -> App.t

val arrival_of : fid:int -> Churn.kind -> block_bytes:int -> Allocator.arrival
(** Build the allocator arrival for a service instance.  Inelastic demands
    are specified in default (1 KB) blocks; [block_bytes] rescales them so
    byte demand stays constant when granularity changes (Figure 12). *)

type epoch_stats = {
  epoch : int;
  arrivals : int;
  admitted : int;
  failed : int;
  alloc_time_s : float;  (** summed admission compute time in the epoch *)
  utilization : float;
  residents : int;
  cache_residents : int;
  cache_reallocated : int;
      (** distinct cache instances reallocated this epoch and still
          resident at its end (the paper's per-instance reallocation
          expectation, Figure 7c) *)
  fairness : float;  (** Jain index over cache instances' total blocks *)
}

type run_result = {
  epochs : epoch_stats list;
  final_utilization : float;
  total_failures : int;
}

val run :
  ?scheme:Allocator.scheme ->
  ?policy:Mutant.policy ->
  params:Rmt.Params.t ->
  Churn.epoch list ->
  run_result
(** Replay the trace on a fresh allocator. *)
