lib/control/import.ml: Activermt_alloc Activermt_compiler
