lib/control/controller.ml: Activermt Allocator Array Cost_model Hashtbl Import List Option Pool Printf Rmt Spec Sys
