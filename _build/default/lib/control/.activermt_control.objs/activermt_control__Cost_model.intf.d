lib/control/cost_model.mli:
