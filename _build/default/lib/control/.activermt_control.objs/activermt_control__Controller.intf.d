lib/control/controller.mli: Activermt Allocator Cost_model Import Mutant Pool Rmt
