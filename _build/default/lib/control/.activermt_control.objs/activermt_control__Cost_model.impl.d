lib/control/cost_model.ml:
