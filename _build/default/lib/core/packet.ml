type fid = int

type flags = { elastic : bool; virtual_addressing : bool; ack : bool }

let no_flags = { elastic = false; virtual_addressing = false; ack = false }

type access_constraint = { position : int; min_gap : int; demand_blocks : int }

type request = {
  prog_length : int;
  rts_position : int option;
  accesses : access_constraint list;
}

type region = { start_word : int; n_words : int }
type response_status = Granted | Rejected

type response = { status : response_status; regions : region option array }

type payload =
  | Request of request
  | Response of response
  | Exec of { args : int array; program : Program.t }
  | Bare

type t = { fid : fid; seq : int; flags : flags; payload : payload }

let exec ?(flags = no_flags) ~fid ~seq ~args program =
  if Array.length args > 4 then invalid_arg "Packet.exec: more than 4 args";
  let padded = Array.make 4 0 in
  Array.blit args 0 padded 0 (Array.length args);
  { fid; seq; flags; payload = Exec { args = padded; program } }

let strip_executed t ~upto =
  match t.payload with
  | Exec { args; program } when upto > 0 ->
    let n = Program.length program in
    let keep = max 0 (n - upto) in
    let lines =
      Array.to_list (Array.sub program.Program.lines (n - keep) keep)
    in
    let program = Program.v ~name:program.Program.name lines in
    { t with payload = Exec { args; program } }
  | Exec _ | Request _ | Response _ | Bare -> t

let initial_header_bytes = 10
let args_header_bytes = 16
let request_header_bytes = 24
let response_header_bytes ~stages = 1 + (8 * stages)

let max_request_accesses = 8

let ptype_code = function
  | Request _ -> 0
  | Response _ -> 1
  | Exec _ -> 2
  | Bare -> 3

let wire_size ~stages t =
  initial_header_bytes
  +
  match t.payload with
  | Request _ -> request_header_bytes
  | Response _ -> response_header_bytes ~stages
  | Exec { program; _ } -> args_header_bytes + (2 * (Program.length program + 1))
  | Bare -> 0

let set_u16 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff)

let get_u16 b off = Bytes.get_uint8 b off lor (Bytes.get_uint8 b (off + 1) lsl 8)

let set_u24 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xff)

let get_u24 b off =
  Bytes.get_uint8 b off
  lor (Bytes.get_uint8 b (off + 1) lsl 8)
  lor (Bytes.get_uint8 b (off + 2) lsl 16)

let set_u32 b off v =
  set_u16 b off (v land 0xffff);
  set_u16 b (off + 2) ((v lsr 16) land 0xffff)

let get_u32 b off = get_u16 b off lor (get_u16 b (off + 2) lsl 16)

(* Initial header layout (10 bytes):
   fid:2  type+flags:1  seq:4  prog_len:1  rts_pos+1:1  n_accesses:1
   The trailing three bytes are meaningful for requests and zero
   otherwise. *)
let encode_initial b t =
  set_u16 b 0 (t.fid land 0xffff);
  let fl =
    ptype_code t.payload
    lor (if t.flags.elastic then 0x04 else 0)
    lor (if t.flags.virtual_addressing then 0x08 else 0)
    lor if t.flags.ack then 0x10 else 0
  in
  Bytes.set_uint8 b 2 fl;
  set_u32 b 3 t.seq;
  match t.payload with
  | Request r ->
    Bytes.set_uint8 b 7 (r.prog_length land 0xff);
    Bytes.set_uint8 b 8
      (match r.rts_position with Some p -> (p + 1) land 0xff | None -> 0);
    Bytes.set_uint8 b 9 (List.length r.accesses)
  | Response _ | Exec _ | Bare ->
    Bytes.set_uint8 b 7 0;
    Bytes.set_uint8 b 8 0;
    Bytes.set_uint8 b 9 0

let encode t =
  match t.payload with
  | Bare ->
    let b = Bytes.make initial_header_bytes '\000' in
    encode_initial b t;
    b
  | Request r ->
    if List.length r.accesses > max_request_accesses then
      invalid_arg "Packet.encode: more than 8 access constraints";
    let b = Bytes.make (initial_header_bytes + request_header_bytes) '\000' in
    encode_initial b t;
    List.iteri
      (fun i a ->
        let off = initial_header_bytes + (3 * i) in
        Bytes.set_uint8 b off (a.position land 0xff);
        Bytes.set_uint8 b (off + 1) (a.min_gap land 0xff);
        Bytes.set_uint8 b (off + 2) (a.demand_blocks land 0xff))
      r.accesses;
    b
  | Response r ->
    let stages = Array.length r.regions in
    let b =
      Bytes.make (initial_header_bytes + response_header_bytes ~stages) '\000'
    in
    encode_initial b t;
    Bytes.set_uint8 b initial_header_bytes
      (match r.status with Granted -> 1 | Rejected -> 0);
    Array.iteri
      (fun s reg ->
        let off = initial_header_bytes + 1 + (8 * s) in
        match reg with
        | None -> ()
        | Some { start_word; n_words } ->
          set_u24 b off start_word;
          set_u24 b (off + 3) n_words;
          Bytes.set_uint8 b (off + 6) 1)
      r.regions;
    b
  | Exec { args; program } ->
    let prog_bytes = Wire.encode_program program in
    let b =
      Bytes.make
        (initial_header_bytes + args_header_bytes + Bytes.length prog_bytes)
        '\000'
    in
    encode_initial b t;
    Array.iteri (fun i v -> set_u32 b (initial_header_bytes + (4 * i)) v) args;
    Bytes.blit prog_bytes 0 b (initial_header_bytes + args_header_bytes)
      (Bytes.length prog_bytes);
    b

let decode ?(stages = 20) b =
  if Bytes.length b < initial_header_bytes then Error "short packet"
  else begin
    let fid = get_u16 b 0 in
    let fl = Bytes.get_uint8 b 2 in
    let seq = get_u32 b 3 in
    let flags =
      {
        elastic = fl land 0x04 <> 0;
        virtual_addressing = fl land 0x08 <> 0;
        ack = fl land 0x10 <> 0;
      }
    in
    let finish payload = Ok { fid; seq; flags; payload } in
    match fl land 0x03 with
    | 0 ->
      if Bytes.length b < initial_header_bytes + request_header_bytes then
        Error "short allocation request"
      else begin
        let prog_length = Bytes.get_uint8 b 7 in
        let rts_position =
          match Bytes.get_uint8 b 8 with 0 -> None | p -> Some (p - 1)
        in
        let n = Bytes.get_uint8 b 9 in
        if n > max_request_accesses then Error "too many access constraints"
        else begin
          let access i =
            let off = initial_header_bytes + (3 * i) in
            {
              position = Bytes.get_uint8 b off;
              min_gap = Bytes.get_uint8 b (off + 1);
              demand_blocks = Bytes.get_uint8 b (off + 2);
            }
          in
          finish (Request { prog_length; rts_position; accesses = List.init n access })
        end
      end
    | 1 ->
      if Bytes.length b < initial_header_bytes + response_header_bytes ~stages
      then Error "short allocation response"
      else begin
        let status =
          if Bytes.get_uint8 b initial_header_bytes = 1 then Granted else Rejected
        in
        let region s =
          let off = initial_header_bytes + 1 + (8 * s) in
          if Bytes.get_uint8 b (off + 6) = 0 then None
          else Some { start_word = get_u24 b off; n_words = get_u24 b (off + 3) }
        in
        finish (Response { status; regions = Array.init stages region })
      end
    | 2 ->
      if Bytes.length b < initial_header_bytes + args_header_bytes then
        Error "short exec packet"
      else begin
        let args = Array.init 4 (fun i -> get_u32 b (initial_header_bytes + (4 * i))) in
        match
          Wire.decode_program b ~off:(initial_header_bytes + args_header_bytes)
        with
        | Error e -> Error e
        | Ok (program, _marks, _end) -> finish (Exec { args; program })
      end
    | _ -> finish Bare
  end

let pp fmt t =
  let kind =
    match t.payload with
    | Request _ -> "request"
    | Response _ -> "response"
    | Exec _ -> "exec"
    | Bare -> "bare"
  in
  Format.fprintf fmt "@[<h>packet{fid=%d seq=%d %s%s}@]" t.fid t.seq kind
    (if t.flags.elastic then " elastic" else "")
