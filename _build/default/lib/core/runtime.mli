(** The shared data-plane runtime: interprets active programs one
    instruction per logical stage as the packet traverses the simulated
    pipeline (Section 3.1).

    The runtime enforces memory protection (per-FID MAR ranges from
    [Table]), executes stateful register micro-programs, handles control
    flow via the complete/disabled flags, recirculates packets whose
    programs outrun the pipeline, and honours quiescence: packets of a
    FID under reallocation pass through un-processed. *)

type meta = {
  src : int;  (** source port/address for RTS *)
  dst : int;  (** resolved destination *)
  flow_key : int array;  (** words hashed by HASHDATA_LOAD_5TUPLE *)
}

val meta : ?flow_key:int array -> src:int -> dst:int -> unit -> meta

type drop_reason =
  | Protection_violation of { stage : int; mar : int }
  | No_allocation of { stage : int }
  | Recirculation_limit
      (** device limit, or the FID's [max_passes] allowance (Section 7.2's
          bandwidth-inflation control) *)
  | Privilege_violation of { stage : int }
      (** FORK or SET_DST by an unprivileged FID (Section 7.2's privilege
          levels) *)
  | Explicit_drop  (** DROP instruction *)

type decision =
  | Forward of int  (** deliver to this destination *)
  | Return_to_sender
  | Dropped of drop_reason

type result = {
  decision : decision;
  args_out : int array;  (** argument fields after execution (MBR_STORE) *)
  executed : int;  (** instructions executed (skipped ones excluded) *)
  passes : int;  (** full traversals of the logical pipeline *)
  port_recirculations : int;  (** extra recirculations to change ports *)
  pipelines : int;  (** pipelines traversed; drives the Fig 8b latency *)
  quiesced : bool;  (** FID was deactivated; packet passed through *)
  consumed_prefix : int;
      (** instruction headers whose stage has passed; the parser can strip
          them so the packet shrinks on the wire (Section 3.1) — see
          [Packet.strip_executed] *)
  final_mar : int;
  final_mbr : int;
  final_mbr2 : int;
  forks : int;  (** clones produced by FORK *)
}

type trace_event = {
  tr_pass : int;  (** 0-based pipeline pass *)
  tr_stage : int;  (** logical stage the slot occupied *)
  tr_pc : int;  (** instruction index in the program *)
  tr_instr : Instr.t;
  tr_skipped : bool;  (** slot consumed by a disabled (branched-over) instruction *)
  tr_mar : int;  (** register values after the slot *)
  tr_mbr : int;
  tr_mbr2 : int;
}

val pp_trace_event : Format.formatter -> trace_event -> unit

val run : ?on_event:(trace_event -> unit) -> Table.t -> ?meta:meta -> Packet.t -> result
(** Execute an [Exec] packet's program.  Non-program packets (requests,
    responses, bare) and quiesced FIDs pass through to [meta.dst]
    untouched.  MAR, MBR and MBR2 are preloaded from argument fields 0-2
    (the Appendix C "preloading" optimization).  Never raises on
    well-formed input; malformed programs (validated or not) simply
    execute their instruction stream. *)

val trace : Table.t -> ?meta:meta -> Packet.t -> result * trace_event list
(** [run] with a full per-stage execution trace, for debugging active
    programs (the CLI's [trace] subcommand). *)

val latency_us : Rmt.Params.t -> result -> float
(** Client-observed RTT for this execution under the paper's latency
    model: wire RTT plus [pass_latency_us] per pipeline traversed. *)
