lib/core/instr.ml: Format List Printf Result String
