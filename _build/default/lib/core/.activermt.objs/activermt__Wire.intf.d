lib/core/wire.mli: Bytes Program
