lib/core/runtime.ml: Array Format Instr List Packet Program Rmt Table
