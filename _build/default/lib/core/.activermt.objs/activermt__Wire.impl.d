lib/core/wire.ml: Array Bytes Instr List Printf Program
