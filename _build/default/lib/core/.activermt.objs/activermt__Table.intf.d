lib/core/table.mli: Packet Rmt
