lib/core/runtime.mli: Format Instr Packet Rmt Table
