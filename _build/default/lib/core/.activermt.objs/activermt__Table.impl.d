lib/core/table.ml: Array Hashtbl List Option Packet Rmt
