lib/core/program.mli: Format Instr
