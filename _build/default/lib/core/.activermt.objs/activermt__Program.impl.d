lib/core/program.ml: Array Buffer Format Hashtbl Instr List Printf String
