lib/core/packet.ml: Array Bytes Format List Program Wire
