lib/core/packet.mli: Bytes Format Program
