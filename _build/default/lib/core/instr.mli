(** The ActiveRMT instruction set (paper Appendix A).

    Programs are sequences of these instructions, executed one per logical
    match-action stage as the packet flows through the pipeline.  Three
    32-bit PHV variables are visible to programs: the memory address
    register MAR and two accumulators MBR and MBR2; HASH reads a separate
    pair of hash-data registers.

    Naming follows the paper with its COPY inconsistency resolved
    destination-first (see DESIGN.md): [Copy_mbr_mar] is MBR <- MAR. *)

type arg = A0 | A1 | A2 | A3
(** Index of one of the four 32-bit data fields in the argument header. *)

val arg_index : arg -> int
val arg_of_index : int -> arg option

type label = int
(** Branch label, 0..6 (three bits on the wire, 0 reserved for "none");
    labels mark instructions later in the program. *)

type t =
  (* A.1 data copying *)
  | Mbr_load of arg  (** MBR <- args[k] *)
  | Mbr_store of arg  (** args[k] <- MBR (written back into the packet) *)
  | Mbr2_load of arg  (** MBR2 <- args[k] *)
  | Mar_load of arg  (** MAR <- args[k] *)
  | Copy_mbr_mbr2  (** MBR <- MBR2 *)
  | Copy_mbr2_mbr  (** MBR2 <- MBR *)
  | Copy_mbr_mar  (** MBR <- MAR *)
  | Copy_mar_mbr  (** MAR <- MBR *)
  | Copy_hashdata_mbr  (** hashdata[0] <- MBR *)
  | Copy_hashdata_mbr2  (** hashdata[1] <- MBR2 *)
  | Hashdata_load_5tuple
      (** hashdata <- the packet's flow key (TCP/UDP 5-tuple digest); used
          by the Cheetah load balancer (Appendix B.2) *)
  (* A.2 data manipulation *)
  | Mbr_add_mbr2  (** MBR <- MBR + MBR2 *)
  | Mar_add_mbr  (** MAR <- MAR + MBR *)
  | Mar_add_mbr2  (** MAR <- MAR + MBR2 *)
  | Mar_mbr_add_mbr2  (** MAR <- MBR + MBR2 *)
  | Mbr_subtract_mbr2  (** MBR <- MBR - MBR2 *)
  | Bit_and_mar_mbr  (** MAR <- MAR land MBR *)
  | Bit_or_mbr_mbr2  (** MBR <- MBR lor MBR2 *)
  | Mbr_equals_mbr2  (** MBR <- MBR lxor MBR2 (0 iff equal) *)
  | Mbr_equals_data of arg  (** MBR <- MBR lxor args[k] (Listing 1) *)
  | Max  (** MBR <- max MBR MBR2 *)
  | Min  (** MBR <- min MBR MBR2 *)
  | Revmin  (** MBR2 <- min MBR MBR2 *)
  | Swap_mbr_mbr2
  | Mbr_not  (** MBR <- lnot MBR *)
  (* A.3 control flow *)
  | Return  (** mark complete; forward to resolved destination *)
  | Cret  (** return if MBR <> 0 *)
  | Creti  (** return if MBR = 0 *)
  | Cjump of label  (** jump to label if MBR <> 0 *)
  | Cjumpi of label  (** jump to label if MBR = 0 *)
  | Ujump of label  (** unconditional jump *)
  (* A.4 memory access *)
  | Mem_write  (** mem[MAR] <- MBR *)
  | Mem_read  (** MBR <- mem[MAR] *)
  | Mem_increment  (** mem[MAR] <- mem[MAR]+1; MBR <- new value *)
  | Mem_minread  (** MBR <- min mem[MAR] MBR *)
  | Mem_minreadinc
      (** mem[MAR] <- mem[MAR]+1; MBR <- new value; MBR2 <- min MBR MBR2
          (semantics from the Appendix B.1 walk-through) *)
  (* A.5 packet forwarding *)
  | Drop
  | Fork  (** clone the packet and continue execution (costs recirculation) *)
  | Set_dst  (** destination <- MBR *)
  | Rts  (** return to sender (ingress-only without recirculation) *)
  | Crts  (** RTS if MBR <> 0 *)
  (* A.6 special *)
  | Eof  (** end of active program marker *)
  | Nop
  | Addr_mask  (** MAR <- MAR land mask(next memory-access stage) *)
  | Addr_offset  (** MAR <- MAR + offset(next memory-access stage) *)
  | Hash  (** MAR <- stage-local CRC of the hash-data registers *)

val equal : t -> t -> bool

val is_memory_access : t -> bool
(** Does the instruction access this stage's register array?  (Requires a
    memory allocation in its execution stage.) *)

val needs_ingress : t -> bool
(** Must execute in the ingress pipeline to avoid an extra recirculation
    (RTS/CRTS; port changes are ingress-only on Tofino). *)

val clones_packet : t -> bool
(** FORK requires recirculation (Section 3.1). *)

val branch_target : t -> label option

val mnemonic : t -> string
(** Assembly mnemonic, e.g. ["MEM_READ"], ["MBR_LOAD 2"], ["CJUMP L3"]. *)

val of_mnemonic : string -> (t, string) result
(** Parse one assembly line (mnemonic plus optional operand); inverse of
    [mnemonic]. *)

val pp : Format.formatter -> t -> unit

val all_opcodes : t list
(** One representative of every instruction (arg/label families included
    once per operand value), for exhaustive codec tests. *)
