type line = { instr : Instr.t; label : Instr.label option }
type t = { name : string; lines : line array }

let v ?(name = "anon") lines = { name; lines = Array.of_list lines }
let line ?label instr = { instr; label }
let plain instrs = List.map (fun i -> { instr = i; label = None }) instrs
let length t = Array.length t.lines

type error =
  | Backward_or_missing_label of { at : int; target : Instr.label }
  | Duplicate_label of Instr.label
  | Embedded_eof of int
  | Unreachable_after_return of int

let error_to_string = function
  | Backward_or_missing_label { at; target } ->
    Printf.sprintf "instruction %d jumps to label L%d, which is not defined later in the program"
      at target
  | Duplicate_label l -> Printf.sprintf "label L%d is defined more than once" l
  | Embedded_eof i -> Printf.sprintf "EOF in the middle of the program at %d" i
  | Unreachable_after_return i ->
    Printf.sprintf "unconditional RETURN at %d is not the last instruction" i

let validate t =
  let n = Array.length t.lines in
  let seen = Hashtbl.create 8 in
  let result = ref (Ok t) in
  let fail e = if !result = Ok t then result := Error e in
  Array.iteri
    (fun i l ->
      (match l.label with
      | Some lab ->
        if Hashtbl.mem seen lab then fail (Duplicate_label lab)
        else Hashtbl.add seen lab i
      | None -> ());
      if l.instr = Instr.Eof && i < n - 1 then fail (Embedded_eof i))
    t.lines;
  Array.iteri
    (fun i l ->
      match Instr.branch_target l.instr with
      | None -> ()
      | Some target -> (
        match Hashtbl.find_opt seen target with
        | Some j when j > i -> ()
        | Some _ | None -> fail (Backward_or_missing_label { at = i; target })))
    t.lines;
  (* A RETURN not guarded by a branch makes everything after it dead code,
     except trailing EOF/NOP padding used by mutants. *)
  let reachable_targets =
    Array.to_list t.lines
    |> List.filter_map (fun l -> Instr.branch_target l.instr)
  in
  Array.iteri
    (fun i l ->
      if l.instr = Instr.Return && i < n - 1 then begin
        let tail = Array.sub t.lines (i + 1) (n - i - 1) in
        let tail_live =
          Array.exists
            (fun l' ->
              match l'.label with
              | Some lab -> List.mem lab reachable_targets
              | None -> false)
            tail
        in
        let tail_padding =
          Array.for_all (fun l' -> l'.instr = Instr.Nop || l'.instr = Instr.Eof) tail
        in
        if (not tail_live) && not tail_padding then fail (Unreachable_after_return i)
      end)
    t.lines;
  !result

let memory_access_positions t =
  let acc = ref [] in
  Array.iteri
    (fun i l -> if Instr.is_memory_access l.instr then acc := i :: !acc)
    t.lines;
  List.rev !acc

let position_of_first t ~f =
  let n = Array.length t.lines in
  let rec go i =
    if i >= n then None else if f t.lines.(i).instr then Some i else go (i + 1)
  in
  go 0

let rts_position t = position_of_first t ~f:Instr.needs_ingress

let strip_comment s =
  let cut_at idx = String.sub s 0 idx in
  let find_sub sub =
    let ls = String.length sub and n = String.length s in
    let rec go i =
      if i + ls > n then None
      else if String.sub s i ls = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  let s = match find_sub "//" with Some i -> cut_at i | None -> s in
  match String.index_opt s ';' with Some i -> cut_at i | None -> s

let parse_line lineno raw =
  let s = String.trim (strip_comment raw) in
  if s = "" then Ok None
  else begin
    let label, body =
      match String.index_opt s ':' with
      | Some i
        when i >= 2
             && (s.[0] = 'L' || s.[0] = 'l')
             && String.for_all
                  (fun c -> c >= '0' && c <= '9')
                  (String.sub s 1 (i - 1)) ->
        ( Some (int_of_string (String.sub s 1 (i - 1))),
          String.sub s (i + 1) (String.length s - i - 1) )
      | _ -> (None, s)
    in
    match Instr.of_mnemonic body with
    | Ok instr -> Ok (Some { instr; label })
    | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
  end

let parse ?(name = "anon") text =
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
      match parse_line lineno raw with
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some l) -> go (lineno + 1) (l :: acc) rest
      | Error e -> Error e)
  in
  match go 1 [] (String.split_on_char '\n' text) with
  | Error e -> Error e
  | Ok lines -> (
    let t = { name; lines = Array.of_list lines } in
    match validate t with
    | Ok t -> Ok t
    | Error e -> Error (error_to_string e))

let to_assembly t =
  let buf = Buffer.create 256 in
  Array.iter
    (fun l ->
      (match l.label with
      | Some lab -> Buffer.add_string buf (Printf.sprintf "L%d: " lab)
      | None -> ());
      Buffer.add_string buf (Instr.mnemonic l.instr);
      Buffer.add_char buf '\n')
    t.lines;
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "@[<v>program %s (%d instructions)@,%s@]" t.name
    (length t) (to_assembly t)

let equal a b =
  Array.length a.lines = Array.length b.lines
  && Array.for_all2
       (fun la lb -> Instr.equal la.instr lb.instr && la.label = lb.label)
       a.lines b.lines
