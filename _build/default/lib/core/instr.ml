type arg = A0 | A1 | A2 | A3

let arg_index = function A0 -> 0 | A1 -> 1 | A2 -> 2 | A3 -> 3

let arg_of_index = function
  | 0 -> Some A0
  | 1 -> Some A1
  | 2 -> Some A2
  | 3 -> Some A3
  | _ -> None

type label = int

type t =
  | Mbr_load of arg
  | Mbr_store of arg
  | Mbr2_load of arg
  | Mar_load of arg
  | Copy_mbr_mbr2
  | Copy_mbr2_mbr
  | Copy_mbr_mar
  | Copy_mar_mbr
  | Copy_hashdata_mbr
  | Copy_hashdata_mbr2
  | Hashdata_load_5tuple
  | Mbr_add_mbr2
  | Mar_add_mbr
  | Mar_add_mbr2
  | Mar_mbr_add_mbr2
  | Mbr_subtract_mbr2
  | Bit_and_mar_mbr
  | Bit_or_mbr_mbr2
  | Mbr_equals_mbr2
  | Mbr_equals_data of arg
  | Max
  | Min
  | Revmin
  | Swap_mbr_mbr2
  | Mbr_not
  | Return
  | Cret
  | Creti
  | Cjump of label
  | Cjumpi of label
  | Ujump of label
  | Mem_write
  | Mem_read
  | Mem_increment
  | Mem_minread
  | Mem_minreadinc
  | Drop
  | Fork
  | Set_dst
  | Rts
  | Crts
  | Eof
  | Nop
  | Addr_mask
  | Addr_offset
  | Hash

let equal (a : t) (b : t) = a = b

let is_memory_access = function
  | Mem_write | Mem_read | Mem_increment | Mem_minread | Mem_minreadinc -> true
  | Mbr_load _ | Mbr_store _ | Mbr2_load _ | Mar_load _ | Copy_mbr_mbr2
  | Copy_mbr2_mbr | Copy_mbr_mar | Copy_mar_mbr | Copy_hashdata_mbr
  | Copy_hashdata_mbr2 | Hashdata_load_5tuple | Mbr_add_mbr2 | Mar_add_mbr
  | Mar_add_mbr2 | Mar_mbr_add_mbr2 | Mbr_subtract_mbr2 | Bit_and_mar_mbr
  | Bit_or_mbr_mbr2 | Mbr_equals_mbr2 | Mbr_equals_data _ | Max | Min | Revmin
  | Swap_mbr_mbr2 | Mbr_not | Return | Cret | Creti | Cjump _ | Cjumpi _
  | Ujump _ | Drop | Fork | Set_dst | Rts | Crts | Eof | Nop | Addr_mask
  | Addr_offset | Hash ->
    false

let needs_ingress = function
  | Rts | Crts -> true
  | _ -> false

let clones_packet = function Fork -> true | _ -> false

let branch_target = function
  | Cjump l | Cjumpi l | Ujump l -> Some l
  | _ -> None

let mnemonic = function
  | Mbr_load a -> Printf.sprintf "MBR_LOAD %d" (arg_index a)
  | Mbr_store a -> Printf.sprintf "MBR_STORE %d" (arg_index a)
  | Mbr2_load a -> Printf.sprintf "MBR2_LOAD %d" (arg_index a)
  | Mar_load a -> Printf.sprintf "MAR_LOAD %d" (arg_index a)
  | Copy_mbr_mbr2 -> "COPY_MBR_MBR2"
  | Copy_mbr2_mbr -> "COPY_MBR2_MBR"
  | Copy_mbr_mar -> "COPY_MBR_MAR"
  | Copy_mar_mbr -> "COPY_MAR_MBR"
  | Copy_hashdata_mbr -> "COPY_HASHDATA_MBR"
  | Copy_hashdata_mbr2 -> "COPY_HASHDATA_MBR2"
  | Hashdata_load_5tuple -> "HASHDATA_LOAD_5TUPLE"
  | Mbr_add_mbr2 -> "MBR_ADD_MBR2"
  | Mar_add_mbr -> "MAR_ADD_MBR"
  | Mar_add_mbr2 -> "MAR_ADD_MBR2"
  | Mar_mbr_add_mbr2 -> "MAR_MBR_ADD_MBR2"
  | Mbr_subtract_mbr2 -> "MBR_SUBTRACT_MBR2"
  | Bit_and_mar_mbr -> "BIT_AND_MAR_MBR"
  | Bit_or_mbr_mbr2 -> "BIT_OR_MBR_MBR2"
  | Mbr_equals_mbr2 -> "MBR_EQUALS_MBR2"
  | Mbr_equals_data a -> Printf.sprintf "MBR_EQUALS_DATA %d" (arg_index a)
  | Max -> "MAX"
  | Min -> "MIN"
  | Revmin -> "REVMIN"
  | Swap_mbr_mbr2 -> "SWAP_MBR_MBR2"
  | Mbr_not -> "MBR_NOT"
  | Return -> "RETURN"
  | Cret -> "CRET"
  | Creti -> "CRETI"
  | Cjump l -> Printf.sprintf "CJUMP L%d" l
  | Cjumpi l -> Printf.sprintf "CJUMPI L%d" l
  | Ujump l -> Printf.sprintf "UJUMP L%d" l
  | Mem_write -> "MEM_WRITE"
  | Mem_read -> "MEM_READ"
  | Mem_increment -> "MEM_INCREMENT"
  | Mem_minread -> "MEM_MINREAD"
  | Mem_minreadinc -> "MEM_MINREADINC"
  | Drop -> "DROP"
  | Fork -> "FORK"
  | Set_dst -> "SET_DST"
  | Rts -> "RTS"
  | Crts -> "CRTS"
  | Eof -> "EOF"
  | Nop -> "NOP"
  | Addr_mask -> "ADDR_MASK"
  | Addr_offset -> "ADDR_OFFSET"
  | Hash -> "HASH"

let parse_arg s =
  match int_of_string_opt s with
  | Some i -> (
    match arg_of_index i with
    | Some a -> Ok a
    | None -> Error (Printf.sprintf "argument index %d out of range 0..3" i))
  | None -> Error (Printf.sprintf "expected argument index, got %S" s)

let parse_label s =
  let body =
    if String.length s > 1 && (s.[0] = 'L' || s.[0] = 'l') then
      String.sub s 1 (String.length s - 1)
    else s
  in
  match int_of_string_opt body with
  | Some l when l >= 0 && l <= 6 -> Ok l
  | Some l -> Error (Printf.sprintf "label %d out of range 0..6" l)
  | None -> Error (Printf.sprintf "expected label, got %S" s)

let of_mnemonic line =
  let tokens =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  let with_arg name rest k =
    match rest with
    | [ operand ] -> Result.map k (parse_arg operand)
    | [] -> Error (name ^ ": missing argument index")
    | _ -> Error (name ^ ": too many operands")
  in
  let with_label name rest k =
    match rest with
    | [ operand ] -> Result.map k (parse_label operand)
    | [] -> Error (name ^ ": missing label")
    | _ -> Error (name ^ ": too many operands")
  in
  match tokens with
  | [] -> Error "empty instruction"
  | op :: rest -> (
    let bare v =
      match rest with
      | [] -> Ok v
      | _ -> Error (op ^ ": unexpected operand")
    in
    match String.uppercase_ascii op with
    | "MBR_LOAD" -> with_arg op rest (fun a -> Mbr_load a)
    | "MBR_STORE" -> (
      (* Listing 1 writes MBR_STORE without an operand (first data field). *)
      match rest with
      | [] -> Ok (Mbr_store A0)
      | _ -> with_arg op rest (fun a -> Mbr_store a))
    | "MBR2_LOAD" -> with_arg op rest (fun a -> Mbr2_load a)
    | "MAR_LOAD" -> with_arg op rest (fun a -> Mar_load a)
    | "COPY_MBR_MBR2" -> bare Copy_mbr_mbr2
    | "COPY_MBR2_MBR" -> bare Copy_mbr2_mbr
    | "COPY_MBR_MAR" -> bare Copy_mbr_mar
    | "COPY_MAR_MBR" -> bare Copy_mar_mbr
    | "COPY_HASHDATA_MBR" -> bare Copy_hashdata_mbr
    | "COPY_HASHDATA_MBR2" -> bare Copy_hashdata_mbr2
    | "HASHDATA_LOAD_5TUPLE" -> bare Hashdata_load_5tuple
    | "MBR_ADD_MBR2" -> bare Mbr_add_mbr2
    | "MAR_ADD_MBR" -> bare Mar_add_mbr
    | "MAR_ADD_MBR2" -> bare Mar_add_mbr2
    | "MAR_MBR_ADD_MBR2" -> bare Mar_mbr_add_mbr2
    | "MBR_SUBTRACT_MBR2" -> bare Mbr_subtract_mbr2
    | "BIT_AND_MAR_MBR" -> bare Bit_and_mar_mbr
    | "BIT_OR_MBR_MBR2" -> bare Bit_or_mbr_mbr2
    | "MBR_EQUALS_MBR2" -> bare Mbr_equals_mbr2
    | "MBR_EQUALS_DATA" -> with_arg op rest (fun a -> Mbr_equals_data a)
    | "MAX" -> bare Max
    | "MIN" -> bare Min
    | "REVMIN" -> bare Revmin
    | "SWAP_MBR_MBR2" -> bare Swap_mbr_mbr2
    | "MBR_NOT" -> bare Mbr_not
    | "RETURN" -> bare Return
    | "CRET" -> bare Cret
    | "CRETI" | "CRET1" -> bare Creti
    | "CJUMP" -> with_label op rest (fun l -> Cjump l)
    | "CJUMPI" -> with_label op rest (fun l -> Cjumpi l)
    | "UJUMP" -> with_label op rest (fun l -> Ujump l)
    | "MEM_WRITE" -> bare Mem_write
    | "MEM_READ" -> bare Mem_read
    | "MEM_INCREMENT" -> bare Mem_increment
    | "MEM_MINREAD" -> bare Mem_minread
    | "MEM_MINREADINC" -> bare Mem_minreadinc
    | "DROP" -> bare Drop
    | "FORK" -> bare Fork
    | "SET_DST" -> bare Set_dst
    | "RTS" -> bare Rts
    | "CRTS" -> bare Crts
    | "EOF" -> bare Eof
    | "NOP" -> bare Nop
    | "ADDR_MASK" -> bare Addr_mask
    | "ADDR_OFFSET" -> bare Addr_offset
    | "HASH" -> bare Hash
    | other -> Error ("unknown mnemonic " ^ other))

let pp fmt t = Format.pp_print_string fmt (mnemonic t)

let all_opcodes =
  let args = [ A0; A1; A2; A3 ] in
  let labels = [ 0; 1; 2; 3; 4; 5; 6 ] in
  List.concat
    [
      List.map (fun a -> Mbr_load a) args;
      List.map (fun a -> Mbr_store a) args;
      List.map (fun a -> Mbr2_load a) args;
      List.map (fun a -> Mar_load a) args;
      [
        Copy_mbr_mbr2; Copy_mbr2_mbr; Copy_mbr_mar; Copy_mar_mbr;
        Copy_hashdata_mbr; Copy_hashdata_mbr2; Hashdata_load_5tuple;
        Mbr_add_mbr2; Mar_add_mbr; Mar_add_mbr2; Mar_mbr_add_mbr2;
        Mbr_subtract_mbr2; Bit_and_mar_mbr; Bit_or_mbr_mbr2; Mbr_equals_mbr2;
      ];
      List.map (fun a -> Mbr_equals_data a) args;
      [ Max; Min; Revmin; Swap_mbr_mbr2; Mbr_not; Return; Cret; Creti ];
      List.map (fun l -> Cjump l) labels;
      List.map (fun l -> Cjumpi l) labels;
      List.map (fun l -> Ujump l) labels;
      [
        Mem_write; Mem_read; Mem_increment; Mem_minread; Mem_minreadinc; Drop;
        Fork; Set_dst; Rts; Crts; Eof; Nop; Addr_mask; Addr_offset; Hash;
      ];
    ]
