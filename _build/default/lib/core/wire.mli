(** Wire encoding of instruction headers.

    Each instruction header is two bytes (Section 3.3): a one-byte opcode
    and a one-byte flag.  The flag byte carries
    - bit 0: the "executed" mark the switch sets so the parser can discard
      the field on the way out (packets shrink after execution);
    - bits 1-3: the instruction's own label plus one (0 = unlabelled);
    - bits 4-6: the branch target for CJUMP/CJUMPI/UJUMP. *)

type decoded = { line : Program.line; executed : bool }

val encode : ?executed:bool -> Program.line -> int * int
(** [(opcode_byte, flag_byte)], both in 0..255. *)

val decode : opcode:int -> flag:int -> (decoded, string) result

val encode_program : Program.t -> Bytes.t
(** Instruction headers for every line plus a terminating EOF header. *)

val decode_program :
  ?name:string -> Bytes.t -> off:int -> (Program.t * bool array * int, string) result
(** Decode headers starting at [off] up to and including EOF.  Returns the
    program (EOF stripped), the per-line executed marks, and the offset
    one past the EOF header. *)
