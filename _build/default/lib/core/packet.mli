(** Active packet formats and their byte-level codec (Section 3.3).

    Every active packet starts with a 10-byte initial header carrying the
    program identifier FID and control flags that select one of the packet
    types: allocation request, allocation response, active program, or a
    bare control signal (used e.g. to announce snapshot completion).

    Active-program packets then carry one 16-byte argument header (four
    32-bit data fields) followed by 2-byte instruction headers terminated
    by EOF.  Allocation requests carry eight 3-byte access-constraint
    entries; allocation responses carry one 8-byte region record per
    logical stage. *)

type fid = int
(** Program/service identifier, 16 bits on the wire. *)

type flags = {
  elastic : bool;  (** memory demand is elastic (Section 4.1) *)
  virtual_addressing : bool;
      (** MAR values are region-relative; the switch confines them to the
          granted region (runtime translation, Section 3.2) *)
  ack : bool;  (** generic acknowledgement bit for control exchanges *)
}

val no_flags : flags

type access_constraint = {
  position : int;  (** 0-based instruction index of the access in the most
                       compact program (the paper's lower bound) *)
  min_gap : int;  (** minimum distance from the previous access (B vector) *)
  demand_blocks : int;  (** blocks wanted in that stage; elastic apps put
                            their minimum (>= 1) here *)
}

type request = {
  prog_length : int;
  rts_position : int option;  (** position of RTS if the program has one *)
  accesses : access_constraint list;  (** at most 8 entries fit the header *)
}

type region = { start_word : int; n_words : int }

type response_status = Granted | Rejected

type response = {
  status : response_status;
  regions : region option array;  (** one slot per logical stage *)
}

type payload =
  | Request of request
  | Response of response
  | Exec of { args : int array; program : Program.t }
      (** [args] has exactly four 32-bit fields *)
  | Bare

type t = { fid : fid; seq : int; flags : flags; payload : payload }

val exec : ?flags:flags -> fid:fid -> seq:int -> args:int array -> Program.t -> t
(** Convenience constructor; pads/checks args to four fields.
    @raise Invalid_argument on more than four args. *)

val initial_header_bytes : int
(** 10 *)

val args_header_bytes : int
(** 16 *)

val request_header_bytes : int
(** 24 *)

val response_header_bytes : stages:int -> int
(** 8 bytes per stage + status byte; 161 with 20 stages (paper: 160). *)

val wire_size : stages:int -> t -> int
(** Size in bytes of [encode t] (header overhead a service adds to each
    packet; Section 3.3 discusses this cost). *)

val strip_executed : t -> upto:int -> t
(** Drop the first [upto] instruction headers of an [Exec] packet — the
    Section 3.1 optimization: once an instruction's stage has passed, the
    parser marks its field for removal and the active packet shrinks on
    the wire.  Other payloads are returned unchanged. *)

val encode : t -> Bytes.t
val decode : ?stages:int -> Bytes.t -> (t, string) result
(** [stages] (default 20) sets the expected response-header geometry. *)

val pp : Format.formatter -> t -> unit
