type meta = { src : int; dst : int; flow_key : int array }

let meta ?(flow_key = [||]) ~src ~dst () = { src; dst; flow_key }

type drop_reason =
  | Protection_violation of { stage : int; mar : int }
  | No_allocation of { stage : int }
  | Recirculation_limit
  | Privilege_violation of { stage : int }
  | Explicit_drop

type decision = Forward of int | Return_to_sender | Dropped of drop_reason

type result = {
  decision : decision;
  args_out : int array;
  executed : int;
  passes : int;
  port_recirculations : int;
  pipelines : int;
  quiesced : bool;
  consumed_prefix : int;
  final_mar : int;
  final_mbr : int;
  final_mbr2 : int;
  forks : int;
}

type phv = {
  mutable mar : int;
  mutable mbr : int;
  mutable mbr2 : int;
  mutable hd0 : int;
  mutable hd1 : int;
  mutable complete : bool;
  mutable disabled : Instr.label option;
  mutable rts : bool;
  mutable dst : int;
  mutable dropped : drop_reason option;
}

let mask32 v = v land 0xFFFFFFFF

let default_meta = { src = 0; dst = 0; flow_key = [||] }

let pass_through ?(args = [||]) ~quiesced (m : meta) =
  {
    decision = Forward m.dst;
    args_out = Array.copy args;
    executed = 0;
    passes = 1;
    port_recirculations = 0;
    pipelines = 2;
    quiesced;
    consumed_prefix = 0;
    final_mar = 0;
    final_mbr = 0;
    final_mbr2 = 0;
    forks = 0;
  }

type trace_event = {
  tr_pass : int;
  tr_stage : int;
  tr_pc : int;
  tr_instr : Instr.t;
  tr_skipped : bool;
  tr_mar : int;
  tr_mbr : int;
  tr_mbr2 : int;
}

let pp_trace_event fmt e =
  Format.fprintf fmt "pass %d stage %2d  pc %2d  %-24s%s  MAR=%d MBR=%d MBR2=%d"
    e.tr_pass e.tr_stage e.tr_pc
    (Instr.mnemonic e.tr_instr)
    (if e.tr_skipped then " (skipped)" else "")
    e.tr_mar e.tr_mbr e.tr_mbr2

let exec ?on_event tables ~(meta : meta) ~fid ~args ~program =
  let device = Table.device tables in
  let params = Rmt.Device.params device in
  let n_stages = params.Rmt.Params.logical_stages in
  let ingress = params.Rmt.Params.ingress_stages in
  let lines = program.Program.lines in
  let len = Array.length lines in
  let args = Array.copy args in
  (* "Preloading" (Appendix C): MAR/MBR/MBR2 start out holding the first
     three argument fields, so short programs can omit explicit loads and
     reach memory in the very first stage. *)
  let arg_or_zero i = if Array.length args > i then args.(i) else 0 in
  let p =
    {
      mar = arg_or_zero 0;
      mbr = arg_or_zero 1;
      mbr2 = arg_or_zero 2;
      hd0 = 0;
      hd1 = 0;
      complete = false;
      disabled = None;
      rts = false;
      dst = meta.dst;
      dropped = None;
    }
  in
  let executed = ref 0 in
  let port_recircs = ref 0 in
  let forks = ref 0 in
  let last_stage = ref 0 in
  let arg_get a = args.(Instr.arg_index a) in
  let arg_set a v = args.(Instr.arg_index a) <- mask32 v in
  let drop reason =
    p.dropped <- Some reason;
    p.complete <- true;
    Rmt.Device.count_drop device
  in
  let mem_access stage_idx op_of_index =
    match Table.lookup tables ~fid ~stage:stage_idx with
    | None | Some { Table.region = None; _ } ->
      drop (No_allocation { stage = stage_idx })
    | Some { Table.region = Some r; virtual_addressing; _ } ->
      let lo = r.Packet.start_word and n = r.Packet.n_words in
      let index =
        if virtual_addressing then Some (lo + (p.mar mod n))
        else if p.mar >= lo && p.mar < lo + n then Some p.mar
        else None
      in
      (match index with
      | None -> drop (Protection_violation { stage = stage_idx; mar = p.mar })
      | Some index ->
        let stage = Rmt.Device.stage device stage_idx in
        op_of_index stage.Rmt.Device.regs index)
  in
  let execute stage_idx (instr : Instr.t) =
    incr executed;
    match instr with
    | Mbr_load a -> p.mbr <- arg_get a
    | Mbr_store a -> arg_set a p.mbr
    | Mbr2_load a -> p.mbr2 <- arg_get a
    | Mar_load a -> p.mar <- arg_get a
    | Copy_mbr_mbr2 -> p.mbr <- p.mbr2
    | Copy_mbr2_mbr -> p.mbr2 <- p.mbr
    | Copy_mbr_mar -> p.mbr <- p.mar
    | Copy_mar_mbr -> p.mar <- p.mbr
    | Copy_hashdata_mbr -> p.hd0 <- p.mbr
    | Copy_hashdata_mbr2 -> p.hd1 <- p.mbr2
    | Hashdata_load_5tuple ->
      let key = meta.flow_key in
      p.hd0 <- (if Array.length key > 0 then key.(0) else 0);
      p.hd1 <- (if Array.length key > 1 then key.(1) else 0)
    | Mbr_add_mbr2 -> p.mbr <- mask32 (p.mbr + p.mbr2)
    | Mar_add_mbr -> p.mar <- mask32 (p.mar + p.mbr)
    | Mar_add_mbr2 -> p.mar <- mask32 (p.mar + p.mbr2)
    | Mar_mbr_add_mbr2 -> p.mar <- mask32 (p.mbr + p.mbr2)
    | Mbr_subtract_mbr2 -> p.mbr <- mask32 (p.mbr - p.mbr2)
    | Bit_and_mar_mbr -> p.mar <- p.mar land p.mbr
    | Bit_or_mbr_mbr2 -> p.mbr <- p.mbr lor p.mbr2
    | Mbr_equals_mbr2 -> p.mbr <- p.mbr lxor p.mbr2
    | Mbr_equals_data a -> p.mbr <- p.mbr lxor arg_get a
    | Max -> p.mbr <- max p.mbr p.mbr2
    | Min -> p.mbr <- min p.mbr p.mbr2
    | Revmin -> p.mbr2 <- min p.mbr p.mbr2
    | Swap_mbr_mbr2 ->
      let tmp = p.mbr in
      p.mbr <- p.mbr2;
      p.mbr2 <- tmp
    | Mbr_not -> p.mbr <- mask32 (lnot p.mbr)
    | Return -> p.complete <- true
    | Cret -> if p.mbr <> 0 then p.complete <- true
    | Creti -> if p.mbr = 0 then p.complete <- true
    | Cjump l -> if p.mbr <> 0 then p.disabled <- Some l
    | Cjumpi l -> if p.mbr = 0 then p.disabled <- Some l
    | Ujump l -> p.disabled <- Some l
    | Mem_write ->
      mem_access stage_idx (fun regs index ->
          ignore (Rmt.Register_array.access regs ~index (Rmt.Register_array.Write p.mbr)))
    | Mem_read ->
      mem_access stage_idx (fun regs index ->
          let r = Rmt.Register_array.access regs ~index Rmt.Register_array.Read in
          p.mbr <- r.Rmt.Register_array.value)
    | Mem_increment ->
      mem_access stage_idx (fun regs index ->
          let r =
            Rmt.Register_array.access regs ~index (Rmt.Register_array.Add_read 1)
          in
          p.mbr <- r.Rmt.Register_array.value)
    | Mem_minread ->
      mem_access stage_idx (fun regs index ->
          let r =
            Rmt.Register_array.access regs ~index (Rmt.Register_array.Min_read p.mbr)
          in
          p.mbr <- r.Rmt.Register_array.value)
    | Mem_minreadinc ->
      mem_access stage_idx (fun regs index ->
          let r =
            Rmt.Register_array.access regs ~index (Rmt.Register_array.Add_read 1)
          in
          p.mbr <- r.Rmt.Register_array.value;
          p.mbr2 <- min p.mbr p.mbr2)
    | Drop -> drop Explicit_drop
    | Fork ->
      if Table.is_privileged tables ~fid then begin
        incr forks;
        Rmt.Device.count_recirculation device
      end
      else drop (Privilege_violation { stage = stage_idx })
    | Set_dst ->
      if Table.is_privileged tables ~fid then p.dst <- p.mbr
      else drop (Privilege_violation { stage = stage_idx })
    | Rts ->
      p.rts <- true;
      p.dst <- meta.src;
      if stage_idx >= ingress then begin
        incr port_recircs;
        Rmt.Device.count_recirculation device
      end
    | Crts ->
      if p.mbr <> 0 then begin
        p.rts <- true;
        p.dst <- meta.src;
        if stage_idx >= ingress then begin
          incr port_recircs;
          Rmt.Device.count_recirculation device
        end
      end
    | Eof -> p.complete <- true
    | Nop -> ()
    | Addr_mask -> (
      match Table.lookup tables ~fid ~stage:stage_idx with
      | Some e -> p.mar <- p.mar land e.Table.xmask
      | None -> drop (No_allocation { stage = stage_idx }))
    | Addr_offset -> (
      match Table.lookup tables ~fid ~stage:stage_idx with
      | Some e -> p.mar <- mask32 (p.mar + e.Table.xoffset)
      | None -> drop (No_allocation { stage = stage_idx }))
    | Hash ->
      let stage = Rmt.Device.stage device stage_idx in
      p.mar <-
        mask32 (Rmt.Crc.hash_words ~row:stage.Rmt.Device.hash_row [ p.hd0; p.hd1 ])
  in
  let pass_allowance =
    match Table.max_passes_of tables ~fid with
    | Some mp -> min (mp - 1) params.Rmt.Params.recirc_limit
    | None -> params.Rmt.Params.recirc_limit
  in
  let pc = ref 0 in
  let passes = ref 0 in
  let limit_hit = ref false in
  while (not p.complete) && !pc < len && not !limit_hit do
    if !passes > 0 then begin
      if !passes > pass_allowance then begin
        limit_hit := true;
        drop Recirculation_limit
      end
      else Rmt.Device.count_recirculation device
    end;
    if not !limit_hit then begin
      let s = ref 0 in
      while !s < n_stages && (not p.complete) && !pc < len do
        let line = lines.(!pc) in
        let skipped =
          match p.disabled with
          | Some target ->
            if line.Program.label = Some target then begin
              p.disabled <- None;
              last_stage := !s;
              execute !s line.Program.instr;
              false
            end
            else true
          | None ->
            last_stage := !s;
            execute !s line.Program.instr;
            false
        in
        (match on_event with
        | Some f ->
          f
            {
              tr_pass = !passes;
              tr_stage = !s;
              tr_pc = !pc;
              tr_instr = line.Program.instr;
              tr_skipped = skipped;
              tr_mar = p.mar;
              tr_mbr = p.mbr;
              tr_mbr2 = p.mbr2;
            }
        | None -> ());
        incr pc;
        incr s
      done;
      incr passes
    end
  done;
  let passes = max 1 !passes in
  let pipelines =
    let within_ingress = !last_stage < ingress in
    ((passes - 1) * 2) + (if within_ingress then 1 else 2) + (2 * !port_recircs)
  in
  let decision =
    match p.dropped with
    | Some r -> Dropped r
    | None -> if p.rts then Return_to_sender else Forward p.dst
  in
  {
    decision;
    args_out = args;
    executed = !executed;
    passes;
    port_recirculations = !port_recircs;
    pipelines;
    quiesced = false;
    consumed_prefix = !pc;
    final_mar = p.mar;
    final_mbr = p.mbr;
    final_mbr2 = p.mbr2;
    forks = !forks;
  }

let run ?on_event tables ?(meta = default_meta) (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Packet.Request _ | Packet.Response _ | Packet.Bare ->
    pass_through ~quiesced:false meta
  | Packet.Exec { args; program } ->
    if Table.is_quiesced tables ~fid:pkt.Packet.fid then
      pass_through ~args ~quiesced:true meta
    else exec ?on_event tables ~meta ~fid:pkt.Packet.fid ~args ~program

let trace tables ?meta pkt =
  let events = ref [] in
  let r = run ~on_event:(fun e -> events := e :: !events) tables ?meta pkt in
  (r, List.rev !events)

let latency_us params r =
  params.Rmt.Params.wire_rtt_us
  +. (params.Rmt.Params.pass_latency_us *. float_of_int r.pipelines)
