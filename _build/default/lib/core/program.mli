(** Active programs: a sequence of (optionally labelled) instructions.

    A label marks an instruction as a branch target; branches must jump
    strictly forward because execution proceeds stage by stage
    (Section 3.1).  [validate] checks this and the other structural rules
    the runtime relies on. *)

type line = { instr : Instr.t; label : Instr.label option }

type t = private {
  name : string;
  lines : line array;  (** excludes the terminating EOF *)
}

val v : ?name:string -> line list -> t
(** Build without validation (tests use this to make bad programs). *)

val line : ?label:Instr.label -> Instr.t -> line
val plain : Instr.t list -> line list
(** Lines without labels, for label-free programs. *)

val length : t -> int

type error =
  | Backward_or_missing_label of { at : int; target : Instr.label }
  | Duplicate_label of Instr.label
  | Embedded_eof of int
  | Unreachable_after_return of int

val validate : t -> (t, error) result
val error_to_string : error -> string

val memory_access_positions : t -> int list
(** 0-based instruction indices that access stage memory, in order; the
    paper's example quotes Listing 1 as accesses at (1-based) lines 2, 5
    and 9. *)

val position_of_first : t -> f:(Instr.t -> bool) -> int option

val rts_position : t -> int option
(** Position of the first RTS/CRTS, which constrains mutants to the
    ingress pipeline when avoiding recirculation. *)

val parse : ?name:string -> string -> (t, string) result
(** Parse assembly text: one instruction per line; [;] or [//] start
    comments; a leading [Ln:] sets a label; blank lines ignored.
    Validates before returning. *)

val to_assembly : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
