(** Memory-synchronization programs (Section 4.3 / Appendix C).

    RDMA-style primitives that let a client read or write its allocated
    switch memory through the data plane: each packet targets one
    region-relative index (argument 0) in up to three stages, returning or
    carrying the values in argument fields 1-3.  Reads and writes are
    idempotent, so clients simply retransmit on loss; every packet
    replies to the sender via RTS.

    Clients use these to extract a consistent snapshot before a
    reallocation is applied and to (re)populate state afterwards — e.g.
    the cache-population traffic in the Section 6.3 case study. *)

val max_stages_per_packet : int
(** 3: argument fields 1-3 carry the data; argument 0 is the index. *)

val read_program : stages:int list -> Activermt.Program.t
(** Read the word at index [arg0] of each listed stage into argument
    fields 1, 2, 3 respectively and return to sender.
    @raise Invalid_argument on more than 3 stages, duplicates out of
    order, or stages outside one pipeline pass. *)

val write_program : stages:int list -> Activermt.Program.t
(** Write argument fields 1-3 to index [arg0] of the listed stages, then
    return to sender as the write acknowledgement. *)

val read_args : index:int -> int array
val write_args : index:int -> values:int list -> int array

val listing5 : Activermt.Program.t
(** Appendix C.1 verbatim: single-location read. *)

val listing6 : Activermt.Program.t
(** Appendix C.2 verbatim: single-location write. *)
