(** A per-flow packet counter: the simplest stateful telemetry service.

    Each activated packet increments its flow's counter (the client hashes
    the flow to a slot, direct addressing as in Section 3.2) and carries
    the updated count back in the packet, so end hosts read their own
    traffic counters inline.  Not one of the paper's three evaluation
    services, but a natural fourth tenant built on MEM_INCREMENT. *)

val program : Activermt.Program.t
(** 4 instructions, one memory access. *)

val service : App.t
(** Inelastic, 4 blocks (1024 flow slots). *)

val arg_slot : int
val arg_count : int

val args : slot:int -> int array

val count_of_reply : Activermt.Packet.t -> int option
(** The updated counter carried back in argument 1. *)

val slot_of_flow : slots:int -> int array -> int
(** Client-side slot hashing over the flow key words. *)
