module Spec = Activermt_compiler.Spec

type t = {
  name : string;
  programs : Spec.t list;
  elastic : bool;
  demand_blocks : int array;
}

let spec t =
  match t.programs with
  | s :: _ -> s
  | [] -> invalid_arg "App.spec: service has no programs"

let program_of_assembly ~name text =
  match Activermt.Program.parse ~name text with
  | Ok p -> p
  | Error e -> invalid_arg (Printf.sprintf "App %s: %s" name e)

let validate t =
  match t.programs with
  | [] -> Error "service has no programs"
  | canonical :: rest ->
    let same_structure (s : Spec.t) =
      s.Spec.accesses = canonical.Spec.accesses
      && s.Spec.gaps = canonical.Spec.gaps
    in
    if not (List.for_all same_structure rest) then
      Error "co-scheduled programs must share the canonical access structure"
    else if Array.length t.demand_blocks <> Array.length canonical.Spec.accesses
    then Error "demand_blocks must have one entry per memory access"
    else if Array.exists (fun d -> d <= 0) t.demand_blocks then
      Error "block demands must be positive"
    else Ok t
