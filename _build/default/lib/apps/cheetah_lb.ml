module Spec = Activermt_compiler.Spec

let arg_pool_addr = 0
let arg_pagetable_addr = 1
let arg_salt = 2
let arg_cookie = 3

let syn_program =
  App.program_of_assembly ~name:"cheetah-syn"
    {|
      HASHDATA_LOAD_5TUPLE
      MAR_LOAD 0          // address of VIP pool size
      ADDR_MASK
      ADDR_OFFSET
      MEM_READ            // pool size - 1
      COPY_MBR2_MBR       // save it in MBR2
      MEM_INCREMENT       // round-robin counter (next stage, same index)
      COPY_MAR_MBR        // MAR <- counter
      COPY_MBR_MBR2       // MBR <- pool size - 1
      BIT_AND_MAR_MBR     // MAR <- counter mod pool size
      COPY_MBR_MAR        // MBR <- offset
      COPY_MBR2_MBR       // MBR2 <- offset
      MAR_LOAD 1          // address of the page table
      ADDR_MASK
      ADDR_OFFSET
      MEM_READ            // location of the VIP pool
      MAR_MBR_ADD_MBR2    // MAR <- pool base + offset
      MEM_READ            // server port
      SET_DST             // route to the server
      COPY_MBR2_MBR       // MBR2 <- server port
      MBR_LOAD 2          // salt
      COPY_HASHDATA_MBR
      NOP                 // align HASH onto stage 3 (pass 2)
      HASH                // MAR <- hash(salt, 5-tuple)
      COPY_MBR_MAR        // MBR <- hash
      MBR_EQUALS_MBR2     // MBR <- hash xor port = cookie
      MBR_STORE 3         // cookie into the packet
      RETURN
    |}

(* Position (0-based) of the SYN program's HASH; the flow program's HASH
   must execute on the same logical stage (same hash engine) for cookies
   to decode, so the shim aligns it against the granted mutant. *)
let syn_hash_position = 23

let flow_program =
  App.program_of_assembly ~name:"cheetah-flow"
    {|
      HASHDATA_LOAD_5TUPLE
      MBR_LOAD 0          // salt
      COPY_HASHDATA_MBR
      HASH                // MAR <- hash(salt, 5-tuple)
      MBR_LOAD 1          // cookie
      COPY_MBR2_MBR       // MBR2 <- cookie
      COPY_MBR_MAR        // MBR <- hash
      MBR_EQUALS_MBR2     // MBR <- hash xor cookie = port
      SET_DST
      RETURN
    |}

let flow_program_for ~hash_stage =
  if hash_stage < 0 || hash_stage >= 20 then
    invalid_arg "Cheetah_lb.flow_program_for: stage out of range";
  (* Three setup instructions precede the HASH; if the target stage is
     earlier than that, reach it on the second pass. *)
  let pad = if hash_stage < 3 then hash_stage + 20 - 3 else hash_stage - 3 in
  let lines =
    Activermt.Program.plain
      ([
         Activermt.Instr.Hashdata_load_5tuple;
         Activermt.Instr.Mbr_load Activermt.Instr.A0;
         Activermt.Instr.Copy_hashdata_mbr;
       ]
      @ List.init pad (fun _ -> Activermt.Instr.Nop)
      @ [
          Activermt.Instr.Hash;
          Activermt.Instr.Mbr_load Activermt.Instr.A1;
          Activermt.Instr.Copy_mbr2_mbr;
          Activermt.Instr.Copy_mbr_mar;
          Activermt.Instr.Mbr_equals_mbr2;
          Activermt.Instr.Set_dst;
          Activermt.Instr.Return;
        ])
  in
  Activermt.Program.v ~name:"cheetah-flow-aligned" lines

let service =
  let t =
    {
      App.name = "load-balancer";
      programs = [ Spec.analyze syn_program ];
      elastic = false;
      demand_blocks = [| 1; 1; 1; 1 |];
    }
  in
  match App.validate t with Ok t -> t | Error e -> invalid_arg e

let syn_args ~salt = [| 0; 0; salt; 0 |]
let flow_args ~salt ~cookie = [| salt; cookie; 0; 0 |]

let install_pool ~write ~accesses_stages ~ports =
  let n = Array.length ports in
  if n = 0 || n land (n - 1) <> 0 then
    invalid_arg "Cheetah_lb.install_pool: pool size must be a power of two";
  if Array.length accesses_stages <> 4 then
    invalid_arg "Cheetah_lb.install_pool: expected four access stages";
  let size_stage = accesses_stages.(0) in
  let counter_stage = accesses_stages.(1) in
  let pagetable_stage = accesses_stages.(2) in
  let pool_stage = accesses_stages.(3) in
  (* Slot 0 of the size stage holds pool_size - 1 (the round-robin mask);
     the counter starts at 0; page-table slot 0 points at the pool's base
     index within the pool stage's region. *)
  let pool_base = 1 in
  ignore (write ~stage:size_stage ~index:0 ~value:(n - 1));
  ignore (write ~stage:counter_stage ~index:0 ~value:0);
  ignore (write ~stage:pagetable_stage ~index:0 ~value:pool_base);
  Array.iteri
    (fun i port -> ignore (write ~stage:pool_stage ~index:(pool_base + i) ~value:port))
    ports
