lib/apps/app.mli: Activermt Activermt_compiler
