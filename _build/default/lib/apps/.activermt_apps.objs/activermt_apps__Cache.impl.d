lib/apps/cache.ml: Activermt_compiler App Rmt
