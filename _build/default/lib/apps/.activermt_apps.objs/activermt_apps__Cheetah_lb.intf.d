lib/apps/cheetah_lb.mli: Activermt App
