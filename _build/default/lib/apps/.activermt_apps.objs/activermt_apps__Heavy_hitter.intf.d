lib/apps/heavy_hitter.mli: Activermt App
