lib/apps/heavy_hitter.ml: Activermt_compiler App
