lib/apps/app.ml: Activermt Activermt_compiler Array List Printf
