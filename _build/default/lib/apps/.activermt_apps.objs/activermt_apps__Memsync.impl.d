lib/apps/memsync.ml: Activermt App Array Hashtbl List Option
