lib/apps/cache.mli: Activermt App
