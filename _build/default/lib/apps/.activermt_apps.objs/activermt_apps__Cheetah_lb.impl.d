lib/apps/cheetah_lb.ml: Activermt Activermt_compiler App Array List
