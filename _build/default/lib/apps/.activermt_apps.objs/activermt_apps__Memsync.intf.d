lib/apps/memsync.mli: Activermt
