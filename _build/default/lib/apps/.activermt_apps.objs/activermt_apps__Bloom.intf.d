lib/apps/bloom.mli: Activermt App
