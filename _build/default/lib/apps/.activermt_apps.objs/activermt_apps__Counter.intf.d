lib/apps/counter.mli: Activermt App
