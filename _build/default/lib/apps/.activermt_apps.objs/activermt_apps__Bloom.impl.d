lib/apps/bloom.ml: Activermt_compiler App
