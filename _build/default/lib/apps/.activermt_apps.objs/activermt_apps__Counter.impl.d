lib/apps/counter.ml: Activermt Activermt_compiler App Array Rmt
