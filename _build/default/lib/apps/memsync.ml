module I = Activermt.Instr

let max_stages_per_packet = 3

let listing5 =
  App.program_of_assembly ~name:"memsync-read-listing5"
    {|
      MAR_LOAD 0
      MEM_READ
      MBR_STORE 1
      RTS
      RETURN
    |}

let listing6 =
  App.program_of_assembly ~name:"memsync-write-listing6"
    {|
      MBR_LOAD 1
      MAR_LOAD 0
      MEM_WRITE
      RTS
      RETURN
    |}

let check_stages stages =
  let n = List.length stages in
  if n = 0 then invalid_arg "Memsync: no stages";
  if n > max_stages_per_packet then
    invalid_arg "Memsync: at most three stages per packet";
  let rec strictly_spaced = function
    | a :: (b :: _ as rest) ->
      if b < a + 2 then
        invalid_arg "Memsync: stages must be >= 2 apart (value slot between reads)"
      else strictly_spaced rest
    | [ _ ] | [] -> ()
  in
  strictly_spaced stages;
  if List.exists (fun s -> s < 0 || s >= 20) stages then
    invalid_arg "Memsync: stages must lie within one pipeline pass"

(* Lay out a sparse program: a map position -> instruction, NOP-filled,
   with an RTS on the first free slot (ingress-preferred) and a RETURN at
   the end. *)
let layout ~name cells ~last =
  let used = Hashtbl.create 8 in
  List.iter (fun (p, i) -> Hashtbl.replace used p i) cells;
  let rts_slot =
    let rec find p = if Hashtbl.mem used p then find (p + 1) else p in
    find 0
  in
  Hashtbl.replace used rts_slot I.Rts;
  let len = max (last + 1) (rts_slot + 1) in
  let lines =
    List.init (len + 1) (fun p ->
        if p = len then Activermt.Program.line I.Return
        else
          Activermt.Program.line
            (Option.value ~default:I.Nop (Hashtbl.find_opt used p)))
  in
  Activermt.Program.v ~name lines

let read_program ~stages =
  check_stages stages;
  let cells =
    List.concat
      (List.mapi
         (fun k s ->
           let store_arg =
             match I.arg_of_index (k + 1) with Some a -> a | None -> assert false
           in
           [ (s, I.Mem_read); (s + 1, I.Mbr_store store_arg) ])
         stages)
  in
  let last = List.fold_left max 0 (List.map fst cells) in
  layout ~name:"memsync-read" cells ~last

let write_program ~stages =
  check_stages stages;
  let cells =
    List.concat
      (List.mapi
         (fun k s ->
           let load_arg =
             match I.arg_of_index (k + 1) with Some a -> a | None -> assert false
           in
           (* MBR is preloaded with argument 1, so the first value needs no
              explicit load when its write sits at position 0. *)
           let load = if s = 0 then [] else [ (s - 1, I.Mbr_load load_arg) ] in
           load @ [ (s, I.Mem_write) ])
         stages)
  in
  let last = List.fold_left max 0 (List.map fst cells) in
  layout ~name:"memsync-write" cells ~last

let read_args ~index = [| index; 0; 0; 0 |]

let write_args ~index ~values =
  if List.length values > max_stages_per_packet then
    invalid_arg "Memsync.write_args: too many values";
  let a = [| index; 0; 0; 0 |] in
  List.iteri (fun i v -> a.(i + 1) <- v) values;
  a
