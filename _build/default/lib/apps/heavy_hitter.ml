module Spec = Activermt_compiler.Spec

let arg_key0 = 0
let arg_key1 = 1
let arg_slot = 2

let listing2_program =
  App.program_of_assembly ~name:"heavy-hitter-listing2"
    {|
      MBR_LOAD 0          // load key 0
      MBR2_LOAD 1         // load key 1
      COPY_HASHDATA_MBR
      COPY_HASHDATA_MBR2
      HASH
      ADDR_MASK
      ADDR_OFFSET
      MEM_MINREADINC      // sketch row 1
      COPY_MBR2_MBR
      HASH
      ADDR_MASK
      ADDR_OFFSET
      MEM_MINREADINC      // sketch row 2
      COPY_MBR_MBR2
      MAR_LOAD 2
      MEM_READ            // read hh threshold
      MIN
      MBR_EQUALS_MBR2
      CRETI
      MBR_LOAD 0          // reload key 0
      MEM_WRITE           // store key word 0
      NOP
      NOP
      COPY_MBR_MBR2
      MBR2_LOAD 1
      MEM_WRITE           // store updated threshold
      COPY_MBR_MBR2
      MEM_WRITE           // store key word 1
      RETURN
    |}

(* The aligned variant: identical sketch/check logic; the conditional tail
   is padded so the threshold write re-accesses the read's stage on the
   second pass and the key words land on their own stages.  The final
   RETURN is implicit (execution completes at end of program), keeping the
   length at exactly two passes. *)
let program =
  App.program_of_assembly ~name:"heavy-hitter"
    {|
      MBR_LOAD 0          // load key 0
      MBR2_LOAD 1         // load key 1
      COPY_HASHDATA_MBR
      COPY_HASHDATA_MBR2
      HASH
      ADDR_MASK
      ADDR_OFFSET
      MEM_MINREADINC      // sketch row 1 (stage 7)
      COPY_MBR2_MBR
      HASH
      ADDR_MASK
      ADDR_OFFSET
      MEM_MINREADINC      // sketch row 2 (stage 12)
      COPY_MBR_MBR2
      MAR_LOAD 2
      MEM_READ            // read hh threshold (stage 15)
      MIN
      MBR_EQUALS_MBR2
      CRETI               // count below threshold: done
      COPY_MBR_MBR2       // MBR <- sketched count
      MBR2_LOAD 0         // MBR2 <- key word 0
      NOP
      NOP
      NOP
      NOP
      NOP
      NOP
      NOP
      NOP
      NOP
      NOP
      NOP
      NOP
      NOP
      NOP
      MEM_WRITE           // threshold <- count (stage 15, pass 2)
      SWAP_MBR_MBR2       // MBR <- key word 0
      MEM_WRITE           // store key word 0 (stage 17, pass 2)
      MBR_LOAD 1
      MEM_WRITE           // store key word 1 (stage 19, pass 2)
    |}

let service =
  let t =
    {
      App.name = "heavy-hitter";
      programs = [ Spec.analyze program ];
      elastic = false;
      demand_blocks = [| 16; 16; 16; 16; 16; 16 |];
    }
  in
  match App.validate t with Ok t -> t | Error e -> invalid_arg e

let args ~key0 ~key1 ~slot = [| key0; key1; slot; 0 |]

let threshold_access = 2
let key0_access = 4
let key1_access = 5
