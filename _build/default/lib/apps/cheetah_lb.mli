(** Cheetah stateless load balancer (Appendix B.2, Listings 3 and 4).

    Two programs under one FID: SYN packets run the server-selection
    program (round-robin over a VIP pool whose size, page table and
    entries live in switch memory; the selected port is folded into a
    cookie = hash(salt, 5-tuple) XOR port and written back to the
    client); non-SYN packets run the stateless flow-routing program,
    recovering the port as hash XOR cookie with no memory access.

    The paper gives these listings as prose; DESIGN.md records the
    line-by-line reconstruction.  Inelastic demand: one block per accessed
    stage (pool size, round-robin counter, page table, VIP pool). *)

val syn_program : Activermt.Program.t
(** Listing 3: 28 instructions, memory accesses at (1-based) 5, 7, 16, 18;
    the cookie HASH is padded onto logical stage 3 of the second pass. *)

val syn_hash_position : int
(** 0-based position of the SYN program's HASH instruction; the flow
    program must run its HASH on the same logical stage (same hash engine)
    for cookies to decode. *)

val flow_program : Activermt.Program.t
(** Listing 4: 10 instructions, no memory access, compact form (HASH on
    stage 3 — matches the unshifted SYN mutant). *)

val flow_program_for : hash_stage:int -> Activermt.Program.t
(** Flow-routing program with its HASH padded onto [hash_stage], used when
    the granted SYN mutant shifted the cookie hash. *)

val service : App.t
(** The stateful SYN side, which is what requests an allocation. *)

val arg_pool_addr : int
val arg_pagetable_addr : int
val arg_salt : int
val arg_cookie : int

val syn_args : salt:int -> int array
val flow_args : salt:int -> cookie:int -> int array

val install_pool :
  write:(stage:int -> index:int -> value:int -> bool) ->
  accesses_stages:int array ->
  ports:int array ->
  unit
(** Populate the pool-size / counter / page-table / VIP-pool slots via a
    control- or data-plane write primitive.  [accesses_stages] is the
    service's granted stage per access (from the mutant); [ports] is the
    VIP pool (its length must be a power of two). *)
