(** Descriptors for deployable active services.

    A service bundles one or more active programs that execute under a
    single FID and therefore share one memory allocation.  The first
    program is the canonical one whose access pattern defines the
    allocation constraints; any additional programs are authored with the
    same access/gap structure so that one mutant shift schedules them all
    onto the same stages (e.g. the cache's query and populate programs).

    The three exemplar services match Section 6.1's workload: an elastic
    in-network cache, an inelastic heavy-hitter detector (16 blocks per
    sketch row), and an inelastic stateless load balancer. *)

type t = {
  name : string;
  programs : Activermt_compiler.Spec.t list;
      (** specs of all programs; head = canonical *)
  elastic : bool;
  demand_blocks : int array;
      (** per canonical access: exact blocks (inelastic) or minimum
          blocks (elastic) *)
}

val spec : t -> Activermt_compiler.Spec.t
(** The canonical program's spec. *)

val validate : t -> (t, string) result
(** Check that all programs share the canonical access/gap structure and
    that demands match the access count. *)

val program_of_assembly : name:string -> string -> Activermt.Program.t
(** Parse assembly or raise [Invalid_argument]; for statically known
    program text. *)
