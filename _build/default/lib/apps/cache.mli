(** The in-network object cache (Section 3.4, Listing 1).

    Stores 4-byte values under 8-byte keys in three memory stages: key
    word 0, key word 1 and the value, all at the same bucket index.  The
    client computes the bucket (a hash of the key confined to the
    allocated capacity) and sends it in argument 0; argument 1 and 2 carry
    the key words; argument 3 returns the value on a hit.

    Elastic demand: any allocation helps, bigger is better. *)

val query_program : Activermt.Program.t
(** Listing 1 verbatim: 11 instructions, memory accesses at (1-based)
    lines 2, 5 and 9, RTS at line 8. *)

val populate_program : Activermt.Program.t
(** Write a (key, value) object into a bucket: same access structure as
    the query so one mutant schedules both; replies via RTS so the client
    can confirm the write (Section 4.3). *)

val service : App.t

val arg_bucket : int
val arg_key0 : int
val arg_key1 : int
val arg_value : int

val query_args : bucket:int -> key0:int -> key1:int -> int array
val populate_args : bucket:int -> key0:int -> key1:int -> value:int -> int array

val bucket_of_key : capacity:int -> key0:int -> key1:int -> int
(** Client-side direct addressing: hash the key and confine it to the
    allocated bucket count. *)
