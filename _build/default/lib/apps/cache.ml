module Spec = Activermt_compiler.Spec

let arg_bucket = 0
let arg_key0 = 1
let arg_key1 = 2
let arg_value = 3

let query_program =
  App.program_of_assembly ~name:"cache-query"
    {|
      MAR_LOAD 0        // locate bucket
      MEM_READ          // first 4 bytes of key
      MBR_EQUALS_DATA 1 // compare bytes
      CRET              // partial match?
      MEM_READ          // next 4 bytes
      MBR_EQUALS_DATA 2 // compare bytes
      CRET              // full match?
      RTS               // create reply
      MEM_READ          // read the value
      MBR_STORE 3       // write to packet
      RETURN            // fin.
    |}

(* Same access skeleton as the query (positions 2, 5, 9 one-based) so the
   service's mutant shift schedules both programs onto the same stages.
   MBR is preloaded from argument 1 (Appendix C's preloading trick), so
   the first write needs no explicit load. *)
let populate_program =
  App.program_of_assembly ~name:"cache-populate"
    {|
      MAR_LOAD 0        // locate bucket
      MEM_WRITE         // store key word 0 (MBR preloaded from arg 1)
      MBR_LOAD 2
      NOP
      MEM_WRITE         // store key word 1
      MBR_LOAD 3
      NOP
      RTS               // acknowledge the write
      MEM_WRITE         // store the value
      NOP
      RETURN
    |}

let service =
  let t =
    {
      App.name = "cache";
      programs = [ Spec.analyze query_program; Spec.analyze populate_program ];
      elastic = true;
      demand_blocks = [| 1; 1; 1 |];
    }
  in
  match App.validate t with Ok t -> t | Error e -> invalid_arg e

let query_args ~bucket ~key0 ~key1 = [| bucket; key0; key1; 0 |]

let populate_args ~bucket ~key0 ~key1 ~value = [| bucket; key0; key1; value |]

let bucket_of_key ~capacity ~key0 ~key1 =
  if capacity <= 0 then 0
  else Rmt.Crc.crc32 [ key0; key1 ] mod capacity
