(** Frequent-item (heavy-hitter) monitor (Appendix B.1, Listing 2).

    Per packet it updates a two-row count-min sketch of the 8-byte key,
    compares the sketched count against a per-slot running threshold and,
    when the count exceeds it, stores the key and the new threshold.  The
    program exceeds one pipeline pass, so it recirculates — the paper's
    example of a program that re-accesses memory on its second pass.

    [listing2_program] is the paper's 29-line listing verbatim.  In a
    20-stage logical pipeline its threshold *write* (line 26) would land
    on a different stage than the threshold *read* (line 16), so updates
    would never be seen again; [program] is the semantically aligned
    variant used by [service]: NOP padding places the threshold write at
    read_stage + 20, i.e. the same stage on the second pass (see
    DESIGN.md).

    Inelastic demand: 16 blocks per accessed stage (paper: "16 blocks ...
    to achieve less than 0.1% error with high probability"), which also
    gives 4096 threshold/key slots for the frequent-item set. *)

val listing2_program : Activermt.Program.t
(** Appendix B.1 verbatim; kept for reference and codec tests. *)

val program : Activermt.Program.t
(** The aligned 40-instruction variant: sketch rows at stages 7 and 12,
    threshold read at 15, threshold write at 15 on pass 2, key words at
    17 and 19 on pass 2. *)

val service : App.t

val arg_key0 : int
val arg_key1 : int
val arg_slot : int

val args : key0:int -> key1:int -> slot:int -> int array

val threshold_access : int
(** Index (within the service's accesses) of the threshold read — its
    stage holds the running thresholds. *)

val key0_access : int
val key1_access : int
