module Spec = Activermt_compiler.Spec

let arg_slot = 0
let arg_count = 1

let program =
  App.program_of_assembly ~name:"flow-counter"
    {|
      MAR_LOAD 0     // flow slot
      MEM_INCREMENT  // bump the flow's packet counter
      MBR_STORE 1    // carry the updated count back
      RETURN
    |}

let service =
  let t =
    {
      App.name = "flow-counter";
      programs = [ Spec.analyze program ];
      elastic = false;
      demand_blocks = [| 4 |];
    }
  in
  match App.validate t with Ok t -> t | Error e -> invalid_arg e

let args ~slot = [| slot; 0; 0; 0 |]

let count_of_reply (pkt : Activermt.Packet.t) =
  match pkt.Activermt.Packet.payload with
  | Activermt.Packet.Exec { args; _ } when Array.length args = 4 ->
    Some args.(arg_count)
  | Activermt.Packet.Exec _ | Activermt.Packet.Request _
  | Activermt.Packet.Response _ | Activermt.Packet.Bare ->
    None

let slot_of_flow ~slots key =
  if slots <= 0 then 0 else Rmt.Crc.crc32 (Array.to_list key) mod slots
