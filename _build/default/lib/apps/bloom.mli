(** An in-network Bloom filter (set membership over flows).

    Not one of the paper's services: it exists to probe Section 7.1's open
    question of how general the instruction set is.  Three probes use the
    per-stage hash engines (stages 4/8/12 under the identity mutant, so
    insert and query hash identically), bits live in three memory stages,
    and the query folds the probes with MIN (AND over 0/1 bits), replying
    via CRTS on membership.

    Elastic demand: more memory means fewer false positives. *)

val insert_program : Activermt.Program.t
(** Set this flow's three bits; replies via RTS as a write ack. *)

val query_program : Activermt.Program.t
(** Returns to sender iff all three bits are set (probable member);
    forwards to the destination otherwise. *)

val service : App.t

val arg_key0 : int
val arg_key1 : int
val arg_one : int
(** The insert program stores the constant 1 carried in this argument. *)

val insert_args : key0:int -> key1:int -> int array
val query_args : key0:int -> key1:int -> int array

val false_positive_rate : bits_per_stage:int -> inserted:int -> float
(** Analytic FPR of the 3-probe filter, for checking measured rates. *)
