module Spec = Activermt_compiler.Spec

let arg_key0 = 0
let arg_key1 = 1
let arg_one = 2

(* Both programs share the access/hash skeleton: HASH at positions 4, 8,
   12 (three distinct per-stage hash functions), memory at 7, 11, 15. *)
let insert_program =
  App.program_of_assembly ~name:"bloom-insert"
    {|
      MBR_LOAD 0
      MBR2_LOAD 1
      COPY_HASHDATA_MBR
      COPY_HASHDATA_MBR2
      HASH              // probe 1 (stage-4 hash engine)
      ADDR_MASK
      MBR_LOAD 2        // the constant 1
      MEM_WRITE         // set bit 1 (stage 7)
      HASH              // probe 2
      ADDR_MASK
      RTS               // acknowledge the insert
      MEM_WRITE         // set bit 2 (stage 11)
      HASH              // probe 3
      ADDR_MASK
      NOP
      MEM_WRITE         // set bit 3 (stage 15)
      RETURN
    |}

let query_program =
  App.program_of_assembly ~name:"bloom-query"
    {|
      MBR_LOAD 0
      MBR2_LOAD 1
      COPY_HASHDATA_MBR
      COPY_HASHDATA_MBR2
      HASH              // probe 1
      ADDR_MASK
      NOP
      MEM_READ          // bit 1 -> MBR (stage 7)
      HASH              // probe 2
      ADDR_MASK
      COPY_MBR2_MBR     // MBR2 <- bit 1
      MEM_READ          // bit 2 -> MBR (stage 11)
      HASH              // probe 3
      ADDR_MASK
      REVMIN            // MBR2 <- bit1 AND bit2
      MEM_READ          // bit 3 -> MBR (stage 15)
      MIN               // MBR <- AND of all probes
      CRTS              // probable member: reply to sender
      RETURN
    |}

let service =
  let t =
    {
      App.name = "bloom-filter";
      programs = [ Spec.analyze query_program; Spec.analyze insert_program ];
      elastic = true;
      demand_blocks = [| 1; 1; 1 |];
    }
  in
  match App.validate t with Ok t -> t | Error e -> invalid_arg e

let insert_args ~key0 ~key1 = [| key0; key1; 1; 0 |]
let query_args ~key0 ~key1 = [| key0; key1; 0; 0 |]

let false_positive_rate ~bits_per_stage ~inserted =
  if bits_per_stage <= 0 then 1.0
  else begin
    (* Probes hit independent per-stage arrays (a partitioned Bloom
       filter): each stage's bit is set with probability
       1 - (1 - 1/m)^n. *)
    let m = float_of_int bits_per_stage and n = float_of_int inserted in
    let p_set = 1.0 -. (((m -. 1.0) /. m) ** n) in
    p_set ** 3.0
  end
