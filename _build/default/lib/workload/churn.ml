type kind = Cache | Heavy_hitter | Load_balancer | Flow_counter | Bloom_filter

let kind_to_string = function
  | Cache -> "cache"
  | Heavy_hitter -> "heavy-hitter"
  | Load_balancer -> "load-balancer"
  | Flow_counter -> "flow-counter"
  | Bloom_filter -> "bloom-filter"

let all_kinds = [| Cache; Heavy_hitter; Load_balancer |]

let extended_kinds =
  [| Cache; Heavy_hitter; Load_balancer; Flow_counter; Bloom_filter |]

type event = Arrive of { fid : int; kind : kind } | Depart of { fid : int }
type epoch = { index : int; events : event list }

type config = {
  arrival_mean : float;
  departure_mean : float;
  kinds : kind array;
}

let default_config =
  { arrival_mean = 2.0; departure_mean = 1.0; kinds = all_kinds }

let extended_config = { default_config with kinds = extended_kinds }

let pure kind = { arrival_mean = 1.0; departure_mean = 0.0; kinds = [| kind |] }
let arrivals_only c = { c with departure_mean = 0.0 }

let generate config ~epochs rng =
  let next_fid = ref 1 in
  let alive = ref [] in
  let epoch index =
    let n_arr =
      if config.arrival_mean > 0.0 then
        Stdx.Prng.poisson rng ~mean:config.arrival_mean
      else 0
    in
    let n_dep =
      if config.departure_mean > 0.0 then
        Stdx.Prng.poisson rng ~mean:config.departure_mean
      else 0
    in
    let arrivals =
      List.init n_arr (fun _ ->
          let fid = !next_fid in
          incr next_fid;
          let kind = Stdx.Prng.choose rng config.kinds in
          alive := fid :: !alive;
          Arrive { fid; kind })
    in
    let departures =
      List.filter_map
        (fun _ ->
          match !alive with
          | [] -> None
          | l ->
            let arr = Array.of_list l in
            let fid = Stdx.Prng.choose rng arr in
            alive := List.filter (fun f -> f <> fid) !alive;
            Some (Depart { fid }))
        (List.init n_dep (fun i -> i))
    in
    { index; events = arrivals @ departures }
  in
  List.init epochs epoch

let arrivals_sequence kind ~n =
  List.init n (fun i ->
      { index = i; events = [ Arrive { fid = i + 1; kind } ] })

let mixed_arrivals ~n rng =
  List.init n (fun i ->
      {
        index = i;
        events = [ Arrive { fid = i + 1; kind = Stdx.Prng.choose rng all_kinds } ];
      })
