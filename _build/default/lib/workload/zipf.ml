type t = {
  rng : Stdx.Prng.t;
  n : int;
  exponent : float;
  cdf : float array;  (* cdf.(i) = P(rank <= i) *)
}

let create ?(exponent = 0.99) ~n rng =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { rng; n; exponent; cdf }

let sample t =
  let u = Stdx.Prng.float t.rng 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let rec bs lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then bs lo mid else bs (mid + 1) hi
    end
  in
  bs 0 (t.n - 1)

let n t = t.n
let exponent t = t.exponent

let pmf t i =
  if i < 0 || i >= t.n then 0.0
  else if i = 0 then t.cdf.(0)
  else t.cdf.(i) -. t.cdf.(i - 1)

let head_mass t k =
  if k <= 0 then 0.0 else if k >= t.n then 1.0 else t.cdf.(k - 1)
