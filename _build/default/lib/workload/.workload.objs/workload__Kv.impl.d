lib/workload/kv.ml: List Zipf
