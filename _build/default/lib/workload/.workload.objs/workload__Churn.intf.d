lib/workload/churn.mli: Stdx
