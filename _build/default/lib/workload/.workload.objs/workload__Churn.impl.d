lib/workload/churn.ml: Array List Stdx
