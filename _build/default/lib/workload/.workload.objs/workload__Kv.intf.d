lib/workload/kv.mli: Zipf
