lib/workload/zipf.ml: Array Stdx
