lib/workload/zipf.mli: Stdx
