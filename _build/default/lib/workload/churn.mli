(** Application arrival/departure processes for the allocator evaluation.

    Section 6.1's online experiments draw, per unit-less epoch, a Poisson
    number of arrivals (mean 2) and departures (mean 1); arriving
    instances are one of the three example services chosen uniformly at
    random; departures remove a uniformly random resident instance. *)

type kind = Cache | Heavy_hitter | Load_balancer | Flow_counter | Bloom_filter

val kind_to_string : kind -> string

val all_kinds : kind array
(** The paper's three evaluation services. *)

val extended_kinds : kind array
(** The paper's three plus the two services this repo adds (flow counter,
    Bloom filter), for the extended-workload experiment. *)

type event = Arrive of { fid : int; kind : kind } | Depart of { fid : int }

type epoch = { index : int; events : event list }

type config = {
  arrival_mean : float;  (** Poisson mean arrivals per epoch (2.0) *)
  departure_mean : float;  (** Poisson mean departures per epoch (1.0) *)
  kinds : kind array;  (** arrival mix, sampled uniformly *)
}

val default_config : config

val extended_config : config
(** [default_config] over [extended_kinds]. *)

val pure : kind -> config
(** Arrivals of a single kind only, no departures — the Figure 5a / 6
    pure-workload sequences. *)

val arrivals_only : config -> config

val generate :
  config -> epochs:int -> Stdx.Prng.t -> epoch list
(** Deterministic sequence given the PRNG.  FIDs are unique and increase;
    departures pick among instances currently alive in the generated
    sequence (so the trace is self-consistent without an allocator). *)

val arrivals_sequence : kind -> n:int -> epoch list
(** [n] single-arrival epochs of one kind: the Figure 5a shape. *)

val mixed_arrivals : n:int -> Stdx.Prng.t -> epoch list
(** [n] single-arrival epochs, kind uniform at random: Figure 5b. *)
