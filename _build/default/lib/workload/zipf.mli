(** Zipfian key popularity, the object-request distribution of the cache
    case study (Section 6.3; the paper cites standard KV workloads
    [2, 42, 43], conventionally Zipf with exponent around 0.99). *)

type t

val create : ?exponent:float -> n:int -> Stdx.Prng.t -> t
(** [create ~n rng] prepares a sampler over ranks 1..n (default exponent
    0.99).  Ranks are returned 0-based, most popular first. *)

val sample : t -> int
(** Draw a 0-based rank. *)

val n : t -> int
val exponent : t -> float

val pmf : t -> int -> float
(** Probability of the 0-based rank. *)

val head_mass : t -> int -> float
(** Total probability of the top-k ranks: the ideal hit rate of a cache
    holding exactly the k most popular objects. *)
