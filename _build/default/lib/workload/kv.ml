type key = { k0 : int; k1 : int }

(* k0 is a 32-bit mix of the rank; k1 embeds the rank so that the server
   (and tests) can invert keys without a lookup table. *)
let mix32 x =
  let x = (x lxor (x lsr 16)) * 0x45d9f3b land 0xFFFFFFFF in
  let x = (x lxor (x lsr 16)) * 0x45d9f3b land 0xFFFFFFFF in
  x lxor (x lsr 16)

let key_of_rank rank =
  if rank < 0 then invalid_arg "Kv.key_of_rank: negative rank";
  { k0 = mix32 rank; k1 = rank land 0xFFFFFFFF }

let value_of_rank rank = (mix32 (rank + 0x5151) lor 1) land 0xFFFFFFFF

let rank_of_key k =
  let rank = k.k1 in
  if rank >= 0 && (key_of_rank rank).k0 = k.k0 then Some rank else None

type request = { rank : int; key : key }

let request_stream zipf ~n =
  List.init n (fun _ ->
      let rank = Zipf.sample zipf in
      { rank; key = key_of_rank rank })
