(** Client-side logic of the in-network cache service.

    Once an allocation is granted the client knows its bucket capacity
    (the smallest of its three per-stage regions), computes buckets for
    keys by hashing (direct addressing, Section 3.2), activates its
    application-level object requests with the query program and
    populates/refreshes the cache with the populate program. *)

type t

val create :
  Rmt.Params.t ->
  policy:Activermt_compiler.Mutant.policy ->
  fid:Activermt.Packet.fid ->
  regions:Activermt.Packet.region option array ->
  (t, string) result
(** Build from an allocation response's regions. *)

val fid : t -> Activermt.Packet.fid
val granted : t -> Synthesis.granted
val n_buckets : t -> int
val query_program : t -> Activermt.Program.t
val populate_program : t -> Activermt.Program.t

val bucket_of_key : t -> Workload.Kv.key -> int

val query_packet : t -> seq:int -> Workload.Kv.key -> Activermt.Packet.t
val populate_packet :
  t -> seq:int -> Workload.Kv.key -> value:int -> Activermt.Packet.t

val reply_value : Activermt.Packet.t -> int option
(** Extract the value from an RTS'd query reply ([None] if the packet is
    not an exec reply). *)

val plan_population :
  t -> objects:(Workload.Kv.key * int) list -> (Workload.Kv.key * int) list
(** Select the subset to install: at most one object per bucket (the
    first-listed wins, so pass objects most-popular first). *)
