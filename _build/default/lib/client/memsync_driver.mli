(** Reliable bulk memory synchronization over memsync packets.

    Section 4.3: reads and writes are idempotent, every packet replies via
    RTS, and "packets that fail execution (i.e., are dropped) do not
    generate a response.  Since reads and writes are idempotent the client
    can safely retransmit after a timeout."  This driver implements that
    loop as a pure state machine (the caller supplies time and a send
    function), covering a whole index range of up to three stages per
    packet. *)

type op = Read | Write of (int -> int list)
(** For writes, the function gives the values (one per stage) to store at
    each index. *)

type t

val create :
  fid:Activermt.Packet.fid ->
  stages:int list ->
  count:int ->
  timeout_s:float ->
  op ->
  t
(** Synchronize indices [0, count) of the given stages (at most 3,
    ascending, >= 2 apart — memsync packet geometry). *)

val outstanding : t -> int
(** Indices not yet acknowledged. *)

val is_done : t -> bool

val start : t -> now:float -> send:(seq:int -> Activermt.Packet.t -> unit) -> unit
(** Transmit every index once.  [send] is called synchronously; seqs are
    unique per index attempt. *)

val on_reply : t -> seq:int -> args:int array -> bool
(** Feed a reply (the RTS'd packet's argument fields).  Returns false if
    the seq is unknown/duplicate (already satisfied).  For reads the
    values are recorded. *)

val tick : t -> now:float -> send:(seq:int -> Activermt.Packet.t -> unit) -> int
(** Retransmit every index whose last attempt timed out; returns how many
    were resent. *)

val values : t -> int array array
(** For reads, one array per stage (in the order given to [create]),
    [count] words each; zeros where no reply arrived yet. *)

val attempts : t -> int
(** Total packets sent, for loss accounting. *)
