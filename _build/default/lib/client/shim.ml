type state = Idle | Negotiating | Operational | Memory_management

let state_to_string = function
  | Idle -> "idle"
  | Negotiating -> "negotiating"
  | Operational -> "operational"
  | Memory_management -> "memory-management"

type t = {
  fid : Activermt.Packet.fid;
  mutable state : state;
  mutable seq : int;
}

let create ~fid = { fid; state = Idle; seq = 0 }
let fid t = t.fid
let state t = t.state
let seq t = t.seq

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

type event =
  | Request_sent
  | Response_granted
  | Response_rejected
  | Realloc_notified
  | Extraction_done
  | Released

let event_to_string = function
  | Request_sent -> "request-sent"
  | Response_granted -> "response-granted"
  | Response_rejected -> "response-rejected"
  | Realloc_notified -> "realloc-notified"
  | Extraction_done -> "extraction-done"
  | Released -> "released"

let transition t event =
  let next =
    match (t.state, event) with
    | Idle, Request_sent -> Some Negotiating
    | Negotiating, Response_granted -> Some Operational
    | Negotiating, Response_rejected -> Some Idle
    | Operational, Realloc_notified -> Some Memory_management
    | Memory_management, Extraction_done -> Some Operational
    | Operational, Released -> Some Idle
    | (Idle | Negotiating | Operational | Memory_management), _ -> None
  in
  match next with
  | Some s ->
    t.state <- s;
    Ok s
  | None ->
    Error
      (Printf.sprintf "illegal transition: %s in state %s"
         (event_to_string event) (state_to_string t.state))

let can_transmit t = t.state = Operational
