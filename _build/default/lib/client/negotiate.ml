module App = Activermt_apps.App
module Spec = Activermt_compiler.Spec

let request_packet ~fid ~seq (app : App.t) =
  let request =
    Spec.to_request ~elastic:app.App.elastic ~demand_blocks:app.App.demand_blocks
      (App.spec app)
  in
  {
    Activermt.Packet.fid;
    seq;
    flags =
      {
        Activermt.Packet.elastic = app.App.elastic;
        virtual_addressing = true;
        ack = false;
      };
    payload = Activermt.Packet.Request request;
  }

let extraction_done_packet ~fid =
  {
    Activermt.Packet.fid;
    seq = 0;
    flags = { Activermt.Packet.no_flags with ack = true };
    payload = Activermt.Packet.Bare;
  }

let release_packet ~fid =
  { Activermt.Packet.fid; seq = 0; flags = Activermt.Packet.no_flags;
    payload = Activermt.Packet.Bare }

let granted_regions (pkt : Activermt.Packet.t) =
  match pkt.Activermt.Packet.payload with
  | Activermt.Packet.Response { status = Activermt.Packet.Granted; regions } ->
    Some regions
  | Activermt.Packet.Response { status = Activermt.Packet.Rejected; _ }
  | Activermt.Packet.Request _ | Activermt.Packet.Exec _ | Activermt.Packet.Bare ->
    None
