(** Client-side program synthesis against a granted allocation
    (Sections 3.2 and 4.3).

    The allocation response tells the client *which stages* (and how much
    memory in each) it received; the client recovers the mutant the switch
    chose — the enumeration is shared code, so both sides agree on the
    systematic order — inserts the NOPs that realize it into every program
    of the service, and re-targets memory accesses (address translation
    happens per-stage at the switch under virtual addressing, so programs
    address their regions relative to zero). *)

type granted = {
  mutant : Activermt_compiler.Mutant.t;
  regions : Activermt.Packet.region option array;  (** per logical stage *)
  access_regions : Activermt.Packet.region array;  (** per canonical access *)
}

val match_response :
  Rmt.Params.t ->
  policy:Activermt_compiler.Mutant.policy ->
  Activermt_apps.App.t ->
  Activermt.Packet.region option array ->
  (granted, string) result
(** Identify the mutant whose access stages equal the granted stages. *)

val programs : Activermt_apps.App.t -> granted -> Activermt.Program.t list
(** All of the service's programs synthesized for the granted mutant. *)

val min_access_words : granted -> int
(** Smallest region among the accesses: the usable per-bucket capacity for
    services that keep one object slice per access stage (the cache). *)
