(** Allocation-protocol packet builders shared by all service clients. *)

val request_packet :
  fid:Activermt.Packet.fid -> seq:int -> Activermt_apps.App.t -> Activermt.Packet.t
(** Allocation request describing the service's canonical access pattern,
    demands and elasticity (Section 3.3). *)

val extraction_done_packet : fid:Activermt.Packet.fid -> Activermt.Packet.t
(** Bare active packet with the ack flag: "I finished extracting state"
    (Section 4.3). *)

val release_packet : fid:Activermt.Packet.fid -> Activermt.Packet.t
(** Bare active packet without the ack flag: release my allocation. *)

val granted_regions :
  Activermt.Packet.t -> Activermt.Packet.region option array option
(** Regions from a granted allocation response; [None] for rejections or
    other packets. *)
