module Hh = Activermt_apps.Heavy_hitter
module Kv = Workload.Kv
module Mutant = Activermt_compiler.Mutant

type t = {
  fid : Activermt.Packet.fid;
  granted : Synthesis.granted;
  program : Activermt.Program.t;
  n_slots : int;
}

let create params ~policy ~fid ~regions =
  match Synthesis.match_response params ~policy Hh.service regions with
  | Error _ as e -> e
  | Ok granted -> (
    match Synthesis.programs Hh.service granted with
    | [ program ] ->
      let n_slots =
        granted.Synthesis.access_regions.(Hh.threshold_access)
          .Activermt.Packet.n_words
      in
      Ok { fid; granted; program; n_slots }
    | _ -> Error "heavy-hitter service must have exactly one program")

let fid t = t.fid
let granted t = t.granted
let program t = t.program
let n_slots t = t.n_slots

let slot_of_key t (k : Kv.key) =
  if t.n_slots <= 0 then 0 else Rmt.Crc.crc32c [ k.Kv.k0; k.Kv.k1 ] mod t.n_slots

let monitor_packet t ~seq (k : Kv.key) =
  let args = Hh.args ~key0:k.Kv.k0 ~key1:k.Kv.k1 ~slot:(slot_of_key t k) in
  Activermt.Packet.exec
    ~flags:{ Activermt.Packet.no_flags with virtual_addressing = true }
    ~fid:t.fid ~seq ~args t.program

let stage_of_access t i = t.granted.Synthesis.mutant.Mutant.stages.(i)
let threshold_stage t = stage_of_access t Hh.threshold_access
let key0_stage t = stage_of_access t Hh.key0_access
let key1_stage t = stage_of_access t Hh.key1_access

let frequent_items ~thresholds ~key0s ~key1s =
  let n = min (Array.length thresholds) (min (Array.length key0s) (Array.length key1s)) in
  let items = ref [] in
  for i = 0 to n - 1 do
    if thresholds.(i) > 0 then
      items := ({ Kv.k0 = key0s.(i); k1 = key1s.(i) }, thresholds.(i)) :: !items
  done;
  List.sort (fun (_, a) (_, b) -> compare b a) !items
