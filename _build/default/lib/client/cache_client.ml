module Cache = Activermt_apps.Cache
module Kv = Workload.Kv

type t = {
  fid : Activermt.Packet.fid;
  granted : Synthesis.granted;
  n_buckets : int;
  query_program : Activermt.Program.t;
  populate_program : Activermt.Program.t;
}

let create params ~policy ~fid ~regions =
  match Synthesis.match_response params ~policy Cache.service regions with
  | Error _ as e -> e
  | Ok granted -> (
    match Synthesis.programs Cache.service granted with
    | [ query_program; populate_program ] ->
      Ok
        {
          fid;
          granted;
          n_buckets = Synthesis.min_access_words granted;
          query_program;
          populate_program;
        }
    | _ -> Error "cache service must have exactly two programs")

let fid t = t.fid
let granted t = t.granted
let n_buckets t = t.n_buckets
let query_program t = t.query_program
let populate_program t = t.populate_program

let bucket_of_key t (k : Kv.key) =
  Cache.bucket_of_key ~capacity:t.n_buckets ~key0:k.Kv.k0 ~key1:k.Kv.k1

let query_packet t ~seq (k : Kv.key) =
  let args =
    Cache.query_args ~bucket:(bucket_of_key t k) ~key0:k.Kv.k0 ~key1:k.Kv.k1
  in
  Activermt.Packet.exec
    ~flags:{ Activermt.Packet.no_flags with virtual_addressing = true }
    ~fid:t.fid ~seq ~args t.query_program

let populate_packet t ~seq (k : Kv.key) ~value =
  let args =
    Cache.populate_args ~bucket:(bucket_of_key t k) ~key0:k.Kv.k0 ~key1:k.Kv.k1
      ~value
  in
  Activermt.Packet.exec
    ~flags:{ Activermt.Packet.no_flags with virtual_addressing = true }
    ~fid:t.fid ~seq ~args t.populate_program

let reply_value (pkt : Activermt.Packet.t) =
  match pkt.Activermt.Packet.payload with
  | Activermt.Packet.Exec { args; _ } when Array.length args = 4 ->
    Some args.(Cache.arg_value)
  | Activermt.Packet.Exec _ | Activermt.Packet.Request _
  | Activermt.Packet.Response _ | Activermt.Packet.Bare ->
    None

let plan_population t ~objects =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (k, _v) ->
      let b = bucket_of_key t k in
      if Hashtbl.mem seen b then false
      else begin
        Hashtbl.add seen b ();
        true
      end)
    objects
