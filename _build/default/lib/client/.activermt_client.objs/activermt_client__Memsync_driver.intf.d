lib/client/memsync_driver.mli: Activermt
