lib/client/lb_client.mli: Activermt Activermt_compiler Rmt Synthesis
