lib/client/shim.mli: Activermt
