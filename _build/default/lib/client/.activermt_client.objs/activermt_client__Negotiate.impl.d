lib/client/negotiate.ml: Activermt Activermt_apps Activermt_compiler
