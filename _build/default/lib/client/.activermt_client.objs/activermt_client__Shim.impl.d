lib/client/shim.ml: Activermt Printf
