lib/client/cache_client.ml: Activermt Activermt_apps Array Hashtbl List Synthesis Workload
