lib/client/cache_client.mli: Activermt Activermt_compiler Rmt Synthesis Workload
