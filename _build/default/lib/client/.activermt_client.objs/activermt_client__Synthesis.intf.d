lib/client/synthesis.mli: Activermt Activermt_apps Activermt_compiler Rmt
