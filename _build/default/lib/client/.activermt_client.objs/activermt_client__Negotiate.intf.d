lib/client/negotiate.mli: Activermt Activermt_apps
