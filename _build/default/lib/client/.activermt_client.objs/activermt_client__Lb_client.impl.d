lib/client/lb_client.ml: Activermt Activermt_apps Activermt_compiler Array List Rmt Synthesis
