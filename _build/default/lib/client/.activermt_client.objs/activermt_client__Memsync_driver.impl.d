lib/client/memsync_driver.ml: Activermt Activermt_apps Array Hashtbl List
