lib/client/hh_client.mli: Activermt Activermt_compiler Rmt Synthesis Workload
