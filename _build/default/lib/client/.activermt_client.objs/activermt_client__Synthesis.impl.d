lib/client/synthesis.ml: Activermt Activermt_apps Activermt_compiler Array List
