(** Client shim state machine (Section 5).

    Tracks what state a service is in: operational (programs ride on
    outgoing packets), negotiating (an allocation request/release is in
    flight; active transmission pauses), or memory management (responding
    to a reallocation: extracting and rewriting state).  Illegal
    transitions are rejected so tests can pin the protocol down. *)

type state = Idle | Negotiating | Operational | Memory_management

val state_to_string : state -> string

type t

val create : fid:Activermt.Packet.fid -> t
val fid : t -> Activermt.Packet.fid
val state : t -> state

val seq : t -> int
(** Next sequence number (monotonic; stamped into packets). *)

val next_seq : t -> int

type event =
  | Request_sent
  | Response_granted
  | Response_rejected
  | Realloc_notified
  | Extraction_done
  | Released

val transition : t -> event -> (state, string) result
(** Apply a protocol event; [Error] on an illegal transition (state is
    left unchanged). *)

val can_transmit : t -> bool
(** Active transmissions happen only in the operational state. *)
