(** Client-side logic of the Cheetah load balancer.

    Handles synthesis of the SYN (server-selection) program against the
    granted mutant, alignment of the stateless flow program's HASH onto
    the same stage as the SYN's cookie hash (the two must use the same
    hash engine for cookies to decode), VIP-pool installation through
    memsync writes, and cookie bookkeeping. *)

type t

val create :
  Rmt.Params.t ->
  policy:Activermt_compiler.Mutant.policy ->
  fid:Activermt.Packet.fid ->
  regions:Activermt.Packet.region option array ->
  (t, string) result

val fid : t -> Activermt.Packet.fid
val granted : t -> Synthesis.granted

val syn_program : t -> Activermt.Program.t
val flow_program : t -> Activermt.Program.t
(** Aligned to the synthesized SYN program's hash stage. *)

val access_stages : t -> int array
(** The four access stages of the granted mutant (pool size, counter,
    page table, VIP pool), for [Cheetah_lb.install_pool]. *)

val pool_write_packets :
  t -> ports:int array -> (int * Activermt.Packet.t) list
(** Memsync write packets that install the VIP pool ([ports] must be a
    power of two); each is paired with the seq it carries so acks can be
    matched. *)

val syn_packet : t -> seq:int -> salt:int -> Activermt.Packet.t

val cookie_of_reply : Activermt.Packet.t -> int option
(** The cookie the switch wrote into a SYN's argument field. *)

val flow_packet : t -> seq:int -> salt:int -> cookie:int -> Activermt.Packet.t
