module Memsync = Activermt_apps.Memsync

type op = Read | Write of (int -> int list)

type slot = { mutable acked : bool; mutable last_sent : float; mutable seq : int }

type t = {
  fid : Activermt.Packet.fid;
  stages : int list;
  count : int;
  timeout_s : float;
  op : op;
  program : Activermt.Program.t;
  slots : slot array;
  seq_to_index : (int, int) Hashtbl.t;
  results : int array array;
  mutable next_seq : int;
  mutable sent : int;
}

let vflags = { Activermt.Packet.no_flags with virtual_addressing = true }

let create ~fid ~stages ~count ~timeout_s op =
  if count <= 0 then invalid_arg "Memsync_driver.create: count must be positive";
  if timeout_s <= 0.0 then invalid_arg "Memsync_driver.create: timeout must be positive";
  let program =
    match op with
    | Read -> Memsync.read_program ~stages
    | Write _ -> Memsync.write_program ~stages
  in
  {
    fid;
    stages;
    count;
    timeout_s;
    op;
    program;
    slots = Array.init count (fun _ -> { acked = false; last_sent = neg_infinity; seq = -1 });
    seq_to_index = Hashtbl.create (2 * count);
    results = Array.make_matrix (List.length stages) count 0;
    next_seq = 1;
    sent = 0;
  }

let outstanding t =
  Array.fold_left (fun acc s -> if s.acked then acc else acc + 1) 0 t.slots

let is_done t = outstanding t = 0

let packet_for t ~seq ~index =
  let args =
    match t.op with
    | Read -> Memsync.read_args ~index
    | Write values -> Memsync.write_args ~index ~values:(values index)
  in
  Activermt.Packet.exec ~flags:vflags ~fid:t.fid ~seq ~args t.program

let transmit t ~now ~send index =
  let slot = t.slots.(index) in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  slot.seq <- seq;
  slot.last_sent <- now;
  t.sent <- t.sent + 1;
  Hashtbl.replace t.seq_to_index seq index;
  send ~seq (packet_for t ~seq ~index)

let start t ~now ~send =
  for index = 0 to t.count - 1 do
    if not t.slots.(index).acked then transmit t ~now ~send index
  done

let on_reply t ~seq ~args =
  match Hashtbl.find_opt t.seq_to_index seq with
  | None -> false
  | Some index ->
    Hashtbl.remove t.seq_to_index seq;
    let slot = t.slots.(index) in
    if slot.acked then false
    else begin
      slot.acked <- true;
      (match t.op with
      | Read ->
        List.iteri
          (fun k _stage ->
            if k + 1 < Array.length args then t.results.(k).(index) <- args.(k + 1))
          t.stages
      | Write _ -> ());
      true
    end

let tick t ~now ~send =
  let resent = ref 0 in
  for index = 0 to t.count - 1 do
    let slot = t.slots.(index) in
    if (not slot.acked) && now -. slot.last_sent >= t.timeout_s then begin
      transmit t ~now ~send index;
      incr resent
    end
  done;
  !resent

let values t = t.results
let attempts t = t.sent
