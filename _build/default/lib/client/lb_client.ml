module Lb = Activermt_apps.Cheetah_lb
module Memsync = Activermt_apps.Memsync
module Mutant = Activermt_compiler.Mutant

type t = {
  fid : Activermt.Packet.fid;
  granted : Synthesis.granted;
  syn_program : Activermt.Program.t;
  flow_program : Activermt.Program.t;
}

let vflags = { Activermt.Packet.no_flags with virtual_addressing = true }

let create params ~policy ~fid ~regions =
  match Synthesis.match_response params ~policy Lb.service regions with
  | Error _ as e -> e
  | Ok granted -> (
    match Synthesis.programs Lb.service granted with
    | [ syn_program ] ->
      (* The SYN's cookie HASH sits after the last access, so it is
         shifted by the last access's shift; the flow program must hash on
         the same logical stage. *)
      let shifts = granted.Synthesis.mutant.Mutant.shifts in
      let hash_stage =
        (Lb.syn_hash_position + shifts.(Array.length shifts - 1))
        mod params.Rmt.Params.logical_stages
      in
      Ok
        {
          fid;
          granted;
          syn_program;
          flow_program = Lb.flow_program_for ~hash_stage;
        }
    | _ -> Error "load-balancer service must have exactly one program")

let fid t = t.fid
let granted t = t.granted
let syn_program t = t.syn_program
let flow_program t = t.flow_program
let access_stages t = t.granted.Synthesis.mutant.Mutant.stages

let pool_write_packets t ~ports =
  let out = ref [] in
  let seq = ref 0 in
  let write ~stage ~index ~value =
    incr seq;
    out :=
      ( !seq,
        Activermt.Packet.exec ~flags:vflags ~fid:t.fid ~seq:!seq
          ~args:(Memsync.write_args ~index ~values:[ value ])
          (Memsync.write_program ~stages:[ stage ]) )
      :: !out;
    true
  in
  Lb.install_pool ~write ~accesses_stages:(access_stages t) ~ports;
  List.rev !out

let syn_packet t ~seq ~salt =
  Activermt.Packet.exec ~flags:vflags ~fid:t.fid ~seq ~args:(Lb.syn_args ~salt)
    t.syn_program

let cookie_of_reply (pkt : Activermt.Packet.t) =
  match pkt.Activermt.Packet.payload with
  | Activermt.Packet.Exec { args; _ } when Array.length args = 4 ->
    Some args.(Lb.arg_cookie)
  | Activermt.Packet.Exec _ | Activermt.Packet.Request _
  | Activermt.Packet.Response _ | Activermt.Packet.Bare ->
    None

let flow_packet t ~seq ~salt ~cookie =
  Activermt.Packet.exec ~fid:t.fid ~seq ~args:(Lb.flow_args ~salt ~cookie)
    t.flow_program
