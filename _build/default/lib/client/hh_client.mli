(** Client-side logic of the frequent-item (heavy-hitter) monitor.

    The client activates its object requests with the monitor program;
    after a measurement window it extracts the per-slot thresholds and
    stored keys (via memsync or the control plane) and computes the
    frequent-item set used to populate a cache (Section 6.3). *)

type t

val create :
  Rmt.Params.t ->
  policy:Activermt_compiler.Mutant.policy ->
  fid:Activermt.Packet.fid ->
  regions:Activermt.Packet.region option array ->
  (t, string) result

val fid : t -> Activermt.Packet.fid
val granted : t -> Synthesis.granted
val program : t -> Activermt.Program.t
val n_slots : t -> int
(** Threshold/key slots available (words of the threshold region). *)

val slot_of_key : t -> Workload.Kv.key -> int
val monitor_packet : t -> seq:int -> Workload.Kv.key -> Activermt.Packet.t

val threshold_stage : t -> int
val key0_stage : t -> int
val key1_stage : t -> int
(** Stages to extract from. *)

val frequent_items :
  thresholds:int array ->
  key0s:int array ->
  key1s:int array ->
  (Workload.Kv.key * int) list
(** Combine extracted arrays into (key, count) pairs, highest count
    first; slots never hit (threshold 0) are skipped. *)
