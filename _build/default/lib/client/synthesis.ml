module Mutant = Activermt_compiler.Mutant
module App = Activermt_apps.App

type granted = {
  mutant : Mutant.t;
  regions : Activermt.Packet.region option array;
  access_regions : Activermt.Packet.region array;
}

let sorted_unique l = List.sort_uniq compare l

let granted_stages regions =
  let out = ref [] in
  Array.iteri
    (fun s r -> match r with Some _ -> out := s :: !out | None -> ())
    regions;
  sorted_unique !out

let match_response params ~policy app regions =
  let spec = App.spec app in
  let want = granted_stages regions in
  let mutants = Mutant.enumerate ~limit:4096 params policy spec in
  let matches m = sorted_unique (Array.to_list m.Mutant.stages) = want in
  match List.find_opt matches mutants with
  | None -> Error "no mutant matches the granted stages"
  | Some mutant ->
    let access_regions =
      Array.map
        (fun s ->
          match regions.(s) with
          | Some r -> r
          | None -> assert false (* [matches] guarantees a region per stage *))
        mutant.Mutant.stages
    in
    Ok { mutant; regions = Array.copy regions; access_regions }

let programs app granted =
  List.map
    (fun spec -> Mutant.synthesize spec granted.mutant)
    app.App.programs

let min_access_words g =
  Array.fold_left
    (fun acc r -> min acc r.Activermt.Packet.n_words)
    max_int g.access_regions
