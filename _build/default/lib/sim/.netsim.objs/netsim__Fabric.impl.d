lib/sim/fabric.ml: Activermt Activermt_control Engine Hashtbl List Rmt Stdx Workload
