lib/sim/engine.ml: Float Stdx
