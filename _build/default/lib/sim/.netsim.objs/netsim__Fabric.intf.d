lib/sim/fabric.mli: Activermt Activermt_control Engine Workload
