lib/sim/engine.mli:
