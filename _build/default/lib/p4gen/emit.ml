module I = Activermt.Instr

type config = {
  params : Rmt.Params.t;
  max_program_length : int;
  recirculation_port : int;
}

let default_config =
  { params = Rmt.Params.default; max_program_length = 48; recirculation_port = 68 }

let line b s =
  Buffer.add_string b s;
  Buffer.add_char b '\n'

(* -- action naming --------------------------------------------------------- *)

let opcode_action_name (instr : I.t) =
  match instr with
  | I.Mbr_load a -> Printf.sprintf "act_mbr_load_%d" (I.arg_index a)
  | I.Mbr_store a -> Printf.sprintf "act_mbr_store_%d" (I.arg_index a)
  | I.Mbr2_load a -> Printf.sprintf "act_mbr2_load_%d" (I.arg_index a)
  | I.Mar_load a -> Printf.sprintf "act_mar_load_%d" (I.arg_index a)
  | I.Mbr_equals_data a -> Printf.sprintf "act_mbr_equals_data_%d" (I.arg_index a)
  | I.Cjump _ -> "act_cjump"
  | I.Cjumpi _ -> "act_cjumpi"
  | I.Ujump _ -> "act_ujump"
  | other ->
    let m = String.lowercase_ascii (I.mnemonic other) in
    "act_" ^ String.map (fun c -> if c = ' ' then '_' else c) m

(* Representative opcodes, deduplicated by action name (branch targets are
   action data, not distinct actions). *)
let distinct_actions () =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun i ->
      let n = opcode_action_name i in
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    I.all_opcodes

let is_stage_local (i : I.t) =
  I.is_memory_access i || i = I.Addr_mask || i = I.Addr_offset || i = I.Hash

(* -- headers ---------------------------------------------------------------- *)

let emit_headers cfg =
  let b = Buffer.create 2048 in
  line b "/* ---- active packet headers (Section 3.3) ---- */";
  line b "";
  line b "header ethernet_h {";
  line b "    bit<48> dst_addr;";
  line b "    bit<48> src_addr;";
  line b "    bit<16> ether_type;";
  line b "}";
  line b "";
  line b "header active_initial_h {";
  line b "    bit<16> fid;";
  line b "    bit<8>  flags;       /* type[1:0], elastic, virtual, ack */";
  line b "    bit<32> seq;";
  line b "    bit<8>  prog_len;";
  line b "    bit<8>  rts_pos;";
  line b "    bit<8>  n_accesses;";
  line b "}";
  line b "";
  line b "header active_args_h {";
  line b "    bit<32> data0;";
  line b "    bit<32> data1;";
  line b "    bit<32> data2;";
  line b "    bit<32> data3;";
  line b "}";
  line b "";
  line b "header active_instruction_h {";
  line b "    bit<8> opcode;";
  line b "    bit<8> flags;        /* executed, label+1[3:1], target[6:4] */";
  line b "}";
  line b "";
  line b "header allocation_request_h {";
  line b "    bit<192> constraints; /* eight 3-byte access entries */";
  line b "}";
  line b "";
  line b
    (Printf.sprintf
       "header allocation_response_h { bit<%d> regions; } /* %d x 8-byte stage records */"
       (8 * (1 + (8 * cfg.params.Rmt.Params.logical_stages)))
       cfg.params.Rmt.Params.logical_stages);
  line b "";
  line b "struct active_headers_t {";
  line b "    ethernet_h ethernet;";
  line b "    active_initial_h initial;";
  line b "    allocation_request_h alloc_req;";
  line b "    allocation_response_h alloc_resp;";
  line b "    active_args_h args;";
  line b (Printf.sprintf "    active_instruction_h[%d] instr;" cfg.max_program_length);
  line b "}";
  line b "";
  line b "struct active_metadata_t {";
  line b "    bit<32> mar;";
  line b "    bit<32> mbr;";
  line b "    bit<32> mbr2;";
  line b "    bit<32> hd0;";
  line b "    bit<32> hd1;";
  line b "    bit<1>  complete;";
  line b "    bit<1>  disabled;";
  line b "    bit<3>  branch_target;";
  line b "    bit<1>  rts;";
  line b "    bit<1>  quiesced;";
  line b "    bit<8>  pc;";
  line b "}";
  Buffer.contents b

(* -- parser ----------------------------------------------------------------- *)

let emit_parser cfg =
  let b = Buffer.create 4096 in
  line b "parser ActiveParser(packet_in pkt, out active_headers_t hdr,";
  line b "                    out active_metadata_t meta,";
  line b "                    out ingress_intrinsic_metadata_t ig_intr_md) {";
  line b "    state start {";
  line b "        pkt.extract(ig_intr_md);";
  line b "        pkt.advance(PORT_METADATA_SIZE);";
  line b "        pkt.extract(hdr.ethernet);";
  line b "        transition select(hdr.ethernet.ether_type) {";
  line b "            0x83b2: parse_active;   /* the layer-2 encapsulation */";
  line b "            default: accept;";
  line b "        }";
  line b "    }";
  line b "    state parse_active {";
  line b "        pkt.extract(hdr.initial);";
  line b "        transition select(hdr.initial.flags[1:0]) {";
  line b "            0: parse_alloc_request;";
  line b "            1: parse_alloc_response;";
  line b "            2: parse_program;";
  line b "            3: accept;              /* bare control packet */";
  line b "        }";
  line b "    }";
  line b "    state parse_alloc_request {";
  line b "        pkt.extract(hdr.alloc_req);";
  line b "        transition accept;";
  line b "    }";
  line b "    state parse_alloc_response {";
  line b "        pkt.extract(hdr.alloc_resp);";
  line b "        transition accept;";
  line b "    }";
  line b "    state parse_program {";
  line b "        pkt.extract(hdr.args);";
  line b "        transition parse_instr_0;";
  line b "    }";
  for i = 0 to cfg.max_program_length - 1 do
    line b (Printf.sprintf "    state parse_instr_%d {" i);
    line b (Printf.sprintf "        pkt.extract(hdr.instr[%d]);" i);
    line b (Printf.sprintf "        transition select(hdr.instr[%d].opcode) {" i);
    line b "            0x00: accept;        /* EOF */";
    if i < cfg.max_program_length - 1 then
      line b (Printf.sprintf "            default: parse_instr_%d;" (i + 1))
    else line b "            default: accept; /* program truncated at parser depth */";
    line b "        }";
    line b "    }"
  done;
  line b "}";
  Buffer.contents b

(* -- registers -------------------------------------------------------------- *)

let emit_registers cfg =
  let b = Buffer.create 8192 in
  let words = cfg.params.Rmt.Params.words_per_stage in
  line b "/* ---- per-stage register pools and stateful-ALU micro-programs ---- */";
  for s = 0 to cfg.params.Rmt.Params.logical_stages - 1 do
    line b "";
    line b (Printf.sprintf "Register<bit<32>, bit<32>>(%d) heap_%d;" words s);
    line b (Printf.sprintf
              "RegisterAction<bit<32>, bit<32>, bit<32>>(heap_%d) heap_%d_read = {" s s);
    line b "    void apply(inout bit<32> obj, out bit<32> rv) { rv = obj; }";
    line b "};";
    line b (Printf.sprintf
              "RegisterAction<bit<32>, bit<32>, bit<32>>(heap_%d) heap_%d_write = {" s s);
    line b "    void apply(inout bit<32> obj, out bit<32> rv) { obj = meta.mbr; rv = obj; }";
    line b "};";
    line b (Printf.sprintf
              "RegisterAction<bit<32>, bit<32>, bit<32>>(heap_%d) heap_%d_increment = {" s s);
    line b "    void apply(inout bit<32> obj, out bit<32> rv) { obj = obj + 1; rv = obj; }";
    line b "};";
    line b (Printf.sprintf
              "RegisterAction<bit<32>, bit<32>, bit<32>>(heap_%d) heap_%d_minread = {" s s);
    line b "    void apply(inout bit<32> obj, out bit<32> rv) {";
    line b "        rv = min(obj, meta.mbr);";
    line b "    }";
    line b "};";
    line b (Printf.sprintf
              "RegisterAction<bit<32>, bit<32>, bit<32>>(heap_%d) heap_%d_minreadinc = {" s s);
    line b "    void apply(inout bit<32> obj, out bit<32> rv) {";
    line b "        obj = obj + 1;";
    line b "        rv = obj;";
    line b "    }";
    line b "};"
  done;
  Buffer.contents b

(* -- instruction actions ----------------------------------------------------- *)

let action_body (i : I.t) ~stage =
  let mem regact = [ Printf.sprintf "meta.mbr = heap_%d_%s.execute(meta.mar);" stage regact ] in
  match i with
  | I.Mbr_load a -> [ Printf.sprintf "meta.mbr = hdr.args.data%d;" (I.arg_index a) ]
  | I.Mbr_store a -> [ Printf.sprintf "hdr.args.data%d = meta.mbr;" (I.arg_index a) ]
  | I.Mbr2_load a -> [ Printf.sprintf "meta.mbr2 = hdr.args.data%d;" (I.arg_index a) ]
  | I.Mar_load a -> [ Printf.sprintf "meta.mar = hdr.args.data%d;" (I.arg_index a) ]
  | I.Copy_mbr_mbr2 -> [ "meta.mbr = meta.mbr2;" ]
  | I.Copy_mbr2_mbr -> [ "meta.mbr2 = meta.mbr;" ]
  | I.Copy_mbr_mar -> [ "meta.mbr = meta.mar;" ]
  | I.Copy_mar_mbr -> [ "meta.mar = meta.mbr;" ]
  | I.Copy_hashdata_mbr -> [ "meta.hd0 = meta.mbr;" ]
  | I.Copy_hashdata_mbr2 -> [ "meta.hd1 = meta.mbr2;" ]
  | I.Hashdata_load_5tuple ->
    [ "meta.hd0 = meta.flow_key0;"; "meta.hd1 = meta.flow_key1;" ]
  | I.Mbr_add_mbr2 -> [ "meta.mbr = meta.mbr + meta.mbr2;" ]
  | I.Mar_add_mbr -> [ "meta.mar = meta.mar + meta.mbr;" ]
  | I.Mar_add_mbr2 -> [ "meta.mar = meta.mar + meta.mbr2;" ]
  | I.Mar_mbr_add_mbr2 -> [ "meta.mar = meta.mbr + meta.mbr2;" ]
  | I.Mbr_subtract_mbr2 -> [ "meta.mbr = meta.mbr - meta.mbr2;" ]
  | I.Bit_and_mar_mbr -> [ "meta.mar = meta.mar & meta.mbr;" ]
  | I.Bit_or_mbr_mbr2 -> [ "meta.mbr = meta.mbr | meta.mbr2;" ]
  | I.Mbr_equals_mbr2 -> [ "meta.mbr = meta.mbr ^ meta.mbr2;" ]
  | I.Mbr_equals_data a ->
    [ Printf.sprintf "meta.mbr = meta.mbr ^ hdr.args.data%d;" (I.arg_index a) ]
  | I.Max -> [ "meta.mbr = max(meta.mbr, meta.mbr2);" ]
  | I.Min -> [ "meta.mbr = min(meta.mbr, meta.mbr2);" ]
  | I.Revmin -> [ "meta.mbr2 = min(meta.mbr, meta.mbr2);" ]
  | I.Swap_mbr_mbr2 ->
    [ "bit<32> tmp = meta.mbr;"; "meta.mbr = meta.mbr2;"; "meta.mbr2 = tmp;" ]
  | I.Mbr_not -> [ "meta.mbr = ~meta.mbr;" ]
  | I.Return -> [ "meta.complete = 1;" ]
  | I.Cret -> [ "if (meta.mbr != 0) { meta.complete = 1; }" ]
  | I.Creti -> [ "if (meta.mbr == 0) { meta.complete = 1; }" ]
  | I.Cjump _ ->
    [ "if (meta.mbr != 0) { meta.disabled = 1; meta.branch_target = target; }" ]
  | I.Cjumpi _ ->
    [ "if (meta.mbr == 0) { meta.disabled = 1; meta.branch_target = target; }" ]
  | I.Ujump _ -> [ "meta.disabled = 1; meta.branch_target = target;" ]
  | I.Mem_write -> mem "write"
  | I.Mem_read -> mem "read"
  | I.Mem_increment -> mem "increment"
  | I.Mem_minread -> mem "minread"
  | I.Mem_minreadinc ->
    mem "minreadinc" @ [ "meta.mbr2 = min(meta.mbr, meta.mbr2);" ]
  | I.Drop -> [ "ig_dprsr_md.drop_ctl = 1;"; "meta.complete = 1;" ]
  | I.Fork -> [ "ig_tm_md.copy_to_cpu = 0; /* clone session set by control plane */" ]
  | I.Set_dst -> [ "ig_tm_md.ucast_egress_port = (PortId_t) meta.mbr[8:0];" ]
  | I.Rts ->
    [
      "bit<48> mac_tmp = hdr.ethernet.dst_addr;";
      "hdr.ethernet.dst_addr = hdr.ethernet.src_addr;";
      "hdr.ethernet.src_addr = mac_tmp;";
      "meta.rts = 1;";
    ]
  | I.Crts -> [ "if (meta.mbr != 0) { meta.rts = 1; }" ]
  | I.Eof -> [ "meta.complete = 1;" ]
  | I.Nop -> [ "/* no operation */" ]
  | I.Addr_mask -> [ "meta.mar = meta.mar & xmask; /* action data from the table entry */" ]
  | I.Addr_offset -> [ "meta.mar = meta.mar + xoffset;" ]
  | I.Hash -> [ Printf.sprintf "meta.mar = hash_%d.get({meta.hd0, meta.hd1});" stage ]

let action_params (i : I.t) =
  match i with
  | I.Cjump _ | I.Cjumpi _ | I.Ujump _ -> "(bit<3> target)"
  | I.Addr_mask -> "(bit<32> xmask)"
  | I.Addr_offset -> "(bit<32> xoffset)"
  | _ -> "()"

let emit_instruction_actions cfg =
  let b = Buffer.create 16384 in
  line b "/* ---- one action per opcode; memory/hash opcodes are stage-local ---- */";
  let emit_action ~stage i =
    let suffix = if is_stage_local i then Printf.sprintf "_s%d" stage else "" in
    line b (Printf.sprintf "action %s%s%s {" (opcode_action_name i) suffix (action_params i));
    List.iter (fun stmt -> line b ("    " ^ stmt)) (action_body i ~stage);
    line b "}"
  in
  let actions = distinct_actions () in
  List.iter (fun i -> if not (is_stage_local i) then emit_action ~stage:0 i) actions;
  for s = 0 to cfg.params.Rmt.Params.logical_stages - 1 do
    line b "";
    line b (Printf.sprintf "/* stage %d memory and hash actions */" s);
    line b (Printf.sprintf
              "Hash<bit<32>>(HashAlgorithm_t.CRC32, poly_stage_%d) hash_%d;" s s);
    List.iter (fun i -> if is_stage_local i then emit_action ~stage:s i) actions
  done;
  Buffer.contents b

(* -- stage tables ------------------------------------------------------------ *)

let emit_stage_tables cfg =
  let b = Buffer.create 8192 in
  let actions = distinct_actions () in
  line b "/* ---- per-stage instruction decode + memory protection ---- */";
  for s = 0 to cfg.params.Rmt.Params.logical_stages - 1 do
    line b "";
    line b (Printf.sprintf "table instruction_%d {" s);
    line b "    key = {";
    line b "        hdr.initial.fid        : exact;";
    line b (Printf.sprintf "        hdr.instr[%d].opcode   : exact;" s);
    line b "        meta.mar               : range;   /* memory protection */";
    line b "        meta.complete          : exact;";
    line b "        meta.disabled          : exact;";
    line b (Printf.sprintf "        hdr.instr[%d].flags    : ternary; /* label matching */" s);
    line b "    }";
    line b "    actions = {";
    List.iter
      (fun i ->
        let suffix = if is_stage_local i then Printf.sprintf "_s%d" s else "" in
        line b (Printf.sprintf "        %s%s;" (opcode_action_name i) suffix))
      actions;
    line b "        NoAction;";
    line b "    }";
    line b "    default_action = NoAction();";
    line b (Printf.sprintf "    size = %d;" cfg.params.Rmt.Params.tcam_entries_per_stage);
    line b "}"
  done;
  Buffer.contents b

(* -- pipeline ----------------------------------------------------------------- *)

let emit_pipeline cfg =
  let b = Buffer.create 4096 in
  let n = cfg.params.Rmt.Params.logical_stages in
  let ingress = cfg.params.Rmt.Params.ingress_stages in
  line b "control ActiveIngress(inout active_headers_t hdr,";
  line b "                      inout active_metadata_t meta,";
  line b "                      in ingress_intrinsic_metadata_t ig_intr_md,";
  line b "                      inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,";
  line b "                      inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {";
  line b "    apply {";
  line b "        if (hdr.initial.isValid() && meta.quiesced == 0) {";
  for s = 0 to ingress - 1 do
    line b (Printf.sprintf "            instruction_%d.apply();" s)
  done;
  line b "            if (meta.rts == 1) {";
  line b "                ig_tm_md.ucast_egress_port = ig_intr_md.ingress_port;";
  line b "            }";
  line b "        }";
  line b "    }";
  line b "}";
  line b "";
  line b "control ActiveEgress(inout active_headers_t hdr,";
  line b "                     inout active_metadata_t meta,";
  line b "                     inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {";
  line b "    apply {";
  line b "        if (hdr.initial.isValid() && meta.quiesced == 0) {";
  for s = ingress to n - 1 do
    line b (Printf.sprintf "            instruction_%d.apply();" s)
  done;
  line b "            if (meta.complete == 0) {";
  line b (Printf.sprintf
            "                /* program continues: recirculate via port %d */"
            cfg.recirculation_port);
  line b "            }";
  line b "        }";
  line b "    }";
  line b "}";
  line b "";
  line b "Pipeline(ActiveParser(), ActiveIngress(), ActiveEgress()) pipe;";
  line b "Switch(pipe) main;";
  Buffer.contents b

let emit cfg =
  let b = Buffer.create 65536 in
  line b "/* ActiveRMT shared runtime — generated by activermt.p4gen.";
  line b "   Memory Management in ActiveRMT (SIGCOMM 2023), OCaml reproduction.";
  line b (Printf.sprintf
            "   %d logical stages (%d ingress), %d words/stage, parser depth %d. */"
            cfg.params.Rmt.Params.logical_stages cfg.params.Rmt.Params.ingress_stages
            cfg.params.Rmt.Params.words_per_stage cfg.max_program_length);
  line b "";
  line b "#include <core.p4>";
  line b "#include <tna.p4>";
  line b "";
  Buffer.add_string b (emit_headers cfg);
  Buffer.add_char b '\n';
  Buffer.add_string b (emit_parser cfg);
  Buffer.add_char b '\n';
  Buffer.add_string b (emit_registers cfg);
  Buffer.add_char b '\n';
  Buffer.add_string b (emit_instruction_actions cfg);
  Buffer.add_char b '\n';
  Buffer.add_string b (emit_stage_tables cfg);
  Buffer.add_char b '\n';
  Buffer.add_string b (emit_pipeline cfg);
  Buffer.contents b
