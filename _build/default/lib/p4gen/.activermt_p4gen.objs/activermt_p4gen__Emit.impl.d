lib/p4gen/emit.ml: Activermt Buffer Hashtbl List Printf Rmt String
