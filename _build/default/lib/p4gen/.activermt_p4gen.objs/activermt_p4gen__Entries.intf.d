lib/p4gen/entries.mli: Activermt Emit
