lib/p4gen/entries.ml: Activermt Array Buffer Emit Printf Rmt
