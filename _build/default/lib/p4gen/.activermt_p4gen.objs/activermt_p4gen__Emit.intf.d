lib/p4gen/emit.mli: Activermt Rmt
