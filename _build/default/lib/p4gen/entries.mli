(** Control-plane entry generation for the emitted P4 runtime.

    The paper's controller is ≈1.2K lines of Python driving BFRT.  This
    module generates the equivalent bfrt-python statements for a concrete
    allocation: per-stage instruction-decode entries gated on FID, the
    TCAM range entries enforcing the app's MAR bounds, and the
    ADDR_MASK/ADDR_OFFSET translation constants — exactly the state
    [Activermt.Table.install] maintains in the simulator, so the two
    realizations stay aligned. *)

val entries_for_app :
  Emit.config ->
  fid:Activermt.Packet.fid ->
  regions:Activermt.Packet.region option array ->
  string
(** bfrt-python lines installing the app's entries on every stage table.
    Deterministic; stages without a region get pass-through entries whose
    mask/offset reference the next access stage (Section 3.2). *)

val removal_for_app :
  Emit.config -> fid:Activermt.Packet.fid -> string
(** The matching teardown script. *)

val entry_count :
  Emit.config -> regions:Activermt.Packet.region option array -> int
(** Entries the installation script writes — the quantity the Figure 8a
    cost model charges for. *)
