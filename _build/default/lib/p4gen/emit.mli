(** Generator for the ActiveRMT switch runtime as P4-16 (TNA).

    The paper's artifact is ≈10K lines of P4 implementing the shared
    runtime: parsers for the active headers, one large register extern per
    stage with the four stateful-ALU micro-programs, and per-stage
    match-action tables that decode instructions against FID, opcode, MAR
    bounds and the control flags.  This module emits an equivalent
    program from the same [Instr] set and [Rmt.Params] the simulator
    runs, so the OCaml model and the hardware artifact cannot drift
    apart.

    The output is structurally faithful TNA-style P4-16 (headers, parser
    states up to the maximum program length, registers + RegisterActions,
    an action per opcode, a table per logical stage, ingress/egress
    pipelines with recirculation) — a starting point for a hardware port;
    it has not been run through bf-p4c (no Tofino toolchain in this
    environment). *)

type config = {
  params : Rmt.Params.t;
  max_program_length : int;  (** instruction headers the parser unrolls *)
  recirculation_port : int;
}

val default_config : config

val emit : config -> string
(** The complete P4 program text.  Deterministic for a given config. *)

val emit_headers : config -> string
val emit_parser : config -> string
val emit_registers : config -> string
(** One register extern + stateful actions per logical stage. *)

val emit_instruction_actions : config -> string
(** One P4 action per opcode of the instruction set (generated from
    [Instr.all_opcodes], so adding an instruction updates the runtime). *)

val emit_stage_tables : config -> string
val emit_pipeline : config -> string

val opcode_action_name : Activermt.Instr.t -> string
(** The generated action's name for an instruction (stable API for
    tests and for control-plane entry generators). *)
