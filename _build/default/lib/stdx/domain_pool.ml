type t = { size : int }

let default_size () = Domain.recommended_domain_count ()

let create ?size () =
  let size = match size with Some n -> max 1 n | None -> default_size () in
  { size }

let size t = t.size

(* Below this many indices per would-be worker a Domain.spawn costs more
   than the chunk it would run; fall back to the caller's domain. *)
let min_chunk = 256

(* Work is split into [size] contiguous chunks; the calling domain takes
   the first chunk so a pool of size 1 never spawns.  Chunks are disjoint
   index ranges, so [f] may write to distinct cells of a shared array
   without synchronization. *)
let parallel_for t ~n ~f =
  if n > 0 then begin
    if t.size = 1 || n < min_chunk * t.size then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let chunk = (n + t.size - 1) / t.size in
      let run lo hi =
        for i = lo to hi - 1 do
          f i
        done
      in
      let workers =
        List.init (t.size - 1) (fun w ->
            let lo = (w + 1) * chunk in
            let hi = min n (lo + chunk) in
            Domain.spawn (fun () -> run lo hi))
      in
      run 0 (min n chunk);
      List.iter Domain.join workers
    end
  end

let map t ~f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f arr.(0)) in
    parallel_for t ~n:(n - 1) ~f:(fun i -> out.(i + 1) <- f arr.(i + 1));
    out
  end
