type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let summarize xs =
  match xs with
  | [] -> { n = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0 }
  | x :: _ ->
    let n = List.length xs in
    let m = mean xs in
    let var =
      List.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0.0 xs
      /. float_of_int n
    in
    let mn = List.fold_left min x xs and mx = List.fold_left max x xs in
    { n; mean = m; stddev = sqrt var; min = mn; max = mx }

let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty sample";
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median xs = percentile xs 50.0

let jain_fairness xs =
  let n = List.length xs in
  if n = 0 then 1.0
  else begin
    let s = List.fold_left ( +. ) 0.0 xs in
    let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if s2 = 0.0 then 1.0 else s *. s /. (float_of_int n *. s2)
  end

let histogram ~bins ~lo ~hi xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if not (hi > lo) then invalid_arg "Stats.histogram: hi must exceed lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let place x =
    let i = int_of_float ((x -. lo) /. width) in
    let i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
    counts.(i) <- counts.(i) + 1
  in
  List.iter place xs;
  counts

type boxplot = {
  q1 : float;
  q2 : float;
  q3 : float;
  whisker_lo : float;
  whisker_hi : float;
}

let boxplot xs =
  let q1 = percentile xs 25.0
  and q2 = percentile xs 50.0
  and q3 = percentile xs 75.0 in
  let iqr = q3 -. q1 in
  let s = summarize xs in
  {
    q1;
    q2;
    q3;
    whisker_lo = Float.max s.min (q1 -. (1.5 *. iqr));
    whisker_hi = Float.min s.max (q3 +. (1.5 *. iqr));
  }
