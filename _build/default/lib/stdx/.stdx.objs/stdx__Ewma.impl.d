lib/stdx/ewma.ml: List
