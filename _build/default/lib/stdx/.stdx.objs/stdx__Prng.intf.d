lib/stdx/prng.mli:
