lib/stdx/domain_pool.mli:
