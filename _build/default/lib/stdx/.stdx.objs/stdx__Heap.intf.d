lib/stdx/heap.mli:
