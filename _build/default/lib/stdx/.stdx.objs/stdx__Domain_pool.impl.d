lib/stdx/domain_pool.ml: Array Domain List
