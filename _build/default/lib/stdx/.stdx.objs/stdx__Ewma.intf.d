lib/stdx/ewma.mli:
