lib/stdx/stats.mli:
