type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

(* Non-negative 62-bit integer from the top bits. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod bound in
    if r - v > (max_int - bound) + 1 then draw () else v
  in
  draw ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let poisson t ~mean =
  let l = exp (-.mean) in
  let rec loop k p =
    let p = p *. float t 1.0 in
    if p <= l then k else loop (k + 1) p
  in
  loop 0 1.0

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
