(** Exponentially weighted moving average, as used throughout the paper's
    evaluation plots (Figures 5b, 7c, 9a). *)

type t

val create : alpha:float -> t
(** [create ~alpha] with smoothing factor 0 < alpha <= 1; larger alpha
    weights recent samples more. *)

val update : t -> float -> float
(** Feed a sample; returns the new smoothed value. *)

val value : t -> float option
(** Current smoothed value, [None] before any sample. *)

val value_or : t -> default:float -> float

val smooth : alpha:float -> float list -> float list
(** Convenience: smooth a whole series, returning a same-length series. *)
