(** Small statistics toolkit backing the evaluation harness: summary
    statistics, percentiles, Jain's fairness index and histogram bins. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Summary of a non-empty sample list.  [summarize []] returns an
    all-zero summary with [n = 0]. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with p in [0, 100], linear interpolation between
    order statistics.  @raise Invalid_argument on an empty list. *)

val median : float list -> float

val jain_fairness : float list -> float
(** Jain's fairness index (sum x)^2 / (n * sum x^2) over the allocations,
    as plotted in Figures 7d and 11.  Equals 1.0 for equal shares; 1/n for
    a single winner.  Returns 1.0 for empty or all-zero input (vacuously
    fair). *)

val histogram : bins:int -> lo:float -> hi:float -> float list -> int array
(** Fixed-width histogram; samples outside [lo, hi] are clamped to the
    first/last bin. *)

type boxplot = {
  q1 : float;
  q2 : float;
  q3 : float;
  whisker_lo : float;
  whisker_hi : float;
}

val boxplot : float list -> boxplot
(** Five-number boxplot summary (whiskers at 1.5 IQR clamped to the data
    range), mirroring the Figure 11 presentation. *)
