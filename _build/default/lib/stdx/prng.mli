(** Deterministic pseudo-random number generation.

    Every experiment in this repository seeds its generator explicitly so
    that [dune runtest] and the benchmark harness are reproducible run to
    run.  The generator is splitmix64: tiny state, excellent statistical
    quality for simulation purposes, and trivially splittable so that
    independent simulation components can draw from independent streams. *)

type t
(** A mutable generator. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator from a 64-bit seed. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed variate with the given mean. *)

val poisson : t -> mean:float -> int
(** Poisson-distributed variate (Knuth's method; fine for small means). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
