(** Chunked parallel iteration over OCaml 5 domains.

    A pool is a fan-out width, not live threads: each [parallel_for] call
    spawns [size - 1] short-lived domains over contiguous index chunks and
    runs the first chunk on the caller, so a pool of size 1 (the
    sequential fallback) never spawns and adds no overhead.  Results are
    deterministic whenever [f] is — chunking fixes which domain runs which
    index but not any observable order-dependent state, so callers must
    only write to per-index cells (or otherwise commute). *)

type t

val default_size : unit -> int
(** [Domain.recommended_domain_count ()] — the size [create] defaults to. *)

val create : ?size:int -> unit -> t
(** [size] defaults to [Domain.recommended_domain_count ()]; values below
    1 are clamped to 1. *)

val size : t -> int

val parallel_for : t -> n:int -> f:(int -> unit) -> unit
(** Apply [f] to every index in [0, n).  [f] runs on the caller when the
    pool is sequential or [n] is too small to amortize a spawn; otherwise
    on [size] domains over disjoint chunks.  [f] must be safe to run
    concurrently with itself on distinct indices. *)

val map : t -> f:('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] via [parallel_for]. *)
