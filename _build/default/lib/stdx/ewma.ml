type t = { alpha : float; mutable current : float option }

let create ~alpha =
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Ewma.create: alpha must be in (0, 1]";
  { alpha; current = None }

let update t x =
  let v =
    match t.current with
    | None -> x
    | Some prev -> (t.alpha *. x) +. ((1.0 -. t.alpha) *. prev)
  in
  t.current <- Some v;
  v

let value t = t.current

let value_or t ~default = match t.current with Some v -> v | None -> default

let smooth ~alpha series =
  let t = create ~alpha in
  List.map (update t) series
