(** Static analysis of an active program: the memory-access pattern the
    client sends in allocation requests (Section 4.2's LB/UB/B vectors).

    Positions here are 0-based instruction indices; the paper's worked
    example for Listing 1 (accesses at 1-based lines 2, 5, 9 with minimum
    distances [1 3 4]) corresponds to [accesses = [|1; 4; 8|]] and
    [gaps = [|2; 3; 4|]] (our [gaps.(0)] is the 1-based position of the
    first access, i.e. the minimum number of leading stages). *)

type t = {
  program : Activermt.Program.t;
  length : int;
  accesses : int array;  (** 0-based positions of memory accesses *)
  gaps : int array;  (** [gaps.(0)] = [accesses.(0) + 1]; for i>0,
                         [gaps.(i)] = [accesses.(i) - accesses.(i-1)] *)
  rts : int option;  (** 0-based position of the first RTS/CRTS *)
}

val analyze : Activermt.Program.t -> t

val lower_bounds : t -> int array
(** 1-based minimal stage for each access (the paper's LB). *)

val upper_bounds : t -> n_stages:int -> ingress:int -> max_passes:int -> int array
(** 1-based maximal logical position of each access given a pipeline of
    [n_stages] per pass and at most [max_passes] passes.  With
    [max_passes = 1] and an RTS present, insertions are conservatively
    bounded so the RTS stays in the ingress pipeline, reproducing the
    paper's example UB = [4 7 11] for Listing 1 with 1 pass / RTS-bound and
    [11 14 18] without the RTS bound. *)

val to_request :
  elastic:bool -> demand_blocks:int array -> t -> Activermt.Packet.request
(** Build the 24-byte allocation-request description: one 3-byte entry per
    access carrying its compact position, minimum gap and block demand.
    @raise Invalid_argument if there are more than 8 accesses or
    [demand_blocks] has the wrong length. *)

val of_request :
  Activermt.Packet.request -> t
(** Reconstruct the switch-side view of the constraints from a request
    (the switch never sees the program itself, only this description).
    The [program] field is a placeholder of NOPs with accesses and RTS at
    the described positions. *)
