(** Program mutants (Section 4.1).

    Because every logical stage exposes the same instruction set, memory
    accesses can be pushed to later stages by inserting NOPs, without
    changing program semantics.  A mutant is one feasible placement of the
    program's memory accesses onto logical positions; the allocator picks
    among mutants to fit the current memory occupancy.

    The "most constrained" policy admits only mutants that add no
    recirculation (and keep any RTS in the ingress pipeline); "least
    constrained" also considers mutants that spill into additional passes,
    trading bandwidth for placement flexibility (Section 6.1). *)

type policy = Most_constrained | Least_constrained

val policy_to_string : policy -> string

type t = {
  shifts : int array;  (** non-decreasing per-access NOP shift *)
  positions : int array;  (** 0-based logical position of each access *)
  stages : int array;  (** 0-based execution stage: position mod n_stages *)
  passes : int;  (** pipeline passes the mutated program needs *)
  port_recirc : bool;  (** RTS lands outside ingress, costing one more pass *)
}

val base_passes : Rmt.Params.t -> Spec.t -> int
(** Passes the compact (unshifted) program needs. *)

val max_passes_of_policy : Rmt.Params.t -> Spec.t -> policy -> int
(** Most-constrained allows exactly the base passes (no *additional*
    recirculation); least-constrained allows one extra pass, bounded by
    the device recirculation limit. *)

val enumerate : ?limit:int -> Rmt.Params.t -> policy -> Spec.t -> t list
(** Mutants under the policy, in systematic (lexicographic shift) order —
    the order "first fit" picks from.  When the feasibility region exceeds
    [limit] (default 4096) an even, deterministic stride through the
    sequence is returned instead of a lexicographic prefix, so candidates
    stay diverse and client-side synthesis reproduces the same list.
    A program with no memory access yields the single identity mutant.

    Fast path: one DFS walk buffers candidates while counting (spaces up
    to 64k placements never walk twice), and the feasible-space count is
    memoized per shift-headroom shape, so any repeated shape — across
    allocator instances too — materializes in a single pass.  The
    candidate list is bit-identical to [enumerate_reference]. *)

val enumerate_reference : ?limit:int -> Rmt.Params.t -> policy -> Spec.t -> t list
(** The seed's two-pass (count, then materialize) enumeration, kept as the
    oracle for property tests; [enumerate] must return exactly this list. *)

val count : ?limit:int -> Rmt.Params.t -> policy -> Spec.t -> int

val identity : Spec.t -> t
(** The compact, unshifted placement. *)

val synthesize : Spec.t -> t -> Activermt.Program.t
(** Materialize the mutant: insert NOPs immediately before each shifted
    access so the accesses land on [positions]. *)

val demand_by_stage : t -> demand_blocks:int array -> (int * int) list
(** Fold per-access block demands into per-stage demands, sorted by
    stage.  Accesses of a recirculated program that revisit a stage share
    the app's single region there, so demands merge by [max]. *)

val demand_by_stage_arrays : t -> demand_blocks:int array -> int array * int array
(** [demand_by_stage] as parallel flat [(stages, demands)] arrays sorted
    by stage, allocation-light for the allocator's per-mutant scoring. *)
