type policy = Most_constrained | Least_constrained

let policy_to_string = function
  | Most_constrained -> "most-constrained"
  | Least_constrained -> "least-constrained"

type t = {
  shifts : int array;
  positions : int array;
  stages : int array;
  passes : int;
  port_recirc : bool;
}

(* "Most constrained" adds no recirculation beyond what the compact
   program already needs; "least constrained" allows one more pass. *)
let base_passes params (spec : Spec.t) =
  let n = params.Rmt.Params.logical_stages in
  max 1 ((spec.Spec.length + n - 1) / n)

let max_passes_of_policy params spec = function
  | Most_constrained -> base_passes params spec
  | Least_constrained ->
    min (base_passes params spec + 1) (params.Rmt.Params.recirc_limit + 1)

(* The RTS is shifted by insertions that happen before it, i.e. by the
   shift of the last access at or before its position. *)
let rts_shift (spec : Spec.t) shifts =
  match spec.Spec.rts with
  | None -> 0
  | Some r ->
    let s = ref 0 in
    Array.iteri (fun i a -> if a <= r then s := shifts.(i)) spec.Spec.accesses;
    !s

let build params (spec : Spec.t) shifts =
  let n = params.Rmt.Params.logical_stages in
  let ingress = params.Rmt.Params.ingress_stages in
  let m = Array.length shifts in
  let positions = Array.init m (fun i -> spec.Spec.accesses.(i) + shifts.(i)) in
  let stages = Array.map (fun p -> p mod n) positions in
  let total_len =
    spec.Spec.length + if m = 0 then 0 else shifts.(m - 1)
  in
  let passes = max 1 ((total_len + n - 1) / n) in
  let port_recirc =
    match spec.Spec.rts with
    | None -> false
    | Some r -> (r + rts_shift spec shifts) mod n >= ingress
  in
  { shifts; positions; stages; passes; port_recirc }

let identity spec =
  (* Parameters only affect stage mapping; use defaults for the compact
     placement and recompute under real parameters at enumeration time. *)
  build Rmt.Params.default spec (Array.make (Array.length spec.Spec.accesses) 0)

(* The feasibility region can be huge (hundreds of thousands of
   non-decreasing shift vectors for long recirculating programs), so the
   systematic search is capped at [limit] candidates.  A plain
   lexicographic prefix would only ever vary the last accesses, starving
   the allocator of genuinely different placements, so when the space
   exceeds the cap we take an even stride through the lexicographic
   sequence — deterministic, so the client-side synthesis enumerates the
   exact same candidate list. *)
let dfs ~ub ~lb ~m ~visit =
  let shifts = Array.make m 0 in
  let rec go i prev_shift =
    if i = m then visit shifts
    else begin
      let max_shift = ub.(i) - lb.(i) in
      let s = ref prev_shift in
      let continue = ref true in
      while !continue && !s <= max_shift do
        shifts.(i) <- !s;
        continue := go (i + 1) !s;
        incr s
      done;
      !continue
    end
  in
  if m = 0 then ignore (visit [||]) else ignore (go 0 0)

let hard_cap = 2_000_000

let bounds params policy (spec : Spec.t) =
  let n = params.Rmt.Params.logical_stages in
  let ingress = params.Rmt.Params.ingress_stages in
  let max_passes = max_passes_of_policy params spec policy in
  let ub = Spec.upper_bounds spec ~n_stages:n ~ingress ~max_passes in
  let lb = Spec.lower_bounds spec in
  (ub, lb)

(* Materialize every stride-th candidate of the lexicographic sequence. *)
let materialize ~stride ~limit params spec ~ub ~lb ~m =
  let acc = ref [] in
  let idx = ref 0 in
  let kept = ref 0 in
  dfs ~ub ~lb ~m ~visit:(fun shifts ->
      if !idx mod stride = 0 then begin
        acc := build params spec (Array.copy shifts) :: !acc;
        incr kept
      end;
      incr idx;
      !idx < hard_cap && !kept < limit);
  List.rev !acc

(* The seed's two-pass enumeration, kept verbatim as the oracle the
   property tests hold the single-pass version to. *)
let enumerate_reference ?(limit = 4096) params policy (spec : Spec.t) =
  let m = Array.length spec.Spec.accesses in
  if m = 0 then [ build params spec [||] ]
  else begin
    let ub, lb = bounds params policy spec in
    (* Pass 1: count the feasible placements (no allocation). *)
    let total = ref 0 in
    dfs ~ub ~lb ~m ~visit:(fun _ ->
        incr total;
        !total < hard_cap);
    let total = !total in
    let stride = if total <= limit then 1 else (total + limit - 1) / limit in
    (* Pass 2: materialize every stride-th candidate. *)
    materialize ~stride ~limit params spec ~ub ~lb ~m
  end

(* The DFS tree — and so the feasible-space count — depends only on the
   per-access shift headroom [ub - lb], so counts are memoized on that
   shape across allocator instances (the evaluation harness builds a fresh
   allocator per trial but replays the same programs).  Guarded by a mutex
   because allocators may score mutants from several domains. *)
let count_memo : (int array, int) Hashtbl.t = Hashtbl.create 64
let count_memo_mutex = Mutex.create ()

let shape_of ~ub ~lb ~m = Array.init m (fun i -> ub.(i) - lb.(i))

let memo_find shape =
  Mutex.protect count_memo_mutex (fun () -> Hashtbl.find_opt count_memo shape)

let memo_add shape total =
  Mutex.protect count_memo_mutex (fun () -> Hashtbl.replace count_memo shape total)

(* Cold enumerations buffer candidates while counting so spaces up to
   [keep_cap] need no second DFS walk; bigger spaces fall back to a
   materialize pass with the now-known stride (and the memoized count makes
   every later enumeration of the shape single-pass). *)
let keep_cap = 65_536

let enumerate ?(limit = 4096) params policy (spec : Spec.t) =
  let m = Array.length spec.Spec.accesses in
  if m = 0 then [ build params spec [||] ]
  else begin
    let ub, lb = bounds params policy spec in
    let shape = shape_of ~ub ~lb ~m in
    match memo_find shape with
    | Some total ->
      let stride = if total <= limit then 1 else (total + limit - 1) / limit in
      materialize ~stride ~limit params spec ~ub ~lb ~m
    | None ->
      let cap = max limit keep_cap in
      let buf = ref [] in
      let buffered = ref 0 in
      let overflow = ref false in
      let total = ref 0 in
      dfs ~ub ~lb ~m ~visit:(fun shifts ->
          if not !overflow then begin
            if !buffered < cap then begin
              buf := Array.copy shifts :: !buf;
              incr buffered
            end
            else begin
              overflow := true;
              buf := []
            end
          end;
          incr total;
          !total < hard_cap);
      let total = !total in
      memo_add shape total;
      let stride = if total <= limit then 1 else (total + limit - 1) / limit in
      if !overflow then materialize ~stride ~limit params spec ~ub ~lb ~m
      else begin
        (* Single pass: the buffer holds the whole space in reverse
           lexicographic order; keep every stride-th, as pass 2 would. *)
        let out = ref [] in
        List.iteri
          (fun rev_i shifts ->
            let idx = total - 1 - rev_i in
            if idx mod stride = 0 && idx / stride < limit then
              out := build params spec shifts :: !out)
          !buf;
        !out
      end
  end

let count ?limit params policy spec =
  List.length (enumerate ?limit params policy spec)

let synthesize (spec : Spec.t) t =
  let m = Array.length t.shifts in
  let insert_before = Hashtbl.create 8 in
  for i = 0 to m - 1 do
    let prev = if i = 0 then 0 else t.shifts.(i - 1) in
    let nops = t.shifts.(i) - prev in
    if nops > 0 then Hashtbl.replace insert_before spec.Spec.accesses.(i) nops
  done;
  let out = ref [] in
  Array.iteri
    (fun idx line ->
      (match Hashtbl.find_opt insert_before idx with
      | Some nops ->
        for _ = 1 to nops do
          out := Activermt.Program.line Activermt.Instr.Nop :: !out
        done
      | None -> ());
      out := line :: !out)
    spec.Spec.program.Activermt.Program.lines;
  Activermt.Program.v
    ~name:(spec.Spec.program.Activermt.Program.name ^ "+mutant")
    (List.rev !out)

(* Accesses that land on the same stage (recirculating programs) share
   the app's single region there, so the stage needs the largest of
   their demands — e.g. the heavy hitter's threshold read and write.
   Programs carry at most 8 accesses, so the merge is a pair of flat
   arrays with insertion sort: no hashtable, no list, suitable for the
   allocator's per-mutant scoring loop. *)
let demand_by_stage_arrays t ~demand_blocks =
  let m = Array.length t.stages in
  if Array.length demand_blocks <> m then
    invalid_arg "Mutant.demand_by_stage: demand length mismatch";
  let stages = Array.make m 0 in
  let demands = Array.make m 0 in
  let k = ref 0 in
  for i = 0 to m - 1 do
    let s = t.stages.(i) in
    let j = ref (-1) in
    for q = 0 to !k - 1 do
      if stages.(q) = s then j := q
    done;
    if !j >= 0 then demands.(!j) <- max demands.(!j) demand_blocks.(i)
    else begin
      (* insert keeping [stages] sorted *)
      let p = ref !k in
      while !p > 0 && stages.(!p - 1) > s do
        stages.(!p) <- stages.(!p - 1);
        demands.(!p) <- demands.(!p - 1);
        decr p
      done;
      stages.(!p) <- s;
      demands.(!p) <- demand_blocks.(i);
      incr k
    end
  done;
  if !k = m then (stages, demands)
  else (Array.sub stages 0 !k, Array.sub demands 0 !k)

let demand_by_stage t ~demand_blocks =
  let stages, demands = demand_by_stage_arrays t ~demand_blocks in
  Array.to_list (Array.mapi (fun i s -> (s, demands.(i))) stages)
