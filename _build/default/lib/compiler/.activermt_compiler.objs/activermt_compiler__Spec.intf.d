lib/compiler/spec.mli: Activermt
