lib/compiler/mutant.ml: Activermt Array Hashtbl List Mutex Rmt Spec
