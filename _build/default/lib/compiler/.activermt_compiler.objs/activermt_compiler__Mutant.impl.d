lib/compiler/mutant.ml: Activermt Array Hashtbl List Option Rmt Spec
