lib/compiler/mutant.mli: Activermt Rmt Spec
