lib/compiler/spec.ml: Activermt Array List
