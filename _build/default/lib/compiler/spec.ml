type t = {
  program : Activermt.Program.t;
  length : int;
  accesses : int array;
  gaps : int array;
  rts : int option;
}

let analyze program =
  let accesses = Array.of_list (Activermt.Program.memory_access_positions program) in
  let gaps =
    Array.mapi
      (fun i a -> if i = 0 then a + 1 else a - accesses.(i - 1))
      accesses
  in
  {
    program;
    length = Activermt.Program.length program;
    accesses;
    gaps;
    rts = Activermt.Program.rts_position program;
  }

let lower_bounds t = Array.map (fun a -> a + 1) t.accesses

let upper_bounds t ~n_stages ~ingress ~max_passes =
  let m = Array.length t.accesses in
  if m = 0 then [||]
  else begin
    let max_pos = n_stages * max_passes in
    let ub = Array.make m 0 in
    let p i = t.accesses.(i) + 1 in
    ub.(m - 1) <- max_pos - (t.length - p (m - 1));
    for i = m - 2 downto 0 do
      ub.(i) <- ub.(i + 1) - t.gaps.(i + 1)
    done;
    (* When confined to a single pass, keep any RTS within the ingress
       pipeline by bounding the total shift (see DESIGN.md: the paper's
       UB = [4 7 11] example for Listing 1). *)
    (match t.rts with
    | Some r when max_passes = 1 && r + 1 <= ingress ->
      let max_shift = ingress - (r + 1) in
      for i = 0 to m - 1 do
        ub.(i) <- min ub.(i) (p i + max_shift)
      done;
      for i = m - 2 downto 0 do
        ub.(i) <- min ub.(i) (ub.(i + 1) - t.gaps.(i + 1))
      done
    | Some _ | None -> ());
    ub
  end

let to_request ~elastic ~demand_blocks t =
  let m = Array.length t.accesses in
  if m > 8 then invalid_arg "Spec.to_request: more than 8 memory accesses";
  if Array.length demand_blocks <> m then
    invalid_arg "Spec.to_request: demand_blocks length mismatch";
  ignore elastic;
  let access i =
    {
      Activermt.Packet.position = t.accesses.(i);
      min_gap = t.gaps.(i);
      demand_blocks = demand_blocks.(i);
    }
  in
  {
    Activermt.Packet.prog_length = t.length;
    rts_position = t.rts;
    accesses = List.init m access;
  }

let of_request (r : Activermt.Packet.request) =
  let accesses =
    Array.of_list (List.map (fun a -> a.Activermt.Packet.position) r.accesses)
  in
  let gaps =
    Array.of_list (List.map (fun a -> a.Activermt.Packet.min_gap) r.accesses)
  in
  let lines =
    List.init r.prog_length (fun i ->
        let is_access = Array.exists (fun a -> a = i) accesses in
        let instr =
          if is_access then Activermt.Instr.Mem_read
          else if r.rts_position = Some i then Activermt.Instr.Rts
          else Activermt.Instr.Nop
        in
        Activermt.Program.line instr)
  in
  {
    program = Activermt.Program.v ~name:"request" lines;
    length = r.prog_length;
    accesses;
    gaps;
    rts = r.rts_position;
  }
