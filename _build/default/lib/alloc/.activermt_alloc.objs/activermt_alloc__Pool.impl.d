lib/alloc/pool.ml: Array List Printf
