lib/alloc/netvrm.ml: Hashtbl List Rmt
