lib/alloc/netvrm.mli: Rmt
