lib/alloc/allocator.ml: Activermt Array Hashtbl Import List Mutant Option Pool Printf Rmt Spec Stdx Unix
