lib/alloc/allocator.mli: Activermt Import Mutant Pool Rmt Spec
