lib/alloc/pool.mli:
