lib/alloc/import.ml: Activermt_compiler
