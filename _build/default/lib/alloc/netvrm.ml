type app = { demand : int; pages : int; page_blocks : int }

type t = {
  params : Rmt.Params.t;
  usable_blocks : int;  (* per stage, after virtualization overhead *)
  page_sizes : int list;  (* ascending, blocks *)
  registered : string list;
  apps : (int, app) Hashtbl.t;
}

let create ?(availability = Rmt.Resource.netvrm_availability)
    ?(page_blocks = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ])
    ?(registered = [ "cache"; "heavy-hitter"; "load-balancer" ]) params =
  if page_blocks = [] then invalid_arg "Netvrm.create: empty page-size set";
  {
    params;
    usable_blocks =
      int_of_float (availability *. float_of_int params.Rmt.Params.blocks_per_stage);
    page_sizes = List.sort compare page_blocks;
    registered;
    apps = Hashtbl.create 64;
  }

type outcome =
  | Granted of { pages : int; page_blocks : int; waste_blocks : int }
  | Rejected_capacity
  | Rejected_unregistered

let reserved_blocks t =
  Hashtbl.fold (fun _ a acc -> acc + (a.pages * a.page_blocks)) t.apps 0

let admit t ~fid ~app_type ~demand_blocks =
  if not (List.mem app_type t.registered) then Rejected_unregistered
  else if demand_blocks <= 0 then invalid_arg "Netvrm.admit: demand must be positive"
  else begin
    (* Smallest page size (possibly several pages of it) covering the
       demand; NetVRM pages are uniform per allocation. *)
    let page_blocks =
      match List.find_opt (fun p -> p >= demand_blocks) t.page_sizes with
      | Some p -> p
      | None -> List.fold_left max 1 t.page_sizes
    in
    let pages = (demand_blocks + page_blocks - 1) / page_blocks in
    let total = pages * page_blocks in
    if reserved_blocks t + total > t.usable_blocks then Rejected_capacity
    else begin
      Hashtbl.replace t.apps fid { demand = demand_blocks; pages; page_blocks };
      Granted { pages; page_blocks; waste_blocks = total - demand_blocks }
    end
  end

let depart t ~fid =
  let had = Hashtbl.mem t.apps fid in
  Hashtbl.remove t.apps fid;
  had

let utilization t =
  let useful = Hashtbl.fold (fun _ a acc -> acc + a.demand) t.apps 0 in
  float_of_int useful /. float_of_int t.params.Rmt.Params.blocks_per_stage

let gross_utilization t =
  float_of_int (reserved_blocks t)
  /. float_of_int t.params.Rmt.Params.blocks_per_stage

let residents t = Hashtbl.length t.apps

let waste_blocks t =
  Hashtbl.fold (fun _ a acc -> acc + ((a.pages * a.page_blocks) - a.demand)) t.apps 0
