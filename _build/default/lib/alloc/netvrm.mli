(** A NetVRM-style baseline allocator (the closest prior system,
    Sections 2.3-2.4 and 5), for head-to-head comparison with ActiveRMT's
    allocator.

    Modeled after the paper's critique of NetVRM [47]:
    - register memory is virtualized behind page-based address
      translation whose overhead leaves **less than half** of each
      stage's match-action resources usable by applications;
    - page sizes come from a **fixed set of powers of two chosen at
      compile time**, so demands round up (internal fragmentation);
    - allocation is **coarse-grained across stages** — an application
      cannot be placed per stage, it receives the same share of every
      stage's (virtualized) pool;
    - the application set is **pre-compiled**: only registered app types
      can arrive at runtime.

    This is a deliberately simplified model: it reproduces the
    granularity and overhead characteristics the paper compares against,
    not NetVRM's utility-gradient policy. *)

type t

val create :
  ?availability:float ->
  ?page_blocks:int list ->
  ?registered:string list ->
  Rmt.Params.t ->
  t
(** [availability] defaults to [Rmt.Resource.netvrm_availability] (0.45);
    [page_blocks] is the compile-time page-size set in blocks (default
    powers of two 1..256); [registered] is the pre-compiled app-type set
    (default: the paper's three services). *)

type outcome =
  | Granted of { pages : int; page_blocks : int; waste_blocks : int }
      (** per-stage pages granted and internal fragmentation *)
  | Rejected_capacity
  | Rejected_unregistered
      (** app type not in the compile-time image: deploying it means a
          recompile, which this baseline cannot do at runtime *)

val admit : t -> fid:int -> app_type:string -> demand_blocks:int -> outcome
(** [demand_blocks] is the app's per-stage demand; it rounds up to the
    smallest fitting page size and is charged against every stage. *)

val depart : t -> fid:int -> bool

val utilization : t -> float
(** Useful blocks (pre-rounding demand) over the device's raw capacity —
    directly comparable with [Allocator.utilization]. *)

val gross_utilization : t -> float
(** Blocks actually reserved (pages + overhead) over raw capacity. *)

val residents : t -> int
val waste_blocks : t -> int
(** Total internal fragmentation across residents (per stage). *)
