(* activermt — command-line front end.

   Subcommands:
     asm      assemble an active program and print its bytecode + analysis
     disasm   decode instruction bytes (hex) back to assembly
     mutants  show the mutant space of a program under a policy
     allocsim replay a comma-separated arrival list against the allocator
              (sequentially or in admission batches with --batch)
     churnsim Zipf client churn through the batched epoch admission pipeline
     tenantsim multi-tenant noisy-neighbor scenario (quotas, WRR, preemption)
     fleetsim replay a service workload against a multi-switch fleet
              (mesh/line/star/fat-tree/leaf-spine; --batch, --flap,
              --pod-fail, --summary-out)
     routecheck incremental-router equivalence vs the Floyd-Warshall oracle
     faultsim run the protocol stack under a seeded fault profile
     healthcheck run the health-plane scenario, evaluate SLOs/watchdogs,
              exit non-zero on a page (--report-out, --inject-flap-storm)
     fleettop render a per-switch/per-tenant dashboard from a --series-out
              dump or a healthcheck report
     tracequery filter and render a Chrome trace dump as causal trees
     apps     print the bundled example services *)

module Spec = Activermt_compiler.Spec
module Mutant = Activermt_compiler.Mutant
module Allocator = Activermt_alloc.Allocator
module App = Activermt_apps.App
module Telemetry = Activermt_telemetry.Telemetry
module Timeseries = Activermt_telemetry.Timeseries
module Trace = Activermt_telemetry.Trace
module Json = Activermt_telemetry.Json

(* Shared by the subcommands that record telemetry (allocsim, trace):
   dump the default registry as JSON once the command finishes. *)
let write_metrics = function
  | None -> ()
  | Some path ->
    Telemetry.write_json Telemetry.default ~path;
    Printf.printf "wrote telemetry to %s\n" path

(* Shared by the five sim subcommands: --series-out enables a windowed
   time-series registry (virtual-clock buckets; see Timeseries) and
   dumps it as JSON when the command finishes.  Without the flag the
   registry is [Timeseries.noop] and the run is bit-identical to a
   recording-free build.  Each sim wires the clock that makes sense for
   it: churnsim/tenantsim/faultsim record on their modeled or simulated
   clocks; allocsim and fleetsim tick one bucket per admission epoch. *)
let make_series ?bucket_s ?capacity ?now = function
  | None -> Timeseries.noop
  | Some _ -> Timeseries.create ?bucket_s ?capacity ?now ()

let write_series series = function
  | None -> ()
  | Some path ->
    Timeseries.write_json series ~path;
    Printf.printf "wrote %d series to %s\n"
      (List.length (Timeseries.names series))
      path

(* Every simulation dump carries the jit.* stats lines — even commands
   (or runs) that never execute a capsule — so metric files from runs
   with and without --no-jit stay line-comparable.  Commands that build a
   fabric get the seeding from [Jit.create]; allocsim (control plane
   only) seeds here. *)
let seed_jit_metrics ~enabled =
  List.iter
    (fun c -> Telemetry.incr Telemetry.default ~by:0 c)
    [ "jit.compile"; "jit.hit"; "jit.miss"; "jit.invalidate" ];
  Telemetry.set_gauge Telemetry.default "jit.enabled"
    (if enabled then 1.0 else 0.0)

(* Shared by the simulation subcommands: --trace-out enables the flight
   recorder (head sampling at --trace-sample) and dumps Chrome trace JSON
   when the command finishes.  Without --trace-out the tracer is
   [Trace.noop] and the run is bit-identical to an untraced build. *)
let make_tracer trace_out sample =
  match trace_out with
  | None -> Trace.noop
  | Some _ -> Trace.create ~sample ()

let write_trace tracer = function
  | None -> ()
  | Some path ->
    Trace.write_chrome tracer path;
    Printf.printf "wrote %d trace events to %s\n"
      (List.length (Trace.events tracer))
      path

let params = Rmt.Params.default

let read_program path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match Activermt.Program.parse ~name:(Filename.basename path) text with
  | Ok p -> p
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    exit 1

let hex_of_bytes b =
  String.concat " "
    (List.init (Bytes.length b) (fun i -> Printf.sprintf "%02x" (Bytes.get_uint8 b i)))

let print_analysis program =
  let spec = Spec.analyze program in
  Printf.printf "instructions: %d\n" spec.Spec.length;
  Printf.printf "memory accesses (0-based): [%s]\n"
    (String.concat "; " (List.map string_of_int (Array.to_list spec.Spec.accesses)));
  Printf.printf "minimum gaps: [%s]\n"
    (String.concat "; " (List.map string_of_int (Array.to_list spec.Spec.gaps)));
  (match spec.Spec.rts with
  | Some r -> Printf.printf "RTS at %d (ingress-constrained)\n" r
  | None -> print_endline "no RTS");
  List.iter
    (fun (policy, name) ->
      Printf.printf "mutants (%s): %d\n" name (Mutant.count params policy spec))
    [ (Mutant.Most_constrained, "most-constrained");
      (Mutant.Least_constrained, "least-constrained") ]

let cmd_asm path =
  let program = read_program path in
  print_string (Activermt.Program.to_assembly program);
  Printf.printf "\nbytecode (%d bytes incl. EOF):\n%s\n"
    (2 * (Activermt.Program.length program + 1))
    (hex_of_bytes (Activermt.Wire.encode_program program));
  print_newline ();
  print_analysis program

and cmd_disasm hex =
  let clean =
    String.concat "" (String.split_on_char ' ' (String.trim hex))
  in
  if String.length clean mod 4 <> 0 then begin
    Printf.eprintf "error: expected pairs of 2-byte instruction headers\n";
    exit 1
  end;
  let bytes = Bytes.create (String.length clean / 2) in
  (try
     for i = 0 to Bytes.length bytes - 1 do
       Bytes.set_uint8 bytes i (int_of_string ("0x" ^ String.sub clean (2 * i) 2))
     done
   with Failure _ ->
     Printf.eprintf "error: invalid hex\n";
     exit 1);
  match Activermt.Wire.decode_program bytes ~off:0 with
  | Ok (program, _marks, _end) -> print_string (Activermt.Program.to_assembly program)
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    exit 1

and cmd_mutants path policy =
  let program = read_program path in
  let spec = Spec.analyze program in
  let mutants = Mutant.enumerate params policy spec in
  Printf.printf "%d mutants (%s)\n" (List.length mutants)
    (Mutant.policy_to_string policy);
  List.iteri
    (fun i m ->
      if i < 50 then
        Printf.printf "  #%d stages=[%s] passes=%d%s\n" i
          (String.concat ";" (List.map string_of_int (Array.to_list m.Mutant.stages)))
          m.Mutant.passes
          (if m.Mutant.port_recirc then " +port-recirc" else ""))
    mutants;
  if List.length mutants > 50 then print_endline "  ..."

and cmd_allocsim spec_str mixed seed batch scheme policy domains no_jit
    metrics_out series_out trace_out trace_sample =
  (* allocsim exercises only the control plane; the flag is accepted for
     symmetry with the other sim commands and recorded in the metrics. *)
  seed_jit_metrics ~enabled:(not no_jit);
  if batch < 1 then begin
    Printf.eprintf "error: --batch must be >= 1\n";
    exit 1
  end;
  let tracer = make_tracer trace_out trace_sample in
  (* The series clock ticks one bucket per admission epoch (per arrival
     on the sequential path), so the dump shows admission outcomes over
     epochs rather than one flat bucket. *)
  let vclock = ref 0.0 in
  let series = make_series ~now:(fun () -> !vclock) series_out in
  let alloc = Allocator.create ~scheme ~policy ~domains ~series ~tracer params in
  let next_fid = ref 0 in
  let service_of = function
    | "cache" -> Some Activermt_apps.Cache.service
    | "hh" | "heavy-hitter" -> Some Activermt_apps.Heavy_hitter.service
    | "lb" | "load-balancer" -> Some Activermt_apps.Cheetah_lb.service
    | "counter" | "flow-counter" -> Some Activermt_apps.Counter.service
    | "bloom" | "bloom-filter" -> Some Activermt_apps.Bloom.service
    | _ -> None
  in
  let named =
    String.split_on_char ',' spec_str
    |> List.concat_map (fun name ->
           let name = String.trim name in
           if name = "" then []
           else
             match service_of name with
             | None ->
               Printf.printf "?? unknown app %S (use cache|hh|lb|counter|bloom)\n"
                 name;
               []
             | Some app ->
               incr next_fid;
               [
                 ( name,
                   {
                     Allocator.fid = !next_fid;
                     spec = App.spec app;
                     elastic = app.App.elastic;
                     demand_blocks = app.App.demand_blocks;
                   } );
               ])
  in
  (* --mixed appends a seeded uniform-mix arrival stream (Figure 5b's
     shape) so batch-vs-sequential comparisons exercise enough load to
     see both admissions and rejections. *)
  let generated =
    match mixed with
    | None -> []
    | Some n ->
      let module Churn = Workload.Churn in
      let block_bytes = Rmt.Params.bytes_per_block params in
      Churn.mixed_arrivals ~n (Stdx.Prng.create ~seed)
      |> List.concat_map (fun (e : Churn.epoch) ->
             List.filter_map
               (function
                 | Churn.Arrive { fid = _; kind; _ } ->
                   incr next_fid;
                   Some
                     ( Churn.kind_to_string kind,
                       Experiments.Harness.arrival_of ~fid:!next_fid kind
                         ~block_bytes )
                 | Churn.Depart _ -> None)
               e.Churn.events)
  in
  let arrivals = named @ generated in
  let report name fid = function
    | Allocator.Admitted adm ->
      Printf.printf
        "fid %d (%s): admitted; stages %s; reallocated %d apps; %.2f ms\n" fid
        name
        (String.concat ","
           (List.map
              (fun r -> string_of_int r.Allocator.stage)
              adm.Allocator.regions))
        (List.length adm.Allocator.reallocated)
        (1000.0 *. adm.Allocator.compute_time_s)
    | Allocator.Rejected r ->
      Printf.printf "fid %d (%s): REJECTED after %d mutants (%.2f ms)\n" fid
        name r.Allocator.considered_mutants
        (1000.0 *. r.Allocator.compute_time_s)
  in
  if batch = 1 then
    (* The pre-batching sequential path, one admit per arrival: the
       reference side of the batch-decision-identity smoke. *)
    List.iter
      (fun (name, (a : Allocator.arrival)) ->
        let trace =
          Trace.start_trace tracer
            ~attrs:[ ("fid", string_of_int a.Allocator.fid); ("app", name) ]
            "allocsim.arrival"
        in
        report name a.Allocator.fid (Allocator.admit ?trace alloc a);
        vclock := !vclock +. 1.0)
      arrivals
  else begin
    (* Chunk the arrival stream into epochs of [batch] and admit each
       through the batched pipeline. *)
    let rec chunks = function
      | [] -> []
      | l ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> take (n - 1) (x :: acc) rest
        in
        let c, rest = take batch [] l in
        c :: chunks rest
    in
    let epochs = ref 0 in
    let memo_hits = ref 0 and rescored = ref 0 in
    let stage_refills = ref 0 and refills_saved = ref 0 in
    List.iter
      (fun chunk ->
        incr epochs;
        let trace =
          Trace.start_trace tracer
            ~attrs:
              [
                ("epoch", string_of_int !epochs);
                ("batch", string_of_int (List.length chunk));
              ]
            "allocsim.epoch"
        in
        let b = Allocator.admit_batch ?trace alloc (List.map snd chunk) in
        List.iter2
          (fun (name, (a : Allocator.arrival)) o ->
            report name a.Allocator.fid o)
          chunk b.Allocator.outcomes;
        let s = b.Allocator.stats in
        memo_hits := !memo_hits + s.Allocator.memo_hits;
        rescored := !rescored + s.Allocator.rescored;
        stage_refills := !stage_refills + s.Allocator.stage_refills;
        refills_saved := !refills_saved + s.Allocator.refills_saved;
        vclock := !vclock +. 1.0)
      (chunks arrivals);
    Printf.printf
      "batch stats: %d epochs of <= %d, %d memo hits, %d rescored, %d stage \
       refills (%d saved)\n"
      !epochs batch !memo_hits !rescored !stage_refills !refills_saved
  end;
  Printf.printf "final utilization: %.3f\n" (Allocator.utilization alloc);
  write_metrics metrics_out;
  write_series series series_out;
  write_trace tracer trace_out

and cmd_churnsim clients batch resident seed summary_out metrics_out series_out
    trace_out trace_sample =
  seed_jit_metrics ~enabled:true;
  let module Churn = Workload.Churn in
  let module Churn_pipeline = Experiments.Churn_pipeline in
  let tracer = make_tracer trace_out trace_sample in
  (* The pipeline rewires the registry clock to its modeled epoch clock. *)
  let series = make_series series_out in
  let zcfg =
    { Churn.default_zipf_config with Churn.clients; batch; resident_target = resident }
  in
  let r = Churn_pipeline.run ~tracer ~series ~params ~seed zcfg in
  (* Deterministic stdout: counts and the modeled virtual clock only — no
     wall-clock numbers — so two same-seed runs print (and with
     --summary-out / --trace-out, dump) byte-identical artifacts for the
     CI determinism job to [cmp]. *)
  Printf.printf "churnsim: %d clients, batch %d, resident target %d, seed %d\n"
    clients batch resident seed;
  Printf.printf "epochs %d: admitted %d, rejected %d, rescored %d, memo hits %d\n"
    r.Churn_pipeline.epochs r.Churn_pipeline.admitted r.Churn_pipeline.rejected
    r.Churn_pipeline.rescored r.Churn_pipeline.memo_hits;
  Printf.printf
    "fills: %d stage refills (%d saved); %d departures; %d residents (util %.3f)\n"
    r.Churn_pipeline.stage_refills r.Churn_pipeline.refills_saved
    r.Churn_pipeline.departures r.Churn_pipeline.final_residents
    r.Churn_pipeline.final_utilization;
  Printf.printf
    "modeled: %.6f s span, %.1f arrivals/s; tts p50 %.3f ms, p99 %.3f ms, max %.3f ms\n"
    r.Churn_pipeline.modeled_span_s r.Churn_pipeline.modeled_arrivals_per_sec
    r.Churn_pipeline.p50_tts_ms r.Churn_pipeline.p99_tts_ms
    r.Churn_pipeline.max_tts_ms;
  (match summary_out with
  | None -> ()
  | Some path ->
    let num v = Json.Num v in
    let int v = Json.Num (float_of_int v) in
    let summary =
      Json.Obj
        [
          ("clients", int clients);
          ("batch", int batch);
          ("resident_target", int resident);
          ("seed", int seed);
          ("epochs", int r.Churn_pipeline.epochs);
          ("admitted", int r.Churn_pipeline.admitted);
          ("rejected", int r.Churn_pipeline.rejected);
          ("rescored", int r.Churn_pipeline.rescored);
          ("memo_hits", int r.Churn_pipeline.memo_hits);
          ("stage_refills", int r.Churn_pipeline.stage_refills);
          ("refills_saved", int r.Churn_pipeline.refills_saved);
          ("departures", int r.Churn_pipeline.departures);
          ("final_residents", int r.Churn_pipeline.final_residents);
          ("final_utilization", num r.Churn_pipeline.final_utilization);
          ("modeled_span_s", num r.Churn_pipeline.modeled_span_s);
          ("modeled_arrivals_per_sec", num r.Churn_pipeline.modeled_arrivals_per_sec);
          ("p50_tts_ms", num r.Churn_pipeline.p50_tts_ms);
          ("p99_tts_ms", num r.Churn_pipeline.p99_tts_ms);
          ("max_tts_ms", num r.Churn_pipeline.max_tts_ms);
        ]
    in
    let oc = open_out path in
    output_string oc (Json.to_string ~pretty:true summary);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote churn summary to %s\n" path);
  write_metrics metrics_out;
  write_series series series_out;
  write_trace tracer trace_out

and cmd_fleetsim switches topo_kind k ft_pods leaves spines policy arrivals
    batch seed fail_sw pod_fail flap summary_out no_jit metrics_out series_out
    trace_out trace_sample =
  let module Topology = Activermt_fleet.Topology in
  let module Placement = Activermt_fleet.Placement in
  let module Fleet = Activermt_fleet.Fleet in
  let module Churn = Workload.Churn in
  let topo =
    try
      match topo_kind with
      | `Mesh -> Topology.full_mesh ~switches ~latency_s:1e-5
      | `Line -> Topology.line ~switches ~latency_s:1e-5
      | `Star -> Topology.star ~switches ~latency_s:1e-5
      | `Fat_tree -> (
        match ft_pods with
        | Some pods -> Topology.fat_tree ~pods ~k ()
        | None -> Topology.fat_tree ~k ())
      | `Leaf_spine -> Topology.leaf_spine ~leaves ~spines ()
    with Invalid_argument e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
  in
  (* Fat-tree / leaf-spine fleets derive their own switch count. *)
  let switches = Topology.switches topo in
  (match fail_sw with
  | Some sw when sw < 0 || sw >= switches ->
    Printf.eprintf "error: --fail %d out of range for %d switches\n" sw switches;
    exit 1
  | _ -> ());
  (match pod_fail with
  | Some p when p < 0 || p >= Topology.n_pods topo ->
    Printf.eprintf "error: --pod-fail %d out of range for %d pods\n" p
      (Topology.n_pods topo);
    exit 1
  | _ -> ());
  let tracer = make_tracer trace_out trace_sample in
  (* One series bucket per admission epoch (per arrival when --batch 1). *)
  let vclock = ref 0.0 in
  let series = make_series ~now:(fun () -> !vclock) series_out in
  let fleet = Fleet.create ~policy ~jit:(not no_jit) ~series ~tracer topo in
  let events =
    List.concat_map
      (fun (e : Churn.epoch) ->
        List.filter_map
          (function
            | Churn.Arrive { fid; kind; _ } -> Some (fid, kind)
            | Churn.Depart _ -> None)
          e.Churn.events)
      (Churn.mixed_arrivals ~n:arrivals (Stdx.Prng.create ~seed))
  in
  let topo_name =
    match topo_kind with
    | `Mesh -> "full mesh"
    | `Line -> "line"
    | `Star -> "star"
    | `Fat_tree -> Printf.sprintf "fat-tree k=%d" k
    | `Leaf_spine -> Printf.sprintf "leaf-spine %dx%d" leaves spines
  in
  Printf.printf
    "fleetsim: %d switches (%s, %d pods), %s placement, %d arrivals, seed %d%s\n"
    switches topo_name (Topology.n_pods topo)
    (Placement.policy_to_string policy)
    arrivals seed
    (if batch > 1 then Printf.sprintf ", batched x%d" batch else "");
  let halfway = List.length events / 2 in
  let fail_drill ~after =
    match fail_sw with
    | Some sw when Fleet.is_up fleet ~sw ->
      let { Fleet.relocated; lost } = Fleet.fail_switch fleet ~sw in
      Printf.printf
        "-- switch %d failed after %d arrivals: %d relocated, %d lost\n" sw
        after (List.length relocated) (List.length lost)
    | _ -> ()
  in
  if batch <= 1 then
    (* The sequential admit path, one placement per arrival. *)
    List.iteri
      (fun i (fid, kind) ->
        if i = halfway then fail_drill ~after:i;
        ignore (Fleet.admit fleet ~fid (Experiments.Harness.app_of_kind kind));
        vclock := !vclock +. 1.0)
      events
  else begin
    (* Chunk the arrival stream into epochs of [batch] and push each
       through the fleet's enqueue/drain admission pipeline; the --fail
       drill fires before the epoch that spans the halfway mark. *)
    let rec epochs i = function
      | [] -> ()
      | l ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> take (n - 1) (x :: acc) rest
        in
        let chunk, rest = take batch [] l in
        if i <= halfway && halfway < i + List.length chunk then
          fail_drill ~after:i;
        List.iter
          (fun (fid, kind) ->
            Fleet.enqueue_admission fleet ~fid
              (Experiments.Harness.app_of_kind kind))
          chunk;
        ignore (Fleet.drain_admissions fleet);
        vclock := !vclock +. 1.0;
        epochs (i + List.length chunk) rest
    in
    epochs 0 events
  end;
  (* Link-flap drill against fully built tables: one link of a shortest
     0 -> n-1 path goes down and comes back, and we report how many
     routed (src, dst) pairs each transition's repair touched. *)
  let flap_stats =
    if not flap then None
    else begin
      Topology.build_all_routes topo;
      let routed = Topology.routed_pairs topo in
      match Topology.next_hop topo ~src:0 ~dst:(switches - 1) with
      | None ->
        Printf.printf "link flap: switch 0 cannot reach %d, drill skipped\n"
          (switches - 1);
        None
      | Some b ->
        let s0 = Topology.stats topo in
        ignore (Topology.set_link topo ~a:0 ~b ~up:false);
        let s1 = Topology.stats topo in
        ignore (Topology.set_link topo ~a:0 ~b ~up:true);
        let s2 = Topology.stats topo in
        let down = s1.Topology.pairs_touched - s0.Topology.pairs_touched in
        let up = s2.Topology.pairs_touched - s1.Topology.pairs_touched in
        Printf.printf "link flap 0-%d: %d pairs touched down, %d up, of %d routed\n"
          b down up routed;
        Some (b, down, up, routed)
    end
  in
  (* Rolling pod failure: every live switch of the pod goes down one by
     one, each failure re-placing its residents on the survivors. *)
  let pod_stats =
    match pod_fail with
    | None -> None
    | Some pod ->
      let failed, relocated, lost =
        List.fold_left
          (fun (f, r, l) sw ->
            if Fleet.is_up fleet ~sw then
              let { Fleet.relocated; lost } = Fleet.fail_switch fleet ~sw in
              (f + 1, r + List.length relocated, l + List.length lost)
            else (f, r, l))
          (0, 0, 0)
          (Topology.pod_members topo ~pod)
      in
      Printf.printf
        "-- rolling pod %d failure: %d switches down, %d relocated, %d lost\n"
        pod failed relocated lost;
      Some (failed, relocated, lost)
  in
  (* With tracing on, probe a few resident services from clients homed on
     a different switch: each probe is a head-sampled capsule whose trace
     crosses the inter-switch bridge and executes where the service
     lives, linking data-plane stage events back to the control-plane
     provision span via the [admit.*] attributes. *)
  if Trace.enabled tracer then begin
    let module Memsync = Activermt_apps.Memsync in
    let vflags = { Activermt.Packet.no_flags with virtual_addressing = true } in
    let probed = ref 0 in
    List.iter
      (fun (fid, sw) ->
        if !probed < 8 then
          let alloc =
            Activermt_control.Controller.allocator (Fleet.controller fleet ~sw)
          in
          match Allocator.regions_of alloc ~fid with
          | Some ({ Allocator.stage; _ } :: _) ->
            let home = ref (-1) in
            for s = switches - 1 downto 0 do
              if s <> sw && Fleet.is_up fleet ~sw:s then home := s
            done;
            if !home >= 0 then begin
              incr probed;
              let client = 1000 + fid in
              Fleet.attach_client fleet ~client ~home:!home (fun _ -> ());
              let pkt =
                Activermt.Packet.exec ~flags:vflags ~fid ~seq:0
                  ~args:(Memsync.read_args ~index:0)
                  (Memsync.read_program ~stages:[ stage ])
              in
              Fleet.inject fleet ~client
                (Netsim.Fabric.msg ~src:client ~dst:sw
                   (Netsim.Fabric.Active pkt))
            end
          | Some [] | None -> ())
      (Fleet.residents fleet);
    Netsim.Engine.run (Fleet.engine fleet);
    Printf.printf "trace: probed %d services cross-switch\n" !probed
  end;
  let tel = Telemetry.default in
  if switches <= 64 then begin
    Printf.printf "%-8s %-5s %-10s %-12s\n" "switch" "up" "residents"
      "utilization";
    List.iter
      (fun { Placement.switch; utilization; residents; up } ->
        Printf.printf "%-8d %-5s %-10d %-12.3f\n" switch
          (if up then "yes" else "DOWN")
          residents utilization)
      (Fleet.loads fleet)
  end
  else Printf.printf "(%d switches; per-switch load table suppressed)\n" switches;
  let occupancy =
    match Telemetry.gauge_value tel "fleet.occupancy" with
    | Some v -> v
    | None -> 0.0
  in
  Printf.printf
    "admitted %d  rejected %d  spillover %d  migrated %d  lost %d  occupancy %.3f\n"
    (Telemetry.counter_value tel "fleet.admitted")
    (Telemetry.counter_value tel "fleet.rejected")
    (Telemetry.counter_value tel "fleet.spillover")
    (Telemetry.counter_value tel "fleet.migrated")
    (Telemetry.counter_value tel "fleet.lost")
    occupancy;
  (* Deterministic summary: counts and modeled occupancy only — no wall
     times — so two same-seed runs dump byte-identical files for the CI
     determinism job to [cmp]. *)
  (match summary_out with
  | None -> ()
  | Some path ->
    let int v = Json.Num (float_of_int v) in
    let counter c = int (Telemetry.counter_value tel c) in
    let summary =
      Json.Obj
        ([
           ("topology", Json.Str topo_name);
           ("switches", int switches);
           ("links", int (Topology.n_links topo));
           ("pods", int (Topology.n_pods topo));
           ("policy", Json.Str (Placement.policy_to_string policy));
           ("arrivals", int arrivals);
           ("batch", int batch);
           ("seed", int seed);
           ("admitted", counter "fleet.admitted");
           ("rejected", counter "fleet.rejected");
           ("spillover", counter "fleet.spillover");
           ("migrated", counter "fleet.migrated");
           ("lost", counter "fleet.lost");
           ("adm_epochs", counter "fleet.adm.epochs");
           ("residents", int (List.length (Fleet.residents fleet)));
           ("occupancy", Json.Num occupancy);
         ]
        @ (match flap_stats with
          | None -> []
          | Some (b, down, up, routed) ->
            [
              ("flap_link_peer", int b);
              ("flap_down_touched", int down);
              ("flap_up_touched", int up);
              ("routed_pairs", int routed);
            ])
        @
        match pod_stats with
        | None -> []
        | Some (failed, relocated, lost) ->
          [
            ("pod_failed_switches", int failed);
            ("pod_relocated", int relocated);
            ("pod_lost", int lost);
          ])
    in
    let oc = open_out path in
    output_string oc (Json.to_string ~pretty:true summary);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote fleet summary to %s\n" path);
  for sw = 0 to switches - 1 do
    Activermt.Jit.flush_stats (Netsim.Fabric.jit (Fleet.fabric fleet ~sw))
  done;
  write_metrics metrics_out;
  write_series series series_out;
  write_trace tracer trace_out

and cmd_faultsim services words loss dup corrupt jitter slow_ctl ctl_fail seed
    no_retries no_jit trace metrics_out series_out trace_out trace_sample =
  let module Chaos = Experiments.Chaos in
  let module Faults = Netsim.Faults in
  let profile =
    {
      Faults.drop = loss;
      duplicate = dup;
      corrupt;
      jitter_s = jitter;
      flap_period_s = 0.0;
      flap_down_s = 0.0;
      table_update_slowdown = slow_ctl;
      table_update_fail = ctl_fail;
    }
  in
  let cfg =
    {
      Chaos.default_config with
      Chaos.services;
      words;
      seed;
      retries = not no_retries;
      profile;
      jit = not no_jit;
    }
  in
  Printf.printf
    "faultsim: %d services x %d words, seed %d, retries %s, jit %s\n\
     profile: drop %.3f dup %.3f corrupt %.3f jitter %gs ctl x%.1f ctl-fail %.3f\n"
    services words seed
    (if no_retries then "off" else "on")
    (if no_jit then "off" else "on")
    loss dup corrupt jitter slow_ctl ctl_fail;
  let tracer = make_tracer trace_out trace_sample in
  (* Chaos records on the simulation engine's clock (explicit ~t). *)
  let series = make_series series_out in
  let r = Chaos.run ~series ~tracer cfg in
  List.iter
    (fun (fid, o) ->
      Printf.printf "  fid %-3d %s\n" fid (Chaos.outcome_to_string o))
    r.Chaos.outcomes;
  Printf.printf
    "completion %.3f (%d/%d)  nego attempts %d (retries %d)  sync packets %d \
     (rtx %d)  fallback words %d\n"
    r.Chaos.completion r.Chaos.completed services r.Chaos.negotiation_attempts
    r.Chaos.negotiation_retries r.Chaos.sync_packets r.Chaos.sync_retransmits
    r.Chaos.fallback_words;
  Printf.printf "faults injected %d  sim time %.3fs\n" r.Chaos.fault_events
    r.Chaos.sim_time_s;
  if trace then
    List.iter
      (fun e -> Format.printf "%a@." Faults.pp_event e)
      (Faults.events r.Chaos.faults);
  write_metrics metrics_out;
  write_series series series_out;
  write_trace tracer trace_out

and cmd_tracequery path trace_id fid switch name_filter assert_cross =
  let text =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let json =
    match Json.of_string text with
    | Ok j -> j
    | Error e ->
      Printf.eprintf "error: %s: %s\n" path e;
      exit 1
  in
  let raw =
    match Json.member "traceEvents" json with
    | Some (Json.Arr l) -> l
    | _ ->
      Printf.eprintf "error: %s: no traceEvents array\n" path;
      exit 1
  in
  (* Reconstruct events from the Chrome dump: "X" slices carry the span
     triple (numbers) and the attributes (strings) in [args]; "M"
     metadata records are skipped. *)
  let num field obj = Option.bind (Json.member field obj) Json.to_num in
  let events =
    List.filter_map
      (fun ev ->
        match Json.member "ph" ev with
        | Some (Json.Str "X") ->
          let args =
            Option.value (Json.member "args" ev) ~default:(Json.Obj [])
          in
          let iget f =
            match num f args with Some v -> int_of_float v | None -> 0
          in
          let ts = Option.value (num "ts" ev) ~default:0.0 in
          let dur = Option.value (num "dur" ev) ~default:0.0 in
          let attrs =
            match Json.to_obj args with
            | Some kvs ->
              List.filter_map
                (fun (k, v) ->
                  match v with Json.Str s -> Some (k, s) | _ -> None)
                kvs
            | None -> []
          in
          Some
            {
              Trace.trace_id = iget "trace_id";
              span_id = iget "span_id";
              parent_span_id = iget "parent_span_id";
              t_start = ts /. 1e6;
              t_end = (ts +. dur) /. 1e6;
              name =
                (match Json.member "name" ev with
                | Some (Json.Str s) -> s
                | _ -> "");
              attrs;
            }
        | _ -> None)
      raw
  in
  (* Group into whole traces (first-appearance order); each filter keeps
     a trace when *some* event of it satisfies the filter, so the output
     always shows complete causal trees. *)
  let attr k (ev : Trace.event) = List.assoc_opt k ev.Trace.attrs in
  let order = ref [] and groups = Hashtbl.create 64 in
  List.iter
    (fun (ev : Trace.event) ->
      match Hashtbl.find_opt groups ev.Trace.trace_id with
      | Some l -> l := ev :: !l
      | None ->
        Hashtbl.add groups ev.Trace.trace_id (ref [ ev ]);
        order := ev.Trace.trace_id :: !order)
    events;
  let has p evs = List.exists p evs in
  let kept_trace tid evs =
    (match trace_id with None -> true | Some id -> tid = id)
    && (match fid with
       | None -> true
       | Some f -> has (fun e -> attr "fid" e = Some (string_of_int f)) evs)
    && (match switch with
       | None -> true
       | Some s -> has (fun e -> attr "switch" e = Some (string_of_int s)) evs)
    && match name_filter with
       | None -> true
       | Some n -> has (fun (e : Trace.event) -> e.Trace.name = n) evs
  in
  let kept =
    List.filter_map
      (fun tid ->
        let evs = List.rev !(Hashtbl.find groups tid) in
        if kept_trace tid evs then Some evs else None)
      (List.rev !order)
  in
  let kept_events = List.concat kept in
  print_string (Trace.render_tree kept_events);
  Printf.printf "%d of %d traces, %d events\n" (List.length kept)
    (Hashtbl.length groups) (List.length kept_events);
  if assert_cross then begin
    let cross =
      List.exists
        (fun evs ->
          let sws =
            List.sort_uniq compare (List.filter_map (attr "switch") evs)
          in
          List.length sws >= 2)
        kept
    in
    if cross then print_endline "cross-switch: ok"
    else begin
      Printf.eprintf "error: no kept trace spans two or more switches\n";
      exit 1
    end
  end

and cmd_trace path args_str privileged metrics_out =
  let program = read_program path in
  let spec = Spec.analyze program in
  let device = Rmt.Device.create params in
  let tables = Activermt.Table.create device in
  (* Give the program a whole-stage region at each compact access stage. *)
  let mutant = Mutant.identity spec in
  let regions = Array.make params.Rmt.Params.logical_stages None in
  Array.iter
    (fun s ->
      regions.(s) <-
        Some { Activermt.Packet.start_word = 0; n_words = params.Rmt.Params.words_per_stage })
    mutant.Mutant.stages;
  (match Activermt.Table.install ~privileged tables ~fid:1 ~virtual_addressing:true ~regions with
  | Ok () -> ()
  | Error _ -> failwith "trace: table installation failed");
  let args =
    match args_str with
    | None -> [||]
    | Some s ->
      String.split_on_char ',' s
      |> List.map (fun x ->
             match int_of_string_opt (String.trim x) with
             | Some v -> v
             | None ->
               Printf.eprintf "error: bad argument %S\n" x;
               exit 1)
      |> Array.of_list
  in
  let pkt = Activermt.Packet.exec ~fid:1 ~seq:0 ~args program in
  let meta = Activermt.Runtime.meta ~src:100 ~dst:200 () in
  let r, events =
    Telemetry.with_span Telemetry.default "cli.trace" (fun () ->
        Activermt.Runtime.trace tables ~meta pkt)
  in
  Telemetry.incr Telemetry.default "cli.trace.packets";
  Telemetry.incr Telemetry.default "cli.trace.passes" ~by:r.Activermt.Runtime.passes;
  Telemetry.incr Telemetry.default "cli.trace.pipelines"
    ~by:r.Activermt.Runtime.pipelines;
  List.iter
    (fun e -> Format.printf "%a@." Activermt.Runtime.pp_trace_event e)
    events;
  Printf.printf "\noutcome: %s\n"
    (match r.Activermt.Runtime.decision with
    | Activermt.Runtime.Forward d -> Printf.sprintf "forwarded to %d" d
    | Activermt.Runtime.Return_to_sender -> "returned to sender"
    | Activermt.Runtime.Dropped _ -> "dropped");
  Printf.printf "passes: %d  pipelines: %d  RTT: %.2f us\n"
    r.Activermt.Runtime.passes r.Activermt.Runtime.pipelines
    (Activermt.Runtime.latency_us params r);
  Printf.printf "args out: [%s]\n"
    (String.concat "; "
       (List.map string_of_int (Array.to_list r.Activermt.Runtime.args_out)));
  write_metrics metrics_out

and cmd_p4gen () =
  print_string (Activermt_p4gen.Emit.emit Activermt_p4gen.Emit.default_config)

and cmd_apps () =
  List.iter
    (fun (app : App.t) ->
      let spec = App.spec app in
      Printf.printf "== %s (%s) ==\n" app.App.name
        (if app.App.elastic then "elastic" else "inelastic");
      Printf.printf "%s\n" (Activermt.Program.to_assembly spec.Spec.program))
    [
      Activermt_apps.Cache.service;
      Activermt_apps.Heavy_hitter.service;
      Activermt_apps.Cheetah_lb.service;
      Activermt_apps.Counter.service;
      Activermt_apps.Bloom.service;
    ]

(* routecheck: drive the incremental ECMP router across the canned
   topologies plus a battery of link flaps and switch failures, checking
   reachability, distances and first-hop sets against the retired
   Floyd-Warshall router ([Topology.all_pairs_reference]) after every
   transition.  Vacuity-guarded: the run fails unless it actually
   compared pairs, applied transitions, and observed multi-path ECMP
   somewhere — a refactor that silently skips the comparison must not
   pass. *)
let cmd_routecheck () =
  let module Topology = Activermt_fleet.Topology in
  let approx a b =
    a = b
    || Float.is_finite a && Float.is_finite b
       && Float.abs (a -. b)
          <= 1e-9 +. (1e-6 *. Float.max (Float.abs a) (Float.abs b))
  in
  let pairs = ref 0 and ecmp_multi = ref 0 and transitions = ref 0 in
  let errors = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        incr errors;
        Printf.eprintf "FAIL %s\n" s)
      fmt
  in
  let verify name phase topo =
    let n = Topology.switches topo in
    Topology.build_all_routes topo;
    let dist = Topology.all_pairs_reference topo in
    for s = 0 to n - 1 do
      for d = 0 to n - 1 do
        if s <> d then begin
          incr pairs;
          let reach = Topology.connected topo ~src:s ~dst:d in
          if reach <> Float.is_finite dist.(s).(d) then
            fail "%s/%s: %d-%d reachable=%b but oracle says %b" name phase s d
              reach
              (Float.is_finite dist.(s).(d));
          if reach then begin
            let lat = Topology.latency topo ~src:s ~dst:d in
            if not (approx lat dist.(s).(d)) then
              fail "%s/%s: %d-%d distance %g vs oracle %g" name phase s d lat
                dist.(s).(d);
            match Topology.next_hops topo ~src:s ~dst:d with
            | [] ->
              fail "%s/%s: %d-%d reachable but no first hop" name phase s d
            | hops ->
              if List.length hops > 1 then incr ecmp_multi;
              if Topology.next_hop topo ~src:s ~dst:d <> Some (List.hd hops)
              then
                fail "%s/%s: %d-%d next_hop is not the lowest ECMP hop" name
                  phase s d;
              List.iter
                (fun h ->
                  (* Every advertised hop must sit on a shortest path:
                     dist(s,d) = dist(s,h) + dist(h,d).  The s-h leg is
                     a single link, and the canned topologies all use
                     uniform per-link latency, so the direct link is
                     itself a shortest s-h path. *)
                  if not (approx dist.(s).(d) (dist.(s).(h) +. dist.(h).(d)))
                  then
                    fail "%s/%s: %d-%d hop %d is not on a shortest path" name
                      phase s d h)
                hops
          end
        end
      done
    done
  in
  let drill name topo =
    let n = Topology.switches topo in
    verify name "initial" topo;
    (* Flap the first link of a shortest 0 -> n-1 path, down then up,
       re-verifying the repaired tables after each transition. *)
    (match Topology.next_hop topo ~src:0 ~dst:(n - 1) with
    | Some b ->
      ignore (Topology.set_link topo ~a:0 ~b ~up:false);
      incr transitions;
      verify name "link-down" topo;
      ignore (Topology.set_link topo ~a:0 ~b ~up:true);
      incr transitions;
      verify name "link-up" topo
    | None -> ());
    (* Fail and restore a mid-fleet switch (isolate = every incident
       link down), which partitions line-like topologies. *)
    let sw = n / 2 in
    transitions := !transitions + Topology.isolate topo ~sw;
    verify name "isolate" topo;
    transitions := !transitions + Topology.restore topo ~sw;
    verify name "restore" topo;
    let st = Topology.stats topo in
    Printf.printf
      "%-14s %3d switches: %d sssp runs, %d repairs, %d pairs touched, %d flaps\n"
      name n st.Topology.sssp_runs st.Topology.repairs st.Topology.pairs_touched
      st.Topology.flaps
  in
  drill "mesh-6" (Topology.full_mesh ~switches:6 ~latency_s:1e-5);
  drill "line-5" (Topology.line ~switches:5 ~latency_s:1e-5);
  drill "star-7" (Topology.star ~switches:7 ~latency_s:1e-5);
  drill "fat-tree-k4" (Topology.fat_tree ~k:4 ());
  drill "leaf-spine-4x3" (Topology.leaf_spine ~leaves:4 ~spines:3 ());
  Printf.printf
    "routecheck: %d pair checks, %d transitions, %d multi-path pairs\n" !pairs
    !transitions !ecmp_multi;
  if !pairs = 0 then (
    incr errors;
    prerr_endline "FAIL routecheck: no pairs compared (vacuous run)");
  if !transitions = 0 then (
    incr errors;
    prerr_endline "FAIL routecheck: no link transitions applied (vacuous run)");
  if !ecmp_multi = 0 then (
    incr errors;
    prerr_endline "FAIL routecheck: no multi-path ECMP observed (vacuous run)");
  if !errors > 0 then begin
    Printf.eprintf "routecheck: %d failures\n" !errors;
    exit 1
  end;
  print_endline "routecheck: incremental router matches the Floyd-Warshall oracle"

open Cmdliner

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM.asm")

let policy_arg =
  let pconv =
    Arg.conv
      ( (function
        | "mc" | "most-constrained" -> Ok Mutant.Most_constrained
        | "lc" | "least-constrained" -> Ok Mutant.Least_constrained
        | s -> Error (`Msg ("unknown policy " ^ s))),
        fun fmt p -> Format.pp_print_string fmt (Mutant.policy_to_string p) )
  in
  Arg.value
    (Arg.opt pconv Mutant.Most_constrained (Arg.info [ "policy" ] ~docv:"mc|lc"))

let scheme_arg =
  let sconv =
    Arg.conv
      ( (fun s -> Result.map_error (fun e -> `Msg e) (Allocator.scheme_of_string s)),
        fun fmt s -> Format.pp_print_string fmt (Allocator.scheme_to_string s) )
  in
  Arg.value
    (Arg.opt sconv Allocator.Worst_fit
       (Arg.info [ "scheme" ] ~docv:"wf|ff|bf|realloc"))

let cmd_tenantsim tenants hostile_factor seed summary_out metrics_out series_out =
  seed_jit_metrics ~enabled:true;
  let module Tenants = Experiments.Tenants in
  let cfg = { (Tenants.preset ~tenants ()) with Tenants.hostile_factor; seed } in
  (* The vswitch records on its modeled clock (explicit ~t). *)
  let series = make_series series_out in
  let r = Tenants.run ~telemetry:Telemetry.default ~series cfg in
  (* Deterministic stdout: the whole summary derives from the modeled
     clock and the seeded shuffle (no wall times), so two same-config
     runs print — and with --summary-out, dump — byte-identical
     artifacts for the CI determinism job to [cmp]. *)
  print_string (Tenants.summary_lines r);
  (match summary_out with
  | None -> ()
  | Some path ->
    let num v = Json.Num v in
    let int v = Json.Num (float_of_int v) in
    let summary =
      Json.Obj
        [
          ("tenants", int tenants);
          ("hostile_factor", int hostile_factor);
          ("demand_blocks", int cfg.Tenants.demand_blocks);
          ("services_per_tenant", int cfg.Tenants.services_per_tenant);
          ("seed", int seed);
          ("capacity_blocks", int r.Tenants.capacity_blocks);
          ("effective_capacity_blocks", int r.Tenants.effective_capacity_blocks);
          ("epochs", int r.Tenants.epochs);
          ("granted", int r.Tenants.granted);
          ("denied_quota", int r.Tenants.denied_quota);
          ("denied_capacity", int r.Tenants.denied_capacity);
          ("evictions", int r.Tenants.evictions);
          ("relocations", int r.Tenants.relocations);
          ("deferrals", int r.Tenants.deferrals);
          ("jain_wb", num r.Tenants.jain_wb);
          ("min_retained_wb", num r.Tenants.min_retained_wb);
          ("p50_admit_ms", num (1000.0 *. r.Tenants.p50_admit_s));
          ("p99_admit_ms", num (1000.0 *. r.Tenants.p99_admit_s));
          ("modeled_span_s", num r.Tenants.modeled_span_s);
          ("consistent", int (if r.Tenants.consistent then 1 else 0));
          ( "per_tenant",
            Json.Arr
              (List.map
                 (fun (o : Tenants.tenant_outcome) ->
                   Json.Obj
                     [
                       ("tenant", int o.Tenants.tenant);
                       ("hostile", int (if o.Tenants.hostile then 1 else 0));
                       ("offered_blocks", int o.Tenants.offered_blocks);
                       ("granted_blocks", int o.Tenants.granted_blocks);
                       ("fair_blocks", num o.Tenants.fair_blocks);
                       ("retained", num o.Tenants.retained);
                     ])
                 r.Tenants.per_tenant) );
        ]
    in
    let oc = open_out path in
    output_string oc (Json.to_string ~pretty:true summary);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote tenant summary to %s\n" path);
  write_metrics metrics_out;
  write_series series series_out

(* healthcheck: run the health-plane scenario (mini fleetscale + chaos +
   tenants feeding one monitor), print the SLO table and incident log,
   optionally dump the deterministic report / series, and exit non-zero
   when any watchdog or SLO paged. *)
let cmd_healthcheck quick inject_flap_storm report_out series_out =
  let module H = Experiments.Healthcheck in
  let module Monitor = Experiments.Healthcheck.Monitor in
  let cfg =
    {
      (if quick then H.quick_config else H.default_config) with
      H.inject_flap_storm;
    }
  in
  let r = H.run ~log:print_endline cfg in
  List.iter print_endline (H.summary_lines r);
  (match report_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Json.to_string ~pretty:true r.H.report);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote health report to %s\n" path);
  (match series_out with
  | None -> ()
  | Some path ->
    let series = Monitor.series r.H.monitor in
    Timeseries.write_json series ~path;
    Printf.printf "wrote %d series to %s\n"
      (List.length (Timeseries.names series))
      path);
  if not r.H.healthy then exit 1

(* fleettop: render a static text dashboard from a --series-out dump (or
   a healthcheck --report-out file, whose "series" member is the same
   shape).  Rows align on the newest bucket index across all series;
   sparklines cover the newest --last windows. *)
let cmd_fleettop path last filter =
  let text =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let dump =
    let parsed =
      match Json.of_string text with
      | Error e ->
        Printf.eprintf "error: %s: %s\n" path e;
        exit 1
      | Ok j -> (
        (* A health report embeds the series dump under "series". *)
        match Json.member "series" j with
        | Some (Json.Obj _ as s)
          when Json.member "bucket_s" s <> None ->
          s
        | _ -> j)
    in
    match Timeseries.dump_of_json parsed with
    | Ok d -> d
    | Error e ->
      Printf.eprintf "error: %s: %s\n" path e;
      exit 1
  in
  let series =
    match filter with
    | None -> dump.Timeseries.d_series
    | Some f ->
      List.filter
        (fun (name, _, _) ->
          let fl = String.length f and nl = String.length name in
          let rec at i = i + fl <= nl && (String.sub name i fl = f || at (i + 1)) in
          fl = 0 || at 0)
        dump.Timeseries.d_series
  in
  if series = [] then begin
    Printf.eprintf "error: no series%s in %s\n"
      (match filter with Some f -> Printf.sprintf " matching %S" f | None -> "")
      path;
    exit 1
  end;
  (* Align every row on the registry-wide newest bucket. *)
  let newest =
    List.fold_left
      (fun acc (_, _, ws) ->
        List.fold_left (fun a (w : Timeseries.window) -> max a w.Timeseries.w_index) acc ws)
      0 series
  in
  let levels = [| " "; "_"; "."; ":"; "-"; "="; "+"; "*"; "#" |] in
  let spark values =
    let vmax = Array.fold_left Float.max 0.0 values in
    if vmax <= 0.0 then String.make (Array.length values) ' '
    else
      String.concat ""
        (Array.to_list
           (Array.map
              (fun v ->
                if v <= 0.0 then levels.(0)
                else
                  let l =
                    1 + int_of_float (v /. vmax *. 7.99)
                  in
                  levels.(min 8 l))
              values))
  in
  let row_values ws value_of =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (w : Timeseries.window) ->
        Hashtbl.replace tbl w.Timeseries.w_index (value_of w))
      ws;
    Array.init last (fun i ->
        let idx = newest - last + 1 + i in
        match Hashtbl.find_opt tbl idx with Some v -> v | None -> 0.0)
  in
  Printf.printf "fleettop: %s — bucket %gs, capacity %d, %d series, newest bucket %d\n"
    path dump.Timeseries.d_bucket_s dump.Timeseries.d_capacity
    (List.length series) newest;
  Printf.printf "%-34s %-7s %12s %12s  %s\n" "series" "kind" "total" "last"
    (Printf.sprintf "window[-%d..0]" (last - 1));
  let total_of ws value_of =
    List.fold_left (fun a w -> a +. value_of w) 0.0 ws
  in
  let render_section title rows =
    if rows <> [] then begin
      Printf.printf "-- %s --\n" title;
      List.iter
        (fun (name, kind, ws) ->
          let value_of (w : Timeseries.window) =
            match kind with
            | `Counter -> w.Timeseries.w_sum
            | `Dist -> w.Timeseries.w_max
          in
          let values = row_values ws value_of in
          let lastv = values.(last - 1) in
          let total =
            match kind with
            | `Counter -> total_of ws (fun w -> w.Timeseries.w_sum)
            | `Dist ->
              List.fold_left
                (fun a (w : Timeseries.window) -> Float.max a w.Timeseries.w_max)
                0.0 ws
          in
          Printf.printf "%-34s %-7s %12.6g %12.6g |%s|\n" name
            (match kind with `Counter -> "counter" | `Dist -> "dist")
            total lastv (spark values))
        rows
    end
  in
  let has_prefix p name =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  let is_sw (name, _, _) = has_prefix "fleet.sw." name in
  let is_fleet (name, _, _) = has_prefix "fleet." name in
  let is_tenant (name, _, _) = has_prefix "tenant." name in
  let sw_rows, rest = List.partition is_sw series in
  let fleet_rows, rest = List.partition is_fleet rest in
  let tenant_rows, other_rows = List.partition is_tenant rest in
  render_section "fleet" fleet_rows;
  render_section "per-switch" sw_rows;
  render_section "tenants" tenant_rows;
  render_section "other" other_rows

let asm_cmd =
  Cmd.v (Cmd.info "asm" ~doc:"assemble and analyze an active program")
    Term.(const cmd_asm $ path_arg)

let disasm_cmd =
  let hex = Arg.(required & pos 0 (some string) None & info [] ~docv:"HEX") in
  Cmd.v (Cmd.info "disasm" ~doc:"decode instruction bytes") Term.(const cmd_disasm $ hex)

let mutants_cmd =
  Cmd.v (Cmd.info "mutants" ~doc:"enumerate program mutants")
    Term.(const cmd_mutants $ path_arg $ policy_arg)

let metrics_out_arg =
  Arg.value
    (Arg.opt (Arg.some Arg.string) None
       (Arg.info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Dump the telemetry registry (counters, gauges, span \
                histograms) as JSON to $(docv) when the command finishes."))

let series_out_arg =
  Arg.value
    (Arg.opt (Arg.some Arg.string) None
       (Arg.info [ "series-out" ] ~docv:"FILE"
          ~doc:"Record windowed time series (fixed-capacity rings of \
                virtual-clock buckets — counts, sums and percentile \
                sketches per window) and dump them as JSON to $(docv) \
                when the command finishes.  Buckets come from each sim's \
                virtual clock, never wall time, so same-seed dumps are \
                byte-identical; render with $(b,fleettop)."))

let trace_out_arg =
  Arg.value
    (Arg.opt (Arg.some Arg.string) None
       (Arg.info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Enable the capsule flight recorder and dump the causal \
                trace as Chrome trace-event JSON (Perfetto-loadable) to \
                $(docv) when the command finishes.  Without this flag \
                tracing is fully disabled and the run is bit-identical to \
                an untraced build."))

let trace_sample_arg =
  Arg.value
    (Arg.opt Arg.float 1.0
       (Arg.info [ "trace-sample" ] ~docv:"RATE"
          ~doc:"Head-sampling probability in [0,1] for new traces \
                (default 1 = keep everything).  Sampling is seeded and \
                deterministic: the same run keeps the same traces."))

let positive_int =
  Arg.conv
    ( (fun s ->
        match int_of_string_opt s with
        | Some v when v >= 1 -> Ok v
        | Some v ->
          Error (`Msg (Printf.sprintf "expected a positive integer, got %d" v))
        | None -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))),
      fun fmt v -> Format.pp_print_int fmt v )

let domains_arg =
  Arg.value
    (Arg.opt positive_int 1
       (Arg.info [ "domains" ] ~docv:"N"
          ~doc:"Scoring fan-out width (>= 1): mutants are scored on $(docv) \
                domains against a per-arrival occupancy snapshot; decisions \
                are identical at any width."))

let no_jit_arg =
  Arg.value
    (Arg.flag
       (Arg.info [ "no-jit" ]
          ~doc:"Disable the data-plane specialization tier: every capsule \
                is interpreted.  Decisions and results are bit-identical \
                either way; only throughput (and the jit.* metrics) \
                change."))

let allocsim_cmd =
  let spec =
    Arg.(value & pos 0 string "" & info [] ~docv:"cache,hh,lb,...")
  in
  let mixed_arg =
    Arg.value
      (Arg.opt (Arg.some positive_int) None
         (Arg.info [ "mixed" ] ~docv:"N"
            ~doc:"Append $(docv) seeded uniform-mix arrivals (--seed) after \
                  the named apps, enough load to drive the pool to \
                  rejection — the batch-decision-identity smoke's workload."))
  in
  let seed_arg =
    Arg.value (Arg.opt Arg.int 3001 (Arg.info [ "seed" ] ~docv:"SEED"))
  in
  let batch_arg =
    Arg.value
      (Arg.opt positive_int 1
         (Arg.info [ "batch" ] ~docv:"N"
            ~doc:"Admit arrivals in epochs of $(docv) through the batched \
                  pipeline (Allocator.admit_batch).  The default 1 replays \
                  them one at a time through the sequential path; decisions \
                  are identical either way."))
  in
  Cmd.v (Cmd.info "allocsim" ~doc:"replay arrivals against the allocator")
    Term.(
      const cmd_allocsim $ spec $ mixed_arg $ seed_arg $ batch_arg
      $ scheme_arg $ policy_arg $ domains_arg $ no_jit_arg $ metrics_out_arg
      $ series_out_arg $ trace_out_arg $ trace_sample_arg)

let churnsim_cmd =
  let clients_arg =
    Arg.value
      (Arg.opt positive_int 50_000
         (Arg.info [ "clients" ] ~docv:"N"
            ~doc:"Total simulated clients arriving over the run."))
  in
  let batch_arg =
    Arg.value
      (Arg.opt positive_int 64
         (Arg.info [ "batch" ] ~docv:"N" ~doc:"Arrivals per admission epoch."))
  in
  let target_arg =
    Arg.value
      (Arg.opt positive_int 64
         (Arg.info [ "target" ] ~docv:"N"
            ~doc:"Resident target: uniform departures trim the alive set \
                  back to $(docv) after each epoch."))
  in
  let seed_arg =
    Arg.value (Arg.opt Arg.int 4242 (Arg.info [ "seed" ] ~docv:"SEED"))
  in
  let summary_out_arg =
    Arg.value
      (Arg.opt (Arg.some Arg.string) None
         (Arg.info [ "summary-out" ] ~docv:"FILE"
            ~doc:"Write the deterministic churn summary (counts and \
                  modeled-clock metrics only, no wall times) as JSON to \
                  $(docv); same-seed runs produce byte-identical files."))
  in
  Cmd.v
    (Cmd.info "churnsim"
       ~doc:"Zipf client churn through the batched epoch admission pipeline")
    Term.(
      const cmd_churnsim $ clients_arg $ batch_arg $ target_arg $ seed_arg
      $ summary_out_arg $ metrics_out_arg $ series_out_arg $ trace_out_arg
      $ trace_sample_arg)

let tenantsim_cmd =
  let tenants_arg =
    Arg.value
      (Arg.opt positive_int 8
         (Arg.info [ "tenants" ] ~docv:"N"
            ~doc:"Equal-weight tenants sharing the switch (tenant 0 is \
                  the noisy neighbor)."))
  in
  let hostile_arg =
    Arg.value
      (Arg.opt positive_int 10
         (Arg.info [ "hostile-factor" ] ~docv:"X"
            ~doc:"Hostile offered load as a multiple of its fair share."))
  in
  let seed_arg =
    Arg.value (Arg.opt Arg.int 7 (Arg.info [ "seed" ] ~docv:"SEED"))
  in
  let summary_out_arg =
    Arg.value
      (Arg.opt (Arg.some Arg.string) None
         (Arg.info [ "summary-out" ] ~docv:"FILE"
            ~doc:"Write the deterministic scenario summary (modeled-clock \
                  metrics only, no wall times) as JSON to $(docv); \
                  same-seed runs produce byte-identical files."))
  in
  Cmd.v
    (Cmd.info "tenantsim"
       ~doc:"multi-tenant noisy-neighbor scenario: quotas, WRR admission, \
             preemptive reclamation")
    Term.(
      const cmd_tenantsim $ tenants_arg $ hostile_arg $ seed_arg
      $ summary_out_arg $ metrics_out_arg $ series_out_arg)

let fleetsim_cmd =
  let module Placement = Activermt_fleet.Placement in
  let switches_arg =
    Arg.value
      (Arg.opt positive_int 4
         (Arg.info [ "switches" ] ~docv:"N"
            ~doc:"Number of switches (mesh/line/star topologies; fat-tree \
                  and leaf-spine derive their own count)."))
  in
  let topo_arg =
    Arg.value
      (Arg.opt
         (Arg.enum
            [
              ("mesh", `Mesh);
              ("line", `Line);
              ("star", `Star);
              ("fat-tree", `Fat_tree);
              ("leaf-spine", `Leaf_spine);
            ])
         `Mesh
         (Arg.info [ "topology" ]
            ~docv:"mesh|line|star|fat-tree|leaf-spine"))
  in
  let k_arg =
    Arg.value
      (Arg.opt positive_int 4
         (Arg.info [ "k"; "arity" ] ~docv:"K"
            ~doc:"Fat-tree arity, even (--topology fat-tree)."))
  in
  let pods_arg =
    Arg.value
      (Arg.opt (Arg.some positive_int) None
         (Arg.info [ "pods" ] ~docv:"N"
            ~doc:"Fat-tree pods built out, 1..K (default $(b,K); \
                  --topology fat-tree)."))
  in
  let leaves_arg =
    Arg.value
      (Arg.opt positive_int 4
         (Arg.info [ "leaves" ] ~docv:"N"
            ~doc:"Leaf switches (--topology leaf-spine)."))
  in
  let spines_arg =
    Arg.value
      (Arg.opt positive_int 2
         (Arg.info [ "spines" ] ~docv:"N"
            ~doc:"Spine switches (--topology leaf-spine)."))
  in
  let policy_arg =
    let pconv =
      Arg.conv
        ( (fun s -> Result.map_error (fun e -> `Msg e) (Placement.policy_of_string s)),
          fun fmt p -> Format.pp_print_string fmt (Placement.policy_to_string p) )
    in
    Arg.value
      (Arg.opt pconv Placement.Least_loaded
         (Arg.info [ "policy" ]
            ~docv:"first-fit|least-loaded|locality|hierarchical"))
  in
  let arrivals_arg =
    Arg.value
      (Arg.opt positive_int 100
         (Arg.info [ "arrivals" ] ~docv:"N" ~doc:"Seeded mixed arrivals to offer."))
  in
  let batch_arg =
    Arg.value
      (Arg.opt positive_int 1
         (Arg.info [ "batch" ] ~docv:"N"
            ~doc:"Admit through the batched epoch pipeline in epochs of \
                  $(docv) (1 = the sequential admit path)."))
  in
  let seed_arg =
    Arg.value (Arg.opt Arg.int 7001 (Arg.info [ "seed" ] ~docv:"SEED"))
  in
  let fail_arg =
    Arg.value
      (Arg.opt (Arg.some Arg.int) None
         (Arg.info [ "fail" ] ~docv:"SWITCH"
            ~doc:"Fail this switch halfway through the arrival sequence; its \
                  resident services are re-placed on the survivors."))
  in
  let pod_fail_arg =
    Arg.value
      (Arg.opt (Arg.some Arg.int) None
         (Arg.info [ "pod-fail" ] ~docv:"POD"
            ~doc:"After admission, fail every switch of this pod one by one \
                  (rolling pod failure), re-placing residents on the \
                  survivors."))
  in
  let flap_arg =
    Arg.(
      value
      & flag
      & info [ "flap" ]
          ~doc:"After admission, take one link down and back up and report \
                how many routed (src, dst) pairs each transition's \
                incremental repair touched.")
  in
  let summary_out_arg =
    Arg.value
      (Arg.opt (Arg.some Arg.string) None
         (Arg.info [ "summary-out" ] ~docv:"FILE"
            ~doc:"Write the deterministic fleet summary (counts and modeled \
                  occupancy only, no wall times) as JSON to $(docv); \
                  same-seed runs produce byte-identical files."))
  in
  Cmd.v
    (Cmd.info "fleetsim"
       ~doc:"replay a service workload against a multi-switch fleet")
    Term.(
      const cmd_fleetsim $ switches_arg $ topo_arg $ k_arg $ pods_arg
      $ leaves_arg $ spines_arg $ policy_arg $ arrivals_arg $ batch_arg
      $ seed_arg $ fail_arg $ pod_fail_arg $ flap_arg $ summary_out_arg
      $ no_jit_arg $ metrics_out_arg $ series_out_arg $ trace_out_arg
      $ trace_sample_arg)

let routecheck_cmd =
  Cmd.v
    (Cmd.info "routecheck"
       ~doc:"check the incremental ECMP router against the Floyd-Warshall \
             oracle across canned topologies, link flaps and switch failures")
    Term.(const cmd_routecheck $ const ())

let faultsim_cmd =
  let prob name doc =
    Arg.value (Arg.opt Arg.float 0.0 (Arg.info [ name ] ~docv:"P" ~doc))
  in
  let services_arg =
    Arg.value
      (Arg.opt positive_int 16
         (Arg.info [ "services" ] ~docv:"N" ~doc:"Concurrent service clients."))
  in
  let words_arg =
    Arg.value
      (Arg.opt positive_int 48
         (Arg.info [ "words" ] ~docv:"N" ~doc:"State words each service writes."))
  in
  let loss_arg =
    Arg.value
      (Arg.opt Arg.float 0.01
         (Arg.info [ "loss" ] ~docv:"P" ~doc:"Per-hop packet drop probability."))
  in
  let dup_arg = prob "dup" "Packet duplication probability." in
  let corrupt_arg =
    prob "corrupt" "Byte-corruption probability (rejected by the wire checksum)."
  in
  let jitter_arg =
    Arg.value
      (Arg.opt Arg.float 0.0
         (Arg.info [ "jitter" ] ~docv:"SECONDS"
            ~doc:"Extra per-delivery delay, uniform in [0,$(docv)) — reorders."))
  in
  let slow_ctl_arg =
    Arg.value
      (Arg.opt Arg.float 1.0
         (Arg.info [ "slow-ctl" ] ~docv:"FACTOR"
            ~doc:"Slow control-plane table updates by $(docv) (>= 1)."))
  in
  let ctl_fail_arg =
    prob "ctl-fail" "Probability a provisioning response is lost after commit."
  in
  let seed_arg =
    Arg.value (Arg.opt Arg.int 0xC4A05 (Arg.info [ "seed" ] ~docv:"SEED"))
  in
  let no_retries_arg =
    Arg.(
      value
      & flag
      & info [ "no-retries" ]
          ~doc:"Fire every packet exactly once (the baseline the recovery \
                machinery is measured against).")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the fault-event trace.")
  in
  Cmd.v
    (Cmd.info "faultsim"
       ~doc:"run the allocation + memsync protocol stack under a seeded fault \
             profile")
    Term.(
      const cmd_faultsim $ services_arg $ words_arg $ loss_arg $ dup_arg
      $ corrupt_arg $ jitter_arg $ slow_ctl_arg $ ctl_fail_arg $ seed_arg
      $ no_retries_arg $ no_jit_arg $ trace_arg $ metrics_out_arg
      $ series_out_arg $ trace_out_arg $ trace_sample_arg)

let tracequery_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.json")
  in
  let trace_id_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-id" ] ~docv:"ID" ~doc:"Show only this trace.")
  in
  let fid_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fid" ] ~docv:"FID"
          ~doc:"Keep traces with an event whose fid attribute is $(docv).")
  in
  let switch_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "switch" ] ~docv:"SW"
          ~doc:"Keep traces with an event at switch $(docv).")
  in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"EVENT"
          ~doc:"Keep traces containing an event named $(docv), e.g. \
                fault.drop.")
  in
  let assert_cross_arg =
    Arg.(
      value
      & flag
      & info [ "assert-cross-switch" ]
          ~doc:"Exit non-zero unless some kept trace has events on two or \
                more distinct switches (CI smoke check).")
  in
  Cmd.v
    (Cmd.info "tracequery"
       ~doc:"filter a Chrome trace dump and print causal event trees")
    Term.(
      const cmd_tracequery $ path $ trace_id_arg $ fid_arg $ switch_arg
      $ name_arg $ assert_cross_arg)

let trace_cmd =
  let args_arg =
    Arg.(value & opt (some string) None & info [ "args" ] ~docv:"a0,a1,a2,a3")
  in
  let priv_arg = Arg.(value & flag & info [ "privileged" ]) in
  Cmd.v (Cmd.info "trace" ~doc:"execute a program on a fresh switch with a stage-by-stage trace")
    Term.(const cmd_trace $ path_arg $ args_arg $ priv_arg $ metrics_out_arg)

let apps_cmd =
  Cmd.v (Cmd.info "apps" ~doc:"print bundled example services")
    Term.(const cmd_apps $ const ())

let p4gen_cmd =
  Cmd.v
    (Cmd.info "p4gen"
       ~doc:"emit the ActiveRMT shared runtime as TNA-style P4-16")
    Term.(const cmd_p4gen $ const ())

let healthcheck_cmd =
  let quick_arg =
    Arg.(
      value
      & flag
      & info [ "quick" ]
          ~doc:"Run the smaller CI-sized scenario (1500 fleet services \
                instead of 5000).")
  in
  let storm_arg =
    Arg.(
      value
      & flag
      & info [ "inject-flap-storm" ]
          ~doc:"Force a breach: flap the pod-0 uplink 16 times inside one \
                window so the route-locality storm watchdog pages (the \
                command then exits non-zero, and the incident links the \
                offending topology.flap trace ids).")
  in
  let report_out_arg =
    Arg.value
      (Arg.opt (Arg.some Arg.string) None
         (Arg.info [ "report-out" ] ~docv:"FILE"
            ~doc:"Write the full deterministic health report (config, \
                  scenario summary, SLO evaluations, incident log, series \
                  dump) as JSON to $(docv); same-seed runs produce \
                  byte-identical files."))
  in
  Cmd.v
    (Cmd.info "healthcheck"
       ~doc:"run the fleet health-plane scenario, evaluate SLO burn rates \
             and watchdogs, and exit non-zero on a page")
    Term.(
      const cmd_healthcheck $ quick_arg $ storm_arg $ report_out_arg
      $ series_out_arg)

let fleettop_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SERIES.json")
  in
  let last_arg =
    Arg.value
      (Arg.opt positive_int 48
         (Arg.info [ "last" ] ~docv:"N"
            ~doc:"Sparkline width: the newest $(docv) windows, aligned on \
                  the newest bucket across all series."))
  in
  let filter_arg =
    Arg.value
      (Arg.opt (Arg.some Arg.string) None
         (Arg.info [ "filter" ] ~docv:"SUBSTRING"
            ~doc:"Show only series whose name contains $(docv)."))
  in
  Cmd.v
    (Cmd.info "fleettop"
       ~doc:"render a per-switch / per-tenant text dashboard from a \
             --series-out dump or a healthcheck report")
    Term.(const cmd_fleettop $ path $ last_arg $ filter_arg)

let () =
  let info = Cmd.info "activermt" ~doc:"ActiveRMT tools (SIGCOMM 2023 reproduction)" in
  exit (Cmd.eval (Cmd.group info
       [ asm_cmd; disasm_cmd; mutants_cmd; allocsim_cmd; churnsim_cmd;
         tenantsim_cmd; fleetsim_cmd; routecheck_cmd; faultsim_cmd;
         healthcheck_cmd; fleettop_cmd; tracequery_cmd; trace_cmd; apps_cmd;
         p4gen_cmd ]))
