; Listing 1 — query an object cache (8-byte keys, 4-byte values).
; arg0 = bucket address, arg1/arg2 = key words, arg3 = returned value.
MAR_LOAD 0        // locate bucket
MEM_READ          // first 4 bytes of the key
MBR_EQUALS_DATA 1 // compare bytes
CRET              // partial match?
MEM_READ          // next 4 bytes
MBR_EQUALS_DATA 2 // compare bytes
CRET              // full match?
RTS               // create reply
MEM_READ          // read the value
MBR_STORE 3       // write to packet
RETURN            // fin.
