; Appendix C.1 — remotely read one memory location.
; MAR is preloaded from arg0, so the first stage is also reachable.
MAR_LOAD 0
MEM_READ
MBR_STORE 1
RTS
RETURN
