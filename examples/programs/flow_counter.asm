; Per-flow packet counter: increment this flow's slot and carry the
; updated count back to the sender in arg1.
MAR_LOAD 0
MEM_INCREMENT
MBR_STORE 1
RETURN
