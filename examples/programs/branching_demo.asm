; Control-flow demo: if arg1 is non-zero jump over the store to L1.
MBR_LOAD 1
CJUMP L1
MBR2_LOAD 2
L1: RETURN
