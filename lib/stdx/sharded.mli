(** Per-domain shards of a mutable accumulator, merged on read.

    Each domain that calls [get] lazily materializes its own shard (via
    domain-local storage) and registers it with the owner, so writers
    never contend: a domain mutates only the shard [get] hands it.
    Readers traverse every shard ever registered with [fold]/[iter].

    Memory-safe under any interleaving, but reads concurrent with
    writers may observe partially-updated shards; merge totals are exact
    once the writing domains have been joined (e.g. after
    [Domain_pool.parallel_for] returns, which joins its workers).

    Shards of domains that have terminated stay registered — totals
    survive [Domain_pool]'s short-lived workers — so the shard list
    grows with the number of distinct domains that ever wrote, not with
    the number of records. *)

type 'a t

val create : init:(unit -> 'a) -> unit -> 'a t
(** [init] makes an empty shard; it runs once per writing domain, in
    that domain, on its first [get]. *)

val get : 'a t -> 'a
(** The calling domain's shard (created and registered on first use).
    The caller may mutate it freely without synchronization. *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
(** Fold over a snapshot of all registered shards, including live ones. *)

val iter : 'a t -> f:('a -> unit) -> unit

val all : 'a t -> 'a list
(** Snapshot of all registered shards, newest first. *)

val n_shards : 'a t -> int
