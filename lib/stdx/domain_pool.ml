(* Persistent worker domains parked on a condition variable.

   The seed implementation spawned [size - 1] domains on every
   [parallel_for] call; telemetry pinned a mixed-workload scoring
   regression on exactly that per-call [Domain.spawn] cost (see
   docs/TELEMETRY.md).  Workers are now spawned once at [create] and
   handed (generation, chunk) work items; the chunk partitioning is
   unchanged, so every index still runs under the same worker slot and
   callers observe bit-identical results. *)

type job = { f : int -> unit; n : int; chunk : int }

type shared = {
  m : Mutex.t;
  work : Condition.t;  (* signalled when a new generation is posted *)
  done_ : Condition.t;  (* signalled when the last worker finishes *)
  mutable job : job option;
  mutable generation : int;
  mutable remaining : int;  (* workers still running the current job *)
  mutable quit : bool;
}

type t = {
  size : int;
  shared : shared;  (* unused (but harmless) when [size = 1] *)
  mutable workers : unit Domain.t list;
  mutable live : bool;
}

let default_size () = Domain.recommended_domain_count ()

let run_chunk job w =
  let lo = (w + 1) * job.chunk in
  let hi = min job.n (lo + job.chunk) in
  for i = lo to hi - 1 do
    job.f i
  done

(* Worker [w] serves chunk [w + 1] of every posted generation (chunk 0
   belongs to the caller) until [quit]. *)
let worker shared w =
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock shared.m;
    while (not shared.quit) && shared.generation = !seen do
      Condition.wait shared.work shared.m
    done;
    if shared.quit then begin
      Mutex.unlock shared.m;
      continue := false
    end
    else begin
      seen := shared.generation;
      let job = Option.get shared.job in
      Mutex.unlock shared.m;
      run_chunk job w;
      Mutex.lock shared.m;
      shared.remaining <- shared.remaining - 1;
      if shared.remaining = 0 then Condition.signal shared.done_;
      Mutex.unlock shared.m
    end
  done

let shutdown t =
  if t.live then begin
    t.live <- false;
    let shared = t.shared in
    Mutex.lock shared.m;
    shared.quit <- true;
    Condition.broadcast shared.work;
    Mutex.unlock shared.m;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let create ?size () =
  let size = match size with Some n -> max 1 n | None -> default_size () in
  let shared =
    {
      m = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      job = None;
      generation = 0;
      remaining = 0;
      quit = false;
    }
  in
  let t = { size; shared; workers = []; live = size > 1 } in
  if size > 1 then begin
    t.workers <- List.init (size - 1) (fun w -> Domain.spawn (fun () -> worker shared w));
    (* Parked workers would otherwise keep the process from terminating
       when the owner never calls [shutdown] explicitly. *)
    at_exit (fun () -> shutdown t)
  end;
  t

let size t = t.size

(* Below this many indices per worker the cross-domain hand-off costs more
   than the chunk it would run; fall back to the caller's domain. *)
let min_chunk = 256

(* Work is split into [size] contiguous chunks; the calling domain takes
   the first chunk so a pool of size 1 never leaves the caller.  Chunks
   are disjoint index ranges, so [f] may write to distinct cells of a
   shared array without synchronization. *)
let parallel_for t ~n ~f =
  if n > 0 then begin
    if t.size = 1 || (not t.live) || n < min_chunk * t.size then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let chunk = (n + t.size - 1) / t.size in
      let job = { f; n; chunk } in
      let shared = t.shared in
      Mutex.lock shared.m;
      shared.job <- Some job;
      shared.remaining <- t.size - 1;
      shared.generation <- shared.generation + 1;
      Condition.broadcast shared.work;
      Mutex.unlock shared.m;
      for i = 0 to min n chunk - 1 do
        f i
      done;
      Mutex.lock shared.m;
      while shared.remaining > 0 do
        Condition.wait shared.done_ shared.m
      done;
      shared.job <- None;
      Mutex.unlock shared.m
    end
  end

let map t ~f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f arr.(0)) in
    parallel_for t ~n:(n - 1) ~f:(fun i -> out.(i + 1) <- f arr.(i + 1));
    out
  end
