(** Chunked parallel iteration over persistent OCaml 5 worker domains.

    [create ~size] spawns [size - 1] worker domains once; they park on a
    condition variable between calls, so [parallel_for] costs a hand-off,
    not a [Domain.spawn], per call.  Each call splits [0, n) into [size]
    contiguous chunks — the caller runs the first, workers the rest — so
    a pool of size 1 (the sequential fallback) never leaves the calling
    domain.  The partitioning is identical to the former spawn-per-call
    implementation: results are bit-identical whenever [f] is
    deterministic and writes only per-index cells (or otherwise
    commutes).

    Workers are joined by [shutdown] (idempotent) or, failing that, by an
    [at_exit] hook registered at [create], so a forgotten pool cannot
    wedge process exit — though each live pool holds [size - 1] domains
    against the runtime's limit until then, so shut down pools you create
    in a loop. *)

type t

val default_size : unit -> int
(** [Domain.recommended_domain_count ()] — the size [create] defaults to. *)

val create : ?size:int -> unit -> t
(** [size] defaults to [Domain.recommended_domain_count ()]; values below
    1 are clamped to 1.  Spawns [size - 1] persistent worker domains. *)

val size : t -> int

val parallel_for : t -> n:int -> f:(int -> unit) -> unit
(** Apply [f] to every index in [0, n).  [f] runs on the caller when the
    pool is sequential, already shut down, or [n] is too small to
    amortize the hand-off; otherwise on [size] domains over disjoint
    chunks.  [f] must be safe to run concurrently with itself on
    distinct indices.  Not reentrant: do not call from within [f]. *)

val map : t -> f:('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] via [parallel_for]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; afterwards
    [parallel_for] still works but runs everything on the caller. *)
