type 'a t = {
  mutex : Mutex.t;
  shards : 'a list ref;
  key : 'a Domain.DLS.key;
}

let create ~init () =
  let mutex = Mutex.create () in
  let shards = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let s = init () in
        Mutex.lock mutex;
        shards := s :: !shards;
        Mutex.unlock mutex;
        s)
  in
  { mutex; shards; key }

let get t = Domain.DLS.get t.key

let all t =
  Mutex.lock t.mutex;
  let l = !(t.shards) in
  Mutex.unlock t.mutex;
  l

let fold t ~init ~f = List.fold_left f init (all t)
let iter t ~f = List.iter f (all t)
let n_shards t = List.length (all t)
