(** Allocation-protocol packet builders shared by all service clients. *)

val request_packet :
  fid:Activermt.Packet.fid -> seq:int -> Activermt_apps.App.t -> Activermt.Packet.t
(** Allocation request describing the service's canonical access pattern,
    demands and elasticity (Section 3.3). *)

val extraction_done_packet : fid:Activermt.Packet.fid -> Activermt.Packet.t
(** Bare active packet with the ack flag: "I finished extracting state"
    (Section 4.3). *)

val release_packet : fid:Activermt.Packet.fid -> Activermt.Packet.t
(** Bare active packet without the ack flag: release my allocation. *)

val granted_regions :
  Activermt.Packet.t -> Activermt.Packet.region option array option
(** Regions from a granted allocation response; [None] for rejections or
    other packets. *)

(** {1 Retrying negotiation sessions}

    Allocation requests and responses travel the data plane and can be
    lost, duplicated or corrupted.  A {!session} wraps the request in a
    timeout / exponential-backoff / bounded-retry loop, implemented as a
    pure state machine: the caller supplies the clock ([now]) and a
    [send] function, so the same code runs under the discrete-event
    simulator and against real sockets.  Retries are safe because the
    controller answers duplicate requests for a resident FID from the
    existing allocation ({!Activermt_control.Controller.handle_request}). *)

type backoff = {
  base_timeout_s : float;  (** first attempt's response timeout *)
  multiplier : float;  (** timeout growth per retry (>= 1) *)
  max_timeout_s : float;  (** timeout ceiling *)
  jitter : float;
      (** symmetric jitter fraction in [0, 1): each timeout is scaled by
          a factor drawn uniformly from [1-jitter, 1+jitter] so
          colliding clients decorrelate *)
  max_attempts : int;  (** total transmissions before giving up (>= 1) *)
}

val default_backoff : backoff
(** 0.25 s base, doubling to a 4 s cap, 10% jitter, 6 attempts. *)

val no_retry : backoff
(** Single attempt ({!default_backoff} with [max_attempts = 1]) — the
    legacy fire-once behavior, for baselines. *)

type outcome =
  | Granted of Activermt.Packet.region option array
  | Rejected  (** the switch refused (insufficient memory) *)
  | Timeout  (** retry budget exhausted with no response *)

type session

val session :
  ?backoff:backoff -> ?seed:int -> ?tracer:Activermt_telemetry.Trace.t ->
  fid:Activermt.Packet.fid -> Activermt_apps.App.t -> session
(** A fresh (unstarted) session.  [seed] (mixed with [fid] so sessions
    sharing a base seed still jitter independently) drives only the
    timeout jitter; with [backoff.jitter = 0] the session is entirely
    deterministic.

    [tracer] (default [Trace.noop]) records the session as a trace:
    [start] opens a [negotiate.session] root (head-sampled), every
    transmission emits a [negotiate.attempt] child stamped with the
    caller's [now] (attempt number, seq, armed timeout), and settling
    emits [negotiate.settled] with the outcome
    ([granted]/[rejected]/[alloc_failed]/[timeout]) and total attempts.
    @raise Invalid_argument on a malformed [backoff]. *)

val start :
  session -> now:float -> send:(Activermt.Packet.t -> unit) -> unit
(** Transmit the first request ([seq] 0) and arm the timeout.
    @raise Invalid_argument if already started. *)

val on_packet :
  session ->
  Activermt.Packet.t ->
  [ `Granted of Activermt.Packet.region option array
  | `Rejected
  | `Stale  (** session already settled — a duplicate response *)
  | `Ignored  (** different FID, or not an allocation response *) ]
(** Feed a packet received by the client.  Responses to any attempt
    settle the session (the controller dedups by FID, so every response
    describes the same allocation). *)

val on_alloc_failed : session -> unit
(** An out-of-band allocation-failure notification (e.g. the fabric's
    [Alloc_failed] signal); settles the session as [Rejected]. *)

val tick :
  session ->
  now:float ->
  send:(Activermt.Packet.t -> unit) ->
  [ `Wait of float | `Done of outcome ]
(** Drive timeouts: retransmits (with [seq] = attempt number and a
    grown, jittered timeout) when the deadline passed and budget
    remains; [`Wait dt] says nothing to do for [dt] seconds, [`Done]
    that the session settled.  Never blocks and, because attempts are
    bounded, always reaches [`Done] after finitely many calls.
    @raise Invalid_argument if the session was never started. *)

val outcome : session -> outcome option
(** [None] while still in flight. *)

val attempts : session -> int
(** Requests transmitted so far. *)

val session_fid : session -> Activermt.Packet.fid

val trace : session -> Activermt_telemetry.Trace.ctx option
(** The session's trace context once started (and head-sampled) — attach
    it to outgoing fabric messages so capsule hops chain under the
    [negotiate.session] trace. *)
