(** Reliable bulk memory synchronization over memsync packets.

    Section 4.3: reads and writes are idempotent, every packet replies via
    RTS, and "packets that fail execution (i.e., are dropped) do not
    generate a response.  Since reads and writes are idempotent the client
    can safely retransmit after a timeout."  This driver implements that
    loop as a pure state machine (the caller supplies time and a send
    function), covering a whole index range of up to three stages per
    packet. *)

type op = Read | Write of (int -> int list)
(** For writes, the function gives the values (one per stage) to store at
    each index. *)

type t

val create :
  ?multiplier:float ->
  ?max_timeout_s:float ->
  ?jitter:float ->
  ?max_attempts:int ->
  ?seed:int ->
  ?tracer:Activermt_telemetry.Trace.t ->
  fid:Activermt.Packet.fid ->
  stages:int list ->
  count:int ->
  timeout_s:float ->
  op ->
  t
(** Synchronize indices [0, count) of the given stages (at most 3,
    ascending, >= 2 apart — memsync packet geometry).

    Retransmission policy (all optional; the defaults reproduce the
    original fixed-timeout driver exactly, including its float
    comparisons, so existing simulations are bit-identical):
    - [multiplier] (default 1): per-retry exponential growth of the
      slot's timeout, capped at [max_timeout_s] (default
      [16 * timeout_s]);
    - [jitter] (default 0): symmetric fraction in [0, 1) scaling each
      armed timeout by a factor in [1-jitter, 1+jitter], drawn from a
      PRNG seeded by [seed] mixed with [fid];
    - [max_attempts] (default 0 = unbounded): per-index transmission
      budget; an index that spends it stops retransmitting and counts as
      {!exhausted}.

    [tracer] (default [Trace.noop]) records the sync as a trace:
    {!start} opens a head-sampled [memsync.sync] root (fid, op, count,
    stages), each {!tick} that retransmits emits one batch
    [memsync.retry] event (resent/outstanding counts), per-packet
    [memsync.xmit] events appear only at [Stages] verbosity, and the
    reply completing the sync emits [memsync.done].
    @raise Invalid_argument on out-of-range parameters. *)

val outstanding : t -> int
(** Indices not yet acknowledged. *)

val exhausted : t -> int
(** Indices that are unacknowledged *and* out of retry budget — the
    driver will never retransmit them; the caller should fall back
    (e.g. to a control-plane write) for exactly {!unacked}'s survivors.
    Always 0 when [max_attempts] is unbounded. *)

val unacked : t -> int list
(** Unacknowledged indices, ascending — for targeted fallback. *)

val is_done : t -> bool

val start : t -> now:float -> send:(seq:int -> Activermt.Packet.t -> unit) -> unit
(** Transmit every index once.  [send] is called synchronously; seqs are
    unique per index attempt. *)

val on_reply : t -> seq:int -> args:int array -> bool
(** Feed a reply (the RTS'd packet's argument fields).  Returns false if
    the seq is unknown/duplicate (already satisfied).  For reads the
    values are recorded. *)

val tick : t -> now:float -> send:(seq:int -> Activermt.Packet.t -> unit) -> int
(** Retransmit every index whose last attempt timed out; returns how many
    were resent. *)

val values : t -> int array array
(** For reads, one array per stage (in the order given to [create]),
    [count] words each; zeros where no reply arrived yet. *)

val attempts : t -> int
(** Total packets sent, for loss accounting. *)

val trace : t -> Activermt_telemetry.Trace.ctx option
(** The sync's trace context once started (and head-sampled) — attach it
    to outgoing fabric messages so capsule hops chain under the
    [memsync.sync] trace. *)
