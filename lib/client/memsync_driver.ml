module Memsync = Activermt_apps.Memsync
module Trace = Activermt_telemetry.Trace

type op = Read | Write of (int -> int list)

type slot = {
  mutable acked : bool;
  mutable last_sent : float;
  mutable seq : int;
  mutable tries : int;
  mutable cur_timeout_s : float;  (* nominal (un-jittered) timeout *)
  mutable armed_timeout_s : float;  (* jittered timeout armed at transmit *)
}

type t = {
  fid : Activermt.Packet.fid;
  stages : int list;
  count : int;
  timeout_s : float;
  multiplier : float;
  max_timeout_s : float;
  jitter : float;
  max_attempts : int;  (* 0 = unbounded (legacy behavior) *)
  rng : Stdx.Prng.t;
  tracer : Trace.t;
  mutable trace : Trace.ctx option;
  op : op;
  program : Activermt.Program.t;
  slots : slot array;
  seq_to_index : (int, int) Hashtbl.t;
  results : int array array;
  mutable next_seq : int;
  mutable sent : int;
}

let vflags = { Activermt.Packet.no_flags with virtual_addressing = true }

let create ?(multiplier = 1.0) ?max_timeout_s ?(jitter = 0.0) ?(max_attempts = 0)
    ?(seed = 0x315d) ?(tracer = Trace.noop) ~fid ~stages ~count ~timeout_s op =
  if count <= 0 then invalid_arg "Memsync_driver.create: count must be positive";
  if timeout_s <= 0.0 then invalid_arg "Memsync_driver.create: timeout must be positive";
  if multiplier < 1.0 then
    invalid_arg "Memsync_driver.create: multiplier must be >= 1";
  if jitter < 0.0 || jitter >= 1.0 then
    invalid_arg "Memsync_driver.create: jitter must be in [0, 1)";
  if max_attempts < 0 then
    invalid_arg "Memsync_driver.create: max_attempts must be >= 0";
  let max_timeout_s = Option.value max_timeout_s ~default:(16.0 *. timeout_s) in
  if max_timeout_s < timeout_s then
    invalid_arg "Memsync_driver.create: max_timeout_s must be >= timeout_s";
  let program =
    match op with
    | Read -> Memsync.read_program ~stages
    | Write _ -> Memsync.write_program ~stages
  in
  {
    fid;
    stages;
    count;
    timeout_s;
    multiplier;
    max_timeout_s;
    jitter;
    max_attempts;
    rng = Stdx.Prng.create ~seed:(seed lxor (fid * 0x9E3779B1));
    tracer;
    trace = None;
    op;
    program;
    slots =
      Array.init count (fun _ ->
          {
            acked = false;
            last_sent = neg_infinity;
            seq = -1;
            tries = 0;
            cur_timeout_s = timeout_s;
            armed_timeout_s = timeout_s;
          });
    seq_to_index = Hashtbl.create (2 * count);
    results = Array.make_matrix (List.length stages) count 0;
    next_seq = 1;
    sent = 0;
  }

let outstanding t =
  Array.fold_left (fun acc s -> if s.acked then acc else acc + 1) 0 t.slots

let is_done t = outstanding t = 0

let slot_exhausted t s =
  (not s.acked) && t.max_attempts > 0 && s.tries >= t.max_attempts

let exhausted t =
  Array.fold_left (fun acc s -> if slot_exhausted t s then acc + 1 else acc) 0 t.slots

let unacked t =
  let acc = ref [] in
  for index = t.count - 1 downto 0 do
    if not t.slots.(index).acked then acc := index :: !acc
  done;
  !acc

let packet_for t ~seq ~index =
  let args =
    match t.op with
    | Read -> Memsync.read_args ~index
    | Write values -> Memsync.write_args ~index ~values:(values index)
  in
  Activermt.Packet.exec ~flags:vflags ~fid:t.fid ~seq ~args t.program

(* Jitter is multiplicative and symmetric; with the default jitter = 0
   this is the identity, keeping the legacy fixed-timeout stream (and
   therefore all existing simulations) bit-identical. *)
let jittered t dt =
  if t.jitter <= 0.0 then dt
  else dt *. (1.0 +. (t.jitter *. ((2.0 *. Stdx.Prng.float t.rng 1.0) -. 1.0)))

let transmit t ~now ~send index =
  let slot = t.slots.(index) in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  slot.seq <- seq;
  slot.last_sent <- now;
  if slot.tries > 0 then
    slot.cur_timeout_s <-
      Float.min (slot.cur_timeout_s *. t.multiplier) t.max_timeout_s;
  slot.armed_timeout_s <- jittered t slot.cur_timeout_s;
  slot.tries <- slot.tries + 1;
  t.sent <- t.sent + 1;
  Hashtbl.replace t.seq_to_index seq index;
  (* Per-index transmit events only at Stages verbosity — a big sync
     would otherwise dominate the store. *)
  (match t.trace with
  | Some ctx when Trace.stage_detail t.tracer ->
    ignore
      (Trace.span t.tracer ctx ~t_start:now ~t_end:now
         ~attrs:
           [
             ("index", string_of_int index);
             ("seq", string_of_int seq);
             ("try", string_of_int slot.tries);
           ]
         "memsync.xmit")
  | Some _ | None -> ());
  send ~seq (packet_for t ~seq ~index)

let op_string = function Read -> "read" | Write _ -> "write"

let start t ~now ~send =
  if t.trace = None then
    t.trace <-
      Trace.start_trace t.tracer
        ~attrs:
          [
            ("fid", string_of_int t.fid);
            ("op", op_string t.op);
            ("count", string_of_int t.count);
            ("stages", String.concat "," (List.map string_of_int t.stages));
          ]
        "memsync.sync";
  for index = 0 to t.count - 1 do
    if not t.slots.(index).acked then transmit t ~now ~send index
  done

let on_reply t ~seq ~args =
  match Hashtbl.find_opt t.seq_to_index seq with
  | None -> false
  | Some index ->
    Hashtbl.remove t.seq_to_index seq;
    let slot = t.slots.(index) in
    if slot.acked then false
    else begin
      slot.acked <- true;
      (match t.op with
      | Read ->
        List.iteri
          (fun k _stage ->
            if k + 1 < Array.length args then t.results.(k).(index) <- args.(k + 1))
          t.stages
      | Write _ -> ());
      (match t.trace with
      | Some ctx when outstanding t = 0 ->
        ignore
          (Trace.instant t.tracer ctx
             ~attrs:[ ("attempts", string_of_int t.sent) ]
             "memsync.done")
      | Some _ | None -> ());
      true
    end

let tick t ~now ~send =
  let resent = ref 0 in
  for index = 0 to t.count - 1 do
    let slot = t.slots.(index) in
    if
      (not slot.acked)
      && (not (slot_exhausted t slot))
      && now -. slot.last_sent >= slot.armed_timeout_s
    then begin
      transmit t ~now ~send index;
      incr resent
    end
  done;
  (match t.trace with
  | Some ctx when !resent > 0 ->
    ignore
      (Trace.span t.tracer ctx ~t_start:now ~t_end:now
         ~attrs:
           [
             ("resent", string_of_int !resent);
             ("outstanding", string_of_int (outstanding t));
           ]
         "memsync.retry")
  | Some _ | None -> ());
  !resent

let values t = t.results
let attempts t = t.sent
let trace t = t.trace
