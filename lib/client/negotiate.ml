module App = Activermt_apps.App
module Spec = Activermt_compiler.Spec
module Trace = Activermt_telemetry.Trace

let request_packet ~fid ~seq (app : App.t) =
  let request =
    Spec.to_request ~elastic:app.App.elastic ~demand_blocks:app.App.demand_blocks
      (App.spec app)
  in
  {
    Activermt.Packet.fid;
    seq;
    flags =
      {
        Activermt.Packet.elastic = app.App.elastic;
        virtual_addressing = true;
        ack = false;
      };
    payload = Activermt.Packet.Request request;
  }

let extraction_done_packet ~fid =
  {
    Activermt.Packet.fid;
    seq = 0;
    flags = { Activermt.Packet.no_flags with ack = true };
    payload = Activermt.Packet.Bare;
  }

let release_packet ~fid =
  { Activermt.Packet.fid; seq = 0; flags = Activermt.Packet.no_flags;
    payload = Activermt.Packet.Bare }

let granted_regions (pkt : Activermt.Packet.t) =
  match pkt.Activermt.Packet.payload with
  | Activermt.Packet.Response { status = Activermt.Packet.Granted; regions } ->
    Some regions
  | Activermt.Packet.Response { status = Activermt.Packet.Rejected; _ }
  | Activermt.Packet.Request _ | Activermt.Packet.Exec _ | Activermt.Packet.Bare ->
    None

(* -- Retrying negotiation sessions --------------------------------------- *)

type backoff = {
  base_timeout_s : float;
  multiplier : float;
  max_timeout_s : float;
  jitter : float;
  max_attempts : int;
}

let default_backoff =
  {
    base_timeout_s = 0.25;
    multiplier = 2.0;
    max_timeout_s = 4.0;
    jitter = 0.1;
    max_attempts = 6;
  }

let no_retry = { default_backoff with max_attempts = 1 }

let validate_backoff b =
  if b.base_timeout_s <= 0.0 then
    invalid_arg "Negotiate: base_timeout_s must be positive";
  if b.multiplier < 1.0 then invalid_arg "Negotiate: multiplier must be >= 1";
  if b.max_timeout_s < b.base_timeout_s then
    invalid_arg "Negotiate: max_timeout_s must be >= base_timeout_s";
  if b.jitter < 0.0 || b.jitter >= 1.0 then
    invalid_arg "Negotiate: jitter must be in [0, 1)";
  if b.max_attempts < 1 then invalid_arg "Negotiate: max_attempts must be >= 1"

type outcome =
  | Granted of Activermt.Packet.region option array
  | Rejected
  | Timeout

type session = {
  s_fid : Activermt.Packet.fid;
  app : App.t;
  backoff : backoff;
  rng : Stdx.Prng.t;
  tracer : Trace.t;
  mutable trace : Trace.ctx option;
  mutable attempts : int;
  mutable cur_timeout_s : float;
  mutable deadline_s : float;
  mutable outcome : outcome option;
}

let session ?(backoff = default_backoff) ?(seed = 0x5e55)
    ?(tracer = Trace.noop) ~fid app =
  validate_backoff backoff;
  {
    s_fid = fid;
    app;
    backoff;
    (* Decorrelate per-FID jitter so a fleet of clients created from one
       base seed doesn't retry in lockstep. *)
    rng = Stdx.Prng.create ~seed:(seed lxor (fid * 0x2545F49));
    tracer;
    trace = None;
    attempts = 0;
    cur_timeout_s = backoff.base_timeout_s;
    deadline_s = infinity;
    outcome = None;
  }

let session_fid s = s.s_fid
let attempts s = s.attempts
let outcome s = s.outcome
let trace s = s.trace

(* Full jitter would defeat the determinism tests' round numbers; a
   bounded symmetric factor keeps the retry spread while staying within
   [1-j, 1+j] of the nominal timeout. *)
let jittered s dt =
  if s.backoff.jitter <= 0.0 then dt
  else dt *. (1.0 +. (s.backoff.jitter *. ((2.0 *. Stdx.Prng.float s.rng 1.0) -. 1.0)))

let transmit s ~now ~send =
  s.attempts <- s.attempts + 1;
  s.deadline_s <- now +. jittered s s.cur_timeout_s;
  (match s.trace with
  | Some ctx ->
    ignore
      (Trace.span s.tracer ctx ~t_start:now ~t_end:now
         ~attrs:
           [
             ("attempt", string_of_int s.attempts);
             ("seq", string_of_int (s.attempts - 1));
             ("timeout_s", Printf.sprintf "%g" (s.deadline_s -. now));
           ]
         "negotiate.attempt")
  | None -> ());
  send (request_packet ~fid:s.s_fid ~seq:(s.attempts - 1) s.app)

let settle s outcome how =
  s.outcome <- Some outcome;
  match s.trace with
  | Some ctx ->
    ignore
      (Trace.instant s.tracer ctx
         ~attrs:
           [ ("outcome", how); ("attempts", string_of_int s.attempts) ]
         "negotiate.settled")
  | None -> ()

let start s ~now ~send =
  if s.attempts > 0 then invalid_arg "Negotiate.start: session already started";
  s.trace <-
    Trace.start_trace s.tracer
      ~attrs:[ ("fid", string_of_int s.s_fid) ]
      "negotiate.session";
  transmit s ~now ~send

let on_packet s (pkt : Activermt.Packet.t) =
  if pkt.Activermt.Packet.fid <> s.s_fid then `Ignored
  else
    match (s.outcome, pkt.Activermt.Packet.payload) with
    | Some _, _ -> `Stale
    | None, Activermt.Packet.Response { status = Activermt.Packet.Granted; regions }
      ->
      (* Any granted response settles the session — responses to older
         attempts are equally valid because the switch dedups by FID. *)
      settle s (Granted regions) "granted";
      `Granted regions
    | None, Activermt.Packet.Response { status = Activermt.Packet.Rejected; _ } ->
      settle s Rejected "rejected";
      `Rejected
    | None, (Activermt.Packet.Request _ | Activermt.Packet.Exec _ | Activermt.Packet.Bare)
      ->
      `Ignored

let on_alloc_failed s =
  if s.outcome = None then settle s Rejected "alloc_failed"

let tick s ~now ~send =
  match s.outcome with
  | Some o -> `Done o
  | None ->
    if s.attempts = 0 then invalid_arg "Negotiate.tick: session not started";
    if now < s.deadline_s then `Wait (s.deadline_s -. now)
    else if s.attempts >= s.backoff.max_attempts then begin
      settle s Timeout "timeout";
      `Done Timeout
    end
    else begin
      s.cur_timeout_s <-
        Float.min (s.cur_timeout_s *. s.backoff.multiplier) s.backoff.max_timeout_s;
      transmit s ~now ~send;
      `Wait (s.deadline_s -. now)
    end
