open Import

type config = {
  max_batch : int;
  defer_limit : int;
  retry_limit : int;
  max_evictions_per_epoch : int;
  memsync_word_budget : int;
  entitlement_capacity : int option;
}

let default_config =
  {
    max_batch = 64;
    defer_limit = 64;
    retry_limit = 16;
    max_evictions_per_epoch = 32;
    memsync_word_budget = 65536;
    entitlement_capacity = None;
  }

type denial = [ `Quota | `Capacity | `Bad of string ]

type decision =
  | Queued
  | Granted
  | Evicted
  | Denied of denial
  | Departed

type epoch_summary = {
  epoch_index : int;
  scheduled : int;
  granted : (int * int) list;
  denied : (int * int * denial) list;
  evicted : (int * int) list;
  deferred : int;
  modeled_epoch_s : float;
  clock_s : float;
}

(* One queued admission request.  The charge is the service's guaranteed
   footprint — the sum of its per-access block demands (minimum blocks
   for elastic apps).  Quota enforcement, entitlement and preemption all
   run on guaranteed blocks: elastic bonus capacity above the minimum is
   work-conserving surplus the allocator hands out and takes back on its
   own, so charging it would make the accounting thrash with every
   progressive refill. *)
type req = {
  r_tenant : int;
  r_fid : int;
  r_app : App.t;
  r_charge : int;
  r_stage_demand : int;
  r_submitted_s : float;
  mutable r_defers : int;
  mutable r_retries : int;
  mutable r_cancelled : bool;
}

type t = {
  cfg : config;
  cost : Cost_model.t;
  reg : Tenant.t;
  ctrl : Controller.t;
  jit : Jit.t;
  queue : req Wrr.t;
  decisions : (int, decision) Hashtbl.t;
  reqs : (int, req) Hashtbl.t;  (* every non-terminal fid -> its request *)
  parked_state : (int, (int * int array) list) Hashtbl.t;
  waiting_entitled : (int, unit) Hashtbl.t;
      (* under-fair-share fids rejected for capacity and still queued:
         while non-empty the pool is contended and over-share tenants
         defer so reclaimed capacity reaches the entitled *)
  latencies : (int, int * float) Hashtbl.t;  (* fid -> (tenant, latency) *)
  tel : Telemetry.t;
  series : Timeseries.t;
  tracer : Trace.t;
  mutable epoch : int;
  mutable clock : float;
}

let create ?(config = default_config) ?(cost = Cost_model.default)
    ?(telemetry = Telemetry.default) ?(series = Timeseries.noop)
    ?(tracer = Trace.noop) ~registry ctrl =
  if config.max_batch <= 0 then invalid_arg "Vswitch.create: max_batch <= 0";
  {
    cfg = config;
    cost;
    reg = registry;
    ctrl;
    jit = Jit.create ~telemetry (Controller.tables ctrl);
    queue = Wrr.create ();
    decisions = Hashtbl.create 256;
    reqs = Hashtbl.create 256;
    parked_state = Hashtbl.create 64;
    waiting_entitled = Hashtbl.create 16;
    latencies = Hashtbl.create 256;
    tel = telemetry;
    series;
    tracer;
    epoch = 0;
    clock = 0.0;
  }

let controller t = t.ctrl
let registry t = t.reg
let pending t = Wrr.depth t.queue
let modeled_clock t = t.clock
let decision_of t ~fid = Hashtbl.find_opt t.decisions fid

let parked t =
  Hashtbl.fold (fun fid _ acc -> fid :: acc) t.parked_state [] |> List.sort compare

let admission_latencies t =
  Hashtbl.fold (fun fid (tenant, lat) acc -> (tenant, fid, lat) :: acc) t.latencies []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)

let alloc t = Controller.allocator t.ctrl

let capacity t =
  match t.cfg.entitlement_capacity with
  | Some c -> c
  | None -> Allocator.total_blocks (alloc t)
let charge_of (app : App.t) = Array.fold_left ( + ) 0 app.App.demand_blocks

let weight_of t id =
  match Tenant.info t.reg id with Some i -> i.Tenant.weight | None -> 1

let entitled_blocks t ~tenant =
  Tenant.fair_blocks t.reg ~tenant ~capacity:(capacity t)

(* Guaranteed-blocks surplus over the weighted fair share; positive for
   preemption victims. *)
let surplus t ~tenant =
  float_of_int (Tenant.usage t.reg tenant).Tenant.blocks -. entitled_blocks t ~tenant

let under_entitlement t ~tenant ~extra =
  float_of_int ((Tenant.usage t.reg tenant).Tenant.blocks + extra)
  <= entitled_blocks t ~tenant +. 1e-9

let submit t ~tenant ~fid app =
  if Hashtbl.mem t.decisions fid then
    invalid_arg (Printf.sprintf "Vswitch.submit: fid %d already submitted" fid);
  Tenant.bind t.reg ~fid ~tenant;
  let r =
    {
      r_tenant = tenant;
      r_fid = fid;
      r_app = app;
      r_charge = charge_of app;
      r_stage_demand = Array.length app.App.demand_blocks;
      r_submitted_s = t.clock;
      r_defers = 0;
      r_retries = 0;
      r_cancelled = false;
    }
  in
  Hashtbl.replace t.decisions fid Queued;
  Hashtbl.replace t.reqs fid r;
  Wrr.push t.queue ~tenant r;
  Telemetry.incr t.tel "tenant.submitted"

(* {2 Memsync-backed state relocation}

   The PR 3 migration machinery run against this switch's own tables: a
   memsync driver emits read/write capsules the JIT executes, with the
   controller's BFRT-style region access as fallback for regions over
   the word budget. *)

let words_per_block t =
  Rmt.Params.words_per_block (Rmt.Device.params (Controller.device t.ctrl))

let run_memsync t driver =
  let exec ~seq pkt =
    let meta = Runtime.meta ~src:1 ~dst:0 () in
    let r = Jit.run t.jit ~meta pkt in
    match r.Runtime.decision with
    | Runtime.Return_to_sender ->
      ignore (Memsync_driver.on_reply driver ~seq ~args:r.Runtime.args_out)
    | Runtime.Forward _ | Runtime.Dropped _ -> ()
  in
  Memsync_driver.start driver ~now:0.0 ~send:exec;
  Memsync_driver.is_done driver

let extract_state t ~fid =
  match Allocator.regions_of (alloc t) ~fid with
  | None -> []
  | Some regions ->
    let wpb = words_per_block t in
    List.map
      (fun { Allocator.stage; range } ->
        let n_words = range.Pool.n_blocks * wpb in
        let control_plane () =
          match Controller.read_region t.ctrl ~fid ~stage with
          | Some words -> words
          | None -> Array.make n_words 0
        in
        let words =
          if n_words <= t.cfg.memsync_word_budget then begin
            let driver =
              Memsync_driver.create ~max_attempts:0 ~fid ~stages:[ stage ]
                ~count:n_words ~timeout_s:1.0 Memsync_driver.Read
            in
            if run_memsync t driver then begin
              Telemetry.incr t.tel "tenant.memsync.words_moved" ~by:n_words;
              (Memsync_driver.values driver).(0)
            end
            else control_plane ()
          end
          else control_plane ()
        in
        (stage, words))
      regions

let inject_state t ~fid state =
  match Allocator.regions_of (alloc t) ~fid with
  | None -> ()
  | Some regions ->
    let wpb = words_per_block t in
    List.iteri
      (fun k { Allocator.stage; range } ->
        match List.nth_opt state k with
        | None -> ()
        | Some (_src_stage, words) ->
          let n_words = range.Pool.n_blocks * wpb in
          let count = min n_words (Array.length words) in
          let control_plane lo =
            for i = lo to count - 1 do
              ignore
                (Controller.write_region_word t.ctrl ~fid ~stage ~index:i
                   ~value:words.(i))
            done
          in
          if count > 0 then
            if count <= t.cfg.memsync_word_budget then begin
              let driver =
                Memsync_driver.create ~max_attempts:0 ~fid ~stages:[ stage ]
                  ~count ~timeout_s:1.0
                  (Memsync_driver.Write (fun i -> [ words.(i) ]))
              in
              if run_memsync t driver then
                Telemetry.incr t.tel "tenant.memsync.words_moved" ~by:count
              else control_plane 0
            end
            else control_plane 0)
      regions

let state_words state =
  List.fold_left (fun acc (_, words) -> acc + Array.length words) 0 state

(* {2 Departure} *)

let settle t ~fid decision =
  Hashtbl.replace t.decisions fid decision;
  Hashtbl.remove t.parked_state fid;
  Hashtbl.remove t.reqs fid;
  Hashtbl.remove t.waiting_entitled fid;
  Tenant.unbind t.reg ~fid

let depart t ~fid =
  match Hashtbl.find_opt t.decisions fid with
  | None | Some (Denied _) | Some Departed -> false
  | Some Granted ->
    let bd, _ = Controller.handle_departure t.ctrl ~fid in
    t.clock <- t.clock +. Cost_model.total bd -. bd.Cost_model.allocation_s;
    settle t ~fid Departed;
    Telemetry.incr t.tel "tenant.departed";
    true
  | Some (Queued | Evicted) ->
    (* Still in a queue: cancel in place, the scheduler drops it on the
       next scan. *)
    (match Hashtbl.find_opt t.reqs fid with
    | Some r -> r.r_cancelled <- true
    | None -> ());
    settle t ~fid Departed;
    Telemetry.incr t.tel "tenant.departed";
    true

(* {2 Preemptive reclamation} *)

(* Evict the tenant's most recently admitted service: extract its
   register state through memsync, release the allocation, park the
   state and re-queue the request for re-admission.  Returns blocks
   freed (0 = tenant holds nothing). *)
let evict_fid t ~tenant:vt ~epoch_evicted ~modeled =
  match List.rev (Tenant.charged_fids t.reg ~tenant:vt) with
  | [] -> 0
  | vf :: _ ->
    let before = (Tenant.usage t.reg vt).Tenant.blocks in
    let state = extract_state t ~fid:vf in
    let bd, _ = Controller.handle_departure t.ctrl ~fid:vf in
    Tenant.discharge t.reg ~fid:vf;
    let freed = before - (Tenant.usage t.reg vt).Tenant.blocks in
    Hashtbl.replace t.parked_state vf state;
    Hashtbl.replace t.decisions vf Evicted;
    (match Hashtbl.find_opt t.reqs vf with
    | Some r -> Wrr.push t.queue ~tenant:vt r
    | None -> ());
    epoch_evicted := (vt, vf) :: !epoch_evicted;
    modeled :=
      !modeled
      +. Cost_model.total bd -. bd.Cost_model.allocation_s
      +. (float_of_int (state_words state) *. t.cost.Cost_model.snapshot_word_s);
    Telemetry.incr t.tel "tenant.evictions";
    Timeseries.add t.series ~t:t.clock "tenant.evictions";
    ignore
      (Trace.start_trace t.tracer "tenant.evict"
         ~attrs:[ ("tenant", string_of_int vt); ("fid", string_of_int vf) ]);
    freed

(* Evict one service from the tenant holding the largest guaranteed
   surplus over its fair share (ties to the lighter weight): most
   recently admitted FID first, so long-established services are
   protected and a noisy neighbor's freshest flood unwinds first.
   Returns blocks freed (0 = nobody left to preempt). *)
let evict_one t ~epoch_evicted ~modeled =
  let victim_tenant =
    List.fold_left
      (fun best info ->
        let id = info.Tenant.id in
        let s = surplus t ~tenant:id in
        if s <= 1e-9 || Tenant.charged_fids t.reg ~tenant:id = [] then best
        else
          match best with
          | None -> Some (id, s, info.Tenant.weight)
          | Some (_, bs, bw) ->
            if
              s > bs +. 1e-9
              || (Float.abs (s -. bs) <= 1e-9 && info.Tenant.weight < bw)
            then Some (id, s, info.Tenant.weight)
            else best)
      None (Tenant.tenants t.reg)
  in
  match victim_tenant with
  | None -> 0
  | Some (vt, _, _) -> evict_fid t ~tenant:vt ~epoch_evicted ~modeled

(* Quota-shrink reclamation: after {!Tenant.set_quota} lowers a
   ceiling, evict each over-quota tenant's freshest services until its
   charge fits again.  Victims are parked and re-queued exactly as in
   preemption, so they re-admit within the new quota on the next
   drain. *)
let reclaim t =
  let epoch_evicted = ref [] in
  let modeled = ref 0.0 in
  List.iter
    (fun info ->
      let id = info.Tenant.id in
      let rec go () =
        if
          Tenant.over_quota_blocks t.reg ~tenant:id > 0
          && evict_fid t ~tenant:id ~epoch_evicted ~modeled > 0
        then go ()
      in
      go ())
    (Tenant.tenants t.reg);
  t.clock <- t.clock +. !modeled;
  List.rev !epoch_evicted

(* {2 Admission epochs} *)

let deny t ~denied r (reason : denial) =
  settle t ~fid:r.r_fid (Denied reason);
  denied := (r.r_tenant, r.r_fid, reason) :: !denied;
  Timeseries.add t.series ~t:t.clock "tenant.denied";
  Telemetry.incr t.tel
    (match reason with
    | `Quota -> "tenant.denied.quota"
    | `Capacity -> "tenant.denied.capacity"
    | `Bad _ -> "tenant.denied.bad")

let contended t = Hashtbl.length t.waiting_entitled > 0

let defer_or_deny t ~denied r (reason : denial) =
  if r.r_defers >= t.cfg.defer_limit then begin
    deny t ~denied r reason;
    `Drop
  end
  else begin
    r.r_defers <- r.r_defers + 1;
    Telemetry.incr t.tel "tenant.deferrals";
    Timeseries.add t.series ~t:t.clock "tenant.deferrals";
    `Defer
  end

(* One admission epoch: WRR-pick a batch under quota/entitlement
   classification, push it through the controller's batched drain,
   settle outcomes, and reclaim capacity for entitled requests the
   allocator had to reject.  None = no progress possible (everything
   queued is deferred). *)
let run_epoch t =
  let denied = ref [] and epoch_evicted = ref [] in
  let modeled = ref 0.0 in
  (* Charges land only after the controller drain, so quota and
     entitlement checks must also count what this batch has already
     picked for the tenant — otherwise two requests that individually
     fit a quota both pass and the tenant overshoots within one epoch. *)
  let pending_blocks = Hashtbl.create 8 in
  let pending_stages = Hashtbl.create 8 in
  let pending tbl tenant =
    match Hashtbl.find_opt tbl tenant with Some v -> v | None -> 0
  in
  let classify ~tenant r =
    if r.r_cancelled then `Drop
    else begin
      let quota =
        match Tenant.info t.reg tenant with
        | Some i -> i.Tenant.quota
        | None -> Tenant.unlimited
      in
      let batch_blocks = pending pending_blocks tenant in
      if
        r.r_charge > quota.Tenant.max_blocks
        || quota.Tenant.max_fids < 1
        || r.r_stage_demand > quota.Tenant.max_stages
      then begin
        (* Can never fit, whatever departs. *)
        deny t ~denied r `Quota;
        `Drop
      end
      else if
        Tenant.would_exceed t.reg ~tenant
          ~blocks:(r.r_charge + batch_blocks)
          ~stages:(r.r_stage_demand + pending pending_stages tenant)
      then defer_or_deny t ~denied r `Quota
      else if
        contended t
        && not (under_entitlement t ~tenant ~extra:(r.r_charge + batch_blocks))
      then defer_or_deny t ~denied r `Capacity
      else begin
        Hashtbl.replace pending_blocks tenant (batch_blocks + r.r_charge);
        Hashtbl.replace pending_stages tenant
          (pending pending_stages tenant + r.r_stage_demand);
        `Take
      end
    end
  in
  let batch =
    Wrr.take t.queue ~weight:(weight_of t) ~classify ~max:t.cfg.max_batch
  in
  if batch.Wrr.taken = [] && batch.Wrr.dropped = [] then None
  else begin
    let taken = List.map snd batch.Wrr.taken in
    List.iter
      (fun r ->
        Controller.enqueue_request t.ctrl
          (Negotiate.request_packet ~fid:r.r_fid ~seq:r.r_retries r.r_app))
      taken;
    let results =
      match taken with
      | [] -> []
      | _ -> (
        match Controller.drain ~max_batch:(List.length taken) t.ctrl with
        | [ e ] ->
          modeled :=
            !modeled
            +. Cost_model.total e.Controller.epoch_timing
            -. e.Controller.epoch_timing.Cost_model.allocation_s;
          assert (List.length e.Controller.results = List.length taken);
          List.combine taken e.Controller.results
        | _ -> assert false)
    in
    let granted = ref [] in
    let needed = ref 0 in
    List.iter
      (fun (r, result) ->
        match result with
        | Ok (_ : Controller.provision) ->
          let fid = r.r_fid in
          let stages =
            match Allocator.regions_of (alloc t) ~fid with
            | Some regions -> List.map (fun sr -> sr.Allocator.stage) regions
            | None -> []
          in
          Tenant.charge t.reg ~fid ~blocks:r.r_charge ~stages;
          Hashtbl.remove t.waiting_entitled fid;
          (match Hashtbl.find_opt t.parked_state fid with
          | Some state ->
            (* Relocated evictee: repopulate its registers. *)
            inject_state t ~fid state;
            Hashtbl.remove t.parked_state fid;
            modeled :=
              !modeled
              +. (float_of_int (state_words state)
                 *. t.cost.Cost_model.snapshot_word_s);
            Telemetry.incr t.tel "tenant.relocations"
          | None -> ());
          Hashtbl.replace t.decisions fid Granted;
          granted := (r.r_tenant, fid) :: !granted;
          Telemetry.incr t.tel "tenant.granted"
        | Error (`Bad_packet msg) -> deny t ~denied r (`Bad msg)
        | Error (`Rejected (_ : Allocator.rejected)) ->
          r.r_retries <- r.r_retries + 1;
          if r.r_retries > t.cfg.retry_limit then deny t ~denied r `Capacity
          else begin
            if under_entitlement t ~tenant:r.r_tenant ~extra:r.r_charge then begin
              Hashtbl.replace t.waiting_entitled r.r_fid ();
              needed := !needed + r.r_charge
            end;
            Wrr.push_front t.queue ~tenant:r.r_tenant r
          end)
      results;
    (* Reclaim for the entitled rejects: evict over-share tenants'
       freshest services until the shortfall is covered or the per-epoch
       eviction budget runs out. *)
    let freed = ref 0 and evictions = ref 0 in
    while
      !needed > !freed
      && !evictions < t.cfg.max_evictions_per_epoch
      &&
      let f = evict_one t ~epoch_evicted ~modeled in
      freed := !freed + f;
      if f > 0 then incr evictions;
      f > 0
    do
      ()
    done;
    (* Per-tenant gauges: guaranteed charge plus actual holdings
       (elastic growth included) from the allocator's live residency. *)
    let actual = Hashtbl.create 32 in
    List.iter
      (fun (fid, blocks) ->
        match Tenant.tenant_of t.reg ~fid with
        | Some tenant ->
          let prev =
            match Hashtbl.find_opt actual tenant with Some b -> b | None -> 0
          in
          Hashtbl.replace actual tenant (prev + blocks)
        | None -> ())
      (Allocator.resident_blocks (alloc t));
    List.iter
      (fun info ->
        let id = info.Tenant.id in
        Telemetry.set_gauge t.tel
          (Printf.sprintf "tenant.%d.blocks" id)
          (float_of_int (Tenant.usage t.reg id).Tenant.blocks);
        Telemetry.set_gauge t.tel
          (Printf.sprintf "tenant.%d.actual_blocks" id)
          (float_of_int
             (match Hashtbl.find_opt actual id with Some b -> b | None -> 0)))
      (Tenant.tenants t.reg);
    t.clock <- t.clock +. !modeled;
    let granted = List.rev !granted in
    (* First-grant admission latency off the modeled clock. *)
    List.iter
      (fun (tenant, fid) ->
        if not (Hashtbl.mem t.latencies fid) then
          match Hashtbl.find_opt t.reqs fid with
          | Some r ->
            let lat = t.clock -. r.r_submitted_s in
            Hashtbl.replace t.latencies fid (tenant, lat);
            Timeseries.observe t.series ~t:t.clock "tenant.admit_latency_s" lat;
            Timeseries.add t.series ~t:t.clock
              (Printf.sprintf "tenant.%d.granted" tenant)
          | None -> ())
      granted;
    let summary =
      {
        epoch_index = t.epoch;
        scheduled = List.length taken;
        granted;
        denied = List.rev !denied;
        evicted = List.rev !epoch_evicted;
        deferred = Wrr.depth t.queue;
        modeled_epoch_s = !modeled;
        clock_s = t.clock;
      }
    in
    t.epoch <- t.epoch + 1;
    Telemetry.incr t.tel "tenant.epochs";
    (match
       Trace.start_trace t.tracer "tenant.epoch"
         ~attrs:
           [
             ("epoch", string_of_int summary.epoch_index);
             ("scheduled", string_of_int summary.scheduled);
             ("granted", string_of_int (List.length summary.granted));
             ("evicted", string_of_int (List.length summary.evicted));
           ]
     with
    | Some _ | None -> ());
    Some summary
  end

let drain t =
  let rec go acc =
    if Wrr.depth t.queue = 0 then List.rev acc
    else
      match run_epoch t with
      | None -> List.rev acc
      | Some summary -> go (summary :: acc)
  in
  go []
