open Import

(** The virtual switch: one {!Controller} multiplexed across tenants.

    [Vswitch] sits in front of the controller's batched epoch admission
    ({!Controller.enqueue_request} / {!Controller.drain}) and adds the
    three mechanisms of ROADMAP item 2:

    - {b WRR-fair batching}: submissions land in per-tenant queues; each
      epoch's batch is assembled by deficit-weighted round robin
      ({!Wrr}), so under contention a tenant's admission rate tracks its
      weight, not its offered load.
    - {b Quota enforcement}: a request whose footprint can never fit its
      tenant's quota is denied outright; one that merely does not fit
      {e now} — counting charges the current batch has already picked
      for the tenant — is deferred (head-of-line within its tenant) and
      retried on later epochs until [defer_limit] runs out.
    - {b Preemptive reclamation}: when an under-fair-share tenant's
      request is rejected for capacity, the vswitch evicts services from
      tenants holding more than their weighted fair share — most
      recently admitted first — drains their register state through
      memsync capsules (the PR 3 migration machinery run against this
      switch's own tables), parks the state, and re-queues the victims
      for re-admission within their entitlement.  No FID is ever lost
      or double-allocated: a victim is either resident, parked+queued,
      or terminally denied-and-reported.

    With a single registered tenant every mechanism degenerates to the
    identity: decisions are identical to driving the controller's drain
    directly (the differential smoke in [test/test_tenant.ml]). *)

type config = {
  max_batch : int;  (** WRR picks per admission epoch *)
  defer_limit : int;
      (** epochs a quota-blocked request may defer before denial *)
  retry_limit : int;
      (** capacity rejections (each possibly triggering preemption)
          before a request is denied; also caps how often one victim can
          be evicted-and-readmitted *)
  max_evictions_per_epoch : int;
  memsync_word_budget : int;
      (** regions above this many words use control-plane reads/writes
          instead of memsync capsules, as in {!Fleet} migration *)
  entitlement_capacity : int option;
      (** the block capacity weighted fair shares are computed against.
          [None] (the default) uses the raw pool size
          ({!Allocator.total_blocks}); pass the {e achievable} capacity
          when program-shape constraints (an access that can only land
          on a subset of stages) make part of the pool unreachable for
          the tenants' service mix, or entitlements will promise blocks
          preemption can never deliver *)
}

val default_config : config
(** 64-request epochs, defer limit 64, retry limit 16, at most 32
    evictions per epoch, 64 Ki-word memsync budget. *)

type denial = [ `Quota | `Capacity | `Bad of string ]

type decision =
  | Queued  (** waiting in its tenant's queue *)
  | Granted  (** resident *)
  | Evicted  (** preempted: state parked, re-queued for re-admission *)
  | Denied of denial  (** terminal *)
  | Departed  (** released by its owner *)

type epoch_summary = {
  epoch_index : int;
  scheduled : int;  (** requests the WRR scheduler picked *)
  granted : (int * int) list;  (** (tenant, fid) admitted this epoch *)
  denied : (int * int * denial) list;
  evicted : (int * int) list;  (** (tenant, fid) preempted this epoch *)
  deferred : int;  (** requests still queued when the epoch ended *)
  modeled_epoch_s : float;
      (** deterministic modeled duration: the epoch's batched
          table-write session plus eviction departures and memsync word
          movement, allocation compute excluded (machine-independent,
          like {!Experiments.Churn_pipeline}) *)
  clock_s : float;  (** modeled virtual clock at epoch end *)
}

type t

val create :
  ?config:config ->
  ?cost:Cost_model.t ->
  ?telemetry:Telemetry.t ->
  ?series:Timeseries.t ->
  ?tracer:Trace.t ->
  registry:Tenant.t ->
  Controller.t ->
  t
(** [cost] (default {!Cost_model.default}) prices the modeled clock's
    eviction work.  [telemetry] receives [tenant.submitted/granted/
    denied.quota/denied.capacity/deferrals/evictions/epochs] counters,
    [tenant.memsync.words_moved], and per-tenant [tenant.<id>.blocks]
    gauges refreshed every epoch. *)

val controller : t -> Controller.t
val registry : t -> Tenant.t

val submit : t -> tenant:int -> fid:int -> App.t -> unit
(** Queue an allocation request for [fid] on behalf of [tenant] (binds
    the FID to the tenant).  Constant-time; admission happens in
    {!drain}.
    @raise Invalid_argument on unknown tenant, a FID already submitted,
    or a FID bound to a different tenant. *)

val depart : t -> fid:int -> bool
(** Release the service: a resident FID departs through the controller
    (freeing its charge), a queued or parked one is cancelled.  False if
    the FID is unknown or already terminal. *)

val drain : t -> epoch_summary list
(** Run admission epochs until every queue is empty or only deferred
    requests remain (those stay queued for a later drain, after
    departures make room).  [] if nothing is queued. *)

val reclaim : t -> (int * int) list
(** Quota-shrink reclamation: evict each over-quota tenant's services —
    most recently admitted first — until its charge fits its (possibly
    just-lowered) quota again.  Victims get the standard eviction
    treatment (state drained via memsync, parked, re-queued) and are
    returned as [(tenant, fid)] in eviction order.  [] when every
    tenant is within quota. *)

val pending : t -> int
(** Queued requests (including deferred and re-queued evictees). *)

val decision_of : t -> fid:int -> decision option
val parked : t -> int list
(** FIDs currently evicted with state parked, ascending. *)

val modeled_clock : t -> float

val admission_latencies : t -> (int * int * float) list
(** [(tenant, fid, latency_s)] per granted FID: modeled time from submit
    to the end of the granting epoch (first grant; re-admissions after
    eviction do not reset it).  Saturation p99s come from here. *)
