(* Per-tenant deque: [front] is ready to pop, [back] is reversed. *)
type 'a deque = { mutable front : 'a list; mutable back : 'a list }

type 'a t = {
  queues : (int, 'a deque) Hashtbl.t;
  credits : (int, int) Hashtbl.t;
  mutable total : int;
  mutable cursor : int;
      (* last round-leader: the next round starts at the first active
         tenant after it (cyclic), so no tenant is systematically served
         late in every batch *)
}

let create () =
  {
    queues = Hashtbl.create 64;
    credits = Hashtbl.create 64;
    total = 0;
    cursor = min_int;
  }

let deque t tenant =
  match Hashtbl.find_opt t.queues tenant with
  | Some d -> d
  | None ->
    let d = { front = []; back = [] } in
    Hashtbl.replace t.queues tenant d;
    d

let dq_len d = List.length d.front + List.length d.back
let dq_is_empty d = d.front = [] && d.back = []

let dq_pop d =
  match d.front with
  | x :: rest ->
    d.front <- rest;
    Some x
  | [] -> (
    match List.rev d.back with
    | [] -> None
    | x :: rest ->
      d.back <- [];
      d.front <- rest;
      Some x)

let push t ~tenant x =
  let d = deque t tenant in
  d.back <- x :: d.back;
  t.total <- t.total + 1

let push_front t ~tenant x =
  let d = deque t tenant in
  d.front <- x :: d.front;
  t.total <- t.total + 1

let depth t = t.total

let tenant_depth t ~tenant =
  match Hashtbl.find_opt t.queues tenant with None -> 0 | Some d -> dq_len d

let queued_tenants t =
  Hashtbl.fold (fun id d acc -> if dq_is_empty d then acc else id :: acc) t.queues []
  |> List.sort compare

type 'a batch = { taken : (int * 'a) list; dropped : (int * 'a) list }

let take t ~weight ~classify ~max =
  if max <= 0 then invalid_arg "Wrr.take: max <= 0";
  let taken = ref [] and dropped = ref [] in
  let n_taken = ref 0 in
  let blocked = Hashtbl.create 16 in
  let credit_of id =
    match Hashtbl.find_opt t.credits id with Some c -> c | None -> 0
  in
  let continue = ref true in
  while !continue do
    let active =
      List.filter (fun id -> not (Hashtbl.mem blocked id)) (queued_tenants t)
    in
    (* Rotate so the round starts just past the previous round-leader:
       with a fixed ascending order the highest ids would land at the
       tail of every batch and systematically lose downstream
       first-come-first-served admission races. *)
    let active =
      let later, earlier = List.partition (fun id -> id > t.cursor) active in
      later @ earlier
    in
    if active = [] || !n_taken >= max then continue := false
    else begin
      (match active with
      | leader :: _ -> t.cursor <- leader
      | [] -> ());
      let progressed = ref false in
      List.iter
        (fun id ->
          if !n_taken < max && not (Hashtbl.mem blocked id) then begin
            let w = weight id in
            if w <= 0 then invalid_arg "Wrr.take: non-positive weight";
            Hashtbl.replace t.credits id (credit_of id + w);
            let serving = ref true in
            while !serving do
              let d = deque t id in
              if dq_is_empty d || !n_taken >= max || credit_of id < 1 then
                serving := false
              else
                match dq_pop d with
                | None -> serving := false
                | Some x -> (
                  t.total <- t.total - 1;
                  match classify ~tenant:id x with
                  | `Take ->
                    taken := (id, x) :: !taken;
                    incr n_taken;
                    Hashtbl.replace t.credits id (credit_of id - 1);
                    progressed := true
                  | `Drop ->
                    dropped := (id, x) :: !dropped;
                    progressed := true
                  | `Defer ->
                    d.front <- x :: d.front;
                    t.total <- t.total + 1;
                    Hashtbl.replace blocked id ();
                    serving := false)
            done
          end)
        active;
      if not !progressed then continue := false
    end
  done;
  (* A drained queue forfeits its credit (DRR): idle tenants must not
     bank arbitrarily large bursts for later. *)
  Hashtbl.iter
    (fun id d -> if dq_is_empty d then Hashtbl.remove t.credits id)
    t.queues;
  { taken = List.rev !taken; dropped = List.rev !dropped }
