(** Deficit-weighted round-robin over per-tenant FIFO queues.

    The scheduling half of switch virtualization: each tenant has its
    own FIFO of pending items, and {!take} assembles an admission batch
    by visiting non-empty queues round-robin, granting each a per-round
    credit equal to its weight (OS4C's [tx_scheduler_w] ported to the
    control plane).  Each round starts one position past the previous
    round's leader (a rotating cursor persisted across calls), so no
    tenant is pinned to the tail of every batch — position in the batch
    matters downstream, where the allocator admits first-come until the
    epoch's capacity runs out.  Credits persist across calls, so a
    tenant short-changed in one epoch catches up in the next; a queue
    that empties forfeits its accumulated credit (classic DRR), so idle
    tenants cannot hoard bursts.

    Everything is deterministic: same pushes, weights and classifier
    decisions produce the same batches. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> tenant:int -> 'a -> unit
val push_front : 'a t -> tenant:int -> 'a -> unit
(** Re-queue at the head — retries keep their position. *)

val depth : 'a t -> int
(** Total queued items across tenants. *)

val tenant_depth : 'a t -> tenant:int -> int
val queued_tenants : 'a t -> int list
(** Tenants with non-empty queues, ascending. *)

type 'a batch = {
  taken : (int * 'a) list;  (** (tenant, item) in pick order *)
  dropped : (int * 'a) list;  (** classifier-rejected, in scan order *)
}

val take :
  'a t ->
  weight:(int -> int) ->
  classify:(tenant:int -> 'a -> [ `Take | `Defer | `Drop ]) ->
  max:int ->
  'a batch
(** Assemble up to [max] items.  Per item the classifier decides:
    [`Take] consumes one credit and joins the batch; [`Drop] removes the
    item without consuming credit (a terminal rejection); [`Defer] puts
    the item back at the head and blocks that tenant's queue for the
    rest of this call (head-of-line order within a tenant is
    deliberate — a deferred request must not be overtaken by its own
    tenant's later requests).  Returns when the batch is full or no
    unblocked queue remains.  [weight] must be positive for any tenant
    that has queued items. *)
