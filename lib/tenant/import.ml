(* Short aliases for sibling libraries used by the tenant layer. *)
module Telemetry = Activermt_telemetry.Telemetry
module Timeseries = Activermt_telemetry.Timeseries
module Trace = Activermt_telemetry.Trace
module Allocator = Activermt_alloc.Allocator
module Pool = Activermt_alloc.Pool
module Controller = Activermt_control.Controller
module Cost_model = Activermt_control.Cost_model
module App = Activermt_apps.App
module Negotiate = Activermt_client.Negotiate
module Memsync_driver = Activermt_client.Memsync_driver
module Runtime = Activermt.Runtime
module Jit = Activermt.Jit
