open Import

type quota = { max_blocks : int; max_fids : int; max_stages : int }

let unlimited = { max_blocks = max_int; max_fids = max_int; max_stages = max_int }
let quota_blocks max_blocks = { unlimited with max_blocks }

type info = { id : int; name : string; weight : int; quota : quota }
type usage = { blocks : int; fids : int; stages : int }

let no_usage = { blocks = 0; fids = 0; stages = 0 }

type footprint = { f_tenant : int; f_blocks : int; f_stages : int list; f_seq : int }

type tenant_state = {
  mutable t_info : info;
  mutable t_blocks : int;  (* invariant: sum of charged footprints *)
  mutable t_fids : int;
  fids : (int, unit) Hashtbl.t;
}

type t = {
  tenants : (int, tenant_state) Hashtbl.t;
  bindings : (int, int) Hashtbl.t;  (* fid -> tenant *)
  footprints : (int, footprint) Hashtbl.t;  (* fid -> charged footprint *)
  tel : Telemetry.t;
  mutable seq : int;  (* admission-order stamp for recency *)
}

let create ?(telemetry = Telemetry.default) () =
  {
    tenants = Hashtbl.create 64;
    bindings = Hashtbl.create 256;
    footprints = Hashtbl.create 256;
    tel = telemetry;
    seq = 0;
  }

let state t id = Hashtbl.find_opt t.tenants id

let register t ?name ?(weight = 1) ?(quota = unlimited) id =
  if Hashtbl.mem t.tenants id then
    invalid_arg (Printf.sprintf "Tenant.register: tenant %d already registered" id);
  if weight <= 0 then invalid_arg "Tenant.register: weight must be positive";
  let name = match name with Some n -> n | None -> Printf.sprintf "t%d" id in
  let info = { id; name; weight; quota } in
  Hashtbl.replace t.tenants id
    { t_info = info; t_blocks = 0; t_fids = 0; fids = Hashtbl.create 16 };
  Telemetry.incr t.tel "tenant.registered";
  info

let set_quota t ~tenant quota =
  match state t tenant with
  | None -> invalid_arg (Printf.sprintf "Tenant.set_quota: unknown tenant %d" tenant)
  | Some s -> s.t_info <- { s.t_info with quota }

let is_registered t id = Hashtbl.mem t.tenants id
let info t id = Option.map (fun s -> s.t_info) (state t id)

let tenants t =
  Hashtbl.fold (fun _ s acc -> s.t_info :: acc) t.tenants []
  |> List.sort (fun a b -> compare a.id b.id)

let n_tenants t = Hashtbl.length t.tenants

let total_weight t =
  Hashtbl.fold (fun _ s acc -> acc + s.t_info.weight) t.tenants 0

let tenant_of t ~fid = Hashtbl.find_opt t.bindings fid

let bind t ~fid ~tenant =
  if not (Hashtbl.mem t.tenants tenant) then
    invalid_arg (Printf.sprintf "Tenant.bind: unknown tenant %d" tenant);
  match Hashtbl.find_opt t.bindings fid with
  | Some owner when owner <> tenant ->
    invalid_arg
      (Printf.sprintf "Tenant.bind: fid %d already bound to tenant %d" fid owner)
  | _ -> Hashtbl.replace t.bindings fid tenant

let discharge t ~fid =
  match Hashtbl.find_opt t.footprints fid with
  | None -> ()
  | Some fp ->
    Hashtbl.remove t.footprints fid;
    (match state t fp.f_tenant with
    | None -> ()
    | Some s ->
      s.t_blocks <- s.t_blocks - fp.f_blocks;
      s.t_fids <- s.t_fids - 1;
      Hashtbl.remove s.fids fid;
      assert (s.t_blocks >= 0 && s.t_fids >= 0))

let unbind t ~fid =
  discharge t ~fid;
  Hashtbl.remove t.bindings fid

let charge t ~fid ~blocks ~stages =
  if blocks < 0 then invalid_arg "Tenant.charge: negative blocks";
  match Hashtbl.find_opt t.bindings fid with
  | None -> invalid_arg (Printf.sprintf "Tenant.charge: fid %d is not bound" fid)
  | Some tenant ->
    (* Re-charge replaces: keep the original admission stamp so an
       elastic resize does not make an old resident look fresh. *)
    let prev = Hashtbl.find_opt t.footprints fid in
    discharge t ~fid;
    let f_seq =
      match prev with
      | Some fp -> fp.f_seq
      | None ->
        t.seq <- t.seq + 1;
        t.seq
    in
    Hashtbl.replace t.footprints fid
      { f_tenant = tenant; f_blocks = blocks; f_stages = stages; f_seq };
    (match state t tenant with
    | None -> ()
    | Some s ->
      s.t_blocks <- s.t_blocks + blocks;
      s.t_fids <- s.t_fids + 1;
      Hashtbl.replace s.fids fid ())

let refresh_blocks t resident =
  List.iter
    (fun (fid, blocks) ->
      match Hashtbl.find_opt t.footprints fid with
      | None -> ()
      | Some fp ->
        if fp.f_blocks <> blocks then begin
          Hashtbl.replace t.footprints fid { fp with f_blocks = blocks };
          match state t fp.f_tenant with
          | None -> ()
          | Some s ->
            s.t_blocks <- s.t_blocks + blocks - fp.f_blocks;
            assert (s.t_blocks >= 0)
        end)
    resident

let usage t id =
  match state t id with
  | None -> no_usage
  | Some s ->
    let distinct = Hashtbl.create 32 in
    Hashtbl.iter
      (fun fid () ->
        match Hashtbl.find_opt t.footprints fid with
        | None -> ()
        | Some fp ->
          List.iter (fun st -> Hashtbl.replace distinct st ()) fp.f_stages)
      s.fids;
    { blocks = s.t_blocks; fids = s.t_fids; stages = Hashtbl.length distinct }

let charged_fids t ~tenant =
  match state t tenant with
  | None -> []
  | Some s ->
    Hashtbl.fold
      (fun fid () acc ->
        match Hashtbl.find_opt t.footprints fid with
        | None -> acc
        | Some fp -> (fid, fp.f_seq) :: acc)
      s.fids []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
    |> List.map fst

let would_exceed t ~tenant ~blocks ~stages =
  match state t tenant with
  | None -> true
  | Some s ->
    let q = s.t_info.quota in
    let u = usage t tenant in
    u.blocks + blocks > q.max_blocks
    || u.fids + 1 > q.max_fids
    || u.stages + stages > q.max_stages

let over_quota_blocks t ~tenant =
  match state t tenant with
  | None -> 0
  | Some s -> max 0 (s.t_blocks - s.t_info.quota.max_blocks)

let fair_blocks t ~tenant ~capacity =
  match state t tenant with
  | None -> 0.0
  | Some s ->
    let tw = total_weight t in
    if tw = 0 then 0.0
    else float_of_int capacity *. float_of_int s.t_info.weight /. float_of_int tw
