open Import

(** Tenant registry: identities, weights, quotas and resource accounting.

    The registry is the bookkeeping half of switch virtualization
    (ROADMAP item 2, the OS4C direction): each tenant owns a share of
    the device expressed as a weight (its WRR ration under contention)
    and a quota (hard ceilings on blocks, concurrent FIDs and distinct
    stages).  Every admitted service FID is bound to exactly one tenant
    and charged against it while resident; {!Vswitch} consults the
    registry on every admission decision and refreshes block charges
    after each epoch, since elastic residents are resized by the
    allocator behind the tenant layer's back. *)

type quota = {
  max_blocks : int;  (** total memory blocks across stages *)
  max_fids : int;  (** concurrently resident services *)
  max_stages : int;
      (** distinct pipeline stages the tenant's services may occupy
          (checked conservatively at admission: a new service is assumed
          to need one fresh stage per memory access) *)
}

val unlimited : quota
(** All ceilings at [max_int]. *)

val quota_blocks : int -> quota
(** [unlimited] with [max_blocks] set — the common block-ration quota. *)

type info = { id : int; name : string; weight : int; quota : quota }

type usage = {
  blocks : int;  (** memory blocks charged to resident services *)
  fids : int;  (** resident services *)
  stages : int;  (** distinct stages occupied *)
}

val no_usage : usage

type t

val create : ?telemetry:Telemetry.t -> unit -> t

val register :
  t -> ?name:string -> ?weight:int -> ?quota:quota -> int -> info
(** Register tenant [id] (default name ["t<id>"], weight [1], quota
    {!unlimited}).
    @raise Invalid_argument on duplicate id or non-positive weight. *)

val set_quota : t -> tenant:int -> quota -> unit
(** Replace a tenant's quota (runtime re-provisioning).  Existing
    residents are not touched here; {!Vswitch.drain} reclaims any
    resulting over-quota surplus on its next epoch.
    @raise Invalid_argument on unknown tenant. *)

val is_registered : t -> int -> bool
val info : t -> int -> info option
val tenants : t -> info list
(** All registered tenants, ascending id. *)

val n_tenants : t -> int
val total_weight : t -> int

(** {2 FID binding and charging} *)

val bind : t -> fid:int -> tenant:int -> unit
(** Associate a service FID with the tenant that submitted it.  Binding
    precedes admission; no resources are charged until {!charge}.
    Rebinding an already-bound FID to a different tenant raises.
    @raise Invalid_argument on unknown tenant or cross-tenant rebind. *)

val unbind : t -> fid:int -> unit
(** Discharge (if charged) and forget the FID.  Unknown FIDs are a
    no-op. *)

val tenant_of : t -> fid:int -> int option

val charge : t -> fid:int -> blocks:int -> stages:int list -> unit
(** Record the FID's resident footprint under its bound tenant,
    replacing any previous footprint for the same FID (re-admission
    after eviction, elastic resize).  Admission order is remembered for
    recency-based victim selection.
    @raise Invalid_argument if the FID is unbound or [blocks < 0]. *)

val discharge : t -> fid:int -> unit
(** Remove the FID's footprint (departure or eviction) but keep the
    tenant binding, so a parked evictee still belongs to its tenant.
    Unknown or uncharged FIDs are a no-op. *)

val refresh_blocks : t -> (int * int) list -> unit
(** Bulk-update the block charge of already-charged FIDs from the
    allocator's live residency ({!Allocator.resident_blocks}) — the
    post-epoch sync that accounts for elastic resizing.  FIDs the
    registry does not know are ignored (single-tenant setups that bypass
    the registry). *)

val usage : t -> int -> usage
(** Current footprint of a tenant; {!no_usage} for unknown tenants. *)

val charged_fids : t -> tenant:int -> int list
(** The tenant's charged (resident) FIDs, oldest admission first —
    reverse for most-recent-first victim scans. *)

val would_exceed : t -> tenant:int -> blocks:int -> stages:int -> bool
(** Would admitting one more service with this footprint break the
    tenant's quota given current usage?  [stages] is the conservative
    fresh-stage demand (one per memory access). *)

val over_quota_blocks : t -> tenant:int -> int
(** [max 0 (usage.blocks - quota.max_blocks)]: the surplus a reclaim
    pass must evict after a quota shrink. *)

val fair_blocks : t -> tenant:int -> capacity:int -> float
(** The tenant's weighted fair share of [capacity] blocks:
    [capacity * weight / total_weight].  0 for unknown tenants. *)
