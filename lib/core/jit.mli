(** Data-plane specialization tier: compiles an admitted FID's program
    into a chain of fused native closures and caches it keyed by
    [(fid, allocation_epoch)].

    The compiled form resolves at compile time everything the interpreter
    re-derives per packet — granted region bounds, translation constants,
    privilege, the recirculation allowance, stage register arrays — and
    keeps branches only at the data-dependent points (complete/disabled
    flags, recirculation checks).  Execution is bit-identical to
    {!Runtime.run}: the same [result], the same [trace_event] stream, the
    same register-array and device-counter side effects.

    Invalidation is automatic: {!Table.epoch} is bumped by every install
    and remove, so reallocation, migration, departure, and privilege or
    pass-limit changes all make cached closures stale; the next packet
    recompiles against the new allocation.  Quiescence remains a dynamic
    per-packet check.  Non-[Exec] packets, quiesced FIDs, uninstalled FIDs
    and disabled JITs ([enabled = false], the [--no-jit] escape hatch)
    fall back to the interpreter. *)

type t

type mode =
  | Compiled  (** served from the closure cache *)
  | Compiled_fresh  (** compiled on this packet (cache miss) *)
  | Interpreted  (** interpreter fallback *)

val create : ?enabled:bool -> ?telemetry:Activermt_telemetry.Telemetry.t -> Table.t -> t
(** A JIT over a switch's match tables.  [enabled] (default true) false
    turns every execution into an interpreter fallback.  Counters
    [jit.compile]/[jit.hit]/[jit.miss]/[jit.invalidate], the
    [jit.enabled] gauge and the [jit.compile] span land in [telemetry]
    (default {!Activermt_telemetry.Telemetry.default}). *)

val run :
  ?on_event:(Runtime.trace_event -> unit) -> t -> ?meta:Runtime.meta -> Packet.t ->
  Runtime.result
(** Drop-in replacement for {!Runtime.run}. *)

val run_info :
  ?on_event:(Runtime.trace_event -> unit) -> t -> ?meta:Runtime.meta -> Packet.t ->
  Runtime.result * mode
(** [run] plus how the packet was executed, for span attributes. *)

val would_specialize : t -> Packet.t -> bool
(** Whether [run] would take the compiled path for this packet (modulo
    compilation itself): enabled, [Exec] payload, installed, not
    quiesced.  Cheap; used to stamp trace spans before execution. *)

val invalidate : t -> fid:Packet.fid -> unit
(** Drop any cached closures for the FID (counted under
    [jit.invalidate]).  Purely an eviction: correctness never depends on
    it, because stale closures are already unreachable once the
    allocation epoch moves. *)

val invalidate_all : t -> unit

val enabled : t -> bool
val tables : t -> Table.t
val cache_size : t -> int

val flush_stats : t -> unit
(** Publish accumulated hit/miss/compile/invalidate counts to the
    telemetry registry.  The hot path only bumps plain fields (a registry
    increment costs more than a compiled execution); compiles and
    invalidations flush automatically, so only the hit count can lag —
    call this before reading or dumping metrics. *)

val stats : t -> int * int * int * int
(** [(hits, misses, compiles, invalidates)] since creation, read from the
    local fields (no flush needed). *)
