type entry = {
  region : Packet.region option;
  xmask : int;
  xoffset : int;
  virtual_addressing : bool;
}

type app_state = {
  entries : entry array;  (* indexed by stage *)
  handles : (int * Rmt.Tcam.handle) list;  (* (stage, protection range) *)
  regions : Packet.region option array;
  privileged : bool;
  max_passes : int option;
}

type update_stats = { entries_added : int; entries_removed : int }

type t = {
  device : Rmt.Device.t;
  apps : (Packet.fid, app_state) Hashtbl.t;
  quiesced : (Packet.fid, unit) Hashtbl.t;
  epochs : (Packet.fid, int ref) Hashtbl.t;
  mutable added : int;
  mutable removed : int;
}

let create device =
  {
    device;
    apps = Hashtbl.create 64;
    quiesced = Hashtbl.create 8;
    epochs = Hashtbl.create 64;
    added = 0;
    removed = 0;
  }

(* The cell is allocated once per FID and never replaced, so a consumer
   (the JIT's closure cache) can capture it and revalidate with a single
   dereference instead of a table probe per packet. *)
let epoch_ref t ~fid =
  match Hashtbl.find_opt t.epochs fid with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.epochs fid r;
    r

let epoch t ~fid = !(epoch_ref t ~fid)

let bump_epoch t ~fid = incr (epoch_ref t ~fid)

let device t = t.device

(* Largest power of two <= n, minus one: the ADDR_MASK constant for a
   region of n words. *)
let pow2_mask n =
  if n <= 0 then 0
  else begin
    let rec go m = if m * 2 <= n then go (m * 2) else m in
    go 1 - 1
  end

let install ?(privileged = false) ?max_passes t ~fid ~virtual_addressing ~regions =
  if Hashtbl.mem t.apps fid then Error `Already_installed
  else begin
    let n = Rmt.Device.n_stages t.device in
    if Array.length regions <> n then
      invalid_arg "Table.install: regions array must have one slot per stage";
    (* Translation constants at stage s describe the app's next
       memory-access stage >= s (the compiler schedules ADDR_* right before
       the access, but any earlier stage works too). *)
    let next_region = Array.make n None in
    let last = ref None in
    for s = n - 1 downto 0 do
      (match regions.(s) with Some r -> last := Some r | None -> ());
      next_region.(s) <- !last
    done;
    let entry_of_stage s =
      let xmask, xoffset =
        match next_region.(s) with
        | None -> (0, 0)
        | Some r ->
          ( pow2_mask r.Packet.n_words,
            if virtual_addressing then 0 else r.Packet.start_word )
      in
      { region = regions.(s); xmask; xoffset; virtual_addressing }
    in
    let rec install_protection s acc =
      if s >= n then Ok (List.rev acc)
      else begin
        match regions.(s) with
        | None -> install_protection (s + 1) acc
        | Some r ->
          let stage = Rmt.Device.stage t.device s in
          let lo = r.Packet.start_word and hi = r.Packet.start_word + r.Packet.n_words - 1 in
          (match Rmt.Tcam.install_range stage.Rmt.Device.protection ~lo ~hi with
          | Ok h -> install_protection (s + 1) ((s, h) :: acc)
          | Error `Capacity ->
            (* Roll back everything installed so far. *)
            List.iter
              (fun (s', h') ->
                let st = Rmt.Device.stage t.device s' in
                Rmt.Tcam.remove st.Rmt.Device.protection h')
              acc;
            Error (`Tcam_capacity s))
      end
    in
    match install_protection 0 [] with
    | Error _ as e -> e
    | Ok handles ->
      let entries = Array.init n entry_of_stage in
      Hashtbl.replace t.apps fid
        { entries; handles; regions = Array.copy regions; privileged; max_passes };
      (* one FID-gating entry and one translation entry per stage,
         plus the protection prefixes *)
      t.added <- t.added + (2 * n) + List.length handles;
      bump_epoch t ~fid;
      Ok ()
  end

let remove t ~fid =
  match Hashtbl.find_opt t.apps fid with
  | None -> ()
  | Some app ->
    List.iter
      (fun (s, h) ->
        let st = Rmt.Device.stage t.device s in
        Rmt.Tcam.remove st.Rmt.Device.protection h)
      app.handles;
    t.removed <- t.removed + (2 * Array.length app.entries) + List.length app.handles;
    Hashtbl.remove t.apps fid;
    Hashtbl.remove t.quiesced fid;
    bump_epoch t ~fid

let lookup t ~fid ~stage =
  match Hashtbl.find_opt t.apps fid with
  | None -> None
  | Some app ->
    if stage < 0 || stage >= Array.length app.entries then None
    else Some app.entries.(stage)

let installed t ~fid = Hashtbl.mem t.apps fid

let regions_of t ~fid =
  Option.map (fun app -> Array.copy app.regions) (Hashtbl.find_opt t.apps fid)

let is_privileged t ~fid =
  match Hashtbl.find_opt t.apps fid with
  | Some app -> app.privileged
  | None -> false

let max_passes_of t ~fid =
  match Hashtbl.find_opt t.apps fid with
  | Some app -> app.max_passes
  | None -> None

let is_quiesced t ~fid = Hashtbl.mem t.quiesced fid

let quiesce t ~fid =
  if not (is_quiesced t ~fid) then begin
    Hashtbl.replace t.quiesced fid ();
    bump_epoch t ~fid
  end

let unquiesce t ~fid =
  if is_quiesced t ~fid then begin
    Hashtbl.remove t.quiesced fid;
    bump_epoch t ~fid
  end

let update_stats t = { entries_added = t.added; entries_removed = t.removed }

let reset_update_stats t =
  t.added <- 0;
  t.removed <- 0

let fids t = Hashtbl.fold (fun fid _ acc -> fid :: acc) t.apps []
