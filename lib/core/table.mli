(** Per-switch match-table state installed by the control plane.

    For every admitted FID the controller installs, per logical stage, an
    entry holding the app's memory region in that stage (protection bounds,
    enforced in TCAM) and the translation constants (mask and offset) of
    the app's *next* memory-access stage, which back the ADDR_MASK and
    ADDR_OFFSET instructions (Section 3.2).

    Installing protection consumes TCAM entries in the device
    (range-to-prefix expansion); when a stage's TCAM is full, installation
    fails and rolls back, which is how admission hits the paper's "TCAMs
    end up being the resource bottleneck" limit.

    The table also tracks quiesced FIDs: programs whose packets are
    "deactivated" for the duration of a reallocation (Section 4.3). *)

type entry = {
  region : Packet.region option;  (** app's memory region in this stage *)
  xmask : int;  (** pow2 mask for the next access's region *)
  xoffset : int;  (** offset for the next access's region (0 when the FID
                      uses virtual addressing: the access itself adds it) *)
  virtual_addressing : bool;
}

type t

type update_stats = { entries_added : int; entries_removed : int }
(** Counted across install/remove calls; the provisioning-time cost model
    (Figure 8a) charges per entry. *)

val create : Rmt.Device.t -> t
val device : t -> Rmt.Device.t

val install :
  ?privileged:bool ->
  ?max_passes:int ->
  t ->
  fid:Packet.fid ->
  virtual_addressing:bool ->
  regions:Packet.region option array ->
  (unit, [ `Tcam_capacity of int | `Already_installed ]) result
(** Install an app's allocation ([regions] indexed by logical stage).
    Entries are written for every stage so ADDR_* instructions can execute
    anywhere before the access.  On TCAM exhaustion at some stage the whole
    installation is rolled back.

    [privileged] (default false) gates the forwarding-affecting
    instructions FORK and SET_DST (the privilege levels Section 7.2
    explores); [max_passes] caps the FID's pipeline passes below the
    device recirculation limit (the bandwidth-inflation rate limiting
    Section 7.2 contemplates). *)

val is_privileged : t -> fid:Packet.fid -> bool
val max_passes_of : t -> fid:Packet.fid -> int option

val remove : t -> fid:Packet.fid -> unit
(** Remove all entries and protection ranges for the FID.  Idempotent. *)

val lookup : t -> fid:Packet.fid -> stage:int -> entry option
val installed : t -> fid:Packet.fid -> bool

val epoch : t -> fid:Packet.fid -> int
(** Allocation epoch of a FID on this switch: a monotonically increasing
    counter bumped by every successful [install], every effective
    [remove], and every quiescence transition.  Any change that could
    affect a program's execution semantics — reallocation, migration,
    departure, privilege or pass-limit changes (the controller reinstalls
    for all of these), deactivation — bumps it, so a cached specialization
    keyed by [(fid, epoch)] (see {!Jit}) is invalidated exactly when it
    could disagree with the interpreter. *)

val epoch_ref : t -> fid:Packet.fid -> int ref
(** The cell behind [epoch], allocated once per FID and stable across
    install/remove, so per-packet revalidation is a dereference rather
    than a table probe.  Callers must treat it as read-only. *)

val regions_of : t -> fid:Packet.fid -> Packet.region option array option

val quiesce : t -> fid:Packet.fid -> unit
val unquiesce : t -> fid:Packet.fid -> unit
val is_quiesced : t -> fid:Packet.fid -> bool

val update_stats : t -> update_stats
val reset_update_stats : t -> unit

val fids : t -> Packet.fid list
