open Instr

type decoded = { line : Program.line; executed : bool }

(* Fixed opcode map.  Families with an argument operand occupy four
   consecutive opcodes; branches encode their target in the flag byte. *)
let op_eof = 0x00
let op_nop = 0x01
let op_return = 0x02
let op_cret = 0x03
let op_creti = 0x04
let op_drop = 0x05
let op_fork = 0x06
let op_set_dst = 0x07
let op_rts = 0x08
let op_crts = 0x09
let op_addr_mask = 0x0A
let op_addr_offset = 0x0B
let op_hash = 0x0C
let op_hashdata_5t = 0x0D
let op_mbr_load = 0x10
let op_mbr_store = 0x14
let op_mbr2_load = 0x18
let op_mar_load = 0x1C
let op_copy_mbr_mbr2 = 0x20
let op_copy_mbr2_mbr = 0x21
let op_copy_mbr_mar = 0x22
let op_copy_mar_mbr = 0x23
let op_copy_hd_mbr = 0x24
let op_copy_hd_mbr2 = 0x25
let op_mbr_add_mbr2 = 0x26
let op_mar_add_mbr = 0x27
let op_mar_add_mbr2 = 0x28
let op_mar_mbr_add_mbr2 = 0x29
let op_mbr_sub_mbr2 = 0x2A
let op_bit_and_mar_mbr = 0x2B
let op_bit_or_mbr_mbr2 = 0x2C
let op_mbr_equals_mbr2 = 0x2D
let op_mbr_equals_data = 0x2E (* ..0x31 *)
let op_max = 0x32
let op_min = 0x33
let op_revmin = 0x34
let op_swap = 0x35
let op_mbr_not = 0x36
let op_cjump = 0x40
let op_cjumpi = 0x41
let op_ujump = 0x42
let op_mem_write = 0x50
let op_mem_read = 0x51
let op_mem_increment = 0x52
let op_mem_minread = 0x53
let op_mem_minreadinc = 0x54

let opcode_of_instr = function
  | Eof -> op_eof
  | Nop -> op_nop
  | Return -> op_return
  | Cret -> op_cret
  | Creti -> op_creti
  | Drop -> op_drop
  | Fork -> op_fork
  | Set_dst -> op_set_dst
  | Rts -> op_rts
  | Crts -> op_crts
  | Addr_mask -> op_addr_mask
  | Addr_offset -> op_addr_offset
  | Hash -> op_hash
  | Hashdata_load_5tuple -> op_hashdata_5t
  | Mbr_load a -> op_mbr_load + arg_index a
  | Mbr_store a -> op_mbr_store + arg_index a
  | Mbr2_load a -> op_mbr2_load + arg_index a
  | Mar_load a -> op_mar_load + arg_index a
  | Copy_mbr_mbr2 -> op_copy_mbr_mbr2
  | Copy_mbr2_mbr -> op_copy_mbr2_mbr
  | Copy_mbr_mar -> op_copy_mbr_mar
  | Copy_mar_mbr -> op_copy_mar_mbr
  | Copy_hashdata_mbr -> op_copy_hd_mbr
  | Copy_hashdata_mbr2 -> op_copy_hd_mbr2
  | Mbr_add_mbr2 -> op_mbr_add_mbr2
  | Mar_add_mbr -> op_mar_add_mbr
  | Mar_add_mbr2 -> op_mar_add_mbr2
  | Mar_mbr_add_mbr2 -> op_mar_mbr_add_mbr2
  | Mbr_subtract_mbr2 -> op_mbr_sub_mbr2
  | Bit_and_mar_mbr -> op_bit_and_mar_mbr
  | Bit_or_mbr_mbr2 -> op_bit_or_mbr_mbr2
  | Mbr_equals_mbr2 -> op_mbr_equals_mbr2
  | Mbr_equals_data a -> op_mbr_equals_data + arg_index a
  | Max -> op_max
  | Min -> op_min
  | Revmin -> op_revmin
  | Swap_mbr_mbr2 -> op_swap
  | Mbr_not -> op_mbr_not
  | Cjump _ -> op_cjump
  | Cjumpi _ -> op_cjumpi
  | Ujump _ -> op_ujump
  | Mem_write -> op_mem_write
  | Mem_read -> op_mem_read
  | Mem_increment -> op_mem_increment
  | Mem_minread -> op_mem_minread
  | Mem_minreadinc -> op_mem_minreadinc

let encode ?(executed = false) (l : Program.line) =
  let opcode = opcode_of_instr l.Program.instr in
  let own_label = match l.Program.label with Some lab -> lab + 1 | None -> 0 in
  let target =
    match Instr.branch_target l.Program.instr with Some t -> t | None -> 0
  in
  let flag =
    (if executed then 1 else 0) lor (own_label lsl 1) lor (target lsl 4)
  in
  (opcode, flag)

let arg_exn i =
  match arg_of_index i with
  | Some a -> a
  | None -> assert false

let decode ~opcode ~flag =
  let target = (flag lsr 4) land 0x7 in
  let instr_of_opcode () =
    if opcode >= op_mbr_load && opcode < op_mbr_load + 4 then
      Ok (Mbr_load (arg_exn (opcode - op_mbr_load)))
    else if opcode >= op_mbr_store && opcode < op_mbr_store + 4 then
      Ok (Mbr_store (arg_exn (opcode - op_mbr_store)))
    else if opcode >= op_mbr2_load && opcode < op_mbr2_load + 4 then
      Ok (Mbr2_load (arg_exn (opcode - op_mbr2_load)))
    else if opcode >= op_mar_load && opcode < op_mar_load + 4 then
      Ok (Mar_load (arg_exn (opcode - op_mar_load)))
    else if opcode >= op_mbr_equals_data && opcode < op_mbr_equals_data + 4 then
      Ok (Mbr_equals_data (arg_exn (opcode - op_mbr_equals_data)))
    else if opcode = op_eof then Ok Eof
    else if opcode = op_nop then Ok Nop
    else if opcode = op_return then Ok Return
    else if opcode = op_cret then Ok Cret
    else if opcode = op_creti then Ok Creti
    else if opcode = op_drop then Ok Drop
    else if opcode = op_fork then Ok Fork
    else if opcode = op_set_dst then Ok Set_dst
    else if opcode = op_rts then Ok Rts
    else if opcode = op_crts then Ok Crts
    else if opcode = op_addr_mask then Ok Addr_mask
    else if opcode = op_addr_offset then Ok Addr_offset
    else if opcode = op_hash then Ok Hash
    else if opcode = op_hashdata_5t then Ok Hashdata_load_5tuple
    else if opcode = op_copy_mbr_mbr2 then Ok Copy_mbr_mbr2
    else if opcode = op_copy_mbr2_mbr then Ok Copy_mbr2_mbr
    else if opcode = op_copy_mbr_mar then Ok Copy_mbr_mar
    else if opcode = op_copy_mar_mbr then Ok Copy_mar_mbr
    else if opcode = op_copy_hd_mbr then Ok Copy_hashdata_mbr
    else if opcode = op_copy_hd_mbr2 then Ok Copy_hashdata_mbr2
    else if opcode = op_mbr_add_mbr2 then Ok Mbr_add_mbr2
    else if opcode = op_mar_add_mbr then Ok Mar_add_mbr
    else if opcode = op_mar_add_mbr2 then Ok Mar_add_mbr2
    else if opcode = op_mar_mbr_add_mbr2 then Ok Mar_mbr_add_mbr2
    else if opcode = op_mbr_sub_mbr2 then Ok Mbr_subtract_mbr2
    else if opcode = op_bit_and_mar_mbr then Ok Bit_and_mar_mbr
    else if opcode = op_bit_or_mbr_mbr2 then Ok Bit_or_mbr_mbr2
    else if opcode = op_mbr_equals_mbr2 then Ok Mbr_equals_mbr2
    else if opcode = op_max then Ok Max
    else if opcode = op_min then Ok Min
    else if opcode = op_revmin then Ok Revmin
    else if opcode = op_swap then Ok Swap_mbr_mbr2
    else if opcode = op_mbr_not then Ok Mbr_not
    else if opcode = op_cjump then Ok (Cjump target)
    else if opcode = op_cjumpi then Ok (Cjumpi target)
    else if opcode = op_ujump then Ok (Ujump target)
    else if opcode = op_mem_write then Ok Mem_write
    else if opcode = op_mem_read then Ok Mem_read
    else if opcode = op_mem_increment then Ok Mem_increment
    else if opcode = op_mem_minread then Ok Mem_minread
    else if opcode = op_mem_minreadinc then Ok Mem_minreadinc
    else Error (Printf.sprintf "unknown opcode 0x%02x" opcode)
  in
  match instr_of_opcode () with
  | Error _ as e -> e
  | Ok instr ->
    let own = (flag lsr 1) land 0x7 in
    let label = if own = 0 then None else Some (own - 1) in
    Ok { line = { Program.instr; label }; executed = flag land 1 = 1 }

let encode_program (p : Program.t) =
  let n = Program.length p in
  let b = Bytes.create (2 * (n + 1)) in
  Array.iteri
    (fun i l ->
      let opcode, flag = encode l in
      Bytes.set_uint8 b (2 * i) opcode;
      Bytes.set_uint8 b ((2 * i) + 1) flag)
    p.Program.lines;
  let opcode, flag = encode { Program.instr = Eof; label = None } in
  Bytes.set_uint8 b (2 * n) opcode;
  Bytes.set_uint8 b ((2 * n) + 1) flag;
  b

(* 16-bit one's-complement sum (RFC 1071 style) over the capsule bytes.
   Any single-byte corruption changes the sum: a byte delta d contributes
   d or 256*d to the word sum, both nonzero modulo 0xffff for d in
   [-255, 255] \ {0}, so a flipped byte is always caught. *)
let checksum b =
  let n = Bytes.length b in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + (Bytes.get_uint8 b !i lsl 8) + Bytes.get_uint8 b (!i + 1);
    i := !i + 2
  done;
  if n land 1 = 1 then sum := !sum + (Bytes.get_uint8 b (n - 1) lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

type trace_ctx = { trace_id : int; span_id : int }

(* Trailer layout, back to front: 2-byte checksum, 1-byte extension flags,
   and (when flags bit 0 is set) an 8-byte trace extension of two u32s.
   The checksum covers payload ++ extension ++ flags, so a corrupted
   extension or flags byte is rejected like any other bit-flip — a damaged
   frame can never yield a bogus trace context. *)
let ext_flag_trace = 0x01
let trace_ext_len = 8

let set_u32 b off v =
  Bytes.set_uint8 b off ((v lsr 24) land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 3) (v land 0xff)

let get_u32 b off =
  (Bytes.get_uint8 b off lsl 24)
  lor (Bytes.get_uint8 b (off + 1) lsl 16)
  lor (Bytes.get_uint8 b (off + 2) lsl 8)
  lor Bytes.get_uint8 b (off + 3)

let frame ?trace b =
  let n = Bytes.length b in
  let ext = match trace with None -> 0 | Some _ -> trace_ext_len in
  let framed = Bytes.create (n + ext + 3) in
  Bytes.blit b 0 framed 0 n;
  (match trace with
  | None -> Bytes.set_uint8 framed n 0x00
  | Some ctx ->
    set_u32 framed n (ctx.trace_id land 0xffffffff);
    set_u32 framed (n + 4) (ctx.span_id land 0xffffffff);
    Bytes.set_uint8 framed (n + ext) ext_flag_trace);
  let c = checksum (Bytes.sub framed 0 (n + ext + 1)) in
  Bytes.set_uint8 framed (n + ext + 1) (c lsr 8);
  Bytes.set_uint8 framed (n + ext + 2) (c land 0xff);
  framed

let unframe_traced framed =
  let n = Bytes.length framed in
  if n < 3 then Error "short frame: no checksum trailer"
  else begin
    let stored =
      (Bytes.get_uint8 framed (n - 2) lsl 8) lor Bytes.get_uint8 framed (n - 1)
    in
    let computed = checksum (Bytes.sub framed 0 (n - 2)) in
    if stored <> computed then
      Error
        (Printf.sprintf "checksum mismatch: stored 0x%04x, computed 0x%04x"
           stored computed)
    else begin
      let flags = Bytes.get_uint8 framed (n - 3) in
      if flags = 0x00 then Ok (Bytes.sub framed 0 (n - 3), None)
      else if flags = ext_flag_trace then begin
        if n < 3 + trace_ext_len then
          Error "short frame: trace extension truncated"
        else begin
          let off = n - 3 - trace_ext_len in
          let ctx =
            { trace_id = get_u32 framed off; span_id = get_u32 framed (off + 4) }
          in
          Ok (Bytes.sub framed 0 off, Some ctx)
        end
      end
      else Error (Printf.sprintf "unknown frame extension flags 0x%02x" flags)
    end
  end

let unframe framed =
  match unframe_traced framed with
  | Ok (payload, _) -> Ok payload
  | Error _ as e -> e

let decode_program ?(name = "wire") b ~off =
  let len = Bytes.length b in
  let rec go off acc =
    if off + 2 > len then Error "truncated program: missing EOF"
    else begin
      let opcode = Bytes.get_uint8 b off and flag = Bytes.get_uint8 b (off + 1) in
      match decode ~opcode ~flag with
      | Error _ as e -> e
      | Ok { line; executed } ->
        if line.Program.instr = Eof then begin
          let lines = List.rev acc in
          let prog = Program.v ~name (List.map fst lines) in
          let marks = Array.of_list (List.map snd lines) in
          Ok (prog, marks, off + 2)
        end
        else go (off + 2) ((line, executed) :: acc)
    end
  in
  go off []
