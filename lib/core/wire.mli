(** Wire encoding of instruction headers.

    Each instruction header is two bytes (Section 3.3): a one-byte opcode
    and a one-byte flag.  The flag byte carries
    - bit 0: the "executed" mark the switch sets so the parser can discard
      the field on the way out (packets shrink after execution);
    - bits 1-3: the instruction's own label plus one (0 = unlabelled);
    - bits 4-6: the branch target for CJUMP/CJUMPI/UJUMP. *)

type decoded = { line : Program.line; executed : bool }

val encode : ?executed:bool -> Program.line -> int * int
(** [(opcode_byte, flag_byte)], both in 0..255. *)

val decode : opcode:int -> flag:int -> (decoded, string) result

val encode_program : Program.t -> Bytes.t
(** Instruction headers for every line plus a terminating EOF header. *)

val decode_program :
  ?name:string -> Bytes.t -> off:int -> (Program.t * bool array * int, string) result
(** Decode headers starting at [off] up to and including EOF.  Returns the
    program (EOF stripped), the per-line executed marks, and the offset
    one past the EOF header. *)

(** {2 Capsule framing}

    A capsule on the wire carries a trailer, back to front: a 16-bit
    one's-complement checksum, a one-byte extension-flags field, and an
    optional 8-byte trace extension (two big-endian u32s: trace id then
    span id) when flags bit 0 is set.  The checksum covers payload,
    extension and flags, and detects every single-byte error (see the
    implementation note), so the fault simulator's bit-flips always
    surface as a clean rejection — corruption behaves like loss, the
    client's retransmission logic recovers, and a damaged frame can never
    yield a bogus trace context. *)

type trace_ctx = { trace_id : int; span_id : int }
(** In-band trace context carried in the frame trailer so a trace follows
    a capsule across hops.  Both ids are truncated to 32 bits on the
    wire. *)

val checksum : Bytes.t -> int
(** RFC 1071-style 16-bit one's-complement sum of the bytes. *)

val frame : ?trace:trace_ctx -> Bytes.t -> Bytes.t
(** Append the trailer: optional 8-byte trace extension, flags byte, and
    2-byte checksum (3 bytes without a trace, 11 with one). *)

val unframe : Bytes.t -> (Bytes.t, string) result
(** Verify and strip the trailer, discarding any trace extension;
    [Error] describes the mismatch. *)

val unframe_traced : Bytes.t -> (Bytes.t * trace_ctx option, string) result
(** Like {!unframe} but also returns the trace context when the frame
    carries one.  The checksum is verified before the extension is
    decoded, so corrupt frames never produce a context. *)
