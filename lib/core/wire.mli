(** Wire encoding of instruction headers.

    Each instruction header is two bytes (Section 3.3): a one-byte opcode
    and a one-byte flag.  The flag byte carries
    - bit 0: the "executed" mark the switch sets so the parser can discard
      the field on the way out (packets shrink after execution);
    - bits 1-3: the instruction's own label plus one (0 = unlabelled);
    - bits 4-6: the branch target for CJUMP/CJUMPI/UJUMP. *)

type decoded = { line : Program.line; executed : bool }

val encode : ?executed:bool -> Program.line -> int * int
(** [(opcode_byte, flag_byte)], both in 0..255. *)

val decode : opcode:int -> flag:int -> (decoded, string) result

val encode_program : Program.t -> Bytes.t
(** Instruction headers for every line plus a terminating EOF header. *)

val decode_program :
  ?name:string -> Bytes.t -> off:int -> (Program.t * bool array * int, string) result
(** Decode headers starting at [off] up to and including EOF.  Returns the
    program (EOF stripped), the per-line executed marks, and the offset
    one past the EOF header. *)

(** {2 Capsule framing}

    A capsule on the wire carries a 16-bit one's-complement checksum
    trailer so corrupted capsules are rejected at the parser instead of
    executing garbage.  The sum detects every single-byte error (see the
    implementation note), so the fault simulator's bit-flips always
    surface as a clean rejection — corruption behaves like loss and the
    client's retransmission logic recovers. *)

val checksum : Bytes.t -> int
(** RFC 1071-style 16-bit one's-complement sum of the bytes. *)

val frame : Bytes.t -> Bytes.t
(** Append the 2-byte checksum trailer. *)

val unframe : Bytes.t -> (Bytes.t, string) result
(** Verify and strip the trailer; [Error] describes the mismatch. *)
