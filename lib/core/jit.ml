(* Specialization tier for the data plane (ROADMAP open item #1).

   When a FID's program is admitted, its 20-stage trace is compiled into a
   chain of OCaml closures: one specialized closure per instruction slot,
   fused into straight-line blocks wherever control cannot escape, with
   NOP slots (mutant shifts synthesize leading NOPs) elided entirely.  All
   per-packet table work the interpreter does — [Table.lookup] on every
   memory access, [is_privileged] on FORK/SET_DST, [max_passes_of] for the
   recirculation allowance, [Device.stage] bounds checks, the instruction
   match dispatch — is resolved once at compile time against the granted
   allocation.  Branches survive only at the data-dependent points: the
   complete/disabled flags and the per-pass recirculation check.

   Two further compile-time simplifications ride on the fused blocks:

   - Every slot of a block executes unconditionally once the block is
     entered, so the interpreter's per-slot accounting
     ([executed]/[last_stage]) collapses to one block-level update — the
     intermediate stores are dead, only the final values are observable.
   - The canonical address chains the synthesizer emits (HASH /
     ADDR_MASK / ADDR_OFFSET, MAR_LOAD / ADDR_MASK / ADDR_OFFSET, the
     key-to-hashdata load prefix) are peephole-fused into single closures
     with the mask/offset constants baked in, eliding the dead
     intermediate MAR values; memory accesses poke the register file's
     exposed representation directly once the index is proven in range.

   Closures are cached per FID and keyed by the allocation epoch
   ([Table.epoch]), which the table bumps on every install, remove and
   quiescence transition; any control-plane action that could change
   execution semantics (reallocation, migration, departure, privilege or
   pass-limit changes, deactivation) therefore invalidates.  The cached
   closure captures the FID's epoch cell ([Table.epoch_ref]), so
   revalidation is a single dereference per packet; a valid epoch implies
   the FID is installed and not quiesced.  Dispatch goes through a small
   direct-mapped front cache in front of the hashtable, and execution
   reuses one scratch state record per JIT (single-threaded, like the
   device model itself).  Everything else falls back to the
   interpreter. *)

type state = {
  mutable mar : int;
  mutable mbr : int;
  mutable mbr2 : int;
  mutable hd0 : int;
  mutable hd1 : int;
  mutable complete : bool;
  mutable disabled : int;  (* active branch label, or [no_label] *)
  mutable rts : bool;
  mutable dst : int;
  mutable dropped : Runtime.drop_reason option;
  mutable executed : int;
  mutable port_recircs : int;
  mutable forks : int;
  mutable last_stage : int;
  mutable f_pc : int;  (* driver outputs, written back to avoid a tuple *)
  mutable f_passes : int;
  mutable args : int array;
  mutable src : int;
  mutable flow_key : int array;
}

let no_label = -1

type block = { b_n : int; b_fn : state -> unit }

type compiled = {
  ops : (state -> unit) array;
      (* one bare closure per pc: the operation only, no accounting *)
  blocks : block array;  (* fused straight-line run starting at each pc *)
  labels : int array;  (* line label, or [no_label] *)
  instrs : Instr.t array;  (* for trace-event emission *)
  len : int;
  single_pass : bool;  (* len <= n_stages: no recirculation bookkeeping *)
  straight : (state -> unit) option;
      (* whole-program chain for jump-free programs: blocks linked by
         complete-flag checks, recirculation checks baked in at pass
         boundaries — no driver loop at all *)
  c_n_stages : int;
  c_ingress : int;
  pass_allowance : int;
  c_device : Rmt.Device.t;
}

type mode = Compiled | Compiled_fresh | Interpreted

type cache_entry = {
  ce_cell : int ref;  (* the FID's [Table.epoch_ref] cell *)
  ce_version : int;  (* epoch the closures were compiled against *)
  mutable ce_progs : (Program.t * compiled) list;
}

(* Never valid: the dummy cell can't equal a real epoch. *)
let no_entry = { ce_cell = ref (-1); ce_version = 0; ce_progs = [] }

let dm_slots = 64

type t = {
  tables : Table.t;
  enabled : bool;
  telemetry : Activermt_telemetry.Telemetry.t;
  cache : (Packet.fid, cache_entry) Hashtbl.t;
  dm_fid : int array;  (* direct-mapped dispatch cache: fid per slot, -1 empty *)
  dm_entry : cache_entry array;
  scratch : state;
  (* Stats are plain fields — a registry increment costs more than a whole
     compiled execution — published to [telemetry] by [flush_stats], which
     runs on every (rare) compile/invalidate and before metric dumps. *)
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_compiles : int;
  mutable s_invalidates : int;
  mutable p_hits : int;  (* already-published portions *)
  mutable p_misses : int;
  mutable p_compiles : int;
  mutable p_invalidates : int;
  mutable last_mode : mode;
}

let mask32 v = v land 0xFFFFFFFF

(* A FID typically runs a small program family (e.g. cache query +
   populate) concurrently; keep a handful of compiled variants per FID. *)
let max_progs_per_fid = 8

let drop_with device st reason =
  st.dropped <- Some reason;
  st.complete <- true;
  Rmt.Device.count_drop device

(* Compile one instruction slot into a bare closure with every
   table-derived constant baked in.  [stage] is the logical stage the slot
   occupies (pc mod n_stages — the mapping is static because skipped slots
   still consume a stage).  The closures do no [executed]/[last_stage]
   accounting: the drivers account per fused block (fast path) or per slot
   (event path). *)
let compile_op ~tables ~fid ~device ~ingress ~privileged ~stage
    (instr : Instr.t) : state -> unit =
  let open Rmt in
  match instr with
  | Instr.Mbr_load a ->
    let i = Instr.arg_index a in
    fun st -> st.mbr <- st.args.(i)
  | Instr.Mbr_store a ->
    let i = Instr.arg_index a in
    fun st -> st.args.(i) <- mask32 st.mbr
  | Instr.Mbr2_load a ->
    let i = Instr.arg_index a in
    fun st -> st.mbr2 <- st.args.(i)
  | Instr.Mar_load a ->
    let i = Instr.arg_index a in
    fun st -> st.mar <- st.args.(i)
  | Instr.Copy_mbr_mbr2 -> fun st -> st.mbr <- st.mbr2
  | Instr.Copy_mbr2_mbr -> fun st -> st.mbr2 <- st.mbr
  | Instr.Copy_mbr_mar -> fun st -> st.mbr <- st.mar
  | Instr.Copy_mar_mbr -> fun st -> st.mar <- st.mbr
  | Instr.Copy_hashdata_mbr -> fun st -> st.hd0 <- st.mbr
  | Instr.Copy_hashdata_mbr2 -> fun st -> st.hd1 <- st.mbr2
  | Instr.Hashdata_load_5tuple ->
    fun st ->
      let key = st.flow_key in
      st.hd0 <- (if Array.length key > 0 then key.(0) else 0);
      st.hd1 <- (if Array.length key > 1 then key.(1) else 0)
  | Instr.Mbr_add_mbr2 -> fun st -> st.mbr <- mask32 (st.mbr + st.mbr2)
  | Instr.Mar_add_mbr -> fun st -> st.mar <- mask32 (st.mar + st.mbr)
  | Instr.Mar_add_mbr2 -> fun st -> st.mar <- mask32 (st.mar + st.mbr2)
  | Instr.Mar_mbr_add_mbr2 -> fun st -> st.mar <- mask32 (st.mbr + st.mbr2)
  | Instr.Mbr_subtract_mbr2 -> fun st -> st.mbr <- mask32 (st.mbr - st.mbr2)
  | Instr.Bit_and_mar_mbr -> fun st -> st.mar <- st.mar land st.mbr
  | Instr.Bit_or_mbr_mbr2 -> fun st -> st.mbr <- st.mbr lor st.mbr2
  | Instr.Mbr_equals_mbr2 -> fun st -> st.mbr <- st.mbr lxor st.mbr2
  | Instr.Mbr_equals_data a ->
    let i = Instr.arg_index a in
    fun st -> st.mbr <- st.mbr lxor st.args.(i)
  | Instr.Max -> fun st -> st.mbr <- max st.mbr st.mbr2
  | Instr.Min -> fun st -> st.mbr <- min st.mbr st.mbr2
  | Instr.Revmin -> fun st -> st.mbr2 <- min st.mbr st.mbr2
  | Instr.Swap_mbr_mbr2 ->
    fun st ->
      let tmp = st.mbr in
      st.mbr <- st.mbr2;
      st.mbr2 <- tmp
  | Instr.Mbr_not -> fun st -> st.mbr <- mask32 (lnot st.mbr)
  | Instr.Return | Instr.Eof -> fun st -> st.complete <- true
  | Instr.Cret -> fun st -> if st.mbr <> 0 then st.complete <- true
  | Instr.Creti -> fun st -> if st.mbr = 0 then st.complete <- true
  | Instr.Cjump l -> fun st -> if st.mbr <> 0 then st.disabled <- l
  | Instr.Cjumpi l -> fun st -> if st.mbr = 0 then st.disabled <- l
  | Instr.Ujump l -> fun st -> st.disabled <- l
  | Instr.Drop -> fun st -> drop_with device st Runtime.Explicit_drop
  | Instr.Fork ->
    if privileged then fun st ->
      st.forks <- st.forks + 1;
      Device.count_recirculation device
    else
      let reason = Runtime.Privilege_violation { stage } in
      fun st -> drop_with device st reason
  | Instr.Set_dst ->
    if privileged then fun st -> st.dst <- st.mbr
    else
      let reason = Runtime.Privilege_violation { stage } in
      fun st -> drop_with device st reason
  | Instr.Rts ->
    if stage >= ingress then fun st ->
      st.rts <- true;
      st.dst <- st.src;
      st.port_recircs <- st.port_recircs + 1;
      Device.count_recirculation device
    else fun st ->
      st.rts <- true;
      st.dst <- st.src
  | Instr.Crts ->
    if stage >= ingress then
      (fun st ->
        if st.mbr <> 0 then begin
          st.rts <- true;
          st.dst <- st.src;
          st.port_recircs <- st.port_recircs + 1;
          Device.count_recirculation device
        end)
    else
      fun st ->
        if st.mbr <> 0 then begin
          st.rts <- true;
          st.dst <- st.src
        end
  | Instr.Nop -> fun _ -> ()
  | Instr.Addr_mask -> (
    match Table.lookup tables ~fid ~stage with
    | Some e ->
      let m = e.Table.xmask in
      fun st -> st.mar <- st.mar land m
    | None ->
      let reason = Runtime.No_allocation { stage } in
      fun st -> drop_with device st reason)
  | Instr.Addr_offset -> (
    match Table.lookup tables ~fid ~stage with
    | Some e ->
      let o = e.Table.xoffset in
      fun st -> st.mar <- mask32 (st.mar + o)
    | None ->
      let reason = Runtime.No_allocation { stage } in
      fun st -> drop_with device st reason)
  | Instr.Hash ->
    let row = (Device.stage device stage).Device.hash_row in
    fun st -> st.mar <- mask32 (Crc.hash_words2 ~row st.hd0 st.hd1)
  | ( Instr.Mem_write | Instr.Mem_read | Instr.Mem_increment | Instr.Mem_minread
    | Instr.Mem_minreadinc ) as m -> (
    match Table.lookup tables ~fid ~stage with
    | None | Some { Table.region = None; _ } ->
      let reason = Runtime.No_allocation { stage } in
      fun st -> drop_with device st reason
    | Some { Table.region = Some rg; virtual_addressing = true; _ } -> (
      let lo = rg.Packet.start_word and n = rg.Packet.n_words in
      let r = (Device.stage device stage).Device.regs in
      let data = r.Register_array.data in
      (* In-range by construction when [mar >= 0] (the granted region lies
         within the stage's array); a negative MAR — possible only from
         unmasked packet args — falls back to the checked entry point,
         which reproduces the interpreter's behaviour exactly. *)
      match m with
      | Instr.Mem_write ->
        fun st ->
          let mm = st.mar mod n in
          if mm >= 0 then begin
            r.Register_array.accesses <- r.Register_array.accesses + 1;
            Array.unsafe_set data (lo + mm) (st.mbr land 0xFFFFFFFF)
          end
          else Register_array.write_counted r (lo + mm) st.mbr
      | Instr.Mem_read ->
        fun st ->
          let mm = st.mar mod n in
          if mm >= 0 then begin
            r.Register_array.accesses <- r.Register_array.accesses + 1;
            st.mbr <- Array.unsafe_get data (lo + mm)
          end
          else st.mbr <- Register_array.read_counted r (lo + mm)
      | Instr.Mem_increment ->
        fun st ->
          let mm = st.mar mod n in
          if mm >= 0 then begin
            r.Register_array.accesses <- r.Register_array.accesses + 1;
            let nv = (Array.unsafe_get data (lo + mm) + 1) land 0xFFFFFFFF in
            Array.unsafe_set data (lo + mm) nv;
            st.mbr <- nv
          end
          else st.mbr <- Register_array.add_read_counted r (lo + mm) 1
      | Instr.Mem_minread ->
        fun st ->
          let mm = st.mar mod n in
          if mm >= 0 then begin
            r.Register_array.accesses <- r.Register_array.accesses + 1;
            st.mbr <- min (Array.unsafe_get data (lo + mm)) (st.mbr land 0xFFFFFFFF)
          end
          else st.mbr <- Register_array.min_read_counted r (lo + mm) st.mbr
      | Instr.Mem_minreadinc ->
        fun st ->
          let mm = st.mar mod n in
          if mm >= 0 then begin
            r.Register_array.accesses <- r.Register_array.accesses + 1;
            let nv = (Array.unsafe_get data (lo + mm) + 1) land 0xFFFFFFFF in
            Array.unsafe_set data (lo + mm) nv;
            st.mbr <- nv
          end
          else st.mbr <- Register_array.add_read_counted r (lo + mm) 1;
          st.mbr2 <- min st.mbr st.mbr2
      | _ -> assert false)
    | Some { Table.region = Some rg; virtual_addressing = false; _ } -> (
      let lo = rg.Packet.start_word and n = rg.Packet.n_words in
      let hi = lo + n in
      let r = (Device.stage device stage).Device.regs in
      let data = r.Register_array.data in
      match m with
      | Instr.Mem_write ->
        fun st ->
          let a = st.mar in
          if a >= lo && a < hi then begin
            r.Register_array.accesses <- r.Register_array.accesses + 1;
            Array.unsafe_set data a (st.mbr land 0xFFFFFFFF)
          end
          else drop_with device st (Runtime.Protection_violation { stage; mar = a })
      | Instr.Mem_read ->
        fun st ->
          let a = st.mar in
          if a >= lo && a < hi then begin
            r.Register_array.accesses <- r.Register_array.accesses + 1;
            st.mbr <- Array.unsafe_get data a
          end
          else drop_with device st (Runtime.Protection_violation { stage; mar = a })
      | Instr.Mem_increment ->
        fun st ->
          let a = st.mar in
          if a >= lo && a < hi then begin
            r.Register_array.accesses <- r.Register_array.accesses + 1;
            let nv = (Array.unsafe_get data a + 1) land 0xFFFFFFFF in
            Array.unsafe_set data a nv;
            st.mbr <- nv
          end
          else drop_with device st (Runtime.Protection_violation { stage; mar = a })
      | Instr.Mem_minread ->
        fun st ->
          let a = st.mar in
          if a >= lo && a < hi then begin
            r.Register_array.accesses <- r.Register_array.accesses + 1;
            st.mbr <- min (Array.unsafe_get data a) (st.mbr land 0xFFFFFFFF)
          end
          else drop_with device st (Runtime.Protection_violation { stage; mar = a })
      | Instr.Mem_minreadinc ->
        fun st ->
          let a = st.mar in
          if a >= lo && a < hi then begin
            r.Register_array.accesses <- r.Register_array.accesses + 1;
            let nv = (Array.unsafe_get data a + 1) land 0xFFFFFFFF in
            Array.unsafe_set data a nv;
            st.mbr <- nv;
            st.mbr2 <- min st.mbr st.mbr2
          end
          else drop_with device st (Runtime.Protection_violation { stage; mar = a })
      | _ -> assert false))

(* Can executing this slot set the complete/disabled flag or drop?  Only
   such "stoppers" end a fused straight-line block; everything else runs
   unconditionally once the block is entered.  Virtually-addressed memory
   accesses never fault (the index is wrapped into the granted region), so
   they fuse like ALU ops. *)
let is_stopper ~tables ~fid ~privileged ~stage (instr : Instr.t) =
  match instr with
  | Instr.Return | Instr.Eof | Instr.Cret | Instr.Creti | Instr.Drop
  | Instr.Cjump _ | Instr.Cjumpi _ | Instr.Ujump _ ->
    true
  | Instr.Mem_write | Instr.Mem_read | Instr.Mem_increment | Instr.Mem_minread
  | Instr.Mem_minreadinc -> (
    match Table.lookup tables ~fid ~stage with
    | Some { Table.region = Some _; virtual_addressing = true; _ } -> false
    | _ -> true)
  | Instr.Fork | Instr.Set_dst -> not privileged
  | Instr.Addr_mask | Instr.Addr_offset ->
    Table.lookup tables ~fid ~stage = None
  | _ -> false

let rec fuse = function
  | [] -> fun _ -> ()
  | [ f ] -> f
  | [ f; g ] ->
    fun st ->
      f st;
      g st
  | [ f; g; h ] ->
    fun st ->
      f st;
      g st;
      h st
  | [ f; g; h; k ] ->
    fun st ->
      f st;
      g st;
      h st;
      k st
  | f :: g :: h :: k :: tl ->
    let rest = fuse tl in
    fun st ->
      f st;
      g st;
      h st;
      k st;
      rest st

(* Fuse a block body with its accounting update folded into the wrapper
   (one closure call less per block than fusing a separate account op). *)
let fuse_acc slots s_last fns =
  match fns with
  | [] ->
    fun st ->
      st.executed <- st.executed + slots;
      st.last_stage <- s_last
  | [ f ] ->
    fun st ->
      st.executed <- st.executed + slots;
      st.last_stage <- s_last;
      f st
  | [ f; g ] ->
    fun st ->
      st.executed <- st.executed + slots;
      st.last_stage <- s_last;
      f st;
      g st
  | [ f; g; h ] ->
    fun st ->
      st.executed <- st.executed + slots;
      st.last_stage <- s_last;
      f st;
      g st;
      h st
  | f :: g :: h :: tl ->
    let rest = fuse tl in
    fun st ->
      st.executed <- st.executed + slots;
      st.last_stage <- s_last;
      f st;
      g st;
      h st;
      rest st

(* Link whole-program segments: run each, short-circuit on the complete
   flag.  Only used for jump-free programs, where [complete] is the sole
   control-flow flag a slot can raise. *)
let rec chain = function
  | [] -> fun _ -> ()
  | [ f ] -> f
  | [ f; g ] ->
    fun st ->
      f st;
      if not st.complete then g st
  | f :: g :: tl ->
    let rest = chain tl in
    fun st ->
      f st;
      if not st.complete then begin
        g st;
        if not st.complete then rest st
      end

let compile tables ~fid (program : Program.t) =
  let device = Table.device tables in
  let params = Rmt.Device.params device in
  let n_stages = params.Rmt.Params.logical_stages in
  let ingress = params.Rmt.Params.ingress_stages in
  let lines = program.Program.lines in
  let len = Array.length lines in
  let privileged = Table.is_privileged tables ~fid in
  let pass_allowance =
    match Table.max_passes_of tables ~fid with
    | Some mp -> min (mp - 1) params.Rmt.Params.recirc_limit
    | None -> params.Rmt.Params.recirc_limit
  in
  let instrs = Array.init len (fun pc -> lines.(pc).Program.instr) in
  let ops =
    Array.init len (fun pc ->
        compile_op ~tables ~fid ~device ~ingress ~privileged
          ~stage:(pc mod n_stages) instrs.(pc))
  in
  let stopper =
    Array.init len (fun pc ->
        is_stopper ~tables ~fid ~privileged ~stage:(pc mod n_stages) instrs.(pc))
  in
  let stage_of pc = pc mod n_stages in
  let entry_at pc = Table.lookup tables ~fid ~stage:(stage_of pc) in
  (* A virtually-addressed memory slot's baked constants: region bounds
     plus the stage's register file (exposed representation).  Inside a
     block any non-trailing memory slot is necessarily of this kind (a
     direct-addressed access is a stopper and would have ended the
     block). *)
  let virt_mem pc =
    match entry_at pc with
    | Some { Table.region = Some rg; virtual_addressing = true; _ } ->
      let r = (Rmt.Device.stage device (stage_of pc)).Rmt.Device.regs in
      Some (rg.Packet.start_word, rg.Packet.n_words, r, r.Rmt.Register_array.data)
    | _ -> None
  in
  (* Peephole over a block's (non-NOP) slot sequence: the synthesizer's
     canonical idioms — address chains, sketch rows, probe/compare/return
     triples, round-robin pool indexing, reply tails — become single
     closures with all constants baked in, skipping dead intermediate
     MAR/MBR stores.  When a chain computes the address, the value is
     32-bit masked and hence non-negative, so the fused access can skip
     the negative-remainder guard the standalone closures need.  Anything
     unmatched falls back to the per-slot closure. *)
  let rec peep pcs =
    match pcs with
    (* sketch row: HASH / ADDR_MASK / ADDR_OFFSET / MEM_MINREADINC *)
    | p1 :: p2 :: p3 :: p4 :: rest
      when instrs.(p1) = Instr.Hash
           && instrs.(p2) = Instr.Addr_mask
           && instrs.(p3) = Instr.Addr_offset
           && instrs.(p4) = Instr.Mem_minreadinc -> (
      match (entry_at p2, entry_at p3, virt_mem p4) with
      | Some e2, Some e3, Some (lo, n, r, data) ->
        let row = (Rmt.Device.stage device (stage_of p1)).Rmt.Device.hash_row in
        let m = e2.Table.xmask and o = e3.Table.xoffset in
        (fun st ->
          let a =
            ((mask32 (Rmt.Crc.hash_words2 ~row st.hd0 st.hd1) land m) + o)
            land 0xFFFFFFFF
          in
          st.mar <- a;
          r.Rmt.Register_array.accesses <- r.Rmt.Register_array.accesses + 1;
          let ix = lo + (a mod n) in
          let nv = (Array.unsafe_get data ix + 1) land 0xFFFFFFFF in
          Array.unsafe_set data ix nv;
          st.mbr <- nv;
          st.mbr2 <- min nv st.mbr2)
        :: peep rest
      | _ -> ops.(p1) :: peep (p2 :: p3 :: p4 :: rest))
    (* indexed read: MAR_LOAD / ADDR_MASK / ADDR_OFFSET / MEM_READ *)
    | p1 :: p2 :: p3 :: p4 :: rest
      when (match instrs.(p1) with Instr.Mar_load _ -> true | _ -> false)
           && instrs.(p2) = Instr.Addr_mask
           && instrs.(p3) = Instr.Addr_offset
           && instrs.(p4) = Instr.Mem_read -> (
      match (instrs.(p1), entry_at p2, entry_at p3, virt_mem p4) with
      | Instr.Mar_load a, Some e2, Some e3, Some (lo, n, r, data) ->
        let i = Instr.arg_index a in
        let m = e2.Table.xmask and o = e3.Table.xoffset in
        (fun st ->
          let adr = ((st.args.(i) land m) + o) land 0xFFFFFFFF in
          st.mar <- adr;
          r.Rmt.Register_array.accesses <- r.Rmt.Register_array.accesses + 1;
          st.mbr <- Array.unsafe_get data (lo + (adr mod n)))
        :: peep rest
      | _ -> ops.(p1) :: peep (p2 :: p3 :: p4 :: rest))
    (* threshold test: MAR_LOAD / MEM_READ / MIN / MBR_EQUALS_MBR2 / CRETI *)
    | p1 :: p2 :: p3 :: p4 :: p5 :: rest
      when (match instrs.(p1) with Instr.Mar_load _ -> true | _ -> false)
           && instrs.(p2) = Instr.Mem_read
           && instrs.(p3) = Instr.Min
           && instrs.(p4) = Instr.Mbr_equals_mbr2
           && instrs.(p5) = Instr.Creti -> (
      match (instrs.(p1), virt_mem p2) with
      | Instr.Mar_load a, Some (lo, n, r, data) ->
        let i = Instr.arg_index a in
        (fun st ->
          let adr = st.args.(i) in
          st.mar <- adr;
          let mm = adr mod n in
          let v =
            if mm >= 0 then begin
              r.Rmt.Register_array.accesses <-
                r.Rmt.Register_array.accesses + 1;
              Array.unsafe_get data (lo + mm)
            end
            else Rmt.Register_array.read_counted r (lo + mm)
          in
          let x = min v st.mbr2 lxor st.mbr2 in
          st.mbr <- x;
          if x = 0 then st.complete <- true)
        :: peep rest
      | _ -> ops.(p1) :: peep (p2 :: p3 :: p4 :: p5 :: rest))
    (* hash cookie tail: HASH / COPY_MBR_MAR / MBR_EQUALS_MBR2 /
       MBR_STORE / RETURN *)
    | p1 :: p2 :: p3 :: p4 :: p5 :: rest
      when instrs.(p1) = Instr.Hash
           && instrs.(p2) = Instr.Copy_mbr_mar
           && instrs.(p3) = Instr.Mbr_equals_mbr2
           && (match instrs.(p4) with Instr.Mbr_store _ -> true | _ -> false)
           && instrs.(p5) = Instr.Return -> (
      match instrs.(p4) with
      | Instr.Mbr_store b ->
        let row = (Rmt.Device.stage device (stage_of p1)).Rmt.Device.hash_row in
        let ib = Instr.arg_index b in
        (fun st ->
          let h = mask32 (Rmt.Crc.hash_words2 ~row st.hd0 st.hd1) in
          st.mar <- h;
          let x = h lxor st.mbr2 in
          st.mbr <- x;
          st.args.(ib) <- mask32 x;
          st.complete <- true)
        :: peep rest
      | _ -> assert false)
    (* round-robin pool index (power-of-two modulo): COPY_MAR_MBR /
       COPY_MBR_MBR2 / BIT_AND_MAR_MBR / COPY_MBR_MAR / COPY_MBR2_MBR
       leaves counter land (pool-1) in all three registers *)
    | p1 :: p2 :: p3 :: p4 :: p5 :: rest
      when instrs.(p1) = Instr.Copy_mar_mbr
           && instrs.(p2) = Instr.Copy_mbr_mbr2
           && instrs.(p3) = Instr.Bit_and_mar_mbr
           && instrs.(p4) = Instr.Copy_mbr_mar
           && instrs.(p5) = Instr.Copy_mbr2_mbr ->
      (fun st ->
        let x = st.mbr land st.mbr2 in
        st.mar <- x;
        st.mbr <- x;
        st.mbr2 <- x)
      :: peep rest
    (* probe-and-compare: MAR_LOAD / MEM_READ / MBR_EQUALS_DATA / CRET *)
    | p1 :: p2 :: p3 :: p4 :: rest
      when (match instrs.(p1) with Instr.Mar_load _ -> true | _ -> false)
           && instrs.(p2) = Instr.Mem_read
           && (match instrs.(p3) with
              | Instr.Mbr_equals_data _ -> true
              | _ -> false)
           && instrs.(p4) = Instr.Cret -> (
      match (instrs.(p1), instrs.(p3), virt_mem p2) with
      | Instr.Mar_load a, Instr.Mbr_equals_data b, Some (lo, n, r, data) ->
        let ia = Instr.arg_index a and ib = Instr.arg_index b in
        (fun st ->
          let adr = st.args.(ia) in
          st.mar <- adr;
          let mm = adr mod n in
          let v =
            if mm >= 0 then begin
              r.Rmt.Register_array.accesses <-
                r.Rmt.Register_array.accesses + 1;
              Array.unsafe_get data (lo + mm)
            end
            else Rmt.Register_array.read_counted r (lo + mm)
          in
          let x = v lxor st.args.(ib) in
          st.mbr <- x;
          if x <> 0 then st.complete <- true)
        :: peep rest
      | _ -> ops.(p1) :: peep (p2 :: p3 :: p4 :: rest))
    (* same, address already in MAR: MEM_READ / MBR_EQUALS_DATA / CRET *)
    | p1 :: p2 :: p3 :: rest
      when instrs.(p1) = Instr.Mem_read
           && (match instrs.(p2) with
              | Instr.Mbr_equals_data _ -> true
              | _ -> false)
           && instrs.(p3) = Instr.Cret -> (
      match (instrs.(p2), virt_mem p1) with
      | Instr.Mbr_equals_data b, Some (lo, n, r, data) ->
        let ib = Instr.arg_index b in
        (fun st ->
          let mm = st.mar mod n in
          let v =
            if mm >= 0 then begin
              r.Rmt.Register_array.accesses <-
                r.Rmt.Register_array.accesses + 1;
              Array.unsafe_get data (lo + mm)
            end
            else Rmt.Register_array.read_counted r (lo + mm)
          in
          let x = v lxor st.args.(ib) in
          st.mbr <- x;
          if x <> 0 then st.complete <- true)
        :: peep rest
      | _ -> ops.(p1) :: peep (p2 :: p3 :: rest))
    (* pointer chase into a granted pool: MAR_MBR_ADD_MBR2 / MEM_READ /
       SET_DST (the computed address is masked, hence non-negative) *)
    | p1 :: p2 :: p3 :: rest
      when privileged
           && instrs.(p1) = Instr.Mar_mbr_add_mbr2
           && instrs.(p2) = Instr.Mem_read
           && instrs.(p3) = Instr.Set_dst -> (
      match virt_mem p2 with
      | Some (lo, n, r, data) ->
        (fun st ->
          let adr = mask32 (st.mbr + st.mbr2) in
          st.mar <- adr;
          r.Rmt.Register_array.accesses <- r.Rmt.Register_array.accesses + 1;
          let v = Array.unsafe_get data (lo + (adr mod n)) in
          st.mbr <- v;
          st.dst <- v)
        :: peep rest
      | None -> ops.(p1) :: peep (p2 :: p3 :: rest))
    (* RTS reply carrying a read value: RTS / MEM_READ / MBR_STORE /
       RETURN *)
    | p1 :: p2 :: p3 :: p4 :: rest
      when instrs.(p1) = Instr.Rts
           && instrs.(p2) = Instr.Mem_read
           && (match instrs.(p3) with Instr.Mbr_store _ -> true | _ -> false)
           && instrs.(p4) = Instr.Return -> (
      match (instrs.(p3), virt_mem p2) with
      | Instr.Mbr_store b, Some (lo, n, r, data) ->
        let ib = Instr.arg_index b in
        let egress = stage_of p1 >= ingress in
        (fun st ->
          st.rts <- true;
          st.dst <- st.src;
          if egress then begin
            st.port_recircs <- st.port_recircs + 1;
            Rmt.Device.count_recirculation device
          end;
          let mm = st.mar mod n in
          let v =
            if mm >= 0 then begin
              r.Rmt.Register_array.accesses <-
                r.Rmt.Register_array.accesses + 1;
              Array.unsafe_get data (lo + mm)
            end
            else Rmt.Register_array.read_counted r (lo + mm)
          in
          st.mbr <- v;
          st.args.(ib) <- mask32 v;
          st.complete <- true)
        :: peep rest
      | _ -> ops.(p1) :: peep (p2 :: p3 :: p4 :: rest))
    (* RTS acknowledgement of a write: RTS / MEM_WRITE / RETURN *)
    | p1 :: p2 :: p3 :: rest
      when instrs.(p1) = Instr.Rts
           && instrs.(p2) = Instr.Mem_write
           && instrs.(p3) = Instr.Return -> (
      match virt_mem p2 with
      | Some (lo, n, r, data) ->
        let egress = stage_of p1 >= ingress in
        (fun st ->
          st.rts <- true;
          st.dst <- st.src;
          if egress then begin
            st.port_recircs <- st.port_recircs + 1;
            Rmt.Device.count_recirculation device
          end;
          let mm = st.mar mod n in
          if mm >= 0 then begin
            r.Rmt.Register_array.accesses <- r.Rmt.Register_array.accesses + 1;
            Array.unsafe_set data (lo + mm) (st.mbr land 0xFFFFFFFF)
          end
          else Rmt.Register_array.write_counted r (lo + mm) st.mbr;
          st.complete <- true)
        :: peep rest
      | None -> ops.(p1) :: peep (p2 :: p3 :: rest))
    (* plain address chains (no fusable access follows) *)
    | p1 :: p2 :: p3 :: rest
      when instrs.(p1) = Instr.Hash
           && instrs.(p2) = Instr.Addr_mask
           && instrs.(p3) = Instr.Addr_offset -> (
      match (entry_at p2, entry_at p3) with
      | Some e2, Some e3 ->
        let row = (Rmt.Device.stage device (stage_of p1)).Rmt.Device.hash_row in
        let m = e2.Table.xmask and o = e3.Table.xoffset in
        (fun st ->
          st.mar <-
            ((mask32 (Rmt.Crc.hash_words2 ~row st.hd0 st.hd1) land m) + o)
            land 0xFFFFFFFF)
        :: peep rest
      | _ -> ops.(p1) :: peep (p2 :: p3 :: rest))
    | p1 :: p2 :: p3 :: rest
      when (match instrs.(p1) with Instr.Mar_load _ -> true | _ -> false)
           && instrs.(p2) = Instr.Addr_mask
           && instrs.(p3) = Instr.Addr_offset -> (
      match (instrs.(p1), entry_at p2, entry_at p3) with
      | Instr.Mar_load a, Some e2, Some e3 ->
        let i = Instr.arg_index a in
        let m = e2.Table.xmask and o = e3.Table.xoffset in
        (fun st -> st.mar <- ((st.args.(i) land m) + o) land 0xFFFFFFFF)
        :: peep rest
      | _ -> ops.(p1) :: peep (p2 :: p3 :: rest))
    | p2 :: p3 :: rest
      when instrs.(p2) = Instr.Addr_mask && instrs.(p3) = Instr.Addr_offset -> (
      match (entry_at p2, entry_at p3) with
      | Some e2, Some e3 ->
        let m = e2.Table.xmask and o = e3.Table.xoffset in
        (fun st -> st.mar <- ((st.mar land m) + o) land 0xFFFFFFFF) :: peep rest
      | _ -> ops.(p2) :: peep (p3 :: rest))
    (* key-to-hashdata load prefix *)
    | p1 :: p2 :: p3 :: p4 :: rest
      when (match (instrs.(p1), instrs.(p2)) with
           | Instr.Mbr_load _, Instr.Mbr2_load _ -> true
           | _ -> false)
           && instrs.(p3) = Instr.Copy_hashdata_mbr
           && instrs.(p4) = Instr.Copy_hashdata_mbr2 -> (
      match (instrs.(p1), instrs.(p2)) with
      | Instr.Mbr_load a, Instr.Mbr2_load b ->
        let ia = Instr.arg_index a and ib = Instr.arg_index b in
        (fun st ->
          let v = st.args.(ia) in
          let v2 = st.args.(ib) in
          st.mbr <- v;
          st.mbr2 <- v2;
          st.hd0 <- v;
          st.hd1 <- v2)
        :: peep rest
      | _ -> assert false)
    | p1 :: p2 :: rest
      when (match instrs.(p1) with Instr.Mbr_load _ -> true | _ -> false)
           && instrs.(p2) = Instr.Copy_hashdata_mbr -> (
      match instrs.(p1) with
      | Instr.Mbr_load a ->
        let i = Instr.arg_index a in
        (fun st ->
          let v = st.args.(i) in
          st.mbr <- v;
          st.hd0 <- v)
        :: peep rest
      | _ -> assert false)
    (* register-save then bump: COPY_MBR2_MBR / MEM_INCREMENT *)
    | p1 :: p2 :: rest
      when instrs.(p1) = Instr.Copy_mbr2_mbr
           && instrs.(p2) = Instr.Mem_increment -> (
      match virt_mem p2 with
      | Some (lo, n, r, data) ->
        (fun st ->
          st.mbr2 <- st.mbr;
          let mm = st.mar mod n in
          if mm >= 0 then begin
            r.Rmt.Register_array.accesses <- r.Rmt.Register_array.accesses + 1;
            let nv = (Array.unsafe_get data (lo + mm) + 1) land 0xFFFFFFFF in
            Array.unsafe_set data (lo + mm) nv;
            st.mbr <- nv
          end
          else st.mbr <- Rmt.Register_array.add_read_counted r (lo + mm) 1)
        :: peep rest
      | None -> ops.(p1) :: peep (p2 :: rest))
    (* loaded-operand stores: MAR_LOAD or MBR(2)_LOAD straight into a
       write *)
    | p1 :: p2 :: rest
      when (match instrs.(p1) with Instr.Mar_load _ -> true | _ -> false)
           && instrs.(p2) = Instr.Mem_write -> (
      match (instrs.(p1), virt_mem p2) with
      | Instr.Mar_load a, Some (lo, n, r, data) ->
        let i = Instr.arg_index a in
        (fun st ->
          let adr = st.args.(i) in
          st.mar <- adr;
          let mm = adr mod n in
          if mm >= 0 then begin
            r.Rmt.Register_array.accesses <- r.Rmt.Register_array.accesses + 1;
            Array.unsafe_set data (lo + mm) (st.mbr land 0xFFFFFFFF)
          end
          else Rmt.Register_array.write_counted r (lo + mm) st.mbr)
        :: peep rest
      | _ -> ops.(p1) :: peep (p2 :: rest))
    | p1 :: p2 :: rest
      when (match instrs.(p1) with
           | Instr.Mbr_load _ | Instr.Mbr2_load _ -> true
           | _ -> false)
           && instrs.(p2) = Instr.Mem_write -> (
      match (instrs.(p1), virt_mem p2) with
      | Instr.Mbr_load a, Some (lo, n, r, data) ->
        let i = Instr.arg_index a in
        (fun st ->
          let v = st.args.(i) in
          st.mbr <- v;
          let mm = st.mar mod n in
          if mm >= 0 then begin
            r.Rmt.Register_array.accesses <- r.Rmt.Register_array.accesses + 1;
            Array.unsafe_set data (lo + mm) (v land 0xFFFFFFFF)
          end
          else Rmt.Register_array.write_counted r (lo + mm) v)
        :: peep rest
      | Instr.Mbr2_load a, Some (lo, n, r, data) ->
        let i = Instr.arg_index a in
        (fun st ->
          st.mbr2 <- st.args.(i);
          let mm = st.mar mod n in
          if mm >= 0 then begin
            r.Rmt.Register_array.accesses <- r.Rmt.Register_array.accesses + 1;
            Array.unsafe_set data (lo + mm) (st.mbr land 0xFFFFFFFF)
          end
          else Rmt.Register_array.write_counted r (lo + mm) st.mbr)
        :: peep rest
      | _ -> ops.(p1) :: peep (p2 :: rest))
    | p :: rest -> ops.(p) :: peep rest
    | [] -> []
  in
  (* A block starting at [pc] runs the longest chain of non-stoppers, plus
     at most one trailing stopper (the driver re-checks the flags after
     every block), without crossing a pass boundary.  Since every slot of
     the block executes once the block is entered, the per-slot
     [executed]/[last_stage] stores are dead until the block ends: one
     accounting update up front covers the whole block, and NOP slots
     vanish entirely. *)
  let blocks =
    Array.init len (fun pc ->
        let limit = pc + n_stages - (pc mod n_stages) in
        let limit = if limit < len then limit else len in
        let j = ref pc in
        while !j < limit && not stopper.(!j) do
          incr j
        done;
        let stop = if !j < limit then !j + 1 else !j in
        let slots = stop - pc in
        let s_last = (stop - 1) mod n_stages in
        let pcs = ref [] in
        for k = stop - 1 downto pc do
          if instrs.(k) <> Instr.Nop then pcs := k :: !pcs
        done;
        { b_n = slots; b_fn = fuse_acc slots s_last (peep !pcs) })
  in
  let labels =
    Array.init len (fun pc ->
        match lines.(pc).Program.label with Some l -> l | None -> no_label)
  in
  let has_jumps =
    Array.exists
      (function
        | Instr.Cjump _ | Instr.Cjumpi _ | Instr.Ujump _ -> true
        | _ -> false)
      instrs
  in
  (* Jump-free programs (no way to set the disabled flag) compile to one
     whole-program chain: blocks linked on the complete flag, the final pc
     stored as a baked constant after each block, and each pass boundary
     reduced to its statically known outcome — a recirculation count plus
     pass-counter store, or (beyond the allowance) the limit drop. *)
  let straight =
    if has_jumps then None
    else begin
      let links = ref [] in
      let pc = ref 0 in
      while !pc < len do
        if !pc > 0 && !pc mod n_stages = 0 then begin
          let k = !pc / n_stages in
          let link =
            if k > pass_allowance then fun st ->
              drop_with device st Runtime.Recirculation_limit
            else fun st ->
              Rmt.Device.count_recirculation device;
              st.f_passes <- k + 1
          in
          links := link :: !links
        end;
        let b = blocks.(!pc) in
        let after = !pc + b.b_n in
        let fn = b.b_fn in
        links := (fun st -> fn st; st.f_pc <- after) :: !links;
        pc := after
      done;
      Some (chain (List.rev !links))
    end
  in
  {
    ops;
    blocks;
    labels;
    instrs;
    len;
    single_pass = len <= n_stages;
    straight;
    c_n_stages = n_stages;
    c_ingress = ingress;
    pass_allowance;
    c_device = device;
  }

(* Re-enable at a matching label while skipping: the slot executes with
   per-slot accounting (its fused block may include neighbours that must
   stay skipped, so the block form can't be used here). *)
let exec_labelled c st pc =
  st.disabled <- no_label;
  c.ops.(pc) st;
  st.executed <- st.executed + 1;
  st.last_stage <- pc mod c.c_n_stages

(* The fast single-pass driver: most synthesized programs fit in one
   traversal, which needs no recirculation bookkeeping at all. *)
let drive_single c st =
  let pc = ref 0 in
  while !pc < c.len && not st.complete do
    if st.disabled < 0 then begin
      let b = Array.unsafe_get c.blocks !pc in
      b.b_fn st;
      pc := !pc + b.b_n
    end
    else begin
      if c.labels.(!pc) = st.disabled then exec_labelled c st !pc;
      incr pc
    end
  done;
  st.f_pc <- !pc;
  st.f_passes <- 1

(* The general driver: fused blocks, no event emission.  Mirrors the
   interpreter's pass/disabled/recirculation accounting exactly. *)
let drive c st =
  let pc = ref 0 in
  let passes = ref 0 in
  let limit_hit = ref false in
  while (not st.complete) && !pc < c.len && not !limit_hit do
    if !passes > 0 then begin
      if !passes > c.pass_allowance then begin
        limit_hit := true;
        drop_with c.c_device st Runtime.Recirculation_limit
      end
      else Rmt.Device.count_recirculation c.c_device
    end;
    if not !limit_hit then begin
      let stop =
        let h = !pc + c.c_n_stages in
        if h < c.len then h else c.len
      in
      while !pc < stop && not st.complete do
        if st.disabled < 0 then begin
          let b = Array.unsafe_get c.blocks !pc in
          b.b_fn st;
          pc := !pc + b.b_n
        end
        else begin
          if c.labels.(!pc) = st.disabled then exec_labelled c st !pc;
          incr pc
        end
      done;
      incr passes
    end
  done;
  st.f_pc <- !pc;
  st.f_passes <- (if !passes > 1 then !passes else 1)

(* The tracing driver: steps one slot at a time and emits the same
   [trace_event] stream the interpreter would. *)
let drive_with_events c st f =
  let pc = ref 0 in
  let passes = ref 0 in
  let limit_hit = ref false in
  while (not st.complete) && !pc < c.len && not !limit_hit do
    if !passes > 0 then begin
      if !passes > c.pass_allowance then begin
        limit_hit := true;
        drop_with c.c_device st Runtime.Recirculation_limit
      end
      else Rmt.Device.count_recirculation c.c_device
    end;
    if not !limit_hit then begin
      let stop =
        let h = !pc + c.c_n_stages in
        if h < c.len then h else c.len
      in
      while !pc < stop && not st.complete do
        let skipped =
          if st.disabled < 0 then begin
            c.ops.(!pc) st;
            st.executed <- st.executed + 1;
            st.last_stage <- !pc mod c.c_n_stages;
            false
          end
          else if c.labels.(!pc) = st.disabled then begin
            exec_labelled c st !pc;
            false
          end
          else true
        in
        f
          {
            Runtime.tr_pass = !passes;
            tr_stage = !pc mod c.c_n_stages;
            tr_pc = !pc;
            tr_instr = c.instrs.(!pc);
            tr_skipped = skipped;
            tr_mar = st.mar;
            tr_mbr = st.mbr;
            tr_mbr2 = st.mbr2;
          };
        incr pc
      done;
      incr passes
    end
  done;
  st.f_pc <- !pc;
  st.f_passes <- (if !passes > 1 then !passes else 1)

let exec_compiled ?on_event c ~(meta : Runtime.meta) ~args ~st =
  let n_args = Array.length args in
  (* One copy serves as both the working argument store and the result's
     [args_out] — the only per-packet allocation besides the result.  The
     wire format pads every Exec to exactly four argument words, so the
     common case is an inline literal (a pointer-bump allocation) rather
     than the C call behind [Array.copy]. *)
  let args =
    if n_args = 4 then
      [|
        Array.unsafe_get args 0;
        Array.unsafe_get args 1;
        Array.unsafe_get args 2;
        Array.unsafe_get args 3;
      |]
    else Array.copy args
  in
  st.mar <- (if n_args > 0 then args.(0) else 0);
  st.mbr <- (if n_args > 1 then args.(1) else 0);
  st.mbr2 <- (if n_args > 2 then args.(2) else 0);
  st.hd0 <- 0;
  st.hd1 <- 0;
  st.complete <- false;
  st.disabled <- no_label;
  st.rts <- false;
  st.dst <- meta.Runtime.dst;
  st.dropped <- None;
  st.executed <- 0;
  st.port_recircs <- 0;
  st.forks <- 0;
  st.last_stage <- 0;
  st.f_pc <- 0;
  st.f_passes <- 1;
  st.args <- args;
  st.src <- meta.Runtime.src;
  st.flow_key <- meta.Runtime.flow_key;
  (match on_event with
  | None -> (
      match c.straight with
      | Some f -> f st
      | None -> if c.single_pass then drive_single c st else drive c st)
  | Some f -> drive_with_events c st f);
  let pipelines =
    let within_ingress = st.last_stage < c.c_ingress in
    ((st.f_passes - 1) * 2)
    + (if within_ingress then 1 else 2)
    + (2 * st.port_recircs)
  in
  let decision =
    match st.dropped with
    | Some r -> Runtime.Dropped r
    | None -> if st.rts then Runtime.Return_to_sender else Runtime.Forward st.dst
  in
  {
    Runtime.decision;
    args_out = args;
    executed = st.executed;
    passes = st.f_passes;
    port_recirculations = st.port_recircs;
    pipelines;
    quiesced = false;
    consumed_prefix = st.f_pc;
    final_mar = st.mar;
    final_mbr = st.mbr;
    final_mbr2 = st.mbr2;
    forks = st.forks;
  }

module Telemetry = Activermt_telemetry.Telemetry

let fresh_state () =
  {
    mar = 0;
    mbr = 0;
    mbr2 = 0;
    hd0 = 0;
    hd1 = 0;
    complete = false;
    disabled = no_label;
    rts = false;
    dst = 0;
    dropped = None;
    executed = 0;
    port_recircs = 0;
    forks = 0;
    last_stage = 0;
    f_pc = 0;
    f_passes = 1;
    args = [||];
    src = 0;
    flow_key = [||];
  }

let create ?(enabled = true) ?(telemetry = Telemetry.default) tables =
  (* Seed the counters so a metrics dump always carries the jit stats
     lines, even for runs that never execute a capsule. *)
  List.iter
    (fun c -> Telemetry.incr telemetry ~by:0 c)
    [ "jit.compile"; "jit.hit"; "jit.miss"; "jit.invalidate" ];
  Telemetry.set_gauge telemetry "jit.enabled" (if enabled then 1.0 else 0.0);
  {
    tables;
    enabled;
    telemetry;
    cache = Hashtbl.create 64;
    dm_fid = Array.make dm_slots (-1);
    dm_entry = Array.make dm_slots no_entry;
    scratch = fresh_state ();
    s_hits = 0;
    s_misses = 0;
    s_compiles = 0;
    s_invalidates = 0;
    p_hits = 0;
    p_misses = 0;
    p_compiles = 0;
    p_invalidates = 0;
    last_mode = Interpreted;
  }

let enabled t = t.enabled
let tables t = t.tables
let cache_size t = Hashtbl.length t.cache

let flush_stats t =
  let pub got published name =
    if got > published then Telemetry.incr t.telemetry ~by:(got - published) name
  in
  pub t.s_hits t.p_hits "jit.hit";
  pub t.s_misses t.p_misses "jit.miss";
  pub t.s_compiles t.p_compiles "jit.compile";
  pub t.s_invalidates t.p_invalidates "jit.invalidate";
  t.p_hits <- t.s_hits;
  t.p_misses <- t.s_misses;
  t.p_compiles <- t.s_compiles;
  t.p_invalidates <- t.s_invalidates

let stats t = (t.s_hits, t.s_misses, t.s_compiles, t.s_invalidates)

let invalidate t ~fid =
  if Hashtbl.mem t.cache fid then begin
    Hashtbl.remove t.cache fid;
    let slot = fid land (dm_slots - 1) in
    if t.dm_fid.(slot) = fid then begin
      t.dm_fid.(slot) <- -1;
      t.dm_entry.(slot) <- no_entry
    end;
    t.s_invalidates <- t.s_invalidates + 1;
    flush_stats t
  end

let invalidate_all t =
  let n = Hashtbl.length t.cache in
  if n > 0 then begin
    Hashtbl.reset t.cache;
    Array.fill t.dm_fid 0 dm_slots (-1);
    Array.fill t.dm_entry 0 dm_slots no_entry;
    t.s_invalidates <- t.s_invalidates + n;
    flush_stats t
  end

let find_prog progs program =
  let rec go = function
    | [] -> None
    | (p, c) :: tl ->
      if p == program || Program.equal p program then Some c else go tl
  in
  go progs

let compile_into t ~fid ~program entry =
  let c =
    Telemetry.with_span t.telemetry "jit.compile_s" (fun () ->
        compile t.tables ~fid program)
  in
  t.s_compiles <- t.s_compiles + 1;
  t.s_misses <- t.s_misses + 1;
  (match entry with
  | Some ce ->
    let kept =
      if List.length ce.ce_progs >= max_progs_per_fid then
        List.filteri (fun i _ -> i < max_progs_per_fid - 1) ce.ce_progs
      else ce.ce_progs
    in
    ce.ce_progs <- (program, c) :: kept
  | None ->
    let cell = Table.epoch_ref t.tables ~fid in
    let ce = { ce_cell = cell; ce_version = !cell; ce_progs = [ (program, c) ] } in
    Hashtbl.replace t.cache fid ce;
    let slot = fid land (dm_slots - 1) in
    t.dm_fid.(slot) <- fid;
    t.dm_entry.(slot) <- ce);
  flush_stats t;
  c

let default_meta = Runtime.meta ~src:0 ~dst:0 ()

(* Miss path: the FID has no valid cached closure for this program.
   Uninstalled or quiesced FIDs execute in the interpreter (which handles
   pass-through); otherwise compile against the current allocation. *)
let run_slow ?on_event t ~meta ~fid ~args ~program ~entry pkt =
  let stale =
    match entry with Some ce -> !(ce.ce_cell) <> ce.ce_version | None -> false
  in
  if stale then invalidate t ~fid;
  if Table.is_quiesced t.tables ~fid || not (Table.installed t.tables ~fid) then begin
    t.last_mode <- Interpreted;
    Runtime.run ?on_event t.tables ~meta pkt
  end
  else begin
    let entry = if stale then None else entry in
    let c = compile_into t ~fid ~program entry in
    t.last_mode <- Compiled_fresh;
    exec_compiled ?on_event c ~meta ~args ~st:t.scratch
  end

(* Cache-entry hit with the head program already ruled out: scan the rest
   of the FID's compiled variants, else take the miss path. *)
let run_entry_rest ?on_event t ~meta ~fid ~args ~program ~ce pkt =
  match find_prog ce.ce_progs program with
  | Some c ->
    t.s_hits <- t.s_hits + 1;
    t.last_mode <- Compiled;
    exec_compiled ?on_event c ~meta ~args ~st:t.scratch
  | None -> run_slow ?on_event t ~meta ~fid ~args ~program ~entry:(Some ce) pkt

let run_entry ?on_event t ~meta ~fid ~args ~program ~ce pkt =
  (* A valid epoch implies the FID is installed and not quiesced: install,
     remove and quiescence transitions all bump it. *)
  if !(ce.ce_cell) = ce.ce_version then
    match ce.ce_progs with
    | (p0, c0) :: _ when p0 == program ->
      t.s_hits <- t.s_hits + 1;
      t.last_mode <- Compiled;
      exec_compiled ?on_event c0 ~meta ~args ~st:t.scratch
    | _ -> run_entry_rest ?on_event t ~meta ~fid ~args ~program ~ce pkt
  else run_slow ?on_event t ~meta ~fid ~args ~program ~entry:(Some ce) pkt

let run ?on_event t ?(meta = default_meta) (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Packet.Exec { args; program } when t.enabled -> (
    let fid = pkt.Packet.fid in
    let slot = fid land (dm_slots - 1) in
    if Array.unsafe_get t.dm_fid slot = fid then begin
      (* Hot path, fully inline: direct-mapped slot hit, valid epoch,
         head-of-list program match. *)
      let ce = Array.unsafe_get t.dm_entry slot in
      if !(ce.ce_cell) = ce.ce_version then
        match ce.ce_progs with
        | (p0, c0) :: _ when p0 == program ->
          t.s_hits <- t.s_hits + 1;
          t.last_mode <- Compiled;
          exec_compiled ?on_event c0 ~meta ~args ~st:t.scratch
        | _ -> run_entry_rest ?on_event t ~meta ~fid ~args ~program ~ce pkt
      else run_slow ?on_event t ~meta ~fid ~args ~program ~entry:(Some ce) pkt
    end
    else
      match Hashtbl.find t.cache fid with
      | ce ->
        t.dm_fid.(slot) <- fid;
        t.dm_entry.(slot) <- ce;
        run_entry ?on_event t ~meta ~fid ~args ~program ~ce pkt
      | exception Not_found ->
        run_slow ?on_event t ~meta ~fid ~args ~program ~entry:None pkt)
  | _ ->
    t.last_mode <- Interpreted;
    Runtime.run ?on_event t.tables ~meta pkt

let run_info ?on_event t ?meta pkt =
  let r = run ?on_event t ?meta pkt in
  (r, t.last_mode)

let would_specialize t (pkt : Packet.t) =
  t.enabled
  &&
  match pkt.Packet.payload with
  | Packet.Exec _ ->
    let fid = pkt.Packet.fid in
    (not (Table.is_quiesced t.tables ~fid)) && Table.installed t.tables ~fid
  | _ -> false
