(** One stage's stateful register memory.

    An RMT stage owns a register array driven by a stateful ALU.  Per
    packet, a match-table action may trigger exactly one register access at
    one index, running one of a fixed set of register micro-programs
    (Section 3.2 defines four memory semantics; together with plain reads
    and writes they back the Appendix A.4 instructions).

    Values are 32-bit, stored as masked OCaml ints.  Each access is
    counted so tests can assert the one-access-per-stage-per-packet
    invariant end to end. *)

type t = {
  data : int array;
      (** Live backing store.  Exposed (with [accesses]) so compiled
          per-packet code ({!Jit}) can inline accesses it has proven in
          bounds; everything else should go through {!access} or the
          [*_counted] entry points.  Stored values are 32-bit masked —
          writers must mask. *)
  mutable accesses : int;
}

(** The stateful-ALU micro-programs exposed to the data plane. *)
type op =
  | Read  (** result = mem[i] *)
  | Write of int  (** mem[i] <- operand; result = operand *)
  | Add_read of int  (** mem[i] <- mem[i] + operand; result = new value *)
  | Min_read of int  (** result = min(mem[i], operand); mem unchanged *)
  | Max_write of int
      (** mem[i] <- max(mem[i], operand); result = old value *)

type access_result = { value : int }

val create : words:int -> t
val words : t -> int

val access : t -> index:int -> op -> access_result
(** Execute one micro-program at [index].
    @raise Invalid_argument if [index] is out of bounds — the runtime's
    protection tables are supposed to make that impossible, so hitting it
    signals a protection bug, not user error. *)

val read_counted : t -> int -> int
val write_counted : t -> int -> int -> unit
val add_read_counted : t -> int -> int -> int

val min_read_counted : t -> int -> int -> int
(** Counted single-op entry points: [read_counted t i] is
    [(access t ~index:i Read).value] (and likewise [Write]/[Add_read]/
    [Min_read]) with identical bounds checking and access accounting but
    no per-call allocation — for compiled per-packet code ({!Jit}). *)

val get : t -> int -> int
(** Control-plane read (BFRT-style), not counted as a data-plane access. *)

val set : t -> int -> int -> unit
(** Control-plane write. *)

val zero_range : t -> lo:int -> hi:int -> unit
(** Control-plane bulk clear of the inclusive range, used when recycling a
    freed allocation. *)

val access_count : t -> int
(** Total data-plane accesses since creation. *)

val snapshot_range : t -> lo:int -> hi:int -> int array
(** Copy of the inclusive range, used for consistent snapshots during
    reallocation (Section 4.3). *)

val restore_range : t -> lo:int -> int array -> unit
