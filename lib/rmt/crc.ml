let table poly =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := poly lxor (!c lsr 1) else c := !c lsr 1
      done;
      !c)

let crc32_table = table 0xEDB88320
let crc32c_table = table 0x82F63B78

let update tbl crc byte = tbl.((crc lxor byte) land 0xff) lxor (crc lsr 8)

let bytes_of_word w =
  [ w land 0xff; (w lsr 8) land 0xff; (w lsr 16) land 0xff; (w lsr 24) land 0xff ]

let run tbl ~seed words =
  let crc = ref (0xFFFFFFFF lxor (seed land 0xFFFFFFFF)) in
  let feed byte = crc := update tbl !crc byte in
  List.iter (fun w -> List.iter feed (bytes_of_word w)) words;
  !crc lxor 0xFFFFFFFF

let crc32 ?(seed = 0) words = run crc32_table ~seed words
let crc32c ?(seed = 0) words = run crc32c_table ~seed words

(* CRC is linear over GF(2), so varying only the seed (or prepending a
   row constant) produces *affine translations* of one function — probes
   would be fully correlated and sketch/Bloom rows would lose their
   independence.  Real Tofino stages configure genuinely different
   polynomials; we emulate a polynomial family by mixing the row into the
   CRC output with a non-linear (murmur3) finalizer. *)
let finalize ~row base =
  let x = (base lxor (row * 0x9E3779B1)) land 0xFFFFFFFF in
  let x = (x lxor (x lsr 16)) * 0x85EBCA6B land 0xFFFFFFFF in
  let x = (x lxor (x lsr 13)) * 0xC2B2AE35 land 0xFFFFFFFF in
  x lxor (x lsr 16)

let hash_words ~row words =
  let base = if row land 1 = 0 then crc32 words else crc32c words in
  finalize ~row base

(* Allocation-free two-word variant for the data plane's hot path (the
   hash engine always digests exactly HASHDATA[0..1]); bit-identical to
   [hash_words ~row [ w0; w1 ]].  Uses slicing-by-8: the full eight-byte
   digest becomes eight *independent* table lookups (t7[b0] ^ ... ^
   t0[b7]) instead of eight serially dependent byte steps, so the loads
   overlap.  The slice tables satisfy t{k+1}[i] = (tk[i] >> 8) ^
   t0[tk[i] & 0xff]; laid out as one flat 2048-entry array per
   polynomial. *)
let slice8 tbl =
  let t = Array.make 2048 0 in
  Array.blit tbl 0 t 0 256;
  for k = 1 to 7 do
    for i = 0 to 255 do
      let p = t.(((k - 1) * 256) + i) in
      t.((k * 256) + i) <- (p lsr 8) lxor tbl.(p land 0xff)
    done
  done;
  t

let crc32_slice = slice8 crc32_table
let crc32c_slice = slice8 crc32c_table

let hash_words2 ~row w0 w1 =
  let t = if row land 1 = 0 then crc32_slice else crc32c_slice in
  (* Both words in one slicing-by-8 step: the running CRC's contribution
     to the second word is fully captured by tables t4..t7, so all eight
     loads are independent — no serial dependency between the words. *)
  let x = (0xFFFFFFFF lxor w0) land 0xFFFFFFFF in
  let y = w1 land 0xFFFFFFFF in
  let crc =
    Array.unsafe_get t (1792 + (x land 0xff))
    lxor Array.unsafe_get t (1536 + ((x lsr 8) land 0xff))
    lxor Array.unsafe_get t (1280 + ((x lsr 16) land 0xff))
    lxor Array.unsafe_get t (1024 + ((x lsr 24) land 0xff))
    lxor Array.unsafe_get t (768 + (y land 0xff))
    lxor Array.unsafe_get t (512 + ((y lsr 8) land 0xff))
    lxor Array.unsafe_get t (256 + ((y lsr 16) land 0xff))
    lxor Array.unsafe_get t ((y lsr 24) land 0xff)
  in
  finalize ~row (crc lxor 0xFFFFFFFF)
