type t = { data : int array; mutable accesses : int }

type op =
  | Read
  | Write of int
  | Add_read of int
  | Min_read of int
  | Max_write of int

type access_result = { value : int }

let mask32 v = v land 0xFFFFFFFF

let create ~words =
  if words <= 0 then invalid_arg "Register_array.create: words must be positive";
  { data = Array.make words 0; accesses = 0 }

let words t = Array.length t.data

let check t index =
  if index < 0 || index >= Array.length t.data then
    invalid_arg
      (Printf.sprintf "Register_array.access: index %d out of bounds [0,%d)"
         index (Array.length t.data))

let access t ~index op =
  check t index;
  t.accesses <- t.accesses + 1;
  let value =
    match op with
    | Read -> t.data.(index)
    | Write v ->
      let v = mask32 v in
      t.data.(index) <- v;
      v
    | Add_read v ->
      let nv = mask32 (t.data.(index) + v) in
      t.data.(index) <- nv;
      nv
    | Min_read v -> min t.data.(index) (mask32 v)
    | Max_write v ->
      let old = t.data.(index) in
      t.data.(index) <- max old (mask32 v);
      old
  in
  { value }

(* Counted single-op entry points: identical semantics to [access] with
   the corresponding [op] (bounds check, access accounting, masking) but
   no op/result allocation, for compiled per-packet code. *)
let read_counted t index =
  check t index;
  t.accesses <- t.accesses + 1;
  t.data.(index)

let write_counted t index v =
  check t index;
  t.accesses <- t.accesses + 1;
  t.data.(index) <- mask32 v

let add_read_counted t index v =
  check t index;
  t.accesses <- t.accesses + 1;
  let nv = mask32 (t.data.(index) + v) in
  t.data.(index) <- nv;
  nv

let min_read_counted t index v =
  check t index;
  t.accesses <- t.accesses + 1;
  min t.data.(index) (mask32 v)

let get t index =
  check t index;
  t.data.(index)

let set t index v =
  check t index;
  t.data.(index) <- mask32 v

let zero_range t ~lo ~hi =
  check t lo;
  check t hi;
  Array.fill t.data lo (hi - lo + 1) 0

let access_count t = t.accesses

let snapshot_range t ~lo ~hi =
  check t lo;
  check t hi;
  Array.sub t.data lo (hi - lo + 1)

let restore_range t ~lo values =
  check t lo;
  if lo + Array.length values > Array.length t.data then
    invalid_arg "Register_array.restore_range: range exceeds array";
  Array.blit values 0 t.data lo (Array.length values)
