(** CRC hash units.

    Tofino's data-plane hash engines compute CRC polynomials over selected
    PHV fields; ActiveRMT's HASH instruction feeds the hash-data registers
    through one of them.  We implement CRC-32 (reflected, polynomial
    0xEDB88320) and CRC-32C so that independent sketch rows can use
    independent hash functions, plus a seeded variant used to emulate
    per-stage hash diversity. *)

val crc32 : ?seed:int -> int list -> int
(** CRC-32 over the 32-bit words of the input (little-endian byte order),
    truncated to a non-negative OCaml [int]. *)

val crc32c : ?seed:int -> int list -> int
(** Castagnoli variant; an independent function for second sketch rows. *)

val hash_words : row:int -> int list -> int
(** [hash_words ~row ws] gives a family of effectively independent hash
    functions indexed by [row] (one per stage).  CRC seeding alone is
    affine — seeded variants of one polynomial are translations of each
    other and would correlate sketch/Bloom probes — so the row is folded
    in with a non-linear finalizer, emulating per-stage polynomial
    diversity on real hardware. *)

val hash_words2 : row:int -> int -> int -> int
(** [hash_words2 ~row w0 w1] = [hash_words ~row [ w0; w1 ]] without the
    list allocations, for per-packet use. *)
