module Controller = Activermt_control.Controller
module Telemetry = Activermt_telemetry.Telemetry
module Trace = Activermt_telemetry.Trace

type address = int

let switch_address = 0

type payload =
  | Active of Activermt.Packet.t
  | Kv_request of { key : Workload.Kv.key }
  | Kv_reply of { key : Workload.Kv.key; value : int }
  | Alloc_failed
  | Notify_realloc

type msg = { src : address; dst : address; payload : payload; trace : Trace.ctx option }

let msg ?trace ~src ~dst payload = { src; dst; payload; trace }

type t = {
  engine : Engine.t;
  controller : Controller.t;
  address : address;
  wire_latency_s : float;
  loss_rate : float;
  loss_rng : Stdx.Prng.t;
  faults : Faults.t option;
  nodes : (address, msg -> unit) Hashtbl.t;
  mutable default_node : (msg -> unit) option;
  owners : (Activermt.Packet.fid, address) Hashtbl.t;
  jit : Activermt.Jit.t;
  mutable drops : int;
  mutable lost : int;
  tel : Telemetry.t;
  tracer : Trace.t;
}

let create ?(address = switch_address) ?(wire_latency_s = 5.0e-6)
    ?(loss_rate = 0.0) ?(loss_seed = 4_059) ?faults ?(jit = true)
    ?(telemetry = Telemetry.default) ?(tracer = Trace.noop) ~engine ~controller
    () =
  if loss_rate < 0.0 || loss_rate >= 1.0 then
    invalid_arg "Fabric.create: loss_rate must be in [0, 1)";
  (* A faults handle with an all-off profile is the same as no handle:
     take the legacy (zero-cost, bit-identical) paths. *)
  let faults =
    match faults with
    | Some f when Faults.is_none (Faults.profile f) -> None
    | other -> other
  in
  {
    engine;
    controller;
    address;
    wire_latency_s;
    loss_rate;
    loss_rng = Stdx.Prng.create ~seed:loss_seed;
    faults;
    nodes = Hashtbl.create 16;
    default_node = None;
    owners = Hashtbl.create 16;
    jit =
      Activermt.Jit.create ~enabled:jit ~telemetry
        (Controller.tables controller);
    drops = 0;
    lost = 0;
    tel = telemetry;
    tracer;
  }

let engine t = t.engine
let controller t = t.controller
let address t = t.address
let faults t = t.faults
let tracer t = t.tracer
let jit t = t.jit

let attach t addr handler =
  if addr = t.address then invalid_arg "Fabric.attach: switch address reserved";
  Hashtbl.replace t.nodes addr handler

let attach_default t handler = t.default_node <- Some handler

let register_fid t ~fid ~owner = Hashtbl.replace t.owners fid owner

(* ---- Trace plumbing ----
   A message carries its trace context; each hop chains a child event so
   the trace reads as the capsule's itinerary.  Everything below is a
   no-op (one pointer test) when the message is untraced. *)

let tr_on t m =
  match m.trace with
  | Some c when Trace.enabled t.tracer -> Some c
  | Some _ | None -> None

let sw_attr t = ("switch", string_of_int t.address)
let link_attr m = ("link", Printf.sprintf "%d->%d" m.src m.dst)

(* Terminal fault events: nothing downstream chains off them. *)
let tr_fault t m ?(attrs = []) name =
  match tr_on t m with
  | None -> ()
  | Some c ->
    ignore
      (Trace.instant t.tracer c ~attrs:(sw_attr t :: link_attr m :: attrs) name)

(* Chain a hop event: the message continues under the new child span. *)
let tr_hop t m ?(attrs = []) name =
  match tr_on t m with
  | None -> m
  | Some c ->
    let attrs = sw_attr t :: ("dst", string_of_int m.dst) :: attrs in
    { m with trace = Some (Trace.instant t.tracer c ~attrs name) }

let wire_ctx (c : Trace.ctx) : Activermt.Wire.trace_ctx =
  { Activermt.Wire.trace_id = c.Trace.trace_id; span_id = c.Trace.span_id }

let lossy t m =
  (* Only program packets and their replies ride the lossy data plane. *)
  match m.payload with
  | Active { Activermt.Packet.payload = Activermt.Packet.Exec _; _ } ->
    t.loss_rate > 0.0 && Stdx.Prng.float t.loss_rng 1.0 < t.loss_rate
  | Active _ | Kv_request _ | Kv_reply _ | Alloc_failed | Notify_realloc -> false

let count_lost t =
  t.lost <- t.lost + 1;
  Telemetry.incr t.tel "sim.packets.lost"

(* Corruption damages the capsule's on-the-wire bytes; the receiving
   parser verifies the frame checksum and discards on mismatch.  A
   single-byte flip is always caught (see Wire.checksum), so the effect
   is loss — but it goes through the real encode/verify path (including
   the in-band trace extension) and is accounted separately.  Non-capsule
   payloads have no frame to damage; a corrupted one is simply
   unparseable, i.e. lost. *)
let corruption_rejected t f m =
  let rejected =
    match m.payload with
    | Active pkt -> (
      let trace = Option.map wire_ctx m.trace in
      let framed = Activermt.Wire.frame ?trace (Activermt.Packet.encode pkt) in
      match Activermt.Wire.unframe_traced (Faults.corrupt_bytes f framed) with
      | Error _ -> true
      | Ok _ -> false)
    | Kv_request _ | Kv_reply _ | Alloc_failed | Notify_realloc -> true
  in
  if rejected then Telemetry.incr t.tel "faults.rejected.checksum";
  rejected

(* One network hop under the fault model: decide the delivery's fate,
   then schedule the surviving copies (each with its own jitter, so
   duplicates and back-to-back sends can reorder). *)
let faulty_hop t f ~delay thunk =
  let now = Engine.now t.engine in
  let v = Faults.plan f ~now in
  if v.Faults.lose then `Lost v.Faults.cause
  else if v.Faults.corrupt then `Corrupted
  else begin
    for _ = 1 to v.Faults.copies do
      Engine.schedule t.engine ~delay:(delay +. Faults.jitter f) thunk
    done;
    `Scheduled v.Faults.copies
  end

let cause_attr = function
  | None -> []
  | Some k -> [ ("cause", Faults.kind_to_string k) ]

(* Schedule one hop of [m] toward [fire] (which receives the message with
   its trace advanced by an [event] child), emitting fault events under
   the message's trace as verdicts land. *)
let hop t m ~delay ~event fire =
  let m =
    if Trace.stage_detail t.tracer then
      tr_hop t m
        ~attrs:[ ("delay_us", Printf.sprintf "%.3f" (delay *. 1e6)) ]
        "sim.enqueue"
    else m
  in
  let thunk () = fire (tr_hop t m event) in
  match t.faults with
  | None -> Engine.schedule t.engine ~delay thunk
  | Some f -> (
    match faulty_hop t f ~delay thunk with
    | `Scheduled copies ->
      if copies > 1 then
        tr_fault t m
          ~attrs:[ ("cause", "duplicate"); ("copies", string_of_int copies) ]
          "fault.duplicate"
    | `Lost cause ->
      tr_fault t m ~attrs:(cause_attr cause) "fault.drop";
      count_lost t
    | `Corrupted ->
      tr_fault t m "fault.corrupt";
      if corruption_rejected t f m then begin
        tr_fault t m ~attrs:[ ("cause", "corrupt") ] "fault.drop";
        count_lost t
      end)

let deliver t m ~delay =
  if lossy t m then begin
    tr_fault t m ~attrs:[ ("cause", "loss_rate") ] "fault.drop";
    count_lost t
  end
  else
    hop t m ~delay ~event:"sim.deliver" (fun m ->
        match Hashtbl.find_opt t.nodes m.dst with
        | Some handler ->
          Telemetry.incr t.tel "sim.packets.delivered";
          Telemetry.incr t.tel (Printf.sprintf "sim.node.%d.rx" m.dst);
          handler m
        | None -> (
          match t.default_node with
          | Some handler ->
            Telemetry.incr t.tel "sim.packets.delivered";
            handler m
          | None -> ()))

let notify_impacted ?trace t fids =
  List.iter
    (fun fid ->
      match Hashtbl.find_opt t.owners fid with
      | None -> ()
      | Some owner ->
        deliver t
          { src = t.address; dst = owner; payload = Notify_realloc; trace }
          ~delay:t.wire_latency_s)
    fids

let decision_string r =
  match r with
  | Activermt.Runtime.Forward d -> Printf.sprintf "forward:%d" d
  | Activermt.Runtime.Return_to_sender -> "rts"
  | Activermt.Runtime.Dropped reason ->
    let why =
      match reason with
      | Activermt.Runtime.Protection_violation _ -> "protection"
      | Activermt.Runtime.No_allocation _ -> "no_allocation"
      | Activermt.Runtime.Recirculation_limit -> "recirc_limit"
      | Activermt.Runtime.Privilege_violation _ -> "privilege"
      | Activermt.Runtime.Explicit_drop -> "drop"
    in
    "dropped:" ^ why

let at_switch t m =
  match m.payload with
  | Kv_request _ | Kv_reply _ | Alloc_failed | Notify_realloc ->
    (* Transit traffic: forward to the destination. *)
    deliver t m ~delay:t.wire_latency_s
  | Active pkt -> (
    match pkt.Activermt.Packet.payload with
    | Activermt.Packet.Request _ -> (
      match Controller.handle_request ?trace:(tr_on t m) t.controller pkt with
      | Ok provision ->
        let dt = Activermt_control.Cost_model.total provision.Controller.timing in
        let dt =
          match t.faults with
          | Some f -> Faults.scale_table_update f dt
          | None -> dt
        in
        (match provision.Controller.phase with
        | Controller.Awaiting_extraction { impacted } ->
          notify_impacted ?trace:m.trace t impacted
        | Controller.Committed -> ());
        (* A failed table-update RPC loses the response after the
           controller committed; the client's timed-out re-request is
           answered idempotently from the existing allocation. *)
        let response_failed =
          match t.faults with
          | Some f -> Faults.control_failure f ~now:(Engine.now t.engine)
          | None -> false
        in
        if response_failed then
          tr_fault t m ~attrs:[ ("cause", "ctl_fail") ] "fault.drop"
        else
          deliver t
            {
              src = t.address;
              dst = m.src;
              payload = Active provision.Controller.response;
              trace = m.trace;
            }
            ~delay:(dt +. t.wire_latency_s)
      | Error (`Rejected _) ->
        deliver t
          { src = t.address; dst = m.src; payload = Alloc_failed; trace = m.trace }
          ~delay:(0.01 +. t.wire_latency_s)
      | Error (`Bad_packet _) -> ())
    | Activermt.Packet.Bare ->
      let fid = pkt.Activermt.Packet.fid in
      if pkt.Activermt.Packet.flags.Activermt.Packet.ack then begin
        Controller.complete_extraction t.controller ~fid;
        (* Tell the client where its (possibly moved) allocation now
           lives so it can re-synthesize and repopulate. *)
        match Controller.regions_packet t.controller ~fid with
        | Some response ->
          deliver t
            { src = t.address; dst = m.src; payload = Active response; trace = m.trace }
            ~delay:t.wire_latency_s
        | None -> ()
      end
      else begin
        (* Release: the service departs and its memory is redistributed;
           expanded apps are told to re-synchronize. *)
        let _timing, expanded =
          Controller.handle_departure ?trace:(tr_on t m) t.controller ~fid
        in
        (* The epoch bump already makes any cached closures unreachable;
           the explicit invalidate frees them eagerly. *)
        Activermt.Jit.invalidate t.jit ~fid;
        Hashtbl.remove t.owners fid;
        notify_impacted ?trace:m.trace t expanded
      end
    | Activermt.Packet.Response _ -> deliver t m ~delay:t.wire_latency_s
    | Activermt.Packet.Exec _ ->
      let tables = Controller.tables t.controller in
      let meta = Activermt.Runtime.meta ~src:m.src ~dst:m.dst () in
      let fid = pkt.Activermt.Packet.fid in
      if not (Activermt.Table.installed tables ~fid) then
        (* Unknown FID: no table entries match, the packet forwards as
           plain traffic. *)
        deliver t m ~delay:t.wire_latency_s
      else begin
        (* Execute under a device.exec span; per-stage events (gated
           behind the Stages verbosity) and the result hang off it, and
           admit.* attrs link the data plane back to the control-plane
           provision span that placed this program. *)
        let exec_attrs =
          let jit_attr =
            ( "jit",
              if Activermt.Jit.would_specialize t.jit pkt then "true"
              else "false" )
          in
          match Controller.admit_trace t.controller ~fid with
          | None -> [ sw_attr t; ("fid", string_of_int fid); jit_attr ]
          | Some a ->
            [
              sw_attr t;
              ("fid", string_of_int fid);
              jit_attr;
              ("admit.trace_id", string_of_int a.Trace.trace_id);
              ("admit.span_id", string_of_int a.Trace.span_id);
            ]
        in
        let r, exec_ctx =
          Trace.with_span t.tracer (tr_on t m) ~attrs:exec_attrs "device.exec"
          @@ fun ec ->
          let on_event =
            match ec with
            | Some c when Trace.stage_detail t.tracer ->
              Some
                (fun (e : Activermt.Runtime.trace_event) ->
                  let attrs =
                    [
                      sw_attr t;
                      ("pass", string_of_int e.Activermt.Runtime.tr_pass);
                      ("stage", string_of_int e.Activermt.Runtime.tr_stage);
                      ("pc", string_of_int e.Activermt.Runtime.tr_pc);
                      ( "instr",
                        Format.asprintf "%a" Activermt.Instr.pp
                          e.Activermt.Runtime.tr_instr );
                      ( "skipped",
                        if e.Activermt.Runtime.tr_skipped then "1" else "0" );
                      ("mar", string_of_int e.Activermt.Runtime.tr_mar);
                      ("mbr", string_of_int e.Activermt.Runtime.tr_mbr);
                      ("mbr2", string_of_int e.Activermt.Runtime.tr_mbr2);
                    ]
                  in
                  ignore (Trace.instant t.tracer c ~attrs "device.stage"))
            | _ -> None
          in
          let r, mode = Activermt.Jit.run_info ?on_event t.jit ~meta pkt in
          (match (mode, ec) with
          | Activermt.Jit.Compiled_fresh, Some c ->
            ignore
              (Trace.instant t.tracer c
                 ~attrs:[ sw_attr t; ("fid", string_of_int fid) ]
                 "jit.compile")
          | _ -> ());
          (r, ec)
        in
        let params = Rmt.Device.params (Controller.device t.controller) in
        let proc_s =
          1.0e-6
          *. params.Rmt.Params.pass_latency_us
          *. float_of_int r.Activermt.Runtime.pipelines
        in
        (match exec_ctx with
        | None -> ()
        | Some c ->
          ignore
            (Trace.instant t.tracer c
               ~attrs:
                 [
                   sw_attr t;
                   ("decision", decision_string r.Activermt.Runtime.decision);
                   ("executed", string_of_int r.Activermt.Runtime.executed);
                   ("passes", string_of_int r.Activermt.Runtime.passes);
                   ( "pipelines",
                     string_of_int r.Activermt.Runtime.pipelines );
                 ]
               "device.result"));
        (* Downstream hops chain under the exec span when traced. *)
        let out_trace =
          match exec_ctx with Some c -> Some c | None -> m.trace
        in
        let out_payload =
          (* Results of execution (MBR_STORE) travel in the packet. *)
          Active
            {
              pkt with
              Activermt.Packet.payload =
                (match pkt.Activermt.Packet.payload with
                | Activermt.Packet.Exec { program; _ } ->
                  Activermt.Packet.Exec
                    { args = r.Activermt.Runtime.args_out; program }
                | other -> other);
            }
        in
        match r.Activermt.Runtime.decision with
        | Activermt.Runtime.Dropped _ ->
          t.drops <- t.drops + 1;
          Telemetry.incr t.tel "sim.packets.dropped";
          (match exec_ctx with
          | None -> ()
          | Some c ->
            ignore
              (Trace.instant t.tracer c
                 ~attrs:
                   [
                     sw_attr t;
                     ( "reason",
                       decision_string r.Activermt.Runtime.decision );
                   ]
                 "device.drop"))
        | Activermt.Runtime.Return_to_sender ->
          deliver t
            { src = m.dst; dst = m.src; payload = out_payload; trace = out_trace }
            ~delay:(proc_s +. t.wire_latency_s)
        | Activermt.Runtime.Forward dst ->
          let dst = if dst = m.dst || dst = 0 then m.dst else dst in
          deliver t
            { src = m.src; dst; payload = out_payload; trace = out_trace }
            ~delay:(proc_s +. t.wire_latency_s)
      end)

let send t m =
  if lossy t m then begin
    tr_fault t m ~attrs:[ ("cause", "loss_rate") ] "fault.drop";
    count_lost t
  end
  else begin
    Telemetry.incr t.tel "sim.packets.sent";
    Telemetry.incr t.tel (Printf.sprintf "sim.node.%d.tx" m.src);
    hop t m ~delay:t.wire_latency_s ~event:"sim.hop" (at_switch t)
  end

(* Head-based sampling happens exactly once, here, when a capsule enters
   the network — bridged or forwarded messages go through [send] and keep
   whatever decision was made at injection. *)
let inject ?(name = "capsule.inject") t m =
  let m =
    match (m.trace, m.payload) with
    | None, Active pkt when Trace.enabled t.tracer ->
      let kind =
        match pkt.Activermt.Packet.payload with
        | Activermt.Packet.Request _ -> "request"
        | Activermt.Packet.Response _ -> "response"
        | Activermt.Packet.Exec _ -> "exec"
        | Activermt.Packet.Bare -> "bare"
      in
      let attrs =
        [
          sw_attr t;
          ("fid", string_of_int pkt.Activermt.Packet.fid);
          ("seq", string_of_int pkt.Activermt.Packet.seq);
          ("kind", kind);
          ("src", string_of_int m.src);
          ("dst", string_of_int m.dst);
        ]
      in
      (match Trace.start_trace t.tracer ~attrs name with
      | None -> m
      | Some c -> { m with trace = Some c })
    | _ -> m
  in
  send t m

let stats_drops t = t.drops
let stats_lost t = t.lost
