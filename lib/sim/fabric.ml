module Controller = Activermt_control.Controller
module Telemetry = Activermt_telemetry.Telemetry

type address = int

let switch_address = 0

type payload =
  | Active of Activermt.Packet.t
  | Kv_request of { key : Workload.Kv.key }
  | Kv_reply of { key : Workload.Kv.key; value : int }
  | Alloc_failed
  | Notify_realloc

type msg = { src : address; dst : address; payload : payload }

type t = {
  engine : Engine.t;
  controller : Controller.t;
  address : address;
  wire_latency_s : float;
  loss_rate : float;
  loss_rng : Stdx.Prng.t;
  faults : Faults.t option;
  nodes : (address, msg -> unit) Hashtbl.t;
  owners : (Activermt.Packet.fid, address) Hashtbl.t;
  mutable drops : int;
  mutable lost : int;
  tel : Telemetry.t;
}

let create ?(address = switch_address) ?(wire_latency_s = 5.0e-6)
    ?(loss_rate = 0.0) ?(loss_seed = 4_059) ?faults
    ?(telemetry = Telemetry.default) ~engine ~controller () =
  if loss_rate < 0.0 || loss_rate >= 1.0 then
    invalid_arg "Fabric.create: loss_rate must be in [0, 1)";
  (* A faults handle with an all-off profile is the same as no handle:
     take the legacy (zero-cost, bit-identical) paths. *)
  let faults =
    match faults with
    | Some f when Faults.is_none (Faults.profile f) -> None
    | other -> other
  in
  {
    engine;
    controller;
    address;
    wire_latency_s;
    loss_rate;
    loss_rng = Stdx.Prng.create ~seed:loss_seed;
    faults;
    nodes = Hashtbl.create 16;
    owners = Hashtbl.create 16;
    drops = 0;
    lost = 0;
    tel = telemetry;
  }

let engine t = t.engine
let controller t = t.controller
let address t = t.address
let faults t = t.faults

let attach t addr handler =
  if addr = t.address then invalid_arg "Fabric.attach: switch address reserved";
  Hashtbl.replace t.nodes addr handler

let register_fid t ~fid ~owner = Hashtbl.replace t.owners fid owner

let lossy t msg =
  (* Only program packets and their replies ride the lossy data plane. *)
  match msg.payload with
  | Active { Activermt.Packet.payload = Activermt.Packet.Exec _; _ } ->
    t.loss_rate > 0.0 && Stdx.Prng.float t.loss_rng 1.0 < t.loss_rate
  | Active _ | Kv_request _ | Kv_reply _ | Alloc_failed | Notify_realloc -> false

let count_lost t =
  t.lost <- t.lost + 1;
  Telemetry.incr t.tel "sim.packets.lost"

(* Corruption damages the capsule's on-the-wire bytes; the receiving
   parser verifies the frame checksum and discards on mismatch.  A
   single-byte flip is always caught (see Wire.checksum), so the effect
   is loss — but it goes through the real encode/verify path and is
   accounted separately.  Non-capsule payloads have no frame to damage;
   a corrupted one is simply unparseable, i.e. lost. *)
let corruption_rejected t f msg =
  let rejected =
    match msg.payload with
    | Active pkt -> (
      let framed = Activermt.Wire.frame (Activermt.Packet.encode pkt) in
      match Activermt.Wire.unframe (Faults.corrupt_bytes f framed) with
      | Error _ -> true
      | Ok _ -> false)
    | Kv_request _ | Kv_reply _ | Alloc_failed | Notify_realloc -> true
  in
  if rejected then Telemetry.incr t.tel "faults.rejected.checksum";
  rejected

(* One network hop under the fault model: decide the delivery's fate,
   then schedule the surviving copies (each with its own jitter, so
   duplicates and back-to-back sends can reorder). *)
let faulty_hop t f ~delay thunk =
  let now = Engine.now t.engine in
  let v = Faults.plan f ~now in
  if v.Faults.lose then `Lost
  else if v.Faults.corrupt then `Corrupted
  else begin
    for _ = 1 to v.Faults.copies do
      Engine.schedule t.engine ~delay:(delay +. Faults.jitter f) thunk
    done;
    `Scheduled
  end

let deliver t msg ~delay =
  if lossy t msg then count_lost t
  else begin
    let handle () =
      match Hashtbl.find_opt t.nodes msg.dst with
      | Some handler ->
        Telemetry.incr t.tel "sim.packets.delivered";
        Telemetry.incr t.tel (Printf.sprintf "sim.node.%d.rx" msg.dst);
        handler msg
      | None -> ()
    in
    match t.faults with
    | None -> Engine.schedule t.engine ~delay handle
    | Some f -> (
      match faulty_hop t f ~delay handle with
      | `Scheduled -> ()
      | `Lost -> count_lost t
      | `Corrupted -> if corruption_rejected t f msg then count_lost t)
  end

let notify_impacted t fids =
  List.iter
    (fun fid ->
      match Hashtbl.find_opt t.owners fid with
      | None -> ()
      | Some owner ->
        deliver t
          { src = t.address; dst = owner; payload = Notify_realloc }
          ~delay:t.wire_latency_s)
    fids

let at_switch t msg =
  match msg.payload with
  | Kv_request _ | Kv_reply _ | Alloc_failed | Notify_realloc ->
    (* Transit traffic: forward to the destination. *)
    deliver t msg ~delay:t.wire_latency_s
  | Active pkt -> (
    match pkt.Activermt.Packet.payload with
    | Activermt.Packet.Request _ -> (
      match Controller.handle_request t.controller pkt with
      | Ok provision ->
        let dt = Activermt_control.Cost_model.total provision.Controller.timing in
        let dt =
          match t.faults with
          | Some f -> Faults.scale_table_update f dt
          | None -> dt
        in
        (match provision.Controller.phase with
        | Controller.Awaiting_extraction { impacted } -> notify_impacted t impacted
        | Controller.Committed -> ());
        (* A failed table-update RPC loses the response after the
           controller committed; the client's timed-out re-request is
           answered idempotently from the existing allocation. *)
        let response_failed =
          match t.faults with
          | Some f -> Faults.control_failure f ~now:(Engine.now t.engine)
          | None -> false
        in
        if not response_failed then
          deliver t
            {
              src = t.address;
              dst = msg.src;
              payload = Active provision.Controller.response;
            }
            ~delay:(dt +. t.wire_latency_s)
      | Error (`Rejected _) ->
        deliver t
          { src = t.address; dst = msg.src; payload = Alloc_failed }
          ~delay:(0.01 +. t.wire_latency_s)
      | Error (`Bad_packet _) -> ())
    | Activermt.Packet.Bare ->
      let fid = pkt.Activermt.Packet.fid in
      if pkt.Activermt.Packet.flags.Activermt.Packet.ack then begin
        Controller.complete_extraction t.controller ~fid;
        (* Tell the client where its (possibly moved) allocation now
           lives so it can re-synthesize and repopulate. *)
        match Controller.regions_packet t.controller ~fid with
        | Some response ->
          deliver t
            { src = t.address; dst = msg.src; payload = Active response }
            ~delay:t.wire_latency_s
        | None -> ()
      end
      else begin
        (* Release: the service departs and its memory is redistributed;
           expanded apps are told to re-synchronize. *)
        let _timing, expanded = Controller.handle_departure t.controller ~fid in
        Hashtbl.remove t.owners fid;
        notify_impacted t expanded
      end
    | Activermt.Packet.Response _ -> deliver t msg ~delay:t.wire_latency_s
    | Activermt.Packet.Exec _ ->
      let tables = Controller.tables t.controller in
      let meta = Activermt.Runtime.meta ~src:msg.src ~dst:msg.dst () in
      let fid = pkt.Activermt.Packet.fid in
      if not (Activermt.Table.installed tables ~fid) then
        (* Unknown FID: no table entries match, the packet forwards as
           plain traffic. *)
        deliver t msg ~delay:t.wire_latency_s
      else begin
        let r = Activermt.Runtime.run tables ~meta pkt in
        let params = Rmt.Device.params (Controller.device t.controller) in
        let proc_s =
          1.0e-6
          *. params.Rmt.Params.pass_latency_us
          *. float_of_int r.Activermt.Runtime.pipelines
        in
        let out_payload =
          (* Results of execution (MBR_STORE) travel in the packet. *)
          Active
            {
              pkt with
              Activermt.Packet.payload =
                (match pkt.Activermt.Packet.payload with
                | Activermt.Packet.Exec { program; _ } ->
                  Activermt.Packet.Exec
                    { args = r.Activermt.Runtime.args_out; program }
                | other -> other);
            }
        in
        match r.Activermt.Runtime.decision with
        | Activermt.Runtime.Dropped _ ->
          t.drops <- t.drops + 1;
          Telemetry.incr t.tel "sim.packets.dropped"
        | Activermt.Runtime.Return_to_sender ->
          deliver t
            { src = msg.dst; dst = msg.src; payload = out_payload }
            ~delay:(proc_s +. t.wire_latency_s)
        | Activermt.Runtime.Forward dst ->
          let dst = if dst = msg.dst || dst = 0 then msg.dst else dst in
          deliver t
            { src = msg.src; dst; payload = out_payload }
            ~delay:(proc_s +. t.wire_latency_s)
      end)

let send t msg =
  if lossy t msg then count_lost t
  else begin
    Telemetry.incr t.tel "sim.packets.sent";
    Telemetry.incr t.tel (Printf.sprintf "sim.node.%d.tx" msg.src);
    let hop () = at_switch t msg in
    match t.faults with
    | None -> Engine.schedule t.engine ~delay:t.wire_latency_s hop
    | Some f -> (
      match faulty_hop t f ~delay:t.wire_latency_s hop with
      | `Scheduled -> ()
      | `Lost -> count_lost t
      | `Corrupted -> if corruption_rejected t f msg then count_lost t)
  end

let stats_drops t = t.drops
let stats_lost t = t.lost
