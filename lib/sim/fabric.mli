(** The simulated testbed: clients and a KV server attached through the
    ActiveRMT switch (data plane + controller), mirroring the paper's
    40-Gbps lab setup.

    The fabric routes messages between addressed nodes.  The switch sits
    on every path: active program packets are executed by the runtime
    (adding per-pipeline latency), allocation requests go to the
    controller (the response returns after the modeled provisioning
    time), and ack packets complete the extraction protocol.  FIDs are
    registered to owner addresses so the controller's reallocation
    notifications reach the right client. *)

type address = int

val switch_address : address
(** The default address a fabric's switch answers on (0).  A fleet of
    fabrics sharing one engine gives each instance its own [?address]. *)

type payload =
  | Active of Activermt.Packet.t
  | Kv_request of { key : Workload.Kv.key }
      (** a plain (non-activated) application request, e.g. while the
          client's service is paused *)
  | Kv_reply of { key : Workload.Kv.key; value : int }
      (** application-level response from the KV server *)
  | Alloc_failed
  | Notify_realloc
      (** controller -> client: your allocation is changing; extract state
          and ack *)

type msg = {
  src : address;
  dst : address;
  payload : payload;
  trace : Activermt_telemetry.Trace.ctx option;
      (** in-band trace context: set at {!inject} (head sampling), then
          advanced hop by hop so the trace follows the capsule *)
}

val msg :
  ?trace:Activermt_telemetry.Trace.ctx ->
  src:address ->
  dst:address ->
  payload ->
  msg
(** Convenience constructor; [trace] defaults to [None]. *)

type t

val create :
  ?address:address ->
  ?wire_latency_s:float ->
  ?loss_rate:float ->
  ?loss_seed:int ->
  ?faults:Faults.t ->
  ?jit:bool ->
  ?telemetry:Activermt_telemetry.Telemetry.t ->
  ?tracer:Activermt_telemetry.Trace.t ->
  engine:Engine.t ->
  controller:Activermt_control.Controller.t ->
  unit ->
  t
(** [address] (default [switch_address]) is the address this instance's
    switch answers on, so several fabrics — one per switch — can share an
    engine and bridge traffic between each other's nodes.

    [loss_rate] (default 0) drops that fraction of data-plane deliveries
    (program packets and their replies), deterministically under
    [loss_seed]; control traffic is unaffected.  Exercises the memsync
    retransmission loop.

    [faults] (default none) attaches a seeded {!Faults} model to every
    hop through this fabric — client-to-switch and switch-to-node alike,
    control traffic included: probabilistic drop, duplication, jitter
    (reordering), byte corruption (rejected by the wire checksum and
    counted under [faults.rejected.checksum]), link flaps, and slow or
    failed provisioning responses.  A handle whose profile
    {!Faults.is_none} is ignored entirely: the fabric then takes the
    same code paths as a fault-free build, bit for bit.

    [jit] (default [true]) runs admitted programs through the {!Activermt.Jit}
    specialization tier, falling back to the interpreter for anything it
    cannot specialize; [false] forces pure interpretation (the CLI's
    [--no-jit]).  Either way results are bit-identical — the JIT changes
    throughput, never semantics.  Departures invalidate the FID's cached
    closures; reallocation and quiescence invalidate through the
    allocation epoch.

    [telemetry] (default [Telemetry.default]) counts fabric traffic:
    [sim.packets.sent/delivered/lost/dropped] plus per-node
    [sim.node.<addr>.tx]/[sim.node.<addr>.rx].

    [tracer] (default [Trace.noop]) records per-capsule causal events:
    [capsule.inject], [sim.hop]/[sim.deliver] ([sim.enqueue] at Stages
    verbosity), [fault.drop]/[fault.corrupt]/[fault.duplicate] with the
    firing knob as [cause] and the [link] named, [device.exec] spans (carrying a
    [jit=true/false] attr for whether the specialization tier ran the
    capsule, plus a [jit.compile] instant on first compilation) with
    [device.stage]/[device.result]/[device.drop] children linked to the
    admitting [control.provision] span via [admit.*] attrs.  Share one
    tracer (and its clock, wired to [Engine.now]) across every fabric of
    a fleet so traces follow capsules between switches. *)

val engine : t -> Engine.t
val controller : t -> Activermt_control.Controller.t

val tracer : t -> Activermt_telemetry.Trace.t
(** The tracer passed at creation ([Trace.noop] by default). *)

val faults : t -> Faults.t option
(** The fault model attached at creation, if any (and not all-off). *)

val jit : t -> Activermt.Jit.t
(** The switch's JIT handle (disabled when created with [~jit:false]) —
    for stats flushing before metric dumps and invalidation on
    migration. *)

val address : t -> address
(** The address this instance's switch answers on. *)

val attach : t -> address -> (msg -> unit) -> unit
(** Register a node's receive handler.  This fabric's own switch address
    is reserved. *)

val attach_default : t -> (msg -> unit) -> unit
(** Register the fallback handler for destinations with no attached
    node.  A fleet uses this for its bridge: any address not local to
    this switch's fabric is routed toward its home switch, so creating a
    1024-switch fleet costs one closure per fabric instead of one per
    (fabric, remote address) pair. *)

val register_fid : t -> fid:Activermt.Packet.fid -> owner:address -> unit

val send : t -> msg -> unit
(** Forward a message from its source; it reaches the switch after the
    wire latency and its destination after switch processing.  Keeps the
    message's trace context as-is — use {!inject} at the point a capsule
    first enters the network so head sampling runs exactly once. *)

val inject : ?name:string -> t -> msg -> unit
(** {!send}, but first make the head-sampling decision for an untraced
    [Active] message: when the tracer keeps it, a root [name] event
    (default ["capsule.inject"]) starts the capsule's trace.  Bridged or
    re-sent messages keep their existing decision. *)

val stats_drops : t -> int
(** Packets the runtime dropped (protection, recirculation limit, DROP). *)

val stats_lost : t -> int
(** Data-plane packets lost to the configured loss rate. *)
