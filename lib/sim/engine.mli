(** Discrete-event simulation engine: a time-ordered queue of thunks.

    Events scheduled for the same instant fire in scheduling order, so
    traces are deterministic. *)

type t

val create : ?telemetry:Activermt_telemetry.Telemetry.t -> unit -> t
(** [telemetry] (default [Telemetry.default]) counts
    [sim.events.scheduled] / [sim.events.processed] and tracks the
    [sim.queue_depth] gauge as events fire. *)

val now : t -> float
(** Current simulated time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Enqueue an event [delay] seconds from now (clamped to now for
    negative delays). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit

val run : ?until:float -> t -> unit
(** Drain the queue (or stop once the next event is past [until], leaving
    it queued and setting the clock to [until]). *)

val step : t -> bool
(** Fire the single next event; false when the queue is empty. *)

val pending : t -> int
