module Telemetry = Activermt_telemetry.Telemetry

type event = { time : float; seq : int; thunk : unit -> unit }

type t = {
  queue : event Stdx.Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  tel : Telemetry.t;
}

let compare_events a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create ?(telemetry = Telemetry.default) () =
  {
    queue = Stdx.Heap.create ~cmp:compare_events;
    clock = 0.0;
    next_seq = 0;
    tel = telemetry;
  }

let now t = t.clock

let schedule_at t ~time thunk =
  let time = Float.max time t.clock in
  Stdx.Heap.push t.queue { time; seq = t.next_seq; thunk };
  t.next_seq <- t.next_seq + 1;
  Telemetry.incr t.tel "sim.events.scheduled"

let schedule t ~delay thunk = schedule_at t ~time:(t.clock +. delay) thunk

let step t =
  match Stdx.Heap.pop t.queue with
  | None -> false
  | Some e ->
    t.clock <- e.time;
    Telemetry.incr t.tel "sim.events.processed";
    Telemetry.set_gauge t.tel "sim.queue_depth"
      (float_of_int (Stdx.Heap.length t.queue));
    e.thunk ();
    true

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
      match Stdx.Heap.peek t.queue with
      | Some e when e.time > limit ->
        t.clock <- limit;
        false
      | Some _ -> true
      | None ->
        t.clock <- Float.max t.clock limit;
        false)
  in
  while continue () && step t do
    ()
  done

let pending t = Stdx.Heap.length t.queue
