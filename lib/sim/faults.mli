(** Seeded fault injection for the simulated testbed.

    The paper's protocols — capsule-based allocation negotiation, memsync
    snapshot/repopulation, reallocation notifications — are designed for
    a real lossy network; this module makes the simulator's links and
    control plane unreliable so the recovery paths actually run.  A
    {!profile} describes a link/switch fault model; a {!t} instance draws
    every decision from one seeded [Stdx.Prng], so a chaos run is exactly
    reproducible from its seed.  Attach one instance per
    {!Netsim.Fabric} (per switch / per link direction as desired).

    When the profile is {!none} the fabric takes its pre-fault code path
    and behaves bit-identically to a build without this layer. *)

type profile = {
  drop : float;  (** P(a delivery is lost), per hop *)
  duplicate : float;  (** P(a delivery arrives twice) *)
  corrupt : float;
      (** P(a byte of the capsule is flipped in flight).  The wire's
          16-bit checksum ({!Activermt.Wire.frame}) catches every
          single-byte flip, so corruption surfaces as a clean rejection —
          i.e. behaves as loss, but through the parser. *)
  jitter_s : float;
      (** Extra per-delivery delay, uniform in [0, jitter_s).  With
          multiple packets in flight this reorders them. *)
  flap_period_s : float;
      (** Link flap cycle length; 0 disables flapping.  The link is down
          (all deliveries lost) during the first [flap_down_s] of every
          period — a deterministic square wave of simulated time, so it
          costs no PRNG state. *)
  flap_down_s : float;
  table_update_slowdown : float;
      (** >= 1: multiplies the modeled control-plane provisioning time
          (table updates are slow).  See also
          {!Activermt_control.Cost_model.degrade}. *)
  table_update_fail : float;
      (** P(a provisioning response is lost after the controller
          committed — a failed/hung table-update RPC).  The client's
          re-request is answered idempotently from the existing
          allocation. *)
}

val none : profile
(** All knobs off; [is_none none = true]. *)

val is_none : profile -> bool

val lossy :
  ?drop:float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?jitter_s:float ->
  unit ->
  profile
(** Convenience constructor for pure link faults. *)

type kind = Drop | Duplicate | Corrupt | Flap | Ctl_fail

val kind_to_string : kind -> string

type event = { time : float; kind : kind }

val pp_event : Format.formatter -> event -> unit

type t

val create :
  ?seed:int -> ?telemetry:Activermt_telemetry.Telemetry.t -> ?trace_limit:int ->
  profile -> t
(** [trace_limit] (default 10k) bounds the in-memory fault-event trace.
    [telemetry] receives [faults.injected.<kind>] counters and the
    [faults.jitter_s] histogram.
    @raise Invalid_argument on an ill-formed profile (probabilities
    outside [0, 1], slowdown < 1, down window longer than the period). *)

val profile : t -> profile

val injected : t -> int
(** Total faults injected so far (all kinds). *)

val events : t -> event list
(** The fault-event trace, oldest first, capped at [trace_limit]. *)

(** {2 Decisions (called by the fabric per delivery)} *)

type verdict = {
  lose : bool;
  corrupt : bool;
  copies : int;
  cause : kind option;  (** Which knob fired, for trace attribution. *)
}

val pass : verdict
(** Deliver one intact copy. *)

val plan : t -> now:float -> verdict
(** Decide one delivery's fate.  Exactly one PRNG draw per probabilistic
    knob regardless of outcome, so the stream position depends only on
    the number of deliveries. *)

val jitter : t -> float
(** Extra delay for one scheduled copy (0 when the profile has none). *)

val link_down : t -> now:float -> bool
(** Whether the flap square wave has the link down at [now]. *)

val corrupt_bytes : t -> Bytes.t -> Bytes.t
(** Flip one byte (guaranteed to change) at a PRNG position — the wire
    damage behind a [corrupt] verdict. *)

val scale_table_update : t -> float -> float
(** Apply [table_update_slowdown] to a modeled provisioning duration. *)

val control_failure : t -> now:float -> bool
(** Draw the failed-table-update knob; true means the provisioning
    response must be discarded (the client will retry). *)
