module Telemetry = Activermt_telemetry.Telemetry

type profile = {
  drop : float;
  duplicate : float;
  corrupt : float;
  jitter_s : float;
  flap_period_s : float;
  flap_down_s : float;
  table_update_slowdown : float;
  table_update_fail : float;
}

let none =
  {
    drop = 0.0;
    duplicate = 0.0;
    corrupt = 0.0;
    jitter_s = 0.0;
    flap_period_s = 0.0;
    flap_down_s = 0.0;
    table_update_slowdown = 1.0;
    table_update_fail = 0.0;
  }

let is_none p = p = none

let validate p =
  let prob name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Faults: %s must be in [0, 1], got %g" name v)
  in
  prob "drop" p.drop;
  prob "duplicate" p.duplicate;
  prob "corrupt" p.corrupt;
  prob "table_update_fail" p.table_update_fail;
  if p.jitter_s < 0.0 then invalid_arg "Faults: jitter_s must be non-negative";
  if p.flap_period_s < 0.0 || p.flap_down_s < 0.0 then
    invalid_arg "Faults: flap windows must be non-negative";
  if p.flap_down_s > p.flap_period_s then
    invalid_arg "Faults: flap_down_s must not exceed flap_period_s";
  if p.table_update_slowdown < 1.0 then
    invalid_arg "Faults: table_update_slowdown must be >= 1"

let lossy ?(drop = 0.0) ?(duplicate = 0.0) ?(corrupt = 0.0) ?(jitter_s = 0.0) () =
  let p = { none with drop; duplicate; corrupt; jitter_s } in
  validate p;
  p

type kind = Drop | Duplicate | Corrupt | Flap | Ctl_fail

let kind_to_string = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Corrupt -> "corrupt"
  | Flap -> "flap"
  | Ctl_fail -> "ctl_fail"

type event = { time : float; kind : kind }

let pp_event fmt e =
  Format.fprintf fmt "@[<h>t=%.6f %s@]" e.time (kind_to_string e.kind)

type t = {
  profile : profile;
  rng : Stdx.Prng.t;
  tel : Telemetry.t;
  trace_limit : int;
  mutable trace : event list; (* newest first *)
  mutable traced : int;
  mutable injected : int;
}

let create ?(seed = 0xFA0175) ?(telemetry = Telemetry.default)
    ?(trace_limit = 10_000) profile =
  validate profile;
  {
    profile;
    rng = Stdx.Prng.create ~seed;
    tel = telemetry;
    trace_limit;
    trace = [];
    traced = 0;
    injected = 0;
  }

let profile t = t.profile
let injected t = t.injected

let record t ~now kind =
  t.injected <- t.injected + 1;
  Telemetry.incr t.tel ("faults.injected." ^ kind_to_string kind);
  if t.traced < t.trace_limit then begin
    t.trace <- { time = now; kind } :: t.trace;
    t.traced <- t.traced + 1
  end

let events t = List.rev t.trace

(* The flap is a deterministic square wave — a function of simulated time
   only, so it never consumes PRNG state and two runs with the same seed
   see identical link availability regardless of traffic. *)
let link_down t ~now =
  t.profile.flap_period_s > 0.0
  && t.profile.flap_down_s > 0.0
  && Float.rem now t.profile.flap_period_s < t.profile.flap_down_s

type verdict = {
  lose : bool;
  corrupt : bool;
  copies : int;
  cause : kind option;
}

let pass = { lose = false; corrupt = false; copies = 1; cause = None }

(* One fixed draw per probabilistic knob, whether or not it fires, so the
   PRNG stream position depends only on how many packets crossed the
   link — not on which faults happened to trigger. *)
let plan t ~now =
  let u_drop = Stdx.Prng.float t.rng 1.0 in
  let u_corrupt = Stdx.Prng.float t.rng 1.0 in
  let u_dup = Stdx.Prng.float t.rng 1.0 in
  if link_down t ~now then begin
    record t ~now Flap;
    { pass with lose = true; cause = Some Flap }
  end
  else if u_drop < t.profile.drop then begin
    record t ~now Drop;
    { pass with lose = true; cause = Some Drop }
  end
  else if u_corrupt < t.profile.corrupt then begin
    record t ~now Corrupt;
    { pass with corrupt = true; cause = Some Corrupt }
  end
  else if u_dup < t.profile.duplicate then begin
    record t ~now Duplicate;
    { pass with copies = 2; cause = Some Duplicate }
  end
  else pass

let jitter t =
  if t.profile.jitter_s <= 0.0 then 0.0
  else begin
    let j = Stdx.Prng.float t.rng t.profile.jitter_s in
    Telemetry.observe t.tel "faults.jitter_s" j;
    j
  end

let corrupt_bytes t b =
  let damaged = Bytes.copy b in
  if Bytes.length damaged > 0 then begin
    let i = Stdx.Prng.int t.rng (Bytes.length damaged) in
    let mask = 1 + Stdx.Prng.int t.rng 255 in
    Bytes.set_uint8 damaged i (Bytes.get_uint8 damaged i lxor mask)
  end;
  damaged

let scale_table_update t dt = dt *. t.profile.table_update_slowdown

let control_failure t ~now =
  t.profile.table_update_fail > 0.0
  && Stdx.Prng.float t.rng 1.0 < t.profile.table_update_fail
  && begin
       record t ~now Ctl_fail;
       true
     end
