module Ts = Activermt_telemetry.Timeseries
module Json = Activermt_telemetry.Json

type status = Ok | Warn | Page

let status_name = function Ok -> "ok" | Warn -> "warn" | Page -> "page"

let status_of_name = function
  | "ok" -> Some Ok
  | "warn" -> Some Warn
  | "page" -> Some Page
  | _ -> None

type stat = Mean | Min | Max

type kind =
  | Ratio of { good : string; total : string; target : float }
  | Quantile of { series : string; q : float; bound : float }
  | Stat of { series : string; stat : stat; cmp : [ `Le | `Ge ]; bound : float }

type t = {
  slo_name : string;
  slo_description : string;
  slo_kind : kind;
  slo_window : int;
  slo_fast_fraction : float;
  slo_page_burn : float;
  slo_warn_burn : float;
}

let make ~name ~description ~window ~fast_fraction ~page_burn ~warn_burn kind =
  if window < 1 then invalid_arg "Slo: window < 1";
  if fast_fraction <= 0.0 || fast_fraction > 1.0 then
    invalid_arg "Slo: fast_fraction outside (0, 1]";
  {
    slo_name = name;
    slo_description = description;
    slo_kind = kind;
    slo_window = window;
    slo_fast_fraction = fast_fraction;
    slo_page_burn = page_burn;
    slo_warn_burn = warn_burn;
  }

let ratio ~name ?(description = "") ?(window = 40) ?(fast_fraction = 0.05)
    ?(page_burn = 14.4) ?(warn_burn = 6.0) ~good ~total ~target () =
  if target < 0.0 || target > 1.0 then invalid_arg "Slo.ratio: target outside [0, 1]";
  make ~name ~description ~window ~fast_fraction ~page_burn ~warn_burn
    (Ratio { good; total; target })

let quantile ~name ?(description = "") ?(window = 40) ?(fast_fraction = 0.05)
    ?(page_burn = 1.0) ?(warn_burn = 0.8) ~series ~q ~bound () =
  if Float.is_nan q || q < 0.0 || q > 1.0 then
    invalid_arg "Slo.quantile: q outside [0, 1]";
  make ~name ~description ~window ~fast_fraction ~page_burn ~warn_burn
    (Quantile { series; q; bound })

let stat ~name ?(description = "") ?(window = 40) ?(fast_fraction = 0.05)
    ?(page_burn = 1.0) ?(warn_burn = 0.8) ~series ~stat ~cmp ~bound () =
  make ~name ~description ~window ~fast_fraction ~page_burn ~warn_burn
    (Stat { series; stat; cmp; bound })

type evaluation = {
  ev_slo : t;
  ev_status : status;
  ev_measured : float;
  ev_fast_measured : float;
  ev_burn_slow : float;
  ev_burn_fast : float;
  ev_detail : string;
}

let fast_window slo =
  max 1 (int_of_float (Float.ceil (float_of_int slo.slo_window *. slo.slo_fast_fraction)))

(* Burn of an upper bound: fraction of the bound consumed.  Burn of a
   lower bound: deficit relative to the headroom above the bound would be
   ill-defined at bound = 1, so use the shortfall ratio against the
   bound's complement when it exists and a plain ratio otherwise. *)
let threshold_burn ~cmp ~bound measured =
  match cmp with
  | `Le -> if bound > 0.0 then measured /. bound else if measured > 0.0 then infinity else 0.0
  | `Ge ->
    if bound <= 0.0 then 0.0
    else if measured >= bound then (bound -. measured) /. bound (* <= 0: inside budget *)
    else (bound -. measured) /. bound +. 1.0
(* For `Ge the result is <= 0 when healthy and > 1 when breached, so the
   same page/warn thresholds apply. *)

(* (measured, burn) of the SLO's quantity over the newest [last] buckets. *)
let measure ts slo ~last =
  match slo.slo_kind with
  | Ratio { good; total; target } ->
    let g = (Ts.aggregate ~last ts good).Ts.a_sum in
    let tot = (Ts.aggregate ~last ts total).Ts.a_sum in
    let ratio = if tot <= 0.0 then 1.0 else Float.min 1.0 (g /. tot) in
    let error = 1.0 -. ratio in
    let budget = 1.0 -. target in
    let burn =
      if budget > 0.0 then error /. budget else if error > 0.0 then infinity else 0.0
    in
    (ratio, burn)
  | Quantile { series; q; bound } ->
    let v = Ts.quantile ~last ts series q in
    (v, threshold_burn ~cmp:`Le ~bound v)
  | Stat { series; stat; cmp; bound } ->
    let a = Ts.aggregate ~last ts series in
    let counter = Ts.kind_of ts series <> Some `Dist in
    let per_window_sums () =
      let ws = Ts.windows ts series in
      let n = List.length ws in
      let ws = if n > last then List.filteri (fun i _ -> i >= n - last) ws else ws in
      List.map (fun w -> w.Ts.w_sum) ws
    in
    let v =
      if a.Ts.a_count = 0 then (match cmp with `Le -> 0.0 | `Ge -> bound)
      else if counter then begin
        (* counter series carry no samples: the statistic ranges over
           per-window sums *)
        match stat with
        | Mean -> a.Ts.a_sum /. float_of_int (max 1 a.Ts.a_windows)
        | Min -> List.fold_left Float.min infinity (per_window_sums ())
        | Max -> List.fold_left Float.max neg_infinity (per_window_sums ())
      end
      else begin
        match stat with
        | Mean -> a.Ts.a_sum /. float_of_int a.Ts.a_count
        | Min -> a.Ts.a_min
        | Max -> a.Ts.a_max
      end
    in
    (v, threshold_burn ~cmp ~bound v)

let threshold_of slo =
  match slo.slo_kind with
  | Ratio { target; _ } -> target
  | Quantile { bound; _ } -> bound
  | Stat { bound; _ } -> bound

let kind_detail slo =
  match slo.slo_kind with
  | Ratio { good; total; target } ->
    Printf.sprintf "sum(%s)/sum(%s) >= %g" good total target
  | Quantile { series; q; bound } ->
    Printf.sprintf "p%g(%s) <= %g" (q *. 100.0) series bound
  | Stat { series; stat; cmp; bound } ->
    Printf.sprintf "%s(%s) %s %g"
      (match stat with Mean -> "mean" | Min -> "min" | Max -> "max")
      series
      (match cmp with `Le -> "<=" | `Ge -> ">=")
      bound

let evaluate ts slo =
  let slow_measured, burn_slow = measure ts slo ~last:slo.slo_window in
  let fast_measured, burn_fast = measure ts slo ~last:(fast_window slo) in
  let status =
    if burn_slow >= slo.slo_page_burn && burn_fast >= slo.slo_page_burn then Page
    else if burn_slow >= slo.slo_warn_burn then Warn
    else Ok
  in
  let detail =
    Printf.sprintf "%s: measured %g (fast %g), burn %g/%g over %dw (fast %dw)"
      (kind_detail slo) slow_measured fast_measured burn_slow burn_fast
      slo.slo_window (fast_window slo)
  in
  {
    ev_slo = slo;
    ev_status = status;
    ev_measured = slow_measured;
    ev_fast_measured = fast_measured;
    ev_burn_slow = burn_slow;
    ev_burn_fast = burn_fast;
    ev_detail = detail;
  }

let json_of_evaluation ev =
  (* infinities don't survive the JSON printer; clamp to a sentinel *)
  let fin x = if Float.is_finite x then x else 1e9 in
  Json.Obj
    [
      ("name", Json.Str ev.ev_slo.slo_name);
      ("description", Json.Str ev.ev_slo.slo_description);
      ("objective", Json.Str (kind_detail ev.ev_slo));
      ("status", Json.Str (status_name ev.ev_status));
      ("threshold", Json.Num (threshold_of ev.ev_slo));
      ("measured", Json.Num (fin ev.ev_measured));
      ("fast_measured", Json.Num (fin ev.ev_fast_measured));
      ("burn_slow", Json.Num (fin ev.ev_burn_slow));
      ("burn_fast", Json.Num (fin ev.ev_burn_fast));
      ("window", Json.Num (float_of_int ev.ev_slo.slo_window));
      ("detail", Json.Str ev.ev_detail);
    ]
