(** Runtime health monitor: discrete-event intake, rule-based watchdogs,
    and an append-only deterministic incident log.

    A monitor wraps a {!Activermt_telemetry.Timeseries} registry.
    Components report discrete events ({!event}) — link flaps,
    preemptions, rejections, JIT invalidations — which land both in the
    series (as a counter under the event name) and in a bounded
    per-name recent-event ring that remembers each event's virtual time
    and, when the caller passes one, the flight-recorder [trace_id]
    responsible.

    Watchdogs are rules over those signals: "more than [max] events of
    this kind inside the window" or "series sum above [max] inside the
    window".  {!check} evaluates every watchdog at a virtual instant;
    {!evaluate} additionally runs a set of {!Slo} definitions.  Both
    append to the incident log on {e transitions only} (a rule firing
    stays one incident until it clears), and every incident derived
    from events carries the trace ids of the contributing events — the
    cause attribution the flight recorder can expand. *)

type t

val create :
  ?event_capacity:int -> series:Activermt_telemetry.Timeseries.t -> unit -> t
(** [event_capacity] (default 4096) bounds each event ring (oldest
    dropped first). *)

val series : t -> Activermt_telemetry.Timeseries.t

val event :
  t -> ?t:float -> ?trace_id:int -> ?attrs:(string * string) list -> string -> unit
(** Report one discrete event at virtual time [t] (default: the series
    registry clock).  Also bumps the counter series of the same name. *)

(** {1 Watchdogs} *)

type trigger =
  | Event_count of { event : string; max : int }
      (** fires when more than [max] events landed inside the window *)
  | Series_sum of { series : string; max : float }
      (** fires when the series sums to more than [max] over the
          newest window buckets *)

type watchdog = {
  wd_name : string;
  wd_description : string;
  wd_window : int;  (** in series buckets *)
  wd_trigger : trigger;
  wd_severity : Slo.status;  (** [Warn] or [Page] *)
}

val add_watchdog : t -> watchdog -> unit

(** {1 Incidents} *)

type incident = {
  i_seq : int;  (** 0-based position in the log *)
  i_at : float;  (** virtual time of the check that opened it *)
  i_source : string;  (** watchdog or SLO name *)
  i_severity : Slo.status;
  i_measured : float;
  i_threshold : float;
  i_detail : string;
  i_trace_ids : int list;  (** linked flight-recorder traces, in event order *)
}

val check : ?at:float -> t -> unit
(** Evaluate every watchdog at virtual time [at] (default: the registry
    clock); open incidents for rules that newly trip, clear rules that
    no longer hold. *)

val evaluate : ?at:float -> t -> Slo.t list -> Slo.evaluation list
(** {!check}, then evaluate the SLOs against the series registry.  SLO
    status transitions (to [Warn]/[Page], or escalations) append
    incidents the same way. *)

val incidents : t -> incident list
(** The append-only log, in append order. *)

val page_count : t -> int
val warn_count : t -> int

val healthy : t -> bool
(** No [Page] incident was ever recorded. *)

(** {1 Reports} *)

val json_report :
  ?slos:Slo.evaluation list -> t -> Activermt_telemetry.Json.t
(** Deterministic health report:
    [{ "healthy": bool, "pages": n, "warns": n, "slos": [...],
       "incidents": [...], "series": {...} }] — same-seed runs produce
    byte-identical output. *)
