module Ts = Activermt_telemetry.Timeseries
module Json = Activermt_telemetry.Json

type recorded_event = { re_at : float; re_trace_id : int option }

type ring = {
  buf : recorded_event option array;
  mutable head : int; (* next write position *)
  mutable count : int;
}

let ring_make cap = { buf = Array.make cap None; head = 0; count = 0 }

let ring_push r e =
  r.buf.(r.head) <- Some e;
  r.head <- (r.head + 1) mod Array.length r.buf;
  if r.count < Array.length r.buf then r.count <- r.count + 1

(* oldest-first *)
let ring_to_list r =
  let cap = Array.length r.buf in
  let out = ref [] in
  for k = 0 to r.count - 1 do
    let i = (r.head - 1 - k + (2 * cap)) mod cap in
    match r.buf.(i) with Some e -> out := e :: !out | None -> ()
  done;
  !out

type trigger =
  | Event_count of { event : string; max : int }
  | Series_sum of { series : string; max : float }

type watchdog = {
  wd_name : string;
  wd_description : string;
  wd_window : int;
  wd_trigger : trigger;
  wd_severity : Slo.status;
}

type incident = {
  i_seq : int;
  i_at : float;
  i_source : string;
  i_severity : Slo.status;
  i_measured : float;
  i_threshold : float;
  i_detail : string;
  i_trace_ids : int list;
}

type t = {
  ts : Ts.t;
  event_capacity : int;
  events : (string, ring) Hashtbl.t;
  mutable watchdogs : watchdog list; (* insertion order *)
  open_sources : (string, Slo.status) Hashtbl.t; (* currently-tripped rules *)
  mutable log : incident list; (* newest first *)
  mutable n_incidents : int;
  mutable pages : int;
  mutable warns : int;
}

let create ?(event_capacity = 4096) ~series () =
  if event_capacity < 1 then invalid_arg "Monitor.create: event_capacity < 1";
  {
    ts = series;
    event_capacity;
    events = Hashtbl.create 32;
    watchdogs = [];
    open_sources = Hashtbl.create 16;
    log = [];
    n_incidents = 0;
    pages = 0;
    warns = 0;
  }

let series t = t.ts

let event t ?t:tm ?trace_id ?attrs name =
  ignore attrs;
  let at = match tm with Some x -> x | None -> Ts.now t.ts in
  Ts.add t.ts ~t:at name;
  let r =
    match Hashtbl.find_opt t.events name with
    | Some r -> r
    | None ->
      let r = ring_make t.event_capacity in
      Hashtbl.add t.events name r;
      r
  in
  ring_push r { re_at = at; re_trace_id = trace_id }

let add_watchdog t wd =
  if wd.wd_window < 1 then invalid_arg "Monitor.add_watchdog: window < 1";
  t.watchdogs <- t.watchdogs @ [ wd ]

let append_incident t ~at ~source ~severity ~measured ~threshold ~detail ~trace_ids =
  let inc =
    {
      i_seq = t.n_incidents;
      i_at = at;
      i_source = source;
      i_severity = severity;
      i_measured = measured;
      i_threshold = threshold;
      i_detail = detail;
      i_trace_ids = trace_ids;
    }
  in
  t.n_incidents <- t.n_incidents + 1;
  (match severity with
  | Slo.Page -> t.pages <- t.pages + 1
  | Slo.Warn -> t.warns <- t.warns + 1
  | Slo.Ok -> ());
  t.log <- inc :: t.log

(* Record a rule's current status; append an incident iff it newly trips
   or escalates (Warn -> Page). *)
let transition t ~at ~source ~status ~measured ~threshold ~detail ~trace_ids =
  let prev = Hashtbl.find_opt t.open_sources source in
  match status with
  | Slo.Ok -> Hashtbl.remove t.open_sources source
  | (Slo.Warn | Slo.Page) as sev ->
    let escalated =
      match prev with
      | None -> true
      | Some Slo.Warn -> sev = Slo.Page
      | Some Slo.Page -> false
      | Some Slo.Ok -> true
    in
    Hashtbl.replace t.open_sources source sev;
    if escalated then
      append_incident t ~at ~source ~severity:sev ~measured ~threshold ~detail
        ~trace_ids

let check_watchdog t ~at wd =
  let bucket = Ts.bucket_s t.ts in
  match wd.wd_trigger with
  | Event_count { event; max } ->
    let horizon = at -. (float_of_int wd.wd_window *. bucket) in
    let recent =
      match Hashtbl.find_opt t.events event with
      | None -> []
      | Some r -> List.filter (fun e -> e.re_at > horizon && e.re_at <= at) (ring_to_list r)
    in
    let n = List.length recent in
    let status = if n > max then wd.wd_severity else Slo.Ok in
    let trace_ids = List.filter_map (fun e -> e.re_trace_id) recent in
    let detail =
      Printf.sprintf "%s: %d %s events in the last %dw (max %d)" wd.wd_description
        n event wd.wd_window max
    in
    transition t ~at ~source:wd.wd_name ~status ~measured:(float_of_int n)
      ~threshold:(float_of_int max) ~detail ~trace_ids
  | Series_sum { series; max } ->
    let a = Ts.aggregate ~last:wd.wd_window t.ts series in
    let v = a.Ts.a_sum in
    let status = if v > max then wd.wd_severity else Slo.Ok in
    let detail =
      Printf.sprintf "%s: sum(%s)=%g over %dw (max %g)" wd.wd_description series v
        wd.wd_window max
    in
    transition t ~at ~source:wd.wd_name ~status ~measured:v ~threshold:max ~detail
      ~trace_ids:[]

(* [at] defaults to the registry clock, matching [event] — a monitor
   checked without an explicit instant evaluates "now", not t=0. *)
let check ?at t =
  let at = match at with Some x -> x | None -> Ts.now t.ts in
  List.iter (check_watchdog t ~at) t.watchdogs

let evaluate ?at t slos =
  let at = match at with Some x -> x | None -> Ts.now t.ts in
  check ~at t;
  List.map
    (fun slo ->
      let ev = Slo.evaluate t.ts slo in
      transition t ~at ~source:slo.Slo.slo_name ~status:ev.Slo.ev_status
        ~measured:ev.Slo.ev_measured ~threshold:(Slo.threshold_of slo)
        ~detail:ev.Slo.ev_detail ~trace_ids:[];
      ev)
    slos

let incidents t = List.rev t.log
let page_count t = t.pages
let warn_count t = t.warns
let healthy t = t.pages = 0

let json_of_incident i =
  Json.Obj
    [
      ("seq", Json.Num (float_of_int i.i_seq));
      ("at", Json.Num i.i_at);
      ("source", Json.Str i.i_source);
      ("severity", Json.Str (Slo.status_name i.i_severity));
      ("measured", Json.Num i.i_measured);
      ("threshold", Json.Num i.i_threshold);
      ("detail", Json.Str i.i_detail);
      ( "trace_ids",
        Json.Arr (List.map (fun id -> Json.Num (float_of_int id)) i.i_trace_ids) );
    ]

let json_report ?(slos = []) t =
  Json.Obj
    [
      ("healthy", Json.Bool (healthy t));
      ("pages", Json.Num (float_of_int t.pages));
      ("warns", Json.Num (float_of_int t.warns));
      ("slos", Json.Arr (List.map Slo.json_of_evaluation slos));
      ("incidents", Json.Arr (List.map json_of_incident (incidents t)));
      ("series", Ts.json_of t.ts);
    ]
