(** Declarative service-level objectives over {!Activermt_telemetry.Timeseries}.

    An SLO names a target over a window of series buckets and is
    evaluated Google-SRE style with two windows: the full ("slow")
    window and a fast window of [fast_fraction] of it (default 5%,
    minimum one bucket).  For ratio SLOs the measured quantity is a
    {e burn rate} — the error rate divided by the error budget
    [1 - target], so burn 1.0 consumes the budget exactly at the end of
    the window.  A page fires only when {e both} windows burn at
    [page_burn] or above (the fast window makes the signal reset
    quickly); a warn fires when the slow window burns at [warn_burn].
    Threshold SLOs (quantile / stat bounds) normalize the same way:
    burn is the fraction of the bound consumed (measured/bound for
    upper bounds, deficit-ratio for lower bounds), with page at burn
    >= 1 in both windows and warn at [warn_burn] (default 0.8) in the
    slow window. *)

type status = Ok | Warn | Page

val status_name : status -> string
val status_of_name : string -> status option

type stat = Mean | Min | Max

type kind =
  | Ratio of { good : string; total : string; target : float }
      (** [good]/[total] are counter series; healthy when the window
          ratio of sums is >= [target].  An empty window (total sum 0)
          counts as healthy — no traffic burns no budget. *)
  | Quantile of { series : string; q : float; bound : float }
      (** dist series; healthy when the [q]-quantile over the window is
          <= [bound]. *)
  | Stat of { series : string; stat : stat; cmp : [ `Le | `Ge ]; bound : float }
      (** healthy when [stat] over the window compares to [bound]
          ([Mean]/[Min]/[Max] of observed values for dist series; for
          counter series [Mean] is the mean per-window sum and
          [Min]/[Max] range over per-window sums). *)

type t = {
  slo_name : string;
  slo_description : string;
  slo_kind : kind;
  slo_window : int;  (** slow window, in series buckets *)
  slo_fast_fraction : float;
  slo_page_burn : float;
  slo_warn_burn : float;
}

val ratio :
  name:string ->
  ?description:string ->
  ?window:int ->
  ?fast_fraction:float ->
  ?page_burn:float ->
  ?warn_burn:float ->
  good:string ->
  total:string ->
  target:float ->
  unit ->
  t
(** Defaults: window 40, fast_fraction 0.05, page_burn 14.4,
    warn_burn 6.0 (the SRE-workbook pairing). *)

val quantile :
  name:string ->
  ?description:string ->
  ?window:int ->
  ?fast_fraction:float ->
  ?page_burn:float ->
  ?warn_burn:float ->
  series:string ->
  q:float ->
  bound:float ->
  unit ->
  t
(** Upper-bound a quantile (e.g. admission p99 <= 1 ms).  Defaults:
    window 40, fast_fraction 0.05, page_burn 1.0, warn_burn 0.8. *)

val stat :
  name:string ->
  ?description:string ->
  ?window:int ->
  ?fast_fraction:float ->
  ?page_burn:float ->
  ?warn_burn:float ->
  series:string ->
  stat:stat ->
  cmp:[ `Le | `Ge ] ->
  bound:float ->
  unit ->
  t
(** Bound a window statistic (e.g. Jain fairness Min >= 0.9, route
    flap locality Max <= 0.05).  Same defaults as {!quantile}. *)

type evaluation = {
  ev_slo : t;
  ev_status : status;
  ev_measured : float;  (** the SLO's quantity over the slow window *)
  ev_fast_measured : float;
  ev_burn_slow : float;
  ev_burn_fast : float;
  ev_detail : string;
}

val evaluate : Activermt_telemetry.Timeseries.t -> t -> evaluation

val threshold_of : t -> float
(** The target / bound the SLO compares against (for reports). *)

val json_of_evaluation : evaluation -> Activermt_telemetry.Json.t
(** Deterministic: name, status, measured values, burns, threshold,
    detail — no wall-clock fields. *)
