type kind = Cache | Heavy_hitter | Load_balancer | Flow_counter | Bloom_filter

let kind_to_string = function
  | Cache -> "cache"
  | Heavy_hitter -> "heavy-hitter"
  | Load_balancer -> "load-balancer"
  | Flow_counter -> "flow-counter"
  | Bloom_filter -> "bloom-filter"

let all_kinds = [| Cache; Heavy_hitter; Load_balancer |]

let extended_kinds =
  [| Cache; Heavy_hitter; Load_balancer; Flow_counter; Bloom_filter |]

type event =
  | Arrive of { fid : int; kind : kind; tenant : int option }
  | Depart of { fid : int }
type epoch = { index : int; events : event list }

type config = {
  arrival_mean : float;
  departure_mean : float;
  kinds : kind array;
}

let default_config =
  { arrival_mean = 2.0; departure_mean = 1.0; kinds = all_kinds }

let extended_config = { default_config with kinds = extended_kinds }

let pure kind = { arrival_mean = 1.0; departure_mean = 0.0; kinds = [| kind |] }
let arrivals_only c = { c with departure_mean = 0.0 }

let generate config ~epochs rng =
  let next_fid = ref 1 in
  let alive = ref [] in
  let epoch index =
    let n_arr =
      if config.arrival_mean > 0.0 then
        Stdx.Prng.poisson rng ~mean:config.arrival_mean
      else 0
    in
    let n_dep =
      if config.departure_mean > 0.0 then
        Stdx.Prng.poisson rng ~mean:config.departure_mean
      else 0
    in
    let arrivals =
      List.init n_arr (fun _ ->
          let fid = !next_fid in
          incr next_fid;
          let kind = Stdx.Prng.choose rng config.kinds in
          alive := fid :: !alive;
          Arrive { fid; kind; tenant = None })
    in
    let departures =
      List.filter_map
        (fun _ ->
          match !alive with
          | [] -> None
          | l ->
            let arr = Array.of_list l in
            let fid = Stdx.Prng.choose rng arr in
            alive := List.filter (fun f -> f <> fid) !alive;
            Some (Depart { fid }))
        (List.init n_dep (fun i -> i))
    in
    { index; events = arrivals @ departures }
  in
  List.init epochs epoch

let arrivals_sequence kind ~n =
  List.init n (fun i ->
      { index = i; events = [ Arrive { fid = i + 1; kind; tenant = None } ] })

let mixed_arrivals ~n rng =
  List.init n (fun i ->
      {
        index = i;
        events =
          [
            Arrive
              { fid = i + 1; kind = Stdx.Prng.choose rng all_kinds; tenant = None };
          ];
      })

type zipf_config = {
  clients : int;
  batch : int;
  resident_target : int;
  exponent : float;
  zipf_kinds : kind array;
  tenant_weights : int array;
}

let default_zipf_config =
  {
    clients = 50_000;
    batch = 64;
    resident_target = 64;
    exponent = 0.99;
    zipf_kinds = extended_kinds;
    tenant_weights = [||];
  }

let zipf_churn config rng =
  if config.clients < 0 then invalid_arg "Churn.zipf_churn: clients < 0";
  if config.batch <= 0 then invalid_arg "Churn.zipf_churn: batch <= 0";
  if config.resident_target < 0 then
    invalid_arg "Churn.zipf_churn: resident_target < 0";
  if Array.length config.zipf_kinds = 0 then
    invalid_arg "Churn.zipf_churn: empty kinds";
  if Array.exists (fun w -> w <= 0) config.tenant_weights then
    invalid_arg "Churn.zipf_churn: tenant weights must be positive";
  let zipf =
    Zipf.create ~exponent:config.exponent
      ~n:(Array.length config.zipf_kinds)
      (Stdx.Prng.split rng)
  in
  (* Tenant labelling draws from its own split stream so enabling tenants
     never perturbs the kind/departure draws, and the no-tenant path makes
     zero extra PRNG calls — byte-identical to the pre-tenant generator. *)
  let draw_tenant =
    if Array.length config.tenant_weights = 0 then fun () -> None
    else begin
      let trng = Stdx.Prng.split rng in
      let total = Array.fold_left ( + ) 0 config.tenant_weights in
      fun () ->
        let r = Stdx.Prng.int trng total in
        let acc = ref 0 and pick = ref 0 in
        (try
           Array.iteri
             (fun i w ->
               acc := !acc + w;
               if r < !acc then begin
                 pick := i;
                 raise Exit
               end)
             config.tenant_weights
         with Exit -> ());
        Some !pick
    end
  in
  (* Swap-remove array of fids assumed alive in the generated sequence so a
     uniform departure is O(1); the consumer's allocator may have rejected
     some of them, which is fine — departures of non-resident fids are
     no-ops downstream. *)
  let alive = ref (Array.make 64 0) in
  let n_alive = ref 0 in
  let push fid =
    if !n_alive = Array.length !alive then begin
      let grown = Array.make (2 * Array.length !alive) 0 in
      Array.blit !alive 0 grown 0 !n_alive;
      alive := grown
    end;
    !alive.(!n_alive) <- fid;
    incr n_alive
  in
  let pop_uniform () =
    let i = Stdx.Prng.int rng !n_alive in
    let fid = !alive.(i) in
    !alive.(i) <- !alive.(!n_alive - 1);
    decr n_alive;
    fid
  in
  let next_fid = ref 1 in
  let remaining = ref config.clients in
  let index = ref 0 in
  let rec next () =
    if !remaining = 0 then Seq.Nil
    else begin
      let n_arr = min config.batch !remaining in
      remaining := !remaining - n_arr;
      let arrivals = ref [] in
      for _ = 1 to n_arr do
        let fid = !next_fid in
        incr next_fid;
        let kind = config.zipf_kinds.(Zipf.sample zipf) in
        push fid;
        arrivals := Arrive { fid; kind; tenant = draw_tenant () } :: !arrivals
      done;
      let departures = ref [] in
      while !n_alive > config.resident_target do
        departures := Depart { fid = pop_uniform () } :: !departures
      done;
      let epoch =
        { index = !index; events = List.rev !arrivals @ List.rev !departures }
      in
      incr index;
      Seq.Cons (epoch, next)
    end
  in
  next
