(** Application arrival/departure processes for the allocator evaluation.

    Section 6.1's online experiments draw, per unit-less epoch, a Poisson
    number of arrivals (mean 2) and departures (mean 1); arriving
    instances are one of the three example services chosen uniformly at
    random; departures remove a uniformly random resident instance. *)

type kind = Cache | Heavy_hitter | Load_balancer | Flow_counter | Bloom_filter

val kind_to_string : kind -> string

val all_kinds : kind array
(** The paper's three evaluation services. *)

val extended_kinds : kind array
(** The paper's three plus the two services this repo adds (flow counter,
    Bloom filter), for the extended-workload experiment. *)

type event =
  | Arrive of { fid : int; kind : kind; tenant : int option }
      (** [tenant] labels the arrival with the submitting tenant when the
          generator runs a multi-tenant mix; [None] everywhere else, so
          single-tenant consumers can ignore it. *)
  | Depart of { fid : int }

type epoch = { index : int; events : event list }

type config = {
  arrival_mean : float;  (** Poisson mean arrivals per epoch (2.0) *)
  departure_mean : float;  (** Poisson mean departures per epoch (1.0) *)
  kinds : kind array;  (** arrival mix, sampled uniformly *)
}

val default_config : config

val extended_config : config
(** [default_config] over [extended_kinds]. *)

val pure : kind -> config
(** Arrivals of a single kind only, no departures — the Figure 5a / 6
    pure-workload sequences. *)

val arrivals_only : config -> config

val generate :
  config -> epochs:int -> Stdx.Prng.t -> epoch list
(** Deterministic sequence given the PRNG.  FIDs are unique and increase;
    departures pick among instances currently alive in the generated
    sequence (so the trace is self-consistent without an allocator). *)

val arrivals_sequence : kind -> n:int -> epoch list
(** [n] single-arrival epochs of one kind: the Figure 5a shape. *)

val mixed_arrivals : n:int -> Stdx.Prng.t -> epoch list
(** [n] single-arrival epochs, kind uniform at random: Figure 5b. *)

type zipf_config = {
  clients : int;  (** total arrivals to generate across the sequence *)
  batch : int;  (** arrivals per epoch (the admission batch size) *)
  resident_target : int;
      (** uniform departures trim the alive set back to this after each
          epoch's arrivals, keeping the switch near steady-state load *)
  exponent : float;  (** Zipf exponent over [zipf_kinds] popularity ranks *)
  zipf_kinds : kind array;  (** popularity order: index 0 is the head *)
  tenant_weights : int array;
      (** when non-empty, each arrival carries [tenant = Some i] with [i]
          drawn proportionally to [tenant_weights.(i)] from a dedicated
          split PRNG stream (a 10x-weight hostile tenant is
          [[| 10; 1; ...; 1 |]]).  The empty default makes zero extra PRNG
          draws, keeping the no-tenant sequence byte-identical to older
          generators. *)
}

val default_zipf_config : zipf_config
(** 50k clients, batch 64, resident target 64, exponent 0.99 over
    [extended_kinds] — the CI churn smoke configuration; the full bench
    raises [clients] to 1M. *)

val zipf_churn : zipf_config -> Stdx.Prng.t -> epoch Seq.t
(** Large-scale client churn under Zipf program popularity: each epoch
    carries [batch] fresh arrivals (unique, increasing FIDs; kind drawn
    Zipf-distributed from [zipf_kinds]) followed by uniform departures
    down to [resident_target].  Lazy so 1M clients never materialize as a
    list.

    The sequence is {e ephemeral} (it advances an internal PRNG stream):
    force it once, front to back.  Two generators built from equal-seed
    PRNGs yield identical sequences.
    @raise Invalid_argument on negative [clients]/[resident_target],
    non-positive [batch] or empty [zipf_kinds]. *)
