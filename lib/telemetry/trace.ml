type ctx = { trace_id : int; span_id : int }

type event = {
  trace_id : int;
  span_id : int;
  parent_span_id : int;
  t_start : float;
  t_end : float;
  name : string;
  attrs : (string * string) list;
}

type verbosity = Spans | Stages

(* Each writing domain appends to its own shard (no contention); a global
   atomic sequence number gives the merged view a total emission order. *)
type shard = { mutable items : (int * event) array; mutable len : int }

type t = {
  on : bool;
  capacity : int;
  sample : float;
  rng : Stdx.Prng.t;
  rng_lock : Mutex.t;
  verb : verbosity;
  mutable clock : unit -> float;
  shards : shard Stdx.Sharded.t;
  next_trace : int Atomic.t;
  next_span : int Atomic.t;
  next_seq : int Atomic.t;
  n_evicted : int Atomic.t;
}

let mk ~on ~capacity ~sample ~seed ~verb =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  {
    on;
    capacity;
    sample;
    rng = Stdx.Prng.create ~seed;
    rng_lock = Mutex.create ();
    verb;
    clock = (fun () -> 0.0);
    shards = Stdx.Sharded.create ~init:(fun () -> { items = [||]; len = 0 }) ();
    next_trace = Atomic.make 1;
    next_span = Atomic.make 1;
    next_seq = Atomic.make 0;
    n_evicted = Atomic.make 0;
  }

let create ?(capacity = 65536) ?(sample = 1.0) ?(seed = 0x7ace)
    ?(verbosity = Spans) () =
  mk ~on:true ~capacity ~sample ~seed ~verb:verbosity

let noop = mk ~on:false ~capacity:1 ~sample:0.0 ~seed:0 ~verb:Spans
let enabled t = t.on
let verbosity t = t.verb
let stage_detail t = t.on && t.verb = Stages
let set_clock t f = t.clock <- f
let now t = t.clock ()

(* Oldest-trace eviction: drop every event of the smallest trace id until
   at least 1/8 of the shard is free again, so eviction work amortizes.
   Trace ids grow monotonically, so the smallest id is the oldest trace. *)
let evict t sh =
  let target = t.capacity - max 1 (t.capacity / 8) in
  while sh.len > target do
    let oldest = ref max_int in
    for i = 0 to sh.len - 1 do
      let _, ev = sh.items.(i) in
      if ev.trace_id < !oldest then oldest := ev.trace_id
    done;
    let j = ref 0 in
    for i = 0 to sh.len - 1 do
      let (_, ev) as it = sh.items.(i) in
      if ev.trace_id <> !oldest then begin
        sh.items.(!j) <- it;
        incr j
      end
    done;
    ignore (Atomic.fetch_and_add t.n_evicted (sh.len - !j));
    sh.len <- !j
  done

let emit t ev =
  if t.on then begin
    let seq = Atomic.fetch_and_add t.next_seq 1 in
    let sh = Stdx.Sharded.get t.shards in
    if sh.len >= t.capacity then evict t sh;
    if sh.len = Array.length sh.items then begin
      let cap = max 64 (2 * Array.length sh.items) in
      let items = Array.make (min cap t.capacity) (seq, ev) in
      Array.blit sh.items 0 items 0 sh.len;
      sh.items <- items
    end;
    sh.items.(sh.len) <- (seq, ev);
    sh.len <- sh.len + 1
  end

let fresh_span t = Atomic.fetch_and_add t.next_span 1

let start_trace t ?(attrs = []) name =
  if not t.on then None
  else begin
    let keep =
      if t.sample >= 1.0 then true
      else if t.sample <= 0.0 then false
      else begin
        Mutex.lock t.rng_lock;
        let u = Stdx.Prng.float t.rng 1.0 in
        Mutex.unlock t.rng_lock;
        u < t.sample
      end
    in
    if not keep then None
    else begin
      let trace_id = Atomic.fetch_and_add t.next_trace 1 in
      let span_id = fresh_span t in
      let now = t.clock () in
      emit t
        { trace_id; span_id; parent_span_id = 0; t_start = now; t_end = now;
          name; attrs };
      Some ({ trace_id; span_id } : ctx)
    end
  end

let span t (ctx : ctx) ?(attrs = []) ~t_start ~t_end name =
  if not t.on then ctx
  else begin
    let span_id = fresh_span t in
    emit t
      { trace_id = ctx.trace_id; span_id; parent_span_id = ctx.span_id;
        t_start; t_end; name; attrs };
    ({ trace_id = ctx.trace_id; span_id } : ctx)
  end

let instant t ctx ?attrs name =
  let now = t.clock () in
  span t ctx ?attrs ~t_start:now ~t_end:now name

let with_span t (ctx : ctx option) ?attrs name f =
  match ctx with
  | None -> f None
  | Some _ when not t.on -> f None
  | Some c ->
    let span_id = fresh_span t in
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () ->
        let attrs = match attrs with None -> [] | Some a -> a in
        emit t
          { trace_id = c.trace_id; span_id; parent_span_id = c.span_id;
            t_start = t0; t_end = t.clock (); name; attrs })
      (fun () -> f (Some ({ trace_id = c.trace_id; span_id } : ctx)))

let length t =
  Stdx.Sharded.fold t.shards ~init:0 ~f:(fun acc sh -> acc + sh.len)

let evicted t = Atomic.get t.n_evicted

let reset t =
  Stdx.Sharded.iter t.shards ~f:(fun sh ->
      sh.items <- [||];
      sh.len <- 0);
  Atomic.set t.n_evicted 0

(* Merged view: total order by sequence number, then the same oldest-trace
   eviction applied globally so the export is capped at [capacity] no
   matter how many shards wrote. *)
let events t =
  let all =
    Stdx.Sharded.fold t.shards ~init:[] ~f:(fun acc sh ->
        let rec take i acc =
          if i < 0 then acc else take (i - 1) (sh.items.(i) :: acc)
        in
        take (sh.len - 1) acc)
  in
  let all = List.sort (fun (a, _) (b, _) -> compare a b) all in
  let n = List.length all in
  if n <= t.capacity then List.map snd all
  else begin
    let per_trace = Hashtbl.create 64 in
    List.iter
      (fun (_, ev) ->
        let c =
          match Hashtbl.find_opt per_trace ev.trace_id with
          | Some c -> c
          | None -> 0
        in
        Hashtbl.replace per_trace ev.trace_id (c + 1))
      all;
    let ids =
      Hashtbl.fold (fun id c acc -> (id, c) :: acc) per_trace []
      |> List.sort compare
    in
    let drop = Hashtbl.create 16 in
    let excess = ref (n - t.capacity) in
    List.iter
      (fun (id, c) ->
        if !excess > 0 then begin
          Hashtbl.replace drop id ();
          excess := !excess - c
        end)
      ids;
    List.filter_map
      (fun (_, ev) ->
        if Hashtbl.mem drop ev.trace_id then None else Some ev)
      all
  end

(* ---- Exporters ---- *)

let pid_of ev =
  match List.assoc_opt "switch" ev.attrs with
  | Some s -> ( match int_of_string_opt s with Some i -> i | None -> 0)
  | None -> 0

let chrome_json t =
  let evs = events t in
  let pids =
    List.sort_uniq compare (List.map pid_of evs)
  in
  let meta =
    List.map
      (fun p ->
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Num (float_of_int p));
            ("tid", Json.Num 0.0);
            ( "args",
              Json.Obj
                [
                  ( "name",
                    Json.Str
                      (if p = 0 then "host" else Printf.sprintf "switch %d" p)
                  );
                ] );
          ])
      pids
  in
  let ev_json ev =
    Json.Obj
      [
        ("name", Json.Str ev.name);
        ("cat", Json.Str "activermt");
        ("ph", Json.Str "X");
        ("ts", Json.Num (ev.t_start *. 1e6));
        ("dur", Json.Num ((ev.t_end -. ev.t_start) *. 1e6));
        ("pid", Json.Num (float_of_int (pid_of ev)));
        ("tid", Json.Num (float_of_int ev.trace_id));
        ( "args",
          Json.Obj
            (("trace_id", Json.Num (float_of_int ev.trace_id))
            :: ("span_id", Json.Num (float_of_int ev.span_id))
            :: ("parent_span_id", Json.Num (float_of_int ev.parent_span_id))
            :: List.map (fun (k, v) -> (k, Json.Str v)) ev.attrs) );
      ]
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.Arr (meta @ List.map ev_json evs));
    ]

let dump_chrome t = Json.to_string ~pretty:true (chrome_json t)

let write_chrome t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (dump_chrome t);
      output_char oc '\n')

let render_tree evs =
  let buf = Buffer.create 1024 in
  (* Group by trace in first-appearance order. *)
  let order = ref [] in
  let by_trace = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match Hashtbl.find_opt by_trace ev.trace_id with
      | Some l -> l := ev :: !l
      | None ->
        Hashtbl.add by_trace ev.trace_id (ref [ ev ]);
        order := ev.trace_id :: !order)
    evs;
  List.iter
    (fun tid ->
      let evs = List.rev !(Hashtbl.find by_trace tid) in
      let present = Hashtbl.create 16 in
      List.iter (fun ev -> Hashtbl.replace present ev.span_id ()) evs;
      let children = Hashtbl.create 16 in
      let roots = ref [] in
      List.iter
        (fun ev ->
          if ev.parent_span_id <> 0 && Hashtbl.mem present ev.parent_span_id
          then begin
            let l =
              match Hashtbl.find_opt children ev.parent_span_id with
              | Some l -> l
              | None ->
                let l = ref [] in
                Hashtbl.add children ev.parent_span_id l;
                l
            in
            l := ev :: !l
          end
          else roots := ev :: !roots)
        evs;
      Buffer.add_string buf
        (Printf.sprintf "trace %d — %d events\n" tid (List.length evs));
      let line indent ev =
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_string buf ev.name;
        Buffer.add_string buf (Printf.sprintf " @%.6f" ev.t_start);
        if ev.t_end > ev.t_start then
          Buffer.add_string buf
            (Printf.sprintf " +%.6f" (ev.t_end -. ev.t_start));
        List.iter
          (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%s" k v))
          ev.attrs;
        Buffer.add_char buf '\n'
      in
      let rec walk indent ev =
        line indent ev;
        match Hashtbl.find_opt children ev.span_id with
        | None -> ()
        | Some l -> List.iter (walk (indent + 2)) (List.rev !l)
      in
      List.iter (walk 2) (List.rev !roots))
    (List.rev !order);
  Buffer.contents buf

let dump_text t = render_tree (events t)
