(* Metric cells live in per-domain shards (Stdx.Sharded): the hot path
   writes the calling domain's cells without synchronization and readers
   merge every shard, so recording stays allocation-cheap and race-free
   under Stdx.Domain_pool fan-out. *)

(* Log-bucketed histogram: bucket i covers [2^((i-origin)/sub),
   2^((i-origin+1)/sub)), i.e. [sub] buckets per octave.  Percentiles are
   read back as the bucket's geometric midpoint (relative error at most
   2^(1/(2*sub)) - 1 ~= 4.4%) clamped to the exact observed min/max, so no
   samples are ever stored. *)
let sub_buckets = 8
let n_buckets = 256
let origin = 192 (* bucket index of value 1.0; floor covers ~6e-8 .. ~2e2 *)

let bucket_of v =
  if v <= 0.0 then 0
  else begin
    let i = origin + int_of_float (Float.floor (Float.log2 v *. float_of_int sub_buckets)) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
  end

let bucket_mid i =
  Float.pow 2.0 ((float_of_int (i - origin) +. 0.5) /. float_of_int sub_buckets)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let hist_make () =
  {
    h_count = 0;
    h_sum = 0.0;
    h_min = Float.infinity;
    h_max = Float.neg_infinity;
    h_buckets = Array.make n_buckets 0;
  }

let hist_record h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = h.h_buckets in
  let i = bucket_of v in
  b.(i) <- b.(i) + 1

let hist_merge_into dst src =
  dst.h_count <- dst.h_count + src.h_count;
  dst.h_sum <- dst.h_sum +. src.h_sum;
  if src.h_min < dst.h_min then dst.h_min <- src.h_min;
  if src.h_max > dst.h_max then dst.h_max <- src.h_max;
  for i = 0 to n_buckets - 1 do
    dst.h_buckets.(i) <- dst.h_buckets.(i) + src.h_buckets.(i)
  done

let hist_percentile_of h p =
  (* NaN would sail through both range tests below and silently return
     the top bucket; reject it instead of guessing. *)
  if Float.is_nan p then invalid_arg "Telemetry.hist_percentile: NaN percentile";
  if h.h_count = 0 then 0.0
  else if p <= 0.0 then h.h_min
  else if p >= 100.0 then h.h_max
  else begin
    let target =
      Float.max 1.0 (Float.ceil (p /. 100.0 *. float_of_int h.h_count))
    in
    let cum = ref 0 in
    let found = ref (n_buckets - 1) in
    let i = ref 0 in
    let continue = ref true in
    while !continue && !i < n_buckets do
      cum := !cum + h.h_buckets.(!i);
      if float_of_int !cum >= target then begin
        found := !i;
        continue := false
      end;
      i := !i + 1
    done;
    Float.min h.h_max (Float.max h.h_min (bucket_mid !found))
  end

type gauge = { mutable g_seq : int; mutable g_val : float }
type cell = Counter of int ref | Gauge of gauge | Hist of hist

type shard = {
  cells : (string, cell) Hashtbl.t;
  mutable stack : (string * float) list; (* open spans: name, start time *)
}

type t = {
  shards : shard Stdx.Sharded.t;
  seq : int Atomic.t; (* global write order for gauge last-write-wins *)
  now : unit -> float;
}

let create ?now () =
  let now = match now with Some f -> f | None -> Unix.gettimeofday in
  {
    shards =
      Stdx.Sharded.create
        ~init:(fun () -> { cells = Hashtbl.create 64; stack = [] })
        ();
    seq = Atomic.make 0;
    now;
  }

let default = create ()

let kind_error name got =
  invalid_arg
    (Printf.sprintf "Telemetry: metric %S already registered as a %s" name got)

let my_shard t = Stdx.Sharded.get t.shards

let incr t ?(by = 1) name =
  let s = my_shard t in
  match Hashtbl.find_opt s.cells name with
  | Some (Counter r) -> r := !r + by
  | Some (Gauge _) -> kind_error name "gauge"
  | Some (Hist _) -> kind_error name "histogram"
  | None -> Hashtbl.add s.cells name (Counter (ref by))

let set_gauge t name v =
  let s = my_shard t in
  let seq = Atomic.fetch_and_add t.seq 1 in
  match Hashtbl.find_opt s.cells name with
  | Some (Gauge g) ->
    g.g_seq <- seq;
    g.g_val <- v
  | Some (Counter _) -> kind_error name "counter"
  | Some (Hist _) -> kind_error name "histogram"
  | None -> Hashtbl.add s.cells name (Gauge { g_seq = seq; g_val = v })

let observe t name v =
  let s = my_shard t in
  match Hashtbl.find_opt s.cells name with
  | Some (Hist h) -> hist_record h v
  | Some (Counter _) -> kind_error name "counter"
  | Some (Gauge _) -> kind_error name "gauge"
  | None ->
    let h = hist_make () in
    hist_record h v;
    Hashtbl.add s.cells name (Hist h)

(* -- Spans ---------------------------------------------------------------- *)

let span_begin t name =
  let s = my_shard t in
  s.stack <- (name, t.now ()) :: s.stack

let span_end t =
  let s = my_shard t in
  match s.stack with
  | [] -> invalid_arg "Telemetry.span_end: no open span"
  | (name, t0) :: rest ->
    s.stack <- rest;
    observe t name (t.now () -. t0)

let with_span t name f =
  span_begin t name;
  Fun.protect ~finally:(fun () -> span_end t) f

(* -- Merged reads --------------------------------------------------------- *)

let counter_value t name =
  Stdx.Sharded.fold t.shards ~init:0 ~f:(fun acc s ->
      match Hashtbl.find_opt s.cells name with
      | Some (Counter r) -> acc + !r
      | _ -> acc)

let gauge_value t name =
  Stdx.Sharded.fold t.shards ~init:None ~f:(fun acc s ->
      match Hashtbl.find_opt s.cells name with
      | Some (Gauge g) -> (
        match acc with
        | Some (seq, _) when seq >= g.g_seq -> acc
        | _ -> Some (g.g_seq, g.g_val))
      | _ -> acc)
  |> Option.map snd

let merged_hist t name =
  Stdx.Sharded.fold t.shards ~init:None ~f:(fun acc s ->
      match Hashtbl.find_opt s.cells name with
      | Some (Hist h) ->
        let dst = match acc with Some d -> d | None -> hist_make () in
        hist_merge_into dst h;
        Some dst
      | _ -> acc)

type hist_summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary_of_hist h =
  {
    count = h.h_count;
    sum = h.h_sum;
    mean = (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count);
    min = (if h.h_count = 0 then 0.0 else h.h_min);
    max = (if h.h_count = 0 then 0.0 else h.h_max);
    p50 = hist_percentile_of h 50.0;
    p90 = hist_percentile_of h 90.0;
    p99 = hist_percentile_of h 99.0;
  }

let hist_summary t name = Option.map summary_of_hist (merged_hist t name)

let hist_percentile t name p =
  match merged_hist t name with
  | None -> 0.0
  | Some h -> hist_percentile_of h p

let names_of_kind t ~keep =
  let seen = Hashtbl.create 64 in
  Stdx.Sharded.iter t.shards ~f:(fun s ->
      Hashtbl.iter
        (fun name cell -> if keep cell then Hashtbl.replace seen name ())
        s.cells);
  Hashtbl.fold (fun name () acc -> name :: acc) seen []
  |> List.sort compare

let counters t =
  names_of_kind t ~keep:(function Counter _ -> true | _ -> false)
  |> List.map (fun name -> (name, counter_value t name))

let gauges t =
  names_of_kind t ~keep:(function Gauge _ -> true | _ -> false)
  |> List.filter_map (fun name ->
         Option.map (fun v -> (name, v)) (gauge_value t name))

let histograms t =
  names_of_kind t ~keep:(function Hist _ -> true | _ -> false)
  |> List.filter_map (fun name ->
         Option.map (fun s -> (name, s)) (hist_summary t name))

let reset t =
  Stdx.Sharded.iter t.shards ~f:(fun s ->
      Hashtbl.reset s.cells;
      s.stack <- [])

(* -- Dumps ---------------------------------------------------------------- *)

let json_of_summary s =
  Json.Obj
    [
      ("count", Json.Num (float_of_int s.count));
      ("sum", Json.Num s.sum);
      ("mean", Json.Num s.mean);
      ("min", Json.Num s.min);
      ("max", Json.Num s.max);
      ("p50", Json.Num s.p50);
      ("p90", Json.Num s.p90);
      ("p99", Json.Num s.p99);
    ]

let json_of t =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) (counters t))
      );
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) (gauges t)));
      ( "histograms",
        Json.Obj (List.map (fun (k, s) -> (k, json_of_summary s)) (histograms t))
      );
    ]

let dump_json t = Json.to_string ~pretty:true (json_of t)

let write_json t ~path =
  let oc = open_out path in
  output_string oc (dump_json t);
  output_char oc '\n';
  close_out oc

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* (promtext exposition
   format); registry keys are free-form strings, so every other character
   collapses to '_' and a leading digit gets a '_' prefix. *)
let prom_name name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  if mapped = "" then "_"
  else
    match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped

(* Label values may contain anything, but backslash, double-quote and
   newline must be escaped per the exposition format. *)
let prom_escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let dump_prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    (counters t);
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %g\n" n n v))
    (gauges t);
  List.iter
    (fun (name, s) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun (q, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%s\"} %g\n" n (prom_escape_label q)
               v))
        [ ("0.5", s.p50); ("0.9", s.p90); ("0.99", s.p99) ];
      Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" n s.sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n s.count))
    (histograms t);
  Buffer.contents buf
