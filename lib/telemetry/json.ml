type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> Buffer.add_string buf (num_to_string v)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if pretty then "\": " else "\":");
          go (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          go ()
        | 'n' ->
          Buffer.add_char buf '\n';
          go ()
        | 'r' ->
          Buffer.add_char buf '\r';
          go ()
        | 't' ->
          Buffer.add_char buf '\t';
          go ()
        | 'b' ->
          Buffer.add_char buf '\b';
          go ()
        | 'f' ->
          Buffer.add_char buf '\012';
          go ()
        | 'u' ->
          if !pos + 4 > n then fail "bad \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* Only BMP code points below 0x80 round-trip exactly; others
             are emitted as '?' — metric names and dump fields are
             ASCII, so this never triggers on our own output. *)
          Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
          go ()
        | _ -> fail "bad escape")
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error e -> Error e
  | exception Failure _ -> Error "malformed input"

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr l -> Some l | _ -> None
let to_obj = function Obj l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
