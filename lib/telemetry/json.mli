(** Minimal JSON tree, printer, and recursive-descent parser.

    Just enough for telemetry dumps and the CI bench comparator — the
    repo deliberately has no JSON dependency.  Numbers are all floats
    (integral values print without a decimal point); string escapes
    cover the ASCII range we emit. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] (default false) adds newlines and two-space indentation. *)

val of_string : string -> (t, string) result

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_num : t -> float option
val to_str : t -> string option
val to_arr : t -> t list option
val to_obj : t -> (string * t) list option
val to_bool : t -> bool option
