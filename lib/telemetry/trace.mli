(** Capsule flight recorder: bounded, sampled, causally-linked event traces.

    Where {!Telemetry} aggregates (counters, histograms, span timers),
    [Trace] records *individual* causally-linked events so one capsule can
    be followed end to end: injection, fabric hops, fault verdicts,
    per-stage execution, controller provisioning, fleet bridging and
    migration.  Each event carries a [(trace_id, span_id, parent_span_id)]
    triple; the context travels in-band with the capsule (see
    [Core.Wire.frame]'s trace extension and [Sim.Fabric]'s message trace
    field), so a trace survives switch hops, recirculation and migration.

    Properties:
    - {b Head-based, seeded sampling.}  The keep/drop decision is made
      once, at {!start_trace}, from a [Stdx.Prng] stream seeded at
      {!create} — the same run with the same seed yields the same traces.
    - {b Hard-bounded.}  Each writing domain's shard holds at most
      [capacity] events (default 64k); when full, the oldest traces in the
      shard are evicted wholesale.  The merged view in {!events} applies
      the same oldest-trace eviction globally, so exports never exceed
      [capacity] events regardless of how many domains wrote.
    - {b Deterministic output.}  Events order by a global sequence number
      and timestamps come from an injectable clock (wire it to
      [Sim.Engine.now]; the default clock returns 0), so same-seed runs
      export byte-identical dumps.  Never wire the clock to wall time if
      dumps must be reproducible.
    - {b Cheap when off.}  {!noop} never samples and every operation on it
      returns immediately; instrumented call sites guard on the returned
      [ctx option], so a disabled tracer costs a pointer test. *)

type ctx = { trace_id : int; span_id : int }
(** A position in a trace: which trace, and which span new children should
    hang off.  Mirrors [Core.Wire.trace_ctx] field for field (the two
    types stay separate only because [Core] cannot depend on this
    library). *)

type event = {
  trace_id : int;
  span_id : int;
  parent_span_id : int;  (** 0 for a trace's root event. *)
  t_start : float;
  t_end : float;  (** Equal to [t_start] for instant events. *)
  name : string;  (** Dot-separated taxonomy, e.g. ["fault.drop"]. *)
  attrs : (string * string) list;
}

type verbosity =
  | Spans  (** Lifecycle events only: inject/deliver/fault/exec/control. *)
  | Stages
      (** Also per-stage device execution events (instruction, MAR/MBR)
          and per-word client retransmission events — much larger dumps. *)

type t

val create :
  ?capacity:int ->
  ?sample:float ->
  ?seed:int ->
  ?verbosity:verbosity ->
  unit ->
  t
(** [capacity] (default 65536) bounds the per-shard and merged event
    count.  [sample] (default 1.0) is the head-sampling probability in
    [0, 1]; values [>= 1.0] keep everything without consuming PRNG state,
    [<= 0.0] keeps nothing.  [seed] (default 0x7ace) seeds the sampling
    stream.  [verbosity] defaults to [Spans]. *)

val noop : t
(** A permanently disabled tracer: {!start_trace} always returns [None]
    and emission is a no-op.  Components default to this. *)

val enabled : t -> bool
val verbosity : t -> verbosity

val stage_detail : t -> bool
(** [enabled t && verbosity t = Stages] — gate for hot-path stage events. *)

val set_clock : t -> (unit -> float) -> unit
(** Replace the clock used for event timestamps.  Simulations wire this to
    [Engine.now] so trace time is simulated time. *)

val now : t -> float
(** Current clock reading (0 with the default clock). *)

val start_trace :
  t -> ?attrs:(string * string) list -> string -> ctx option
(** Allocate a new trace and emit its root event (instant, at the current
    clock), or [None] if the tracer is disabled or head sampling rejects
    it.  All downstream instrumentation keys off the returned context. *)

val instant : t -> ctx -> ?attrs:(string * string) list -> string -> ctx
(** Emit a zero-duration event as a child of [ctx] and return the child's
    context, so successive hops chain causally. *)

val span :
  t ->
  ctx ->
  ?attrs:(string * string) list ->
  t_start:float ->
  t_end:float ->
  string ->
  ctx
(** Emit a completed span with explicit bounds as a child of [ctx];
    returns the child's context. *)

val with_span :
  t ->
  ctx option ->
  ?attrs:(string * string) list ->
  string ->
  (ctx option -> 'a) ->
  'a
(** [with_span t (Some ctx) name f] runs [f (Some child)] and emits the
    span [name] from clock entry to exit (also on exception).
    [with_span t None name f] is just [f None]. *)

val length : t -> int
(** Events currently stored (before merged-view eviction). *)

val evicted : t -> int
(** Events discarded by oldest-trace eviction since creation/reset. *)

val events : t -> event list
(** Merged view of all shards in global emission order, capped at
    [capacity] events by evicting oldest traces first. *)

val reset : t -> unit
(** Drop all stored events and zero {!evicted}.  Id counters keep
    advancing so contexts never collide across a reset. *)

(** {2 Exporters} *)

val chrome_json : t -> Json.t
(** Chrome trace-event JSON (the ["traceEvents"] array format), loadable
    in Perfetto / [chrome://tracing].  Events map to complete ("ph":"X")
    slices with [ts]/[dur] in microseconds; [pid] is the event's
    ["switch"] attribute (0 when absent, with process-name metadata
    records naming each), [tid] is the trace id, and [args] carries the
    span triple plus every attribute. *)

val dump_chrome : t -> string
(** [chrome_json] pretty-printed to a string. *)

val write_chrome : t -> string -> unit
(** Write {!dump_chrome} to a file (trailing newline included). *)

val render_tree : event list -> string
(** Compact text form: one block per trace, events indented under their
    causal parent, ordered by emission.  Exposed on raw event lists so the
    [tracequery] CLI can render trees parsed back from a dump. *)

val dump_text : t -> string
(** [render_tree (events t)]. *)
