(** Dependency-light metrics registry: counters, gauges, log-bucketed
    latency histograms, and span timers.

    Recording is allocation-cheap (a domain-local lookup plus an in-place
    cell update) and safe under [Stdx.Domain_pool] fan-out: every writing
    domain gets its own shard and readers merge all shards, so no write
    ever contends.  Merged totals are exact once the writing domains have
    synchronized — [Domain_pool.parallel_for] returns only after every
    worker signals completion under the pool's mutex, so recording inside
    a fan-out and reading after it returns is exact.

    Histograms store no samples: observations land in logarithmic
    buckets (8 per octave) covering ~6e-8 .. ~2e2, so percentiles carry
    at most ~4.4% relative error and are clamped to the exact observed
    min/max.  Suitable for latencies in seconds; the exact [sum], [min],
    [max] and [count] are tracked alongside.

    Spans are sugar over histograms: [with_span t "alloc.score" f] times
    [f] and observes the elapsed seconds into histogram "alloc.score".
    Spans nest per domain (a stack), and [with_span] records even when
    [f] raises.

    Metric names are flat dot-separated strings (see docs/TELEMETRY.md
    for the taxonomy).  A name denotes one kind forever; re-using it as
    a different kind raises [Invalid_argument]. *)

type t

val create : ?now:(unit -> float) -> unit -> t
(** A fresh registry.  [now] (default [Unix.gettimeofday]) is the span
    clock, injectable for deterministic tests. *)

val default : t
(** The process-wide registry that instrumented components record into
    unless handed a specific one. *)

(** {2 Recording (hot path)} *)

val incr : t -> ?by:int -> string -> unit
val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit
(** Record one observation into the named histogram. *)

val span_begin : t -> string -> unit

val span_end : t -> unit
(** Close the innermost open span of the calling domain and observe its
    elapsed seconds under the span's name.
    @raise Invalid_argument if no span is open. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [span_begin]/[span_end] around [f], exception-safe. *)

(** {2 Merged reads} *)

type hist_summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val counter_value : t -> string -> int
(** Sum over all shards; 0 if the counter was never incremented. *)

val gauge_value : t -> string -> float option
(** Most recently set value across shards (global write order). *)

val hist_summary : t -> string -> hist_summary option
(** [None] for an unknown name.  A single-observation histogram reports
    that observation for every percentile (sketch midpoints clamp to
    [min, max]); an empty summary reports zeros throughout. *)

val hist_percentile : t -> string -> float -> float
(** The [p]-th percentile ([0..100]) of a span histogram, from the
    log-bucketed sketch, clamped to the observed [min, max].  Edge
    cases are pinned: unknown name or empty histogram yields [0.0];
    [p <= 0.0] yields the exact observed minimum and [p >= 100.0] the
    exact maximum.
    @raise Invalid_argument if [p] is NaN. *)

val counters : t -> (string * int) list
(** All counters, merged, sorted by name.  Likewise [gauges] and
    [histograms]. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * hist_summary) list

val reset : t -> unit
(** Clear every shard.  Only call while no other domain is recording. *)

(** {2 Dumps} *)

val json_of : t -> Json.t
val json_of_summary : hist_summary -> Json.t

val dump_json : t -> string
(** Pretty-printed {!json_of}: counters, gauges, histogram summaries. *)

val dump_prometheus : t -> string
(** Prometheus text exposition: counters, gauges, summaries with
    p50/p90/p99 quantiles.  Names are sanitized to the exposition
    format's charset ([[a-zA-Z_:][a-zA-Z0-9_:]*]) and label values have
    backslash, double-quote and newline escaped, so the output is
    well-formed promtext for any registry key. *)

val prom_name : string -> string
(** The metric-name sanitizer {!dump_prometheus} uses: every character
    outside [[a-zA-Z0-9_:]] collapses to ['_'] and a leading digit gets a
    ['_'] prefix. *)

val prom_escape_label : string -> string
(** The label-value escaper {!dump_prometheus} uses: backslash,
    double-quote and newline each gain a leading backslash (newline
    becomes the two characters backslash-n). *)

val write_json : t -> path:string -> unit
