(** Deterministic windowed time series.

    Where {!Telemetry} answers "what happened over the whole run", a
    series registry answers "what happened {e when}": every metric is a
    fixed-capacity ring of virtual-clock buckets, each holding
    count/sum/min/max plus a small log-bucketed percentile sketch (the
    same scheme as {!Telemetry} histograms).  The clock is injected —
    simulations pass their engine or modeled clock, never wall time — so
    same-seed replays produce byte-identical series and byte-identical
    JSON dumps.

    Recording is sharded per domain exactly like {!Telemetry} (lock-free
    writes into the calling domain's shard, exact merge on read), so a
    registry can be fed from inside [Stdx.Domain_pool] fan-out.

    Two series kinds, determined by first use and sticky thereafter:
    - {b counter} series ([add]) accumulate count/sum per bucket;
    - {b dist} series ([observe]) additionally track min/max and a
      percentile sketch per bucket.

    @raise Invalid_argument when a name is re-used with the other kind. *)

type t

val create : ?bucket_s:float -> ?capacity:int -> ?now:(unit -> float) -> unit -> t
(** A live registry.  [bucket_s] (default [1.0]) is the window width in
    virtual seconds; [capacity] (default [128]) is how many windows each
    series retains (older buckets are overwritten in ring order).
    [now] (default [fun () -> 0.0]) supplies the virtual clock; it must
    be monotone non-decreasing for windows to be meaningful.  Wall
    clocks are deliberately not the default: pass your simulation's
    clock explicitly. *)

val noop : t
(** A disabled registry: [add]/[observe] are no-ops, reads are empty.
    Components take [?series] defaulting to [noop] so the data path pays
    (almost) nothing when the health plane is off. *)

val enabled : t -> bool
(** [false] only for {!noop}. *)

val set_clock : t -> (unit -> float) -> unit
(** Re-wire the virtual clock (e.g. when a scenario phases from one
    modeled clock to another).  No-op on {!noop}. *)

val bucket_s : t -> float
val capacity : t -> int

val now : t -> float
(** The registry clock's current virtual time ([0.0] on {!noop}). *)

val add : t -> ?t:float -> ?by:float -> string -> unit
(** Bump a counter series by [by] (default [1.0]) in the bucket covering
    time [t] (default: the registry clock).  Components with their own
    modeled clock pass [~t] explicitly. *)

val observe : t -> ?t:float -> string -> float -> unit
(** Record one sample of a distribution series in the bucket covering
    [t] (default: the registry clock). *)

(** {1 Merged reads}

    Reads merge all shards; counts are exact after the writing domains
    have quiesced (e.g. post [Domain_pool] join), same as {!Telemetry}. *)

type window = {
  w_index : int;  (** bucket index: [floor (t / bucket_s)] *)
  w_count : int;
  w_sum : float;
  w_min : float;  (** 0.0 for counter series *)
  w_max : float;  (** 0.0 for counter series *)
  w_p50 : float;  (** sketch percentiles, 0.0 for counter series *)
  w_p90 : float;
  w_p99 : float;
}

val names : t -> string list
(** All series names, sorted. *)

val kind_of : t -> string -> [ `Counter | `Dist ] option
(** The kind a series was first used as; [None] if unknown. *)

val windows : t -> string -> window list
(** The retained windows of a series, ascending [w_index], merged across
    shards; [[]] if the name is unknown.  At most [capacity] windows
    (per-shard rings are merged by index, and only the newest [capacity]
    distinct indices are kept). *)

type agg = {
  a_count : int;
  a_sum : float;
  a_min : float;
  a_max : float;
  a_p50 : float;
  a_p90 : float;
  a_p99 : float;
  a_windows : int;  (** how many retained windows the aggregate covers *)
}

val aggregate : ?last:int -> t -> string -> agg
(** Merge the newest [last] windows of a series (default: all retained)
    into one summary — the raw material for SLO evaluation.  Percentiles
    come from the merged sketch for dist series and are [0.0] for
    counter series; an unknown name or empty range yields the zero
    aggregate. *)

val quantile : ?last:int -> t -> string -> float -> float
(** [quantile t name q] is the [q]-quantile ([0.0 <= q <= 1.0]) of a
    dist series over the newest [last] windows, clamped to observed
    min/max as in {!Telemetry}; [0.0] when empty.
    @raise Invalid_argument if [q] is NaN or outside [0, 1]. *)

(** {1 Deterministic JSON} *)

val json_of : t -> Json.t
(** The full registry as JSON: series sorted by name, windows ascending
    by index, no wall-clock fields — byte-identical across same-seed
    replays. *)

val write_json : t -> path:string -> unit

(** {1 Dump parsing (for [fleettop] and tests)} *)

type dump = {
  d_bucket_s : float;
  d_capacity : int;
  d_series : (string * [ `Counter | `Dist ] * window list) list;
}

val dump_of_json : Json.t -> (dump, string) result
val dump_of_string : string -> (dump, string) result
